// Benchmarks regenerating the paper's tables and the ablation studies
// for the design choices DESIGN.md calls out. Table benchmarks run the
// full pipeline at half the paper's process counts (ProcScale 2) so a
// `go test -bench=.` sweep stays tractable; cmd/pas2p-bench regenerates
// the tables at full scale. Custom metrics carry the quantities the
// paper reports: PETE% (prediction error), SET% (signature length as a
// fraction of the application), and phase counts.
package pas2p_test

import (
	"io"
	"testing"

	"pas2p"
	"pas2p/internal/apps"
	"pas2p/internal/machine"
	"pas2p/internal/mpi"
	"pas2p/internal/predict"
	"pas2p/internal/report"
	"pas2p/internal/signature"
	"pas2p/internal/simpoint"
	"pas2p/internal/vtime"
)

func benchOpts() report.Options {
	return report.Options{ProcScale: 2, EventOverhead: 8 * vtime.Microsecond}
}

// BenchmarkTable3 regenerates Table 3: the Moldy analysis on cluster C
// (phases, weights, AET vs SET).
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := report.Table3(io.Discard, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Total), "phases")
		b.ReportMetric(float64(res.Relevant), "relevant")
		b.ReportMetric(100*res.SETSeconds/res.AETSeconds, "SET%")
	}
}

// BenchmarkTable5 regenerates Table 5: predictions for cluster B from
// signatures built on cluster A (Table 4 workloads).
func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := report.Table5(io.Discard, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		reportPredMetrics(b, rows)
	}
}

// BenchmarkTable7 regenerates Table 7: predictions for cluster A's
// oversubscribed cores from signatures built on cluster C (Table 6
// workloads).
func BenchmarkTable7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := report.Table7(io.Discard, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		reportPredMetrics(b, rows)
	}
}

func reportPredMetrics(b *testing.B, rows []report.PredRow) {
	b.Helper()
	var pete, setFrac float64
	for _, r := range rows {
		pete += r.Outcome.PETEPercent
		setFrac += r.Outcome.SETvsAETPercent
	}
	n := float64(len(rows))
	b.ReportMetric(pete/n, "PETE%")
	b.ReportMetric(setFrac/n, "SET%")
}

// BenchmarkTable8And9 regenerates the §6 tool-performance set once and
// reports both tables' headline quantities (tracefile bytes, phase
// counts, overhead factor).
func BenchmarkTable8And9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := report.RunPerf(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		report.Table8(io.Discard, rows)
		report.Table9(io.Discard, rows)
		var bytes, overhead float64
		for _, r := range rows {
			bytes += float64(r.Outcome.TFSize)
			overhead += r.Outcome.OverheadFactor
		}
		b.ReportMetric(bytes/float64(len(rows)), "TFbytes")
		b.ReportMetric(overhead/float64(len(rows)), "overheadX")
	}
}

// --- Ablations -----------------------------------------------------

func ablateDeploy(b *testing.B, cl *pas2p.Cluster, n int) *pas2p.Deployment {
	b.Helper()
	d, err := pas2p.NewDeployment(cl, n, pas2p.MapBlock)
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// wildcardApp is a master/worker farm with wildcard receives and
// staggered worker loads — the §3.2 scenario: reception order is
// nondeterministic across machines and the master's replies chain each
// worker's next logical time to a different master send.
func wildcardApp(procs int) pas2p.App {
	return pas2p.App{
		Name:  "wildcard",
		Procs: procs,
		Body: func(c *pas2p.Comm) {
			for it := 0; it < 30; it++ {
				if c.Rank() == 0 {
					for i := 1; i < c.Size(); i++ {
						c.RecvN(pas2p.AnySource, 1)
					}
					for i := 1; i < c.Size(); i++ {
						c.SendN(i, 2, 512)
					}
				} else {
					// Microsecond-scale load differences reshuffle the
					// arrival order at the master across clusters.
					c.Compute(float64((16-c.Rank()+it)%8) * 1e3)
					c.SendN(0, 1, 512)
					c.RecvN(0, 2)
				}
				c.Barrier()
			}
		},
	}
}

// BenchmarkAblationOrdering compares the PAS2P ordering against the
// pure-Lamport baseline (§3.2's motivation) on the wildcard workload.
// Reported metrics: tick-table size (smaller = better cross-process
// alignment, so phases fold more readily), phase counts after
// extraction, and whether each model's tick table changes across
// clusters. Wildcard matching itself is machine-dependent — no
// ordering can undo which send a receive matched — but the PAS2P
// pinning plus receive permutation keeps the *structure* a phase
// comparison sees stable, which is what the phase counts show.
func BenchmarkAblationOrdering(b *testing.B) {
	app := wildcardApp(16)
	for i := 0; i < b.N; i++ {
		var phasesPAS2P, phasesLamport float64
		var ticksPAS2P, ticksLamport float64
		var shapes [2][2]string // [ordering][cluster] tick-table shape
		for ci, cl := range []*pas2p.Cluster{pas2p.ClusterA(), pas2p.ClusterC()} {
			traced, err := pas2p.RunApp(app, pas2p.RunConfig{Deployment: ablateDeploy(b, cl, 16), Trace: true})
			if err != nil {
				b.Fatal(err)
			}
			lp, err := pas2p.OrderLogical(traced.Trace)
			if err != nil {
				b.Fatal(err)
			}
			ll, err := pas2p.OrderLamport(traced.Trace)
			if err != nil {
				b.Fatal(err)
			}
			shapes[0][ci] = tickShape(lp)
			shapes[1][ci] = tickShape(ll)
			ticksPAS2P += float64(lp.NumTicks())
			ticksLamport += float64(ll.NumTicks())
			ap, err := pas2p.ExtractPhases(lp, pas2p.DefaultPhaseConfig())
			if err != nil {
				b.Fatal(err)
			}
			al, err := pas2p.ExtractPhases(ll, pas2p.DefaultPhaseConfig())
			if err != nil {
				b.Fatal(err)
			}
			phasesPAS2P += float64(len(ap.Phases))
			phasesLamport += float64(len(al.Phases))
		}
		b.ReportMetric(ticksPAS2P/2, "ticks/pas2p")
		b.ReportMetric(ticksLamport/2, "ticks/lamport")
		b.ReportMetric(phasesPAS2P/2, "phases/pas2p")
		b.ReportMetric(phasesLamport/2, "phases/lamport")
		b.ReportMetric(boolMetric(shapes[0][0] != shapes[0][1]), "machineDependent/pas2p")
		b.ReportMetric(boolMetric(shapes[1][0] != shapes[1][1]), "machineDependent/lamport")
	}
}

// tickShape fingerprints a tick table's structure: per tick, which
// processes act and how.
func tickShape(l *pas2p.Logical) string {
	var sb []byte
	for t := range l.Ticks {
		for _, s := range l.Ticks[t] {
			e := &l.Trace.Events[s.Event]
			sb = append(sb, byte('0'+e.Kind), byte('a'+e.Process%26), byte('A'+(e.Peer+1)%26))
		}
		sb = append(sb, '|')
	}
	return string(sb)
}

func boolMetric(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// BenchmarkAblationRelevance compares signatures built from relevant
// phases only (the paper's default) against all phases: the all-phase
// signature trades a longer SET for lower residual error (§5).
func BenchmarkAblationRelevance(b *testing.B) {
	app, err := apps.Make("moldy", 16, "tip4p-short")
	if err != nil {
		b.Fatal(err)
	}
	base := ablateDeploy(b, pas2p.ClusterA(), 16)
	target := ablateDeploy(b, pas2p.ClusterB(), 16)
	for i := 0; i < b.N; i++ {
		for _, all := range []bool{false, true} {
			sig := signature.DefaultOptions()
			sig.AllPhases = all
			out, err := predict.Run(predict.Experiment{App: app, Base: base, Target: target, Signature: sig})
			if err != nil {
				b.Fatal(err)
			}
			if all {
				b.ReportMetric(out.PETEPercent, "PETE%/all")
				b.ReportMetric(out.SETvsAETPercent, "SET%/all")
			} else {
				b.ReportMetric(out.PETEPercent, "PETE%/relevant")
				b.ReportMetric(out.SETvsAETPercent, "SET%/relevant")
			}
		}
	}
}

// BenchmarkAblationSimilarity sweeps the §3.3 similarity thresholds
// around the paper's 80%/85% values on an app with compute jitter.
func BenchmarkAblationSimilarity(b *testing.B) {
	jittery := pas2p.App{
		Name:  "jittery",
		Procs: 16,
		Body: func(c *pas2p.Comm) {
			n := c.Size()
			for it := 0; it < 40; it++ {
				c.Compute(2e6 * (1 + 0.08*float64(it%3)))
				c.SendrecvN((c.Rank()+1)%n, 0, 2048, (c.Rank()+n-1)%n, 0)
				c.Allreduce([]float64{1}, pas2p.Sum)
			}
		},
	}
	base := ablateDeploy(b, pas2p.ClusterA(), 16)
	traced, err := pas2p.RunApp(jittery, pas2p.RunConfig{Deployment: base, Trace: true})
	if err != nil {
		b.Fatal(err)
	}
	l, err := pas2p.OrderLogical(traced.Trace)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, th := range []struct {
			name string
			ev   float64
			comp float64
		}{
			{"strict", 0.99, 0.99},
			{"paper", 0.80, 0.85},
			{"loose", 0.60, 0.60},
		} {
			cfg := pas2p.DefaultPhaseConfig()
			cfg.EventSimilarity = th.ev
			cfg.ComputeSimilarity = th.comp
			an, err := pas2p.ExtractPhases(l, cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(len(an.Phases)), "phases/"+th.name)
		}
	}
}

// BenchmarkAblationPartialExec pits PAS2P against the partial-execution
// baseline [17] on an application whose later iterations are heavier
// than its early ones — the case §2 argues whole-execution analysis is
// needed for.
func BenchmarkAblationPartialExec(b *testing.B) {
	shifting := pas2p.App{
		Name:  "shifting",
		Procs: 16,
		Body: func(c *pas2p.Comm) {
			n := c.Size()
			for it := 0; it < 60; it++ {
				weight := 1.0
				if it >= 20 {
					weight = 3.0
				}
				c.Compute(3e6 * weight)
				c.SendrecvN((c.Rank()+1)%n, 0, 2048, (c.Rank()+n-1)%n, 0)
				c.Allreduce([]float64{1}, pas2p.Sum)
			}
		},
	}
	base := ablateDeploy(b, pas2p.ClusterA(), 16)
	target := ablateDeploy(b, pas2p.ClusterB(), 16)
	for i := 0; i < b.N; i++ {
		out, err := predict.Run(predict.Experiment{App: shifting, Base: base, Target: target})
		if err != nil {
			b.Fatal(err)
		}
		traced, err := mpi.Run(shifting, mpi.RunConfig{Deployment: base, Trace: true})
		if err != nil {
			b.Fatal(err)
		}
		totals := make([]int64, shifting.Procs)
		for p, evs := range traced.Trace.PerProcess() {
			totals[p] = int64(len(evs))
		}
		pres, err := predict.DefaultPartialExec().Predict(shifting, target, totals)
		if err != nil {
			b.Fatal(err)
		}
		full, err := mpi.Run(shifting, mpi.RunConfig{Deployment: target})
		if err != nil {
			b.Fatal(err)
		}
		aet := full.Elapsed.Seconds()
		partialPETE := 100 * absF(pres.PET.Seconds()-aet) / aet
		naive, err := (predict.SpeedRatio{}).Predict(out.AETBase, base, target)
		if err != nil {
			b.Fatal(err)
		}
		naivePETE := 100 * absF(naive.Seconds()-aet) / aet
		b.ReportMetric(out.PETEPercent, "PETE%/pas2p")
		b.ReportMetric(partialPETE, "PETE%/partial")
		b.ReportMetric(naivePETE, "PETE%/speedratio")
	}
}

// BenchmarkAblationEstimator compares the phase-time estimators on the
// workload where they differ most: LU's per-k-plane wavefront
// pipeline, whose phase windows overlap in steady state.
func BenchmarkAblationEstimator(b *testing.B) {
	app, err := apps.Make("lu", 16, "classB")
	if err != nil {
		b.Fatal(err)
	}
	base := ablateDeploy(b, pas2p.ClusterA(), 16)
	target := ablateDeploy(b, pas2p.ClusterB(), 16)
	names := map[signature.ETEstimator]string{
		signature.EstimatorPairDelta: "pairdelta",
		signature.EstimatorLastSpan:  "lastspan",
		signature.EstimatorMeanSpan:  "meanspan",
	}
	for i := 0; i < b.N; i++ {
		for est, name := range names {
			sig := signature.DefaultOptions()
			sig.Estimator = est
			out, err := predict.Run(predict.Experiment{App: app, Base: base, Target: target, Signature: sig})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(out.PETEPercent, "PETE%/"+name)
		}
	}
}

// BenchmarkAblationMapping verifies mapping sensitivity: the same
// signature predicts both the block- and cyclic-mapped target (§7:
// "the signature is able to execute using different mappings").
func BenchmarkAblationMapping(b *testing.B) {
	app, err := apps.Make("cg", 16, "classA")
	if err != nil {
		b.Fatal(err)
	}
	base := ablateDeploy(b, pas2p.ClusterA(), 16)
	for i := 0; i < b.N; i++ {
		for _, pol := range []machine.MappingPolicy{machine.MapBlock, machine.MapCyclic} {
			td, err := machine.NewDeployment(machine.ClusterB(), 16, pol)
			if err != nil {
				b.Fatal(err)
			}
			out, err := predict.Run(predict.Experiment{App: app, Base: base, Target: td})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(out.PETEPercent, "PETE%/"+pol.String())
		}
	}
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// BenchmarkAblationWorkload exercises the workload-effect extension
// ([2]): fit per-phase scaling laws on two small CG classes and
// extrapolate the (never fully analysed) class C runtime.
func BenchmarkAblationWorkload(b *testing.B) {
	nnz := map[string]float64{"classA": 1.85e6, "classB": 1.31e7, "classC": 3.67e7}
	base := ablateDeploy(b, pas2p.ClusterA(), 16)
	traceFor := func(class string) *pas2p.Trace {
		app, err := pas2p.MakeApp("cg", 16, class)
		if err != nil {
			b.Fatal(err)
		}
		traced, err := pas2p.RunApp(app, pas2p.RunConfig{Deployment: base, Trace: true})
		if err != nil {
			b.Fatal(err)
		}
		return traced.Trace
	}
	for i := 0; i < b.N; i++ {
		ans, _, err := pas2p.AnalyzeAll([]*pas2p.Trace{traceFor("classA"), traceFor("classB")},
			pas2p.DefaultPhaseConfig(), 1, 0)
		if err != nil {
			b.Fatal(err)
		}
		model, err := pas2p.FitWorkloadModel([]pas2p.WorkloadPoint{
			{Param: nnz["classA"], Analysis: ans[0]},
			{Param: nnz["classB"], Analysis: ans[1]},
		})
		if err != nil {
			b.Fatal(err)
		}
		appC, err := pas2p.MakeApp("cg", 16, "classC")
		if err != nil {
			b.Fatal(err)
		}
		full, err := pas2p.RunApp(appC, pas2p.RunConfig{Deployment: base})
		if err != nil {
			b.Fatal(err)
		}
		got := pas2p.Seconds(model.Predict(nnz["classC"]))
		want := pas2p.Seconds(full.Elapsed)
		b.ReportMetric(100*absF(got-want)/want, "extrapolationErr%")
	}
}

// BenchmarkAblationScheduler quantifies §1's scheduling claim: queue
// planning with signature-grade estimates versus padded user guesses.
func BenchmarkAblationScheduler(b *testing.B) {
	mkJobs := func(pad func(i int) float64) []pas2p.SchedJob {
		var jobs []pas2p.SchedJob
		for i := 0; i < 200; i++ {
			rt := float64(30 + (i*211)%900)
			jobs = append(jobs, pas2p.SchedJob{
				ID:       i,
				Arrival:  pas2p.VTime(float64(i*15) * 1e9),
				Cores:    1 << uint(i%6),
				Runtime:  pas2p.VDuration(rt * 1e9),
				Estimate: pas2p.VDuration(rt * pad(i) * 1e9),
			})
		}
		return jobs
	}
	for i := 0; i < b.N; i++ {
		user, err := pas2p.ScheduleJobs(mkJobs(func(i int) float64 {
			return float64(2 + (i*31)%7)
		}), 64, pas2p.BackfillShortest)
		if err != nil {
			b.Fatal(err)
		}
		sig, err := pas2p.ScheduleJobs(mkJobs(func(i int) float64 {
			return 1 + 0.03*float64(i%3-1)
		}), 64, pas2p.BackfillShortest)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(user.AvgPromiseErrorSeconds, "promiseErr/user")
		b.ReportMetric(sig.AvgPromiseErrorSeconds, "promiseErr/pas2p")
		b.ReportMetric(user.AvgWaitSeconds, "wait/user")
		b.ReportMetric(sig.AvgWaitSeconds, "wait/pas2p")
	}
}

// BenchmarkAblationNICContention measures how per-node NIC
// serialisation changes a fan-in-heavy run and whether the signature
// still predicts it (the contended world is simply a different target
// machine behaviour; prediction must survive).
func BenchmarkAblationNICContention(b *testing.B) {
	app, err := apps.Make("cg", 16, "classA")
	if err != nil {
		b.Fatal(err)
	}
	base := ablateDeploy(b, pas2p.ClusterA(), 16)
	target := ablateDeploy(b, pas2p.ClusterB(), 16)
	for i := 0; i < b.N; i++ {
		for _, contend := range []bool{false, true} {
			out, err := predict.Run(predict.Experiment{
				App: app, Base: base, Target: target, NICContention: contend,
			})
			if err != nil {
				b.Fatal(err)
			}
			suffix := "/free"
			if contend {
				suffix = "/contended"
			}
			b.ReportMetric(out.AETTarget.Seconds(), "AET"+suffix)
			b.ReportMetric(out.PETEPercent, "PETE%"+suffix)
		}
	}
}

// BenchmarkAblationCollectiveModel compares the analytic uniform
// collective cost against the per-member algorithmic schedule on the
// allreduce-heavy POP kernel, and checks prediction survives both.
func BenchmarkAblationCollectiveModel(b *testing.B) {
	app, err := apps.Make("pop", 16, "synthetic60")
	if err != nil {
		b.Fatal(err)
	}
	base := ablateDeploy(b, pas2p.ClusterA(), 16)
	target := ablateDeploy(b, pas2p.ClusterB(), 16)
	for i := 0; i < b.N; i++ {
		for _, algo := range []bool{false, true} {
			out, err := predict.Run(predict.Experiment{
				App: app, Base: base, Target: target, AlgorithmicCollectives: algo,
			})
			if err != nil {
				b.Fatal(err)
			}
			suffix := "/analytic"
			if algo {
				suffix = "/algorithmic"
			}
			b.ReportMetric(out.AETTarget.Seconds(), "AET"+suffix)
			b.ReportMetric(out.PETEPercent, "PETE%"+suffix)
		}
	}
}

// BenchmarkAblationSimPoint pits the paper's repeat-detection phases
// against SimPoint-style fixed-interval clustering ([15],[21]) with the
// identical signature machinery downstream: prediction error and
// signature length tell the §2 story (PAS2P's variable-length phases
// fold repetition better, so its signature is shorter at equal or
// better accuracy).
func BenchmarkAblationSimPoint(b *testing.B) {
	app, err := apps.Make("cg", 16, "classB")
	if err != nil {
		b.Fatal(err)
	}
	base := ablateDeploy(b, pas2p.ClusterA(), 16)
	target := ablateDeploy(b, pas2p.ClusterB(), 16)
	traced, err := pas2p.RunApp(app, pas2p.RunConfig{Deployment: base, Trace: true})
	if err != nil {
		b.Fatal(err)
	}
	l, err := pas2p.OrderLogical(traced.Trace)
	if err != nil {
		b.Fatal(err)
	}
	truth, err := pas2p.RunApp(app, pas2p.RunConfig{Deployment: target})
	if err != nil {
		b.Fatal(err)
	}
	aet := pas2p.Seconds(truth.Elapsed)

	for i := 0; i < b.N; i++ {
		for _, mode := range []string{"pas2p", "simpoint"} {
			var an *pas2p.PhaseAnalysis
			if mode == "pas2p" {
				an, err = pas2p.ExtractPhases(l, pas2p.DefaultPhaseConfig())
			} else {
				an, err = simpoint.Extract(l, simpoint.DefaultConfig())
			}
			if err != nil {
				b.Fatal(err)
			}
			tb, err := an.BuildTable(1)
			if err != nil {
				b.Fatal(err)
			}
			sig, _, err := pas2p.BuildSignature(app, tb, base, pas2p.DefaultSignatureOptions())
			if err != nil {
				b.Fatal(err)
			}
			res, err := sig.Execute(target)
			if err != nil {
				b.Fatal(err)
			}
			pete := 100 * absF(pas2p.Seconds(res.PET)-aet) / aet
			b.ReportMetric(float64(len(an.Phases)), "phases/"+mode)
			b.ReportMetric(pete, "PETE%/"+mode)
			b.ReportMetric(100*pas2p.Seconds(res.SET)/aet, "SET%/"+mode)
		}
	}
}
