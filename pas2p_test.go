// Tests of the public pas2p API: the facade exposed to downstream
// users, exercised the way README's examples use it.
package pas2p_test

import (
	"errors"
	"reflect"
	"testing"

	"pas2p"
	"pas2p/internal/vtime"
)

func TestPublicClusters(t *testing.T) {
	for _, name := range []string{"A", "B", "C", "D"} {
		if pas2p.ClusterByName(name) == nil {
			t.Errorf("ClusterByName(%q) = nil", name)
		}
	}
	if pas2p.ClusterByName("nope") != nil {
		t.Error("unknown cluster should be nil")
	}
	if pas2p.ClusterA().Cores() != 128 {
		t.Error("cluster A should expose 128 cores")
	}
}

func TestPublicAppRegistry(t *testing.T) {
	names := pas2p.AppNames()
	if len(names) < 10 {
		t.Fatalf("expected the paper's app suite, got %v", names)
	}
	spec := pas2p.AppSpec("cg")
	if spec == nil || spec.DefaultWorkload == "" {
		t.Fatal("cg spec incomplete")
	}
	if _, err := pas2p.MakeApp("cg", 8, ""); err != nil {
		t.Fatalf("default workload should instantiate: %v", err)
	}
}

// TestPublicPipeline walks the full user-facing flow end to end.
func TestPublicPipeline(t *testing.T) {
	app := pas2p.App{
		Name:  "user-app",
		Procs: 8,
		Body: func(c *pas2p.Comm) {
			n := c.Size()
			for i := 0; i < 30; i++ {
				c.Compute(1e6)
				c.Sendrecv((c.Rank()+1)%n, 0, []float64{float64(i)}, (c.Rank()+n-1)%n, 0)
				c.Allreduce([]float64{1}, pas2p.Sum)
			}
		},
	}
	base, err := pas2p.NewDeployment(pas2p.ClusterA(), 8, pas2p.MapBlock)
	if err != nil {
		t.Fatal(err)
	}
	target, err := pas2p.NewDeployment(pas2p.ClusterC(), 8, pas2p.MapBlock)
	if err != nil {
		t.Fatal(err)
	}
	traced, err := pas2p.RunApp(app, pas2p.RunConfig{Deployment: base, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	an, tb, err := pas2p.Analyze(traced.Trace, pas2p.DefaultPhaseConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(an.Relevant()) < 1 {
		t.Fatal("no relevant phases")
	}
	sig, sct, err := pas2p.BuildSignature(app, tb, base, pas2p.DefaultSignatureOptions())
	if err != nil {
		t.Fatal(err)
	}
	if sct <= 0 {
		t.Error("SCT must be positive")
	}
	res, err := sig.Execute(target)
	if err != nil {
		t.Fatal(err)
	}
	full, err := pas2p.RunApp(app, pas2p.RunConfig{Deployment: target})
	if err != nil {
		t.Fatal(err)
	}
	aet := pas2p.Seconds(full.Elapsed)
	pet := pas2p.Seconds(res.PET)
	if aet <= 0 || pet <= 0 {
		t.Fatal("degenerate timings")
	}
	if diff := 100 * abs2(pet-aet) / aet; diff > 10 {
		t.Errorf("public-pipeline PETE %.2f%%", diff)
	}
}

func TestPublicPredict(t *testing.T) {
	app, err := pas2p.MakeApp("cg", 8, "classA")
	if err != nil {
		t.Fatal(err)
	}
	base, _ := pas2p.NewDeployment(pas2p.ClusterA(), 8, pas2p.MapBlock)
	target, _ := pas2p.NewDeployment(pas2p.ClusterB(), 8, pas2p.MapBlock)
	out, err := pas2p.Predict(pas2p.Experiment{App: app, Base: base, Target: target})
	if err != nil {
		t.Fatal(err)
	}
	if out.PETEPercent > 10 {
		t.Errorf("PETE %.2f%%", out.PETEPercent)
	}
}

func TestPublicISAMismatch(t *testing.T) {
	app, err := pas2p.MakeApp("cg", 8, "classA")
	if err != nil {
		t.Fatal(err)
	}
	base, _ := pas2p.NewDeployment(pas2p.ClusterA(), 8, pas2p.MapBlock)
	traced, err := pas2p.RunApp(app, pas2p.RunConfig{Deployment: base, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	_, tb, err := pas2p.Analyze(traced.Trace, pas2p.DefaultPhaseConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	sig, _, err := pas2p.BuildSignature(app, tb, base, pas2p.DefaultSignatureOptions())
	if err != nil {
		t.Fatal(err)
	}
	targetD, _ := pas2p.NewDeployment(pas2p.ClusterD(), 8, pas2p.MapBlock)
	_, err = sig.Execute(targetD)
	var mismatch *pas2p.ErrISAMismatch
	if !errors.As(err, &mismatch) {
		t.Fatalf("want ErrISAMismatch, got %v", err)
	}
}

func TestPublicOrderings(t *testing.T) {
	app, _ := pas2p.MakeApp("cg", 8, "classA")
	base, _ := pas2p.NewDeployment(pas2p.ClusterA(), 8, pas2p.MapBlock)
	traced, err := pas2p.RunApp(app, pas2p.RunConfig{Deployment: base, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	lp, err := pas2p.OrderLogical(traced.Trace)
	if err != nil {
		t.Fatal(err)
	}
	ll, err := pas2p.OrderLamport(traced.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if lp.NumTicks() < 1 || ll.NumTicks() < 1 {
		t.Error("orderings produced empty tick tables")
	}
	if _, err := pas2p.ExtractPhases(lp, pas2p.DefaultPhaseConfig()); err != nil {
		t.Fatal(err)
	}
}

func abs2(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestTopologyEndToEnd(t *testing.T) {
	// A tapered fat-tree interconnect slows a cross-node-heavy app and
	// the signature still predicts it (the topology is just another
	// machine-model parameter).
	app, err := pas2p.MakeApp("cg", 16, "classA")
	if err != nil {
		t.Fatal(err)
	}
	flat := pas2p.ClusterC()
	tree := pas2p.ClusterC()
	tree.Topology = pas2p.Topology{
		Kind: pas2p.TopoFatTree, Radix: 4,
		HopLatency: 40 * vtime.Microsecond, HopBandwidthTaper: 0.5,
	}
	base, _ := pas2p.NewDeployment(pas2p.ClusterA(), 16, pas2p.MapBlock)
	dFlat, _ := pas2p.NewDeployment(flat, 16, pas2p.MapCyclic)
	dTree, err := pas2p.NewDeployment(tree, 16, pas2p.MapCyclic)
	if err != nil {
		t.Fatal(err)
	}
	rFlat, err := pas2p.RunApp(app, pas2p.RunConfig{Deployment: dFlat})
	if err != nil {
		t.Fatal(err)
	}
	rTree, err := pas2p.RunApp(app, pas2p.RunConfig{Deployment: dTree})
	if err != nil {
		t.Fatal(err)
	}
	if rTree.Elapsed <= rFlat.Elapsed {
		t.Errorf("fat-tree run %v should be slower than flat %v", rTree.Elapsed, rFlat.Elapsed)
	}
	out, err := pas2p.Predict(pas2p.Experiment{App: app, Base: base, Target: dTree})
	if err != nil {
		t.Fatal(err)
	}
	if out.PETEPercent > 10 {
		t.Errorf("PETE %.2f%% on the fat-tree target", out.PETEPercent)
	}
}

// TestAnalyzeAll checks that the concurrent analysis fan-out returns
// exactly what sequential Analyze calls return, in input order, and
// that a failing trace fails the batch.
func TestAnalyzeAll(t *testing.T) {
	ring := func(iters int) pas2p.App {
		return pas2p.App{
			Name:  "ring",
			Procs: 8,
			Body: func(c *pas2p.Comm) {
				n := c.Size()
				for i := 0; i < iters; i++ {
					c.Compute(1e6)
					c.Sendrecv((c.Rank()+1)%n, 0, []float64{1}, (c.Rank()+n-1)%n, 0)
					c.Allreduce([]float64{1}, pas2p.Sum)
				}
			},
		}
	}
	d, err := pas2p.NewDeployment(pas2p.ClusterA(), 8, pas2p.MapBlock)
	if err != nil {
		t.Fatal(err)
	}
	var traces []*pas2p.Trace
	for _, iters := range []int{10, 25, 40} {
		res, err := pas2p.RunApp(ring(iters), pas2p.RunConfig{Deployment: d, Trace: true})
		if err != nil {
			t.Fatal(err)
		}
		traces = append(traces, res.Trace)
	}
	cfg := pas2p.DefaultPhaseConfig()
	ans, tbs, err := pas2p.AnalyzeAll(traces, cfg, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != len(traces) || len(tbs) != len(traces) {
		t.Fatalf("got %d analyses, %d tables for %d traces", len(ans), len(tbs), len(traces))
	}
	for i, tr := range traces {
		wantAn, wantTb, err := pas2p.Analyze(tr, cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ans[i], wantAn) {
			t.Errorf("trace %d: concurrent analysis differs from sequential", i)
		}
		if !reflect.DeepEqual(tbs[i], wantTb) {
			t.Errorf("trace %d: concurrent table differs from sequential", i)
		}
	}
	traces[1] = &pas2p.Trace{} // empty: logical ordering rejects it
	if _, _, err := pas2p.AnalyzeAll(traces, cfg, 1, 0); err == nil {
		t.Fatal("batch with a failing trace should error")
	}
}
