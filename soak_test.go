// Out-of-core soak: the streaming pipeline over a synthetic trace
// whose size is set by PAS2P_SOAK_EVENTS (default a 200k-event smoke
// that runs in every CI pass; the memory-ceiling CI job sets 100M).
// The test asserts the property the ISSUE's scale claim rests on: peak
// heap during a streamed analysis stays far below the in-core event
// footprint, and the answer is still a valid phase table.
package pas2p_test

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync/atomic"
	"testing"
	"time"
	"unsafe"

	"pas2p"
	"pas2p/internal/trace"
	"pas2p/internal/workload"
)

// soakEvents resolves the soak size from the environment.
func soakEvents(t *testing.T) int64 {
	v := os.Getenv("PAS2P_SOAK_EVENTS")
	if v == "" {
		return 200_000
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil || n <= 0 {
		t.Fatalf("PAS2P_SOAK_EVENTS=%q is not a positive integer", v)
	}
	return n
}

// heapWatcher samples the live heap until stopped and records the peak.
type heapWatcher struct {
	peak atomic.Uint64
	stop chan struct{}
	done chan struct{}
}

func watchHeap() *heapWatcher {
	w := &heapWatcher{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(w.done)
		var ms runtime.MemStats
		tick := time.NewTicker(25 * time.Millisecond)
		defer tick.Stop()
		for {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > w.peak.Load() {
				w.peak.Store(ms.HeapAlloc)
			}
			select {
			case <-w.stop:
				return
			case <-tick.C:
			}
		}
	}()
	return w
}

func (w *heapWatcher) finish() uint64 {
	close(w.stop)
	<-w.done
	return w.peak.Load()
}

func TestStreamSoakBoundedMemory(t *testing.T) {
	target := soakEvents(t)
	if testing.Short() && target > 1_000_000 {
		t.Skip("large soak skipped in -short")
	}
	spec := workload.SynthSpec{Procs: 16, TargetEvents: target, Seed: 1}
	path := t.TempDir() + "/soak.pas2p"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	meta, err := workload.Synthesize(f, spec)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("soak trace: %d events, %d MiB on disk", meta.Events, st.Size()>>20)

	// The in-core pipeline's floor: the decoded event array alone (the
	// real footprint is higher — buildLogical copies it, then the tick
	// table and phase matrices come on top). The streamed run must stay
	// under a tenth of it, with a fixed-size floor so the assertion
	// stays meaningful at smoke scale where constant overheads (pools,
	// per-rank read-ahead blocks, the test binary itself) dominate.
	eventBytes := uint64(unsafe.Sizeof(trace.Event{}))
	inCoreFloor := uint64(meta.Events) * eventBytes
	limit := inCoreFloor / 10
	if floor := uint64(64 << 20); limit < floor {
		limit = floor
	}

	in, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	br, err := pas2p.NewTraceBlockReader(in)
	if err != nil {
		t.Fatal(err)
	}
	defer br.Close()

	runtime.GC()
	w := watchHeap()
	start := time.Now()
	res, err := pas2p.AnalyzeStream(context.Background(), br, pas2p.DefaultPhaseConfig(), 1,
		pas2p.AnalyzeStreamOptions{MemBudgetBytes: 32 << 20, SpillDir: t.TempDir()})
	elapsed := time.Since(start)
	peak := w.finish()
	if err != nil {
		t.Fatalf("AnalyzeStream: %v", err)
	}
	defer res.Close()

	if res.Stats.Ticks == 0 || res.Table.TotalPhases == 0 {
		t.Fatalf("implausible soak analysis: %+v", res.Stats)
	}
	if err := res.Table.Validate(); err != nil {
		t.Fatalf("soak table invalid: %v", err)
	}
	rate := float64(meta.Events) / elapsed.Seconds()
	t.Logf("streamed %d events in %v (%.0f events/s), %d ticks, %d phases, peak heap %d MiB (limit %d MiB)",
		meta.Events, elapsed.Round(time.Millisecond), rate,
		res.Stats.Ticks, res.Table.TotalPhases, peak>>20, limit>>20)
	if peak > limit {
		t.Fatalf("peak heap %d bytes exceeds bound %d (10%% of the %d-byte in-core event floor, 64 MiB min)",
			peak, limit, inCoreFloor)
	}

	// Leave a machine-readable scale point for the bench artifact job.
	if out := os.Getenv("PAS2P_SOAK_JSON"); out != "" {
		doc := fmt.Sprintf(`{"events": %d, "trace_bytes": %d, "elapsed_ns": %d, "events_per_sec": %.0f, "peak_heap_bytes": %d, "heap_limit_bytes": %d, "ticks": %d, "phases": %d, "spilled_phases": %d}`+"\n",
			meta.Events, st.Size(), elapsed.Nanoseconds(), rate, peak, limit,
			res.Stats.Ticks, res.Table.TotalPhases, res.Stats.SpilledPhases)
		if err := os.WriteFile(out, []byte(doc), 0o644); err != nil {
			t.Fatalf("writing %s: %v", out, err)
		}
		t.Logf("soak scale point written to %s", out)
	}
}

// TestAnalyzeStreamCancelNoLeaks pins satellite 2's property: a
// context-cancelled streamed analysis returns promptly with the
// context error, the reader's pooled buffers are releasable via Close,
// and no goroutines are left behind (the streaming pipeline is pull-
// based — cancellation must not strand anything).
func TestAnalyzeStreamCancelNoLeaks(t *testing.T) {
	spec := workload.SynthSpec{Procs: 4, TargetEvents: 50_000, Seed: 3}
	path := t.TempDir() + "/cancel.pas2p"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := workload.Synthesize(f, spec); err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		in, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		br, err := pas2p.NewTraceBlockReader(in)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := pas2p.AnalyzeStream(ctx, br, pas2p.DefaultPhaseConfig(), 1,
			pas2p.AnalyzeStreamOptions{}); err != context.Canceled {
			t.Fatalf("cancelled AnalyzeStream err = %v, want context.Canceled", err)
		}
		if err := br.Close(); err != nil {
			t.Fatalf("Close after cancel: %v", err)
		}
		in.Close()
	}
	// Goroutine counts are eventually consistent (GC, timer goroutines);
	// poll briefly before declaring a leak.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after 10 cancelled runs", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}
