GO ?= go

.PHONY: build test race bench check cover fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The phase and logical stages carry the concurrency (parallel fill,
# candidate scoring, AnalyzeAll), obs is written to by every simulated
# rank, faults counters are bumped from rank goroutines, and sigrepo
# serializes concurrent writers on a lock file; run them under the
# race detector.
race:
	$(GO) test -race ./internal/phase/... ./internal/logical/... ./internal/obs/... ./internal/faults/... ./internal/sigrepo/... ./internal/fsx/...

# Seed-vs-indexed extraction comparison over the registered workloads;
# medians over -count 3 are what README quotes.
bench:
	$(GO) test ./internal/phase -run xxx -bench ExtractApps -benchtime 5x -count 3

# Statement coverage with the CI ratchet threshold.
cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# Native fuzz smoke: one -fuzz target per invocation.
fuzz:
	$(GO) test -fuzz=FuzzCompressRoundTrip -fuzztime=10s ./internal/trace
	$(GO) test -fuzz=FuzzDecodeTracefile -fuzztime=10s ./internal/trace
	$(GO) test -fuzz=FuzzLogicalOrder -fuzztime=10s ./internal/logical

check: build
	$(GO) vet ./...
	$(GO) test -shuffle=on ./...
	$(GO) test -race ./internal/phase/... ./internal/logical/... ./internal/obs/... ./internal/faults/... ./internal/sigrepo/... ./internal/fsx/...
