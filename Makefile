GO ?= go

.PHONY: build test race bench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The phase and logical stages carry the concurrency (parallel fill,
# candidate scoring, AnalyzeAll), and obs is written to by every
# simulated rank; run them under the race detector.
race:
	$(GO) test -race ./internal/phase/... ./internal/logical/... ./internal/obs/...

# Seed-vs-indexed extraction comparison over the registered workloads;
# medians over -count 3 are what README quotes.
bench:
	$(GO) test ./internal/phase -run xxx -bench ExtractApps -benchtime 5x -count 3

check: build
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./internal/phase/... ./internal/logical/... ./internal/obs/...
