GO ?= go

# Packages whose concurrency runs under the race detector: phase and
# logical carry the extraction parallelism, obs is written to by every
# simulated rank (and ./internal/obs/... recursively covers obshttp,
# whose tests scrape a live server while spans and flight events are
# recorded), faults counters are bumped from rank goroutines, sigrepo
# serializes concurrent writers on a lock file, trace runs the
# parallel block codec (encode pool, decode batch engine), scenario
# runs campaign cases on a bounded worker pool, and service (plus its
# daemon and load generator) serves concurrent HTTP traffic over
# shared admission, cache, and drain state — including the chaos
# serving proof.
RACE_PKGS = ./internal/phase/... ./internal/logical/... ./internal/obs/... ./internal/faults/... ./internal/sigrepo/... ./internal/fsx/... ./internal/trace/... ./internal/sim/... ./internal/scenario/... ./internal/service/... ./cmd/pas2pd/... ./cmd/pas2p-loadgen/...

.PHONY: build test race bench bench-json bench-baseline soak-100m check cover fuzz scenarios

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# Seed-vs-indexed extraction comparison over the registered workloads;
# medians over -count 3 are what README quotes.
bench:
	$(GO) test ./internal/phase -run xxx -bench ExtractApps -benchtime 5x -count 3

# Machine-readable benchmark document: pipeline rows (table 8/9), the
# block-codec worker sweep, the observer-overhead comparison
# (instrumented vs nil-observer pipeline), and the out-of-core
# streaming scale point. BENCH_PR10.json is the committed copy (its
# 100M-event stream row comes from the soak test, not this target).
bench-json:
	$(GO) run ./cmd/pas2p-bench -table 8 -json BENCH_PR10.json

# Out-of-core soak at full scale: 100M synthetic events streamed under
# a memory budget, peak heap asserted < 10% of the in-core event
# footprint. Writes the machine-readable scale point to soak100m.json.
soak-100m:
	PAS2P_SOAK_EVENTS=100000000 PAS2P_SOAK_JSON=soak100m.json \
		$(GO) test . -run TestStreamSoakBoundedMemory -count=1 -v -timeout 1800s

# Refresh the benchstat baseline CI compares against. Run on a quiet
# machine; commit bench/baseline.txt with the change that moves it.
bench-baseline:
	$(GO) test ./internal/trace ./internal/phase -run xxx -bench . -benchtime 2x -count 3 | tee bench/baseline.txt

# Statement coverage with the CI ratchet threshold.
cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# Native fuzz smoke: one -fuzz target per invocation.
fuzz:
	$(GO) test -fuzz=FuzzCompressRoundTrip -fuzztime=10s ./internal/trace
	$(GO) test -fuzz=FuzzDecodeTracefile -fuzztime=10s ./internal/trace
	$(GO) test -fuzz=FuzzBlockReader -fuzztime=10s ./internal/trace
	$(GO) test -fuzz=FuzzLogicalOrder -fuzztime=10s ./internal/logical
	$(GO) test -fuzz=FuzzScenarioParse -fuzztime=10s ./internal/scenario
	$(GO) test -fuzz=FuzzServiceRequest -fuzztime=10s ./internal/service

# Execute the starter scenario suite end to end (the declarative
# chaos/predict campaign; see examples/scenarios/).
scenarios: build
	$(GO) run ./cmd/pas2p scenario run examples/scenarios -junit scenario-results.xml

check: build
	$(GO) vet ./...
	$(GO) test -shuffle=on ./...
	$(GO) test -race $(RACE_PKGS)
