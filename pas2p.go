// Package pas2p is a Go implementation of PAS2P — Parallel Application
// Signature for Performance Prediction (Wong, Rexachs, Luque; CLUSTER
// 2009 and IEEE TPDS 2014). It characterises a message-passing
// application by tracing its communication events on a base machine,
// builds a machine-independent logical model, extracts the recurring
// phases that dominate execution, packages them (with coordinated
// checkpoints) into a signature, and predicts the application's
// execution time on other machines by running just that signature:
//
//	PET = Σ PhaseETᵢ · Wᵢ            (the paper's Equation 1)
//
// Applications are written against the message-passing API in
// pas2p.Comm (MPI-like point-to-point and collective operations) and
// run on a deterministic discrete-event runtime parameterised by
// cluster models (CPU rates, memory contention, Gigabit Ethernet or
// InfiniBand interconnects, process mappings), so one host can play
// the role of every cluster in the paper's evaluation.
//
// Typical use:
//
//	app, _ := pas2p.MakeApp("cg", 64, "classC")
//	base, _ := pas2p.NewDeployment(pas2p.ClusterA(), 64, pas2p.MapBlock)
//	target, _ := pas2p.NewDeployment(pas2p.ClusterB(), 64, pas2p.MapBlock)
//	out, _ := pas2p.Predict(pas2p.Experiment{App: app, Base: base, Target: target})
//	fmt.Printf("PET %v, real AET %v, error %.2f%%\n", out.PET, out.AETTarget, out.PETEPercent)
package pas2p

import (
	"context"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"pas2p/internal/apps"
	"pas2p/internal/checkpoint"
	"pas2p/internal/faults"
	"pas2p/internal/logical"
	"pas2p/internal/machine"
	"pas2p/internal/mpi"
	"pas2p/internal/obs"
	"pas2p/internal/phase"
	"pas2p/internal/predict"
	"pas2p/internal/scheduler"
	"pas2p/internal/signature"
	"pas2p/internal/trace"
	"pas2p/internal/vtime"
	"pas2p/internal/workload"
)

// Core application types.
type (
	// App is a parallel program: Body runs once per rank against the
	// Comm message-passing API.
	App = mpi.App
	// Comm is a rank's communicator handle (Send/Recv/collectives,
	// Compute declarations, Split).
	Comm = mpi.Comm
	// Request identifies an outstanding nonblocking operation.
	Request = mpi.Request
	// RunConfig and RunResult configure and report one execution.
	RunConfig = mpi.RunConfig
	RunResult = mpi.RunResult
)

// Reduction operators for Reduce/Allreduce.
const (
	Sum  = mpi.Sum
	Prod = mpi.Prod
	Max  = mpi.Max
	Min  = mpi.Min
)

// Wildcards for Recv/Irecv.
const (
	AnySource = mpi.AnySource
	AnyTag    = mpi.AnyTag
)

// Machine modelling.
type (
	// Cluster models a target machine (Table 2 of the paper).
	Cluster = machine.Cluster
	// Deployment binds ranks to a cluster under a mapping policy.
	Deployment = machine.Deployment
	// MappingPolicy selects block or cyclic rank placement.
	MappingPolicy = machine.MappingPolicy
	// Topology makes inter-node paths distance-dependent (fat tree or
	// torus); Cluster.Topology's zero value is a flat fabric.
	Topology = machine.Topology
	// TopologyKind selects the distance model.
	TopologyKind = machine.TopologyKind
)

// Topology kinds.
const (
	TopoFlat    = machine.TopoFlat
	TopoFatTree = machine.TopoFatTree
	TopoTorus2D = machine.TopoTorus2D
)

// Mapping policies.
const (
	MapBlock  = machine.MapBlock
	MapCyclic = machine.MapCyclic
)

// Preset clusters reproducing the paper's Table 2.
var (
	ClusterA = machine.ClusterA
	ClusterB = machine.ClusterB
	ClusterC = machine.ClusterC
	ClusterD = machine.ClusterD
)

// ClusterByName resolves "A".."D" or "Cluster A".."Cluster D".
func ClusterByName(name string) *Cluster { return machine.ByName(name) }

// NewDeployment lays ranks out on a cluster.
func NewDeployment(c *Cluster, ranks int, policy MappingPolicy) (*Deployment, error) {
	return machine.NewDeployment(c, ranks, policy)
}

// RunApp executes an application on a deployment (optionally tracing).
func RunApp(app App, cfg RunConfig) (*RunResult, error) { return mpi.Run(app, cfg) }

// Workload registry: the paper's applications (NPB CG/BT/SP/LU/FT,
// Sweep3D, SMG2000, POP, Moldy, a GROMACS-like MD, and the §6
// master/worker case).

// MakeApp instantiates a registered application.
func MakeApp(name string, procs int, workload string) (App, error) {
	return apps.Make(name, procs, workload)
}

// AppNames lists the registered applications.
func AppNames() []string { return apps.Names() }

// AppSpec exposes a registered application's metadata.
func AppSpec(name string) *apps.Spec { return apps.Lookup(name) }

// Analysis pipeline types.
type (
	// Trace is the §3.1 event log of one instrumented run.
	Trace = trace.Trace
	// Logical is the §3.2 machine-independent application model.
	Logical = logical.Logical
	// PhaseConfig holds the §3.3 similarity/relevance thresholds.
	PhaseConfig = phase.Config
	// PhaseAnalysis is the extracted phase set.
	PhaseAnalysis = phase.Analysis
	// PhaseTable is the Fig. 7 table a signature is built from.
	PhaseTable = phase.Table
	// Signature is the §3.4 parallel application signature.
	Signature = signature.Signature
	// SignatureOptions tunes checkpointing and warm-up.
	SignatureOptions = signature.Options
	// ExecResult is a signature execution: SET, PET, per-phase times.
	ExecResult = signature.ExecResult
	// ErrISAMismatch is returned when executing a signature on a
	// different instruction set (§7); rebuild on the target instead.
	ErrISAMismatch = signature.ErrISAMismatch
	// CheckpointModel prices the simulated DMTCP substrate.
	CheckpointModel = checkpoint.CostModel
	// Experiment and Outcome drive the Fig. 12 validation loop.
	Experiment = predict.Experiment
	Outcome    = predict.Outcome
	// PartialExec is the related-work baseline predictor [17].
	PartialExec = predict.PartialExec
)

// Trace I/O. The binary tracefile codec runs on a worker-pool block
// engine: fixed-size checksummed record blocks are serialised,
// CRC-verified and deserialised in parallel with byte-identical output
// at every worker count, and the streaming reader/writer let callers
// fold over a tracefile block-by-block without materialising the full
// event slice.
type (
	// TraceMeta is a tracefile's header (app, procs, event count, AET).
	TraceMeta = trace.Meta
	// TraceCodecOptions tunes the block engine (worker count, metrics
	// registry); the zero value selects all CPUs with no metrics.
	TraceCodecOptions = trace.CodecOptions
	// TraceBlockReader streams a tracefile one checksummed block at a
	// time.
	TraceBlockReader = trace.BlockReader
	// TraceBlockWriter streams a tracefile out block by block.
	TraceBlockWriter = trace.BlockWriter
)

// EncodeTrace writes the checksummed binary tracefile format through
// the parallel block engine.
func EncodeTrace(w io.Writer, t *Trace, opts TraceCodecOptions) error {
	return trace.EncodeWith(w, t, opts)
}

// DecodeTrace reads a binary tracefile (current or legacy format),
// verifying every checksum.
func DecodeTrace(r io.Reader, opts TraceCodecOptions) (*Trace, error) {
	return trace.DecodeWith(r, opts)
}

// DecodeAnyTrace sniffs the tracefile format (binary, compressed or
// JSON) and decodes it.
func DecodeAnyTrace(r io.Reader, opts TraceCodecOptions) (*Trace, error) {
	return trace.DecodeAnyWith(r, opts)
}

// VerifyTraceStream checks every checksum of a binary tracefile
// block-by-block without materialising any events, returning its
// header metadata.
func VerifyTraceStream(r io.Reader) (TraceMeta, error) { return trace.VerifyStream(r) }

// NewTraceBlockReader opens a streaming reader over a binary
// tracefile.
func NewTraceBlockReader(r io.Reader) (*TraceBlockReader, error) { return trace.NewBlockReader(r) }

// NewTraceBlockWriter opens a streaming writer; meta.Events must
// declare the total event count up front (the header is written
// first), and Close fails if the appended events do not match it.
func NewTraceBlockWriter(w io.Writer, meta TraceMeta, opts TraceCodecOptions) (*TraceBlockWriter, error) {
	return trace.NewBlockWriter(w, meta, opts)
}

// DefaultPhaseConfig returns the paper's thresholds (80% event
// similarity, 85% compute similarity, 1% relevance).
func DefaultPhaseConfig() PhaseConfig { return phase.DefaultConfig() }

// DefaultSignatureOptions returns the paper-flavoured checkpointing
// setup (DMTCP-like costs, warm-up before measurement).
func DefaultSignatureOptions() SignatureOptions { return signature.DefaultOptions() }

// OrderLogical builds the machine-independent application model using
// the PAS2P ordering (§3.2): receives pinned to LT(send)+1 and
// collectives aligned on one tick.
func OrderLogical(tr *Trace) (*Logical, error) { return logical.Order(tr) }

// OrderLamport builds the model with the classic Lamport ordering over
// physical occurrence order — the machine-dependent baseline whose
// receive nondeterminism the PAS2P ordering removes.
func OrderLamport(tr *Trace) (*Logical, error) { return logical.OrderLamport(tr) }

// ExtractPhases runs §3.3's pattern identification on a logical trace.
func ExtractPhases(l *Logical, cfg PhaseConfig) (*PhaseAnalysis, error) {
	return phase.Extract(l, cfg)
}

// Analyze performs PAS2P stage A on a traced run: logical ordering,
// phase extraction and phase-table construction. warmOccurrence
// selects which occurrence of each phase the signature will
// checkpoint (1 = the second, leaving one occurrence to warm up).
func Analyze(tr *Trace, cfg PhaseConfig, warmOccurrence int) (*PhaseAnalysis, *PhaseTable, error) {
	return AnalyzeCtx(context.Background(), tr, cfg, warmOccurrence)
}

// AnalyzeCtx is Analyze with cancellation: the context is checked at
// every stage boundary (before ordering, extraction and table
// construction), so a served request whose deadline expires — or a
// draining server shedding in-flight work — abandons the pipeline at
// the next boundary instead of completing a result nobody will read.
// A cancelled analysis returns ctx.Err() and nil outputs; it never
// returns a partial analysis.
func AnalyzeCtx(ctx context.Context, tr *Trace, cfg PhaseConfig, warmOccurrence int) (*PhaseAnalysis, *PhaseTable, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	sp := cfg.Observer.StartSpan("analyze.order")
	l, err := logical.Order(tr)
	if err != nil {
		sp.End()
		return nil, nil, err
	}
	sp.SetCounter("events", int64(len(tr.Events)))
	sp.SetCounter("ticks", int64(l.NumTicks()))
	sp.End()
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	// phase.Extract records its own "phase.extract" span via cfg.Observer.
	an, err := phase.Extract(l, cfg)
	if err != nil {
		return nil, nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	sp = cfg.Observer.StartSpan("analyze.table")
	tb, err := an.BuildTable(warmOccurrence)
	if err != nil {
		sp.End()
		return nil, nil, err
	}
	if sp != nil {
		// RelevantRows allocates; keep it off the nil-observer path.
		sp.SetCounter("relevant_phases", int64(len(tb.RelevantRows())))
	}
	sp.End()
	return an, tb, nil
}

// Out-of-core analysis. AnalyzeStream is stage A over a tracefile that
// never fits in memory: per-rank streams off the v2 format feed a
// bounded k-way merge that emits the logical order tick by tick, phase
// extraction ingests ticks as they arrive, and representative phase
// matrices spill to CRC-checked files under a memory budget. The
// resulting phase set, occurrence lists and phase table are
// bit-identical to Analyze on the decoded trace.
type (
	// StreamAnalysis is an out-of-core analysis result: the phase
	// analysis (with Logical nil — the trace was never materialised),
	// the phase table, and spill statistics. Call Close when done to
	// delete the spill files; MaterializeCells loads every phase's
	// behaviour matrix back in-core if needed.
	StreamAnalysis = phase.StreamResult
	// StreamStats reports what the out-of-core machinery did.
	StreamStats = phase.StreamStats
)

// AnalyzeStreamOptions tunes the out-of-core pipeline's memory policy.
type AnalyzeStreamOptions struct {
	// MemBudgetBytes caps the resident bytes of representative phase
	// matrices; beyond it cold matrices spill to SpillDir and reload on
	// demand. 0 keeps everything in memory.
	MemBudgetBytes int64
	// SpillDir hosts the spill files; required when MemBudgetBytes > 0,
	// created if missing.
	SpillDir string
}

// AnalyzeStream runs stage A over an open tracefile without decoding
// it into memory: the reader's source must be random-access (a file or
// byte slice) and in the v2 format. Memory stays O(window + budget)
// regardless of trace length. The context is checked throughout the
// tick loop; a cancelled analysis returns ctx.Err().
func AnalyzeStream(ctx context.Context, r *TraceBlockReader, cfg PhaseConfig, warmOccurrence int, opts AnalyzeStreamOptions) (*StreamAnalysis, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sp := cfg.Observer.StartSpan("analyze.stream")
	defer sp.End()
	rs, err := r.RankStreams()
	if err != nil {
		return nil, err
	}
	tick, err := logical.StreamOrder(rs)
	if err != nil {
		return nil, err
	}
	res, err := phase.ExtractStreamTable(ctx, tick, tick.Meta(), warmOccurrence, phase.StreamConfig{
		Config:         cfg,
		MemBudgetBytes: opts.MemBudgetBytes,
		SpillDir:       opts.SpillDir,
	})
	if err != nil {
		return nil, err
	}
	sp.SetCounter("events", int64(rs.Meta().Events))
	sp.SetCounter("ticks", int64(res.Stats.Ticks))
	sp.SetCounter("spilled_phases", int64(res.Stats.SpilledPhases))
	return res, nil
}

// AnalyzeAll runs Analyze over several traces concurrently on a
// bounded worker pool (workers <= 0 selects GOMAXPROCS). Results come
// back in input order regardless of completion order; phase extraction
// itself is deterministic, so the outputs are identical to calling
// Analyze in a loop. On failure the returned error is the one from the
// lowest-indexed failing trace, and both slices are nil.
func AnalyzeAll(traces []*Trace, cfg PhaseConfig, warmOccurrence int, workers int) ([]*PhaseAnalysis, []*PhaseTable, error) {
	return AnalyzeAllCtx(context.Background(), traces, cfg, warmOccurrence, workers)
}

// AnalyzeAllCtx is AnalyzeAll with cancellation: each worker checks
// the context before claiming the next trace and AnalyzeCtx checks it
// at every stage boundary, so cancelling stops the batch at the next
// boundary. A cancelled batch returns ctx.Err() and nil slices.
func AnalyzeAllCtx(ctx context.Context, traces []*Trace, cfg PhaseConfig, warmOccurrence int, workers int) ([]*PhaseAnalysis, []*PhaseTable, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(traces) {
		workers = len(traces)
	}
	sp := cfg.Observer.StartSpan("analyze.all")
	sp.SetCounter("traces", int64(len(traces)))
	sp.SetCounter("workers", int64(workers))
	defer sp.End()
	ans := make([]*PhaseAnalysis, len(traces))
	tbs := make([]*PhaseTable, len(traces))
	errs := make([]error, len(traces))
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= len(traces) || ctx.Err() != nil {
					return
				}
				ans[i], tbs[i], errs[i] = AnalyzeCtx(ctx, traces[i], cfg, warmOccurrence)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	return ans, tbs, nil
}

// BuildSignature constructs the signature on the base machine,
// returning it with its construction time (SCT).
func BuildSignature(app App, tb *PhaseTable, base *Deployment, opts SignatureOptions) (*Signature, vtime.Duration, error) {
	br, err := signature.Build(app, tb, base, opts)
	if err != nil {
		return nil, 0, err
	}
	return br.Signature, br.SCT, nil
}

// Predict runs the complete Fig. 12 experimental loop.
func Predict(e Experiment) (*Outcome, error) { return predict.Run(e) }

// Observability. An Observer threads through the pipeline configs
// (PhaseConfig.Observer, SignatureOptions.Observer, RunConfig.Observer,
// Experiment.Observer); nil — the default everywhere — keeps every
// stage on its uninstrumented fast path.
type (
	// Observer bundles a metrics registry and an optional trace-event
	// timeline.
	Observer = obs.Observer
	// MetricsRegistry holds named counters/gauges/histograms and
	// completed stage spans.
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a frozen registry state, writable as JSON or
	// Prometheus text.
	MetricsSnapshot = obs.Snapshot
	// TraceTimeline accumulates Chrome trace-event (Perfetto) entries.
	TraceTimeline = obs.Timeline
)

// NewObserver returns a metrics-only observer.
func NewObserver() *Observer { return obs.New() }

// NewObserverWithTimeline returns an observer that also records a
// trace-event timeline.
func NewObserverWithTimeline() *Observer { return obs.NewWithTimeline() }

// Fault injection. A FaultInjector threads through the pipeline like
// an Observer (RunConfig.Faults, SignatureOptions.Faults,
// Experiment.Faults); nil — the default everywhere — keeps every stage
// on its bit-identical fault-free path. All fault decisions are pure
// functions of the seed and each event's identity, so a fixed seed
// reproduces the identical fault schedule, recovery trace, and
// prediction.
type (
	// FaultConfig selects fault classes (message loss/duplication/
	// delay, restart crashes, clock jitter/skew) and intensities.
	FaultConfig = faults.Config
	// FaultInjector makes the deterministic fault decisions and counts
	// injected/recovered faults.
	FaultInjector = faults.Injector
	// FaultReport is a snapshot of the injector's fault accounting.
	FaultReport = faults.Report
)

// NewFaultInjector builds an injector; operational knobs left zero
// (RTO, retry bounds, backoff) get defaults.
func NewFaultInjector(cfg FaultConfig) (*FaultInjector, error) { return faults.New(cfg) }

// ParseFaultSpec builds an injector from the CLI fault grammar, e.g.
// "loss=0.05,dup=0.01,crash=0.2,jitter=0.01,skew=5ms".
func ParseFaultSpec(seed int64, spec string) (*FaultInjector, error) {
	return faults.ParseSpec(seed, spec)
}

// Workload-effect extension ([2]): fit per-phase scaling laws over
// analyses at several workload sizes and extrapolate unseen sizes.
type (
	// WorkloadPoint is one analysed workload size.
	WorkloadPoint = workload.Point
	// WorkloadModel extrapolates PET across workload sizes.
	WorkloadModel = workload.Model
)

// FitWorkloadModel fits per-phase power laws over two or more analysed
// workload points.
func FitWorkloadModel(points []WorkloadPoint) (*WorkloadModel, error) {
	return workload.Fit(points)
}

// Scheduler substrate (§1's motivating use case): plan a batch queue
// with signature-grade runtime estimates.
type (
	// SchedJob is one queued batch job.
	SchedJob = scheduler.Job
	// SchedResult summarises a simulated schedule.
	SchedResult = scheduler.Result
	// BackfillPolicy orders backfill candidates.
	BackfillPolicy = scheduler.BackfillPolicy
)

// Backfill policies.
const (
	BackfillFCFS     = scheduler.BackfillFCFS
	BackfillShortest = scheduler.BackfillShortest
)

// ScheduleJobs runs EASY backfilling over a homogeneous core pool.
func ScheduleJobs(jobs []SchedJob, cores int, policy BackfillPolicy) (*SchedResult, error) {
	return scheduler.Schedule(jobs, cores, policy)
}

// Duration/time re-exports so callers can interpret results.
type (
	// VDuration is a span of virtual time (nanoseconds).
	VDuration = vtime.Duration
	// VTime is an instant of virtual time.
	VTime = vtime.Time
)

// Seconds converts a virtual duration to float64 seconds.
func Seconds(d VDuration) float64 { return d.Seconds() }
