package service

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"pas2p"
	"pas2p/internal/apps"
	"pas2p/internal/logical"
	"pas2p/internal/machine"
	"pas2p/internal/mpi"
	"pas2p/internal/obs"
	"pas2p/internal/obs/obshttp"
	"pas2p/internal/phase"
	"pas2p/internal/signature"
	"pas2p/internal/sigrepo"
	"pas2p/internal/trace"
)

// DeadlineHeader lets a client tighten (never widen) its request
// deadline, in whole milliseconds.
const DeadlineHeader = "X-Deadline-Ms"

// CacheHeader reports how an analyze request was satisfied: "hit"
// (LRU), "dedup" (shared a concurrent identical submission), "miss"
// (computed fresh), or "bypass" (non-v2 upload — no whole-file CRC to
// key on).
const CacheHeader = "X-Cache"

// AnalyzeModeHeader reports which pipeline served an analyze request:
// "in-core" (the whole trace decoded into memory) or "stream" (the
// out-of-core bounded-memory pipeline over a disk spool).
const AnalyzeModeHeader = "X-Analyze-Mode"

// Wire types. The loadgen imports these, so requests and responses
// stay structurally in sync between client and server.

// PhaseSummary is one relevant phase-table row in an analyze answer.
type PhaseSummary struct {
	PhaseID   int   `json:"phase_id"`
	Weight    int   `json:"weight"`
	PhaseETNS int64 `json:"phase_et_ns"`
}

// AnalyzeResponse answers POST /v1/analyze (body: tracefile bytes).
type AnalyzeResponse struct {
	App    string `json:"app"`
	Procs  int    `json:"procs"`
	Events int    `json:"events"`
	// TraceCRC32C echoes the uploaded tracefile's whole-file CRC-32C
	// (zero for non-v2 uploads): the client can verify the server
	// analysed exactly the bytes it sent.
	TraceCRC32C uint32 `json:"trace_crc32c"`
	Warm        int    `json:"warm_occurrence"`
	BaseAETNS   int64  `json:"base_aet_ns"`
	TotalPhases int    `json:"total_phases"`
	Relevant    int    `json:"relevant_phases"`
	// PredictedAETNS is Eq. 1 applied to the table's own base times
	// over relevant rows — the self-check a client can eyeball against
	// BaseAETNS.
	PredictedAETNS int64          `json:"predicted_aet_ns"`
	Phases         []PhaseSummary `json:"phases"`
}

// SignRequest asks the server to trace, analyse, build and store a
// signature for a registered application.
type SignRequest struct {
	App       string `json:"app"`
	Procs     int    `json:"procs,omitempty"`    // default 64
	Workload  string `json:"workload,omitempty"` // default: app's default workload
	Base      string `json:"base,omitempty"`     // base cluster name, default "A"
	AllPhases bool   `json:"all_phases,omitempty"`
}

// SignResponse reports the stored signature. PayloadSHA256 comes from
// a verifying re-read of the entry just written — a checksum-valid
// answer even when the repository sits on a faulty filesystem.
type SignResponse struct {
	App           string `json:"app"`
	Procs         int    `json:"procs"`
	Workload      string `json:"workload"`
	BaseCluster   string `json:"base_cluster"`
	TotalPhases   int    `json:"total_phases"`
	Relevant      int    `json:"relevant_phases"`
	Checkpoints   int    `json:"checkpoints"`
	SCTNS         int64  `json:"sct_ns"`
	Path          string `json:"path"`
	PayloadSHA256 string `json:"payload_sha256"`
}

// LookupResponse answers GET /v1/lookup?app=&procs=&workload=.
type LookupResponse struct {
	App           string `json:"app"`
	Procs         int    `json:"procs"`
	Workload      string `json:"workload"`
	BaseISA       string `json:"base_isa"`
	BaseCluster   string `json:"base_cluster"`
	TotalPhases   int    `json:"total_phases"`
	Relevant      int    `json:"relevant_phases"`
	Path          string `json:"path"`
	PayloadSHA256 string `json:"payload_sha256"`
}

// PredictRequest executes the stored signature on a target machine.
type PredictRequest struct {
	App      string `json:"app"`
	Procs    int    `json:"procs,omitempty"`
	Workload string `json:"workload,omitempty"`
	Target   string `json:"target,omitempty"` // target cluster name, default "B"
	Cores    int    `json:"cores,omitempty"`  // restrict the target to this many cores
}

// PredictResponse is the prediction: PET via the paper's Eq. 1, SET
// for the cost of obtaining it, and the checksum of the signature
// payload the prediction came from.
type PredictResponse struct {
	App           string `json:"app"`
	Procs         int    `json:"procs"`
	Workload      string `json:"workload"`
	Target        string `json:"target"`
	SETNS         int64  `json:"set_ns"`
	PETNS         int64  `json:"pet_ns"`
	Degraded      bool   `json:"degraded,omitempty"`
	LostPhases    []int  `json:"lost_phases,omitempty"`
	PayloadSHA256 string `json:"payload_sha256"`
}

// Handler assembles the service mux: the five /v1 endpoints wrapped in
// the robustness kit, plus the obshttp telemetry surface (/metrics,
// /flight, /spans, /timeline, /debug/pprof) and a /healthz that
// reports the daemon lifecycle (ready → draining → done).
func (s *Service) Handler() (http.Handler, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/analyze", s.wrapLane(s.analyzeLane, "analyze", s.handleAnalyze))
	mux.HandleFunc("/v1/sign", s.wrap(s.heavy, "sign", s.handleSign))
	mux.HandleFunc("/v1/lookup", s.wrap(s.light, "lookup", s.handleLookup))
	mux.HandleFunc("/v1/predict", s.wrap(s.heavy, "predict", s.handlePredict))
	mux.HandleFunc("/v1/fsck", s.wrap(s.heavy, "fsck", s.handleFsck))
	h, err := obshttp.NewHandlers(s.o)
	if err != nil {
		return nil, err
	}
	h.Health = s.healthState
	h.Mount(mux)
	mux.HandleFunc("/", s.handleIndex)
	return mux, nil
}

// healthState reports the daemon lifecycle for /healthz.
func (s *Service) healthState() string {
	if !s.draining.Load() {
		return "ready"
	}
	select {
	case <-s.drained:
		return "done"
	default:
		return "draining"
	}
}

func (s *Service) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		errNotFound("no such endpoint: %s", r.URL.Path).write(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `pas2pd signature service

POST /v1/analyze   analyse an uploaded tracefile (?warm=N)
POST /v1/sign      trace+sign a registered app, store in the repo
GET  /v1/lookup    look a stored signature up (?app=&procs=&workload=)
POST /v1/predict   execute a stored signature on a target machine
POST /v1/fsck      verify the repository, quarantine corrupt entries
/metrics /metrics.json /spans /timeline /flight /healthz /debug/pprof/
`)
}

// handlerResult is a successful handler outcome: the JSON body plus
// any response headers (X-Cache and friends).
type handlerResult struct {
	v      any
	header map[string]string
}

type apiHandler func(ctx context.Context, r *http.Request) (*handlerResult, *APIError)

// wrap is the robustness kit around every endpoint: in-flight
// accounting against the drain gate, the per-request deadline context,
// body capping, admission control with load shedding, panic isolation,
// latency/EWMA accounting, and the no-deadline-blown-200s rule.
func (s *Service) wrap(a *admitter, op string, h apiHandler) http.HandlerFunc {
	return s.wrapLane(func(*http.Request) *admitter { return a }, op, h)
}

// streamEligible reports whether an analyze upload should be served by
// the out-of-core stream lane: a declared Content-Length at or above
// the threshold. Chunked uploads (length -1) stay in-core — without a
// declared size the lane choice would be a guess, and the in-core body
// cap still bounds them.
func (s *Service) streamEligible(r *http.Request) bool {
	return s.cfg.StreamThresholdBytes > 0 && r.ContentLength >= s.cfg.StreamThresholdBytes
}

// analyzeLane routes analyze requests between the heavy (in-core) and
// stream (out-of-core) admission classes by declared body size, so the
// cost model of each lane learns its own service-time distribution.
func (s *Service) analyzeLane(r *http.Request) *admitter {
	if s.streamEligible(r) {
		return s.stream
	}
	return s.heavy
}

// laneParams resolves an admission class's request parameters: default
// deadline, latency histogram, and body cap.
func (s *Service) laneParams(a *admitter) (time.Duration, *obs.Histogram, int64) {
	switch a {
	case s.light:
		return s.cfg.LightDeadline, s.latLight, s.cfg.MaxBodyBytes
	case s.stream:
		return s.cfg.StreamDeadline, s.latStream, s.cfg.StreamBodyBytes
	default:
		return s.cfg.HeavyDeadline, s.latHeavy, s.cfg.MaxBodyBytes
	}
}

// wrapLane is wrap with the admission class picked per request (the
// analyze endpoint straddles two lanes).
func (s *Service) wrapLane(pick func(*http.Request) *admitter, op string, h apiHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		a := pick(r)
		deadline, lat, bodyCap := s.laneParams(a)
		s.mReqs.Inc()
		start := time.Now()
		if !s.enter() {
			s.fail(w, errDraining())
			return
		}
		defer s.exit()

		// Panic isolation: a panicking handler (or test seam) fails its
		// own request with a typed 500; the panic and stack go to the
		// flight recorder; the server keeps serving.
		wrote := false
		defer func() {
			if p := recover(); p != nil {
				s.mPanics.Inc()
				s.o.Event("service.panic", fmt.Sprintf("%s: panic: %v\n%s", op, p, debug.Stack()), -1, 0)
				if !wrote {
					s.fail(w, errPanic())
				}
				s.noteDrainOutcome(false)
			}
		}()

		r.Body = http.MaxBytesReader(w, r.Body, bodyCap)
		clientWants, aerr := clientDeadline(r)
		if aerr != nil {
			wrote = true
			s.fail(w, aerr)
			s.noteDrainOutcome(true)
			return
		}
		ctx, cancel := s.requestCtx(deadline, clientWants)
		defer cancel()
		// A client that disconnects cancels its request so its slot and
		// worker are reclaimed instead of computing for nobody.
		stop := context.AfterFunc(r.Context(), cancel)
		defer stop()

		release, aerr := a.admit(ctx)
		if aerr != nil {
			wrote = true
			s.fail(w, aerr)
			s.noteDrainOutcome(false)
			return
		}
		workStart := time.Now()
		defer func() {
			a.observe(time.Since(workStart))
			release()
		}()

		if s.afterAdmit != nil {
			s.afterAdmit(ctx, op)
		}
		res, apiErr := h(ctx, r)
		if apiErr == nil && ctx.Err() != nil {
			// The work limped in after the deadline (or the drain
			// hammer): a late 200 would teach clients to trust blown
			// deadlines, so the honest answer is the typed timeout.
			apiErr = asAPIError(ctx.Err(), op)
		}
		lat.Observe(time.Since(start).Seconds())
		wrote = true
		if apiErr != nil {
			s.fail(w, apiErr)
			s.noteDrainOutcome(false)
			return
		}
		s.mOK.Inc()
		s.noteDrainOutcome(true)
		for k, v := range res.header {
			w.Header().Set(k, v)
		}
		writeJSON(w, res.v)
	}
}

func (s *Service) fail(w http.ResponseWriter, e *APIError) {
	s.mTypedErrs.Inc()
	e.write(w)
}

// noteDrainOutcome attributes an in-flight request's ending to the
// drain report: once draining, every completion is either "finished"
// (ran to its own conclusion) or "shed" (cut down by the drain
// deadline's base-context cancel).
func (s *Service) noteDrainOutcome(ok bool) {
	if !s.draining.Load() {
		return
	}
	if !ok && s.shedding.Load() {
		s.mDrainShed.Inc()
	} else {
		s.mDrainFin.Inc()
	}
}

// clientDeadline parses X-Deadline-Ms. Absent → 0 (class default).
func clientDeadline(r *http.Request) (time.Duration, *APIError) {
	v := r.Header.Get(DeadlineHeader)
	if v == "" {
		return 0, nil
	}
	ms, err := strconv.ParseInt(v, 10, 64)
	if err != nil || ms <= 0 {
		return 0, errBadRequest("%s must be a positive integer of milliseconds, got %q", DeadlineHeader, v)
	}
	return time.Duration(ms) * time.Millisecond, nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone
}

// decodeJSON strictly decodes a JSON request body: unknown fields and
// trailing garbage are typed 400s, an oversized body a typed 413 —
// never a panic (FuzzServiceRequest holds the decoder to that).
func decodeJSON(r *http.Request, dst any) *APIError {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return errBodyTooLarge(mbe.Limit)
		}
		return errBadRequest("invalid JSON body: %v", err)
	}
	if dec.More() {
		return errBadRequest("trailing data after JSON body")
	}
	return nil
}

func errMethod(want string) *APIError {
	return &APIError{Status: http.StatusMethodNotAllowed, Code: CodeBadRequest,
		Message: "method not allowed; use " + want}
}

// repoAPIError maps repository failures onto the error taxonomy:
// missing entries are 404s, corrupt entries a retryable 503 (fsck
// quarantines them and a re-add heals), everything else falls through
// to the generic mapping.
func repoAPIError(err error, op string) *APIError {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae
	}
	if errors.Is(err, sigrepo.ErrNotFound) {
		return errNotFound("%v", err)
	}
	if errors.Is(err, sigrepo.ErrCorrupt) {
		return errRepoCorrupt(err, 2*time.Second)
	}
	return asAPIError(err, op)
}

// payloadSHA256 recomputes the persisted payload checksum of a loaded
// signature — the same bytes signature.Save hashes into its envelope,
// so a client can compare answers against the stored artefact.
func payloadSHA256(sv *signature.Saved) (string, error) {
	b, err := json.Marshal(sv)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// deployFor resolves a named cluster, optionally restricted to a core
// count (whole nodes, as the paper's §5 scaling experiments do), and
// lays ranks out block-wise — the same resolution the CLI uses.
func deployFor(name string, cores, ranks int) (*machine.Deployment, error) {
	cl := machine.ByName(name)
	if cl == nil {
		return nil, fmt.Errorf("unknown cluster %q", name)
	}
	if cores > 0 {
		nodes := (cores + cl.CoresPerNode - 1) / cl.CoresPerNode
		if nodes < 1 {
			nodes = 1
		}
		cl.Nodes = nodes
	}
	return machine.NewDeployment(cl, ranks, machine.MapBlock)
}

// --- endpoint handlers ---

func (s *Service) handleAnalyze(ctx context.Context, r *http.Request) (*handlerResult, *APIError) {
	if r.Method != http.MethodPost {
		return nil, errMethod(http.MethodPost)
	}
	warm := 1
	if v := r.URL.Query().Get("warm"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return nil, errBadRequest("warm must be a non-negative integer, got %q", v)
		}
		warm = n
	}
	if s.streamEligible(r) {
		return s.handleAnalyzeStream(ctx, r, warm)
	}
	data, err := io.ReadAll(r.Body)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return nil, errBodyTooLarge(mbe.Limit)
		}
		return nil, errBadRequest("reading body: %v", err)
	}
	if len(data) == 0 {
		return nil, errBadRequest("empty body: POST the tracefile bytes")
	}

	crc, isV2 := trace.FileCRC(data)
	if !isV2 {
		// Legacy or JSON tracefile: no whole-file CRC to key the cache
		// on, so compute fresh (the decoder still verifies per-record
		// checksums where the format carries them).
		resp, aerr := s.analyzeWork(ctx, data, 0, warm)
		if aerr != nil {
			return nil, aerr
		}
		return &handlerResult{v: resp, header: analyzeHeaders("bypass", "in-core")}, nil
	}

	k := cacheKey{crc: crc, size: int64(len(data)), warm: warm}
	if v, ok := s.cache.get(k); ok {
		s.mCacheHit.Inc()
		return &handlerResult{v: v, header: analyzeHeaders("hit", "in-core")}, nil
	}
	s.mCacheMiss.Inc()
	v, err, leader := s.group.do(ctx, k, func() (*AnalyzeResponse, error) {
		resp, aerr := s.analyzeWork(ctx, data, crc, warm)
		if aerr != nil {
			return nil, aerr
		}
		s.cache.put(k, resp)
		return resp, nil
	})
	if err != nil {
		return nil, asAPIError(err, "analyze")
	}
	how := "miss"
	if !leader {
		s.mDedup.Inc()
		how = "dedup"
	}
	return &handlerResult{v: v, header: analyzeHeaders(how, "in-core")}, nil
}

func analyzeHeaders(cache, mode string) map[string]string {
	return map[string]string{CacheHeader: cache, AnalyzeModeHeader: mode}
}

// handleAnalyzeStream serves a large analyze upload out-of-core: the
// body is spooled to a scratch file (never held on the heap), its v2
// trailer CRC keys the same LRU/single-flight as the in-core path, and
// the bounded-memory AnalyzeStream pipeline produces the answer — bit-
// identical to the in-core one, so cache entries are interchangeable
// between lanes. A spooled upload that turns out not to be v2 falls
// back in-core when it fits under MaxBodyBytes, else it is refused:
// only the checksummed block format supports random access.
func (s *Service) handleAnalyzeStream(ctx context.Context, r *http.Request, warm int) (*handlerResult, *APIError) {
	spool, err := os.CreateTemp("", "pas2p-upload-*.pas2p")
	if err != nil {
		return nil, errInternal(err)
	}
	defer func() {
		spool.Close()
		os.Remove(spool.Name())
	}()
	size, err := io.Copy(spool, r.Body)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return nil, errBodyTooLarge(mbe.Limit)
		}
		return nil, errBadRequest("reading body: %v", err)
	}
	if size == 0 {
		return nil, errBadRequest("empty body: POST the tracefile bytes")
	}

	crc, isV2 := trace.FileCRCAt(spool, size)
	if !isV2 {
		if size > s.cfg.MaxBodyBytes {
			return nil, errBodyTooLarge(s.cfg.MaxBodyBytes)
		}
		data := make([]byte, size)
		if _, err := spool.ReadAt(data, 0); err != nil {
			return nil, errInternal(err)
		}
		resp, aerr := s.analyzeWork(ctx, data, 0, warm)
		if aerr != nil {
			return nil, aerr
		}
		return &handlerResult{v: resp, header: analyzeHeaders("bypass", "in-core")}, nil
	}

	k := cacheKey{crc: crc, size: size, warm: warm}
	if v, ok := s.cache.get(k); ok {
		s.mCacheHit.Inc()
		return &handlerResult{v: v, header: analyzeHeaders("hit", "stream")}, nil
	}
	s.mCacheMiss.Inc()
	v, err, leader := s.group.do(ctx, k, func() (*AnalyzeResponse, error) {
		resp, aerr := s.analyzeStreamWork(ctx, spool, crc, warm)
		if aerr != nil {
			return nil, aerr
		}
		s.cache.put(k, resp)
		return resp, nil
	})
	if err != nil {
		return nil, asAPIError(err, "analyze")
	}
	how := "miss"
	if !leader {
		s.mDedup.Inc()
		how = "dedup"
	}
	return &handlerResult{v: v, header: analyzeHeaders(how, "stream")}, nil
}

// analyzeStreamWork runs the bounded-memory pipeline over a spooled
// upload under the request context (stage-boundary cancellation inside
// AnalyzeStream, worker abandonment via runWork).
func (s *Service) analyzeStreamWork(ctx context.Context, spool *os.File, crc uint32, warm int) (*AnalyzeResponse, *APIError) {
	v, err := s.runWork(ctx, "analyze", func() (any, error) {
		br, err := trace.NewBlockReader(io.NewSectionReader(spool, 0, 1<<62))
		if err != nil {
			return nil, errCorruptTrace(err)
		}
		defer br.Close()
		spill, err := os.MkdirTemp("", "pas2p-spill-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(spill)
		res, err := pas2p.AnalyzeStream(ctx, br, phase.DefaultConfig(), warm, pas2p.AnalyzeStreamOptions{
			MemBudgetBytes: s.cfg.StreamMemBudget,
			SpillDir:       spill,
		})
		if err != nil {
			// Corruption discovered mid-stream (a block CRC deep in the
			// spool) surfaces here rather than at decode time; map it to
			// the same typed rejection the in-core decoder produces.
			if strings.HasPrefix(err.Error(), "trace:") {
				return nil, errCorruptTrace(err)
			}
			return nil, err
		}
		defer res.Close()
		meta := br.Meta()
		tb := res.Table
		rel := tb.RelevantRows()
		resp := &AnalyzeResponse{
			App:            meta.AppName,
			Procs:          meta.Procs,
			Events:         int(meta.Events),
			TraceCRC32C:    crc,
			Warm:           warm,
			BaseAETNS:      int64(tb.BaseAET),
			TotalPhases:    tb.TotalPhases,
			Relevant:       len(rel),
			PredictedAETNS: int64(tb.PredictedAET(true)),
			Phases:         make([]PhaseSummary, 0, len(rel)),
		}
		for _, row := range rel {
			resp.Phases = append(resp.Phases, PhaseSummary{
				PhaseID:   row.PhaseID,
				Weight:    row.Weight,
				PhaseETNS: int64(row.PhaseET),
			})
		}
		return resp, nil
	})
	if err != nil {
		return nil, asAPIError(err, "analyze")
	}
	return v.(*AnalyzeResponse), nil
}

// analyzeWork decodes and analyses one uploaded tracefile under the
// request context (stage-boundary cancellation via AnalyzeCtx, worker
// abandonment via runWork).
func (s *Service) analyzeWork(ctx context.Context, data []byte, crc uint32, warm int) (*AnalyzeResponse, *APIError) {
	v, err := s.runWork(ctx, "analyze", func() (any, error) {
		tr, err := trace.DecodeAnyWith(bytes.NewReader(data), trace.CodecOptions{Workers: s.cfg.AnalyzeWorkers})
		if err != nil {
			return nil, errCorruptTrace(err)
		}
		_, tb, err := pas2p.AnalyzeCtx(ctx, tr, phase.DefaultConfig(), warm)
		if err != nil {
			return nil, err
		}
		rel := tb.RelevantRows()
		resp := &AnalyzeResponse{
			App:            tr.AppName,
			Procs:          tr.Procs,
			Events:         len(tr.Events),
			TraceCRC32C:    crc,
			Warm:           warm,
			BaseAETNS:      int64(tb.BaseAET),
			TotalPhases:    tb.TotalPhases,
			Relevant:       len(rel),
			PredictedAETNS: int64(tb.PredictedAET(true)),
			Phases:         make([]PhaseSummary, 0, len(rel)),
		}
		for _, row := range rel {
			resp.Phases = append(resp.Phases, PhaseSummary{
				PhaseID:   row.PhaseID,
				Weight:    row.Weight,
				PhaseETNS: int64(row.PhaseET),
			})
		}
		return resp, nil
	})
	if err != nil {
		return nil, asAPIError(err, "analyze")
	}
	return v.(*AnalyzeResponse), nil
}

func (s *Service) handleSign(ctx context.Context, r *http.Request) (*handlerResult, *APIError) {
	if r.Method != http.MethodPost {
		return nil, errMethod(http.MethodPost)
	}
	var req SignRequest
	if aerr := decodeJSON(r, &req); aerr != nil {
		return nil, aerr
	}
	if req.App == "" {
		return nil, errBadRequest("app is required")
	}
	if req.Procs == 0 {
		req.Procs = 64
	}
	if req.Procs < 0 {
		return nil, errBadRequest("procs must be positive, got %d", req.Procs)
	}
	if req.Base == "" {
		req.Base = "A"
	}
	a, err := apps.Make(req.App, req.Procs, req.Workload)
	if err != nil {
		return nil, errBadRequest("%v", err)
	}
	bd, err := deployFor(req.Base, 0, req.Procs)
	if err != nil {
		return nil, errBadRequest("%v", err)
	}
	v, err := s.runWork(ctx, "sign", func() (any, error) {
		// Chaos mode: the configured injector rides the traced run, so
		// message faults fire inside served pipelines.
		traced, err := mpi.Run(a, mpi.RunConfig{Deployment: bd, Trace: true, Faults: s.cfg.Faults})
		if err != nil {
			return nil, err
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		l, err := logical.Order(traced.Trace)
		if err != nil {
			return nil, err
		}
		_, tb, err := analyzeLogical(ctx, l)
		if err != nil {
			return nil, err
		}
		opts := signature.DefaultOptions()
		opts.AllPhases = req.AllPhases
		br, err := signature.Build(a, tb, bd, opts)
		if err != nil {
			return nil, err
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if _, err := s.repo.Add(br.Signature, req.Workload, bd.Cluster.Name); err != nil {
			return nil, err
		}
		// Verifying re-read: the response's path and checksum come from
		// the entry as stored, so a torn or bit-flipped write (chaos
		// mode's FaultFS) surfaces here as a typed repo error instead
		// of a confident answer about bytes that do not exist.
		e, err := s.repo.Lookup(req.App, req.Procs, req.Workload)
		if err != nil {
			return nil, err
		}
		sha, err := payloadSHA256(e.Saved)
		if err != nil {
			return nil, err
		}
		return &SignResponse{
			App:           req.App,
			Procs:         req.Procs,
			Workload:      req.Workload,
			BaseCluster:   bd.Cluster.Name,
			TotalPhases:   tb.TotalPhases,
			Relevant:      len(tb.RelevantRows()),
			Checkpoints:   br.Checkpoints,
			SCTNS:         int64(br.SCT),
			Path:          e.Path,
			PayloadSHA256: sha,
		}, nil
	})
	if err != nil {
		return nil, repoAPIError(err, "sign")
	}
	return &handlerResult{v: v}, nil
}

// analyzeLogical is the ctx-checked extract+table tail of the sign
// pipeline (ordering already done by the caller).
func analyzeLogical(ctx context.Context, l *logical.Logical) (*phase.Analysis, *phase.Table, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	an, err := phase.Extract(l, phase.DefaultConfig())
	if err != nil {
		return nil, nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	tb, err := an.BuildTable(1)
	if err != nil {
		return nil, nil, err
	}
	return an, tb, nil
}

func (s *Service) handleLookup(ctx context.Context, r *http.Request) (*handlerResult, *APIError) {
	if r.Method != http.MethodGet {
		return nil, errMethod(http.MethodGet)
	}
	q := r.URL.Query()
	app := q.Get("app")
	if app == "" {
		return nil, errBadRequest("app query parameter is required")
	}
	procs, err := strconv.Atoi(q.Get("procs"))
	if err != nil || procs <= 0 {
		return nil, errBadRequest("procs must be a positive integer, got %q", q.Get("procs"))
	}
	if err := ctx.Err(); err != nil {
		return nil, asAPIError(err, "lookup")
	}
	e, err := s.repo.Lookup(app, procs, q.Get("workload"))
	if err != nil {
		return nil, repoAPIError(err, "lookup")
	}
	sha, err := payloadSHA256(e.Saved)
	if err != nil {
		return nil, errInternal(err)
	}
	return &handlerResult{v: &LookupResponse{
		App:           e.Saved.AppName,
		Procs:         e.Saved.Procs,
		Workload:      e.Saved.Workload,
		BaseISA:       e.Saved.BaseISA,
		BaseCluster:   e.Saved.BaseCluster,
		TotalPhases:   e.Saved.Table.TotalPhases,
		Relevant:      len(e.Saved.Table.RelevantRows()),
		Path:          e.Path,
		PayloadSHA256: sha,
	}}, nil
}

func (s *Service) handlePredict(ctx context.Context, r *http.Request) (*handlerResult, *APIError) {
	if r.Method != http.MethodPost {
		return nil, errMethod(http.MethodPost)
	}
	var req PredictRequest
	if aerr := decodeJSON(r, &req); aerr != nil {
		return nil, aerr
	}
	if req.App == "" {
		return nil, errBadRequest("app is required")
	}
	if req.Procs == 0 {
		req.Procs = 64
	}
	if req.Procs < 0 {
		return nil, errBadRequest("procs must be positive, got %d", req.Procs)
	}
	if req.Target == "" {
		req.Target = "B"
	}
	td, err := deployFor(req.Target, req.Cores, req.Procs)
	if err != nil {
		return nil, errBadRequest("%v", err)
	}
	e, err := s.repo.Lookup(req.App, req.Procs, req.Workload)
	if err != nil {
		return nil, repoAPIError(err, "predict")
	}
	sha, err := payloadSHA256(e.Saved)
	if err != nil {
		return nil, errInternal(err)
	}
	v, err := s.runWork(ctx, "predict", func() (any, error) {
		return e.Predict(td, apps.Make)
	})
	if err != nil {
		var mism *signature.ErrISAMismatch
		if errors.As(err, &mism) {
			return nil, &APIError{Status: http.StatusConflict, Code: CodeBadRequest,
				Message: fmt.Sprintf("%v; rebuild the signature on the target", mism)}
		}
		return nil, repoAPIError(err, "predict")
	}
	res := v.(*signature.ExecResult)
	return &handlerResult{v: &PredictResponse{
		App:           e.Saved.AppName,
		Procs:         e.Saved.Procs,
		Workload:      e.Saved.Workload,
		Target:        req.Target,
		SETNS:         int64(res.SET),
		PETNS:         int64(res.PET),
		Degraded:      res.Degraded,
		LostPhases:    res.LostPhases,
		PayloadSHA256: sha,
	}}, nil
}

func (s *Service) handleFsck(ctx context.Context, r *http.Request) (*handlerResult, *APIError) {
	if r.Method != http.MethodPost {
		return nil, errMethod(http.MethodPost)
	}
	v, err := s.runWork(ctx, "fsck", func() (any, error) {
		return s.repo.Fsck()
	})
	if err != nil {
		return nil, asAPIError(err, "fsck")
	}
	return &handlerResult{v: v.(*sigrepo.FsckReport)}, nil
}
