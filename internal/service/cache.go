package service

import (
	"container/list"
	"context"
	"errors"
	"sync"
)

// cacheKey identifies one analysis result: the PAS2PTR2 whole-file
// CRC of the submitted tracefile (every byte of the upload feeds it)
// plus the warm-occurrence selector, which changes the table rows.
type cacheKey struct {
	crc  uint32
	size int64 // upload length: cheap second factor against CRC collisions
	warm int
}

// lruCache is a mutex-guarded LRU over analysis responses. Values are
// immutable once inserted (handlers must never mutate a served
// response), so a hit is a pointer copy.
type lruCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recent
	items map[cacheKey]*list.Element
}

type lruEntry struct {
	key cacheKey
	val *AnalyzeResponse
}

func newLRUCache(max int) *lruCache {
	if max < 1 {
		max = 1
	}
	return &lruCache{max: max, ll: list.New(), items: make(map[cacheKey]*list.Element)}
}

func (c *lruCache) get(k cacheKey) (*AnalyzeResponse, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

func (c *lruCache) put(k cacheKey, v *AnalyzeResponse) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).val = v
		return
	}
	c.items[k] = c.ll.PushFront(&lruEntry{key: k, val: v})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// flightGroup deduplicates concurrent identical submissions: all
// requests for one cacheKey share a single pipeline execution. Unlike
// the classic singleflight, a leader that dies of *its own* deadline
// does not poison its followers — a follower whose context is still
// live re-runs the work as the new leader.
type flightGroup struct {
	mu    sync.Mutex
	calls map[cacheKey]*flightCall
}

type flightCall struct {
	done chan struct{}
	val  *AnalyzeResponse
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[cacheKey]*flightCall)}
}

// do executes fn once per key among concurrent callers. The returned
// bool reports whether this caller was the leader (false = result was
// shared — the dedup the service counts). When the shared result is a
// cancellation artifact of the leader's context, a live follower
// retries leadership instead of inheriting the corpse.
func (g *flightGroup) do(ctx context.Context, k cacheKey, fn func() (*AnalyzeResponse, error)) (*AnalyzeResponse, error, bool) {
	for {
		g.mu.Lock()
		if c, ok := g.calls[k]; ok {
			g.mu.Unlock()
			select {
			case <-c.done:
			case <-ctx.Done():
				return nil, ctx.Err(), false
			}
			if c.err != nil && ctx.Err() == nil &&
				(errors.Is(c.err, context.Canceled) || errors.Is(c.err, context.DeadlineExceeded)) {
				continue // leader died of its deadline; we are alive — take over
			}
			return c.val, c.err, false
		}
		c := &flightCall{done: make(chan struct{})}
		g.calls[k] = c
		g.mu.Unlock()

		c.val, c.err = fn()
		g.mu.Lock()
		delete(g.calls, k)
		g.mu.Unlock()
		close(c.done)
		return c.val, c.err, true
	}
}
