package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"
)

// Code is a machine-readable error class. Every failure the service
// produces is one of these — the chaos property ("every request
// succeeds or fails cleanly with a typed error") is checkable because
// clients never see an untyped failure body.
type Code string

const (
	// CodeBadRequest: the request was syntactically or semantically
	// invalid (malformed JSON, unknown field, missing parameter).
	CodeBadRequest Code = "bad_request"
	// CodeBodyTooLarge: the request body exceeded the configured cap.
	CodeBodyTooLarge Code = "body_too_large"
	// CodeCorruptTrace: the uploaded tracefile failed its checksums.
	CodeCorruptTrace Code = "corrupt_trace"
	// CodeNotFound: no stored signature matches the identity.
	CodeNotFound Code = "not_found"
	// CodeRepoCorrupt: the stored entry exists but fails verification;
	// retry after fsck has quarantined it and the entry is re-added.
	CodeRepoCorrupt Code = "repo_corrupt"
	// CodeQueueFull: the class's admission queue is at capacity.
	CodeQueueFull Code = "queue_full"
	// CodeShed: admission control refused to start work that could not
	// finish inside its deadline (or the deadline expired while the
	// request was still queued — no work was wasted on it).
	CodeShed Code = "shed"
	// CodeDraining: the server is shutting down and not accepting work.
	CodeDraining Code = "draining"
	// CodeDeadline: the deadline expired after work had started; the
	// pipeline was cancelled at a stage boundary.
	CodeDeadline Code = "deadline_exceeded"
	// CodePanic: the handler panicked; the request died but the server
	// lives (the panic and stack are on the flight recorder).
	CodePanic Code = "internal_panic"
	// CodeInternal: any other server-side failure.
	CodeInternal Code = "internal"
)

// APIError is the typed failure a handler returns; it renders as the
// JSON error envelope plus the HTTP status and optional Retry-After.
type APIError struct {
	Status     int
	Code       Code
	Message    string
	RetryAfter time.Duration // > 0 adds a Retry-After header
}

func (e *APIError) Error() string { return fmt.Sprintf("%s (%d %s)", e.Message, e.Status, e.Code) }

// errorBody is the JSON wire form of an APIError.
type errorBody struct {
	Error struct {
		Code       Code   `json:"code"`
		Message    string `json:"message"`
		RetryAfter int    `json:"retry_after_s,omitempty"`
	} `json:"error"`
}

// write renders the error onto w. Retry-After is emitted in whole
// seconds (rounded up — the header does not allow fractions) and
// mirrored into the body so clients need not parse headers.
func (e *APIError) write(w http.ResponseWriter) {
	ra := 0
	if e.RetryAfter > 0 {
		ra = int((e.RetryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", fmt.Sprintf("%d", ra))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(e.Status)
	var b errorBody
	b.Error.Code = e.Code
	b.Error.Message = e.Message
	b.Error.RetryAfter = ra
	json.NewEncoder(w).Encode(&b) //nolint:errcheck // client gone
}

func errBadRequest(format string, args ...any) *APIError {
	return &APIError{Status: http.StatusBadRequest, Code: CodeBadRequest, Message: fmt.Sprintf(format, args...)}
}

func errBodyTooLarge(limit int64) *APIError {
	return &APIError{Status: http.StatusRequestEntityTooLarge, Code: CodeBodyTooLarge,
		Message: fmt.Sprintf("request body exceeds %d bytes", limit)}
}

func errCorruptTrace(err error) *APIError {
	return &APIError{Status: http.StatusUnprocessableEntity, Code: CodeCorruptTrace,
		Message: fmt.Sprintf("tracefile rejected: %v", err)}
}

func errNotFound(format string, args ...any) *APIError {
	return &APIError{Status: http.StatusNotFound, Code: CodeNotFound, Message: fmt.Sprintf(format, args...)}
}

func errRepoCorrupt(err error, retryAfter time.Duration) *APIError {
	return &APIError{Status: http.StatusServiceUnavailable, Code: CodeRepoCorrupt,
		Message: fmt.Sprintf("stored entry failed verification (run fsck): %v", err), RetryAfter: retryAfter}
}

func errQueueFull(class string, retryAfter time.Duration) *APIError {
	return &APIError{Status: http.StatusTooManyRequests, Code: CodeQueueFull,
		Message: fmt.Sprintf("%s admission queue is full", class), RetryAfter: retryAfter}
}

func errShed(reason string, retryAfter time.Duration) *APIError {
	return &APIError{Status: http.StatusServiceUnavailable, Code: CodeShed,
		Message: "request shed before any work started: " + reason, RetryAfter: retryAfter}
}

func errDraining() *APIError {
	return &APIError{Status: http.StatusServiceUnavailable, Code: CodeDraining,
		Message: "server is draining", RetryAfter: time.Second}
}

func errDeadline(op string) *APIError {
	return &APIError{Status: http.StatusGatewayTimeout, Code: CodeDeadline,
		Message: op + " abandoned: deadline exceeded"}
}

func errPanic() *APIError {
	return &APIError{Status: http.StatusInternalServerError, Code: CodePanic,
		Message: "handler panicked; the panic and stack were recorded on the flight recorder"}
}

func errInternal(err error) *APIError {
	return &APIError{Status: http.StatusInternalServerError, Code: CodeInternal, Message: err.Error()}
}

// asAPIError coerces any handler error into a typed one: APIErrors
// pass through, context errors become the deadline/shed taxonomy, and
// everything else is an internal error.
func asAPIError(err error, op string) *APIError {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return errDeadline(op)
	}
	if errors.Is(err, context.Canceled) {
		// The base context only dies when the server drains; a client
		// disconnect cancels the request context the same way, and
		// "draining" is still the honest per-request answer: no result
		// was produced and the caller should go elsewhere.
		return &APIError{Status: http.StatusServiceUnavailable, Code: CodeDraining,
			Message: op + " abandoned: request cancelled", RetryAfter: time.Second}
	}
	return errInternal(err)
}
