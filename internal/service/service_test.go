package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"pas2p"
	"pas2p/internal/obs"
	"pas2p/internal/trace"
)

// newTestService builds a service over a temp repository with
// test-sized queues and deadlines. Callers mutate cfg via mod.
func newTestService(t *testing.T, mod func(*Config)) (*Service, *httptest.Server) {
	t.Helper()
	cfg := Config{
		RepoDir:       t.TempDir(),
		HeavyDeadline: 10 * time.Second,
		LightDeadline: 2 * time.Second,
	}
	if mod != nil {
		mod(&cfg)
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	h, err := svc.Handler()
	if err != nil {
		t.Fatalf("Handler: %v", err)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return svc, ts
}

// tracefileBytes returns an encoded v2 tracefile for app/procs.
func tracefileBytes(t *testing.T, app string, procs int) []byte {
	t.Helper()
	a, err := pas2p.MakeApp(app, procs, "")
	if err != nil {
		t.Fatal(err)
	}
	d, err := pas2p.NewDeployment(pas2p.ClusterA(), procs, pas2p.MapBlock)
	if err != nil {
		t.Fatal(err)
	}
	r, err := pas2p.RunApp(a, pas2p.RunConfig{Deployment: d, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pas2p.EncodeTrace(&buf, r.Trace, pas2p.TraceCodecOptions{}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// decodeInto reads and decodes a JSON response body.
func decodeInto(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	if err := json.Unmarshal(b, v); err != nil {
		t.Fatalf("decoding %q: %v", b, err)
	}
}

// wantTyped asserts a typed error response with the given status and
// code, and returns the decoded envelope.
func wantTyped(t *testing.T, resp *http.Response, status int, code Code) errorBody {
	t.Helper()
	if resp.StatusCode != status {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("status = %d, want %d (body %q)", resp.StatusCode, status, b)
	}
	var e errorBody
	decodeInto(t, resp, &e)
	if e.Error.Code != code {
		t.Fatalf("code = %q, want %q (message %q)", e.Error.Code, code, e.Error.Message)
	}
	return e
}

func postBytes(t *testing.T, url string, body []byte, hdr map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func postJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return postBytes(t, url, b, map[string]string{"Content-Type": "application/json"})
}

func TestAnalyzeCachesAndEchoesCRC(t *testing.T) {
	svc, ts := newTestService(t, nil)
	data := tracefileBytes(t, "cg", 4)
	crc, ok := trace.FileCRC(data)
	if !ok {
		t.Fatal("tracefile has no v2 trailer")
	}

	resp := postBytes(t, ts.URL+"/v1/analyze", data, nil)
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("analyze: %d %q", resp.StatusCode, b)
	}
	if got := resp.Header.Get(CacheHeader); got != "miss" {
		t.Fatalf("first analyze X-Cache = %q, want miss", got)
	}
	var a1 AnalyzeResponse
	decodeInto(t, resp, &a1)
	if a1.TraceCRC32C != crc {
		t.Fatalf("echoed CRC %08x, uploaded %08x", a1.TraceCRC32C, crc)
	}
	if a1.App != "cg" || a1.Procs != 4 || a1.TotalPhases == 0 || len(a1.Phases) == 0 {
		t.Fatalf("implausible analysis: %+v", a1)
	}

	resp = postBytes(t, ts.URL+"/v1/analyze", data, nil)
	if got := resp.Header.Get(CacheHeader); got != "hit" {
		t.Fatalf("second analyze X-Cache = %q, want hit", got)
	}
	var a2 AnalyzeResponse
	decodeInto(t, resp, &a2)
	if a2.TotalPhases != a1.TotalPhases || a2.BaseAETNS != a1.BaseAETNS {
		t.Fatalf("cached answer differs: %+v vs %+v", a2, a1)
	}

	// A different warm occurrence is a different key.
	resp = postBytes(t, ts.URL+"/v1/analyze?warm=2", data, nil)
	if got := resp.Header.Get(CacheHeader); got != "miss" {
		t.Fatalf("warm=2 X-Cache = %q, want miss", got)
	}
	resp.Body.Close()

	if h, m := svc.mCacheHit.Value(), svc.mCacheMiss.Value(); h != 1 || m != 2 {
		t.Fatalf("cache counters hits=%d misses=%d, want 1/2", h, m)
	}
}

func TestAnalyzeRejectsGarbageTyped(t *testing.T) {
	_, ts := newTestService(t, nil)
	resp := postBytes(t, ts.URL+"/v1/analyze", []byte("not a tracefile at all"), nil)
	wantTyped(t, resp, http.StatusUnprocessableEntity, CodeCorruptTrace)

	resp = postBytes(t, ts.URL+"/v1/analyze", nil, nil)
	wantTyped(t, resp, http.StatusBadRequest, CodeBadRequest)

	resp = postBytes(t, ts.URL+"/v1/analyze?warm=minus-one", []byte("x"), nil)
	wantTyped(t, resp, http.StatusBadRequest, CodeBadRequest)

	// Truncating a valid tracefile must fail its checksums, typed.
	data := tracefileBytes(t, "cg", 4)
	resp = postBytes(t, ts.URL+"/v1/analyze", data[:len(data)-7], nil)
	wantTyped(t, resp, http.StatusUnprocessableEntity, CodeCorruptTrace)
}

func TestSignLookupPredictRoundTrip(t *testing.T) {
	_, ts := newTestService(t, nil)

	resp := postJSON(t, ts.URL+"/v1/sign", SignRequest{App: "cg", Procs: 4})
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("sign: %d %q", resp.StatusCode, b)
	}
	var sr SignResponse
	decodeInto(t, resp, &sr)
	if sr.PayloadSHA256 == "" || sr.TotalPhases == 0 || sr.Checkpoints == 0 {
		t.Fatalf("implausible sign response: %+v", sr)
	}

	resp, err := http.Get(ts.URL + "/v1/lookup?app=cg&procs=4&workload=")
	if err != nil {
		t.Fatal(err)
	}
	var lr LookupResponse
	decodeInto(t, resp, &lr)
	if lr.PayloadSHA256 != sr.PayloadSHA256 {
		t.Fatalf("lookup sha %s != sign sha %s", lr.PayloadSHA256, sr.PayloadSHA256)
	}
	if lr.BaseCluster != "Cluster A" && lr.BaseCluster != "A" {
		t.Fatalf("base cluster %q", lr.BaseCluster)
	}

	resp = postJSON(t, ts.URL+"/v1/predict", PredictRequest{App: "cg", Procs: 4, Target: "B"})
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("predict: %d %q", resp.StatusCode, b)
	}
	var pr PredictResponse
	decodeInto(t, resp, &pr)
	if pr.PETNS <= 0 || pr.SETNS <= 0 {
		t.Fatalf("implausible prediction: %+v", pr)
	}
	if pr.PayloadSHA256 != sr.PayloadSHA256 {
		t.Fatalf("predict sha %s != sign sha %s", pr.PayloadSHA256, sr.PayloadSHA256)
	}

	// The served prediction must match the local pipeline bit for bit.
	app, err := pas2p.MakeApp("cg", 4, "")
	if err != nil {
		t.Fatal(err)
	}
	dA, _ := pas2p.NewDeployment(pas2p.ClusterA(), 4, pas2p.MapBlock)
	dB, _ := pas2p.NewDeployment(pas2p.ClusterB(), 4, pas2p.MapBlock)
	r, err := pas2p.RunApp(app, pas2p.RunConfig{Deployment: dA, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	_, tb, err := pas2p.Analyze(r.Trace, pas2p.DefaultPhaseConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	sig, _, err := pas2p.BuildSignature(app, tb, dA, pas2p.DefaultSignatureOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sig.Execute(dB)
	if err != nil {
		t.Fatal(err)
	}
	if int64(res.PET) != pr.PETNS {
		t.Fatalf("served PET %d != local PET %d", pr.PETNS, int64(res.PET))
	}
}

func TestLookupNotFoundTyped(t *testing.T) {
	_, ts := newTestService(t, nil)
	resp, err := http.Get(ts.URL + "/v1/lookup?app=ghost&procs=8")
	if err != nil {
		t.Fatal(err)
	}
	wantTyped(t, resp, http.StatusNotFound, CodeNotFound)

	resp, err = http.Get(ts.URL + "/v1/lookup?app=ghost")
	if err != nil {
		t.Fatal(err)
	}
	wantTyped(t, resp, http.StatusBadRequest, CodeBadRequest)
}

func TestRequestDecodeErrorsAreTyped(t *testing.T) {
	_, ts := newTestService(t, nil)

	// Malformed JSON.
	resp := postBytes(t, ts.URL+"/v1/sign", []byte("{"), nil)
	wantTyped(t, resp, http.StatusBadRequest, CodeBadRequest)
	// Unknown field.
	resp = postBytes(t, ts.URL+"/v1/sign", []byte(`{"app":"cg","bogus":1}`), nil)
	wantTyped(t, resp, http.StatusBadRequest, CodeBadRequest)
	// Wrong method.
	resp = postBytes(t, ts.URL+"/v1/lookup", nil, nil)
	wantTyped(t, resp, http.StatusMethodNotAllowed, CodeBadRequest)
	// Unknown app.
	resp = postJSON(t, ts.URL+"/v1/sign", SignRequest{App: "no-such-app"})
	wantTyped(t, resp, http.StatusBadRequest, CodeBadRequest)
	// Unknown endpoint.
	r2, err := http.Get(ts.URL + "/v1/frobnicate")
	if err != nil {
		t.Fatal(err)
	}
	wantTyped(t, r2, http.StatusNotFound, CodeNotFound)
	// Oversized body.
	svcSmall, tsSmall := newTestService(t, func(c *Config) { c.MaxBodyBytes = 64 })
	_ = svcSmall
	resp = postBytes(t, tsSmall.URL+"/v1/analyze", bytes.Repeat([]byte("x"), 4096), nil)
	wantTyped(t, resp, http.StatusRequestEntityTooLarge, CodeBodyTooLarge)
}

func TestInfeasibleDeadlineIsShedBeforeWork(t *testing.T) {
	svc, ts := newTestService(t, nil)
	// The heavy class's estimate is seeded at 50ms; a 1ms budget can
	// never fit, so admission must shed without starting work.
	resp := postBytes(t, ts.URL+"/v1/analyze", []byte("irrelevant"),
		map[string]string{DeadlineHeader: "1"})
	e := wantTyped(t, resp, http.StatusServiceUnavailable, CodeShed)
	if e.Error.RetryAfter < 1 {
		t.Fatalf("shed without Retry-After: %+v", e)
	}
	if got := svc.heavy.shedInfea.Value(); got != 1 {
		t.Fatalf("shed_infeasible = %d, want 1", got)
	}
	if svc.mAbandoned.Value() != 0 {
		t.Fatal("shed request still started work")
	}
}

func TestQueueOverflowIs429(t *testing.T) {
	svc, ts := newTestService(t, func(c *Config) {
		c.HeavySlots = 1
		c.HeavyQueue = -1 // one in flight, one waiter; the next arrival bounces
	})
	var once sync.Once
	firstIn := make(chan struct{})
	release := make(chan struct{})
	svc.afterAdmit = func(ctx context.Context, op string) {
		once.Do(func() { close(firstIn) })
		select {
		case <-release:
		case <-ctx.Done():
		}
	}

	// A holds the only slot; B parks in the admission queue.
	respA := make(chan *http.Response, 1)
	go func() {
		respA <- postBytes(t, ts.URL+"/v1/analyze", tracefileBytes(t, "cg", 4), nil)
	}()
	<-firstIn
	respB := make(chan *http.Response, 1)
	go func() {
		respB <- postBytes(t, ts.URL+"/v1/analyze", []byte("x"), nil)
	}()
	waitFor(t, func() bool { return svc.heavy.waiting.Load() == 1 })

	// C finds slot + queue both occupied: immediate 429, no waiting.
	resp := postBytes(t, ts.URL+"/v1/analyze", []byte("x"), nil)
	e := wantTyped(t, resp, http.StatusTooManyRequests, CodeQueueFull)
	if e.Error.RetryAfter < 1 {
		t.Fatalf("429 without Retry-After: %+v", e)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("Retry-After header missing")
	}
	close(release)
	a := <-respA
	if a.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(a.Body)
		t.Fatalf("slot-holding request failed: %d %q", a.StatusCode, b)
	}
	a.Body.Close()
	b := <-respB // garbage body: typed 422 once it finally runs
	wantTyped(t, b, http.StatusUnprocessableEntity, CodeCorruptTrace)
	if svc.heavy.shedFull.Value() != 1 {
		t.Fatalf("shed_queue_full = %d, want 1", svc.heavy.shedFull.Value())
	}
}

func TestPanicIsolation(t *testing.T) {
	svc, ts := newTestService(t, nil)
	svc.afterAdmit = func(ctx context.Context, op string) {
		panic("deliberate test panic")
	}
	resp := postBytes(t, ts.URL+"/v1/analyze", []byte("x"), nil)
	wantTyped(t, resp, http.StatusInternalServerError, CodePanic)

	// The server survived: the next (non-panicking) request works.
	svc.afterAdmit = nil
	resp = postBytes(t, ts.URL+"/v1/analyze", tracefileBytes(t, "cg", 4), nil)
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("post-panic analyze: %d %q", resp.StatusCode, b)
	}
	resp.Body.Close()

	if svc.mPanics.Value() != 1 {
		t.Fatalf("panics counter = %d, want 1", svc.mPanics.Value())
	}
	// The panic (with stack) is on the flight recorder.
	var buf bytes.Buffer
	if err := svc.o.FR().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "deliberate test panic") {
		t.Fatalf("flight recorder has no panic dump: %s", buf.String())
	}
}

func TestNoDeadlineBlown200(t *testing.T) {
	svc, ts := newTestService(t, nil)
	// Make the light estimate tiny so admission lets the request in,
	// then stall past the deadline inside the handler.
	svc.light.estNS.Store(0)
	svc.afterAdmit = func(ctx context.Context, op string) {
		<-ctx.Done() // outlive the deadline, then let the handler "succeed"
	}
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/lookup?app=cg&procs=4", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(DeadlineHeader, "50")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	wantTyped(t, resp, http.StatusGatewayTimeout, CodeDeadline)
}

func TestHealthzLifecycleAndDrain(t *testing.T) {
	svc, ts := newTestService(t, nil)

	health := func() string {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var h struct {
			Status string `json:"status"`
		}
		decodeInto(t, resp, &h)
		return h.Status
	}
	if got := health(); got != "ready" {
		t.Fatalf("healthz before drain = %q, want ready", got)
	}

	// Park a request in flight, then drain: the drain must wait for
	// it, refuse new work with a typed 503, and report it finished.
	entered := make(chan struct{})
	release := make(chan struct{})
	svc.afterAdmit = func(ctx context.Context, op string) {
		close(entered)
		select {
		case <-release:
		case <-ctx.Done():
		}
	}
	inflight := make(chan *http.Response, 1)
	go func() {
		inflight <- postBytes(t, ts.URL+"/v1/analyze", tracefileBytes(t, "cg", 4), nil)
	}()
	<-entered

	drainDone := make(chan DrainReport, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drainDone <- svc.Drain(ctx)
	}()

	// Draining: new requests are refused, typed.
	waitFor(t, func() bool { return svc.Draining() })
	if got := health(); got != "draining" {
		t.Fatalf("healthz during drain = %q, want draining", got)
	}
	resp := postBytes(t, ts.URL+"/v1/analyze", []byte("x"), nil)
	wantTyped(t, resp, http.StatusServiceUnavailable, CodeDraining)

	close(release) // let the in-flight request finish
	rep := <-drainDone
	if rep.InFlightAtStart != 1 || rep.Finished != 1 || rep.Shed != 0 {
		t.Fatalf("drain report %+v, want 1 in flight, 1 finished, 0 shed", rep)
	}
	r := <-inflight
	if r.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(r.Body)
		t.Fatalf("in-flight request during drain: %d %q", r.StatusCode, b)
	}
	r.Body.Close()
	if got := health(); got != "done" {
		t.Fatalf("healthz after drain = %q, want done", got)
	}

	// Idempotent: a second drain returns immediately.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	svc.Drain(ctx)
}

func TestDrainDeadlineShedsStragglers(t *testing.T) {
	svc, ts := newTestService(t, nil)
	entered := make(chan struct{})
	svc.afterAdmit = func(ctx context.Context, op string) {
		close(entered)
		<-ctx.Done() // never finishes on its own; only the drain hammer ends it
	}
	inflight := make(chan *http.Response, 1)
	go func() {
		inflight <- postBytes(t, ts.URL+"/v1/analyze", tracefileBytes(t, "cg", 4), nil)
	}()
	<-entered

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	rep := svc.Drain(ctx)
	if rep.Shed != 1 {
		t.Fatalf("drain report %+v, want 1 shed", rep)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("drain took %v despite its deadline", waited)
	}
	resp := <-inflight
	// The shed request got a typed error, not a hang and not a 200.
	if resp.StatusCode == http.StatusOK {
		t.Fatal("shed request returned 200")
	}
	var e errorBody
	decodeInto(t, resp, &e)
	if e.Error.Code == "" {
		t.Fatal("shed request returned an untyped error")
	}
}

func TestConcurrentMixedTrafficUnderRace(t *testing.T) {
	_, ts := newTestService(t, func(c *Config) {
		c.HeavySlots = 2
		c.HeavyQueue = 8
	})
	data := tracefileBytes(t, "cg", 4)

	// Seed the repo so lookups/predicts have a target.
	resp := postJSON(t, ts.URL+"/v1/sign", SignRequest{App: "cg", Procs: 4})
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("seed sign: %d %q", resp.StatusCode, b)
	}
	resp.Body.Close()

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				var resp *http.Response
				var err error
				switch (w + i) % 3 {
				case 0:
					resp = postBytes(t, ts.URL+"/v1/analyze", data, nil)
				case 1:
					resp, err = http.Get(ts.URL + "/v1/lookup?app=cg&procs=4")
				case 2:
					resp = postJSON(t, ts.URL+"/v1/predict", PredictRequest{App: "cg", Procs: 4})
				}
				if err != nil {
					errs <- fmt.Sprintf("transport: %v", err)
					continue
				}
				if resp.StatusCode != http.StatusOK {
					var e errorBody
					b, _ := io.ReadAll(resp.Body)
					if jerr := json.Unmarshal(b, &e); jerr != nil || e.Error.Code == "" {
						errs <- fmt.Sprintf("untyped %d: %q", resp.StatusCode, b)
					}
					resp.Body.Close()
					continue
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Errorf("unclean response: %s", e)
	}
}

func TestMetricsEndpointServesServiceCounters(t *testing.T) {
	_, ts := newTestService(t, nil)
	resp := postBytes(t, ts.URL+"/v1/analyze", tracefileBytes(t, "cg", 4), nil)
	resp.Body.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"service_requests", "service_ok", "service_heavy_admitted"} {
		if !strings.Contains(string(b), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

func TestFinalSnapshotAfterDrain(t *testing.T) {
	svc, ts := newTestService(t, nil)
	resp := postBytes(t, ts.URL+"/v1/analyze", tracefileBytes(t, "cg", 4), nil)
	resp.Body.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	svc.Drain(ctx)
	snap := svc.FinalSnapshot()
	if snap.Counters["service.requests"] != 1 || snap.Counters["service.ok"] != 1 {
		t.Fatalf("snapshot counters: %v", snap.Counters)
	}
	if _, ok := snap.Gauges["runtime.goroutines"]; !ok {
		t.Fatal("final snapshot missing runtime gauges")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}

// Unit tests for the cache and single-flight plumbing.

func TestLRUCacheEvictsOldest(t *testing.T) {
	c := newLRUCache(2)
	k := func(i uint32) cacheKey { return cacheKey{crc: i, size: 1, warm: 1} }
	c.put(k(1), &AnalyzeResponse{TotalPhases: 1})
	c.put(k(2), &AnalyzeResponse{TotalPhases: 2})
	if _, ok := c.get(k(1)); !ok {
		t.Fatal("k1 evicted too early")
	}
	c.put(k(3), &AnalyzeResponse{TotalPhases: 3}) // k2 is now LRU → out
	if _, ok := c.get(k(2)); ok {
		t.Fatal("k2 survived past capacity")
	}
	if _, ok := c.get(k(1)); !ok {
		t.Fatal("recently-used k1 evicted")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}

func TestFlightGroupDedupsConcurrentCallers(t *testing.T) {
	g := newFlightGroup()
	k := cacheKey{crc: 7, size: 7, warm: 1}
	started := make(chan struct{})
	proceed := make(chan struct{})
	var leaders, followers int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i == 0 {
				v, err, leader := g.do(context.Background(), k, func() (*AnalyzeResponse, error) {
					close(started)
					<-proceed
					return &AnalyzeResponse{TotalPhases: 42}, nil
				})
				if err != nil || v.TotalPhases != 42 || !leader {
					t.Errorf("leader: v=%v err=%v leader=%v", v, err, leader)
				}
				mu.Lock()
				leaders++
				mu.Unlock()
				return
			}
			<-started
			v, err, leader := g.do(context.Background(), k, func() (*AnalyzeResponse, error) {
				t.Error("follower executed the work")
				return nil, nil
			})
			if err != nil || v.TotalPhases != 42 || leader {
				t.Errorf("follower: v=%v err=%v leader=%v", v, err, leader)
			}
			mu.Lock()
			followers++
			mu.Unlock()
		}(i)
	}
	go func() {
		<-started
		time.Sleep(20 * time.Millisecond) // let followers pile onto the call
		close(proceed)
	}()
	wg.Wait()
	if leaders != 1 || followers != 7 {
		t.Fatalf("leaders=%d followers=%d, want 1/7", leaders, followers)
	}
}

func TestFlightGroupFollowerTakesOverDeadLeader(t *testing.T) {
	g := newFlightGroup()
	k := cacheKey{crc: 9, size: 9, warm: 1}
	leaderIn := make(chan struct{})
	leaderGo := make(chan struct{})
	go func() {
		g.do(context.Background(), k, func() (*AnalyzeResponse, error) { //nolint:errcheck
			close(leaderIn)
			<-leaderGo
			// The leader dies of its own deadline mid-work.
			return nil, context.DeadlineExceeded
		})
	}()
	<-leaderIn
	followerDone := make(chan struct{})
	go func() {
		defer close(followerDone)
		// Live follower: must not inherit the corpse — it re-runs the
		// work itself and succeeds.
		v, err, _ := g.do(context.Background(), k, func() (*AnalyzeResponse, error) {
			return &AnalyzeResponse{TotalPhases: 7}, nil
		})
		if err != nil || v == nil || v.TotalPhases != 7 {
			t.Errorf("takeover failed: v=%v err=%v", v, err)
		}
	}()
	time.Sleep(10 * time.Millisecond) // follower is waiting on the leader
	close(leaderGo)
	<-followerDone

	// A follower whose own context is dead inherits nothing either —
	// it reports its own cancellation.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err, _ := g.do(ctx, k, func() (*AnalyzeResponse, error) {
		return &AnalyzeResponse{}, nil
	})
	// (no in-flight call: this caller is the leader, fn runs, err nil —
	// but with an in-flight call and a dead ctx it must return ctx.Err.
	// Exercise that path too.)
	_ = err
	blockIn := make(chan struct{})
	blockGo := make(chan struct{})
	go func() {
		g.do(context.Background(), k, func() (*AnalyzeResponse, error) { //nolint:errcheck
			close(blockIn)
			<-blockGo
			return &AnalyzeResponse{}, nil
		})
	}()
	<-blockIn
	_, err, leader := g.do(ctx, k, func() (*AnalyzeResponse, error) {
		t.Error("dead-ctx follower ran the work")
		return nil, nil
	})
	close(blockGo)
	if leader || err == nil || !strings.Contains(err.Error(), "canceled") {
		t.Fatalf("dead-ctx follower: err=%v leader=%v", err, leader)
	}
}

func TestAdmitterEWMAAndRetryAfter(t *testing.T) {
	reg := obs.NewRegistry()
	a := newAdmitter("t", 2, 4, 100*time.Millisecond, reg)
	if got := a.estimate(); got != 100*time.Millisecond {
		t.Fatalf("seed estimate %v", got)
	}
	for i := 0; i < 100; i++ {
		a.observe(200 * time.Millisecond)
	}
	if got := a.estimate(); got < 180*time.Millisecond || got > 200*time.Millisecond {
		t.Fatalf("EWMA did not converge: %v", got)
	}
	if ra := a.retryAfter(); ra < time.Second || ra > 30*time.Second {
		t.Fatalf("retryAfter %v outside clamp", ra)
	}

	// Feasibility: a context with less remaining than the estimate is
	// shed, and the slot is returned.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	release, apiErr := a.admit(ctx)
	if apiErr == nil || apiErr.Code != CodeShed {
		t.Fatalf("infeasible admit: %v", apiErr)
	}
	if release != nil {
		t.Fatal("shed admit returned a release")
	}
	// Slots were returned: a feasible request still gets in.
	release, apiErr = a.admit(context.Background())
	if apiErr != nil {
		t.Fatalf("feasible admit failed: %v", apiErr)
	}
	release()
}

// TestAnalyzeStreamLane proves the out-of-core analyze lane: with the
// stream threshold dropped to one byte every upload streams through
// the disk spool under a tiny memory budget (so spilling actually
// engages), the answer is bit-identical to the in-core pipeline's,
// and the two lanes share the same cache key.
func TestAnalyzeStreamLane(t *testing.T) {
	svc, ts := newTestService(t, func(c *Config) {
		c.StreamThresholdBytes = 1
		c.StreamMemBudget = 1 // force every phase matrix to spill
	})
	data := tracefileBytes(t, "cg", 4)

	resp := postBytes(t, ts.URL+"/v1/analyze", data, nil)
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("streamed analyze: %d %q", resp.StatusCode, b)
	}
	if got := resp.Header.Get(AnalyzeModeHeader); got != "stream" {
		t.Fatalf("%s = %q, want stream", AnalyzeModeHeader, got)
	}
	if got := resp.Header.Get(CacheHeader); got != "miss" {
		t.Fatalf("first streamed analyze X-Cache = %q, want miss", got)
	}
	var streamed AnalyzeResponse
	decodeInto(t, resp, &streamed)

	// In-core reference from a service with streaming disabled.
	_, ref := newTestService(t, func(c *Config) { c.StreamThresholdBytes = -1 })
	resp = postBytes(t, ref.URL+"/v1/analyze", data, nil)
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("in-core analyze: %d %q", resp.StatusCode, b)
	}
	if got := resp.Header.Get(AnalyzeModeHeader); got != "in-core" {
		t.Fatalf("%s = %q, want in-core", AnalyzeModeHeader, got)
	}
	var incore AnalyzeResponse
	decodeInto(t, resp, &incore)
	if !reflect.DeepEqual(streamed, incore) {
		t.Fatalf("streamed answer differs from in-core:\n  stream: %+v\n  incore: %+v", streamed, incore)
	}

	// Same trace again: served from the cache entry the stream lane
	// populated, and the stream admission class accounted both.
	resp = postBytes(t, ts.URL+"/v1/analyze", data, nil)
	if got := resp.Header.Get(CacheHeader); got != "hit" {
		t.Fatalf("second streamed analyze X-Cache = %q, want hit", got)
	}
	resp.Body.Close()
	if got := svc.reg.Counter("service.stream.admitted").Value(); got != 2 {
		t.Fatalf("stream.admitted = %d, want 2", got)
	}
	if got := svc.reg.Counter("service.heavy.admitted").Value(); got != 0 {
		t.Fatalf("heavy.admitted = %d, want 0 (analyze went to the stream class)", got)
	}
}

// TestAnalyzeStreamLaneErrors pins the stream lane's failure taxonomy:
// corruption deep in a spooled v2 body is a typed corrupt_trace, and a
// non-v2 body over the in-core cap is a typed 413 (it cannot be
// random-accessed, so falling back in-core would be the heap risk the
// lane exists to avoid).
func TestAnalyzeStreamLaneErrors(t *testing.T) {
	_, ts := newTestService(t, func(c *Config) {
		c.StreamThresholdBytes = 1
		c.MaxBodyBytes = 1 << 10
		c.StreamBodyBytes = 1 << 20
	})
	data := tracefileBytes(t, "cg", 4)

	// Flip one byte in the middle of the body: the per-block CRC fails
	// during the streamed read.
	bad := append([]byte(nil), data...)
	bad[len(bad)/2] ^= 0x40
	resp := postBytes(t, ts.URL+"/v1/analyze", bad, nil)
	wantTyped(t, resp, http.StatusUnprocessableEntity, CodeCorruptTrace)

	// Non-v2 garbage above MaxBodyBytes but under StreamBodyBytes: the
	// spool cannot fall back in-core, typed 413.
	junk := bytes.Repeat([]byte("j"), 4<<10)
	resp = postBytes(t, ts.URL+"/v1/analyze", junk, nil)
	wantTyped(t, resp, http.StatusRequestEntityTooLarge, CodeBodyTooLarge)

	// Non-v2 garbage under MaxBodyBytes falls back in-core and fails
	// trace decoding, typed.
	resp = postBytes(t, ts.URL+"/v1/analyze", []byte("small junk"), nil)
	wantTyped(t, resp, http.StatusUnprocessableEntity, CodeCorruptTrace)
}
