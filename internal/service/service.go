// Package service is the hardened HTTP/JSON signature service: the
// PAS2P pipeline (submit-trace→analyze, sign, lookup, predict) served
// over the existing AnalyzeAll bounded pool and sigrepo, wrapped in
// the robustness kit a long-running daemon needs to stay correct and
// responsive while faults are actively firing:
//
//   - per-request deadlines propagated as contexts into the pipeline
//     (cancellation checked at stage boundaries), with a hard "no
//     deadline-blown 200s" rule — an expired request gets a typed 504
//     even when its result limped in;
//   - a bounded admission queue per cost class (heavy analyze/sign/
//     predict vs. cheap lookup) with cost-aware load shedding: queue
//     overflow is a 429, an infeasible deadline is shed with a 503
//     before any work starts, both with Retry-After;
//   - per-request panic isolation: a panicking handler kills its
//     request (typed 500, stack on the flight recorder), never the
//     server;
//   - an LRU analysis cache keyed by the PAS2PTR2 whole-file CRC with
//     single-flight dedup of concurrent identical submissions;
//   - graceful drain: stop accepting, finish or shed in-flight work
//     inside the drain deadline, flush a final obs snapshot;
//   - a crash-safe sigrepo underneath (jittered lock retry, fsck),
//     with repository corruption surfacing as a typed, retryable 503.
//
// The chaos property the service is tested against: with a fault-
// injecting filesystem under the repository and an active fault spec
// in the pipeline, every request either succeeds with a checksum-
// valid answer or fails cleanly with a typed error, and post-fsck
// predictions are bit-identical to a healthy baseline.
package service

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"pas2p/internal/faults"
	"pas2p/internal/fsx"
	"pas2p/internal/obs"
	"pas2p/internal/sigrepo"
)

// Config assembles a Service. The zero value of every field selects a
// production-shaped default; tests shrink deadlines and queues.
type Config struct {
	// RepoDir roots the signature repository (required).
	RepoDir string
	// FS is the repository's filesystem seam; nil selects the real
	// filesystem. Chaos mode passes a faults.FaultFS here.
	FS fsx.FS
	// Observer receives service.* metrics, spans and flight events.
	// Nil builds a fresh observer with a flight recorder.
	Observer *obs.Observer
	// Faults, when non-nil, injects deterministic pipeline faults into
	// served sign runs (the daemon's chaos mode).
	Faults *faults.Injector

	// HeavySlots bounds concurrently executing heavy requests
	// (analyze, sign, predict, fsck); 0 selects GOMAXPROCS.
	HeavySlots int
	// HeavyQueue bounds heavy requests waiting beyond the slot
	// holders; 0 selects 4×HeavySlots. Negative means no queue.
	HeavyQueue int
	// LightSlots/LightQueue do the same for the cheap lookup class;
	// 0 selects 4×GOMAXPROCS slots and an 8×slots queue.
	LightSlots int
	LightQueue int

	// HeavyDeadline/LightDeadline are the default per-request
	// deadlines (0: 30s heavy, 2s light). A client may tighten its own
	// deadline with the X-Deadline-Ms header, never widen it.
	HeavyDeadline time.Duration
	LightDeadline time.Duration

	// CacheEntries sizes the analysis LRU (0: 128).
	CacheEntries int
	// MaxBodyBytes caps uploaded request bodies (0: 64 MiB).
	MaxBodyBytes int64
	// AnalyzeWorkers is the per-analysis extraction parallelism knob
	// passed to the pipeline (0: half of GOMAXPROCS, min 1 — analyses
	// already run concurrently across requests).
	AnalyzeWorkers int

	// The stream lane: analyze uploads whose declared Content-Length is
	// at least StreamThresholdBytes are spooled to disk and analysed
	// out-of-core (AnalyzeStream), so the body cap for them can sit far
	// above MaxBodyBytes without heap risk. The lane has its own
	// admission class ("stream") — slots, queue and EWMA cost model —
	// because a multi-gigabyte analysis would otherwise poison the heavy
	// class's service-time estimate and shed ordinary requests.

	// StreamThresholdBytes routes analyze uploads with ContentLength >=
	// this to the stream lane (0: 8 MiB; negative disables streaming).
	// Chunked uploads (unknown length) always stay in-core.
	StreamThresholdBytes int64
	// StreamBodyBytes caps a streamed upload's body (0: 4 GiB).
	StreamBodyBytes int64
	// StreamMemBudget bounds resident phase matrices during an
	// out-of-core analysis; cold matrices spill to scratch files
	// (0: 256 MiB).
	StreamMemBudget int64
	// StreamSlots/StreamQueue bound the stream class (0: 1 slot —
	// streamed analyses are disk-bound, serialising them protects the
	// spool directory — and a 2-deep queue). Negative queue means none.
	StreamSlots int
	StreamQueue int
	// StreamDeadline is the stream class's default per-request deadline
	// (0: 4x HeavyDeadline).
	StreamDeadline time.Duration
}

func (c Config) withDefaults() Config {
	if c.FS == nil {
		c.FS = fsx.OS{}
	}
	if c.Observer == nil {
		c.Observer = obs.New()
	}
	if c.Observer.Flight == nil {
		c.Observer.Flight = obs.NewFlightRecorder(0)
	}
	if c.HeavySlots <= 0 {
		c.HeavySlots = runtime.GOMAXPROCS(0)
	}
	switch {
	case c.HeavyQueue == 0:
		c.HeavyQueue = 4 * c.HeavySlots
	case c.HeavyQueue < 0:
		c.HeavyQueue = 0
	}
	if c.LightSlots <= 0 {
		c.LightSlots = 4 * runtime.GOMAXPROCS(0)
	}
	switch {
	case c.LightQueue == 0:
		c.LightQueue = 8 * c.LightSlots
	case c.LightQueue < 0:
		c.LightQueue = 0
	}
	if c.HeavyDeadline <= 0 {
		c.HeavyDeadline = 30 * time.Second
	}
	if c.LightDeadline <= 0 {
		c.LightDeadline = 2 * time.Second
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 128
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.AnalyzeWorkers <= 0 {
		c.AnalyzeWorkers = max(1, runtime.GOMAXPROCS(0)/2)
	}
	if c.StreamThresholdBytes == 0 {
		c.StreamThresholdBytes = 8 << 20
	}
	if c.StreamBodyBytes <= 0 {
		c.StreamBodyBytes = 4 << 30
	}
	if c.StreamMemBudget <= 0 {
		c.StreamMemBudget = 256 << 20
	}
	if c.StreamSlots <= 0 {
		c.StreamSlots = 1
	}
	switch {
	case c.StreamQueue == 0:
		c.StreamQueue = 2 * c.StreamSlots
	case c.StreamQueue < 0:
		c.StreamQueue = 0
	}
	if c.StreamDeadline <= 0 {
		c.StreamDeadline = 4 * c.HeavyDeadline
	}
	return c
}

// Service is the signature service's request-independent state. Build
// with New, expose with Handler, stop with Drain.
type Service struct {
	cfg  Config
	repo *sigrepo.Repo
	o    *obs.Observer
	reg  *obs.Registry

	heavy  *admitter
	light  *admitter
	stream *admitter
	cache  *lruCache
	group  *flightGroup

	// baseCtx parents every request context; cancelBase is the drain
	// deadline's hammer — it sheds whatever is still in flight.
	baseCtx    context.Context
	cancelBase context.CancelFunc

	draining atomic.Bool
	shedding atomic.Bool // set when the drain deadline forced cancelBase
	inflight atomic.Int64
	drained  chan struct{} // closed once draining && inflight == 0
	closing  atomic.Bool   // guards double-close of drained

	// Metrics cells resolved once (hot paths must not re-lookup).
	mReqs      *obs.Counter
	mOK        *obs.Counter
	mTypedErrs *obs.Counter
	mPanics    *obs.Counter
	mCacheHit  *obs.Counter
	mCacheMiss *obs.Counter
	mDedup     *obs.Counter
	mAbandoned *obs.Counter
	mDrainFin  *obs.Counter
	mDrainShed *obs.Counter
	latHeavy   *obs.Histogram
	latLight   *obs.Histogram
	latStream  *obs.Histogram

	// afterAdmit is a test seam: it runs after admission, inside the
	// request, with the request context (panic isolation tests throw
	// from here; drain tests block here until cancelled).
	afterAdmit func(ctx context.Context, op string)
}

// latencyBounds: 100µs .. 50s in a 1-2-5 series (seconds).
var latencyBounds = []float64{
	0.0001, 0.0002, 0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05,
	0.1, 0.2, 0.5, 1, 2, 5, 10, 20, 50,
}

// New opens the repository and assembles the service.
func New(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	if cfg.RepoDir == "" {
		return nil, fmt.Errorf("service: Config.RepoDir is required")
	}
	reg := cfg.Observer.Reg()
	repo, err := sigrepo.OpenFS(cfg.RepoDir, cfg.FS, reg)
	if err != nil {
		return nil, err
	}
	repo.SetObserver(cfg.Observer)
	if cfg.Faults != nil {
		cfg.Faults.SetObserver(cfg.Observer)
	}
	baseCtx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:        cfg,
		repo:       repo,
		o:          cfg.Observer,
		reg:        reg,
		heavy:      newAdmitter("heavy", cfg.HeavySlots, cfg.HeavyQueue, 50*time.Millisecond, reg),
		light:      newAdmitter("light", cfg.LightSlots, cfg.LightQueue, 2*time.Millisecond, reg),
		stream:     newAdmitter("stream", cfg.StreamSlots, cfg.StreamQueue, 2*time.Second, reg),
		cache:      newLRUCache(cfg.CacheEntries),
		group:      newFlightGroup(),
		baseCtx:    baseCtx,
		cancelBase: cancel,
		drained:    make(chan struct{}),
		mReqs:      reg.Counter("service.requests"),
		mOK:        reg.Counter("service.ok"),
		mTypedErrs: reg.Counter("service.typed_errors"),
		mPanics:    reg.Counter("service.panics"),
		mCacheHit:  reg.Counter("service.cache_hits"),
		mCacheMiss: reg.Counter("service.cache_misses"),
		mDedup:     reg.Counter("service.singleflight_dedups"),
		mAbandoned: reg.Counter("service.abandoned_workers"),
		mDrainFin:  reg.Counter("service.drain_finished"),
		mDrainShed: reg.Counter("service.drain_shed"),
		latHeavy:   reg.Histogram("service.latency_heavy_seconds", latencyBounds),
		latLight:   reg.Histogram("service.latency_light_seconds", latencyBounds),
		latStream:  reg.Histogram("service.latency_stream_seconds", latencyBounds),
	}
	return s, nil
}

// Observer returns the service's observer (for mounting telemetry and
// dumping the flight recorder).
func (s *Service) Observer() *obs.Observer { return s.o }

// Repo exposes the underlying repository (tests seed and fsck it).
func (s *Service) Repo() *sigrepo.Repo { return s.repo }

// Draining reports whether Drain has begun.
func (s *Service) Draining() bool { return s.draining.Load() }

// enter admits one request into the in-flight account; it fails once
// draining has begun so the listener can stop accepting while
// in-flight work finishes.
func (s *Service) enter() bool {
	s.inflight.Add(1)
	if s.draining.Load() {
		// Lost the race with Drain: undo and refuse.
		s.exit()
		return false
	}
	return true
}

// exit retires one request, closing the drain gate when the last
// in-flight request ends after draining began.
func (s *Service) exit() {
	if s.inflight.Add(-1) == 0 && s.draining.Load() {
		if s.closing.CompareAndSwap(false, true) {
			close(s.drained)
		}
	}
}

// DrainReport summarises a graceful shutdown.
type DrainReport struct {
	// InFlightAtStart is how many requests were live when the drain
	// began.
	InFlightAtStart int64 `json:"in_flight_at_start"`
	// Finished counts in-flight requests that completed normally
	// (success or their own typed error) during the drain.
	Finished int64 `json:"finished"`
	// Shed counts in-flight requests cancelled by the drain deadline.
	Shed int64 `json:"shed"`
	// Waited is how long the drain took.
	Waited time.Duration `json:"waited_ns"`
}

// Drain gracefully stops the service: new requests are refused with a
// typed 503, in-flight requests run to completion, and if ctx expires
// first the base context is cancelled so the stragglers are shed at
// their next stage boundary. Drain returns once the last in-flight
// request has ended; it is idempotent (later calls wait on the same
// gate).
func (s *Service) Drain(ctx context.Context) DrainReport {
	start := time.Now()
	inflightAtStart := s.inflight.Load()
	if s.draining.CompareAndSwap(false, true) {
		if s.inflight.Load() == 0 && s.closing.CompareAndSwap(false, true) {
			close(s.drained)
		}
		s.o.Event("service.drain", fmt.Sprintf("drain started with %d in flight", inflightAtStart), -1, inflightAtStart)
	}
	select {
	case <-s.drained:
	case <-ctx.Done():
		// Drain deadline: shed whatever is left. Every request context
		// is a child of baseCtx, so pipelines die at their next stage
		// boundary and handlers return typed errors promptly.
		s.shedding.Store(true)
		s.cancelBase()
		<-s.drained
	}
	rep := DrainReport{
		InFlightAtStart: inflightAtStart,
		Finished:        s.mDrainFin.Value(),
		Shed:            s.mDrainShed.Value(),
		Waited:          time.Since(start),
	}
	s.o.Event("service.drain", fmt.Sprintf("drain complete: %d finished, %d shed", rep.Finished, rep.Shed), -1, 0)
	return rep
}

// FinalSnapshot refreshes the runtime gauges one last time and
// freezes the registry — the obs snapshot a drained daemon flushes.
func (s *Service) FinalSnapshot() *obs.Snapshot {
	obs.CollectRuntime(s.reg)
	return s.reg.Snapshot()
}

// requestCtx derives one request's context: a child of baseCtx (so a
// drain deadline sheds it) bounded by the class deadline, tightened
// further when the client asked for less via X-Deadline-Ms.
func (s *Service) requestCtx(classDeadline, clientWants time.Duration) (context.Context, context.CancelFunc) {
	d := classDeadline
	if clientWants > 0 && clientWants < d {
		d = clientWants
	}
	return context.WithTimeout(s.baseCtx, d)
}

// workResult carries a bounded work call's outcome.
type workResult struct {
	v   any
	err error
}

// runWork executes fn on its own goroutine and waits for it or for
// the context, whichever ends first. The pipeline stages fn calls are
// context-aware where possible (AnalyzeCtx), but simulator runs are
// not interruptible mid-run — runWork is what guarantees the *request*
// still honours its deadline: the HTTP response returns typed and on
// time, the orphaned computation finishes in the background and is
// counted under service.abandoned_workers. A panic inside fn fails
// the request, never the server.
func (s *Service) runWork(ctx context.Context, op string, fn func() (any, error)) (any, error) {
	ch := make(chan workResult, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				s.mPanics.Inc()
				s.o.Event("service.panic", fmt.Sprintf("%s: panic: %v", op, r), -1, 0)
				ch <- workResult{err: errPanic()}
			}
		}()
		v, err := fn()
		ch <- workResult{v: v, err: err}
	}()
	select {
	case r := <-ch:
		return r.v, r.err
	case <-ctx.Done():
		s.mAbandoned.Inc()
		s.o.Event("service.abandoned", op+": worker abandoned (deadline or drain)", -1, 0)
		return nil, ctx.Err()
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
