package service

import (
	"context"
	"sync/atomic"
	"time"

	"pas2p/internal/obs"
)

// admitter is per-class admission control: a fixed number of
// execution slots plus a bounded wait queue. Requests beyond
// slots+queue are rejected immediately (429 + Retry-After), and a
// request is never dispatched into work it cannot finish: on winning
// a slot the remaining deadline is compared against a live estimate
// of the class's service time, and infeasible requests are shed (503)
// before they burn a worker. That is what keeps one train of 20 s
// analyses from collapsing the 1 ms lookup path — each class fails
// fast in its own lane instead of queueing unboundedly.
type admitter struct {
	name  string
	slots chan struct{}

	queueBound int64        // max waiters beyond the slot holders
	waiting    atomic.Int64 // current waiters (includes the one selecting)

	// estNS is an EWMA of observed service times for this class — the
	// cost model behind both feasibility shedding and Retry-After.
	// Seeded from config so the first requests have a sane estimate.
	estNS atomic.Int64

	depth     *obs.Gauge   // service.<class>.queue_depth
	shedFull  *obs.Counter // service.<class>.shed_queue_full
	shedInfea *obs.Counter // service.<class>.shed_infeasible
	admitted  *obs.Counter // service.<class>.admitted
}

func newAdmitter(name string, slots, queue int, seedEstimate time.Duration, reg *obs.Registry) *admitter {
	if slots < 1 {
		slots = 1
	}
	if queue < 0 {
		queue = 0
	}
	a := &admitter{
		name:       name,
		slots:      make(chan struct{}, slots),
		queueBound: int64(queue),
		depth:      reg.Gauge("service." + name + ".queue_depth"),
		shedFull:   reg.Counter("service." + name + ".shed_queue_full"),
		shedInfea:  reg.Counter("service." + name + ".shed_infeasible"),
		admitted:   reg.Counter("service." + name + ".admitted"),
	}
	for i := 0; i < slots; i++ {
		a.slots <- struct{}{}
	}
	a.estNS.Store(seedEstimate.Nanoseconds())
	return a
}

// estimate returns the current EWMA service-time estimate.
func (a *admitter) estimate() time.Duration { return time.Duration(a.estNS.Load()) }

// observe folds one completed request's service time into the EWMA
// (alpha 1/8: stable against a single outlier, adapts within ~10
// requests to a shifted workload mix).
func (a *admitter) observe(d time.Duration) {
	for {
		old := a.estNS.Load()
		next := old + (d.Nanoseconds()-old)/8
		if a.estNS.CompareAndSwap(old, next) {
			return
		}
	}
}

// retryAfter guesses when a slot will plausibly be free: the backlog
// ahead of a new arrival, paced by the service-time estimate, floored
// at one second (the Retry-After granularity).
func (a *admitter) retryAfter() time.Duration {
	backlog := a.waiting.Load() + 1
	est := a.estimate()
	ra := time.Duration(backlog) * est / time.Duration(cap(a.slots))
	if ra < time.Second {
		ra = time.Second
	}
	if ra > 30*time.Second {
		ra = 30 * time.Second
	}
	return ra
}

// admit blocks until the request may start work, and returns the
// release function to defer. A typed error means the request was
// refused without any work being started: queue overflow, a deadline
// that expired while queued, or a remaining deadline too short for
// the class's estimated service time ("never deadline-blown work").
func (a *admitter) admit(ctx context.Context) (release func(), apiErr *APIError) {
	// Queue bound: waiting counts everyone between "arrived" and
	// "holds a slot", so the bound caps queued memory and queued wait.
	if w := a.waiting.Add(1); w > int64(cap(a.slots))+a.queueBound {
		a.waiting.Add(-1)
		a.shedFull.Inc()
		return nil, errQueueFull(a.name, a.retryAfter())
	}
	a.depth.Set(float64(a.waiting.Load()))
	defer func() {
		a.waiting.Add(-1)
		a.depth.Set(float64(a.waiting.Load()))
	}()

	select {
	case <-a.slots:
		// Feasibility gate: starting work that cannot finish inside
		// its deadline only blows the deadline *and* a slot. Shed it
		// now, honestly, while retrying is still cheap for the client.
		if dl, ok := ctx.Deadline(); ok {
			if remaining := time.Until(dl); remaining < a.estimate() {
				a.slots <- struct{}{}
				a.shedInfea.Inc()
				return nil, errShed("remaining deadline shorter than estimated service time", a.retryAfter())
			}
		}
		a.admitted.Inc()
		return func() { a.slots <- struct{}{} }, nil
	case <-ctx.Done():
		// Deadline or cancellation spent entirely in the queue: no
		// work was started, so this is a shed, not a timeout.
		a.shedInfea.Inc()
		return nil, errShed("deadline expired while queued", a.retryAfter())
	}
}
