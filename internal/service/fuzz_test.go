package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// FuzzServiceRequest: the request decoding surface — JSON bodies,
// query parameters, the deadline header, and the light read-only
// routes — must never panic and must answer every malformed input with
// a typed 4xx error. The service must never leak an untyped failure to
// a client no matter what bytes arrive.
func FuzzServiceRequest(f *testing.F) {
	cfg := Config{RepoDir: f.TempDir()}
	svc, err := New(cfg)
	if err != nil {
		f.Fatal(err)
	}
	h, err := svc.Handler()
	if err != nil {
		f.Fatal(err)
	}

	f.Add(uint8(0), []byte(`{"app":"cg","procs":8}`), "app=cg&procs=8", "250")
	f.Add(uint8(1), []byte(`{"app":"cg","target":"B"}`), "app=&procs=-1", "")
	f.Add(uint8(2), []byte(`{`), "warm=2", "0")
	f.Add(uint8(3), []byte(`{"app":"cg","bogus":true}`), "warm=-1", "99999999999999999999")
	f.Add(uint8(4), []byte("PAS2PTR2 but not really"), "%zz", "-5")
	f.Add(uint8(5), []byte(`[1,2,3]`), "procs=abc", "abc")
	f.Add(uint8(6), []byte(`{"app":"cg"} trailing`), "app=cg", "1.5")
	f.Add(uint8(7), []byte{0x00, 0xff, 0xfe}, "", "\x00")

	f.Fuzz(func(t *testing.T, sel uint8, body []byte, rawQuery, deadline string) {
		// Decoder helpers first: every rejection must be a typed 4xx.
		for _, dst := range []any{new(SignRequest), new(PredictRequest)} {
			req := httptest.NewRequest(http.MethodPost, "/x", bytes.NewReader(body))
			if aerr := decodeJSON(req, dst); aerr != nil {
				if aerr.Status < 400 || aerr.Status > 499 || aerr.Code == "" {
					t.Fatalf("decodeJSON rejection not a typed 4xx: %+v", aerr)
				}
			}
		}
		req := httptest.NewRequest(http.MethodGet, "/x", nil)
		if deadline != "" {
			// Header values with control bytes are not settable; skip those.
			func() {
				defer func() { recover() }() //nolint:errcheck
				req.Header.Set(DeadlineHeader, deadline)
			}()
		}
		if d, aerr := clientDeadline(req); aerr != nil {
			if aerr.Status != http.StatusBadRequest || aerr.Code != CodeBadRequest {
				t.Fatalf("clientDeadline rejection not typed 400: %+v", aerr)
			}
		} else if req.Header.Get(DeadlineHeader) != "" && d <= 0 {
			t.Fatalf("clientDeadline accepted %q as %v", deadline, d)
		}

		// Full routing layer on the cheap routes (lookup never runs the
		// pipeline; analyze rejects at the codec for non-tracefiles —
		// a fuzzer will not forge the whole-file CRC).
		var target string
		var method string
		var reqBody []byte
		switch sel % 4 {
		case 0:
			method, target = http.MethodGet, "/v1/lookup?"+rawQuery
		case 1:
			method, target, reqBody = http.MethodPost, "/v1/analyze?"+rawQuery, body
		case 2:
			method, target = http.MethodGet, "/v1/"+rawQuery
		case 3:
			method, target, reqBody = http.MethodPut, "/v1/lookup", body
		}
		hreq, herr := http.NewRequest(method, "http://svc"+target, bytes.NewReader(reqBody))
		if herr != nil {
			return // unparseable target: nothing reaches the server
		}
		// A tight per-request deadline bounds every exec: even an input
		// that reaches real work is abandoned at the 2 s mark.
		hreq.Header.Set(DeadlineHeader, "2000")
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, hreq.WithContext(ctx))

		res := rec.Result()
		if res.StatusCode == http.StatusOK {
			return // e.g. /v1/ index or a genuinely valid request
		}
		var e errorBody
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error.Code == "" {
			t.Fatalf("%s %s → untyped %d: %.200q", method, target, res.StatusCode, rec.Body.String())
		}
		if res.StatusCode >= 500 && e.Error.Code != CodeInternal &&
			e.Error.Code != CodeRepoCorrupt && e.Error.Code != CodeShed && e.Error.Code != CodeDraining {
			t.Fatalf("%s %s → unexpected 5xx %d code %q", method, target, res.StatusCode, e.Error.Code)
		}
	})
}
