package service

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"pas2p/internal/obs"
)

// Server binds a Service to a TCP listener. Create with Listen; stop
// with DrainAndShutdown.
type Server struct {
	svc *Service
	ln  net.Listener
	hs  *http.Server
}

// Listen starts serving svc on addr (host:port; port 0 picks a free
// port — read the result from Addr).
func Listen(addr string, svc *Service) (*Server, error) {
	h, err := svc.Handler()
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	s := &Server{svc: svc, ln: ln, hs: &http.Server{Handler: h}}
	go s.hs.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Shutdown
	return s, nil
}

// Addr returns the actual listen address (resolves port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the server's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Service returns the served service.
func (s *Server) Service() *Service { return s.svc }

// DrainAndShutdown performs the daemon's graceful exit: the service
// drains (new requests get a typed 503, in-flight requests finish or
// are shed when ctx expires), the HTTP server closes its listener and
// idle connections, and the final obs snapshot is flushed. The
// returned snapshot is valid even when the HTTP shutdown errs.
func (s *Server) DrainAndShutdown(ctx context.Context) (DrainReport, *obs.Snapshot, error) {
	rep := s.svc.Drain(ctx)
	// The drain already emptied the request path; give connection
	// teardown its own short budget so an expired drain ctx does not
	// leave sockets dangling.
	hctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := s.hs.Shutdown(hctx)
	return rep, s.svc.FinalSnapshot(), err
}
