package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"

	"pas2p"
	"pas2p/internal/faults"
	"pas2p/internal/fsx"
)

// chaosSpec is a fully-recovering message fault schedule: loss bounded
// by retransmission, duplication, delay. For cg/4 it leaves the phase
// table free of pair-bias corrections (scaledRows == 0), which is the
// regime where predictions are bit-identical to a healthy run.
const (
	chaosSeed = 7
	chaosSpec = "loss=0.05,dup=0.03,delay=0.10"
)

// localPET runs the full local pipeline for cg/4 A→B (optionally
// faulted) and returns the prediction plus the pair-bias row count.
func localPET(t *testing.T, inj *pas2p.FaultInjector) (int64, int) {
	t.Helper()
	app, err := pas2p.MakeApp("cg", 4, "")
	if err != nil {
		t.Fatal(err)
	}
	dA, err := pas2p.NewDeployment(pas2p.ClusterA(), 4, pas2p.MapBlock)
	if err != nil {
		t.Fatal(err)
	}
	dB, err := pas2p.NewDeployment(pas2p.ClusterB(), 4, pas2p.MapBlock)
	if err != nil {
		t.Fatal(err)
	}
	r, err := pas2p.RunApp(app, pas2p.RunConfig{Deployment: dA, Trace: true, Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	_, tb, err := pas2p.Analyze(r.Trace, pas2p.DefaultPhaseConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	scaled := 0
	for _, row := range tb.Rows {
		if row.ETScale != 0 && row.ETScale != 1 {
			scaled++
		}
	}
	sig, _, err := pas2p.BuildSignature(app, tb, dA, pas2p.DefaultSignatureOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sig.Execute(dB)
	if err != nil {
		t.Fatal(err)
	}
	return int64(res.PET), scaled
}

// TestChaosServiceServesCleanOrTyped is the chaos serving proof: the
// daemon runs with message-level fault injection in its pipeline AND a
// corrupting filesystem under its signature repository, absorbs
// concurrent mixed traffic, and every single response is either a 200
// whose checksums verify or a clean typed error — never a confident
// wrong answer, never an untyped failure, never a crash. Afterwards,
// fsck + a bounded re-sign loop restore service, and the restored
// prediction is bit-identical to a healthy local baseline.
func TestChaosServiceServesCleanOrTyped(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos campaign is slow")
	}

	// Healthy local baseline, and the precondition that makes the
	// bit-identity assertion non-vacuous: cg/4 must carry no pair-bias
	// correction, healthy or faulted.
	petHealthy, scaled0 := localPET(t, nil)
	if scaled0 != 0 {
		t.Fatalf("cg/4 healthy table has %d scaled rows; pick another app", scaled0)
	}
	preInj, err := pas2p.ParseFaultSpec(chaosSeed, chaosSpec)
	if err != nil {
		t.Fatal(err)
	}
	petFaulted, scaled1 := localPET(t, preInj)
	if scaled1 != 0 {
		t.Fatalf("cg/4 faulted table has %d scaled rows; spec no longer recovery-only", scaled1)
	}
	if petFaulted != petHealthy {
		t.Fatalf("local chaos invariant broken before the service test: healthy PET %d, faulted %d",
			petHealthy, petFaulted)
	}

	// The service under chaos: same injector spec in the pipeline, and
	// a repository filesystem that tears, truncates, and bit-flips a
	// large fraction of writes.
	inj, err := pas2p.ParseFaultSpec(chaosSeed, chaosSpec)
	if err != nil {
		t.Fatal(err)
	}
	ffs, err := faults.NewFaultFS(fsx.OS{}, faults.FSConfig{
		Seed: chaosSeed, TornRate: 0.25, TruncRate: 0.2, FlipRate: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	svc, ts := newTestService(t, func(c *Config) {
		c.FS = ffs
		c.Faults = inj
		c.HeavySlots = 2
		c.HeavyQueue = 16
	})
	data := tracefileBytes(t, "cg", 4)

	// The storm: concurrent workers mixing every endpoint, including
	// fsck, against the corrupting repo. Typed errors (404 before the
	// first successful sign, 503 repo_corrupt after a torn write) are
	// expected and fine; unclean responses fail the test.
	var mu sync.Mutex
	var unclean []string
	shas := map[string]bool{}
	note := func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		if len(unclean) < 16 {
			unclean = append(unclean, fmt.Sprintf(format, args...))
		}
	}
	checkSha := func(sha string) {
		mu.Lock()
		defer mu.Unlock()
		shas[sha] = true
	}

	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				var resp *http.Response
				var err error
				op := ""
				switch (w*8 + i) % 5 {
				case 0, 1:
					op = "sign"
					resp = postJSON(t, ts.URL+"/v1/sign", SignRequest{App: "cg", Procs: 4})
				case 2:
					op = "analyze"
					resp = postBytes(t, ts.URL+"/v1/analyze", data, nil)
				case 3:
					op = "lookup"
					resp, err = http.Get(ts.URL + "/v1/lookup?app=cg&procs=4")
				case 4:
					op = "predict"
					resp = postJSON(t, ts.URL+"/v1/predict", PredictRequest{App: "cg", Procs: 4})
				}
				if err != nil {
					note("%s: transport: %v", op, err)
					continue
				}
				body, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if rerr != nil {
					note("%s: reading body: %v", op, rerr)
					continue
				}
				if resp.StatusCode != http.StatusOK {
					var e errorBody
					if jerr := json.Unmarshal(body, &e); jerr != nil || e.Error.Code == "" {
						note("%s: untyped %d: %.160q", op, resp.StatusCode, body)
					}
					continue
				}
				// 200 under chaos: the checksums must hold.
				switch op {
				case "sign":
					var v SignResponse
					if jerr := json.Unmarshal(body, &v); jerr != nil || v.PayloadSHA256 == "" {
						note("sign: 200 without verifiable payload: %.160q", body)
						continue
					}
					checkSha(v.PayloadSHA256)
				case "lookup":
					var v LookupResponse
					if jerr := json.Unmarshal(body, &v); jerr != nil || v.PayloadSHA256 == "" {
						note("lookup: 200 without verifiable payload: %.160q", body)
						continue
					}
					checkSha(v.PayloadSHA256)
				case "predict":
					var v PredictResponse
					if jerr := json.Unmarshal(body, &v); jerr != nil || v.PayloadSHA256 == "" {
						note("predict: 200 without verifiable payload: %.160q", body)
						continue
					}
					checkSha(v.PayloadSHA256)
					if v.PETNS != petHealthy {
						note("predict: served PET %d under chaos, healthy baseline %d", v.PETNS, petHealthy)
					}
				case "analyze":
					var v AnalyzeResponse
					if jerr := json.Unmarshal(body, &v); jerr != nil || v.TotalPhases == 0 {
						note("analyze: implausible 200: %.160q", body)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for _, u := range unclean {
		t.Errorf("unclean under chaos: %s", u)
	}
	// The pipeline is deterministic per seed, so every successful sign
	// stores byte-identical payload: one SHA across the whole storm.
	if len(shas) > 1 {
		t.Errorf("payload SHA flapped under chaos: %d distinct values", len(shas))
	}
	if t.Failed() {
		t.FailNow()
	}

	// Recovery: fsck quarantines whatever the fault filesystem mangled,
	// a re-sign rewrites it, and within a bounded number of rounds the
	// service answers again — with the healthy prediction, bit for bit.
	var pet PredictResponse
	recovered := false
	for round := 0; round < 20 && !recovered; round++ {
		resp := postBytes(t, ts.URL+"/v1/fsck", nil, nil)
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		resp = postJSON(t, ts.URL+"/v1/sign", SignRequest{App: "cg", Procs: 4})
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			continue
		}
		resp.Body.Close()
		resp = postJSON(t, ts.URL+"/v1/predict", PredictRequest{App: "cg", Procs: 4})
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			continue
		}
		decodeInto(t, resp, &pet)
		recovered = true
	}
	if !recovered {
		t.Fatal("service did not recover within 20 fsck+re-sign rounds")
	}
	if pet.PETNS != petHealthy {
		t.Fatalf("post-recovery prediction %d != healthy baseline %d", pet.PETNS, petHealthy)
	}
	if pet.Degraded {
		t.Fatal("post-recovery prediction reports degradation")
	}

	// The server survived all of it.
	if svc.mPanics.Value() != 0 {
		t.Fatalf("panics under chaos: %d", svc.mPanics.Value())
	}
	rep := inj.Report()
	if rep.Injected == 0 && rep.ClockPerturbations == 0 {
		t.Fatal("chaos campaign injected nothing; property vacuous")
	}
	t.Logf("chaos: %d faults injected, healthy PET %d served bit-identically after recovery",
		rep.Injected, petHealthy)
}

// TestChaosTruncatedUploadIsTyped pins the ingestion half: a tracefile
// damaged in flight (torn tail, flipped bit) is always a typed 422,
// never a 200 and never a panic — the whole-file CRC and per-block
// checksums catch it.
func TestChaosTruncatedUploadIsTyped(t *testing.T) {
	_, ts := newTestService(t, nil)
	data := tracefileBytes(t, "cg", 4)
	for _, mut := range []struct {
		name string
		body []byte
	}{
		{"torn", data[:len(data)/2]},
		{"truncated", data[:len(data)-3]},
		{"bitflip", flipBit(data, 1234567)},
	} {
		resp := postBytes(t, ts.URL+"/v1/analyze", mut.body, nil)
		wantTyped(t, resp, http.StatusUnprocessableEntity, CodeCorruptTrace)
	}
}

func flipBit(data []byte, bit int) []byte {
	out := bytes.Clone(data)
	bit %= len(out) * 8
	out[bit/8] ^= 1 << (bit % 8)
	return out
}
