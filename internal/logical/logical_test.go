package logical

import (
	"testing"

	"pas2p/internal/machine"
	"pas2p/internal/mpi"
	"pas2p/internal/trace"
	"pas2p/internal/vtime"
)

// traceOf runs a small app under instrumentation and returns its trace.
func traceOf(t testing.TB, cluster *machine.Cluster, procs int, body func(c *mpi.Comm)) *trace.Trace {
	t.Helper()
	d, err := machine.NewDeployment(cluster, procs, machine.MapBlock)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mpi.Run(mpi.App{Name: "t", Procs: procs, Body: body},
		mpi.RunConfig{Deployment: d, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Trace.Validate(); err != nil {
		t.Fatal(err)
	}
	return res.Trace
}

func pingBody(iters int) func(c *mpi.Comm) {
	return func(c *mpi.Comm) {
		for i := 0; i < iters; i++ {
			c.Compute(1e4)
			if c.Rank() == 0 {
				c.Send(1, 0, []float64{1})
				c.Recv(1, 1)
			} else {
				c.Recv(0, 0)
				c.Send(0, 1, []float64{2})
			}
		}
	}
}

func TestOrderPingPong(t *testing.T) {
	tr := traceOf(t, machine.ClusterA(), 2, pingBody(3))
	l, err := Order(tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	// Each iteration: send0(LT k), recv1(k+1) ... strictly interleaved.
	per := l.Trace.PerProcess()
	// Receive pinned to send+1.
	sends := map[[2]int64]int64{}
	for p := range per {
		for i := range per[p] {
			e := &per[p][i]
			if e.Kind == trace.Send {
				sends[[2]int64{e.RelA, e.RelB}] = e.LT
			}
		}
	}
	for p := range per {
		for i := range per[p] {
			e := &per[p][i]
			if e.Kind != trace.Recv {
				continue
			}
			slt := sends[[2]int64{e.RelA, e.RelB}]
			if e.LT < slt+1 {
				t.Errorf("recv LT %d earlier than send LT %d + 1", e.LT, slt)
			}
		}
	}
}

func TestOrderEmptyTrace(t *testing.T) {
	if _, err := Order(&trace.Trace{Procs: 1}); err == nil {
		t.Error("empty trace should fail")
	}
	if _, err := Order(nil); err == nil {
		t.Error("nil trace should fail")
	}
}

func TestOrderDoesNotMutateInput(t *testing.T) {
	tr := traceOf(t, machine.ClusterA(), 2, pingBody(2))
	if _, err := Order(tr); err != nil {
		t.Fatal(err)
	}
	for i := range tr.Events {
		if tr.Events[i].LT != trace.NoLT {
			t.Fatal("Order mutated the input trace")
		}
	}
}

func TestCollectiveSharesTick(t *testing.T) {
	tr := traceOf(t, machine.ClusterA(), 4, func(c *mpi.Comm) {
		c.Compute(float64(1000 * (c.Rank() + 1)))
		c.Barrier()
		c.Allreduce([]float64{1}, mpi.Sum)
	})
	l, err := Order(tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	// Two ticks total: barrier, allreduce; each with 4 events.
	if l.NumTicks() != 2 {
		t.Fatalf("ticks = %d, want 2", l.NumTicks())
	}
	for tk := 0; tk < 2; tk++ {
		if len(l.Ticks[tk]) != 4 {
			t.Errorf("tick %d has %d events, want 4", tk, len(l.Ticks[tk]))
		}
	}
}

func TestOnePerProcessPerTick(t *testing.T) {
	tr := traceOf(t, machine.ClusterB(), 8, func(c *mpi.Comm) {
		n := c.Size()
		for i := 0; i < 5; i++ {
			c.Compute(1e4)
			right := (c.Rank() + 1) % n
			left := (c.Rank() + n - 1) % n
			c.SendrecvN(right, 0, 800, left, 0)
			c.Allreduce([]float64{1}, mpi.Sum)
		}
	})
	l, err := Order(tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	// EventAt agrees with the tick table.
	for tk := range l.Ticks {
		for _, s := range l.Ticks[tk] {
			if got := l.EventAt(tk, s.Proc); got != s.Event {
				t.Fatalf("EventAt(%d,%d) = %d, want %d", tk, s.Proc, got, s.Event)
			}
		}
		if l.EventAt(tk, 99) != -1 {
			t.Fatal("EventAt for absent process should be -1")
		}
	}
}

func TestMachineIndependence(t *testing.T) {
	// The defining property of the application model: the logical
	// trace must be identical when the same program runs on different
	// clusters, although physical times differ everywhere.
	body := func(c *mpi.Comm) {
		n := c.Size()
		for i := 0; i < 4; i++ {
			c.Compute(float64(1e4 * (c.Rank() + 1)))
			peer := (c.Rank() + n/2) % n
			c.SendrecvN(peer, 0, 4096, peer, 0)
			if c.Rank() == 0 {
				for s := 1; s < n; s++ {
					c.RecvN(s, 1)
				}
			} else {
				c.SendN(0, 1, 64)
			}
			c.Barrier()
		}
	}
	var ref *Logical
	for _, cl := range []*machine.Cluster{machine.ClusterA(), machine.ClusterB(), machine.ClusterC()} {
		l, err := Order(traceOf(t, cl, 8, body))
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Validate(); err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = l
			continue
		}
		if l.NumTicks() != ref.NumTicks() {
			t.Fatalf("%s: %d ticks vs %d on reference", cl.Name, l.NumTicks(), ref.NumTicks())
		}
		for tk := range l.Ticks {
			if len(l.Ticks[tk]) != len(ref.Ticks[tk]) {
				t.Fatalf("%s: tick %d width differs", cl.Name, tk)
			}
			for i, s := range l.Ticks[tk] {
				r := ref.Ticks[tk][i]
				a, b := l.Trace.Events[s.Event], ref.Trace.Events[r.Event]
				if a.Process != b.Process || a.Kind != b.Kind || a.Size != b.Size || a.Tag != b.Tag {
					t.Fatalf("%s: tick %d slot %d event differs", cl.Name, tk, i)
				}
			}
		}
	}
}

func TestLamportBaselineOrders(t *testing.T) {
	tr := traceOf(t, machine.ClusterA(), 4, func(c *mpi.Comm) {
		for i := 0; i < 3; i++ {
			c.Compute(float64(1e4 * (c.Rank() + 1)))
			if c.Rank() == 0 {
				for s := 1; s < c.Size(); s++ {
					c.RecvN(mpi.AnySource, 0)
				}
			} else {
				c.SendN(0, 0, 128)
			}
			c.Barrier()
		}
	})
	l, err := OrderLamport(tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLamportVsPAS2PDiffer(t *testing.T) {
	// With wildcard receives whose arrival order differs across
	// machines, the Lamport model is machine-dependent while PAS2P's
	// stays normalised. At minimum the two orderings must both be
	// valid; the ablation benchmarks quantify the quality difference.
	body := func(c *mpi.Comm) {
		for i := 0; i < 3; i++ {
			if c.Rank() == 0 {
				for s := 1; s < c.Size(); s++ {
					c.RecvN(mpi.AnySource, 0)
				}
				for s := 1; s < c.Size(); s++ {
					c.SendN(s, 1, 64)
				}
			} else {
				c.Compute(float64(1e4 * (5 - c.Rank())))
				c.SendN(0, 0, 64)
				c.RecvN(0, 1)
			}
		}
	}
	tr := traceOf(t, machine.ClusterA(), 4, body)
	lp, err := Order(tr)
	if err != nil {
		t.Fatal(err)
	}
	ll, err := OrderLamport(tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := lp.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := ll.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMeanTickDuration(t *testing.T) {
	tr := traceOf(t, machine.ClusterA(), 2, pingBody(5))
	l, err := Order(tr)
	if err != nil {
		t.Fatal(err)
	}
	if l.MeanTickDuration() <= 0 {
		t.Error("mean tick duration should be positive")
	}
}

func TestPermuteRecvRunsNormalisesOrder(t *testing.T) {
	// Hand-build a trace where two receives were recorded in the
	// "wrong" (arrival) order; after ordering, the run must ascend by
	// LT.
	p0 := []trace.Event{
		{Process: 0, Number: 0, Kind: trace.Send, Involved: 2, CollOp: -1, Peer: 1, Tag: 0, Enter: 10, Exit: 11, RelA: 0, RelB: 0},
		{Process: 0, Number: 1, Kind: trace.Send, Involved: 2, CollOp: -1, Peer: 1, Tag: 1, Enter: 20, Exit: 21, RelA: 0, RelB: 1},
	}
	p1 := []trace.Event{
		// Arrival order flipped: the second send arrives first.
		{Process: 1, Number: 0, Kind: trace.Recv, Involved: 2, CollOp: -1, Peer: 0, Tag: 1, Enter: 5, Exit: 30, RelA: 0, RelB: 1},
		{Process: 1, Number: 1, Kind: trace.Recv, Involved: 2, CollOp: -1, Peer: 0, Tag: 0, Enter: 31, Exit: 40, RelA: 0, RelB: 0},
	}
	tr, err := trace.NewTrace("perm", 2, [][]trace.Event{p0, p1}, 100)
	if err != nil {
		t.Fatal(err)
	}
	l, err := Order(tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	per := l.Trace.PerProcess()
	// After permutation, proc 1's receives must be ordered by LT:
	// first the one matching send seq 0 (LT 1), then seq 1.
	if per[1][0].RelB != 0 || per[1][1].RelB != 1 {
		t.Errorf("recv run not normalised: RelB order %d,%d", per[1][0].RelB, per[1][1].RelB)
	}
	if per[1][0].LT >= per[1][1].LT {
		t.Errorf("recv LTs not ascending: %d,%d", per[1][0].LT, per[1][1].LT)
	}
}

// chainTrace hand-builds a depth-n send→recv dependency chain: proc
// n-1 sends first; every proc below it must receive from the proc
// above before sending downward, so resolution cascades one link per
// queue pass and the assigner revisits pending receives O(n²) times
// while legal progress is always one pass away.
func chainTrace(t *testing.T, n int) *trace.Trace {
	t.Helper()
	per := make([][]trace.Event, n)
	base := func(p int) vtime.Time { return vtime.Time(10 * (n - p)) }
	for p := 0; p < n; p++ {
		var evs []trace.Event
		if p < n-1 {
			evs = append(evs, trace.Event{
				Process: int32(p), Number: 0, Kind: trace.Recv, Involved: 2, CollOp: -1,
				Peer: int32(p + 1), Tag: 0, Enter: base(p), Exit: base(p) + 5,
				RelA: int64(p + 1), RelB: 0,
			})
		}
		if p > 0 {
			evs = append(evs, trace.Event{
				Process: int32(p), Number: int64(len(evs)), Kind: trace.Send, Involved: 2, CollOp: -1,
				Peer: int32(p - 1), Tag: 0, Enter: base(p) + 6, Exit: base(p) + 7,
				RelA: int64(p), RelB: 0,
			})
		}
		per[p] = evs
	}
	tr, err := trace.NewTrace("chain", n, per, vtime.Duration(20*n))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestOrderDeepRecvChain is the stall-detector regression: a deep
// receive-dependency chain shrinks and refills the assignment queue
// for many passes while progress is always still possible, so the
// detector must count full no-progress passes, not raw spins, before
// declaring the relations inconsistent.
func TestOrderDeepRecvChain(t *testing.T) {
	for _, depth := range []int{3, 16, 64, 256} {
		tr := chainTrace(t, depth)
		l, err := Order(tr)
		if err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		if err := l.Validate(); err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		// The chain forces strictly increasing LTs down the cascade:
		// proc 0's receive resolves last, at tick >= depth-1.
		per := l.Trace.PerProcess()
		if got := per[0][0].LT; got < int64(depth-1) {
			t.Errorf("depth %d: proc 0 recv at tick %d, want >= %d", depth, got, depth-1)
		}
	}
}

// TestOrderDetectsGenuineStall: a receive cycle (each proc's send is
// behind a receive of the other's send) must be reported as an error,
// not loop forever — including when healthy processes keep the queue
// busy for a while first.
func TestOrderDetectsGenuineStall(t *testing.T) {
	cycle := func(p, q int32) [][]trace.Event {
		mk := func(me, peer int32) []trace.Event {
			return []trace.Event{
				{Process: me, Number: 0, Kind: trace.Recv, Involved: 2, CollOp: -1,
					Peer: peer, Tag: 0, Enter: 0, Exit: 5, RelA: int64(peer), RelB: 0},
				{Process: me, Number: 1, Kind: trace.Send, Involved: 2, CollOp: -1,
					Peer: peer, Tag: 0, Enter: 6, Exit: 7, RelA: int64(me), RelB: 0},
			}
		}
		return [][]trace.Event{mk(p, q), mk(q, p)}
	}

	t.Run("bare", func(t *testing.T) {
		per := cycle(0, 1)
		tr, err := trace.NewTrace("cycle", 2, per, 100)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Order(tr); err == nil {
			t.Fatal("cyclic receive dependency should fail ordering")
		}
	})

	t.Run("with healthy procs", func(t *testing.T) {
		per := cycle(0, 1)
		// Procs 2 and 3 exchange happily; the stall must still be
		// detected once only the cycle remains pending.
		var p2, p3 []trace.Event
		for i := 0; i < 20; i++ {
			p2 = append(p2, trace.Event{Process: 2, Number: int64(i), Kind: trace.Send, Involved: 2, CollOp: -1,
				Peer: 3, Tag: 0, Enter: vtime.Time(10 * i), Exit: vtime.Time(10*i + 1), RelA: 2, RelB: int64(i)})
			p3 = append(p3, trace.Event{Process: 3, Number: int64(i), Kind: trace.Recv, Involved: 2, CollOp: -1,
				Peer: 2, Tag: 0, Enter: vtime.Time(10 * i), Exit: vtime.Time(10*i + 2), RelA: 2, RelB: int64(i)})
		}
		tr, err := trace.NewTrace("cycle+healthy", 4, append(per, p2, p3), 400)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Order(tr); err == nil {
			t.Fatal("cyclic receive dependency should fail ordering despite healthy procs")
		}
	})
}

func TestOrderLargeRing(t *testing.T) {
	tr := traceOf(t, machine.ClusterC(), 32, func(c *mpi.Comm) {
		n := c.Size()
		for i := 0; i < 10; i++ {
			c.Compute(1e4)
			c.SendrecvN((c.Rank()+1)%n, 0, 1024, (c.Rank()+n-1)%n, 0)
		}
		c.Barrier()
	})
	l, err := Order(tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	// Tick count must be far below event count thanks to alignment.
	if l.NumTicks() >= len(l.Trace.Events)/8 {
		t.Errorf("ticks = %d for %d events; alignment looks broken", l.NumTicks(), len(l.Trace.Events))
	}
}
