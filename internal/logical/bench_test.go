package logical

import (
	"testing"

	"pas2p/internal/machine"
	"pas2p/internal/mpi"
	"pas2p/internal/trace"
)

func benchTrace(b *testing.B, procs, iters int) *trace.Trace {
	b.Helper()
	d, err := machine.NewDeployment(machine.ClusterC(), procs, machine.MapBlock)
	if err != nil {
		b.Fatal(err)
	}
	res, err := mpi.Run(mpi.App{Name: "bench", Procs: procs, Body: func(c *mpi.Comm) {
		n := c.Size()
		for i := 0; i < iters; i++ {
			c.Compute(1e4)
			c.SendrecvN((c.Rank()+1)%n, 0, 1024, (c.Rank()+n-1)%n, 0)
			c.Allreduce([]float64{1}, mpi.Sum)
		}
	}}, mpi.RunConfig{Deployment: d, Trace: true})
	if err != nil {
		b.Fatal(err)
	}
	return res.Trace
}

// BenchmarkOrderPAS2P measures the §3.2 ordering over a 32-rank,
// ~16k-event trace.
func BenchmarkOrderPAS2P(b *testing.B) {
	tr := benchTrace(b, 32, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Order(tr); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(tr.Events)), "events")
}

// BenchmarkOrderLamport measures the baseline ordering on the same
// trace.
func BenchmarkOrderLamport(b *testing.B) {
	tr := benchTrace(b, 32, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OrderLamport(tr); err != nil {
			b.Fatal(err)
		}
	}
}
