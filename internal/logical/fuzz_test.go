package logical

import (
	"fmt"
	"math/rand"
	"testing"

	"pas2p/internal/machine"
	"pas2p/internal/mpi"
	"pas2p/internal/trace"
)

// fuzzBody expands a seed into a random but deadlock-free communication
// program over the kinds the model supports (ring and pairwise
// exchanges, collectives, master gather).
func fuzzBody(seed int64, segsN int) func(c *mpi.Comm) {
	rng := rand.New(rand.NewSource(seed))
	type segment struct{ kind, repeats, bytes, tag int }
	segs := make([]segment, segsN)
	for i := range segs {
		segs[i] = segment{
			kind:    rng.Intn(5),
			repeats: 1 + rng.Intn(4),
			bytes:   64 << rng.Intn(6),
			tag:     i + 1,
		}
	}
	return func(c *mpi.Comm) {
		n, me := c.Size(), c.Rank()
		for _, s := range segs {
			for r := 0; r < s.repeats; r++ {
				c.Compute(1e4)
				switch s.kind {
				case 0:
					c.SendrecvN((me+1)%n, s.tag, s.bytes, (me+n-1)%n, s.tag)
				case 1:
					if peer := me ^ 1; peer < n {
						c.SendrecvN(peer, s.tag, s.bytes, peer, s.tag)
					}
				case 2:
					c.Allreduce([]float64{float64(me)}, mpi.Sum)
				case 3:
					if me == 0 {
						for src := 1; src < n; src++ {
							c.RecvN(src, s.tag)
						}
					} else {
						c.SendN(0, s.tag, s.bytes)
					}
				default:
					c.Barrier()
				}
			}
		}
	}
}

// FuzzLogicalOrder checks the core invariants of the PAS2P logical
// order on randomly generated programs: Order validates, never mutates
// its input, assigns at most one event per (process, tick), places
// every receive strictly after its matching send, and — the defining
// machine-independence property — produces the same LT assignment on
// two different clusters.
func FuzzLogicalOrder(f *testing.F) {
	f.Add(int64(1), 2, 3)
	f.Add(int64(7), 4, 5)
	f.Add(int64(42), 8, 4)
	f.Add(int64(9), 3, 6)
	f.Fuzz(func(t *testing.T, seed int64, procs, segs int) {
		if procs < 2 || procs > 8 || segs < 1 || segs > 6 {
			t.Skip("out of modelled range")
		}
		run := func(cl *machine.Cluster) *Logical {
			d, err := machine.NewDeployment(cl, procs, machine.MapBlock)
			if err != nil {
				t.Fatal(err)
			}
			res, err := mpi.Run(mpi.App{
				Name:  fmt.Sprintf("fuzz-%d", seed),
				Procs: procs,
				Body:  fuzzBody(seed, segs),
			}, mpi.RunConfig{Deployment: d, Trace: true})
			if err != nil {
				t.Fatal(err)
			}
			l, err := Order(res.Trace)
			if err != nil {
				t.Fatal(err)
			}
			if err := l.Validate(); err != nil {
				t.Fatal(err)
			}
			for i := range res.Trace.Events {
				if res.Trace.Events[i].LT != trace.NoLT {
					t.Fatal("Order mutated its input trace")
				}
			}
			return l
		}
		l := run(machine.ClusterA())

		// One event per process per tick, and EventAt agrees.
		for tk := range l.Ticks {
			seen := map[int32]bool{}
			for _, s := range l.Ticks[tk] {
				if seen[s.Proc] {
					t.Fatalf("tick %d assigns process %d twice", tk, s.Proc)
				}
				seen[s.Proc] = true
				if got := l.EventAt(tk, s.Proc); got != s.Event {
					t.Fatalf("EventAt(%d,%d) = %d, want %d", tk, s.Proc, got, s.Event)
				}
			}
		}

		// Receives happen strictly after their matching send.
		sends := map[[2]int64]int64{}
		for i := range l.Trace.Events {
			e := &l.Trace.Events[i]
			if e.Kind == trace.Send {
				sends[[2]int64{e.RelA, e.RelB}] = e.LT
			}
		}
		for i := range l.Trace.Events {
			e := &l.Trace.Events[i]
			if e.Kind != trace.Recv {
				continue
			}
			slt, ok := sends[[2]int64{e.RelA, e.RelB}]
			if !ok {
				t.Fatalf("recv %d has no matching send", i)
			}
			if e.LT <= slt {
				t.Fatalf("recv LT %d not after send LT %d", e.LT, slt)
			}
		}

		// Machine independence: same LTs on a different cluster.
		l2 := run(machine.ClusterB())
		if len(l.Trace.Events) != len(l2.Trace.Events) {
			t.Fatalf("event counts differ across clusters: %d vs %d",
				len(l.Trace.Events), len(l2.Trace.Events))
		}
		for i := range l.Trace.Events {
			if l.Trace.Events[i].LT != l2.Trace.Events[i].LT {
				t.Fatalf("event %d: LT %d on A, %d on B — logical order is machine-dependent",
					i, l.Trace.Events[i].LT, l2.Trace.Events[i].LT)
			}
		}
	})
}
