package logical

import (
	"bytes"
	"io"
	"testing"

	"pas2p/internal/machine"
	"pas2p/internal/mpi"
	"pas2p/internal/trace"
)

// collectTicks drains a TickReader into an owned slice.
func collectTicks(t *testing.T, r *TickReader) []Tick {
	t.Helper()
	var out []Tick
	for {
		tk, err := r.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("stream tick %d: %v", len(out), err)
		}
		if tk.Index != len(out) {
			t.Fatalf("tick index %d, want %d", tk.Index, len(out))
		}
		out = append(out, Tick{Index: tk.Index, Slots: append([]TickEvent(nil), tk.Slots...)})
	}
}

// inCoreTicks projects an in-core Logical onto the streaming Tick
// representation for comparison.
func inCoreTicks(l *Logical) []Tick {
	out := make([]Tick, len(l.Ticks))
	for t, slots := range l.Ticks {
		tk := Tick{Index: t}
		for _, s := range slots {
			e := &l.Trace.Events[s.Event]
			tk.Slots = append(tk.Slots, TickEvent{
				Proc: s.Proc, Sig: e.CommSignature(), Size: e.Size,
				Compute: e.ComputeBefore, Exit: e.Exit,
			})
		}
		out[t] = tk
	}
	return out
}

func assertSameTicks(t *testing.T, name string, want, got []Tick) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d streamed ticks, in-core has %d", name, len(got), len(want))
	}
	for i := range want {
		if len(want[i].Slots) != len(got[i].Slots) {
			t.Fatalf("%s: tick %d has %d streamed slots, in-core %d",
				name, i, len(got[i].Slots), len(want[i].Slots))
		}
		for j := range want[i].Slots {
			if want[i].Slots[j] != got[i].Slots[j] {
				t.Fatalf("%s: tick %d slot %d diverges:\n  in-core: %+v\n  stream:  %+v",
					name, i, j, want[i].Slots[j], got[i].Slots[j])
			}
		}
	}
}

// assertStreamMatchesOrder is the PR's core logical-stage property:
// StreamOrder must emit the exact tick sequence Order builds, both
// over an in-memory source and over an encoded tracefile's rank
// streams.
func assertStreamMatchesOrder(t *testing.T, name string, tr *trace.Trace) {
	t.Helper()
	l, err := Order(tr)
	if err != nil {
		t.Fatalf("%s: in-core order: %v", name, err)
	}
	want := inCoreTicks(l)

	r, err := StreamOrder(SourceFromTrace(tr))
	if err != nil {
		t.Fatalf("%s: stream order: %v", name, err)
	}
	assertSameTicks(t, name+"/memory", want, collectTicks(t, r))

	// And through the real on-disk path: encode, reopen, rank streams.
	var buf bytes.Buffer
	if err := trace.Encode(&buf, tr); err != nil {
		t.Fatalf("%s: encode: %v", name, err)
	}
	br, err := trace.NewBlockReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("%s: block reader: %v", name, err)
	}
	rs, err := br.RankStreams()
	if err != nil {
		t.Fatalf("%s: rank streams: %v", name, err)
	}
	r2, err := StreamOrder(rs)
	if err != nil {
		t.Fatalf("%s: stream order over file: %v", name, err)
	}
	assertSameTicks(t, name+"/file", want, collectTicks(t, r2))
}

func TestStreamOrderMatchesOrder(t *testing.T) {
	cases := []struct {
		name  string
		procs int
		body  func(c *mpi.Comm)
	}{
		{"pingpong", 2, pingBody(5)},
		{"ring+barrier", 8, func(c *mpi.Comm) {
			n := c.Size()
			for i := 0; i < 12; i++ {
				c.Compute(1e4)
				c.SendrecvN((c.Rank()+1)%n, 0, 1024, (c.Rank()+n-1)%n, 0)
				if i%3 == 2 {
					c.Barrier()
				}
			}
		}},
		{"collective-heavy", 6, func(c *mpi.Comm) {
			for i := 0; i < 8; i++ {
				c.Compute(5e3)
				c.Allreduce([]float64{1, 2, 3}, mpi.Sum)
				c.Barrier()
			}
		}},
		{"masterworker", 5, func(c *mpi.Comm) {
			if c.Rank() == 0 {
				for r := 1; r < c.Size(); r++ {
					c.Send(r, 0, []float64{1, 2})
				}
				for r := 1; r < c.Size(); r++ {
					c.Recv(r, 1)
				}
			} else {
				c.Recv(0, 0)
				c.Compute(2e4)
				c.Send(0, 1, []float64{3})
			}
		}},
	}
	for _, tc := range cases {
		tr := traceOf(t, machine.ClusterA(), tc.procs, tc.body)
		assertStreamMatchesOrder(t, tc.name, tr)
	}
}

// TestStreamOrderDeepRecvChain: the stall detector's
// full-pass-counting behaviour must survive streaming — deep chains
// resolve, and the tick sequence still matches.
func TestStreamOrderDeepRecvChain(t *testing.T) {
	for _, depth := range []int{3, 16, 64, 256} {
		assertStreamMatchesOrder(t, "chain", chainTrace(t, depth))
	}
}

// TestStreamOrderDetectsStall: genuinely inconsistent relations fail
// with the exact in-core error text.
func TestStreamOrderDetectsStall(t *testing.T) {
	mk := func(me, peer int32) []trace.Event {
		return []trace.Event{
			{Process: me, Number: 0, Kind: trace.Recv, Involved: 2, CollOp: -1,
				Peer: peer, Tag: 0, Enter: 0, Exit: 5, RelA: int64(peer), RelB: 0},
			{Process: me, Number: 1, Kind: trace.Send, Involved: 2, CollOp: -1,
				Peer: peer, Tag: 0, Enter: 6, Exit: 7, RelA: int64(me), RelB: 0},
		}
	}
	tr, err := trace.NewTrace("cycle", 2, [][]trace.Event{mk(0, 1), mk(1, 0)}, 100)
	if err != nil {
		t.Fatal(err)
	}
	_, inCoreErr := Order(tr)
	if inCoreErr == nil {
		t.Fatal("in-core order accepted a receive cycle")
	}
	r, err := StreamOrder(SourceFromTrace(tr))
	if err != nil {
		t.Fatal(err)
	}
	var streamErr error
	for {
		_, err := r.Next()
		if err != nil {
			if err != io.EOF {
				streamErr = err
			}
			break
		}
	}
	if streamErr == nil {
		t.Fatal("streaming order accepted a receive cycle")
	}
	if streamErr.Error() != inCoreErr.Error() {
		t.Fatalf("stall errors diverge:\n  in-core: %v\n  stream:  %v", inCoreErr, streamErr)
	}
	// A failed reader keeps returning its error.
	if _, err := r.Next(); err == nil || err.Error() != streamErr.Error() {
		t.Fatalf("Next after failure = %v, want sticky error", err)
	}
}

// TestStreamOrderEmptyTrace mirrors TestOrderEmptyTrace.
func TestStreamOrderEmptyTrace(t *testing.T) {
	tr, err := trace.NewTrace("empty", 2, [][]trace.Event{nil, nil}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := StreamOrder(SourceFromTrace(tr)); err == nil {
		t.Fatal("StreamOrder accepted an empty trace")
	}
}

// TestStreamOrderBoundedQueues pins the memory property the streaming
// order exists for: on a long barrier-synced run, the per-process
// finalised queues and the send-LT frontier stay bounded instead of
// growing with the trace.
func TestStreamOrderBoundedQueues(t *testing.T) {
	tr := traceOf(t, machine.ClusterA(), 4, func(c *mpi.Comm) {
		n := c.Size()
		for i := 0; i < 500; i++ {
			c.Compute(1e3)
			c.SendrecvN((c.Rank()+1)%n, 0, 64, (c.Rank()+n-1)%n, 0)
			if i%5 == 4 {
				c.Barrier()
			}
		}
	})
	r, err := StreamOrder(SourceFromTrace(tr))
	if err != nil {
		t.Fatal(err)
	}
	maxPend := 0
	for {
		_, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		pend := len(r.sendLT)
		for p := 0; p < r.procs; p++ {
			pend += len(r.mq[p]) - r.mqHead[p]
		}
		if pend > maxPend {
			maxPend = pend
		}
	}
	// ~6000 events total; the live frontier must stay orders of
	// magnitude below that (loose bound: it is ~100 in practice).
	if maxPend > len(tr.Events)/4 {
		t.Fatalf("streaming frontier reached %d pending entries for a %d-event trace; memory is not bounded",
			maxPend, len(tr.Events))
	}
}
