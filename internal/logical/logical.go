// Package logical implements the machine-independent application model
// of PAS2P (§3.2 of the paper): it converts the physical per-process
// traces into a single logical trace by assigning every event a
// logical time (LT) with the PAS2P ordering — a Lamport-inspired rule
// where a receive is pinned to its send's LT+1 rather than to its
// nondeterministic arrival position, and a collective takes the
// maximum participant LT plus one — and then builds the tick table
// (at most one event per process per tick) that the phase-extraction
// stage consumes.
//
// A pure Lamport ordering over the physical occurrence order is also
// provided as the baseline the paper improved upon; the ablation
// benchmarks compare phase counts and prediction quality between the
// two.
package logical

import (
	"fmt"
	"sort"

	"pas2p/internal/trace"
	"pas2p/internal/vtime"
)

// Slot locates one event inside a tick.
type Slot struct {
	// Proc is the process the event belongs to.
	Proc int32
	// Event indexes into the logical trace's Events.
	Event int
}

// Logical is the machine-independent application model: the input
// trace with LTs assigned, organised as a tick table.
type Logical struct {
	// Trace is the input trace; its events carry assigned LTs equal to
	// their final tick index.
	Trace *trace.Trace
	// Ticks holds, for every logical time unit, the events occurring
	// at it, sorted by process. Every tick has at least one event and
	// at most one event per process.
	Ticks [][]Slot
}

// NumTicks returns the length of the logical trace in ticks.
func (l *Logical) NumTicks() int { return len(l.Ticks) }

// EventAt returns the index of the event of process p at tick t, or -1
// if the process has no event there.
func (l *Logical) EventAt(t int, p int32) int {
	slots := l.Ticks[t]
	i := sort.Search(len(slots), func(i int) bool { return slots[i].Proc >= p })
	if i < len(slots) && slots[i].Proc == p {
		return slots[i].Event
	}
	return -1
}

// EachSig calls yield for every event at tick t in ascending process
// order, passing the owning process and the event's communication
// signature. It is the per-tick iteration the phase stage's repeat
// scan and fingerprint index consume without reaching into Event
// structs themselves.
func (l *Logical) EachSig(t int, yield func(proc int32, sig uint64)) {
	for _, s := range l.Ticks[t] {
		yield(s.Proc, l.Trace.Events[s.Event].CommSignature())
	}
}

// Order assigns PAS2P logical times to a copy of the trace and builds
// the tick table. The input trace is not modified.
func Order(tr *trace.Trace) (*Logical, error) {
	return buildLogical(tr, assignPAS2P)
}

// OrderLamport assigns classic Lamport logical times driven by the
// physical occurrence order — the baseline whose receive
// nondeterminism PAS2P ordering removes.
func OrderLamport(tr *trace.Trace) (*Logical, error) {
	return buildLogical(tr, assignLamport)
}

func buildLogical(tr *trace.Trace, assign func(*trace.Trace, [][]trace.Event) error) (*Logical, error) {
	if tr == nil || len(tr.Events) == 0 {
		return nil, fmt.Errorf("logical: empty trace")
	}
	cp := &trace.Trace{AppName: tr.AppName, Procs: tr.Procs, AET: tr.AET,
		Events: append([]trace.Event(nil), tr.Events...)}
	per := cp.PerProcess()
	if err := assign(cp, per); err != nil {
		return nil, err
	}
	permuteRecvRuns(per)
	clampMonotone(per)
	ticks, err := buildTicks(cp, per)
	if err != nil {
		return nil, err
	}
	return &Logical{Trace: cp, Ticks: ticks}, nil
}

// assignPAS2P implements the paper's ordering via the queue algorithm
// of Table 1: the first event of every process seeds the queue; events
// are assigned in causal order, receives pinned to LT(send)+1 (never
// afterwards, except that an event cannot precede its own process
// predecessor), collectives to max(member LT)+1.
func assignPAS2P(tr *trace.Trace, per [][]trace.Event) error {
	type collWait struct {
		arrived int
		procs   []int32
	}
	next := make([]int, tr.Procs) // per-process program pointer
	hw := make([]int64, tr.Procs) // per-process high-water LT
	for p := range hw {
		hw[p] = -1
	}
	sendLT := map[[2]int64]int64{} // (src, sendSeq) -> LT
	collWaits := map[[2]int64]*collWait{}
	sendSeq := make([]int64, tr.Procs)
	parked := make([]bool, tr.Procs)

	queue := make([]int32, 0, tr.Procs)
	for p := 0; p < tr.Procs; p++ {
		if len(per[p]) > 0 {
			queue = append(queue, int32(p))
		}
	}
	assigned, total := 0, len(tr.Events)
	// visits counts queue pops since the last state change (an event
	// assignment or a collective arrival). During a run of failed
	// receive visits the queue length is constant, so once visits
	// exceeds it some entry has been retried with no state change in
	// between — nothing it depends on can ever appear, so the relations
	// are inconsistent. Counting whole no-progress passes this way is
	// immune to queue-length fluctuations that made a per-visit spin
	// counter fragile on deep receive-dependency chains.
	visits := 0
	for assigned < total {
		if len(queue) == 0 {
			return fmt.Errorf("logical: trace %q stalls with %d/%d events assigned (inconsistent relations)",
				tr.AppName, assigned, total)
		}
		p := queue[0]
		queue = queue[1:]
		evs := per[p]
		if next[p] >= len(evs) {
			continue
		}
		e := &evs[next[p]]
		switch e.Kind {
		case trace.Send:
			lt := hw[p] + 1
			e.LT = lt
			hw[p] = lt
			sendLT[[2]int64{int64(p), sendSeq[p]}] = lt
			sendSeq[p]++
			visits = 0
		case trace.Recv:
			slt, ok := sendLT[[2]int64{e.RelA, e.RelB}]
			if !ok {
				// The matching send is not assigned yet; revisit later.
				queue = append(queue, p)
				visits++
				if visits > len(queue) {
					return fmt.Errorf("logical: trace %q: full pass over %d pending procs made no progress; receive on proc %d references send (%d,%d) that never resolves",
						tr.AppName, len(queue), p, e.RelA, e.RelB)
				}
				continue
			}
			// The PAS2P pin: reception at LT(send)+1, never afterwards.
			// The raw value may sit below this process's high water;
			// the permutation and clamp passes normalise that.
			lt := slt + 1
			e.LT = lt
			if lt > hw[p] {
				hw[p] = lt
			}
			visits = 0
		case trace.Collective:
			key := [2]int64{e.RelA, e.RelB}
			cw := collWaits[key]
			if cw == nil {
				cw = &collWait{}
				collWaits[key] = cw
			}
			cw.arrived++
			cw.procs = append(cw.procs, p)
			if cw.arrived < int(e.Involved) {
				parked[p] = true // released by the last arrival
				visits = 0       // an arrival is a state change
				continue
			}
			// Last arrival: LT = max over members' current LT + 1.
			var maxLT int64 = -1
			for _, m := range cw.procs {
				if hw[m] > maxLT {
					maxLT = hw[m]
				}
			}
			lt := maxLT + 1
			for _, m := range cw.procs {
				me := &per[m][next[m]]
				me.LT = lt
				hw[m] = lt
				next[m]++
				assigned++
				parked[m] = false
				if next[m] < len(per[m]) {
					queue = append(queue, m)
				}
			}
			delete(collWaits, key)
			visits = 0
			continue
		default:
			return fmt.Errorf("logical: trace %q: unknown event kind %d", tr.AppName, e.Kind)
		}
		next[p]++
		assigned++
		if next[p] < len(evs) {
			queue = append(queue, p)
		}
	}
	for p, pk := range parked {
		if pk {
			return fmt.Errorf("logical: trace %q: proc %d parked at a collective forever", tr.AppName, p)
		}
	}
	return nil
}

// assignLamport walks events in physical occurrence order and applies
// the classic rules: every event advances its process clock by one;
// a receive additionally takes max with the send's LT.
func assignLamport(tr *trace.Trace, per [][]trace.Event) error {
	type ref struct {
		p int32
		i int
	}
	order := make([]ref, 0, len(tr.Events))
	for p := range per {
		for i := range per[p] {
			order = append(order, ref{int32(p), i})
		}
	}
	sort.SliceStable(order, func(a, b int) bool {
		x, y := &per[order[a].p][order[a].i], &per[order[b].p][order[b].i]
		if x.Exit != y.Exit {
			return x.Exit < y.Exit
		}
		if x.Process != y.Process {
			return x.Process < y.Process
		}
		return x.Number < y.Number
	})
	cur := make([]int64, tr.Procs)
	for p := range cur {
		cur[p] = -1
	}
	sendLT := map[[2]int64]int64{}
	sendSeq := make([]int64, tr.Procs)
	collLT := map[[2]int64]int64{}
	for _, r := range order {
		e := &per[r.p][r.i]
		switch e.Kind {
		case trace.Send:
			e.LT = cur[r.p] + 1
			sendLT[[2]int64{int64(r.p), sendSeq[r.p]}] = e.LT
			sendSeq[r.p]++
		case trace.Recv:
			slt, ok := sendLT[[2]int64{e.RelA, e.RelB}]
			if !ok {
				return fmt.Errorf("logical: lamport: receive before its send in physical order (proc %d #%d)", r.p, r.i)
			}
			lt := cur[r.p] + 1
			if slt+1 > lt {
				lt = slt + 1
			}
			e.LT = lt
		case trace.Collective:
			key := [2]int64{e.RelA, e.RelB}
			lt, ok := collLT[key]
			if !ok {
				lt = cur[r.p] + 1
			} else if cur[r.p]+1 > lt {
				lt = cur[r.p] + 1
			}
			collLT[key] = lt
			e.LT = lt
		}
		if e.LT > cur[r.p] {
			cur[r.p] = e.LT
		}
	}
	// Second pass: collective events across members must share the
	// final (largest) LT of their occurrence.
	for p := range per {
		for i := range per[p] {
			e := &per[p][i]
			if e.Kind == trace.Collective {
				e.LT = collLT[[2]int64{e.RelA, e.RelB}]
			}
		}
	}
	return nil
}

// permuteRecvRuns sorts maximal runs of consecutive receive events of
// each process by LT (the paper's "permutation only inside the
// LTRecvs"), normalising arrival nondeterminism.
func permuteRecvRuns(per [][]trace.Event) {
	for p := range per {
		evs := per[p]
		i := 0
		for i < len(evs) {
			if evs[i].Kind != trace.Recv {
				i++
				continue
			}
			j := i
			for j < len(evs) && evs[j].Kind == trace.Recv {
				j++
			}
			run := evs[i:j]
			sort.SliceStable(run, func(a, b int) bool { return run[a].LT < run[b].LT })
			// Renumber so per-process numbering stays consistent.
			for k := range run {
				run[k].Number = int64(i + k)
			}
			i = j
		}
	}
}

// clampMonotone enforces non-decreasing LTs along every process after
// the receive permutation: an event cannot logically precede its
// process predecessor, and equal LTs are separated by tick splitting.
func clampMonotone(per [][]trace.Event) {
	for p := range per {
		evs := per[p]
		for i := 1; i < len(evs); i++ {
			if evs[i].LT < evs[i-1].LT {
				evs[i].LT = evs[i-1].LT
			}
		}
	}
}

// buildTicks densifies (LT, same-process collision index) pairs into
// final tick numbers: strictly increasing along every process, at most
// one event per process per tick, aligned across processes. Event LTs
// are rewritten to their final tick.
func buildTicks(tr *trace.Trace, per [][]trace.Event) ([][]Slot, error) {
	type key struct {
		lt  int64
		sub int32
	}
	keys := make(map[key]struct{})
	subs := make([][]int32, len(per))
	for p := range per {
		evs := per[p]
		subs[p] = make([]int32, len(evs))
		var sub int32
		for i := range evs {
			if evs[i].LT < 0 {
				return nil, fmt.Errorf("logical: proc %d event %d has no LT", p, i)
			}
			if i > 0 {
				switch {
				case evs[i].LT < evs[i-1].LT:
					return nil, fmt.Errorf("logical: proc %d LT not monotone at event %d", p, i)
				case evs[i].LT == evs[i-1].LT:
					sub++
				default:
					sub = 0
				}
			}
			subs[p][i] = sub
			keys[key{evs[i].LT, sub}] = struct{}{}
		}
	}
	ordered := make([]key, 0, len(keys))
	for k := range keys {
		ordered = append(ordered, k)
	}
	sort.Slice(ordered, func(a, b int) bool {
		if ordered[a].lt != ordered[b].lt {
			return ordered[a].lt < ordered[b].lt
		}
		return ordered[a].sub < ordered[b].sub
	})
	rank := make(map[key]int64, len(ordered))
	for i, k := range ordered {
		rank[k] = int64(i)
	}
	ticks := make([][]Slot, len(ordered))
	// per aliases tr.Events, so global indexes can be derived from the
	// per-process offsets.
	offsets := make([]int, len(per))
	off := 0
	for p := range per {
		offsets[p] = off
		off += len(per[p])
	}
	for p := range per {
		evs := per[p]
		for i := range evs {
			t := rank[key{evs[i].LT, subs[p][i]}]
			evs[i].LT = t
			ticks[t] = append(ticks[t], Slot{Proc: int32(p), Event: offsets[p] + i})
		}
	}
	for t := range ticks {
		sort.Slice(ticks[t], func(a, b int) bool { return ticks[t][a].Proc < ticks[t][b].Proc })
		for i := 1; i < len(ticks[t]); i++ {
			if ticks[t][i].Proc == ticks[t][i-1].Proc {
				return nil, fmt.Errorf("logical: two events of proc %d share tick %d", ticks[t][i].Proc, t)
			}
		}
	}
	return ticks, nil
}

// Validate checks the tick-table invariants.
func (l *Logical) Validate() error {
	if len(l.Ticks) == 0 {
		return fmt.Errorf("logical: no ticks")
	}
	seen := make([]int64, l.Trace.Procs)
	for p := range seen {
		seen[p] = -1
	}
	count := 0
	for t, slots := range l.Ticks {
		if len(slots) == 0 {
			return fmt.Errorf("logical: tick %d is empty", t)
		}
		for _, s := range slots {
			e := &l.Trace.Events[s.Event]
			if e.Process != s.Proc {
				return fmt.Errorf("logical: tick %d slot points at wrong process", t)
			}
			if e.LT != int64(t) {
				return fmt.Errorf("logical: event LT %d disagrees with tick %d", e.LT, t)
			}
			if int64(t) <= seen[s.Proc] {
				return fmt.Errorf("logical: proc %d ticks not strictly increasing at %d", s.Proc, t)
			}
			seen[s.Proc] = int64(t)
			count++
		}
	}
	if count != len(l.Trace.Events) {
		return fmt.Errorf("logical: tick table covers %d of %d events", count, len(l.Trace.Events))
	}
	return nil
}

// MeanTickDuration estimates the physical duration of one tick: the
// application execution time divided by the tick count. Phase
// execution-time estimates derive from per-event physical times
// instead; this is only used for reporting.
func (l *Logical) MeanTickDuration() vtime.Duration {
	if len(l.Ticks) == 0 {
		return 0
	}
	return l.Trace.AET / vtime.Duration(len(l.Ticks))
}
