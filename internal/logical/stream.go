package logical

// Streaming logical order: the bounded-memory half of the out-of-core
// analysis pipeline.
//
// Order materialises the full event slice, assigns LTs with the queue
// algorithm, then normalises (receive-run permutation, monotone clamp)
// and finally sorts the global (LT, sub) key set into ticks. StreamOrder
// produces the exact same tick sequence without ever holding more than
// O(procs + frontier) events:
//
//   - events are pulled lazily, one per process at a time, from an
//     EventSource (trace.RankStreams over a v2 file, or an in-memory
//     adapter);
//   - the assignment loop is the in-core queue algorithm verbatim —
//     same pop order, same visit counting, same stall errors — except
//     that a process's current event lives in a one-slot head buffer
//     instead of a slice, and each matched send's LT is deleted after
//     its receive consumes it (valid traces pair them 1:1, so the map
//     holds only the unmatched frontier);
//   - the permutation + clamp + sub-numbering passes are per-process
//     local, so they run incrementally as events are assigned: receives
//     buffer into the current run, any non-receive (or end of stream)
//     flushes the run with the same stable sort, and the running clamp
//     and collision counter finalise each event's (LT, sub) key;
//   - finalised events feed per-process FIFO queues merged by a k-way
//     minimum. Per process the key sequence is strictly increasing, so
//     the global minimum visits every distinct key exactly once in
//     sorted order — which is precisely buildTicks' sort-and-rank — and
//     each pop emits one tick, numbered by pop count, with slots
//     gathered in process order.
//
// A process with no finalised event bounds the merge with (lastLT,
// lastSub+1): the clamp guarantees its next key cannot be smaller, so a
// candidate tick is emitted only when every silent process provably
// cannot join it. That is what makes the output deterministic and
// bit-identical to Order regardless of I/O interleaving.
//
// One deliberate divergence: because sendLT entries are deleted on
// match, a malformed trace in which two receives name the same send
// resolves the first and stalls on the second (in-core assigns both).
// Valid traces — anything the recorder or Trace.Validate accepts —
// never do that, and the stall error text is the standard one.

import (
	"fmt"
	"io"
	"math"
	"sort"

	"pas2p/internal/trace"
	"pas2p/internal/vtime"
)

// EventSource feeds per-process event streams to StreamOrder. Process
// streams must be in per-process program order (what PerProcess or a
// rank cursor yields). trace.RankStreams implements it over a v2
// tracefile.
type EventSource interface {
	Meta() trace.Meta
	// Count returns how many events process p will yield in total.
	Count(p int) uint64
	// NextEvent copies process p's next event into dst; false with nil
	// error means the stream is exhausted.
	NextEvent(p int, dst *trace.Event) (bool, error)
}

// traceSource adapts an in-memory trace to EventSource (tests and the
// in-core comparison path).
type traceSource struct {
	meta trace.Meta
	per  [][]trace.Event
	pos  []int
}

// SourceFromTrace wraps an in-memory trace as an EventSource. The
// trace is not modified.
func SourceFromTrace(tr *trace.Trace) EventSource {
	return &traceSource{
		meta: trace.Meta{AppName: tr.AppName, Procs: tr.Procs,
			Events: uint64(len(tr.Events)), AET: tr.AET},
		per: tr.PerProcess(),
		pos: make([]int, tr.Procs),
	}
}

func (s *traceSource) Meta() trace.Meta   { return s.meta }
func (s *traceSource) Count(p int) uint64 { return uint64(len(s.per[p])) }
func (s *traceSource) NextEvent(p int, dst *trace.Event) (bool, error) {
	if s.pos[p] >= len(s.per[p]) {
		return false, nil
	}
	*dst = s.per[p][s.pos[p]]
	s.pos[p]++
	return true, nil
}

// TickEvent is one process's event at a tick, reduced to exactly what
// the downstream phase stage consumes: the communication signature and
// the behaviour-cell payload.
type TickEvent struct {
	Proc    int32
	Sig     uint64
	Size    int64
	Compute vtime.Duration
	Exit    vtime.Time
}

// Tick is one logically-ordered time unit: at least one event, at most
// one per process, slots in ascending process order. Index is the
// final tick number (identical to the in-core Logical tick index).
type Tick struct {
	Index int
	Slots []TickEvent
}

// pendEvent is an assigned event moving through the finalisation
// pipeline: raw LT from assignment, then clamped LT plus collision
// index once finalised.
type pendEvent struct {
	lt      int64
	sub     int32
	sig     uint64
	size    int64
	compute vtime.Duration
	exit    vtime.Time
}

// mergeKey orders finalised events; per process it is strictly
// increasing.
func keyLess(aLT int64, aSub int32, bLT int64, bSub int32) bool {
	if aLT != bLT {
		return aLT < bLT
	}
	return aSub < bSub
}

// assignChunk is how many queue-algorithm steps run between merge
// attempts: large enough to amortise the O(procs) pop scan, small
// enough to keep the finalised queues shallow.
const assignChunk = 64

// TickReader streams the PAS2P logical order tick by tick. Obtain one
// from StreamOrder; Next returns io.EOF after the last tick. The
// returned Tick (and its Slots) is scratch reused by the following
// call.
type TickReader struct {
	src    trace.Meta
	source EventSource
	procs  int
	total  uint64
	err    error

	// --- queue-algorithm state (mirrors assignPAS2P) ---
	queue      []int32
	qHead      int
	next       []uint64 // events pulled AND consumed per process
	remaining  []uint64 // events not yet pulled into head
	head       []trace.Event
	headOK     []bool
	hw         []int64
	sendLT     map[[2]int64]int64
	collWaits  map[[2]int64]*collWait
	sendSeq    []int64
	parked     []bool
	visits     int
	assigned   uint64
	assignDone bool

	// --- finalisation pipeline ---
	run      [][]pendEvent // open receive run per process
	lastLT   []int64
	lastSub  []int32
	mq       [][]pendEvent // finalised FIFO per process
	mqHead   []int
	procDone []bool

	// --- output ---
	tickNo int
	tick   Tick
}

type collWait struct {
	arrived int
	procs   []int32
}

// StreamOrder begins streaming the PAS2P logical order over src. It
// performs no I/O beyond what Next demands; errors surface from Next.
func StreamOrder(src EventSource) (*TickReader, error) {
	meta := src.Meta()
	if meta.Events == 0 {
		return nil, fmt.Errorf("logical: empty trace")
	}
	procs := meta.Procs
	r := &TickReader{
		src: meta, source: src, procs: procs, total: meta.Events,
		next:      make([]uint64, procs),
		remaining: make([]uint64, procs),
		head:      make([]trace.Event, procs),
		headOK:    make([]bool, procs),
		hw:        make([]int64, procs),
		sendLT:    map[[2]int64]int64{},
		collWaits: map[[2]int64]*collWait{},
		sendSeq:   make([]int64, procs),
		parked:    make([]bool, procs),
		run:       make([][]pendEvent, procs),
		lastLT:    make([]int64, procs),
		lastSub:   make([]int32, procs),
		mq:        make([][]pendEvent, procs),
		mqHead:    make([]int, procs),
		procDone:  make([]bool, procs),
	}
	var counted uint64
	for p := 0; p < procs; p++ {
		r.hw[p] = -1
		r.lastLT[p] = -1
		r.lastSub[p] = -1
		n := src.Count(p)
		r.remaining[p] = n
		counted += n
		if n > 0 {
			r.queue = append(r.queue, int32(p))
		} else {
			r.procDone[p] = true
		}
	}
	if counted != meta.Events {
		return nil, fmt.Errorf("logical: source counts %d events across processes, header declares %d",
			counted, meta.Events)
	}
	return r, nil
}

// Meta returns the source tracefile's header.
func (r *TickReader) Meta() trace.Meta { return r.src }

// qlen is the number of pending queue entries (matches the in-core
// len(queue) at every point of the algorithm).
func (r *TickReader) qlen() int { return len(r.queue) - r.qHead }

func (r *TickReader) qpop() int32 {
	p := r.queue[r.qHead]
	r.qHead++
	if r.qHead > 1024 && r.qHead*2 >= len(r.queue) {
		n := copy(r.queue, r.queue[r.qHead:])
		r.queue = r.queue[:n]
		r.qHead = 0
	}
	return p
}

func (r *TickReader) qpush(p int32) { r.queue = append(r.queue, p) }

// loadHead ensures process p's current event is in its head slot.
// Returns false when the process has no further events (the in-core
// `next[p] >= len(evs)` guard).
func (r *TickReader) loadHead(p int32) (bool, error) {
	if r.headOK[p] {
		return true, nil
	}
	if r.remaining[p] == 0 {
		return false, nil
	}
	ok, err := r.source.NextEvent(int(p), &r.head[p])
	if err != nil {
		return false, err
	}
	if !ok {
		return false, fmt.Errorf("logical: trace %q: process %d stream ended early after %d events",
			r.src.AppName, p, r.next[p])
	}
	r.remaining[p]--
	r.headOK[p] = true
	return true, nil
}

// step runs one iteration of the queue algorithm (one queue pop).
func (r *TickReader) step() error {
	if r.qlen() == 0 {
		return fmt.Errorf("logical: trace %q stalls with %d/%d events assigned (inconsistent relations)",
			r.src.AppName, r.assigned, r.total)
	}
	p := r.qpop()
	ok, err := r.loadHead(p)
	if err != nil {
		return err
	}
	if !ok {
		return nil
	}
	e := &r.head[p]
	switch e.Kind {
	case trace.Send:
		lt := r.hw[p] + 1
		e.LT = lt
		r.hw[p] = lt
		r.sendLT[[2]int64{int64(p), r.sendSeq[p]}] = lt
		r.sendSeq[p]++
		r.visits = 0
	case trace.Recv:
		key := [2]int64{e.RelA, e.RelB}
		slt, ok := r.sendLT[key]
		if !ok {
			r.qpush(p)
			r.visits++
			if r.visits > r.qlen() {
				return fmt.Errorf("logical: trace %q: full pass over %d pending procs made no progress; receive on proc %d references send (%d,%d) that never resolves",
					r.src.AppName, r.qlen(), p, e.RelA, e.RelB)
			}
			return nil
		}
		delete(r.sendLT, key) // 1:1 pairing: keep only the unmatched frontier
		lt := slt + 1
		e.LT = lt
		if lt > r.hw[p] {
			r.hw[p] = lt
		}
		r.visits = 0
	case trace.Collective:
		key := [2]int64{e.RelA, e.RelB}
		cw := r.collWaits[key]
		if cw == nil {
			cw = &collWait{}
			r.collWaits[key] = cw
		}
		cw.arrived++
		cw.procs = append(cw.procs, p)
		if cw.arrived < int(e.Involved) {
			r.parked[p] = true // head stays loaded until the last arrival
			r.visits = 0
			return nil
		}
		var maxLT int64 = -1
		for _, m := range cw.procs {
			if r.hw[m] > maxLT {
				maxLT = r.hw[m]
			}
		}
		lt := maxLT + 1
		for _, m := range cw.procs {
			me := &r.head[m]
			me.LT = lt
			r.hw[m] = lt
			r.parked[m] = false
			r.consume(m)
			if r.remaining[m] > 0 {
				r.qpush(m)
			}
		}
		delete(r.collWaits, key)
		r.visits = 0
		return nil
	default:
		return fmt.Errorf("logical: trace %q: unknown event kind %d", r.src.AppName, e.Kind)
	}
	r.consume(p)
	if r.remaining[p] > 0 {
		r.qpush(p)
	}
	return nil
}

// consume hands process p's assigned head event to the finalisation
// pipeline and frees the head slot.
func (r *TickReader) consume(p int32) {
	e := &r.head[p]
	pe := pendEvent{lt: e.LT, sig: e.CommSignature(), size: e.Size,
		compute: e.ComputeBefore, exit: e.Exit}
	if e.Kind == trace.Recv {
		r.run[p] = append(r.run[p], pe)
	} else {
		r.flushRun(p)
		r.finalize(p, pe)
	}
	r.headOK[p] = false
	r.next[p]++
	r.assigned++
	if r.remaining[p] == 0 {
		r.flushRun(p)
		r.procDone[p] = true
	}
}

// flushRun closes process p's open receive run: the same stable
// sort-by-LT as permuteRecvRuns, then finalisation in that order.
func (r *TickReader) flushRun(p int32) {
	rn := r.run[p]
	if len(rn) == 0 {
		return
	}
	sort.SliceStable(rn, func(i, j int) bool { return rn[i].lt < rn[j].lt })
	for i := range rn {
		r.finalize(p, rn[i])
	}
	r.run[p] = rn[:0]
}

// finalize applies the running monotone clamp and collision numbering
// (clampMonotone + buildTicks' sub computation) and queues the event
// for the merge.
func (r *TickReader) finalize(p int32, pe pendEvent) {
	if pe.lt < r.lastLT[p] {
		pe.lt = r.lastLT[p]
	}
	if pe.lt == r.lastLT[p] {
		pe.sub = r.lastSub[p] + 1
	} else {
		pe.sub = 0
	}
	r.lastLT[p] = pe.lt
	r.lastSub[p] = pe.sub
	r.mq[p] = append(r.mq[p], pe)
}

// finishAssign runs the post-loop checks once every event is assigned.
func (r *TickReader) finishAssign() error {
	for p, pk := range r.parked {
		if pk {
			return fmt.Errorf("logical: trace %q: proc %d parked at a collective forever", r.src.AppName, p)
		}
	}
	r.assignDone = true
	return nil
}

// tryPop emits the next tick if the merge can prove no process will
// ever contribute a smaller key. It gathers every process whose head
// equals the global minimum, in process order.
func (r *TickReader) tryPop() (*Tick, bool) {
	minLT := int64(math.MaxInt64)
	var minSub int32 = math.MaxInt32
	found := false
	for p := 0; p < r.procs; p++ {
		if r.mqHead[p] < len(r.mq[p]) {
			h := &r.mq[p][r.mqHead[p]]
			if !found || keyLess(h.lt, h.sub, minLT, minSub) {
				minLT, minSub, found = h.lt, h.sub, true
			}
		}
	}
	if !found {
		return nil, false
	}
	// A headless, unfinished process blocks the pop unless its clamp
	// bound proves its next key must exceed the candidate.
	for p := 0; p < r.procs; p++ {
		if r.mqHead[p] < len(r.mq[p]) || r.procDone[p] {
			continue
		}
		if !keyLess(minLT, minSub, r.lastLT[p], r.lastSub[p]+1) {
			return nil, false
		}
	}
	r.tick.Index = r.tickNo
	r.tick.Slots = r.tick.Slots[:0]
	for p := 0; p < r.procs; p++ {
		if r.mqHead[p] >= len(r.mq[p]) {
			continue
		}
		h := &r.mq[p][r.mqHead[p]]
		if h.lt == minLT && h.sub == minSub {
			r.tick.Slots = append(r.tick.Slots, TickEvent{
				Proc: int32(p), Sig: h.sig, Size: h.size,
				Compute: h.compute, Exit: h.exit,
			})
			r.mqHead[p]++
			if r.mqHead[p] > 1024 && r.mqHead[p]*2 >= len(r.mq[p]) {
				n := copy(r.mq[p], r.mq[p][r.mqHead[p]:])
				r.mq[p] = r.mq[p][:n]
				r.mqHead[p] = 0
			}
		}
	}
	r.tickNo++
	return &r.tick, true
}

// drained reports whether every finalised queue is empty.
func (r *TickReader) drained() bool {
	for p := 0; p < r.procs; p++ {
		if r.mqHead[p] < len(r.mq[p]) {
			return false
		}
	}
	return true
}

// Next returns the next tick, or io.EOF after the last one. The
// returned Tick is scratch valid until the following call.
func (r *TickReader) Next() (*Tick, error) {
	if r.err != nil {
		return nil, r.err
	}
	for {
		if tick, ok := r.tryPop(); ok {
			return tick, nil
		}
		if r.assignDone {
			if r.drained() {
				r.err = io.EOF
				return nil, io.EOF
			}
			// Unreachable: once assignment completes every process is
			// done, so nothing can block a non-empty merge.
			r.err = fmt.Errorf("logical: trace %q: internal: merge stalled with undrained queues", r.src.AppName)
			return nil, r.err
		}
		for i := 0; i < assignChunk && r.assigned < r.total; i++ {
			if err := r.step(); err != nil {
				r.err = err
				return nil, err
			}
		}
		if r.assigned >= r.total {
			if err := r.finishAssign(); err != nil {
				r.err = err
				return nil, err
			}
		}
	}
}
