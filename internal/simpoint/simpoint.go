// Package simpoint implements the related-work baseline PAS2P is
// contrasted with in §2: SimPoint-style phase detection (Sherwood et
// al. [21], Perelman et al. [15]). Instead of growing phases until
// communication repeats, the execution is chopped into fixed-length
// intervals, each interval is summarised as a behaviour vector (a
// histogram over communication signatures, the message-passing
// analogue of basic-block vectors), the vectors are clustered with
// k-means, and one representative interval per cluster is selected for
// measurement — weights are cluster populations.
//
// The result is produced as a phase.Analysis, so the identical
// signature construction/execution machinery runs on top of it; the
// ablation benchmarks compare prediction quality and signature length
// against the paper's repeat-detection algorithm.
package simpoint

import (
	"fmt"
	"math"

	"pas2p/internal/logical"
	"pas2p/internal/phase"
	"pas2p/internal/vtime"
)

// Config tunes the detector.
type Config struct {
	// IntervalTicks is the fixed interval length in logical ticks.
	IntervalTicks int
	// K is the number of clusters (simulation points).
	K int
	// Dim is the behaviour-vector dimensionality (signatures are
	// hashed into this many buckets).
	Dim int
	// MaxIter bounds the k-means iterations.
	MaxIter int
	// RelevanceFraction mirrors phase.Config's rule when converting to
	// a phase.Analysis.
	RelevanceFraction float64
}

// DefaultConfig mirrors common SimPoint practice scaled to our traces.
func DefaultConfig() Config {
	return Config{IntervalTicks: 16, K: 6, Dim: 64, MaxIter: 50, RelevanceFraction: 0.01}
}

func (c Config) validate() error {
	if c.IntervalTicks <= 0 || c.K <= 0 || c.Dim <= 0 || c.MaxIter <= 0 {
		return fmt.Errorf("simpoint: non-positive parameter in %+v", c)
	}
	return nil
}

// Extract chops the logical trace into intervals, clusters them, and
// returns the clustering as a phase.Analysis (one phase per cluster,
// one occurrence per interval).
func Extract(l *logical.Logical, cfg Config) (*phase.Analysis, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if l == nil || l.NumTicks() == 0 {
		return nil, fmt.Errorf("simpoint: empty logical trace")
	}
	nTicks := l.NumTicks()
	nIv := (nTicks + cfg.IntervalTicks - 1) / cfg.IntervalTicks
	k := cfg.K
	if k > nIv {
		k = nIv
	}

	// Behaviour vectors: hashed signature histograms, L2-normalised.
	vecs := make([][]float64, nIv)
	for iv := 0; iv < nIv; iv++ {
		v := make([]float64, cfg.Dim)
		lo := iv * cfg.IntervalTicks
		hi := lo + cfg.IntervalTicks
		if hi > nTicks {
			hi = nTicks
		}
		for t := lo; t < hi; t++ {
			for _, s := range l.Ticks[t] {
				e := &l.Trace.Events[s.Event]
				v[int(e.CommSignature()%uint64(cfg.Dim))]++
			}
		}
		normalise(v)
		vecs[iv] = v
	}

	labels := kmeans(vecs, k, cfg.MaxIter)

	// Physical cut points, as in phase extraction: occurrence
	// durations tile the run exactly.
	cuts := make([]vtime.Time, nTicks+1)
	var hw vtime.Time
	for t := 0; t < nTicks; t++ {
		cuts[t] = hw
		for _, s := range l.Ticks[t] {
			if x := l.Trace.Events[s.Event].Exit; x > hw {
				hw = x
			}
		}
	}
	cuts[nTicks] = hw

	an := &phase.Analysis{
		Logical: l,
		Config: phase.Config{
			EventSimilarity:   1,
			ComputeSimilarity: 1,
			VolumeSimilarity:  1,
			RelevanceFraction: cfg.RelevanceFraction,
		},
		AET: l.Trace.AET,
	}
	byCluster := make([][]phase.Occurrence, k)
	for iv := 0; iv < nIv; iv++ {
		lo := iv * cfg.IntervalTicks
		hi := lo + cfg.IntervalTicks
		if hi > nTicks {
			hi = nTicks
		}
		byCluster[labels[iv]] = append(byCluster[labels[iv]], phase.Occurrence{
			StartTick: lo, EndTick: hi, Dur: cuts[hi].Sub(cuts[lo]),
		})
	}
	id := 1
	for c := 0; c < k; c++ {
		if len(byCluster[c]) == 0 {
			continue
		}
		an.Phases = append(an.Phases, &phase.Phase{
			ID:          id,
			TickLen:     cfg.IntervalTicks,
			Occurrences: byCluster[c],
		})
		id++
	}
	if len(an.Phases) == 0 {
		return nil, fmt.Errorf("simpoint: clustering produced no phases")
	}
	return an, nil
}

func normalise(v []float64) {
	var n float64
	for _, x := range v {
		n += x * x
	}
	if n == 0 {
		return
	}
	n = math.Sqrt(n)
	for i := range v {
		v[i] /= n
	}
}

func dist2(a, b []float64) float64 {
	var d float64
	for i := range a {
		x := a[i] - b[i]
		d += x * x
	}
	return d
}

// kmeans clusters deterministically: the first centroid is vector 0
// and subsequent seeds are farthest-first; Lloyd iterations follow.
func kmeans(vecs [][]float64, k, maxIter int) []int {
	n := len(vecs)
	dim := len(vecs[0])
	cents := make([][]float64, k)
	cents[0] = append([]float64(nil), vecs[0]...)
	minD := make([]float64, n)
	for i := range minD {
		minD[i] = dist2(vecs[i], cents[0])
	}
	for c := 1; c < k; c++ {
		far, farD := 0, -1.0
		for i := range vecs {
			if minD[i] > farD {
				far, farD = i, minD[i]
			}
		}
		cents[c] = append([]float64(nil), vecs[far]...)
		for i := range vecs {
			if d := dist2(vecs[i], cents[c]); d < minD[i] {
				minD[i] = d
			}
		}
	}

	labels := make([]int, n)
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, v := range vecs {
			best, bestD := 0, math.MaxFloat64
			for c := range cents {
				if d := dist2(v, cents[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if labels[i] != best {
				labels[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		counts := make([]int, k)
		sums := make([][]float64, k)
		for c := range sums {
			sums[c] = make([]float64, dim)
		}
		for i, v := range vecs {
			counts[labels[i]]++
			s := sums[labels[i]]
			for j := range v {
				s[j] += v[j]
			}
		}
		for c := range cents {
			if counts[c] == 0 {
				continue // keep the stale centroid (deterministic)
			}
			for j := range cents[c] {
				cents[c][j] = sums[c][j] / float64(counts[c])
			}
		}
	}
	return labels
}
