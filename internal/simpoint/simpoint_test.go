package simpoint

import (
	"testing"

	"pas2p/internal/apps"
	"pas2p/internal/logical"
	"pas2p/internal/machine"
	"pas2p/internal/mpi"
	"pas2p/internal/signature"
)

func logicalOf(t testing.TB, name string, procs int, wl string) (*logical.Logical, mpi.App, *machine.Deployment) {
	t.Helper()
	app, err := apps.Make(name, procs, wl)
	if err != nil {
		t.Fatal(err)
	}
	d, err := machine.NewDeployment(machine.ClusterA(), procs, machine.MapBlock)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mpi.Run(app, mpi.RunConfig{Deployment: d, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	l, err := logical.Order(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	return l, app, d
}

func TestExtractValid(t *testing.T) {
	l, _, _ := logicalOf(t, "cg", 8, "classA")
	an, err := Extract(l, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The clustering must tile the run like PAS2P phases do.
	if err := an.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(an.Phases) < 2 {
		t.Errorf("expected several clusters, got %d", len(an.Phases))
	}
	if len(an.Relevant()) == 0 {
		t.Error("no relevant clusters")
	}
}

func TestExtractValidation(t *testing.T) {
	l, _, _ := logicalOf(t, "cg", 8, "classA")
	bad := DefaultConfig()
	bad.K = 0
	if _, err := Extract(l, bad); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := Extract(nil, DefaultConfig()); err == nil {
		t.Error("nil logical should fail")
	}
}

func TestExtractDeterministic(t *testing.T) {
	l, _, _ := logicalOf(t, "moldy", 8, "tip4p-short")
	a1, err := Extract(l, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Extract(l, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a1.Phases) != len(a2.Phases) {
		t.Fatal("nondeterministic clustering")
	}
	for i := range a1.Phases {
		if a1.Phases[i].Weight() != a2.Phases[i].Weight() {
			t.Fatal("cluster populations differ across runs")
		}
	}
}

func TestFewerClustersThanIntervals(t *testing.T) {
	l, _, _ := logicalOf(t, "cg", 8, "classA")
	cfg := DefaultConfig()
	cfg.K = 10000 // more clusters than intervals: must clamp
	an, err := Extract(l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := an.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestSimPointSignaturePredicts runs the full signature machinery on
// SimPoint clusters: the baseline predicts reasonably on a regular
// iterative code, validating the shared downstream pipeline.
func TestSimPointSignaturePredicts(t *testing.T) {
	l, app, base := logicalOf(t, "cg", 8, "classB")
	an, err := Extract(l, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tb, err := an.BuildTable(1)
	if err != nil {
		t.Fatal(err)
	}
	opts := signature.DefaultOptions()
	opts.StateBytesPerRank = 4 << 20
	br, err := signature.Build(app, tb, base, opts)
	if err != nil {
		t.Fatal(err)
	}
	target, err := machine.NewDeployment(machine.ClusterB(), 8, machine.MapBlock)
	if err != nil {
		t.Fatal(err)
	}
	res, err := br.Signature.Execute(target)
	if err != nil {
		t.Fatal(err)
	}
	full, err := mpi.Run(app, mpi.RunConfig{Deployment: target})
	if err != nil {
		t.Fatal(err)
	}
	aet := full.Elapsed.Seconds()
	pete := 100 * abs(res.PET.Seconds()-aet) / aet
	if pete > 25 {
		t.Errorf("SimPoint-based prediction PETE %.2f%% (PET %.1fs, AET %.1fs)",
			pete, res.PET.Seconds(), aet)
	}
}

func TestKMeansHandlesIdenticalVectors(t *testing.T) {
	vecs := make([][]float64, 8)
	for i := range vecs {
		vecs[i] = []float64{1, 0, 0}
	}
	labels := kmeans(vecs, 3, 10)
	for _, lb := range labels {
		if lb != labels[0] {
			t.Error("identical vectors should share a cluster")
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
