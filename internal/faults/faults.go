// Package faults is a seeded, fully deterministic fault injector for
// the PAS2P pipeline. It follows the same seam pattern as package obs:
// a nil *Injector keeps every layer on its exact fault-free fast path,
// and a live one is threaded through the run configurations
// (sim.Config.Faults, mpi.RunConfig.Faults, signature.Options.Faults,
// predict.Experiment.Faults).
//
// Every fault decision is a pure hash of (seed, fault class, event
// identity) — a splitmix64 chain over the message identity (src, dst,
// per-sender uid), the (phase, rank) of a checkpoint restart, or the
// (rank, sequence) of a compute block. Decisions therefore do not
// depend on call order, goroutine scheduling, or how many other fault
// classes are enabled, so a given seed always reproduces the identical
// fault schedule, and the simulator's bit-identical-timing guarantee
// extends to faulted runs.
//
// Fault classes:
//
//   - message loss: a lost point-to-point message is retransmitted
//     after a virtual-clock retransmission timeout (RTO); up to
//     MaxRetransmits consecutive losses are injected, so delivery is
//     always eventually recovered and the logical communication
//     structure is preserved (only arrival times shift).
//   - message duplication: the duplicate is discarded at the receiver
//     (matching is non-overtaking and keyed by message identity), so
//     the fault is counted and recovered with no structural effect.
//   - message delay: bounded extra network latency on arrival.
//   - rank crash at checkpoint restart: a restart attempt fails with
//     CrashRate; failed attempts are retried with exponential backoff
//     on the virtual clock, bounded by MaxRestartAttempts. An episode
//     that exhausts its retries is unrecovered: the phase is abandoned
//     and the signature executor degrades gracefully (Eq. 1 over the
//     surviving phases).
//   - clock perturbation: multiplicative jitter on compute durations
//     (live runs) and per-process offset+drift skew on recorded trace
//     timestamps (SkewTrace), exercising the machine-independence of
//     the logical ordering.
package faults

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pas2p/internal/obs"
	"pas2p/internal/trace"
	"pas2p/internal/vtime"
)

// Config selects the fault classes and their intensities. The zero
// value injects nothing; New fills the operational knobs (RTO, retry
// bounds, backoff) with defaults when they are left zero.
type Config struct {
	// Seed drives every fault decision; the same seed reproduces the
	// identical fault schedule.
	Seed int64

	// LossRate is the probability a point-to-point message transmission
	// is lost. Each loss costs one RTO before the retransmission; at
	// most MaxRetransmits consecutive losses are injected per message,
	// so delivery always recovers.
	LossRate float64
	// RTO is the retransmission timeout added per lost transmission.
	RTO vtime.Duration
	// MaxRetransmits bounds consecutive losses of one message.
	MaxRetransmits int
	// DupRate is the probability a message is duplicated in flight; the
	// receiver discards the copy.
	DupRate float64
	// DelayRate is the probability a message suffers extra latency,
	// uniform in (0, MaxDelay].
	DelayRate float64
	// MaxDelay bounds the injected extra latency.
	MaxDelay vtime.Duration

	// CrashRate is the probability one rank's checkpoint-restart
	// attempt crashes (rolled independently per attempt).
	CrashRate float64
	// MaxRestartAttempts bounds the retries after a crashed restart;
	// exceeding it abandons the phase (unrecovered).
	MaxRestartAttempts int
	// RestartBackoff is the base of the exponential backoff paid on the
	// virtual clock before the k-th retry (backoff·2^k).
	RestartBackoff vtime.Duration

	// ComputeJitter perturbs each compute block's duration by a factor
	// uniform in [1-j, 1+j].
	ComputeJitter float64
	// ClockSkew offsets each traced process's clock by a per-process
	// constant uniform in [0, ClockSkew) (SkewTrace).
	ClockSkew vtime.Duration
	// ClockDrift scales each traced process's clock by a per-process
	// factor uniform in [1-d, 1+d] (SkewTrace).
	ClockDrift float64
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	rates := []struct {
		name string
		v    float64
	}{
		{"loss", c.LossRate}, {"dup", c.DupRate}, {"delay", c.DelayRate},
		{"crash", c.CrashRate},
	}
	for _, r := range rates {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("faults: %s rate %v outside [0,1]", r.name, r.v)
		}
	}
	if c.ComputeJitter < 0 || c.ComputeJitter >= 1 {
		return fmt.Errorf("faults: compute jitter %v outside [0,1)", c.ComputeJitter)
	}
	if c.ClockDrift < 0 || c.ClockDrift >= 1 {
		return fmt.Errorf("faults: clock drift %v outside [0,1)", c.ClockDrift)
	}
	if c.RTO < 0 || c.MaxDelay < 0 || c.RestartBackoff < 0 || c.ClockSkew < 0 {
		return fmt.Errorf("faults: negative duration in config")
	}
	if c.MaxRetransmits < 0 || c.MaxRestartAttempts < 0 {
		return fmt.Errorf("faults: negative retry bound")
	}
	return nil
}

// withDefaults fills operational knobs left at zero.
func (c Config) withDefaults() Config {
	if c.RTO == 0 {
		c.RTO = 200 * vtime.Microsecond
	}
	if c.MaxRetransmits == 0 {
		c.MaxRetransmits = 3
	}
	if c.MaxDelay == 0 {
		c.MaxDelay = 100 * vtime.Microsecond
	}
	if c.MaxRestartAttempts == 0 && c.CrashRate < 1 {
		c.MaxRestartAttempts = 3
	}
	if c.RestartBackoff == 0 {
		c.RestartBackoff = 50 * vtime.Millisecond
	}
	return c
}

// Injector makes deterministic fault decisions and counts what it
// injected. All methods are safe on a nil receiver (no faults) and
// safe for concurrent use (decisions are pure; counters are atomic).
type Injector struct {
	cfg  Config
	seed uint64

	// obs receives a flight-recorder event per injected fault. Held
	// atomically so SetObserver is safe against in-flight decisions.
	// Events never influence fault decisions (those are pure hashes),
	// so an attached observer cannot perturb a fault schedule.
	obs atomic.Pointer[obs.Observer]

	msgLost       atomic.Int64
	msgRetransmit atomic.Int64
	msgDup        atomic.Int64
	msgDelayed    atomic.Int64
	crashEpisodes atomic.Int64
	crashFailures atomic.Int64
	phasesLost    atomic.Int64
	clockPerturbs atomic.Int64
	procsSkewed   atomic.Int64
	injected      atomic.Int64
	recovered     atomic.Int64
	unrecovered   atomic.Int64

	pubMu     sync.Mutex
	published Report
}

// New builds an injector; operational knobs left zero get defaults.
func New(cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	return &Injector{cfg: cfg, seed: splitmix64(uint64(cfg.Seed) ^ 0xa5a5a5a55a5a5a5a)}, nil
}

// Config returns the (defaulted) configuration; zero on nil.
func (i *Injector) Config() Config {
	if i == nil {
		return Config{}
	}
	return i.cfg
}

// Seed returns the configured seed; zero on nil.
func (i *Injector) Seed() int64 {
	if i == nil {
		return 0
	}
	return i.cfg.Seed
}

// SetObserver attaches an observer whose flight recorder receives one
// structured event per injected fault. Nil receiver and nil observer
// are fine; decisions are unaffected either way.
func (i *Injector) SetObserver(o *obs.Observer) {
	if i == nil {
		return
	}
	i.obs.Store(o)
}

// event forwards to the attached observer's flight recorder; free when
// none is attached.
func (i *Injector) event(kind, msg string, rank int, v int64) {
	if o := i.obs.Load(); o != nil {
		o.Event(kind, msg, rank, v)
	}
}

// Decision streams: each fault class hashes under its own constant so
// enabling one class never changes another's schedule.
const (
	streamLoss uint64 = 0x1d8e4e27c47d124f * (iota + 1)
	streamDup
	streamDelay
	streamDelayAmt
	streamCrash
	streamJitter
	streamSkew
	streamDrift
)

// splitmix64 is the finalizer of the SplitMix64 generator: a cheap,
// well-distributed 64-bit mix.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// roll returns a uniform float64 in [0,1) determined purely by the
// seed, the stream, and the three keys.
func (i *Injector) roll(stream, a, b, c uint64) float64 {
	z := splitmix64(i.seed ^ stream)
	z = splitmix64(z ^ a)
	z = splitmix64(z ^ b)
	z = splitmix64(z ^ c)
	return float64(z>>11) / (1 << 53)
}

// MsgFault describes the faults injected into one message.
type MsgFault struct {
	// Retransmits is the number of lost transmissions before the
	// successful one; each added one RTO to the arrival.
	Retransmits int
	// Duplicated marks a duplicate discarded by the receiver.
	Duplicated bool
	// Delay is the total extra arrival latency (losses·RTO + extra).
	Delay vtime.Duration
}

// Message decides the faults for one point-to-point message, keyed by
// its global identity (src, dst, per-sender uid). It returns false
// when the message is unaffected. Counters are updated here, so call
// it exactly once per message send.
func (i *Injector) Message(src, dst int, uid int64, size int) (MsgFault, bool) {
	if i == nil {
		return MsgFault{}, false
	}
	c := &i.cfg
	if c.LossRate <= 0 && c.DupRate <= 0 && c.DelayRate <= 0 {
		return MsgFault{}, false
	}
	ka, kb, kc := uint64(src), uint64(dst), uint64(uid)
	var f MsgFault
	if c.LossRate > 0 {
		for f.Retransmits < c.MaxRetransmits &&
			i.roll(streamLoss, ka, kb, kc+uint64(f.Retransmits)<<32) < c.LossRate {
			f.Retransmits++
		}
		if f.Retransmits > 0 {
			f.Delay += vtime.Duration(f.Retransmits) * c.RTO
			i.msgLost.Add(1)
			i.msgRetransmit.Add(int64(f.Retransmits))
			i.noteRecovered()
			i.event("fault.msg_lost",
				fmt.Sprintf("message %d→%d lost, recovered after %d retransmit(s)", src, dst, f.Retransmits),
				src, int64(f.Retransmits))
		}
	}
	if c.DupRate > 0 && i.roll(streamDup, ka, kb, kc) < c.DupRate {
		f.Duplicated = true
		i.msgDup.Add(1)
		i.noteRecovered()
		i.event("fault.msg_dup",
			fmt.Sprintf("message %d→%d duplicated, copy discarded at receiver", src, dst),
			src, 1)
	}
	if c.DelayRate > 0 && i.roll(streamDelay, ka, kb, kc) < c.DelayRate {
		amt := i.roll(streamDelayAmt, ka, kb, kc)
		d := vtime.Duration(math.Ceil(amt * float64(c.MaxDelay)))
		f.Delay += d
		i.msgDelayed.Add(1)
		i.noteRecovered()
		i.event("fault.msg_delay",
			fmt.Sprintf("message %d→%d delayed %v in flight", src, dst, d),
			src, int64(d))
	}
	if f.Retransmits == 0 && !f.Duplicated && f.Delay == 0 {
		return MsgFault{}, false
	}
	return f, true
}

func (i *Injector) noteRecovered() {
	i.injected.Add(1)
	i.recovered.Add(1)
}

// CrashFault is the deterministic crash plan for one rank's restart of
// one phase's checkpoint.
type CrashFault struct {
	// Failures is the number of crashed restart attempts.
	Failures int
	// Recovered is false when the retry bound was exhausted and the
	// phase must be abandoned on this rank.
	Recovered bool
}

// Restart decides the crash plan for (phaseID, rank). Every caller
// computes the same plan from the same keys, so all ranks agree on
// which phases are lost without any coordination. Counters are updated
// here, so evaluate each (phase, rank) pair once per execution.
func (i *Injector) Restart(phaseID, rank int) CrashFault {
	if i == nil || i.cfg.CrashRate <= 0 {
		return CrashFault{Recovered: true}
	}
	c := &i.cfg
	f := CrashFault{}
	for f.Failures <= c.MaxRestartAttempts &&
		i.roll(streamCrash, uint64(phaseID), uint64(rank), uint64(f.Failures)) < c.CrashRate {
		f.Failures++
	}
	f.Recovered = f.Failures <= c.MaxRestartAttempts
	if f.Failures > 0 {
		i.crashEpisodes.Add(1)
		i.crashFailures.Add(int64(f.Failures))
		i.injected.Add(1)
		if f.Recovered {
			i.recovered.Add(1)
			i.event("fault.crash",
				fmt.Sprintf("phase %d restart crashed %d time(s), recovered", phaseID, f.Failures),
				rank, int64(f.Failures))
		} else {
			i.unrecovered.Add(1)
			i.event("fault.crash_unrecovered",
				fmt.Sprintf("phase %d restart exhausted %d attempt(s), unrecovered", phaseID, f.Failures),
				rank, int64(f.Failures))
		}
	}
	return f
}

// NotePhaseLost records a phase abandoned after an unrecovered crash.
func (i *Injector) NotePhaseLost(phaseID int) {
	if i == nil {
		return
	}
	i.phasesLost.Add(1)
	i.event("fault.phase_lost",
		fmt.Sprintf("phase %d abandoned after unrecovered crash; signature degrades to surviving phases", phaseID),
		-1, int64(phaseID))
}

// Jitter returns the multiplicative clock perturbation for the seq-th
// compute block of a rank; 1 when jitter is disabled.
func (i *Injector) Jitter(rank int, seq int64) float64 {
	if i == nil || i.cfg.ComputeJitter <= 0 {
		return 1
	}
	i.clockPerturbs.Add(1)
	r := i.roll(streamJitter, uint64(rank), uint64(seq), 0)
	return 1 + i.cfg.ComputeJitter*(2*r-1)
}

// SkewTrace returns a copy of the trace with each process's physical
// clock perturbed by a deterministic per-process offset (ClockSkew)
// and drift factor (ClockDrift), with per-process compute payloads
// recomputed from the skewed timestamps. Per-process monotonicity is
// preserved; cross-process orderings may invert — exactly the clock
// incoherence the PAS2P logical ordering is designed to absorb. The
// input trace is not modified. With both knobs zero (or a nil
// injector) the input is returned unchanged.
func (i *Injector) SkewTrace(tr *trace.Trace) (*trace.Trace, error) {
	if i == nil || (i.cfg.ClockSkew <= 0 && i.cfg.ClockDrift <= 0) {
		return tr, nil
	}
	per := tr.PerProcess()
	streams := make([][]trace.Event, tr.Procs)
	var maxExit vtime.Time
	for p, evs := range per {
		offset := vtime.Duration(math.Floor(
			i.roll(streamSkew, uint64(p), 0, 0) * float64(i.cfg.ClockSkew)))
		drift := 1.0
		if i.cfg.ClockDrift > 0 {
			drift = 1 + i.cfg.ClockDrift*(2*i.roll(streamDrift, uint64(p), 0, 0)-1)
		}
		out := make([]trace.Event, len(evs))
		var prevExit vtime.Time
		for k, ev := range evs {
			ev.Enter = vtime.Time(offset) + scaleTime(ev.Enter, drift)
			ev.Exit = vtime.Time(offset) + scaleTime(ev.Exit, drift)
			if ev.Exit < ev.Enter {
				ev.Exit = ev.Enter
			}
			ev.ComputeBefore = ev.Enter.Sub(prevExit)
			if ev.ComputeBefore < 0 {
				ev.ComputeBefore = 0
			}
			prevExit = ev.Exit
			if vt := ev.Exit; vt > maxExit {
				maxExit = vt
			}
			out[k] = ev
		}
		streams[p] = out
		i.procsSkewed.Add(1)
	}
	aet := tr.AET
	if vtime.Duration(maxExit) > aet {
		aet = vtime.Duration(maxExit)
	}
	i.event("fault.skew_trace",
		fmt.Sprintf("perturbed %d process clocks (skew %v, drift %v)", tr.Procs, i.cfg.ClockSkew, i.cfg.ClockDrift),
		-1, int64(tr.Procs))
	return trace.NewTrace(tr.AppName, tr.Procs, streams, aet)
}

func scaleTime(t vtime.Time, f float64) vtime.Time {
	if f == 1 {
		return t
	}
	return vtime.Time(math.Round(float64(t) * f))
}

// Report is a snapshot of the injector's fault accounting. Injected,
// Recovered and Unrecovered count recoverable fault events (message
// faults and crash episodes); clock perturbations and skewed processes
// are tracked separately because they are not recoverable events.
type Report struct {
	Seed                             int64
	Injected, Recovered, Unrecovered int64
	MsgLost, MsgRetransmits          int64
	MsgDuplicated, MsgDelayed        int64
	CrashEpisodes, CrashFailures     int64
	PhasesLost                       int64
	ClockPerturbations, ProcsSkewed  int64
}

// Report snapshots the counters; zero on nil.
func (i *Injector) Report() Report {
	if i == nil {
		return Report{}
	}
	return Report{
		Seed:               i.cfg.Seed,
		Injected:           i.injected.Load(),
		Recovered:          i.recovered.Load(),
		Unrecovered:        i.unrecovered.Load(),
		MsgLost:            i.msgLost.Load(),
		MsgRetransmits:     i.msgRetransmit.Load(),
		MsgDuplicated:      i.msgDup.Load(),
		MsgDelayed:         i.msgDelayed.Load(),
		CrashEpisodes:      i.crashEpisodes.Load(),
		CrashFailures:      i.crashFailures.Load(),
		PhasesLost:         i.phasesLost.Load(),
		ClockPerturbations: i.clockPerturbs.Load(),
		ProcsSkewed:        i.procsSkewed.Load(),
	}
}

// String renders the report for CLI output.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "faults (seed %d): %d injected, %d recovered, %d unrecovered",
		r.Seed, r.Injected, r.Recovered, r.Unrecovered)
	fmt.Fprintf(&b, "\n  messages : %d lost (%d retransmits), %d duplicated, %d delayed",
		r.MsgLost, r.MsgRetransmits, r.MsgDuplicated, r.MsgDelayed)
	fmt.Fprintf(&b, "\n  crashes  : %d episodes (%d failed restarts), %d phases lost",
		r.CrashEpisodes, r.CrashFailures, r.PhasesLost)
	fmt.Fprintf(&b, "\n  clocks   : %d compute perturbations, %d processes skewed",
		r.ClockPerturbations, r.ProcsSkewed)
	return b.String()
}

// Publish adds the counter deltas accumulated since the previous
// Publish to the registry's faults.* counters, so repeated publishes
// (one per pipeline stage or run) never double-count. A nil injector
// or registry is a no-op.
func (i *Injector) Publish(reg *obs.Registry) {
	if i == nil || reg == nil {
		return
	}
	i.pubMu.Lock()
	defer i.pubMu.Unlock()
	cur, prev := i.Report(), i.published
	add := func(name string, now, before int64) {
		if d := now - before; d > 0 {
			reg.Counter(name).Add(d)
		}
	}
	add("faults.injected", cur.Injected, prev.Injected)
	add("faults.recovered", cur.Recovered, prev.Recovered)
	add("faults.unrecovered", cur.Unrecovered, prev.Unrecovered)
	add("faults.msg_lost", cur.MsgLost, prev.MsgLost)
	add("faults.msg_retransmits", cur.MsgRetransmits, prev.MsgRetransmits)
	add("faults.msg_duplicated", cur.MsgDuplicated, prev.MsgDuplicated)
	add("faults.msg_delayed", cur.MsgDelayed, prev.MsgDelayed)
	add("faults.crash_episodes", cur.CrashEpisodes, prev.CrashEpisodes)
	add("faults.crash_failures", cur.CrashFailures, prev.CrashFailures)
	add("faults.phases_lost", cur.PhasesLost, prev.PhasesLost)
	add("faults.clock_perturbations", cur.ClockPerturbations, prev.ClockPerturbations)
	add("faults.procs_skewed", cur.ProcsSkewed, prev.ProcsSkewed)
	i.published = cur
}

// ParseSpec builds an injector from a CLI fault specification: a
// comma-separated list of key=value terms, e.g.
//
//	loss=0.05,dup=0.01,delay=0.1,crash=0.2,jitter=0.01,skew=5ms
//
// Keys: loss, dup, delay, crash, jitter, drift (rates/fractions);
// rto, maxdelay, backoff, skew (durations, time.ParseDuration syntax);
// retrans, attempts (integer retry bounds). delay also accepts the
// rate:maxduration shorthand delay=0.1:2ms.
func ParseSpec(seed int64, spec string) (*Injector, error) {
	cfg, err := ParseConfig(spec)
	if err != nil {
		return nil, err
	}
	cfg.Seed = seed
	return New(cfg)
}

// ParseConfig parses the ParseSpec grammar into a Config (Seed unset).
func ParseConfig(spec string) (Config, error) {
	var cfg Config
	if strings.TrimSpace(spec) == "" {
		return cfg, nil
	}
	for _, term := range strings.Split(spec, ",") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		k, v, ok := strings.Cut(term, "=")
		if !ok {
			return cfg, fmt.Errorf("faults: term %q is not key=value", term)
		}
		var err error
		switch k {
		case "loss":
			cfg.LossRate, err = parseRate(v)
		case "dup":
			cfg.DupRate, err = parseRate(v)
		case "delay":
			if rate, dur, has := strings.Cut(v, ":"); has {
				if cfg.DelayRate, err = parseRate(rate); err == nil {
					cfg.MaxDelay, err = parseDur(dur)
				}
			} else {
				cfg.DelayRate, err = parseRate(v)
			}
		case "crash":
			cfg.CrashRate, err = parseRate(v)
		case "jitter":
			cfg.ComputeJitter, err = parseRate(v)
		case "drift":
			cfg.ClockDrift, err = parseRate(v)
		case "rto":
			cfg.RTO, err = parseDur(v)
		case "maxdelay":
			cfg.MaxDelay, err = parseDur(v)
		case "backoff":
			cfg.RestartBackoff, err = parseDur(v)
		case "skew":
			cfg.ClockSkew, err = parseDur(v)
		case "retrans":
			cfg.MaxRetransmits, err = strconv.Atoi(v)
		case "attempts":
			cfg.MaxRestartAttempts, err = strconv.Atoi(v)
		default:
			return cfg, fmt.Errorf("faults: unknown key %q (loss, dup, delay, crash, jitter, drift, rto, maxdelay, backoff, skew, retrans, attempts)", k)
		}
		if err != nil {
			return cfg, fmt.Errorf("faults: term %q: %v", term, err)
		}
	}
	return cfg, nil
}

func parseRate(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	return v, nil
}

func parseDur(s string) (vtime.Duration, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, err
	}
	if d < 0 {
		return 0, fmt.Errorf("negative duration %v", d)
	}
	return vtime.Duration(d.Nanoseconds()), nil
}
