package faults

import (
	"strings"
	"testing"

	"pas2p/internal/obs"
	"pas2p/internal/trace"
	"pas2p/internal/vtime"
)

func mustNew(t *testing.T, cfg Config) *Injector {
	t.Helper()
	inj, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	return inj
}

func TestNilInjectorIsInert(t *testing.T) {
	var inj *Injector
	if f, ok := inj.Message(0, 1, 0, 64); ok || f != (MsgFault{}) {
		t.Fatalf("nil Message = %+v, %v", f, ok)
	}
	if cf := inj.Restart(0, 0); !cf.Recovered || cf.Failures != 0 {
		t.Fatalf("nil Restart = %+v", cf)
	}
	if j := inj.Jitter(0, 0); j != 1 {
		t.Fatalf("nil Jitter = %v", j)
	}
	tr := skewFixture(t)
	if out, err := inj.SkewTrace(tr); err != nil || out != tr {
		t.Fatalf("nil SkewTrace did not pass trace through: %v %v", out, err)
	}
	inj.NotePhaseLost(3)
	inj.Publish(obs.NewRegistry())
	if r := inj.Report(); r != (Report{}) {
		t.Fatalf("nil Report = %+v", r)
	}
}

func TestValidateRejectsBadRates(t *testing.T) {
	bad := []Config{
		{LossRate: -0.1},
		{LossRate: 1.5},
		{DupRate: 2},
		{CrashRate: -1},
		{ComputeJitter: 1},
		{ClockDrift: 1.2},
		{RTO: -1},
		{MaxRetransmits: -2},
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) accepted invalid config", cfg)
		}
	}
}

func TestMessageDeterministicAcrossInjectors(t *testing.T) {
	cfg := Config{Seed: 7, LossRate: 0.3, DupRate: 0.2, DelayRate: 0.4}
	a := mustNew(t, cfg)
	b := mustNew(t, cfg)
	for src := 0; src < 4; src++ {
		for uid := int64(0); uid < 64; uid++ {
			fa, oka := a.Message(src, (src+1)%4, uid, 128)
			fb, okb := b.Message(src, (src+1)%4, uid, 128)
			if fa != fb || oka != okb {
				t.Fatalf("msg (%d,%d): %+v/%v vs %+v/%v", src, uid, fa, oka, fb, okb)
			}
		}
	}
	if a.Report() != b.Report() {
		t.Fatalf("reports diverged:\n%+v\n%+v", a.Report(), b.Report())
	}
}

func TestMessageSeedChangesSchedule(t *testing.T) {
	a := mustNew(t, Config{Seed: 1, LossRate: 0.5})
	b := mustNew(t, Config{Seed: 2, LossRate: 0.5})
	differs := false
	for uid := int64(0); uid < 64 && !differs; uid++ {
		fa, _ := a.Message(0, 1, uid, 64)
		fb, _ := b.Message(0, 1, uid, 64)
		differs = fa != fb
	}
	if !differs {
		t.Fatal("seeds 1 and 2 produced identical 64-message schedules")
	}
}

func TestMessageLossBoundedAndPriced(t *testing.T) {
	inj := mustNew(t, Config{LossRate: 1, MaxRetransmits: 2, RTO: vtime.Millisecond})
	f, ok := inj.Message(0, 1, 0, 64)
	if !ok {
		t.Fatal("loss=1 injected nothing")
	}
	if f.Retransmits != 2 {
		t.Fatalf("retransmits = %d, want cap 2", f.Retransmits)
	}
	if f.Delay != 2*vtime.Millisecond {
		t.Fatalf("delay = %v, want 2ms (2 retransmits × RTO)", f.Delay)
	}
	r := inj.Report()
	if r.MsgLost != 1 || r.MsgRetransmits != 2 || r.Injected != 1 || r.Recovered != 1 {
		t.Fatalf("report = %+v", r)
	}
}

func TestMessageDelayBounded(t *testing.T) {
	inj := mustNew(t, Config{DelayRate: 1, MaxDelay: 10 * vtime.Microsecond})
	for uid := int64(0); uid < 100; uid++ {
		f, ok := inj.Message(2, 3, uid, 64)
		if !ok {
			t.Fatalf("delay=1 skipped message %d", uid)
		}
		if f.Delay <= 0 || f.Delay > 10*vtime.Microsecond {
			t.Fatalf("delay %v outside (0, 10us]", f.Delay)
		}
	}
}

func TestRestartBoundsAndAccounting(t *testing.T) {
	// crash=1 always exhausts the retry budget: attempts+1 failures,
	// unrecovered.
	inj := mustNew(t, Config{CrashRate: 1, MaxRestartAttempts: 2})
	cf := inj.Restart(5, 0)
	if cf.Recovered || cf.Failures != 3 {
		t.Fatalf("crash=1: %+v, want 3 failures unrecovered", cf)
	}
	r := inj.Report()
	if r.CrashEpisodes != 1 || r.CrashFailures != 3 || r.Unrecovered != 1 || r.Recovered != 0 {
		t.Fatalf("report = %+v", r)
	}

	// crash=0 leaves restarts untouched.
	clean := mustNew(t, Config{Seed: 9})
	if cf := clean.Restart(5, 0); !cf.Recovered || cf.Failures != 0 {
		t.Fatalf("crash=0: %+v", cf)
	}
}

func TestRestartDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, CrashRate: 0.4, MaxRestartAttempts: 3}
	a, b := mustNew(t, cfg), mustNew(t, cfg)
	for ph := 0; ph < 8; ph++ {
		for rank := 0; rank < 8; rank++ {
			if fa, fb := a.Restart(ph, rank), b.Restart(ph, rank); fa != fb {
				t.Fatalf("restart (%d,%d): %+v vs %+v", ph, rank, fa, fb)
			}
		}
	}
}

func TestReportInvariant(t *testing.T) {
	inj := mustNew(t, Config{Seed: 3, LossRate: 0.3, DupRate: 0.3, DelayRate: 0.3,
		CrashRate: 0.3, MaxRestartAttempts: 1})
	for uid := int64(0); uid < 200; uid++ {
		inj.Message(int(uid)%3, (int(uid)+1)%3, uid, 64)
	}
	for ph := 0; ph < 10; ph++ {
		for rank := 0; rank < 4; rank++ {
			inj.Restart(ph, rank)
		}
	}
	r := inj.Report()
	if r.Injected == 0 {
		t.Fatal("expected some injected faults at 30% rates")
	}
	if r.Injected != r.Recovered+r.Unrecovered {
		t.Fatalf("injected %d != recovered %d + unrecovered %d",
			r.Injected, r.Recovered, r.Unrecovered)
	}
}

func TestJitterBoundedAndDeterministic(t *testing.T) {
	inj := mustNew(t, Config{Seed: 11, ComputeJitter: 0.05})
	again := mustNew(t, Config{Seed: 11, ComputeJitter: 0.05})
	varied := false
	for seq := int64(0); seq < 100; seq++ {
		j := inj.Jitter(1, seq)
		if j < 0.95 || j > 1.05 {
			t.Fatalf("jitter %v outside [0.95, 1.05]", j)
		}
		if j != again.Jitter(1, seq) {
			t.Fatalf("jitter not deterministic at seq %d", seq)
		}
		if j != 1 {
			varied = true
		}
	}
	if !varied {
		t.Fatal("jitter never moved off 1")
	}
	if inj.Report().ClockPerturbations != 100 {
		t.Fatalf("perturbation count = %d", inj.Report().ClockPerturbations)
	}
}

// skewFixture builds a small two-process trace with strictly ordered
// events and no receive relations (collectives only), so NewTrace's
// validation passes before and after skewing.
func skewFixture(t *testing.T) *trace.Trace {
	t.Helper()
	streams := make([][]trace.Event, 2)
	for p := 0; p < 2; p++ {
		var evs []trace.Event
		at := vtime.Time(1000 * (p + 1))
		for n := int64(0); n < 5; n++ {
			evs = append(evs, trace.Event{
				Process: int32(p), Number: n,
				Kind: trace.Collective, Involved: 2, CollOp: 0, Peer: -1,
				Enter: at, Exit: at.Add(500),
				LT:   trace.NoLT,
				RelA: 0, RelB: int64(n),
			})
			at = at.Add(2000)
		}
		streams[p] = evs
	}
	tr, err := trace.NewTrace("skew-fixture", 2, streams, vtime.Duration(30000))
	if err != nil {
		t.Fatalf("fixture: %v", err)
	}
	return tr
}

func TestSkewTracePreservesStructure(t *testing.T) {
	tr := skewFixture(t)
	inj := mustNew(t, Config{Seed: 5, ClockSkew: 2 * vtime.Millisecond, ClockDrift: 0.1})
	out, err := inj.SkewTrace(tr)
	if err != nil {
		t.Fatalf("SkewTrace: %v", err)
	}
	if out == tr {
		t.Fatal("SkewTrace returned the input trace despite skew enabled")
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("skewed trace invalid: %v", err)
	}
	if len(out.Events) != len(tr.Events) {
		t.Fatalf("event count changed: %d -> %d", len(tr.Events), len(out.Events))
	}
	// The input must be untouched.
	if err := tr.Validate(); err != nil {
		t.Fatalf("input trace mutated: %v", err)
	}
	changed := false
	for p, evs := range out.PerProcess() {
		orig := tr.PerProcess()[p]
		for k, ev := range evs {
			if ev.Kind != orig[k].Kind || ev.Number != orig[k].Number {
				t.Fatalf("proc %d event %d changed identity", p, k)
			}
			if ev.Enter != orig[k].Enter {
				changed = true
			}
		}
	}
	if !changed {
		t.Fatal("skew left every timestamp untouched")
	}
	if inj.Report().ProcsSkewed != 2 {
		t.Fatalf("procs skewed = %d", inj.Report().ProcsSkewed)
	}

	// Determinism: same seed, same skewed timestamps.
	out2, err := mustNew(t, Config{Seed: 5, ClockSkew: 2 * vtime.Millisecond, ClockDrift: 0.1}).SkewTrace(tr)
	if err != nil {
		t.Fatalf("SkewTrace #2: %v", err)
	}
	for k := range out.Events {
		if out.Events[k].Enter != out2.Events[k].Enter || out.Events[k].Exit != out2.Events[k].Exit {
			t.Fatalf("skew not deterministic at event %d", k)
		}
	}
}

func TestSkewTraceZeroConfigPassesThrough(t *testing.T) {
	tr := skewFixture(t)
	inj := mustNew(t, Config{Seed: 5, LossRate: 0.5})
	if out, err := inj.SkewTrace(tr); err != nil || out != tr {
		t.Fatalf("zero-skew SkewTrace = %v, %v; want input back", out, err)
	}
}

func TestPublishIsDeltaBased(t *testing.T) {
	inj := mustNew(t, Config{LossRate: 1})
	inj.Message(0, 1, 0, 64)
	reg := obs.NewRegistry()
	inj.Publish(reg)
	inj.Publish(reg) // no new faults: must not double-count
	if got := reg.Counter("faults.msg_lost").Value(); got != 1 {
		t.Fatalf("faults.msg_lost = %d after double publish, want 1", got)
	}
	inj.Message(0, 1, 1, 64)
	inj.Publish(reg)
	if got := reg.Counter("faults.msg_lost").Value(); got != 2 {
		t.Fatalf("faults.msg_lost = %d after third publish, want 2", got)
	}
}

func TestParseSpec(t *testing.T) {
	inj, err := ParseSpec(99, "loss=0.05, dup=0.01, delay=0.1:2ms, crash=0.2, attempts=5, jitter=0.02, skew=5ms, drift=0.001, rto=300us, retrans=4, backoff=10ms")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	cfg := inj.Config()
	want := Config{
		Seed: 99, LossRate: 0.05, DupRate: 0.01,
		DelayRate: 0.1, MaxDelay: 2 * vtime.Millisecond,
		CrashRate: 0.2, MaxRestartAttempts: 5, RestartBackoff: 10 * vtime.Millisecond,
		ComputeJitter: 0.02, ClockSkew: 5 * vtime.Millisecond, ClockDrift: 0.001,
		RTO: 300 * vtime.Microsecond, MaxRetransmits: 4,
	}
	if cfg != want {
		t.Fatalf("parsed config\n %+v\nwant\n %+v", cfg, want)
	}
	if inj.Seed() != 99 {
		t.Fatalf("seed = %d", inj.Seed())
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []string{
		"frobnicate=1", // unknown key
		"loss",         // not key=value
		"loss=abc",     // bad number
		"skew=xyz",     // bad duration
		"rto=-5ms",     // negative duration
		"loss=1.5",     // out of range (caught by New)
	}
	for _, spec := range cases {
		if _, err := ParseSpec(0, spec); err == nil {
			t.Errorf("ParseSpec(%q) succeeded, want error", spec)
		}
	}
}

func TestParseSpecEmpty(t *testing.T) {
	inj, err := ParseSpec(1, "")
	if err != nil {
		t.Fatalf("empty spec: %v", err)
	}
	// An empty spec builds a configured-but-inert injector.
	if f, ok := inj.Message(0, 1, 0, 64); ok || f != (MsgFault{}) {
		t.Fatalf("empty-spec Message = %+v, %v", f, ok)
	}
}

func TestReportString(t *testing.T) {
	r := Report{Seed: 7, Injected: 3, Recovered: 2, Unrecovered: 1,
		MsgLost: 1, CrashEpisodes: 2, PhasesLost: 1}
	s := r.String()
	for _, want := range []string{"seed 7", "3 injected", "2 recovered", "1 unrecovered", "1 phases lost"} {
		if !strings.Contains(s, want) {
			t.Errorf("Report.String() = %q, missing %q", s, want)
		}
	}
}
