package faults

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"pas2p/internal/fsx"
)

// writeThrough writes data to path through fs and returns what landed
// on disk.
func writeThrough(t *testing.T, fs fsx.FS, path string, data []byte) []byte {
	t.Helper()
	f, err := fs.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestFaultFSZeroConfigPassesThrough(t *testing.T) {
	ffs, err := NewFaultFS(fsx.OS{}, FSConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("abcdefgh"), 100)
	got := writeThrough(t, ffs, filepath.Join(t.TempDir(), "clean.bin"), data)
	if !bytes.Equal(got, data) {
		t.Error("zero config corrupted a write")
	}
	if n := len(ffs.CorruptedPaths()); n != 0 {
		t.Errorf("%d corrupted paths, want 0", n)
	}
}

func TestFaultFSDeterministicSchedule(t *testing.T) {
	run := func(dir string) ([]string, FSReport, map[string][]byte) {
		ffs, err := NewFaultFS(fsx.OS{}, FSConfig{Seed: 42, TornRate: 0.3, TruncRate: 0.3, FlipRate: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		contents := map[string][]byte{}
		for _, name := range []string{"a.bin", "b.bin", "c.bin", "d.bin", "e.bin", "f.bin"} {
			data := bytes.Repeat([]byte(name), 200)
			contents[name] = writeThrough(t, ffs, filepath.Join(dir, name), data)
		}
		var bases []string
		for _, p := range ffs.CorruptedPaths() {
			bases = append(bases, filepath.Base(p))
		}
		return bases, ffs.FSReport(), contents
	}
	b1, r1, c1 := run(t.TempDir())
	b2, r2, c2 := run(t.TempDir())
	if !reflect.DeepEqual(b1, b2) {
		t.Errorf("corrupted sets differ: %v vs %v", b1, b2)
	}
	if r1 != r2 {
		t.Errorf("reports differ: %+v vs %+v", r1, r2)
	}
	if !reflect.DeepEqual(c1, c2) {
		t.Error("corrupted contents differ between identically seeded runs")
	}
	if r1.TornWrites+r1.Truncations+r1.Flips == 0 {
		t.Error("30% rates over 6 files injected nothing; schedule is broken")
	}
	// Every path the FS claims corrupted must actually differ on disk.
	for _, b := range b1 {
		orig := bytes.Repeat([]byte(b), 200)
		if bytes.Equal(c1[b], orig) {
			t.Errorf("%s marked corrupt but bytes unchanged", b)
		}
	}
}

func TestFaultFSRenameCarriesMarker(t *testing.T) {
	dir := t.TempDir()
	// FlipRate 1: every write is corrupted.
	ffs, err := NewFaultFS(fsx.OS{}, FSConfig{Seed: 7, FlipRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(dir, ".tmp.x.bin")
	final := filepath.Join(dir, "x.bin")
	writeThrough(t, ffs, tmp, []byte("0123456789abcdef"))
	if err := ffs.Rename(tmp, final); err != nil {
		t.Fatal(err)
	}
	got := ffs.CorruptedPaths()
	if len(got) != 1 || got[0] != final {
		t.Errorf("corrupted paths after rename = %v, want [%s]", got, final)
	}
	// Removing the file clears the marker.
	if err := ffs.Remove(final); err != nil {
		t.Fatal(err)
	}
	if n := len(ffs.CorruptedPaths()); n != 0 {
		t.Errorf("%d corrupted paths after remove, want 0", n)
	}
}

func TestFaultFSCleanRewriteHeals(t *testing.T) {
	dir := t.TempDir()
	ffs, err := NewFaultFS(fsx.OS{}, FSConfig{Seed: 9, FlipRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "heal.bin")
	writeThrough(t, ffs, path, []byte("corrupt me once"))
	if len(ffs.CorruptedPaths()) != 1 {
		t.Fatal("first write should be corrupted")
	}
	// A clean FS writing over the same path heals the marker via the
	// fault FS's Rename (atomic-write pattern: clean temp content
	// renamed over the corrupted destination).
	clean := filepath.Join(dir, "clean.src")
	if err := os.WriteFile(clean, []byte("fresh"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ffs.Rename(clean, path); err != nil {
		t.Fatal(err)
	}
	if n := len(ffs.CorruptedPaths()); n != 0 {
		t.Errorf("%d corrupted paths after clean rename, want 0", n)
	}
}

func TestFSConfigValidate(t *testing.T) {
	bad := []FSConfig{{TornRate: -0.1}, {TruncRate: 1.5}, {FlipRate: 2}}
	for _, cfg := range bad {
		if _, err := NewFaultFS(fsx.OS{}, cfg); err == nil {
			t.Errorf("config %+v should be rejected", cfg)
		}
	}
}
