package faults_test

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"

	"pas2p/internal/faults"
	"pas2p/internal/fsx"
	"pas2p/internal/trace"
	"pas2p/internal/vtime"
)

// TestFaultFSDeterministicAcrossParallelism proves the storage-fault
// schedule is independent of the writer's internal concurrency: the
// injector corrupts as a pure function of (seed, file identity, write
// sequence, final content), and the parallel block encoder produces
// byte-identical content at every worker count, so the corrupted bytes
// on disk must be identical whether the trace was encoded serially or
// on 8 workers.
func TestFaultFSDeterministicAcrossParallelism(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	streams := make([][]trace.Event, 4)
	for p := range streams {
		rec := trace.NewRecorder(p)
		var tp vtime.Time
		for i := 0; i < 2000; i++ {
			tp += vtime.Time(rng.Intn(700) + 1)
			rec.Record(trace.Event{
				Kind: trace.Collective, Involved: 4, CollOp: 2, Peer: -1,
				Size: int64(rng.Intn(1 << 14)), Enter: tp, Exit: tp + vtime.Time(rng.Intn(60)),
			})
		}
		streams[p] = rec.Events()
	}
	tr, err := trace.NewTrace("det", 4, streams, 12345)
	if err != nil {
		t.Fatal(err)
	}

	write := func(workers int) []byte {
		dir := t.TempDir()
		ffs, err := faults.NewFaultFS(fsx.OS{}, faults.FSConfig{
			Seed: 7, TornRate: 0.5, TruncRate: 0.5, FlipRate: 0.5,
		})
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, "det.trace.pas2p")
		f, err := ffs.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := trace.EncodeWith(f, tr, trace.CodecOptions{Workers: workers}); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		if len(ffs.CorruptedPaths()) == 0 {
			t.Fatalf("workers=%d: injector corrupted nothing; schedule proves nothing", workers)
		}
		data, err := ffs.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	serial := write(1)
	for _, workers := range []int{2, 8} {
		if got := write(workers); !bytes.Equal(got, serial) {
			t.Fatalf("workers=%d: corrupted on-disk bytes diverge from serial writer", workers)
		}
	}
}
