package faults

// Storage faults: a deterministic fault-injecting implementation of
// the fsx.FS write seam. It extends the injector's philosophy below
// the codec layer — every corruption decision is a pure splitmix64
// hash of (seed, fault stream, file identity, per-file write
// sequence), so a seeded schedule of torn writes, tail truncations
// and bit-flips is exactly reproducible and independent of call
// order across files.
//
// The wrapped file buffers its content and applies the scheduled
// corruption at Close, which models what a crashed or bit-rotting
// disk leaves behind *after* the writer believed the write succeeded.
// The FaultFS remembers which final paths carry corrupted bytes
// (markers follow renames), so property tests can assert detection is
// complete: every path in CorruptedPaths must be caught by the
// checksum layer, with no false negatives.

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"io"
	iofs "io/fs"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"pas2p/internal/fsx"
)

// FSConfig selects the storage-fault classes and their intensities.
// The zero value injects nothing.
type FSConfig struct {
	// Seed drives every corruption decision.
	Seed int64
	// TornRate is the probability a written file is torn: only a
	// seeded prefix of its bytes lands on disk (a crash mid-write
	// under a non-atomic protocol, or a torn sector under an atomic
	// one).
	TornRate float64
	// TruncRate is the probability a written file loses a seeded
	// 1..16-byte tail (classic lost-final-sector truncation).
	TruncRate float64
	// FlipRate is the probability one seeded bit of the written file
	// is flipped (bit-rot).
	FlipRate float64
}

// Validate reports whether the configuration is usable.
func (c FSConfig) Validate() error {
	rates := []struct {
		name string
		v    float64
	}{{"torn", c.TornRate}, {"trunc", c.TruncRate}, {"flip", c.FlipRate}}
	for _, r := range rates {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("faults: %s rate %v outside [0,1]", r.name, r.v)
		}
	}
	return nil
}

// Decision streams for storage faults, disjoint from the injector's.
const (
	streamTorn uint64 = 0x0e6c63d0a53a1139 * (iota + 1)
	streamTornAt
	streamTrunc
	streamTruncAt
	streamFlip
	streamFlipAt
)

// FaultFS wraps an fsx.FS and corrupts a deterministic subset of the
// files written through it. Reads, directory operations and renames
// pass through untouched (renames carry the corruption marker with
// the file). Safe for concurrent use.
type FaultFS struct {
	inner fsx.FS
	cfg   FSConfig
	seed  uint64

	mu      sync.Mutex
	seq     map[string]uint64 // per-basename write counter
	corrupt map[string]string // path → corruption kinds applied
	torn    int64
	trunc   int64
	flipped int64
}

// NewFaultFS builds the fault-injecting filesystem around inner.
func NewFaultFS(inner fsx.FS, cfg FSConfig) (*FaultFS, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &FaultFS{
		inner:   inner,
		cfg:     cfg,
		seed:    splitmix64(uint64(cfg.Seed) ^ 0xc001d00dfee1dead),
		seq:     make(map[string]uint64),
		corrupt: make(map[string]string),
	}, nil
}

func (f *FaultFS) MkdirAll(dir string, perm iofs.FileMode) error { return f.inner.MkdirAll(dir, perm) }

func (f *FaultFS) ReadFile(name string) ([]byte, error) { return f.inner.ReadFile(name) }

// Open passes through: the injector models write-path faults, and the
// damage it scheduled is already baked into the bytes on disk.
func (f *FaultFS) Open(name string) (io.ReadCloser, error) { return f.inner.Open(name) }

func (f *FaultFS) ReadDir(dir string) ([]iofs.DirEntry, error) { return f.inner.ReadDir(dir) }

func (f *FaultFS) Stat(name string) (iofs.FileInfo, error) { return f.inner.Stat(name) }

func (f *FaultFS) SyncDir(dir string) error { return f.inner.SyncDir(dir) }

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if err := f.inner.Rename(oldpath, newpath); err != nil {
		return err
	}
	f.mu.Lock()
	if kinds, ok := f.corrupt[oldpath]; ok {
		delete(f.corrupt, oldpath)
		f.corrupt[newpath] = kinds
	} else {
		// Renaming clean content over a corrupted path heals it.
		delete(f.corrupt, newpath)
	}
	f.mu.Unlock()
	return nil
}

func (f *FaultFS) Remove(name string) error {
	if err := f.inner.Remove(name); err != nil {
		return err
	}
	f.mu.Lock()
	delete(f.corrupt, name)
	f.mu.Unlock()
	return nil
}

func (f *FaultFS) Create(name string) (fsx.File, error) {
	inner, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return f.wrap(name, inner), nil
}

func (f *FaultFS) CreateExclusive(name string) (fsx.File, error) {
	inner, err := f.inner.CreateExclusive(name)
	if err != nil {
		return nil, err
	}
	return f.wrap(name, inner), nil
}

func (f *FaultFS) wrap(name string, inner fsx.File) fsx.File {
	// Key decisions by the file's base name, not the full path: test
	// temp directories vary run to run, and the repo's temp files are
	// named after their final destination, so the schedule stays
	// stable and meaningful.
	base := filepath.Base(name)
	h := fnv.New64a()
	h.Write([]byte(base))
	f.mu.Lock()
	seq := f.seq[base]
	f.seq[base] = seq + 1
	f.mu.Unlock()
	return &faultFile{fs: f, name: name, key: h.Sum64(), seq: seq, inner: inner}
}

// CorruptedPaths returns the sorted paths whose on-disk bytes were
// corrupted and not since removed or overwritten: the ground truth a
// detection property test checks fsck against.
func (f *FaultFS) CorruptedPaths() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.corrupt))
	for p := range f.corrupt {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// FSReport is a snapshot of the storage-fault accounting.
type FSReport struct {
	Seed                           int64
	TornWrites, Truncations, Flips int64
}

// FSReport snapshots the corruption counters.
func (f *FaultFS) FSReport() FSReport {
	f.mu.Lock()
	defer f.mu.Unlock()
	return FSReport{Seed: f.cfg.Seed, TornWrites: f.torn, Truncations: f.trunc, Flips: f.flipped}
}

// faultFile buffers writes and applies the scheduled corruption when
// the writer closes the file.
type faultFile struct {
	fs    *FaultFS
	name  string
	key   uint64
	seq   uint64
	inner fsx.File
	buf   bytes.Buffer
}

func (ff *faultFile) Write(p []byte) (int, error) { return ff.buf.Write(p) }

// Sync is deferred to Close: the corrupted content is what must reach
// stable storage, and Close both writes and syncs it.
func (ff *faultFile) Sync() error { return nil }

func (ff *faultFile) Close() error {
	data, kinds := ff.fs.corruptBytes(ff.key, ff.seq, ff.buf.Bytes())
	if _, err := ff.inner.Write(data); err != nil {
		ff.inner.Close()
		return err
	}
	if err := ff.inner.Sync(); err != nil {
		ff.inner.Close()
		return err
	}
	if err := ff.inner.Close(); err != nil {
		return err
	}
	ff.fs.mu.Lock()
	if kinds != "" {
		ff.fs.corrupt[ff.name] = kinds
	} else {
		// A clean rewrite of a previously corrupted path heals it.
		delete(ff.fs.corrupt, ff.name)
	}
	ff.fs.mu.Unlock()
	return nil
}

// roll returns a uniform float64 in [0,1) for one decision stream of
// one (file, sequence) identity.
func (f *FaultFS) roll(stream, key, seq uint64) float64 {
	z := splitmix64(f.seed ^ stream)
	z = splitmix64(z ^ key)
	z = splitmix64(z ^ seq)
	return float64(z>>11) / (1 << 53)
}

// corruptBytes applies the scheduled corruption for one write. The
// input is not modified; the returned slice is the (possibly shorter,
// possibly copied) content to persist.
func (f *FaultFS) corruptBytes(key, seq uint64, data []byte) ([]byte, string) {
	c := f.cfg
	var kinds []string
	if c.TornRate > 0 && len(data) >= 2 && f.roll(streamTorn, key, seq) < c.TornRate {
		keep := 1 + int(f.roll(streamTornAt, key, seq)*float64(len(data)-1))
		data = data[:keep]
		kinds = append(kinds, "torn")
	}
	if c.TruncRate > 0 && len(data) >= 1 && f.roll(streamTrunc, key, seq) < c.TruncRate {
		window := len(data)
		if window > 16 {
			window = 16
		}
		drop := 1 + int(f.roll(streamTruncAt, key, seq)*float64(window-1))
		if drop > len(data) {
			drop = len(data)
		}
		data = data[:len(data)-drop]
		kinds = append(kinds, "truncated")
	}
	if c.FlipRate > 0 && len(data) >= 1 && f.roll(streamFlip, key, seq) < c.FlipRate {
		bit := int(f.roll(streamFlipAt, key, seq) * float64(len(data)*8))
		cp := append([]byte(nil), data...)
		cp[bit/8] ^= 1 << (bit % 8)
		data = cp
		kinds = append(kinds, "bitflip")
	}
	f.mu.Lock()
	for _, k := range kinds {
		switch k {
		case "torn":
			f.torn++
		case "truncated":
			f.trunc++
		case "bitflip":
			f.flipped++
		}
	}
	f.mu.Unlock()
	return data, strings.Join(kinds, "+")
}

// ParseFSConfig parses a CLI storage-fault specification into an
// FSConfig (Seed unset): a comma-separated list of key=value terms,
// e.g. torn=0.05,trunc=0.02,flip=0.01. Keys: torn, trunc, flip
// (probabilities in [0,1]). An empty spec injects nothing.
func ParseFSConfig(spec string) (FSConfig, error) {
	var cfg FSConfig
	if strings.TrimSpace(spec) == "" {
		return cfg, nil
	}
	for _, term := range strings.Split(spec, ",") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		k, v, ok := strings.Cut(term, "=")
		if !ok {
			return cfg, fmt.Errorf("faults: term %q is not key=value", term)
		}
		var err error
		switch k {
		case "torn":
			cfg.TornRate, err = parseRate(v)
		case "trunc":
			cfg.TruncRate, err = parseRate(v)
		case "flip":
			cfg.FlipRate, err = parseRate(v)
		default:
			return cfg, fmt.Errorf("faults: unknown key %q (torn, trunc, flip)", k)
		}
		if err != nil {
			return cfg, fmt.Errorf("faults: term %q: %v", term, err)
		}
	}
	return cfg, cfg.Validate()
}
