package report

import (
	"bytes"
	"strings"
	"testing"

	"pas2p/internal/vtime"
)

// fastOpts shrinks every experiment to 1/16 of the paper's process
// counts so the whole table set runs in test time.
func fastOpts() Options {
	return Options{ProcScale: 16, EventOverhead: 8 * vtime.Microsecond}
}

func TestOptionsScale(t *testing.T) {
	o := Options{ProcScale: 8}
	if got := o.scale(256); got != 32 {
		t.Errorf("scale(256) = %d, want 32", got)
	}
	if got := o.scale(16); got != 4 {
		t.Errorf("scale(16) = %d, want >= 4", got)
	}
	o = Options{ProcScale: 0}
	if got := o.scale(64); got != 64 {
		t.Errorf("unscaled should pass through, got %d", got)
	}
}

func TestTable2PrintsAllClusters(t *testing.T) {
	var buf bytes.Buffer
	Table2(&buf)
	out := buf.String()
	for _, want := range []string{"Cluster A", "Cluster B", "Cluster C", "Cluster D", "InfiniBand", "GigE", "ia64"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 missing %q:\n%s", want, out)
		}
	}
}

func TestTable3Shape(t *testing.T) {
	var buf bytes.Buffer
	res, err := Table3(&buf, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Total < res.Relevant || res.Relevant < 1 {
		t.Errorf("phases %d/%d invalid", res.Relevant, res.Total)
	}
	if len(res.Rows) != res.Relevant {
		t.Errorf("rows %d != relevant %d", len(res.Rows), res.Relevant)
	}
	// The headline shape: SET is far below AET.
	if res.SETSeconds >= res.AETSeconds/2 {
		t.Errorf("SET %.2f vs AET %.2f: signature not short", res.SETSeconds, res.AETSeconds)
	}
	// Weights spread across the relevant phases (Table 3's structure).
	if res.Rows[0].Weight <= 1 {
		t.Error("dominant moldy phase should repeat many times")
	}
	out := buf.String()
	for _, want := range []string{"TABLE 3", "Relevant phases", "Weight"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 3 output missing %q", want)
		}
	}
}

func TestTable5Shape(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Table5(&buf, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 14 {
		t.Fatalf("Table 5 has %d rows, want 14 (7 apps x 2 core counts)", len(rows))
	}
	var sumPETE float64
	for _, r := range rows {
		if r.Outcome.SETvsAETPercent >= 100 {
			t.Errorf("%s: SET not below AET", r.App)
		}
		sumPETE += r.Outcome.PETEPercent
	}
	// The paper's headline: average accuracy > 97% (ours is usually
	// better; be generous at 1/16 scale).
	if avg := sumPETE / float64(len(rows)); avg > 10 {
		t.Errorf("average PETE %.2f%% too high", avg)
	}
}

func TestTable7Shape(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Table7(&buf, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("Table 7 has %d rows, want 6", len(rows))
	}
	for _, r := range rows {
		if r.Outcome.PETEPercent > 12 {
			t.Errorf("%s: PETE %.2f%% out of the paper's regime", r.App, r.Outcome.PETEPercent)
		}
	}
}

func TestPerfTablesShape(t *testing.T) {
	rows, err := RunPerf(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("perf set has %d rows, want 7", len(rows))
	}
	byApp := map[string]*PerfRow{}
	for i := range rows {
		byApp[rows[i].App] = &rows[i]
	}
	// Table 8 shape: LU produces the largest tracefile, FT the
	// smallest, mirroring the paper's 5.2 GB vs 512 KB split.
	if byApp["lu"].Outcome.TFSize <= byApp["ft"].Outcome.TFSize {
		t.Error("LU tracefile should dwarf FT's")
	}
	for _, r := range rows {
		if r.Outcome.Total < 1 || r.Outcome.SCT <= 0 {
			t.Errorf("%s: degenerate analysis %+v", r.App, r.Outcome.Total)
		}
		// Table 9 shape: every overhead factor is >= 1 and the
		// instrumented run is at least as long as the plain one.
		if r.Outcome.OverheadFactor < 1 {
			t.Errorf("%s: overhead %.2f < 1", r.App, r.Outcome.OverheadFactor)
		}
		if r.Outcome.AETPAS2P < r.Outcome.AETBase {
			t.Errorf("%s: instrumented run faster than plain", r.App)
		}
	}
	var buf bytes.Buffer
	Table8(&buf, rows)
	Table9(&buf, rows)
	for _, want := range []string{"TABLE 8", "TABLE 9", "TFSize", "Overhead"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestClusterByNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown cluster should panic")
		}
	}()
	clusterByName("Z")
}

func TestFmtBytes(t *testing.T) {
	cases := map[int64]string{
		512:     "512B",
		2 << 10: "2.0KB",
		3 << 20: "3.0MB",
		5 << 30: "5.0GB",
	}
	for in, want := range cases {
		if got := fmtBytes(in); got != want {
			t.Errorf("fmtBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestShrinkToCores(t *testing.T) {
	c := clusterByName("B") // 8 cores/node
	cc, err := shrinkToCores(c, 32)
	if err != nil {
		t.Fatal(err)
	}
	if cc.Nodes != 4 {
		t.Errorf("nodes = %d, want 4", cc.Nodes)
	}
	cc, err = shrinkToCores(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cc.Nodes != 1 {
		t.Errorf("tiny request should round up to 1 node, got %d", cc.Nodes)
	}
}

func TestAppendixDShape(t *testing.T) {
	var buf bytes.Buffer
	rows, err := AppendixD(&buf, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("Appendix D has %d rows, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Outcome.PETEPercent > 12 {
			t.Errorf("%s-%d: PETE %.2f%%", r.App, r.Procs, r.Outcome.PETEPercent)
		}
	}
	if !strings.Contains(buf.String(), "APPENDIX D") {
		t.Error("missing header")
	}
}

func TestAppendixEShape(t *testing.T) {
	var buf bytes.Buffer
	rows, err := AppendixE(&buf, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("Appendix E has %d rows, want 3", len(rows))
	}
	for _, r := range rows {
		if r.Outcome.PETEPercent > 12 {
			t.Errorf("%s: PETE %.2f%% on cluster D", r.App, r.Outcome.PETEPercent)
		}
		if r.Outcome.SETvsAETPercent >= 100 {
			t.Errorf("%s: SET not below AET on cluster D", r.App)
		}
	}
}
