package report

import (
	"testing"

	"pas2p/internal/machine"
)

// benchPipeline runs the full prediction pipeline (base run, traced
// run, ordering, extraction, signature build + execute, target run)
// for one workload on cluster C, base == target — the same shape as
// the Table 8/9 rows that dominate pas2p-bench wall time.
func benchPipeline(b *testing.B, app string, procs int, workload string) {
	cl := clusterByName("C")
	d, err := machine.NewDeployment(cl, procs, machine.MapBlock)
	if err != nil {
		b.Fatal(err)
	}
	opts := DefaultOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runExperiment(app, procs, workload, d, d, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineLU is the wavefront-pipelined workload whose
// simulator cost motivated the scheduler hot-path work: a scaled-down
// cousin of the lu/classD row in BENCH_PR6.json.
func BenchmarkPipelineLU(b *testing.B) { benchPipeline(b, "lu", 64, "classB") }

// BenchmarkPipelineCG is the collective-heavy sibling, benchmarked to
// catch regressions on the non-wavefront path.
func BenchmarkPipelineCG(b *testing.B) { benchPipeline(b, "cg", 64, "classB") }
