package report

import (
	"fmt"
	"io"

	"pas2p/internal/machine"
)

// AppendixD mirrors the paper's Appendix D: the analysis and relevant
// phases of LU and GROMACS at different process counts on cluster C,
// with the signature's same-cluster prediction.
func AppendixD(w io.Writer, opts Options) ([]PerfRow, error) {
	cl := clusterByName("C")
	specs := []predSpec{
		{app: "lu", procs: 64, workload: "classC"},
		{app: "lu", procs: 128, workload: "classC"},
		{app: "gromacs", procs: 64, workload: "d.villin"},
		{app: "gromacs", procs: 128, workload: "d.villin"},
	}
	fmt.Fprintln(w, "APPENDIX D: LU and GROMACS analyses (cluster C)")
	fmt.Fprintf(w, "%-10s %-7s %-13s %-16s %-10s %-10s %-10s %s\n",
		"Appl.", "Procs", "Total Phases", "Relevant Phases", "SET(s)", "PET(s)", "AET(s)", "PETE%")
	var rows []PerfRow
	for _, sp := range specs {
		procs := opts.scale(sp.procs)
		d, err := machine.NewDeployment(cl, procs, machine.MapBlock)
		if err != nil {
			return nil, err
		}
		out, err := runExperiment(sp.app, procs, sp.workload, d, d, opts)
		if err != nil {
			return nil, fmt.Errorf("%s-%d: %w", sp.app, procs, err)
		}
		fmt.Fprintf(w, "%-10s %-7d %-13d %-16d %-10s %-10s %-10s %.2f\n",
			sp.app, procs, out.Total, out.Relevant,
			fmtSec(out.SET), fmtSec(out.PET), fmtSec(out.AETTarget), out.PETEPercent)
		rows = append(rows, PerfRow{App: sp.app, Procs: procs, Outcome: out})
	}
	fmt.Fprintln(w)
	return rows, nil
}

// AppendixE mirrors Appendix E: predictions on the different-ISA
// cluster D, where the x86 signature cannot be ported and PAS2P
// rebuilds it from the phase table on the target itself.
func AppendixE(w io.Writer, opts Options) ([]PerfRow, error) {
	clD := clusterByName("D")
	specs := []predSpec{
		{app: "cg", procs: 64, workload: "classC"},
		{app: "sp", procs: 64, workload: "classC"},
		{app: "sweep3d", procs: 64, workload: "sweep.250 13"},
	}
	fmt.Fprintln(w, "APPENDIX E: Predictions for Cluster D (different ISA; signature rebuilt on target)")
	fmt.Fprintf(w, "%-10s %-7s %-10s %-11s %-10s %-8s %s\n",
		"Appl.", "Procs", "SET(s)", "SETvsAET%", "PET(s)", "PETE%", "AET(s)")
	var rows []PerfRow
	for _, sp := range specs {
		procs := opts.scale(sp.procs)
		// The signature is rebuilt on cluster D itself (base = target
		// = D), exactly the paper's remedy: the phases and weights
		// come from the analysis; only the binaries are rebuilt.
		d, err := machine.NewDeployment(clD, procs, machine.MapBlock)
		if err != nil {
			return nil, err
		}
		out, err := runExperiment(sp.app, procs, sp.workload, d, d, opts)
		if err != nil {
			return nil, fmt.Errorf("%s-%d: %w", sp.app, procs, err)
		}
		fmt.Fprintf(w, "%-10s %-7d %-10s %-11.2f %-10s %-8.2f %s\n",
			sp.app, procs, fmtSec(out.SET), out.SETvsAETPercent,
			fmtSec(out.PET), out.PETEPercent, fmtSec(out.AETTarget))
		rows = append(rows, PerfRow{App: sp.app, Procs: procs, Outcome: out})
	}
	fmt.Fprintln(w)
	return rows, nil
}
