package report

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"pas2p/internal/apps"
	"pas2p/internal/machine"
	"pas2p/internal/predict"
)

// T3Result carries the Table 3 data: the Moldy analysis on cluster C.
type T3Result struct {
	Procs          int
	TFSizeBytes    int64
	TFATSeconds    float64
	Total          int
	Relevant       int
	Rows           []T3PhaseRow
	AETSeconds     float64
	SETSeconds     float64
	PredictSeconds float64
}

// T3PhaseRow is one relevant phase's line.
type T3PhaseRow struct {
	PhaseID      int
	PhaseET      float64 // seconds, measured by the signature
	Weight       int
	Contribution float64 // PhaseET * Weight, seconds
}

// Table3 reproduces the paper's Table 3: analyse MD Moldy (tip4p) on
// cluster C, list the relevant phases with their weights and measured
// execution times, and compare the signature's prediction with the
// application execution time.
func Table3(w io.Writer, opts Options) (*T3Result, error) {
	procs := opts.scale(256)
	cl := clusterByName("C")
	d, err := deploy(cl, procs)
	if err != nil {
		return nil, err
	}
	app, err := apps.Make("moldy", procs, "tip4p")
	if err != nil {
		return nil, err
	}
	out, err := predict.Run(predict.Experiment{
		App: app, Base: d, Target: d, EventOverhead: opts.EventOverhead,
		PhaseConfig: opts.phaseConfig(),
		Observer:    opts.Observer,
	})
	if err != nil {
		return nil, err
	}
	res := &T3Result{
		Procs:          procs,
		TFSizeBytes:    out.TFSize,
		TFATSeconds:    out.TFAT.Seconds(),
		Total:          out.Total,
		Relevant:       out.Relevant,
		AETSeconds:     out.AETTarget.Seconds(),
		SETSeconds:     out.SET.Seconds(),
		PredictSeconds: out.PET.Seconds(),
	}
	for _, m := range out.Phases {
		res.Rows = append(res.Rows, T3PhaseRow{
			PhaseID:      m.PhaseID,
			PhaseET:      m.ET.Seconds(),
			Weight:       m.Weight,
			Contribution: m.Contribution().Seconds(),
		})
	}
	sort.Slice(res.Rows, func(i, j int) bool { return res.Rows[i].PhaseID < res.Rows[j].PhaseID })

	fmt.Fprintln(w, "TABLE 3: Extraction and Execution of Phases on Cluster C")
	fmt.Fprintf(w, "MD Moldy analysis — processes: %d, input data: tip4p\n", procs)
	fmt.Fprintf(w, "Size of log trace: %.1f MB\n", float64(res.TFSizeBytes)/1e6)
	fmt.Fprintf(w, "Time to analyze the log trace: %.2f sec\n", res.TFATSeconds)
	fmt.Fprintf(w, "Total of phases: %d, Relevant phases: %d\n", res.Total, res.Relevant)
	fmt.Fprintf(w, "%-10s %-14s %-10s %s\n", "Phase ID", "PhaseET(s)", "Weight", "(PhaseET)x(Weight)(s)")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%-10d %-14.6f %-10d %.2f\n", r.PhaseID, r.PhaseET, r.Weight, r.Contribution)
	}
	fmt.Fprintf(w, "Application Execution Time (s): %.2f\n", res.AETSeconds)
	fmt.Fprintf(w, "Signature Execution Time  (s): %.2f\n\n", res.SETSeconds)
	return res, nil
}

// PerfRow is one row of Tables 8 and 9 (tool performance on cluster C).
type PerfRow struct {
	App     string
	Procs   int
	Outcome *predict.Outcome
	// WallNS and AllocBytes are the host-side cost of this row's full
	// pipeline run (the ns/op and B/op of pas2p-bench -json).
	WallNS     int64
	AllocBytes int64
}

// perfSpecs mirrors the §6 experiment set: NAS class D, sweep.150, and
// SMG2000 with 550 iterations at 128 processes, all on cluster C.
func perfSpecs() []predSpec {
	return []predSpec{
		{app: "cg", procs: 128, workload: "classD"},
		{app: "bt", procs: 128, workload: "classD"},
		{app: "sp", procs: 128, workload: "classD"},
		{app: "lu", procs: 128, workload: "classD"},
		{app: "ft", procs: 128, workload: "classD"},
		{app: "sweep3d", procs: 128, workload: "sweep.150 13"},
		{app: "smg2000", procs: 128, workload: "-n 200 solver 3 iterations 550"},
	}
}

// RunPerf executes the §6 experiment set once; Table8 and Table9 are
// two views of its results.
func RunPerf(opts Options) ([]PerfRow, error) {
	cl := clusterByName("C")
	var rows []PerfRow
	for _, sp := range perfSpecs() {
		procs := opts.scale(sp.procs)
		d, err := machine.NewDeployment(cl, procs, machine.MapBlock)
		if err != nil {
			return nil, err
		}
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		t0 := time.Now()
		out, err := runExperiment(sp.app, procs, sp.workload, d, d, opts)
		wall := time.Since(t0)
		runtime.ReadMemStats(&ms1)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sp.app, err)
		}
		rows = append(rows, PerfRow{App: sp.app, Procs: procs, Outcome: out,
			WallNS: wall.Nanoseconds(), AllocBytes: int64(ms1.TotalAlloc - ms0.TotalAlloc)})
	}
	return rows, nil
}

// Table8 prints tool performance: tracefile size, analysis time, phase
// counts and signature construction time.
func Table8(w io.Writer, rows []PerfRow) {
	fmt.Fprintln(w, "TABLE 8: Performance of the PAS2P Tool (phases + signature construction)")
	fmt.Fprintf(w, "%-10s %-10s %-10s %-13s %-16s %s\n",
		"Appl.", "TFSize", "TFAT(s)", "Total Phases", "Relevant Phases", "SCT(s)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-10s %-10.3f %-13d %-16d %s\n",
			r.App, fmtBytes(r.Outcome.TFSize), r.Outcome.TFAT.Seconds(),
			r.Outcome.Total, r.Outcome.Relevant, fmtSec(r.Outcome.SCT))
	}
	fmt.Fprintln(w)
}

// Table9 prints the end-to-end overhead view: AET vs instrumented AET
// vs SET, and the paper's overhead factor.
func Table9(w io.Writer, rows []PerfRow) {
	fmt.Fprintln(w, "TABLE 9: Time Required to Obtain the Signature and Predict")
	fmt.Fprintf(w, "%-10s %-12s %-14s %-10s %s\n",
		"Appl.", "AET(s)", "AETPAS2P(s)", "SET(s)", "Overhead")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-12s %-14s %-10s %.2fX\n",
			r.App, fmtSec(r.Outcome.AETBase), fmtSec(r.Outcome.AETPAS2P),
			fmtSec(r.Outcome.SET), r.Outcome.OverheadFactor)
	}
	fmt.Fprintln(w)
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
