package report

import (
	"fmt"
	"io"

	"pas2p/internal/predict"
)

// PredRow is one row of a Table 5/7-style prediction table.
type PredRow struct {
	App     string
	Procs   int
	Cores   int
	Outcome *predict.Outcome
}

// predSpec declares one prediction experiment.
type predSpec struct {
	app      string
	procs    int
	workload string
	cores    []int // target core counts
}

// table4Specs mirrors the paper's Table 4 (base machine A): 64-process
// NPB CG/BT/SP/LU class C, 32-process Sweep3D (sweep.250, 13
// iterations), 64-process SMG2000 (-n 200 solver 3) and the synthetic
// 150-step POP.
func table4Specs() []predSpec {
	return []predSpec{
		{app: "cg", procs: 64, workload: "classC", cores: []int{32, 64}},
		{app: "bt", procs: 64, workload: "classC", cores: []int{32, 64}},
		{app: "sp", procs: 64, workload: "classC", cores: []int{32, 64}},
		{app: "lu", procs: 64, workload: "classC", cores: []int{32, 64}},
		{app: "smg2000", procs: 64, workload: "-n 200 solver 3", cores: []int{32, 64}},
		{app: "sweep3d", procs: 32, workload: "sweep.250 13", cores: []int{16, 32}},
		{app: "pop", procs: 64, workload: "synthetic150", cores: []int{32, 64}},
	}
}

// table6Specs mirrors Table 6 (base machine C): 256 processes, NPB
// class D, SMG2000 with 1200 iterations, sweep.200.
func table6Specs() []predSpec {
	return []predSpec{
		{app: "cg", procs: 256, workload: "classD", cores: []int{128}},
		{app: "bt", procs: 256, workload: "classD", cores: []int{128}},
		{app: "sp", procs: 256, workload: "classD", cores: []int{128}},
		{app: "lu", procs: 256, workload: "classD", cores: []int{128}},
		{app: "smg2000", procs: 256, workload: "-n 200 solver 3 iterations 1200", cores: []int{128}},
		{app: "sweep3d", procs: 256, workload: "sweep.200 13", cores: []int{128}},
	}
}

// runPredTable executes one prediction table: build the signature on
// the base cluster at the spec's process count, then execute it on the
// target cluster restricted to each core count (oversubscribing when
// processes exceed cores, exactly as the paper's Table 7 does).
func runPredTable(w io.Writer, title string, specs []predSpec,
	baseName, targetName string, opts Options) ([]PredRow, error) {
	base := clusterByName(baseName)
	target := clusterByName(targetName)
	fmt.Fprintf(w, "%s (base %s -> target %s)\n", title, base.Name, target.Name)
	fmt.Fprintf(w, "%-14s %-6s %-9s %-11s %-10s %-8s %-10s\n",
		"Appl.", "Cores", "SET(s)", "SETvsAET%", "PET(s)", "PETE%", "AET(s)")
	var rows []PredRow
	for _, sp := range specs {
		procs := opts.scale(sp.procs)
		bd, err := deploy(base, procs)
		if err != nil {
			return nil, err
		}
		for _, cores := range sp.cores {
			c := cores / maxInt(opts.ProcScale, 1)
			tc, err := shrinkToCores(target, c)
			if err != nil {
				return nil, err
			}
			td, err := deploy(tc, procs)
			if err != nil {
				return nil, err
			}
			out, err := runExperiment(sp.app, procs, sp.workload, bd, td, opts)
			if err != nil {
				return nil, fmt.Errorf("%s-%d on %d cores: %w", sp.app, procs, c, err)
			}
			fmt.Fprintf(w, "%-14s %-6d %-9s %-11.2f %-10s %-8.2f %-10s\n",
				fmt.Sprintf("%s-%d", sp.app, procs), c,
				fmtSec(out.SET), out.SETvsAETPercent,
				fmtSec(out.PET), out.PETEPercent, fmtSec(out.AETTarget))
			rows = append(rows, PredRow{App: sp.app, Procs: procs, Cores: c, Outcome: out})
		}
	}
	printPredSummary(w, rows)
	return rows, nil
}

// shrinkToCores restricts a cluster to roughly the requested cores,
// rounding up to whole nodes.
func shrinkToCores(c *clusterT, cores int) (*clusterT, error) {
	nodes := (cores + c.CoresPerNode - 1) / c.CoresPerNode
	if nodes < 1 {
		nodes = 1
	}
	cc := *c
	cc.Nodes = nodes
	cc.Name = fmt.Sprintf("%s[%d cores]", c.Name, nodes*c.CoresPerNode)
	return &cc, nil
}

func printPredSummary(w io.Writer, rows []PredRow) {
	if len(rows) == 0 {
		return
	}
	var sumPETE, sumSETfrac float64
	for _, r := range rows {
		sumPETE += r.Outcome.PETEPercent
		sumSETfrac += r.Outcome.SETvsAETPercent
	}
	n := float64(len(rows))
	fmt.Fprintf(w, "Average prediction accuracy: %.2f%%  |  average SET/AET: %.2f%%\n\n",
		100-sumPETE/n, sumSETfrac/n)
}

// Table5 reproduces the paper's Table 5: signatures built on cluster A
// with the Table 4 workloads, predictions for cluster B at two core
// counts each.
func Table5(w io.Writer, opts Options) ([]PredRow, error) {
	return runPredTable(w, "TABLE 5: Predictions for Cluster B (Target Machine)",
		table4Specs(), "A", "B", opts)
}

// Table7 reproduces Table 7: signatures built on cluster C with the
// Table 6 workloads (256 processes), predictions for cluster A's 128
// cores with two processes per core.
func Table7(w io.Writer, opts Options) ([]PredRow, error) {
	return runPredTable(w, "TABLE 7: Predictions for Cluster A (Target Machine)",
		table6Specs(), "C", "A", opts)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
