// Package report regenerates the paper's evaluation tables. Each
// TableN function runs the corresponding experiments through the full
// PAS2P pipeline (instrument → model → phases → signature → predict →
// validate) on the modelled clusters and prints rows with the paper's
// exact columns, returning the structured results for programmatic
// checks (benchmarks assert on shapes: who wins, by what rough factor).
package report

import (
	"fmt"
	"io"

	"pas2p/internal/apps"
	"pas2p/internal/machine"
	"pas2p/internal/obs"
	"pas2p/internal/phase"
	"pas2p/internal/predict"
	"pas2p/internal/vtime"
)

// Options scales the experiments.
type Options struct {
	// ProcScale divides every experiment's process count (1 = the
	// paper's scale; tests use 4 or 8 to stay fast). Process counts
	// are kept >= 4.
	ProcScale int
	// EventOverhead is the instrumentation cost per event.
	EventOverhead vtime.Duration
	// ParallelPhases fans the phase-extraction stage of every
	// experiment out over the CPUs.
	ParallelPhases bool
	// Observer, when non-nil, instruments every experiment's pipeline
	// (stage spans, counters) — pas2p-bench -serve exposes it live.
	Observer *obs.Observer
}

// phaseConfig returns the phase thresholds the experiments run with —
// the paper's defaults, with the parallel engine toggled by the
// options.
func (o Options) phaseConfig() phase.Config {
	cfg := phase.DefaultConfig()
	cfg.ExtractParallel = o.ParallelPhases
	return cfg
}

// DefaultOptions runs at the paper's process counts.
func DefaultOptions() Options {
	return Options{ProcScale: 1, EventOverhead: 8 * vtime.Microsecond}
}

func (o Options) scale(procs int) int {
	if o.ProcScale <= 1 {
		return procs
	}
	p := procs / o.ProcScale
	if p < 4 {
		p = 4
	}
	return p
}

// clusterT abbreviates the machine model type in the table drivers.
type clusterT = machine.Cluster

// clusterByName resolves a Table 2 preset ("A".."D"); it panics on an
// unknown name because the drivers only use fixed names.
func clusterByName(name string) *clusterT {
	c := machine.ByName(name)
	if c == nil {
		panic("report: unknown cluster " + name)
	}
	return c
}

// deploy builds a block-mapped deployment, oversubscribing when ranks
// exceed cores.
func deploy(c *machine.Cluster, ranks int) (*machine.Deployment, error) {
	return machine.NewDeployment(c, ranks, machine.MapBlock)
}

// runExperiment instantiates an app and runs the Fig. 12 loop.
func runExperiment(name string, procs int, workload string,
	base, target *machine.Deployment, opts Options) (*predict.Outcome, error) {
	app, err := apps.Make(name, procs, workload)
	if err != nil {
		return nil, err
	}
	return predict.Run(predict.Experiment{
		App:           app,
		Base:          base,
		Target:        target,
		EventOverhead: opts.EventOverhead,
		PhaseConfig:   opts.phaseConfig(),
		Observer:      opts.Observer,
	})
}

// Table2 prints the modelled cluster characteristics.
func Table2(w io.Writer) {
	fmt.Fprintln(w, "TABLE 2: Clusters Characteristics (modelled)")
	fmt.Fprintf(w, "%-10s %-6s %-7s %-11s %-10s %-9s %-14s %s\n",
		"Cluster", "Cores", "ISA", "Cores/Node", "GFLOPS/c", "MemCont", "Network", "Lat/BW")
	for _, c := range machine.Presets() {
		net := "GigE"
		if c.Interconnect.Bandwidth > 5e8 {
			net = "InfiniBand"
		}
		fmt.Fprintf(w, "%-10s %-6d %-7s %-11d %-10.2f %-9.2f %-14s %v/%.0fMBps\n",
			c.Name, c.Cores(), c.ISA, c.CoresPerNode, c.CoreGFLOPS, c.MemContention,
			net, c.Interconnect.Latency, c.Interconnect.Bandwidth/1e6)
	}
}

// fmtSec prints seconds with two decimals, as the paper's tables do.
func fmtSec(d vtime.Duration) string { return fmt.Sprintf("%.2f", d.Seconds()) }
