package apps

import (
	"fmt"

	"pas2p/internal/mpi"
)

// moldyParams models the Moldy molecular-dynamics code with the tip4p
// water workload the paper analyses in Table 3. The timestep contains
// sub-behaviours firing at different rates, so the analysis finds
// several phases whose weights stand in roughly the 10 : 20 : 9 : 1
// proportions of Table 3's relevant set (the paper's absolute weights,
// 100k/200k/90k/10k, come from a 100k-step production run; we scale
// the step count down and keep the ratios).
type moldyParams struct {
	atoms int
	steps int
	flops float64
}

var moldyWorkloads = map[string]moldyParams{
	"tip4p":       {atoms: 512000, steps: 600, flops: 4500},
	"tip4p-short": {atoms: 512000, steps: 120, flops: 4500},
	"quartz":      {atoms: 270000, steps: 400, flops: 6000},
}

func init() {
	register(&Spec{
		Name:              "moldy",
		Workloads:         []string{"tip4p", "tip4p-short", "quartz"},
		DefaultWorkload:   "tip4p",
		StateBytesPerRank: 48 << 20,
		Make:              makeMoldy,
	})
}

// makeMoldy builds the MD kernel: each timestep exchanges boundary
// atoms around a ring (replicated-data Moldy reduces forces globally),
// computes pair forces, and reduces the partial forces and energies;
// every other step the thermostat adds a second reduction round, and
// every tenth step the link-cell neighbour lists are rebuilt under an
// allgather.
func makeMoldy(procs int, workload string) (mpi.App, error) {
	w, err := pickWorkload("moldy", workload, moldyWorkloads)
	if err != nil {
		return mpi.App{}, err
	}
	if procs < 2 {
		return mpi.App{}, fmt.Errorf("apps: moldy needs at least 2 processes")
	}
	atomsPerProc := float64(w.atoms) / float64(procs)
	boundary := int(8 * atomsPerProc * 3 / 16) // boundary shell positions
	return mpi.App{
		Name:  "moldy",
		Procs: procs,
		Body: func(c *mpi.Comm) {
			n := c.Size()
			me := c.Rank()
			right := (me + 1) % n
			left := (me + n - 1) % n
			work := mkbuf(384, float64(me))
			c.Bcast(0, mkbuf(32, 8))
			c.Barrier()
			for step := 0; step < w.steps; step++ {
				// Pair-force phase: boundary exchange + force compute
				// + force reduction (fires every step: the "x10"
				// weight class, split over two reductions per step for
				// the "x20" class).
				c.SendrecvN(right, 70, boundary, left, 70)
				c.Compute(w.flops * atomsPerProc * 60)
				touch(work, float64(step))
				c.Allreduce([]float64{work[0], work[1]}, mpi.Sum)
				c.Compute(w.flops * atomsPerProc * 10)
				c.Allreduce([]float64{work[2], work[3]}, mpi.Sum)
				// Thermostat/constraint round: 9 of 10 steps (x9).
				if step%10 != 9 {
					c.Compute(w.flops * atomsPerProc * 5)
					c.SendrecvN(left, 71, boundary/4, right, 71)
				}
				// Neighbour-list rebuild: every 10th step (x1).
				if step%10 == 9 {
					c.Compute(w.flops * atomsPerProc * 25)
					c.Allgather([]float64{work[4], work[5]})
				}
			}
			c.Allreduce([]float64{work[0]}, mpi.Sum)
		},
	}, nil
}
