package apps

import (
	"testing"

	"pas2p/internal/logical"
	"pas2p/internal/machine"
	"pas2p/internal/mpi"
	"pas2p/internal/phase"
)

// smallWorkload maps each app to a cheap workload for unit tests.
var smallWorkload = map[string]string{
	"cg":           "classA",
	"ep":           "classA",
	"is":           "classA",
	"bt":           "classA",
	"sp":           "classA",
	"lu":           "classA",
	"ft":           "classA",
	"sweep3d":      "sweep.150 3",
	"smg2000":      "-n 120 solver 3 iterations 90",
	"pop":          "synthetic20",
	"moldy":        "tip4p-short",
	"gromacs":      "d.lzm",
	"masterworker": "rounds2",
}

func runTraced(t testing.TB, name string, procs int, workload string) (*mpi.RunResult, mpi.App) {
	t.Helper()
	app, err := Make(name, procs, workload)
	if err != nil {
		t.Fatal(err)
	}
	d, err := machine.NewDeployment(machine.ClusterA(), procs, machine.MapBlock)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mpi.Run(app, mpi.RunConfig{Deployment: d, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	return res, app
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"bt", "cg", "ep", "ft", "gromacs", "is", "lu",
		"masterworker", "moldy", "pop", "smg2000", "sp", "sweep3d"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("registry has %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registry has %v, want %v", got, want)
		}
	}
	for _, n := range want {
		s := Lookup(n)
		if s == nil {
			t.Fatalf("Lookup(%q) = nil", n)
		}
		if s.DefaultWorkload == "" || s.StateBytesPerRank <= 0 {
			t.Errorf("%s: incomplete spec", n)
		}
	}
	if Lookup("nope") != nil {
		t.Error("Lookup of unknown app should be nil")
	}
}

func TestMakeUnknown(t *testing.T) {
	if _, err := Make("nope", 4, ""); err == nil {
		t.Error("unknown app should fail")
	}
	if _, err := Make("cg", 8, "classZ"); err == nil {
		t.Error("unknown workload should fail")
	}
	if _, err := Make("cg", 1, "classA"); err == nil {
		t.Error("too few procs should fail")
	}
}

// TestEveryAppRunsAndTraces is the suite-wide smoke test: every
// registered application runs deterministically on 8 ranks, produces a
// valid trace, and survives the full analysis pipeline.
func TestEveryAppRunsAndTraces(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			res, _ := runTraced(t, name, 8, smallWorkload[name])
			if res.Elapsed <= 0 {
				t.Fatal("zero elapsed time")
			}
			if err := res.Trace.Validate(); err != nil {
				t.Fatalf("trace invalid: %v", err)
			}
			l, err := logical.Order(res.Trace)
			if err != nil {
				t.Fatalf("ordering failed: %v", err)
			}
			if err := l.Validate(); err != nil {
				t.Fatalf("logical trace invalid: %v", err)
			}
			a, err := phase.Extract(l, phase.DefaultConfig())
			if err != nil {
				t.Fatalf("extraction failed: %v", err)
			}
			if err := a.Validate(); err != nil {
				t.Fatalf("analysis invalid: %v", err)
			}
			if len(a.Relevant()) == 0 {
				t.Error("no relevant phases found")
			}
			tb, err := a.BuildTable(1)
			if err != nil {
				t.Fatal(err)
			}
			if err := tb.Validate(); err != nil {
				t.Fatalf("phase table invalid: %v", err)
			}
		})
	}
}

func TestAppsDeterministic(t *testing.T) {
	for _, name := range []string{"cg", "lu", "masterworker"} {
		r1, _ := runTraced(t, name, 8, smallWorkload[name])
		r2, _ := runTraced(t, name, 8, smallWorkload[name])
		if r1.Elapsed != r2.Elapsed {
			t.Errorf("%s: elapsed differs across runs: %v vs %v", name, r1.Elapsed, r2.Elapsed)
		}
		if len(r1.Trace.Events) != len(r2.Trace.Events) {
			t.Errorf("%s: event counts differ", name)
		}
	}
}

func TestMoldyWeightRatios(t *testing.T) {
	// Table 3's shape: the relevant phases' weights stand roughly in
	// 20 : 10 : 9 : 1 (per-step reductions fire twice, the thermostat
	// 9 of 10 steps, the rebuild once per 10 steps).
	res, _ := runTraced(t, "moldy", 8, "tip4p-short")
	l, err := logical.Order(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	a, err := phase.Extract(l, phase.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Phases) < 3 {
		t.Fatalf("moldy found only %d phases; expected a Table-3-like mix", len(a.Phases))
	}
	// The largest weight must be several times the smallest relevant
	// weight — the spread that makes Table 3 interesting.
	rel := a.Relevant()
	if len(rel) < 2 {
		t.Fatalf("moldy has %d relevant phases, want >= 2", len(rel))
	}
	minW, maxW := rel[0].Weight(), rel[0].Weight()
	for _, p := range rel {
		if p.Weight() < minW {
			minW = p.Weight()
		}
		if p.Weight() > maxW {
			maxW = p.Weight()
		}
	}
	if maxW < 4*minW {
		t.Errorf("moldy weight spread %d..%d too flat for the Table 3 shape", minW, maxW)
	}
}

func TestFTLowRepetitiveness(t *testing.T) {
	// §6: FT's largest weight is small (~20), reflecting little
	// repetitiveness.
	res, _ := runTraced(t, "ft", 8, "classA")
	l, _ := logical.Order(res.Trace)
	a, err := phase.Extract(l, phase.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	maxW := 0
	for _, p := range a.Phases {
		if p.Weight() > maxW {
			maxW = p.Weight()
		}
	}
	if maxW > 30 {
		t.Errorf("ft max weight %d; expected low repetitiveness", maxW)
	}
}

func TestMasterWorkerDegenerate(t *testing.T) {
	// §6: one job round gives a dominant phase of weight 1.
	res, _ := runTraced(t, "masterworker", 8, "rounds1")
	l, _ := logical.Order(res.Trace)
	a, err := phase.Extract(l, phase.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	dominant := a.SortedByTotalDur()[0]
	if dominant.Weight() != 1 {
		t.Errorf("dominant phase weight %d, want 1", dominant.Weight())
	}
}

func TestLUHasMostEvents(t *testing.T) {
	// Table 8's shape: LU's per-k-plane pipeline yields far more
	// events (and so the biggest tracefile) than FT's few transposes.
	lu, _ := runTraced(t, "lu", 8, "classA")
	ft, _ := runTraced(t, "ft", 8, "classA")
	if len(lu.Trace.Events) < 5*len(ft.Trace.Events) {
		t.Errorf("lu events %d vs ft %d: LU should dwarf FT", len(lu.Trace.Events), len(ft.Trace.Events))
	}
}

func TestClassScalingIncreasesWork(t *testing.T) {
	// A bigger NPB class must run longer on the same deployment.
	small, _ := runTraced(t, "cg", 8, "classA")
	big, _ := runTraced(t, "cg", 8, "classB")
	if big.Elapsed <= small.Elapsed {
		t.Errorf("classB %v should exceed classA %v", big.Elapsed, small.Elapsed)
	}
}

func TestCrossClusterAETOrdering(t *testing.T) {
	// The same CG workload must run faster on the IB cluster C than on
	// the GigE cluster A at the same rank count (its allreduce- and
	// exchange-heavy pattern is network sensitive).
	app, err := Make("cg", 16, "classA")
	if err != nil {
		t.Fatal(err)
	}
	times := map[string]float64{}
	for _, cl := range []*machine.Cluster{machine.ClusterA(), machine.ClusterC()} {
		d, err := machine.NewDeployment(cl, 16, machine.MapBlock)
		if err != nil {
			t.Fatal(err)
		}
		res, err := mpi.Run(app, mpi.RunConfig{Deployment: d})
		if err != nil {
			t.Fatal(err)
		}
		times[cl.Name] = res.Elapsed.Seconds()
	}
	if times["Cluster C"] >= times["Cluster A"] {
		t.Errorf("CG on C (%.3fs) should beat A (%.3fs)", times["Cluster C"], times["Cluster A"])
	}
}

func TestWorkloadParsers(t *testing.T) {
	if _, err := parseSweepWorkload("sweep.250 13"); err != nil {
		t.Error(err)
	}
	if _, err := parseSweepWorkload("sweep.999"); err == nil {
		t.Error("unknown sweep grid should fail")
	}
	if _, err := parseSweepWorkload("sweep.150 zero"); err == nil {
		t.Error("bad iteration count should fail")
	}
	w, err := parseSMGWorkload("-n 200 solver 3 iterations 550")
	if err != nil {
		t.Fatal(err)
	}
	if w.n != 200 || w.cycles != 550/18 {
		t.Errorf("smg workload parsed %+v", w)
	}
	if _, err := parseSMGWorkload("-n x solver 3"); err == nil {
		t.Error("bad -n should fail")
	}
	if _, err := parseSMGWorkload("bogus"); err == nil {
		t.Error("unknown token should fail")
	}
	if _, err := parsePOPWorkload("synthetic150"); err != nil {
		t.Error(err)
	}
	if _, err := parsePOPWorkload("classC"); err == nil {
		t.Error("pop with NPB class should fail")
	}
	if _, err := parseMWWorkload("rounds10"); err != nil {
		t.Error(err)
	}
	if _, err := parseMWWorkload("roundsX"); err == nil {
		t.Error("bad rounds should fail")
	}
}

func TestGrid2D(t *testing.T) {
	cases := map[int][2]int{
		4: {2, 2}, 8: {2, 4}, 16: {4, 4}, 64: {8, 8},
		12: {3, 4}, 7: {1, 7}, 1: {1, 1},
	}
	for p, want := range cases {
		r, c := grid2D(p)
		if r != want[0] || c != want[1] {
			t.Errorf("grid2D(%d) = %dx%d, want %dx%d", p, r, c, want[0], want[1])
		}
		if r*c != p {
			t.Errorf("grid2D(%d) does not factor", p)
		}
	}
	if !isSquare(16) || isSquare(8) {
		t.Error("isSquare wrong")
	}
}

func TestEPFewEvents(t *testing.T) {
	// EP is nearly communication-free: its trace must be tiny relative
	// to CG's at the same class/procs.
	ep, _ := runTraced(t, "ep", 8, "classA")
	cg, _ := runTraced(t, "cg", 8, "classA")
	if len(ep.Trace.Events)*5 > len(cg.Trace.Events) {
		t.Errorf("ep events %d vs cg %d: EP should be nearly silent", len(ep.Trace.Events), len(cg.Trace.Events))
	}
}

func TestISAlltoallDominated(t *testing.T) {
	res, _ := runTraced(t, "is", 8, "classA")
	st := res.Trace.Stats()
	if st.Collectives < st.Sends {
		t.Errorf("is should be collective-dominated: %d colls vs %d sends", st.Collectives, st.Sends)
	}
}
