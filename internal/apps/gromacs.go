package apps

import (
	"fmt"

	"pas2p/internal/mpi"
)

// gromacsParams models a GROMACS-style domain-decomposition MD run:
// halo exchange of home atoms with grid neighbours, a long-range PME
// step with its transpose every few steps, and global energy
// reductions. Load is mildly rank-dependent (solvent/protein split),
// exercising the 85 percent compute-similarity tolerance.
type gromacsParams struct {
	atoms   int
	steps   int
	pmeFreq int
	flops   float64
}

var gromacsWorkloads = map[string]gromacsParams{
	"d.villin": {atoms: 400000, steps: 400, pmeFreq: 4, flops: 8500},
	"d.lzm":    {atoms: 160000, steps: 250, pmeFreq: 4, flops: 8500},
}

func init() {
	register(&Spec{
		Name:              "gromacs",
		Workloads:         []string{"d.villin", "d.lzm"},
		DefaultWorkload:   "d.villin",
		StateBytesPerRank: 56 << 20,
		Make:              makeGromacs,
	})
}

func makeGromacs(procs int, workload string) (mpi.App, error) {
	w, err := pickWorkload("gromacs", workload, gromacsWorkloads)
	if err != nil {
		return mpi.App{}, err
	}
	if procs < 4 {
		return mpi.App{}, fmt.Errorf("apps: gromacs needs at least 4 processes")
	}
	rows, cols := grid2D(procs)
	atomsPerProc := float64(w.atoms) / float64(procs)
	halo := int(8 * atomsPerProc * 3 / 8)
	pmeBlock := int(16 * atomsPerProc / float64(procs))
	if pmeBlock < 8 {
		pmeBlock = 8
	}
	return mpi.App{
		Name:  "gromacs",
		Procs: procs,
		Body: func(c *mpi.Comm) {
			me := c.Rank()
			r, q := me/cols, me%cols
			east := r*cols + (q+1)%cols
			west := r*cols + (q+cols-1)%cols
			south := ((r+1)%rows)*cols + q
			north := ((r+rows-1)%rows)*cols + q
			// Mild static imbalance: ranks owning protein regions
			// compute ~8% more.
			imbalance := 1.0
			if me%4 == 0 {
				imbalance = 1.08
			}
			work := mkbuf(256, float64(me))
			pme := mkbuf(16*c.Size(), float64(me))
			c.Bcast(0, mkbuf(32, 9))
			c.Barrier()
			for step := 0; step < w.steps; step++ {
				// Short-range nonbonded forces with halo exchange.
				c.SendrecvN(east, 80, halo, west, 80)
				c.SendrecvN(south, 81, halo, north, 81)
				c.Compute(w.flops * atomsPerProc * 40 * imbalance)
				touch(work, float64(step))
				// PME long-range electrostatics every pmeFreq steps.
				if step%w.pmeFreq == 0 {
					pme = c.AlltoallSized(pme, pmeBlock)
					c.Compute(w.flops * atomsPerProc * 12)
				}
				// Energy/virial reduction.
				c.Allreduce([]float64{work[0], work[1], work[2]}, mpi.Sum)
			}
			c.Allreduce([]float64{work[0]}, mpi.Max)
		},
	}, nil
}
