package apps

import (
	"fmt"
	"strconv"
	"strings"

	"pas2p/internal/mpi"
)

// The master/worker application is §6's worst case for PAS2P: the
// master scatters one job per worker, workers compute and return one
// result, and nothing repeats — the analysis finds a dominant phase of
// weight 1, so executing the signature costs about as much as running
// the whole application. Workloads: "roundsN" runs the job cycle N
// times (rounds1 is the paper's degenerate case).

type mwParams struct {
	rounds   int
	jobBytes int
	flops    float64
}

func init() {
	register(&Spec{
		Name:              "masterworker",
		Workloads:         []string{"rounds1", "rounds5", "rounds50"},
		DefaultWorkload:   "rounds1",
		StateBytesPerRank: 8 << 20,
		Make:              makeMasterWorker,
	})
}

func parseMWWorkload(workload string) (mwParams, error) {
	w := mwParams{rounds: 1, jobBytes: 1 << 16, flops: 2e10}
	if !strings.HasPrefix(workload, "rounds") {
		return w, fmt.Errorf("apps: masterworker: unknown workload %q (want roundsN)", workload)
	}
	n, err := strconv.Atoi(strings.TrimPrefix(workload, "rounds"))
	if err != nil || n <= 0 {
		return w, fmt.Errorf("apps: masterworker: bad round count in %q", workload)
	}
	w.rounds = n
	return w, nil
}

func makeMasterWorker(procs int, workload string) (mpi.App, error) {
	w, err := parseMWWorkload(workload)
	if err != nil {
		return mpi.App{}, err
	}
	if procs < 2 {
		return mpi.App{}, fmt.Errorf("apps: masterworker needs at least 2 processes")
	}
	return mpi.App{
		Name:  "masterworker",
		Procs: procs,
		Body: func(c *mpi.Comm) {
			n := c.Size()
			if c.Rank() == 0 {
				for round := 0; round < w.rounds; round++ {
					for s := 1; s < n; s++ {
						c.SendN(s, 90, w.jobBytes)
					}
					// Results arrive in completion order.
					for s := 1; s < n; s++ {
						c.RecvN(mpi.AnySource, 91)
					}
				}
			} else {
				work := mkbuf(512, float64(c.Rank()))
				for round := 0; round < w.rounds; round++ {
					c.RecvN(0, 90)
					// Jobs are slightly imbalanced, like real farms.
					c.Compute(w.flops * (1 + 0.1*float64(c.Rank()%5)))
					touch(work, float64(round))
					c.SendN(0, 91, w.jobBytes/4)
				}
			}
		},
	}, nil
}
