package apps

import (
	"fmt"
	"strconv"
	"strings"

	"pas2p/internal/mpi"
)

// sweepParams models the ASCI Sweep3D neutron-transport benchmark: a
// 2-D process decomposition over which discrete-ordinate sweeps
// propagate as pipelined wavefronts, one per octant pair, in k-plane
// blocks. Workload names follow the paper's "sweep.N [iterations]"
// convention (Table 4: sweep.250, 13 iterations).
type sweepParams struct {
	grid    int
	iters   int
	kBlocks int
	flops   float64 // per cell per sweep
}

var sweepWorkloads = map[string]sweepParams{
	"sweep.150": {grid: 150, iters: 13, kBlocks: 1, flops: 3.05e4},
	"sweep.200": {grid: 200, iters: 13, kBlocks: 1, flops: 3.05e4},
	"sweep.250": {grid: 250, iters: 13, kBlocks: 1, flops: 3.05e4},
}

func init() {
	register(&Spec{
		Name:              "sweep3d",
		Workloads:         []string{"sweep.150", "sweep.200", "sweep.250"},
		DefaultWorkload:   "sweep.250",
		StateBytesPerRank: 72 << 20,
		Make:              makeSweep3D,
	})
}

// parseSweepWorkload accepts "sweep.N" or "sweep.N iters".
func parseSweepWorkload(workload string) (sweepParams, error) {
	fields := strings.Fields(workload)
	w, err := pickWorkload("sweep3d", fields[0], sweepWorkloads)
	if err != nil {
		return sweepParams{}, err
	}
	if len(fields) > 1 {
		it, err := strconv.Atoi(fields[1])
		if err != nil || it <= 0 {
			return sweepParams{}, fmt.Errorf("apps: sweep3d: bad iteration count %q", fields[1])
		}
		w.iters = it
	}
	return w, nil
}

// makeSweep3D builds the wavefront kernel: for each timestep, eight
// octants grouped into four sweep directions; in each sweep a process
// receives the inflow faces from its upstream neighbours, computes the
// block, and forwards outflow faces downstream, k-block by k-block.
func makeSweep3D(procs int, workload string) (mpi.App, error) {
	w, err := parseSweepWorkload(workload)
	if err != nil {
		return mpi.App{}, err
	}
	if procs < 4 {
		return mpi.App{}, fmt.Errorf("apps: sweep3d needs at least 4 processes")
	}
	rows, cols := grid2D(procs)
	cellsPerProc := float64(w.grid) * float64(w.grid) * float64(w.grid) / float64(procs)
	blockFlops := w.flops * cellsPerProc / float64(w.kBlocks)
	faceBytes := 8 * w.grid / cols * w.grid / rows * 24 // angles per face slab
	return mpi.App{
		Name:  "sweep3d",
		Procs: procs,
		Body: func(c *mpi.Comm) {
			me := c.Rank()
			r, q := me/cols, me%cols
			neighbour := func(dr, dq int) int {
				nr, nq := r+dr, q+dq
				if nr < 0 || nr >= rows || nq < 0 || nq >= cols {
					return -1
				}
				return nr*cols + nq
			}
			work := mkbuf(256, float64(me))
			c.Bcast(0, mkbuf(8, 5))
			c.Barrier()
			// The four sweep directions (octant pairs): (di,dj) is the
			// propagation direction across the process grid.
			dirs := [4][2]int{{1, 1}, {1, -1}, {-1, 1}, {-1, -1}}
			for it := 0; it < w.iters; it++ {
				for d, dir := range dirs {
					tag := 30 + d
					inI, inJ := neighbour(-dir[0], 0), neighbour(0, -dir[1])
					outI, outJ := neighbour(dir[0], 0), neighbour(0, dir[1])
					for k := 0; k < w.kBlocks; k++ {
						if inI >= 0 {
							c.RecvN(inI, tag)
						}
						if inJ >= 0 {
							c.RecvN(inJ, tag)
						}
						c.Compute(blockFlops)
						touch(work, float64(d*16+k))
						if outI >= 0 {
							c.SendN(outI, tag, faceBytes)
						}
						if outJ >= 0 {
							c.SendN(outJ, tag, faceBytes)
						}
					}
				}
				// Flux convergence check.
				c.Allreduce([]float64{work[0]}, mpi.Sum)
			}
		},
	}, nil
}
