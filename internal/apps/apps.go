// Package apps provides the parallel workloads the paper evaluates
// PAS2P with: CG, BT, SP, LU and FT from the NAS Parallel Benchmarks,
// Sweep3D, SMG2000, POP, the Moldy molecular-dynamics code, a
// GROMACS-like MD variant, and the §6 master/worker pathological case.
//
// Each kernel is a faithful miniature: it performs the original's
// communication structure (the pattern, peers, collective mix and
// message-volume ratios) with real data movement and real arithmetic
// on scaled-down arrays, while declaring per-iteration computation
// costs that reproduce the original's compute/communication balance on
// the modelled clusters. Phase extraction and prediction depend on
// exactly these observables, so the kernels exercise the same code
// paths the real applications would.
package apps

import (
	"fmt"
	"math"
	"sort"

	"pas2p/internal/mpi"
)

// Spec describes one instantiable workload.
type Spec struct {
	// Name is the application identifier ("cg", "sweep3d", ...).
	Name string
	// Workloads lists the named parameter sets this app accepts
	// (e.g. "classC", "classD" for the NPB kernels).
	Workloads []string
	// DefaultWorkload is used when the caller passes "".
	DefaultWorkload string
	// StateBytesPerRank is the per-process footprint used by the
	// checkpoint cost model.
	StateBytesPerRank int64
	// Make builds the runnable application.
	Make func(procs int, workload string) (mpi.App, error)
}

var registry = map[string]*Spec{}

func register(s *Spec) {
	if _, dup := registry[s.Name]; dup {
		panic("apps: duplicate registration of " + s.Name)
	}
	registry[s.Name] = s
}

// Names lists registered applications in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the spec for a name, or nil.
func Lookup(name string) *Spec { return registry[name] }

// Make instantiates an application by name; an empty workload selects
// the spec's default.
func Make(name string, procs int, workload string) (mpi.App, error) {
	s := registry[name]
	if s == nil {
		return mpi.App{}, fmt.Errorf("apps: unknown application %q (have %v)", name, Names())
	}
	if workload == "" {
		workload = s.DefaultWorkload
	}
	return s.Make(procs, workload)
}

// pickWorkload resolves a workload name against a parameter map.
func pickWorkload[T any](app, workload string, table map[string]T) (T, error) {
	if w, ok := table[workload]; ok {
		return w, nil
	}
	var zero T
	names := make([]string, 0, len(table))
	for n := range table {
		names = append(names, n)
	}
	sort.Strings(names)
	return zero, fmt.Errorf("apps: %s: unknown workload %q (have %v)", app, workload, names)
}

// grid2D returns a near-square factorisation rows*cols = p with
// rows <= cols.
func grid2D(p int) (rows, cols int) {
	rows = int(math.Sqrt(float64(p)))
	for rows > 1 && p%rows != 0 {
		rows--
	}
	if rows < 1 {
		rows = 1
	}
	return rows, p / rows
}

// isSquare reports whether p is a perfect square.
func isSquare(p int) bool {
	r := int(math.Sqrt(float64(p)))
	return r*r == p
}

// touch performs a little real arithmetic over a buffer so signature
// segments execute genuine code (the virtual cost is declared
// separately via Compute).
func touch(buf []float64, seed float64) float64 {
	acc := seed
	for i := range buf {
		buf[i] = buf[i]*0.999 + acc*1e-6
		acc += buf[i]
	}
	return acc
}

// mkbuf allocates a small working array.
func mkbuf(n int, fill float64) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = fill + float64(i)*1e-3
	}
	return b
}
