package apps

import (
	"fmt"

	"pas2p/internal/mpi"
)

// cgParams models an NPB CG class: problem rank, nonzeros, outer
// iterations and the number of (aggregated) inner CG steps per outer
// iteration. Inner steps are aggregated 5:1 relative to NPB's 25 to
// keep event counts tractable; the phase structure (inner-step phase
// dominating, weight = outer x inner) is unchanged.
type cgParams struct {
	na    int     // matrix order
	nnz   float64 // nonzeros
	outer int
	inner int
}

var cgWorkloads = map[string]cgParams{
	"classA": {na: 14000, nnz: 1.85e6, outer: 15, inner: 5},
	"classB": {na: 75000, nnz: 1.31e7, outer: 35, inner: 5},
	"classC": {na: 150000, nnz: 3.67e7, outer: 75, inner: 5},
	"classD": {na: 1500000, nnz: 7.34e8, outer: 100, inner: 5},
}

func init() {
	register(&Spec{
		Name:              "cg",
		Workloads:         []string{"classA", "classB", "classC", "classD"},
		DefaultWorkload:   "classC",
		StateBytesPerRank: 96 << 20,
		Make:              makeCG,
	})
}

// makeCG builds the NPB CG kernel: a conjugate-gradient solve over a
// random sparse matrix on a 2D process grid. Each inner step performs
// the matvec's row-group reduction (modelled as the exchange with the
// transpose partner, as NPB CG lays it out) followed by the dot-product
// allreduce; each outer iteration ends with the residual-norm
// allreduce. The compute declaration is the matvec's 2·nnz/p flops.
func makeCG(procs int, workload string) (mpi.App, error) {
	w, err := pickWorkload("cg", workload, cgWorkloads)
	if err != nil {
		return mpi.App{}, err
	}
	if procs < 2 {
		return mpi.App{}, fmt.Errorf("apps: cg needs at least 2 processes")
	}
	_, cols := grid2D(procs)
	// Exchange volume: a partition of the vector shared along a row of
	// the process grid. The calibration factor lifts per-step compute
	// into the regime the paper's clusters showed (AETs of minutes).
	const calibration = 6700
	flops := calibration * 2 * w.nnz / float64(procs)
	exchange := 8 * w.na / cols
	return mpi.App{
		Name:  "cg",
		Procs: procs,
		Body: func(c *mpi.Comm) {
			me := c.Rank()
			// Transpose partner in the process grid (NPB CG's
			// reduce_exch pattern); the mapping must be an involution
			// so the symmetric exchange pairs up. For non-square
			// process counts, adjacent ranks pair instead.
			var partner int
			if isSquare(procs) {
				partner = (me%cols)*cols + me/cols
			} else {
				partner = me ^ 1
			}
			if partner >= procs {
				partner = me
			}
			work := mkbuf(512, float64(me))
			// Initialisation: distribute the matrix structure.
			c.Bcast(0, mkbuf(8, 1))
			c.Barrier()
			for it := 0; it < w.outer; it++ {
				for in := 0; in < w.inner; in++ {
					c.Compute(flops)
					touch(work, float64(it*in))
					c.SendrecvN(partner, 1, exchange, partner, 1)
					c.Allreduce([]float64{work[0], work[1]}, mpi.Sum)
				}
				// Residual norm of the outer iteration.
				c.Allreduce([]float64{work[2]}, mpi.Sum)
			}
		},
	}, nil
}
