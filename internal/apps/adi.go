package apps

import (
	"fmt"

	"pas2p/internal/mpi"
)

// adiParams covers the NPB BT and SP pseudo-application classes: 3-D
// grids solved by alternating-direction implicit sweeps over a 2-D
// process decomposition with face exchanges in every direction.
type adiParams struct {
	grid  int // points per dimension
	iters int
	// flopsPerCell calibrates the per-iteration compute declaration.
	flopsPerCell float64
}

var btWorkloads = map[string]adiParams{
	"classA": {grid: 64, iters: 40, flopsPerCell: 6e5},
	"classB": {grid: 102, iters: 40, flopsPerCell: 6e5},
	"classC": {grid: 162, iters: 60, flopsPerCell: 6e5},
	"classD": {grid: 408, iters: 80, flopsPerCell: 2e5},
}

var spWorkloads = map[string]adiParams{
	"classA": {grid: 64, iters: 80, flopsPerCell: 9.1e4},
	"classB": {grid: 102, iters: 80, flopsPerCell: 9.1e4},
	"classC": {grid: 162, iters: 100, flopsPerCell: 9.1e4},
	"classD": {grid: 408, iters: 120, flopsPerCell: 4e4},
}

func init() {
	register(&Spec{
		Name:              "bt",
		Workloads:         []string{"classA", "classB", "classC", "classD"},
		DefaultWorkload:   "classC",
		StateBytesPerRank: 128 << 20,
		Make: func(procs int, workload string) (mpi.App, error) {
			return makeADI("bt", procs, workload, btWorkloads)
		},
	})
	register(&Spec{
		Name:              "sp",
		Workloads:         []string{"classA", "classB", "classC", "classD"},
		DefaultWorkload:   "classC",
		StateBytesPerRank: 112 << 20,
		Make: func(procs int, workload string) (mpi.App, error) {
			return makeADI("sp", procs, workload, spWorkloads)
		},
	})
}

// makeADI builds a BT/SP-style solver: each iteration computes the
// right-hand side, then sweeps the x, y and z directions; each sweep
// exchanges cell faces with the four grid neighbours (the multi-
// partition scheme's pencil handoffs), and the iteration closes with a
// residual reduction every few steps.
func makeADI(name string, procs int, workload string, table map[string]adiParams) (mpi.App, error) {
	w, err := pickWorkload(name, workload, table)
	if err != nil {
		return mpi.App{}, err
	}
	if procs < 4 {
		return mpi.App{}, fmt.Errorf("apps: %s needs at least 4 processes", name)
	}
	rows, cols := grid2D(procs)
	cellsPerProc := float64(w.grid) * float64(w.grid) * float64(w.grid) / float64(procs)
	// A face is grid^2/(process row) cells of 5 solution variables.
	faceBytes := 8 * 5 * w.grid * w.grid / cols
	flops := w.flopsPerCell * cellsPerProc
	return mpi.App{
		Name:  name,
		Procs: procs,
		Body: func(c *mpi.Comm) {
			me := c.Rank()
			r, q := me/cols, me%cols
			north := ((r+rows-1)%rows)*cols + q
			south := ((r+1)%rows)*cols + q
			west := r*cols + (q+cols-1)%cols
			east := r*cols + (q+1)%cols
			work := mkbuf(512, float64(me))
			// Initialise the grid and share solver constants.
			c.Bcast(0, mkbuf(16, 2))
			c.Barrier()
			for it := 0; it < w.iters; it++ {
				// RHS computation.
				c.Compute(flops * 0.4)
				touch(work, float64(it))
				// x-sweep: exchange with east/west.
				c.SendrecvN(east, 10, faceBytes, west, 10)
				c.Compute(flops * 0.2)
				c.SendrecvN(west, 11, faceBytes, east, 11)
				// y-sweep: exchange with north/south.
				c.Compute(flops * 0.2)
				c.SendrecvN(south, 12, faceBytes, north, 12)
				c.Compute(flops * 0.1)
				c.SendrecvN(north, 13, faceBytes, south, 13)
				// z-sweep is process-local in this decomposition.
				c.Compute(flops * 0.1)
				if it%5 == 4 {
					c.Allreduce([]float64{work[0]}, mpi.Sum)
				}
			}
			c.Allreduce([]float64{work[1]}, mpi.Sum)
		},
	}, nil
}
