package apps

import (
	"fmt"
	"strconv"
	"strings"

	"pas2p/internal/mpi"
)

// smgParams models SMG2000, the semicoarsening multigrid solver from
// the ASC Purple suite: V-cycles over a level hierarchy whose halo
// exchanges shrink with each coarsening, plus dot-product reductions
// in the outer CG acceleration. The paper runs "-n 200 solver 3" with
// varying iteration counts.
type smgParams struct {
	n      int // points per dimension per process
	levels int
	cycles int
	flops  float64 // per point per relaxation
}

func init() {
	register(&Spec{
		Name:              "smg2000",
		Workloads:         []string{"-n 200 solver 3", "-n 120 solver 3"},
		DefaultWorkload:   "-n 200 solver 3",
		StateBytesPerRank: 64 << 20,
		Make:              makeSMG,
	})
}

// parseSMGWorkload accepts the paper's command-line style: "-n N
// solver S [iterations I]".
func parseSMGWorkload(workload string) (smgParams, error) {
	w := smgParams{n: 200, levels: 6, cycles: 30, flops: 3.34e4}
	fields := strings.Fields(workload)
	for i := 0; i < len(fields); i++ {
		switch fields[i] {
		case "-n":
			if i+1 >= len(fields) {
				return w, fmt.Errorf("apps: smg2000: -n needs a value")
			}
			n, err := strconv.Atoi(fields[i+1])
			if err != nil || n <= 0 {
				return w, fmt.Errorf("apps: smg2000: bad -n %q", fields[i+1])
			}
			w.n = n
			i++
		case "solver":
			i++ // solver id only selects the preconditioner flavour
		case "iterations", "-iterations":
			if i+1 >= len(fields) {
				return w, fmt.Errorf("apps: smg2000: iterations needs a value")
			}
			it, err := strconv.Atoi(fields[i+1])
			if err != nil || it <= 0 {
				return w, fmt.Errorf("apps: smg2000: bad iterations %q", fields[i+1])
			}
			// The paper's iteration counts (550, 1200) are solver
			// relaxations; ~18 relaxations make one V-cycle here.
			w.cycles = it / 18
			if w.cycles < 5 {
				w.cycles = 5
			}
			i++
		default:
			return w, fmt.Errorf("apps: smg2000: unknown workload token %q", fields[i])
		}
	}
	return w, nil
}

// makeSMG builds the multigrid kernel: every V-cycle descends the
// level hierarchy (halo exchange + relaxation with geometrically
// shrinking sizes), solves the coarsest level under a gather-scatter,
// and ascends again; the cycle ends with the CG dot products.
func makeSMG(procs int, workload string) (mpi.App, error) {
	w, err := parseSMGWorkload(workload)
	if err != nil {
		return mpi.App{}, err
	}
	if procs < 4 {
		return mpi.App{}, fmt.Errorf("apps: smg2000 needs at least 4 processes")
	}
	rows, cols := grid2D(procs)
	pointsPerProc := float64(w.n) * float64(w.n) * float64(w.n)
	return mpi.App{
		Name:  "smg2000",
		Procs: procs,
		Body: func(c *mpi.Comm) {
			me := c.Rank()
			r, q := me/cols, me%cols
			north := ((r+rows-1)%rows)*cols + q
			south := ((r+1)%rows)*cols + q
			west := r*cols + (q+cols-1)%cols
			east := r*cols + (q+1)%cols
			work := mkbuf(256, float64(me))
			c.Bcast(0, mkbuf(8, 6))
			c.Barrier()
			for cyc := 0; cyc < w.cycles; cyc++ {
				// Descend: relax + restrict per level.
				for lvl := 0; lvl < w.levels; lvl++ {
					shrink := 1 << lvl
					halo := 8 * w.n * w.n / cols / shrink
					if halo < 64 {
						halo = 64
					}
					c.Compute(w.flops * pointsPerProc / float64(procs) / float64(shrink*shrink))
					touch(work, float64(cyc*8+lvl))
					c.SendrecvN(east, 40+lvl, halo, west, 40+lvl)
					c.SendrecvN(south, 48+lvl, halo, north, 48+lvl)
				}
				// Coarsest-level solve under a reduction.
				c.Allreduce([]float64{work[0]}, mpi.Sum)
				// Ascend: interpolate + relax per level.
				for lvl := w.levels - 1; lvl >= 0; lvl-- {
					shrink := 1 << lvl
					halo := 8 * w.n * w.n / cols / shrink
					if halo < 64 {
						halo = 64
					}
					c.SendrecvN(west, 56+lvl, halo, east, 56+lvl)
					c.Compute(w.flops * pointsPerProc / float64(procs) / float64(shrink*shrink) / 2)
				}
				// CG acceleration dot products.
				c.Allreduce([]float64{work[1], work[2]}, mpi.Sum)
			}
		},
	}, nil
}
