package apps

import (
	"fmt"

	"pas2p/internal/mpi"
)

// ftParams models NPB FT: a 3-D FFT whose global transpose is one big
// all-to-all per iteration. Few iterations and few events per
// iteration give FT the smallest tracefile and the least
// repetitiveness of the NPB set (the paper's §6 observes its largest
// weight is only ~20, which is what makes its signature-construction
// overhead the worst of Table 9).
type ftParams struct {
	nx, ny, nz   int
	iters        int
	flopsPerCell float64
}

var ftWorkloads = map[string]ftParams{
	"classA": {nx: 256, ny: 256, nz: 128, iters: 6, flopsPerCell: 7200},
	"classB": {nx: 512, ny: 256, nz: 256, iters: 20, flopsPerCell: 7200},
	"classC": {nx: 512, ny: 512, nz: 512, iters: 20, flopsPerCell: 7200},
	"classD": {nx: 2048, ny: 1024, nz: 1024, iters: 25, flopsPerCell: 3600},
}

func init() {
	register(&Spec{
		Name:              "ft",
		Workloads:         []string{"classA", "classB", "classC", "classD"},
		DefaultWorkload:   "classC",
		StateBytesPerRank: 160 << 20,
		Make:              makeFT,
	})
}

// makeFT builds the FFT kernel: per iteration a local 1-D FFT pass,
// the global transpose (all-to-all of the whole local slab), a second
// local pass and the checksum reduction.
func makeFT(procs int, workload string) (mpi.App, error) {
	w, err := pickWorkload("ft", workload, ftWorkloads)
	if err != nil {
		return mpi.App{}, err
	}
	if procs < 2 {
		return mpi.App{}, fmt.Errorf("apps: ft needs at least 2 processes")
	}
	cells := float64(w.nx) * float64(w.ny) * float64(w.nz) / float64(procs)
	flops := w.flopsPerCell * cells
	// The transpose moves the local slab (complex values, 16 B/cell)
	// split across all destinations; the declared block volume is the
	// real one while the in-memory buffer stays miniature.
	blockBytes := int(16 * cells / float64(procs))
	if blockBytes < 8 {
		blockBytes = 8
	}
	slabFloats := 64
	return mpi.App{
		Name:  "ft",
		Procs: procs,
		Body: func(c *mpi.Comm) {
			n := c.Size()
			slab := mkbuf(slabFloats*n, float64(c.Rank()))
			c.Bcast(0, mkbuf(8, 4))
			c.Barrier()
			// Initial forward transform.
			c.Compute(flops)
			for it := 0; it < w.iters; it++ {
				// Evolve + first local FFT pass.
				c.Compute(flops * 0.6)
				touch(slab, float64(it))
				// Global transpose.
				slab = c.AlltoallSized(slab, blockBytes)
				// Second local pass and checksum.
				c.Compute(flops * 0.4)
				c.Allreduce([]float64{slab[0], slab[1]}, mpi.Sum)
			}
		},
	}, nil
}
