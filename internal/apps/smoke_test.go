package apps

import (
	"reflect"
	"testing"
)

// minRanks probes the smallest process count in [2, 8] the app's
// constructor accepts (BT and SP want perfect squares, others accept
// any count from their floor upward).
func minRanks(t *testing.T, name string) int {
	t.Helper()
	for p := 2; p <= 8; p++ {
		if _, err := Make(name, p, smallWorkload[name]); err == nil {
			return p
		}
	}
	t.Fatalf("%s: no valid rank count in [2, 8]", name)
	return 0
}

// TestMinimalRankSmoke: every registered application must produce a
// usable trace at its smallest supported rank count — the floor
// scenario authors and the campaign matrix rely on. Each trace must
// contain real communication (not just compute segments), and a rerun
// under the same configuration must reproduce the event counts
// exactly: the simulator is seeded virtual time, so any drift here is
// nondeterminism leaking into the pipeline.
func TestMinimalRankSmoke(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			procs := minRanks(t, name)
			if procs > 4 && name != "bt" && name != "sp" {
				t.Errorf("%s: minimal rank count %d is suspiciously high", name, procs)
			}
			res, app := runTraced(t, name, procs, smallWorkload[name])
			if app.Procs != procs {
				t.Fatalf("app reports %d procs, want %d", app.Procs, procs)
			}
			st := res.Trace.Stats()
			if st.Events == 0 {
				t.Fatal("trace has no events")
			}
			if st.Sends+st.Recvs+st.Collectives == 0 {
				t.Errorf("trace has no communication events: %+v", st)
			}
			if st.Sends != st.Recvs {
				t.Errorf("unmatched point-to-point traffic: %d sends, %d recvs", st.Sends, st.Recvs)
			}
			if res.Elapsed <= 0 {
				t.Fatalf("elapsed %v", res.Elapsed)
			}

			again, _ := runTraced(t, name, procs, smallWorkload[name])
			if got := again.Trace.Stats(); !reflect.DeepEqual(st, got) {
				t.Errorf("event counts unstable across identical runs:\n%+v\nvs\n%+v", st, got)
			}
			if again.Elapsed != res.Elapsed {
				t.Errorf("virtual makespan unstable: %v vs %v", res.Elapsed, again.Elapsed)
			}
		})
	}
}
