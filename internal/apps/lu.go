package apps

import (
	"fmt"

	"pas2p/internal/mpi"
)

// luParams models NPB LU: an SSOR solver whose lower/upper triangular
// sweeps propagate as a wavefront of many small per-k-plane messages —
// which is why LU produces by far the largest tracefiles in the
// paper's Table 8.
type luParams struct {
	grid         int
	iters        int
	kBlocks      int // pencil handoffs per sweep (NPB sends per k-plane)
	flopsPerCell float64
}

var luWorkloads = map[string]luParams{
	"classA": {grid: 64, iters: 50, kBlocks: 8, flopsPerCell: 5e4},
	"classB": {grid: 102, iters: 60, kBlocks: 12, flopsPerCell: 5e4},
	"classC": {grid: 162, iters: 80, kBlocks: 16, flopsPerCell: 5e4},
	"classD": {grid: 408, iters: 100, kBlocks: 20, flopsPerCell: 1.5e4},
}

func init() {
	register(&Spec{
		Name:              "lu",
		Workloads:         []string{"classA", "classB", "classC", "classD"},
		DefaultWorkload:   "classC",
		StateBytesPerRank: 80 << 20,
		Make:              makeLU,
	})
}

// makeLU builds the SSOR wavefront: every iteration performs a lower
// sweep (receive from north and west, compute the block, send to south
// and east, once per k block) and the mirrored upper sweep, then a
// residual reduction every few iterations. Edge processes skip the
// absent neighbours, so per-process event counts differ — exercising
// the analyzer's handling of ragged traces.
func makeLU(procs int, workload string) (mpi.App, error) {
	w, err := pickWorkload("lu", workload, luWorkloads)
	if err != nil {
		return mpi.App{}, err
	}
	if procs < 4 {
		return mpi.App{}, fmt.Errorf("apps: lu needs at least 4 processes")
	}
	rows, cols := grid2D(procs)
	pencil := 8 * 5 * w.grid / cols * 2 // a k-plane boundary pencil
	cellsPerProc := float64(w.grid) * float64(w.grid) * float64(w.grid) / float64(procs)
	blockFlops := w.flopsPerCell * cellsPerProc / float64(w.kBlocks) / 2
	return mpi.App{
		Name:  "lu",
		Procs: procs,
		Body: func(c *mpi.Comm) {
			me := c.Rank()
			r, q := me/cols, me%cols
			work := mkbuf(256, float64(me))
			c.Bcast(0, mkbuf(8, 3))
			c.Barrier()
			sweep := func(recvA, recvB, sendA, sendB int, tag int) {
				for k := 0; k < w.kBlocks; k++ {
					if recvA >= 0 {
						c.RecvN(recvA, tag)
					}
					if recvB >= 0 {
						c.RecvN(recvB, tag)
					}
					c.Compute(blockFlops)
					touch(work, float64(k))
					if sendA >= 0 {
						c.SendN(sendA, tag, pencil)
					}
					if sendB >= 0 {
						c.SendN(sendB, tag, pencil)
					}
				}
			}
			north, south := -1, -1
			west, east := -1, -1
			if r > 0 {
				north = (r-1)*cols + q
			}
			if r < rows-1 {
				south = (r+1)*cols + q
			}
			if q > 0 {
				west = r*cols + q - 1
			}
			if q < cols-1 {
				east = r*cols + q + 1
			}
			for it := 0; it < w.iters; it++ {
				// Lower-triangular sweep: NW -> SE wavefront.
				sweep(north, west, south, east, 20)
				// Upper-triangular sweep: SE -> NW wavefront.
				sweep(south, east, north, west, 21)
				if it%5 == 4 {
					c.Allreduce([]float64{work[0]}, mpi.Sum)
				}
			}
			c.Allreduce([]float64{work[1]}, mpi.Max)
		},
	}, nil
}
