package apps

import (
	"fmt"
	"strconv"
	"strings"

	"pas2p/internal/mpi"
)

// popParams models the Parallel Ocean Program's characteristic
// two-regime timestep: a compute-heavy baroclinic part with wide halo
// exchanges, and a barotropic solver that performs many latency-bound
// conjugate-gradient iterations, each with a tiny halo update and a
// global dot product. The paper drives it with a synthetic 150-step
// workload.
type popParams struct {
	grid        int
	steps       int
	solverIters int
	flops       float64
}

func init() {
	register(&Spec{
		Name:              "pop",
		Workloads:         []string{"synthetic150", "synthetic60"},
		DefaultWorkload:   "synthetic150",
		StateBytesPerRank: 96 << 20,
		Make:              makePOP,
	})
}

func parsePOPWorkload(workload string) (popParams, error) {
	w := popParams{grid: 384, steps: 150, solverIters: 8, flops: 7.2e4}
	name := strings.TrimSpace(workload)
	if !strings.HasPrefix(name, "synthetic") {
		return w, fmt.Errorf("apps: pop: unknown workload %q (want syntheticN)", workload)
	}
	if rest := strings.TrimPrefix(name, "synthetic"); rest != "" {
		steps, err := strconv.Atoi(rest)
		if err != nil || steps <= 0 {
			return w, fmt.Errorf("apps: pop: bad step count in %q", workload)
		}
		w.steps = steps
	}
	return w, nil
}

// makePOP builds the ocean-model kernel on a 2-D tiling of the globe.
func makePOP(procs int, workload string) (mpi.App, error) {
	w, err := parsePOPWorkload(workload)
	if err != nil {
		return mpi.App{}, err
	}
	if procs < 4 {
		return mpi.App{}, fmt.Errorf("apps: pop needs at least 4 processes")
	}
	rows, cols := grid2D(procs)
	tile := float64(w.grid) * float64(w.grid) / float64(procs)
	wideHalo := 8 * 40 * w.grid / cols // 40 depth levels
	thinHalo := 8 * w.grid / cols      // 2-D barotropic field
	return mpi.App{
		Name:  "pop",
		Procs: procs,
		Body: func(c *mpi.Comm) {
			me := c.Rank()
			r, q := me/cols, me%cols
			north := ((r+rows-1)%rows)*cols + q
			south := ((r+1)%rows)*cols + q
			west := r*cols + (q+cols-1)%cols
			east := r*cols + (q+1)%cols
			work := mkbuf(256, float64(me))
			c.Bcast(0, mkbuf(16, 7))
			c.Barrier()
			for step := 0; step < w.steps; step++ {
				// Baroclinic part: 3-D tracers, wide halos, heavy
				// compute.
				c.Compute(w.flops * tile * 40)
				touch(work, float64(step))
				c.SendrecvN(east, 60, wideHalo, west, 60)
				c.SendrecvN(south, 61, wideHalo, north, 61)
				// Barotropic solver: latency-bound CG iterations.
				for s := 0; s < w.solverIters; s++ {
					c.Compute(w.flops * tile / 20)
					c.SendrecvN(east, 62, thinHalo, west, 62)
					c.SendrecvN(south, 63, thinHalo, north, 63)
					c.Allreduce([]float64{work[s%8]}, mpi.Sum)
				}
				// Energy diagnostics every 10 steps.
				if step%10 == 9 {
					c.Allreduce([]float64{work[0], work[1], work[2]}, mpi.Sum)
				}
			}
		},
	}, nil
}
