package apps

import (
	"fmt"

	"pas2p/internal/mpi"
)

// The remaining NPB kernels, EP and IS, are not part of the paper's
// evaluation but stress two interesting corners of PAS2P: EP has
// almost no communication events (the degenerate low-repetitiveness
// case §6 discusses), and IS is dominated by bucketed all-to-all
// exchanges with data-dependent volumes.

type epParams struct {
	logSamples int // log2 of random pairs generated
	blocks     int // compute blocks (events only at block ends)
}

var epWorkloads = map[string]epParams{
	"classA": {logSamples: 28, blocks: 4},
	"classB": {logSamples: 30, blocks: 4},
	"classC": {logSamples: 32, blocks: 6},
	"classD": {logSamples: 36, blocks: 8},
}

type isParams struct {
	keysPerProc int
	iters       int
}

var isWorkloads = map[string]isParams{
	"classA": {keysPerProc: 1 << 17, iters: 10},
	"classB": {keysPerProc: 1 << 19, iters: 10},
	"classC": {keysPerProc: 1 << 21, iters: 10},
	"classD": {keysPerProc: 1 << 23, iters: 10},
}

func init() {
	register(&Spec{
		Name:              "ep",
		Workloads:         []string{"classA", "classB", "classC", "classD"},
		DefaultWorkload:   "classC",
		StateBytesPerRank: 4 << 20,
		Make:              makeEP,
	})
	register(&Spec{
		Name:              "is",
		Workloads:         []string{"classA", "classB", "classC", "classD"},
		DefaultWorkload:   "classC",
		StateBytesPerRank: 64 << 20,
		Make:              makeIS,
	})
}

// makeEP builds the embarrassingly parallel kernel: long independent
// compute blocks with a single pair of reductions at the end. PAS2P
// finds essentially one phase of weight ~blocks; the signature saves
// little, exactly like the paper's low-repetitiveness cases.
func makeEP(procs int, workload string) (mpi.App, error) {
	w, err := pickWorkload("ep", workload, epWorkloads)
	if err != nil {
		return mpi.App{}, err
	}
	if procs < 2 {
		return mpi.App{}, fmt.Errorf("apps: ep needs at least 2 processes")
	}
	// ~90 flops per random pair (NPB EP's Gaussian rejection loop).
	totalFlops := 90 * float64(int64(1)<<uint(w.logSamples))
	blockFlops := totalFlops / float64(procs) / float64(w.blocks)
	return mpi.App{
		Name:  "ep",
		Procs: procs,
		Body: func(c *mpi.Comm) {
			work := mkbuf(128, float64(c.Rank()))
			c.Bcast(0, mkbuf(4, 10))
			for b := 0; b < w.blocks; b++ {
				c.Compute(blockFlops)
				touch(work, float64(b))
				// Progress heartbeat so phases are observable at all.
				c.Allreduce([]float64{work[0]}, mpi.Sum)
			}
			// Final counts (sx, sy, annulus counts).
			c.Allreduce([]float64{work[0], work[1]}, mpi.Sum)
			c.Allreduce(work[:10], mpi.Sum)
		},
	}, nil
}

// makeIS builds the integer-sort kernel: per iteration a local bucket
// count, an allreduce of bucket sizes, the big all-to-all key
// redistribution, and a local sort.
func makeIS(procs int, workload string) (mpi.App, error) {
	w, err := pickWorkload("is", workload, isWorkloads)
	if err != nil {
		return mpi.App{}, err
	}
	if procs < 2 {
		return mpi.App{}, fmt.Errorf("apps: is needs at least 2 processes")
	}
	keyBytes := 4 * w.keysPerProc / procs // keys sent per destination
	if keyBytes < 8 {
		keyBytes = 8
	}
	// Bucketing + local sort, a few tens of ops per key.
	flops := 60 * float64(w.keysPerProc)
	return mpi.App{
		Name:  "is",
		Procs: procs,
		Body: func(c *mpi.Comm) {
			n := c.Size()
			work := mkbuf(16*n, float64(c.Rank()))
			c.Bcast(0, mkbuf(4, 11))
			c.Barrier()
			for it := 0; it < w.iters; it++ {
				// Local bucket counting.
				c.Compute(flops * 0.3)
				touch(work, float64(it))
				// Bucket-size exchange.
				c.Allreduce(work[:n], mpi.Sum)
				// Key redistribution.
				work = c.AlltoallSized(work, keyBytes)
				// Local ranking.
				c.Compute(flops * 0.7)
			}
			// Full verification at the end.
			c.Allreduce([]float64{work[0]}, mpi.Sum)
		},
	}, nil
}
