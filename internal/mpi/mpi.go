// Package mpi is the message-passing API that applications in this
// repository are written against. It plays the role MPI plays for the
// paper's workloads: point-to-point and collective operations with
// standard semantics, executed on the deterministic simulator of
// package sim over a modelled cluster.
//
// The package also hosts the PAS2P instrumentation boundary. Exactly
// like the original libpas2p intercepting MPI calls via LD_PRELOAD,
// every operation here can be recorded into a trace (with a modelled
// per-event overhead, reproducing the paper's Table 9 instrumented run
// times) and can be intercepted by a controller — the mechanism the
// signature executor uses to fast-forward between phases and measure
// inside them.
package mpi

import (
	"fmt"

	"pas2p/internal/faults"
	"pas2p/internal/machine"
	"pas2p/internal/obs"
	"pas2p/internal/sim"
	"pas2p/internal/trace"
	"pas2p/internal/vtime"
)

// AnySource and AnyTag are wildcards for Recv/Irecv.
const (
	AnySource = sim.AnySource
	AnyTag    = sim.AnyTag
)

// App is a parallel program: Body runs once per rank.
type App struct {
	Name  string
	Procs int
	Body  func(c *Comm)
}

// Interceptor observes every communication operation of one rank; the
// signature executor implements it to drive checkpoint/skip/measure
// modes. Init runs on the rank before any application code, Before
// runs prior to each operation (eventIndex is the index the event will
// get), and After runs once it completed.
type Interceptor interface {
	Init(c *Comm)
	Before(c *Comm, kind trace.Kind, eventIndex int64)
	After(c *Comm, kind trace.Kind, eventIndex int64)
}

// RunConfig configures one execution of an App.
type RunConfig struct {
	// Deployment places the app's ranks on a modelled cluster.
	Deployment *machine.Deployment
	// Trace enables event recording on every rank.
	Trace bool
	// EventOverhead is the virtual CPU cost the instrumentation adds
	// per recorded event (zero when Trace is false).
	EventOverhead vtime.Duration
	// NewInterceptor, if non-nil, supplies a per-rank interceptor.
	NewInterceptor func(rank int) Interceptor
	// NICContention serialises inter-node messages on each node's NIC
	// (see sim.Config.NICContention).
	NICContention bool
	// AlgorithmicCollectives walks real collective algorithms for
	// per-member completion skew (see sim.Config).
	AlgorithmicCollectives bool
	// Observer, when non-nil, forwards run metrics and (optionally) a
	// per-rank virtual-time timeline to the observability layer (see
	// sim.Config.Observer).
	Observer *obs.Observer
	// Faults, when non-nil, injects deterministic message and clock
	// faults into the run (see sim.Config.Faults).
	Faults *faults.Injector
	// TimelinePID and TimelineLabel forward to sim.Config.TimelinePID /
	// TimelineName: a pre-allocated timeline process to reuse, or a
	// label for a fresh one.
	TimelinePID   int
	TimelineLabel string
}

// RunResult reports one execution.
type RunResult struct {
	// Elapsed is the run's virtual makespan (the AET when
	// uninstrumented, the AETPAS2P when traced).
	Elapsed vtime.Duration
	// Trace is the merged event trace (nil unless RunConfig.Trace).
	Trace *trace.Trace
	// Stats are the simulator's traffic counters.
	Stats sim.Result
}

// Run executes the application to completion.
func Run(app App, cfg RunConfig) (*RunResult, error) {
	if app.Procs <= 0 {
		return nil, fmt.Errorf("mpi: app %q has %d procs", app.Name, app.Procs)
	}
	if cfg.Deployment == nil {
		return nil, fmt.Errorf("mpi: app %q: nil deployment", app.Name)
	}
	if cfg.Deployment.Ranks != app.Procs {
		return nil, fmt.Errorf("mpi: app %q wants %d procs but deployment has %d ranks",
			app.Name, app.Procs, cfg.Deployment.Ranks)
	}
	recorders := make([]*trace.Recorder, app.Procs)
	world := worldMembers(app.Procs)
	body := func(p *sim.Proc) {
		c := &Comm{
			p:    p,
			dep:  cfg.Deployment,
			ctx:  0,
			rank: p.Rank(), size: p.Size(),
			members: world,
			st:      &rankState{overhead: cfg.EventOverhead},
		}
		if cfg.Trace {
			rec := trace.NewRecorder(p.Rank())
			recorders[p.Rank()] = rec
			c.st.rec = rec
		}
		if cfg.NewInterceptor != nil {
			c.st.icept = cfg.NewInterceptor(p.Rank())
			c.st.icept.Init(c)
		}
		app.Body(c)
	}
	res, err := sim.Run(sim.Config{
		Deployment: cfg.Deployment, Body: body, Name: app.Name,
		NICContention:          cfg.NICContention,
		AlgorithmicCollectives: cfg.AlgorithmicCollectives,
		Observer:               cfg.Observer,
		Faults:                 cfg.Faults,
		TimelinePID:            cfg.TimelinePID,
		TimelineName:           cfg.TimelineLabel,
	})
	if err != nil {
		return nil, err
	}
	out := &RunResult{Elapsed: vtime.Duration(res.Finish), Stats: res}
	if cfg.Trace {
		streams := make([][]trace.Event, app.Procs)
		for i, r := range recorders {
			if r == nil {
				return nil, fmt.Errorf("mpi: app %q rank %d produced no recorder", app.Name, i)
			}
			streams[i] = r.Events()
		}
		tr, err := trace.NewTrace(app.Name, app.Procs, streams, out.Elapsed)
		if err != nil {
			return nil, err
		}
		out.Trace = tr
	}
	return out, nil
}

func worldMembers(n int) []int {
	m := make([]int, n)
	for i := range m {
		m[i] = i
	}
	return m
}

// Comm is one rank's communicator handle (the world communicator; Split
// derives subsets). All methods must be called from the rank's body.
type Comm struct {
	p          *sim.Proc
	dep        *machine.Deployment
	ctx        int
	rank, size int
	members    []int // world ranks of this communicator's members
	splitCount int

	// st is shared by every communicator of the same rank, so event
	// and send counters are global per process, as the phase table
	// requires.
	st *rankState
}

// rankState is the per-process instrumentation state shared by all of
// a rank's communicators.
type rankState struct {
	rec        *trace.Recorder
	overhead   vtime.Duration
	icept      Interceptor
	eventIndex int64
	sends      int64
}

// Rank returns the caller's rank within this communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in this communicator.
func (c *Comm) Size() int { return c.size }

// WorldRank returns the caller's rank in the world communicator.
func (c *Comm) WorldRank() int { return c.p.Rank() }

// Now returns the rank's current virtual time.
func (c *Comm) Now() vtime.Time { return c.p.Now() }

// EventIndex returns the number of communication events this rank has
// performed so far across all communicators (the replay position used
// by phase boundaries).
func (c *Comm) EventIndex() int64 { return c.st.eventIndex }

// Sends returns the number of send events this rank has performed, the
// counter the paper's phase table is keyed by.
func (c *Comm) Sends() int64 { return c.st.sends }

// Compute performs flops worth of computation: virtual time advances
// by the deployment's machine model for this rank.
func (c *Comm) Compute(flops float64) {
	c.p.Advance(c.dep.ComputeTime(c.p.Rank(), flops))
}

// Elapse advances virtual time by a raw duration (used by the tool
// layers to model restart costs; applications should prefer Compute).
func (c *Comm) Elapse(d vtime.Duration) { c.p.Advance(d) }

// SetMode adjusts operation costing for this rank (tool layers only).
func (c *Comm) SetMode(computeScale float64, commFree bool) {
	c.p.SetMode(sim.Mode{ComputeScale: computeScale, CommFree: commFree})
}

// TimelineOn reports whether this run records a timeline; callers
// guard annotation-string construction with it.
func (c *Comm) TimelineOn() bool { return c.p.TimelineOn() }

// Annotate marks this rank's timeline track with an instant event at
// the current virtual time (no-op without a timeline).
func (c *Comm) Annotate(name string) { c.p.Annotate(name) }

// worldPeer translates a communicator rank to a world rank.
func (c *Comm) worldPeer(r int) int {
	if r == AnySource {
		return AnySource
	}
	if r < 0 || r >= c.size {
		panic(fmt.Sprintf("mpi: rank %d out of range [0,%d)", r, c.size))
	}
	return c.members[r]
}

// commRank translates a world rank back to this communicator's rank.
func (c *Comm) commRank(world int) int {
	if world < 0 {
		return world
	}
	for i, m := range c.members {
		if m == world {
			return i
		}
	}
	return -1
}

func (c *Comm) before(kind trace.Kind) int64 {
	idx := c.st.eventIndex
	if c.st.icept != nil {
		c.st.icept.Before(c, kind, idx)
	}
	if c.st.rec != nil && c.st.overhead > 0 {
		c.p.Advance(c.st.overhead)
	}
	return idx
}

func (c *Comm) after(kind trace.Kind, idx int64) {
	c.st.eventIndex++
	if kind == trace.Send {
		c.st.sends++
	}
	if c.st.icept != nil {
		c.st.icept.After(c, kind, idx)
	}
}

func (c *Comm) recordPtP(info sim.PtPInfo) {
	if c.st.rec == nil {
		return
	}
	kind := trace.Recv
	peer := info.Src
	if info.IsSend {
		kind = trace.Send
		peer = info.Dst
	}
	c.st.rec.Record(trace.Event{
		Kind: kind, Involved: 2, CollOp: -1,
		Peer: int32(peer), Tag: int32(info.Tag), Size: int64(info.Size),
		Enter: info.Start, Exit: info.End,
		RelA: int64(info.Src), RelB: info.SendSeq,
	})
}

func (c *Comm) recordColl(info sim.CollInfo) {
	if c.st.rec == nil {
		return
	}
	c.st.rec.Record(trace.Event{
		Kind: trace.Collective, Involved: int32(len(info.Members)),
		CollOp: int8(info.Op), Peer: -1, Tag: int32(info.Ctx),
		Size:  int64(info.Size),
		Enter: info.Start, Exit: info.End,
		RelA: int64(info.Ctx), RelB: int64(info.Seq),
	})
}

// Send transmits data to dst (communicator rank) and blocks per MPI
// semantics (eager completes locally; large messages rendezvous).
func (c *Comm) Send(dst, tag int, data []float64) {
	idx := c.before(trace.Send)
	payload := append([]float64(nil), data...)
	info := c.p.Send(c.worldPeer(dst), tag, 8*len(data), payload)
	c.recordPtP(info)
	c.after(trace.Send, idx)
}

// SendN transmits size bytes of pattern-only payload.
func (c *Comm) SendN(dst, tag, size int) {
	idx := c.before(trace.Send)
	info := c.p.Send(c.worldPeer(dst), tag, size, nil)
	c.recordPtP(info)
	c.after(trace.Send, idx)
}

// Recv blocks for a matching message and returns its data and source
// (communicator rank).
func (c *Comm) Recv(src, tag int) ([]float64, int) {
	idx := c.before(trace.Recv)
	info := c.p.Recv(c.worldPeer(src), tag)
	c.recordPtP(info)
	c.after(trace.Recv, idx)
	data, _ := info.Payload.([]float64)
	return data, c.commRank(info.Src)
}

// RecvN blocks for a matching pattern-only message, returning its size
// and source.
func (c *Comm) RecvN(src, tag int) (int, int) {
	idx := c.before(trace.Recv)
	info := c.p.Recv(c.worldPeer(src), tag)
	c.recordPtP(info)
	c.after(trace.Recv, idx)
	return info.Size, c.commRank(info.Src)
}

// Request identifies an outstanding nonblocking operation.
type Request struct {
	id   int
	kind trace.Kind
	idx  int64
}

// Isend starts a nonblocking send.
func (c *Comm) Isend(dst, tag int, data []float64) Request {
	idx := c.before(trace.Send)
	payload := append([]float64(nil), data...)
	id := c.p.Isend(c.worldPeer(dst), tag, 8*len(data), payload)
	c.after(trace.Send, idx)
	return Request{id: id, kind: trace.Send, idx: idx}
}

// IsendN starts a nonblocking pattern-only send.
func (c *Comm) IsendN(dst, tag, size int) Request {
	idx := c.before(trace.Send)
	id := c.p.Isend(c.worldPeer(dst), tag, size, nil)
	c.after(trace.Send, idx)
	return Request{id: id, kind: trace.Send, idx: idx}
}

// Irecv posts a nonblocking receive.
func (c *Comm) Irecv(src, tag int) Request {
	idx := c.before(trace.Recv)
	id := c.p.Irecv(c.worldPeer(src), tag)
	c.after(trace.Recv, idx)
	return Request{id: id, kind: trace.Recv, idx: idx}
}

// Wait completes the given requests and returns the received payloads
// (nil entries for sends), in argument order.
func (c *Comm) Wait(reqs ...Request) [][]float64 {
	if len(reqs) == 0 {
		return nil
	}
	ids := make([]int, len(reqs))
	for i, r := range reqs {
		ids[i] = r.id
	}
	infos := c.p.Wait(ids...)
	// Record the batch in canonical order — sends first, then
	// receives, each in request order. Completion order would be
	// machine-dependent (the nondeterminism PAS2P ordering exists to
	// remove), and recording a receive ahead of the batch's sends can
	// create cycles in the logical-ordering traversal when the peer
	// does the same.
	order := make([]int, 0, len(infos))
	for i := range infos {
		if infos[i].IsSend {
			order = append(order, i)
		}
	}
	for i := range infos {
		if !infos[i].IsSend {
			order = append(order, i)
		}
	}
	for _, i := range order {
		c.recordPtP(infos[i])
	}
	out := make([][]float64, len(infos))
	for i, info := range infos {
		if !info.IsSend {
			data, _ := info.Payload.([]float64)
			out[i] = data
		}
	}
	return out
}

// Sendrecv posts a receive, sends, and waits for both — the safe
// symmetric-exchange primitive.
func (c *Comm) Sendrecv(dst, sendTag int, data []float64, src, recvTag int) []float64 {
	r := c.Irecv(src, recvTag)
	s := c.Isend(dst, sendTag, data)
	res := c.Wait(r, s)
	return res[0]
}

// SendrecvN is the pattern-only variant of Sendrecv.
func (c *Comm) SendrecvN(dst, sendTag, sendSize, src, recvTag int) {
	r := c.Irecv(src, recvTag)
	s := c.IsendN(dst, sendTag, sendSize)
	c.Wait(r, s)
}
