package mpi

import (
	"fmt"
	"sort"

	"pas2p/internal/network"
	"pas2p/internal/sim"
	"pas2p/internal/trace"
)

// ReduceOp is an elementwise reduction operator.
type ReduceOp int

const (
	Sum ReduceOp = iota
	Prod
	Max
	Min
)

func (op ReduceOp) apply(acc, x []float64) {
	for i := range acc {
		switch op {
		case Sum:
			acc[i] += x[i]
		case Prod:
			acc[i] *= x[i]
		case Max:
			if x[i] > acc[i] {
				acc[i] = x[i]
			}
		case Min:
			if x[i] < acc[i] {
				acc[i] = x[i]
			}
		}
	}
}

// collective runs one synchronising operation and records its event.
func (c *Comm) collective(op network.CollectiveOp, root, size int, payload any) sim.CollInfo {
	idx := c.before(trace.Collective)
	rootWorld := 0
	if root >= 0 {
		rootWorld = c.worldPeer(root)
	}
	info := c.p.Collective(op, c.ctx, c.members, rootWorld, size, payload)
	c.recordColl(info)
	c.after(trace.Collective, idx)
	return info
}

// Barrier blocks until every member arrives.
func (c *Comm) Barrier() {
	c.collective(network.Barrier, 0, 0, nil)
}

// Bcast distributes root's data to every member and returns it.
func (c *Comm) Bcast(root int, data []float64) []float64 {
	size := 0
	var payload any
	if c.rank == root {
		size = 8 * len(data)
		payload = append([]float64(nil), data...)
	}
	info := c.collective(network.Bcast, root, size, payload)
	res, _ := info.Payloads[c.memberIdx(root)].([]float64)
	return res
}

// Reduce combines every member's data elementwise; the result is
// returned on root (nil elsewhere).
func (c *Comm) Reduce(root int, data []float64, op ReduceOp) []float64 {
	info := c.collective(network.Reduce, root, 8*len(data), append([]float64(nil), data...))
	if c.rank != root {
		return nil
	}
	return combine(info.Payloads, op)
}

// Allreduce combines every member's data elementwise; every member
// gets the result.
func (c *Comm) Allreduce(data []float64, op ReduceOp) []float64 {
	info := c.collective(network.Allreduce, 0, 8*len(data), append([]float64(nil), data...))
	return combine(info.Payloads, op)
}

func combine(payloads []any, op ReduceOp) []float64 {
	var acc []float64
	for _, p := range payloads {
		x, _ := p.([]float64)
		if x == nil {
			continue
		}
		if acc == nil {
			acc = append([]float64(nil), x...)
			continue
		}
		if len(x) != len(acc) {
			panic(fmt.Sprintf("mpi: reduce length mismatch: %d vs %d", len(x), len(acc)))
		}
		op.apply(acc, x)
	}
	return acc
}

// Alltoall exchanges equal blocks: member i's send[j*B:(j+1)*B] lands
// in member j's result block i. len(send) must be a multiple of Size().
func (c *Comm) Alltoall(send []float64) []float64 {
	return c.AlltoallSized(send, 8*len(send)/c.size)
}

// AlltoallSized is Alltoall with an explicit per-destination block
// volume for the cost model, decoupling the modelled message size from
// the (possibly miniature) real buffer.
func (c *Comm) AlltoallSized(send []float64, blockBytes int) []float64 {
	if len(send)%c.size != 0 {
		panic(fmt.Sprintf("mpi: alltoall buffer %d not divisible by %d ranks", len(send), c.size))
	}
	block := len(send) / c.size
	info := c.collective(network.Alltoall, 0, blockBytes, append([]float64(nil), send...))
	out := make([]float64, len(send))
	for i := range info.Payloads {
		src, _ := info.Payloads[i].([]float64)
		if src == nil {
			continue
		}
		copy(out[i*block:(i+1)*block], src[c.rank*block:(c.rank+1)*block])
	}
	return out
}

// Allgather concatenates every member's contribution in rank order.
func (c *Comm) Allgather(data []float64) []float64 {
	info := c.collective(network.Allgather, 0, 8*len(data), append([]float64(nil), data...))
	var out []float64
	for _, p := range info.Payloads {
		x, _ := p.([]float64)
		out = append(out, x...)
	}
	return out
}

// Gather concatenates every member's contribution on root (nil
// elsewhere).
func (c *Comm) Gather(root int, data []float64) []float64 {
	info := c.collective(network.Gather, root, 8*len(data), append([]float64(nil), data...))
	if c.rank != root {
		return nil
	}
	var out []float64
	for _, p := range info.Payloads {
		x, _ := p.([]float64)
		out = append(out, x...)
	}
	return out
}

// Scatter splits root's buffer into Size() equal blocks and returns
// the caller's block.
func (c *Comm) Scatter(root int, data []float64) []float64 {
	var payload any
	size := 0
	if c.rank == root {
		if len(data)%c.size != 0 {
			panic(fmt.Sprintf("mpi: scatter buffer %d not divisible by %d ranks", len(data), c.size))
		}
		size = 8 * len(data) / c.size
		payload = append([]float64(nil), data...)
	}
	info := c.collective(network.Scatter, root, size, payload)
	full, _ := info.Payloads[c.memberIdx(root)].([]float64)
	if full == nil {
		return nil
	}
	block := len(full) / c.size
	return append([]float64(nil), full[c.rank*block:(c.rank+1)*block]...)
}

func (c *Comm) memberIdx(rank int) int {
	if rank < 0 || rank >= c.size {
		panic(fmt.Sprintf("mpi: member rank %d out of range", rank))
	}
	return rank
}

// Split partitions the communicator by color (as MPI_Comm_split with
// key = current rank). Every member must call it; members passing the
// same color form a new communicator ordered by their parent ranks.
// A negative color yields nil (the member joins no new communicator).
func (c *Comm) Split(color int) *Comm {
	// Agree on everyone's color via an allgather on this communicator.
	colors := c.Allgather([]float64{float64(color)})
	// Distinct non-negative colors in sorted order get stable indices.
	distinct := map[int]bool{}
	for _, cf := range colors {
		if cf >= 0 {
			distinct[int(cf)] = true
		}
	}
	var order []int
	for col := range distinct {
		order = append(order, col)
	}
	sort.Ints(order)
	if color < 0 {
		c.splitCount++
		return nil
	}
	colorIdx := sort.SearchInts(order, color)
	var members []int
	var myIdx int
	for r, cf := range colors {
		if int(cf) == color {
			if r == c.rank {
				myIdx = len(members)
			}
			members = append(members, c.members[r])
		}
	}
	ctx := c.ctx*4096 + (c.splitCount+1)*64 + colorIdx + 1
	c.splitCount++
	return &Comm{
		p: c.p, dep: c.dep, ctx: ctx,
		rank: myIdx, size: len(members), members: members,
		st: c.st,
	}
}

// Scan computes the inclusive prefix reduction: member i receives the
// elementwise combination of members 0..i. The cost model treats it
// like a reduction (its communication volume matches).
func (c *Comm) Scan(data []float64, op ReduceOp) []float64 {
	info := c.collective(network.Reduce, 0, 8*len(data), append([]float64(nil), data...))
	var acc []float64
	for i := 0; i <= c.rank; i++ {
		x, _ := info.Payloads[i].([]float64)
		if x == nil {
			continue
		}
		if acc == nil {
			acc = append([]float64(nil), x...)
			continue
		}
		if len(x) != len(acc) {
			panic(fmt.Sprintf("mpi: scan length mismatch: %d vs %d", len(x), len(acc)))
		}
		op.apply(acc, x)
	}
	return acc
}

// ReduceScatter combines every member's buffer elementwise and
// scatters the result: member i receives block i of the combined
// vector. len(data) must be a multiple of Size().
func (c *Comm) ReduceScatter(data []float64, op ReduceOp) []float64 {
	if len(data)%c.size != 0 {
		panic(fmt.Sprintf("mpi: reduce_scatter buffer %d not divisible by %d ranks", len(data), c.size))
	}
	info := c.collective(network.Allreduce, 0, 8*len(data)/c.size, append([]float64(nil), data...))
	acc := combine(info.Payloads, op)
	block := len(acc) / c.size
	return append([]float64(nil), acc[c.rank*block:(c.rank+1)*block]...)
}

// Alltoallv exchanges variable-size blocks: sendCounts[j] elements go
// to member j; the result concatenates every member's block for this
// rank, and the cost model uses the largest per-destination volume.
func (c *Comm) Alltoallv(send []float64, sendCounts []int) []float64 {
	if len(sendCounts) != c.size {
		panic(fmt.Sprintf("mpi: alltoallv needs %d counts, got %d", c.size, len(sendCounts)))
	}
	total, maxBytes := 0, 0
	for _, n := range sendCounts {
		if n < 0 {
			panic("mpi: negative alltoallv count")
		}
		total += n
		if 8*n > maxBytes {
			maxBytes = 8 * n
		}
	}
	if total != len(send) {
		panic(fmt.Sprintf("mpi: alltoallv counts sum to %d, buffer has %d", total, len(send)))
	}
	payload := alltoallvPayload{data: append([]float64(nil), send...), counts: append([]int(nil), sendCounts...)}
	info := c.collective(network.Alltoall, 0, maxBytes, payload)
	var out []float64
	for _, p := range info.Payloads {
		pv, ok := p.(alltoallvPayload)
		if !ok {
			continue
		}
		off := 0
		for j := 0; j < c.rank; j++ {
			off += pv.counts[j]
		}
		out = append(out, pv.data[off:off+pv.counts[c.rank]]...)
	}
	return out
}

// alltoallvPayload carries a variable-block buffer through the engine.
type alltoallvPayload struct {
	data   []float64
	counts []int
}
