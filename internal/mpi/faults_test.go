package mpi

import (
	"testing"

	"pas2p/internal/faults"
)

func newInj(t *testing.T, cfg faults.Config) *faults.Injector {
	t.Helper()
	inj, err := faults.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

func exchangeBody(iters int) func(c *Comm) {
	return func(c *Comm) {
		n := c.Size()
		for i := 0; i < iters; i++ {
			c.Compute(1e4)
			c.SendrecvN((c.Rank()+1)%n, 0, 4096, (c.Rank()+n-1)%n, 0)
			c.Allreduce([]float64{1}, Sum)
		}
	}
}

// TestZeroConfigInjectorIsInert: an injector with every knob at zero
// must leave the run bit-identical to the nil fast path.
func TestZeroConfigInjectorIsInert(t *testing.T) {
	body := exchangeBody(20)
	clean := runApp(t, 4, body, RunConfig{Trace: true})
	inert := runApp(t, 4, body, RunConfig{Trace: true, Faults: newInj(t, faults.Config{Seed: 9})})
	if clean.Elapsed != inert.Elapsed {
		t.Fatalf("zero-config injector changed Elapsed: %v vs %v", inert.Elapsed, clean.Elapsed)
	}
	if len(clean.Trace.Events) != len(inert.Trace.Events) {
		t.Fatal("zero-config injector changed the trace")
	}
	for i := range clean.Trace.Events {
		if clean.Trace.Events[i] != inert.Trace.Events[i] {
			t.Fatalf("event %d differs under zero-config injector", i)
		}
	}
}

// TestMessageFaultsSlowTheRun: certain loss forces every point-to-point
// message through retransmission, so the run must take strictly longer
// — and by at least one full RTO.
func TestMessageFaultsSlowTheRun(t *testing.T) {
	body := exchangeBody(10)
	clean := runApp(t, 4, body, RunConfig{})
	inj := newInj(t, faults.Config{Seed: 1, LossRate: 1})
	faulted := runApp(t, 4, body, RunConfig{Faults: inj})
	rep := inj.Report()
	if rep.MsgLost == 0 {
		t.Fatal("certain loss lost nothing")
	}
	if got := faulted.Elapsed - clean.Elapsed; got < inj.Config().RTO {
		t.Fatalf("loss=1 added only %v, want at least one RTO (%v)", got, inj.Config().RTO)
	}
}

// TestMessageFaultsDeterministic: two runs with independently built
// injectors from the same seed must agree on Elapsed and on the fault
// report; a different seed must disagree on the schedule.
func TestMessageFaultsDeterministic(t *testing.T) {
	body := exchangeBody(15)
	cfg := faults.Config{Seed: 4, LossRate: 0.3, DupRate: 0.2, DelayRate: 0.5, ComputeJitter: 0.02}
	i1, i2 := newInj(t, cfg), newInj(t, cfg)
	r1 := runApp(t, 4, body, RunConfig{Faults: i1})
	r2 := runApp(t, 4, body, RunConfig{Faults: i2})
	if r1.Elapsed != r2.Elapsed {
		t.Fatalf("same seed, different Elapsed: %v vs %v", r1.Elapsed, r2.Elapsed)
	}
	if rep1, rep2 := i1.Report(), i2.Report(); rep1 != rep2 {
		t.Fatalf("same seed, different schedules:\n%+v\n%+v", rep1, rep2)
	}
	cfg.Seed = 5
	i3 := newInj(t, cfg)
	runApp(t, 4, body, RunConfig{Faults: i3})
	if i3.Report() == i1.Report() {
		t.Fatal("different seed reproduced the identical schedule")
	}
}

// TestFaultsPreserveLogicalStructure: faults move physical clocks only;
// the event sequence (kinds, peers, payloads, relations) every rank
// records must be identical to the fault-free run.
func TestFaultsPreserveLogicalStructure(t *testing.T) {
	body := exchangeBody(12)
	clean := runApp(t, 4, body, RunConfig{Trace: true})
	inj := newInj(t, faults.Config{Seed: 8, LossRate: 0.4, DupRate: 0.2, DelayRate: 0.6, ComputeJitter: 0.05})
	faulted := runApp(t, 4, body, RunConfig{Trace: true, Faults: inj})
	if inj.Report().Injected == 0 {
		t.Fatal("schedule injected nothing")
	}
	if len(clean.Trace.Events) != len(faulted.Trace.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(clean.Trace.Events), len(faulted.Trace.Events))
	}
	for i := range clean.Trace.Events {
		a, b := clean.Trace.Events[i], faulted.Trace.Events[i]
		if a.Kind != b.Kind || a.Process != b.Process || a.Peer != b.Peer ||
			a.Tag != b.Tag || a.Size != b.Size || a.RelA != b.RelA || a.RelB != b.RelB {
			t.Fatalf("event %d structure differs under faults:\n%+v\n%+v", i, a, b)
		}
	}
}
