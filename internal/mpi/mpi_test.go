package mpi

import (
	"math"
	"testing"

	"pas2p/internal/machine"
	"pas2p/internal/trace"
	"pas2p/internal/vtime"
)

func deploy(t testing.TB, ranks int) *machine.Deployment {
	t.Helper()
	d, err := machine.NewDeployment(machine.ClusterA(), ranks, machine.MapBlock)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func runApp(t testing.TB, procs int, body func(c *Comm), cfg RunConfig) *RunResult {
	t.Helper()
	cfg.Deployment = deploy(t, procs)
	res, err := Run(App{Name: "test", Procs: procs, Body: body}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunValidation(t *testing.T) {
	app := App{Name: "x", Procs: 2, Body: func(c *Comm) {}}
	if _, err := Run(app, RunConfig{}); err == nil {
		t.Error("nil deployment should fail")
	}
	if _, err := Run(app, RunConfig{Deployment: deploy(t, 3)}); err == nil {
		t.Error("rank count mismatch should fail")
	}
	if _, err := Run(App{Name: "x", Procs: 0}, RunConfig{Deployment: deploy(t, 1)}); err == nil {
		t.Error("zero procs should fail")
	}
}

func TestSendRecvData(t *testing.T) {
	runApp(t, 2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, []float64{1, 2, 3})
		} else {
			data, src := c.Recv(0, 0)
			if src != 0 || len(data) != 3 || data[2] != 3 {
				t.Errorf("recv got %v from %d", data, src)
			}
		}
	}, RunConfig{})
}

func TestSendCopiesData(t *testing.T) {
	// Mutating the buffer after Send must not corrupt the message.
	runApp(t, 2, func(c *Comm) {
		if c.Rank() == 0 {
			buf := []float64{42}
			c.Send(1, 0, buf)
			buf[0] = -1
			c.Send(1, 1, buf)
		} else {
			d1, _ := c.Recv(0, 0)
			if d1[0] != 42 {
				t.Errorf("mutation leaked into message: %v", d1)
			}
			c.Recv(0, 1)
		}
	}, RunConfig{})
}

func TestComputeAdvancesClock(t *testing.T) {
	res := runApp(t, 1, func(c *Comm) {
		c.Compute(1e6)
	}, RunConfig{})
	if res.Elapsed <= 0 {
		t.Error("compute must take time")
	}
}

func TestSendrecvExchange(t *testing.T) {
	runApp(t, 4, func(c *Comm) {
		n := c.Size()
		right := (c.Rank() + 1) % n
		left := (c.Rank() + n - 1) % n
		got := c.Sendrecv(right, 0, []float64{float64(c.Rank())}, left, 0)
		if int(got[0]) != left {
			t.Errorf("rank %d received %v, want %d", c.Rank(), got, left)
		}
	}, RunConfig{})
}

func TestCollectivesData(t *testing.T) {
	runApp(t, 4, func(c *Comm) {
		me := float64(c.Rank())
		sum := c.Allreduce([]float64{me}, Sum)
		if sum[0] != 6 {
			t.Errorf("allreduce sum = %v", sum)
		}
		mx := c.Allreduce([]float64{me}, Max)
		if mx[0] != 3 {
			t.Errorf("allreduce max = %v", mx)
		}
		mn := c.Allreduce([]float64{me + 1}, Min)
		if mn[0] != 1 {
			t.Errorf("allreduce min = %v", mn)
		}
		pr := c.Allreduce([]float64{me + 1}, Prod)
		if pr[0] != 24 {
			t.Errorf("allreduce prod = %v", pr)
		}

		b := c.Bcast(2, []float64{me * 10})
		if b[0] != 20 {
			t.Errorf("bcast = %v, want root 2's 20", b)
		}

		r := c.Reduce(1, []float64{1}, Sum)
		if c.Rank() == 1 {
			if r[0] != 4 {
				t.Errorf("reduce = %v", r)
			}
		} else if r != nil {
			t.Error("reduce must return nil off-root")
		}

		g := c.Gather(0, []float64{me})
		if c.Rank() == 0 {
			for i, v := range g {
				if int(v) != i {
					t.Errorf("gather = %v", g)
					break
				}
			}
		} else if g != nil {
			t.Error("gather must return nil off-root")
		}

		ag := c.Allgather([]float64{me})
		if len(ag) != 4 || ag[3] != 3 {
			t.Errorf("allgather = %v", ag)
		}

		var sc []float64
		if c.Rank() == 3 {
			sc = c.Scatter(3, []float64{0, 10, 20, 30})
		} else {
			sc = c.Scatter(3, nil)
		}
		if len(sc) != 1 || sc[0] != me*10 {
			t.Errorf("scatter = %v, want %v", sc, me*10)
		}
	}, RunConfig{})
}

func TestAlltoallTransposes(t *testing.T) {
	runApp(t, 4, func(c *Comm) {
		n := c.Size()
		send := make([]float64, n)
		for j := range send {
			send[j] = float64(c.Rank()*10 + j)
		}
		got := c.Alltoall(send)
		for i := range got {
			want := float64(i*10 + c.Rank())
			if got[i] != want {
				t.Errorf("rank %d block %d = %v, want %v", c.Rank(), i, got[i], want)
			}
		}
	}, RunConfig{})
}

func TestSplitFormsSubcommunicators(t *testing.T) {
	runApp(t, 6, func(c *Comm) {
		sub := c.Split(c.Rank() % 2)
		if sub.Size() != 3 {
			t.Errorf("split size = %d", sub.Size())
		}
		sum := sub.Allreduce([]float64{float64(c.Rank())}, Sum)
		want := 6.0 // 0+2+4
		if c.Rank()%2 == 1 {
			want = 9.0 // 1+3+5
		}
		if sum[0] != want {
			t.Errorf("rank %d subgroup sum = %v, want %v", c.Rank(), sum, want)
		}
		// Point-to-point within the subcommunicator.
		if sub.Rank() == 0 {
			sub.Send(1, 9, []float64{99})
		} else if sub.Rank() == 1 {
			d, src := sub.Recv(0, 9)
			if d[0] != 99 || src != 0 {
				t.Errorf("sub recv %v from %d", d, src)
			}
		}
	}, RunConfig{})
}

func TestSplitNegativeColor(t *testing.T) {
	runApp(t, 3, func(c *Comm) {
		color := c.Rank()
		if c.Rank() == 2 {
			color = -1
		}
		sub := c.Split(color)
		if c.Rank() == 2 {
			if sub != nil {
				t.Error("negative color should yield nil communicator")
			}
			return
		}
		if sub.Size() != 1 {
			t.Errorf("split size = %d, want 1", sub.Size())
		}
	}, RunConfig{})
}

func TestTraceProduced(t *testing.T) {
	res := runApp(t, 2, func(c *Comm) {
		c.Compute(1e5)
		if c.Rank() == 0 {
			c.Send(1, 0, []float64{1})
		} else {
			c.Recv(0, 0)
		}
		c.Barrier()
	}, RunConfig{Trace: true})
	tr := res.Trace
	if tr == nil {
		t.Fatal("no trace")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	st := tr.Stats()
	if st.Sends != 1 || st.Recvs != 1 || st.Collectives != 2 {
		t.Errorf("stats = %+v", st)
	}
	// Compute time before the first event must be recorded.
	per := tr.PerProcess()
	if per[0][0].ComputeBefore <= 0 {
		t.Error("ComputeBefore missing on first event")
	}
	// Recv must reference its send.
	for _, e := range per[1] {
		if e.Kind == trace.Recv && (e.RelA != 0 || e.RelB != 0) {
			t.Errorf("recv relation = (%d,%d)", e.RelA, e.RelB)
		}
	}
}

func TestInstrumentationOverheadSlowsRun(t *testing.T) {
	body := func(c *Comm) {
		for i := 0; i < 20; i++ {
			c.Compute(1e4)
			if c.Rank() == 0 {
				c.Send(1, 0, []float64{1})
			} else {
				c.Recv(0, 0)
			}
		}
	}
	plain := runApp(t, 2, body, RunConfig{})
	traced := runApp(t, 2, body, RunConfig{Trace: true, EventOverhead: 10 * vtime.Microsecond})
	if traced.Elapsed <= plain.Elapsed {
		t.Errorf("instrumented run %v should exceed plain run %v", traced.Elapsed, plain.Elapsed)
	}
	// Both runs must be deterministic replicas otherwise.
	plain2 := runApp(t, 2, body, RunConfig{})
	if plain2.Elapsed != plain.Elapsed {
		t.Error("plain runs must be deterministic")
	}
}

func TestNonblockingWaitPayloads(t *testing.T) {
	runApp(t, 2, func(c *Comm) {
		if c.Rank() == 0 {
			r := c.Irecv(1, 1)
			s := c.Isend(1, 0, []float64{7})
			res := c.Wait(r, s)
			if res[0][0] != 8 {
				t.Errorf("irecv payload = %v", res[0])
			}
			if res[1] != nil {
				t.Error("send slot must be nil")
			}
		} else {
			r := c.Irecv(0, 0)
			s := c.Isend(0, 1, []float64{8})
			res := c.Wait(r, s)
			if res[0][0] != 7 {
				t.Errorf("irecv payload = %v", res[0])
			}
		}
	}, RunConfig{})
}

func TestTraceMonotoneWithNonblocking(t *testing.T) {
	// Regardless of Wait argument order, recorded events must keep
	// per-process physical-time order.
	res := runApp(t, 2, func(c *Comm) {
		peer := 1 - c.Rank()
		for i := 0; i < 5; i++ {
			s := c.Isend(peer, 0, []float64{1})
			r := c.Irecv(peer, 0)
			c.Wait(s, r) // send first, although recv may start earlier
			c.Compute(1e4)
		}
	}, RunConfig{Trace: true})
	if err := res.Trace.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEventAndSendCounters(t *testing.T) {
	runApp(t, 2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, []float64{1})
			c.SendN(1, 1, 100)
			c.Barrier()
			if c.Sends() != 2 {
				t.Errorf("sends = %d, want 2", c.Sends())
			}
			if c.EventIndex() != 3 {
				t.Errorf("events = %d, want 3", c.EventIndex())
			}
		} else {
			c.Recv(0, 0)
			c.RecvN(0, 1)
			c.Barrier()
			if c.Sends() != 0 {
				t.Errorf("sends = %d, want 0", c.Sends())
			}
			if c.EventIndex() != 3 {
				t.Errorf("events = %d, want 3", c.EventIndex())
			}
		}
	}, RunConfig{})
}

type countingInterceptor struct {
	inited        bool
	before, after int
	kinds         []trace.Kind
}

func (ci *countingInterceptor) Init(c *Comm) { ci.inited = true }

func (ci *countingInterceptor) Before(c *Comm, k trace.Kind, idx int64) {
	ci.before++
	ci.kinds = append(ci.kinds, k)
}
func (ci *countingInterceptor) After(c *Comm, k trace.Kind, idx int64) { ci.after++ }

func TestInterceptorSeesEveryOp(t *testing.T) {
	icepts := make([]*countingInterceptor, 2)
	runApp(t, 2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, []float64{1})
		} else {
			c.Recv(0, 0)
		}
		c.Barrier()
		c.Allreduce([]float64{1}, Sum)
	}, RunConfig{NewInterceptor: func(rank int) Interceptor {
		ci := &countingInterceptor{}
		icepts[rank] = ci
		return ci
	}})
	for r, ci := range icepts {
		if !ci.inited {
			t.Errorf("rank %d interceptor never initialised", r)
		}
		if ci.before != 3 || ci.after != 3 {
			t.Errorf("rank %d interceptor saw %d/%d ops, want 3/3", r, ci.before, ci.after)
		}
	}
	if icepts[0].kinds[0] != trace.Send || icepts[1].kinds[0] != trace.Recv {
		t.Error("interceptor kinds wrong")
	}
}

func TestModeSwitchThroughComm(t *testing.T) {
	res := runApp(t, 1, func(c *Comm) {
		c.SetMode(0, true)
		c.Compute(1e9)
		c.SetMode(1, false)
		c.Compute(1e6)
	}, RunConfig{})
	// Only the 1e6 flops tail should cost time: ~0.5ms on cluster A,
	// far below the ~0.5s the skipped part would cost.
	if res.Elapsed > vtime.FromSeconds(0.01) {
		t.Errorf("elapsed = %v; free mode did not skip the prefix", res.Elapsed)
	}
}

func TestDifferentClustersDifferentTimes(t *testing.T) {
	// A communication-dominated cross-node exchange: InfiniBand
	// (cluster C) must beat Gigabit Ethernet (cluster A) even though
	// C's fuller nodes contend more on memory.
	body := func(c *Comm) {
		for i := 0; i < 10; i++ {
			c.Compute(1e5)
			peer := (c.Rank() + 32) % 64
			c.Sendrecv(peer, 0, make([]float64, 32768), peer, 0)
		}
	}
	times := map[string]vtime.Duration{}
	for _, cl := range []*machine.Cluster{machine.ClusterA(), machine.ClusterC()} {
		d, err := machine.NewDeployment(cl, 64, machine.MapBlock)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(App{Name: "xc", Procs: 64, Body: body}, RunConfig{Deployment: d})
		if err != nil {
			t.Fatal(err)
		}
		times[cl.Name] = res.Elapsed
	}
	if times["Cluster C"] >= times["Cluster A"] {
		t.Errorf("cluster C (IB, faster mem) = %v should beat cluster A (GigE) = %v",
			times["Cluster C"], times["Cluster A"])
	}
}

func TestReduceNaNSafety(t *testing.T) {
	// NaNs flow through reductions without breaking determinism.
	runApp(t, 2, func(c *Comm) {
		v := []float64{1}
		if c.Rank() == 0 {
			v[0] = math.NaN()
		}
		got := c.Allreduce(v, Sum)
		if !math.IsNaN(got[0]) {
			t.Errorf("NaN should propagate, got %v", got)
		}
	}, RunConfig{})
}

func TestScan(t *testing.T) {
	runApp(t, 4, func(c *Comm) {
		got := c.Scan([]float64{float64(c.Rank() + 1)}, Sum)
		// Inclusive prefix of 1,2,3,4.
		want := []float64{1, 3, 6, 10}[c.Rank()]
		if got[0] != want {
			t.Errorf("rank %d scan = %v, want %v", c.Rank(), got[0], want)
		}
	}, RunConfig{})
}

func TestReduceScatter(t *testing.T) {
	runApp(t, 4, func(c *Comm) {
		n := c.Size()
		buf := make([]float64, n)
		for i := range buf {
			buf[i] = float64(i)
		}
		got := c.ReduceScatter(buf, Sum)
		// Every member contributed [0,1,2,3]; block i of the sum is 4*i.
		if len(got) != 1 || got[0] != float64(4*c.Rank()) {
			t.Errorf("rank %d reduce_scatter = %v", c.Rank(), got)
		}
	}, RunConfig{})
}

func TestAlltoallv(t *testing.T) {
	runApp(t, 3, func(c *Comm) {
		me := c.Rank()
		// Member i sends i+1 copies of its rank to everyone.
		counts := []int{me + 1, me + 1, me + 1}
		send := make([]float64, 3*(me+1))
		for i := range send {
			send[i] = float64(me)
		}
		got := c.Alltoallv(send, counts)
		// Receives 1 copy of 0, 2 copies of 1, 3 copies of 2.
		want := []float64{0, 1, 1, 2, 2, 2}
		if len(got) != len(want) {
			t.Fatalf("rank %d alltoallv len = %d, want %d", me, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("rank %d alltoallv = %v", me, got)
			}
		}
	}, RunConfig{})
}

func TestAlltoallvValidation(t *testing.T) {
	// The rank panics inside the engine, which surfaces as a run error.
	_, err := Run(App{Name: "badv", Procs: 2, Body: func(c *Comm) {
		c.Alltoallv([]float64{1}, []int{5, 5})
	}}, RunConfig{Deployment: deploy(t, 2)})
	if err == nil {
		t.Error("mismatched counts should fail the run")
	}
}
