package predict

import (
	"fmt"
	"testing"

	"pas2p/internal/machine"
	"pas2p/internal/vtime"
)

// peteCeilings is the golden accuracy table: each workload's prediction
// error on cluster C with base == target (so PETE isolates the
// signature methodology — phase extraction, warm-occurrence pair
// measurement, Equation (1) — from any cross-machine modelling error)
// must stay under its recorded ceiling. The ceilings sit a comfortable
// margin above today's measured PETE, so they catch methodology
// regressions without flaking on benign drift.
//
// lu is the reason this table exists: its SSOR wavefront pipelines
// phase occurrences, and before the pair-bias (ETScale) correction its
// classD/128 PETE was 14.3% — the lone outlier against siblings all
// under 2%. The lu rows are the regression net keeping that fixed.
var peteCeilings = []struct {
	app, workload string
	procs         int
	ceiling       float64 // percent
	slow          bool    // skipped under -short
}{
	{"cg", "classB", 64, 1.5, false}, // measured 0.573%
	{"bt", "classB", 64, 3.0, false}, // measured 1.750%
	{"sp", "classB", 64, 3.0, false}, // measured 1.875%
	{"ft", "classB", 64, 1.0, false}, // measured 0.000%
	{"lu", "classB", 64, 5.0, false}, // measured 3.833%
	{"lu", "classD", 128, 3.0, true}, // measured 2.374% (14.299% before ETScale)
}

// TestPETECeilings pins per-application prediction-error ceilings.
func TestPETECeilings(t *testing.T) {
	cl := machine.ByName("C")
	for _, tc := range peteCeilings {
		tc := tc
		t.Run(fmt.Sprintf("%s-%s-%d", tc.app, tc.workload, tc.procs), func(t *testing.T) {
			if tc.slow && testing.Short() {
				t.Skip("large workload skipped under -short")
			}
			d := dep(t, cl, tc.procs)
			out, err := Run(Experiment{
				App:           mkApp(t, tc.app, tc.procs, tc.workload),
				Base:          d,
				Target:        d,
				EventOverhead: 8 * vtime.Microsecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			if out.PETEPercent > tc.ceiling {
				t.Errorf("PETE %.3f%% exceeds ceiling %.1f%% (PET %v vs AET %v)",
					out.PETEPercent, tc.ceiling, out.PET, out.AETTarget)
			}
		})
	}
}
