// Package predict drives the paper's experimental methodology
// (Fig. 12): instrument the application on a base machine, analyse the
// trace into phases, construct the signature, execute it on a target
// machine to obtain the predicted execution time (PET), run the full
// application on the target for the ground-truth AET, and report the
// prediction error (PETE) together with every tool-performance metric
// of Tables 8 and 9 (tracefile size, analysis time, construction time,
// signature execution time, instrumentation overhead).
//
// It also implements the partial-execution baseline of Yang et al.
// [17], which the ablation benchmarks compare PAS2P against.
package predict

import (
	"fmt"
	"sort"
	"time"

	"pas2p/internal/faults"
	"pas2p/internal/logical"
	"pas2p/internal/machine"
	"pas2p/internal/mpi"
	"pas2p/internal/obs"
	"pas2p/internal/phase"
	"pas2p/internal/signature"
	"pas2p/internal/trace"
	"pas2p/internal/vtime"
)

// Experiment is one base-to-target validation run.
type Experiment struct {
	App    mpi.App
	Base   *machine.Deployment
	Target *machine.Deployment
	// EventOverhead is the per-event instrumentation cost charged
	// during the traced run (Table 9's AETPAS2P).
	EventOverhead vtime.Duration
	// PhaseConfig defaults to phase.DefaultConfig() when zero.
	PhaseConfig phase.Config
	// Signature defaults to signature.DefaultOptions() when zero.
	Signature signature.Options
	// WarmOccurrence designates which phase occurrence is
	// checkpointed (default 1, the second).
	WarmOccurrence int
	// SkipTargetAET skips the ground-truth full run on the target
	// (PETE is then reported as NaN); used when only SET/PET matter.
	SkipTargetAET bool
	// NICContention enables per-node NIC serialisation in every run of
	// the experiment (base, target, signature).
	NICContention bool
	// AlgorithmicCollectives costs collectives by their real algorithm
	// rounds in every run of the experiment.
	AlgorithmicCollectives bool
	// Observer, when non-nil, records a span per pipeline stage plus
	// sim counters, and — when it carries a timeline — rank tracks for
	// the traced base run (with phase-boundary instants added after
	// extraction) and the signature execution. Auxiliary runs (base,
	// construction, target ground truth) report metrics only.
	Observer *obs.Observer
	// Faults, when non-nil, injects deterministic faults into the
	// instrumented base run and the signature pipeline (construction and
	// execution): message loss/duplication/delay, restart crashes with
	// bounded retries, and clock jitter. The uninstrumented base run and
	// the target ground-truth run stay fault-free — they are the
	// references the faulted prediction is judged against. Unrecovered
	// crashes degrade the prediction to the surviving phases (Degraded /
	// LostPhases in the Outcome).
	Faults *faults.Injector
}

// Outcome carries everything the paper's tables report.
type Outcome struct {
	// Analysis-side metrics (base machine).
	AETBase   vtime.Duration // uninstrumented base run
	AETPAS2P  vtime.Duration // instrumented base run
	TFSize    int64          // tracefile size in bytes
	TFAT      time.Duration  // wall-clock tracefile analysis time
	Total     int            // total phases found
	Relevant  int            // relevant phases
	SCT       vtime.Duration // signature construction time
	Table     *phase.Table
	Signature *signature.Signature

	// Prediction-side metrics (target machine).
	SET       vtime.Duration
	PET       vtime.Duration
	AETTarget vtime.Duration
	Phases    []signature.PhaseMeasurement

	// Derived report columns.
	PETEPercent     float64 // 100·|PET-AET|/AET
	SETvsAETPercent float64 // 100·SET/AET
	OverheadFactor  float64 // Table 9: (AETPAS2P+TFAT+SCT+SET)/AET

	// Degradation under injected faults: phases abandoned after
	// unrecovered restart crashes, missing from PET.
	Degraded   bool
	LostPhases []int
}

// Run executes the full Fig. 12 loop.
func Run(e Experiment) (*Outcome, error) {
	if e.App.Body == nil {
		return nil, fmt.Errorf("predict: experiment has no application")
	}
	if e.Base == nil || e.Target == nil {
		return nil, fmt.Errorf("predict: experiment needs base and target deployments")
	}
	if e.PhaseConfig == (phase.Config{}) {
		e.PhaseConfig = phase.DefaultConfig()
	}
	if e.Signature == (signature.Options{}) {
		e.Signature = signature.DefaultOptions()
	}
	e.Signature.NICContention = e.Signature.NICContention || e.NICContention
	e.Signature.AlgorithmicCollectives = e.Signature.AlgorithmicCollectives || e.AlgorithmicCollectives
	o := e.Observer
	e.PhaseConfig.Observer = o
	e.Signature.Observer = o
	// Set after the zero-value check above so a default Options still
	// compares equal to signature.Options{} when no faults are injected.
	if e.Faults != nil {
		e.Signature.Faults = e.Faults
		e.Faults.SetObserver(o)
	}
	warmOcc := e.WarmOccurrence
	if warmOcc == 0 {
		warmOcc = 1
	}
	out := &Outcome{}

	// 1. Uninstrumented base run: the AET reference for relevance and
	//    overhead accounting.
	sp := o.StartSpan("predict.base_run")
	plain, err := mpi.Run(e.App, mpi.RunConfig{Deployment: e.Base,
		NICContention: e.NICContention, AlgorithmicCollectives: e.AlgorithmicCollectives,
		Observer: o.MetricsOnly()})
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("predict: base run: %w", err)
	}
	out.AETBase = plain.Elapsed

	// 2. Instrumented base run: produces the tracefile. Its timeline
	//    process is pre-allocated so the phase boundaries — known only
	//    after extraction — can be added to the same tracks.
	tracedPID := 0
	if tl := o.TL(); tl != nil {
		tracedPID = tl.NewProcess(fmt.Sprintf("trace:%s (%d ranks)", e.App.Name, e.App.Procs))
	}
	sp = o.StartSpan("predict.traced_run")
	traced, err := mpi.Run(e.App, mpi.RunConfig{
		Deployment: e.Base, Trace: true, EventOverhead: e.EventOverhead,
		NICContention: e.NICContention, AlgorithmicCollectives: e.AlgorithmicCollectives,
		Observer: o, TimelinePID: tracedPID,
		Faults: e.Faults,
	})
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("predict: instrumented run: %w", err)
	}
	out.AETPAS2P = traced.Elapsed
	out.TFSize = trace.EncodedSize(traced.Trace)

	// 3. Analysis: logical ordering, phase extraction, phase table.
	//    TFAT is the real tool time this takes. Extraction records its
	//    own "phase.extract" span through PhaseConfig.Observer.
	t0 := time.Now()
	sp = o.StartSpan("predict.order")
	l, err := logical.Order(traced.Trace)
	if err != nil {
		sp.End()
		return nil, fmt.Errorf("predict: ordering: %w", err)
	}
	sp.SetCounter("events", int64(len(traced.Trace.Events)))
	sp.SetCounter("ticks", int64(l.NumTicks()))
	sp.End()
	an, err := phase.Extract(l, e.PhaseConfig)
	if err != nil {
		return nil, fmt.Errorf("predict: extraction: %w", err)
	}
	sp = o.StartSpan("predict.table")
	tb, err := an.BuildTable(warmOcc)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("predict: table: %w", err)
	}
	out.TFAT = time.Since(t0)
	out.Total = tb.TotalPhases
	out.Relevant = len(tb.RelevantRows())
	out.Table = tb
	emitPhaseBoundaries(o.TL(), tracedPID, an)

	// 4. Signature construction on the base machine (records its own
	//    "signature.build" span via Options.Observer).
	br, err := signature.Build(e.App, tb, e.Base, e.Signature)
	if err != nil {
		return nil, fmt.Errorf("predict: build: %w", err)
	}
	out.SCT = br.SCT
	out.Signature = br.Signature

	// 5. Signature execution on the target machine (records its own
	//    "signature.execute" span, with rank tracks when tracing).
	res, err := br.Signature.Execute(e.Target)
	if err != nil {
		return nil, fmt.Errorf("predict: execute: %w", err)
	}
	out.SET = res.SET
	out.PET = res.PET
	out.Phases = res.Phases
	out.Degraded = res.Degraded
	out.LostPhases = res.LostPhases

	// 6. Ground truth on the target.
	if !e.SkipTargetAET {
		sp = o.StartSpan("predict.target_run")
		full, err := mpi.Run(e.App, mpi.RunConfig{Deployment: e.Target,
			NICContention: e.NICContention, AlgorithmicCollectives: e.AlgorithmicCollectives,
			Observer: o.MetricsOnly()})
		sp.End()
		if err != nil {
			return nil, fmt.Errorf("predict: target run: %w", err)
		}
		out.AETTarget = full.Elapsed
		out.PETEPercent = 100 * abs(out.PET.Seconds()-out.AETTarget.Seconds()) / out.AETTarget.Seconds()
		out.SETvsAETPercent = 100 * out.SET.Seconds() / out.AETTarget.Seconds()
	}

	// Table 9's overhead factor over the base AET. The paper's TFAT is
	// tool wall time; ours is real seconds against virtual app seconds,
	// and is typically negligible at these scales.
	out.OverheadFactor = (out.AETPAS2P.Seconds() + out.TFAT.Seconds() +
		out.SCT.Seconds() + out.SET.Seconds()) / out.AETBase.Seconds()
	e.Faults.Publish(o.Reg())
	return out, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// emitPhaseBoundaries marks each phase occurrence's start on the traced
// run's timeline. Occurrence durations tile the run (they are deltas of
// the physical completion cuts), so the running sum over occurrences in
// StartTick order is each occurrence's start on the traced run's
// virtual clock.
func emitPhaseBoundaries(tl *obs.Timeline, pid int, an *phase.Analysis) {
	if tl == nil || pid == 0 {
		return
	}
	type occ struct {
		id  int
		dur vtime.Duration
		at  int
	}
	var occs []occ
	for _, p := range an.Phases {
		for _, oc := range p.Occurrences {
			occs = append(occs, occ{id: p.ID, dur: oc.Dur, at: oc.StartTick})
		}
	}
	sort.Slice(occs, func(i, j int) bool { return occs[i].at < occs[j].at })
	var t vtime.Duration
	for _, oc := range occs {
		tl.Instant(pid, 0, fmt.Sprintf("phase %d", oc.id), float64(t)/1e3)
		t += oc.dur
	}
}
