package predict

import (
	"testing"

	"pas2p/internal/apps"
	"pas2p/internal/checkpoint"
	"pas2p/internal/machine"
	"pas2p/internal/mpi"
	"pas2p/internal/signature"
	"pas2p/internal/vtime"
)

func lightSig() signature.Options {
	o := signature.DefaultOptions()
	o.Checkpoint = checkpoint.CostModel{
		SnapshotBase: 500 * vtime.Microsecond,
		RestartBase:  800 * vtime.Microsecond,
		SnapshotRate: 400e6, RestoreRate: 600e6,
	}
	o.StateBytesPerRank = 4 << 20
	return o
}

func dep(t testing.TB, cl *machine.Cluster, n int) *machine.Deployment {
	t.Helper()
	d, err := machine.NewDeployment(cl, n, machine.MapBlock)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func mkApp(t testing.TB, name string, procs int, workload string) mpi.App {
	t.Helper()
	app, err := apps.Make(name, procs, workload)
	if err != nil {
		t.Fatal(err)
	}
	return app
}

func TestFullExperimentCG(t *testing.T) {
	app := mkApp(t, "cg", 8, "classA")
	out, err := Run(Experiment{
		App:           app,
		Base:          dep(t, machine.ClusterA(), 8),
		Target:        dep(t, machine.ClusterB(), 8),
		EventOverhead: 5 * vtime.Microsecond,
		Signature:     lightSig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.AETBase <= 0 || out.AETTarget <= 0 {
		t.Fatal("AETs must be positive")
	}
	if out.AETPAS2P <= out.AETBase {
		t.Error("instrumented run must be slower than plain run")
	}
	if out.TFSize <= 0 || out.TFAT <= 0 {
		t.Error("tracefile metrics missing")
	}
	if out.Total < out.Relevant || out.Relevant < 1 {
		t.Errorf("phases: total %d relevant %d", out.Total, out.Relevant)
	}
	if out.SCT <= 0 {
		t.Error("SCT missing")
	}
	if out.PETEPercent > 15 {
		t.Errorf("PETE %.2f%% too high (PET %v vs AET %v)", out.PETEPercent, out.PET, out.AETTarget)
	}
	if out.SETvsAETPercent >= 100 {
		t.Errorf("SET/AET %.1f%%: signature not shorter than the app", out.SETvsAETPercent)
	}
	if out.OverheadFactor < 1 {
		t.Errorf("overhead factor %.2f must exceed 1", out.OverheadFactor)
	}
}

func TestExperimentValidation(t *testing.T) {
	app := mkApp(t, "cg", 8, "classA")
	if _, err := Run(Experiment{App: app}); err == nil {
		t.Error("missing deployments should fail")
	}
	if _, err := Run(Experiment{Base: dep(t, machine.ClusterA(), 8), Target: dep(t, machine.ClusterB(), 8)}); err == nil {
		t.Error("missing app should fail")
	}
}

func TestSkipTargetAET(t *testing.T) {
	app := mkApp(t, "cg", 8, "classA")
	out, err := Run(Experiment{
		App:           app,
		Base:          dep(t, machine.ClusterA(), 8),
		Target:        dep(t, machine.ClusterA(), 8),
		Signature:     lightSig(),
		SkipTargetAET: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.AETTarget != 0 || out.PETEPercent != 0 {
		t.Error("skipped target AET should leave ground-truth fields zero")
	}
	if out.PET <= 0 {
		t.Error("PET must still be produced")
	}
}

func TestPartialExecBaseline(t *testing.T) {
	app := mkApp(t, "cg", 8, "classA")
	base := dep(t, machine.ClusterA(), 8)
	target := dep(t, machine.ClusterB(), 8)

	// Event totals from a base-machine trace.
	traced, err := mpi.Run(app, mpi.RunConfig{Deployment: base, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	totals := make([]int64, app.Procs)
	for p, evs := range traced.Trace.PerProcess() {
		totals[p] = int64(len(evs))
	}
	full, err := mpi.Run(app, mpi.RunConfig{Deployment: target})
	if err != nil {
		t.Fatal(err)
	}

	res, err := DefaultPartialExec().Predict(app, target, totals)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost >= full.Elapsed {
		t.Errorf("partial execution cost %v should undercut the full run %v", res.Cost, full.Elapsed)
	}
	// CG is uniform, so linear extrapolation should land near truth.
	pete := 100 * abs(res.PET.Seconds()-full.Elapsed.Seconds()) / full.Elapsed.Seconds()
	if pete > 25 {
		t.Errorf("partial-exec PETE %.2f%% unreasonably bad for a uniform app", pete)
	}
}

func TestPartialExecValidation(t *testing.T) {
	app := mkApp(t, "cg", 8, "classA")
	target := dep(t, machine.ClusterA(), 8)
	if _, err := (PartialExec{InitFraction: -1, ObserveFraction: 0.1}).Predict(app, target, make([]int64, 8)); err == nil {
		t.Error("negative init fraction should fail")
	}
	if _, err := (PartialExec{InitFraction: 0.5, ObserveFraction: 0.6}).Predict(app, target, make([]int64, 8)); err == nil {
		t.Error("fractions over 1 should fail")
	}
	if _, err := DefaultPartialExec().Predict(app, target, make([]int64, 3)); err == nil {
		t.Error("wrong totals length should fail")
	}
}

// TestPAS2PBeatsPartialOnShiftingApps demonstrates the paper's claim
// that analysing the whole execution beats extrapolating from an early
// window when behaviour changes over time.
func TestPAS2PBeatsPartialOnShiftingApps(t *testing.T) {
	// An app whose later iterations are 3x heavier than its early
	// ones: early-window extrapolation must undershoot badly.
	app := mpi.App{
		Name:  "shifting",
		Procs: 8,
		Body: func(c *mpi.Comm) {
			n := c.Size()
			for i := 0; i < 60; i++ {
				weight := 1.0
				if i >= 20 {
					weight = 3.0
				}
				c.Compute(3e6 * weight)
				c.SendrecvN((c.Rank()+1)%n, 0, 2048, (c.Rank()+n-1)%n, 0)
				c.Allreduce([]float64{1}, mpi.Sum)
			}
		},
	}
	base := dep(t, machine.ClusterA(), 8)
	target := dep(t, machine.ClusterB(), 8)
	full, err := mpi.Run(app, mpi.RunConfig{Deployment: target})
	if err != nil {
		t.Fatal(err)
	}

	out, err := Run(Experiment{App: app, Base: base, Target: target, Signature: lightSig()})
	if err != nil {
		t.Fatal(err)
	}

	traced, err := mpi.Run(app, mpi.RunConfig{Deployment: base, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	totals := make([]int64, app.Procs)
	for p, evs := range traced.Trace.PerProcess() {
		totals[p] = int64(len(evs))
	}
	pres, err := DefaultPartialExec().Predict(app, target, totals)
	if err != nil {
		t.Fatal(err)
	}
	partialPETE := 100 * abs(pres.PET.Seconds()-full.Elapsed.Seconds()) / full.Elapsed.Seconds()
	if out.PETEPercent >= partialPETE {
		t.Errorf("PAS2P PETE %.2f%% should beat partial-exec PETE %.2f%% on shifting behaviour",
			out.PETEPercent, partialPETE)
	}
	if partialPETE < 20 {
		t.Errorf("partial exec PETE %.2f%%: the shifting app should fool it", partialPETE)
	}
}

func TestSpeedRatioValidation(t *testing.T) {
	if _, err := (SpeedRatio{}).Predict(1, nil, nil); err == nil {
		t.Error("nil deployments should fail")
	}
	a := dep(t, machine.ClusterA(), 8)
	b := dep(t, machine.ClusterB(), 4)
	if _, err := (SpeedRatio{}).Predict(1, a, b); err == nil {
		t.Error("rank mismatch should fail")
	}
}

// TestSpeedRatioBlindToNetwork shows the baseline's failure mode: a
// communication-heavy app moving from GigE to InfiniBand speeds up far
// more than the compute-rate ratio predicts, while PAS2P's measured
// phases capture it.
func TestSpeedRatioBlindToNetwork(t *testing.T) {
	commHeavy := mpi.App{
		Name:  "commheavy",
		Procs: 16,
		Body: func(c *mpi.Comm) {
			n := c.Size()
			for i := 0; i < 40; i++ {
				c.Compute(2e5)
				peer := (c.Rank() + n/2) % n
				c.SendrecvN(peer, 0, 48<<10, peer, 0)
				c.Allreduce([]float64{1}, mpi.Sum)
			}
		},
	}
	base := dep(t, machine.ClusterA(), 16)
	target := dep(t, machine.ClusterC(), 16)

	full, err := mpi.Run(commHeavy, mpi.RunConfig{Deployment: base})
	if err != nil {
		t.Fatal(err)
	}
	truth, err := mpi.Run(commHeavy, mpi.RunConfig{Deployment: target})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := (SpeedRatio{}).Predict(full.Elapsed, base, target)
	if err != nil {
		t.Fatal(err)
	}
	naivePETE := 100 * abs(naive.Seconds()-truth.Elapsed.Seconds()) / truth.Elapsed.Seconds()

	out, err := Run(Experiment{App: commHeavy, Base: base, Target: target, Signature: lightSig()})
	if err != nil {
		t.Fatal(err)
	}
	if out.PETEPercent >= naivePETE {
		t.Errorf("PAS2P PETE %.2f%% should beat speed-ratio PETE %.2f%% on a comm-heavy app",
			out.PETEPercent, naivePETE)
	}
	if naivePETE < 25 {
		t.Errorf("speed ratio PETE %.2f%%: the network shift should fool it", naivePETE)
	}
}
