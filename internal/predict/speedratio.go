package predict

import (
	"fmt"

	"pas2p/internal/machine"
	"pas2p/internal/vtime"
)

// SpeedRatio is the naive analytical baseline: scale the base-machine
// AET by the ratio of the machines' effective compute rates. It costs
// nothing — no run on the target at all — but it is blind to the
// communication mix, so it mispredicts whenever the network matters
// (the gap PAS2P's measured phases close).
type SpeedRatio struct{}

// Predict scales aetBase by the mean effective per-rank compute rate
// ratio between the two deployments.
func (SpeedRatio) Predict(aetBase vtime.Duration, base, target *machine.Deployment) (vtime.Duration, error) {
	if base == nil || target == nil {
		return 0, fmt.Errorf("predict: speed ratio needs both deployments")
	}
	if base.Ranks != target.Ranks {
		return 0, fmt.Errorf("predict: speed ratio needs equal rank counts (%d vs %d)", base.Ranks, target.Ranks)
	}
	br := meanRate(base)
	tr := meanRate(target)
	if br <= 0 || tr <= 0 {
		return 0, fmt.Errorf("predict: degenerate compute rates")
	}
	return vtime.Duration(float64(aetBase) * br / tr), nil
}

// meanRate is the mean effective flops rate across ranks (the inverse
// of the per-flop compute time the machine model charges).
func meanRate(d *machine.Deployment) float64 {
	var sum float64
	for r := 0; r < d.Ranks; r++ {
		ns := d.ComputeTime(r, 1e6) // ns for 1e6 flops
		if ns <= 0 {
			continue
		}
		sum += 1e6 / float64(ns) // flops per ns
	}
	return sum / float64(d.Ranks)
}
