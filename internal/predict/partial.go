package predict

import (
	"fmt"

	"pas2p/internal/machine"
	"pas2p/internal/mpi"
	"pas2p/internal/trace"
	"pas2p/internal/vtime"
)

// PartialExec is the related-work baseline of Yang et al. [17]:
// observe a window of early timesteps on the target machine and
// extrapolate linearly, assuming the application "behaves predictably
// after an algorithm initialization period". PAS2P's advantage (§2) is
// analysing the entire execution; the ablation benchmarks quantify the
// difference on applications whose behaviour shifts over time.
type PartialExec struct {
	// InitFraction of each rank's events is discarded as start-up.
	InitFraction float64
	// ObserveFraction of each rank's events is measured after the
	// start-up cut.
	ObserveFraction float64
}

// DefaultPartialExec observes 10 percent of the run after a 5 percent
// initialisation cut.
func DefaultPartialExec() PartialExec {
	return PartialExec{InitFraction: 0.05, ObserveFraction: 0.10}
}

// PartialResult is the baseline's prediction.
type PartialResult struct {
	// PET is the extrapolated application execution time.
	PET vtime.Duration
	// Cost is how long the partial execution itself ran (its analogue
	// of the signature execution time).
	Cost vtime.Duration
}

// Predict runs the partial execution on the target. totalEvents gives
// each rank's full event count, taken from the base-machine trace
// (the baseline, like PAS2P, is allowed one analysed base run).
func (b PartialExec) Predict(app mpi.App, target *machine.Deployment, totalEvents []int64) (*PartialResult, error) {
	if b.InitFraction < 0 || b.ObserveFraction <= 0 || b.InitFraction+b.ObserveFraction > 1 {
		return nil, fmt.Errorf("predict: partial execution fractions %v/%v invalid", b.InitFraction, b.ObserveFraction)
	}
	if len(totalEvents) != app.Procs {
		return nil, fmt.Errorf("predict: partial execution needs per-rank event totals")
	}
	marks := make([]partialMark, app.Procs)
	res, err := mpi.Run(app, mpi.RunConfig{
		Deployment: target,
		NewInterceptor: func(rank int) mpi.Interceptor {
			total := totalEvents[rank]
			kInit := int64(float64(total) * b.InitFraction)
			kEnd := kInit + int64(float64(total)*b.ObserveFraction)
			if kEnd <= kInit {
				kEnd = kInit + 1
			}
			marks[rank].total = total
			marks[rank].kInit, marks[rank].kEnd = kInit, kEnd
			return &partialInterceptor{rank: rank, kInit: kInit, kEnd: kEnd, marks: marks}
		},
	})
	if err != nil {
		return nil, fmt.Errorf("predict: partial execution: %w", err)
	}
	// Extrapolate per rank 0's observation window (the usual choice;
	// windows are globally aligned by the app's own synchronisation).
	m := marks[0]
	if !m.haveI || !m.haveE {
		return nil, fmt.Errorf("predict: observation window never completed (app too short)")
	}
	window := m.tEnd.Sub(m.tInit)
	remaining := float64(m.total-m.kInit) / float64(m.kEnd-m.kInit)
	pet := vtime.Duration(float64(m.tInit)) + vtime.Duration(float64(window)*remaining)
	return &PartialResult{PET: pet, Cost: res.Elapsed}, nil
}

// partialInterceptor records the window boundary times and cuts the
// run off (free mode) once every observation completes.
type partialInterceptor struct {
	rank        int
	kInit, kEnd int64
	marks       []partialMark
}

// partialMark records one rank's observation-window boundaries.
type partialMark struct {
	tInit, tEnd  vtime.Time
	kInit, kEnd  int64
	total        int64
	haveI, haveE bool
}

func (x *partialInterceptor) Init(c *mpi.Comm) {}

func (x *partialInterceptor) Before(c *mpi.Comm, kind trace.Kind, idx int64) {}

func (x *partialInterceptor) After(c *mpi.Comm, kind trace.Kind, idx int64) {
	pos := idx + 1
	m := &x.marks[x.rank]
	if !m.haveI && pos >= x.kInit {
		m.tInit = c.Now()
		m.haveI = true
	}
	if !m.haveE && pos >= x.kEnd {
		m.tEnd = c.Now()
		m.haveE = true
		// Observation finished: the rest of the run costs nothing
		// (the baseline would stop the job here).
		c.SetMode(0, true)
	}
}
