// Package vtime provides the virtual-time base used throughout the
// PAS2P runtime. All simulated clocks are expressed as Time, an int64
// count of virtual nanoseconds since the start of a run, so that every
// arithmetic operation is exact and runs are bit-reproducible (we never
// compare or accumulate floating-point clocks).
package vtime

import (
	"fmt"
	"math"
)

// Time is an instant in virtual time, in nanoseconds since run start.
type Time int64

// Duration is a span of virtual time, in nanoseconds.
type Duration int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Infinity is a sentinel instant later than any reachable clock value.
const Infinity Time = math.MaxInt64

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the span from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds converts an instant to float64 seconds for reporting.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Seconds converts a span to float64 seconds for reporting.
func (d Duration) Seconds() float64 { return float64(d) / 1e9 }

// FromSeconds converts float64 seconds to a Duration, rounding to the
// nearest nanosecond. Negative and NaN inputs clamp to zero; +Inf and
// overflowing inputs clamp to the maximum representable span.
func FromSeconds(s float64) Duration {
	if s != s || s <= 0 { // NaN or non-positive
		return 0
	}
	ns := s * 1e9
	if ns >= math.MaxInt64 {
		return Duration(math.MaxInt64)
	}
	return Duration(math.Round(ns))
}

// Max returns the later of two instants.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Min returns the earlier of two instants.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// MaxDur returns the longer of two spans.
func MaxDur(a, b Duration) Duration {
	if a > b {
		return a
	}
	return b
}

// String formats an instant using the same unit auto-scaling as
// Duration.String.
func (t Time) String() string { return Duration(t).String() }

// String renders a span with an auto-scaled unit, e.g. "1.5ms".
func (d Duration) String() string {
	switch {
	case d < 0:
		return fmt.Sprintf("-%s", -d)
	case d < Microsecond:
		return fmt.Sprintf("%dns", int64(d))
	case d < Millisecond:
		return fmt.Sprintf("%.3gus", float64(d)/float64(Microsecond))
	case d < Second:
		return fmt.Sprintf("%.4gms", float64(d)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.6gs", float64(d)/float64(Second))
	}
}
