package vtime

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAddSub(t *testing.T) {
	t0 := Time(100)
	t1 := t0.Add(50 * Nanosecond)
	if t1 != 150 {
		t.Fatalf("Add: got %d, want 150", t1)
	}
	if d := t1.Sub(t0); d != 50 {
		t.Fatalf("Sub: got %d, want 50", d)
	}
}

func TestSecondsRoundTrip(t *testing.T) {
	cases := []float64{0, 1e-9, 1e-6, 0.001, 1, 1234.567}
	for _, s := range cases {
		d := FromSeconds(s)
		got := d.Seconds()
		if math.Abs(got-s) > 1e-9 {
			t.Errorf("FromSeconds(%g).Seconds() = %g", s, got)
		}
	}
}

func TestFromSecondsClamps(t *testing.T) {
	if FromSeconds(math.NaN()) != 0 {
		t.Error("NaN should clamp to 0")
	}
	if FromSeconds(-5) != 0 {
		t.Error("negative should clamp to 0")
	}
	if FromSeconds(math.Inf(1)) != Duration(math.MaxInt64) {
		t.Error("+Inf should clamp to max")
	}
	if FromSeconds(1e300) != Duration(math.MaxInt64) {
		t.Error("overflow should clamp to max")
	}
}

func TestMaxMin(t *testing.T) {
	if Max(1, 2) != 2 || Max(2, 1) != 2 {
		t.Error("Max wrong")
	}
	if Min(1, 2) != 1 || Min(2, 1) != 1 {
		t.Error("Min wrong")
	}
	if MaxDur(3, 4) != 4 || MaxDur(4, 3) != 4 {
		t.Error("MaxDur wrong")
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500, "500ns"},
		{1500, "1.5us"},
		{2 * Millisecond, "2ms"},
		{3 * Second, "3s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
	if got := (-Duration(500)).String(); got != "-500ns" {
		t.Errorf("negative: got %q", got)
	}
}

// Property: Max is commutative and idempotent; Add/Sub are inverses.
func TestQuickProperties(t *testing.T) {
	if err := quick.Check(func(a, b int64) bool {
		x, y := Time(a%1e15), Time(b%1e15)
		if Max(x, y) != Max(y, x) {
			return false
		}
		if Max(x, x) != x {
			return false
		}
		return x.Add(Duration(y)).Sub(x) == Duration(y)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestInfinityOrdering(t *testing.T) {
	if Infinity <= Time(1e18) {
		t.Error("Infinity should exceed any reachable clock")
	}
}
