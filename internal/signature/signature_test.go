package signature

import (
	"errors"
	"testing"

	"pas2p/internal/logical"
	"pas2p/internal/machine"
	"pas2p/internal/mpi"
	"pas2p/internal/phase"
	"pas2p/internal/vtime"
)

// iterApp is a canonical iterative kernel: init segment, then many
// identical iterations of exchange + reduction.
func iterApp(procs, iters int) mpi.App {
	return mpi.App{
		Name:  "iter",
		Procs: procs,
		Body: func(c *mpi.Comm) {
			n := c.Size()
			if c.Rank() == 0 {
				for s := 1; s < n; s++ {
					c.SendN(s, 99, 1<<14)
				}
			} else {
				c.RecvN(0, 99)
			}
			c.Barrier()
			for i := 0; i < iters; i++ {
				c.Compute(5e5)
				right := (c.Rank() + 1) % n
				left := (c.Rank() + n - 1) % n
				c.SendrecvN(right, 0, 4096, left, 0)
				c.Allreduce([]float64{float64(i)}, mpi.Sum)
			}
		},
	}
}

// lightOptions scales checkpoint costs down to match the miniature
// test workloads (the defaults model real DMTCP costs, which would
// dwarf a 30 ms test app; the ratio restart/AET here mirrors the
// paper's seconds-vs-hundreds-of-seconds proportions).
func lightOptions() Options {
	o := DefaultOptions()
	o.Checkpoint.SnapshotBase = 200 * vtime.Microsecond
	o.Checkpoint.RestartBase = 300 * vtime.Microsecond
	o.StateBytesPerRank = 1 << 20
	return o
}

func deployOn(t testing.TB, cl *machine.Cluster, ranks int) *machine.Deployment {
	t.Helper()
	d, err := machine.NewDeployment(cl, ranks, machine.MapBlock)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// analyze produces the phase table of an app on a base machine.
func analyze(t testing.TB, app mpi.App, base *machine.Deployment) (*phase.Table, vtime.Duration) {
	t.Helper()
	res, err := mpi.Run(app, mpi.RunConfig{Deployment: base, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	l, err := logical.Order(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	a, err := phase.Extract(l, phase.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	tb, err := a.BuildTable(1)
	if err != nil {
		t.Fatal(err)
	}
	return tb, res.Elapsed
}

// aetOn measures the uninstrumented application execution time.
func aetOn(t testing.TB, app mpi.App, d *machine.Deployment) vtime.Duration {
	t.Helper()
	res, err := mpi.Run(app, mpi.RunConfig{Deployment: d})
	if err != nil {
		t.Fatal(err)
	}
	return res.Elapsed
}

func TestBuildAndExecuteSameMachine(t *testing.T) {
	app := iterApp(8, 40)
	base := deployOn(t, machine.ClusterA(), 8)
	tb, _ := analyze(t, app, base)

	br, err := Build(app, tb, base, lightOptions())
	if err != nil {
		t.Fatal(err)
	}
	if br.SCT <= 0 {
		t.Error("SCT must be positive")
	}
	if br.Checkpoints < 1 {
		t.Error("expected at least one checkpoint")
	}

	aet := aetOn(t, app, base)
	res, err := br.Signature.Execute(base)
	if err != nil {
		t.Fatal(err)
	}
	// The headline properties: SET is a small fraction of AET, and PET
	// is close to AET (the paper reports ~1.74% and >97%).
	setFrac := float64(res.SET) / float64(aet)
	if setFrac > 0.35 {
		t.Errorf("SET %v is %.1f%% of AET %v; signature is not short", res.SET, setFrac*100, aet)
	}
	pete := 100 * abs(float64(res.PET)-float64(aet)) / float64(aet)
	if pete > 12 {
		t.Errorf("PETE = %.2f%%: PET %v vs AET %v", pete, res.PET, aet)
	}
	if len(res.Phases) == 0 {
		t.Fatal("no phases measured")
	}
	for _, m := range res.Phases {
		if m.ET < 0 || m.Weight < 1 {
			t.Errorf("phase %d measurement %+v invalid", m.PhaseID, m)
		}
	}
}

func TestCrossMachinePrediction(t *testing.T) {
	// The paper's core experiment: analyse on a base machine, predict
	// a different target machine's AET by executing the signature
	// there.
	app := iterApp(16, 40)
	base := deployOn(t, machine.ClusterA(), 16)
	tb, _ := analyze(t, app, base)
	br, err := Build(app, tb, base, lightOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range []*machine.Cluster{machine.ClusterB(), machine.ClusterC()} {
		td := deployOn(t, target, 16)
		aet := aetOn(t, app, td)
		res, err := br.Signature.Execute(td)
		if err != nil {
			t.Fatalf("%s: %v", target.Name, err)
		}
		pete := 100 * abs(float64(res.PET)-float64(aet)) / float64(aet)
		if pete > 15 {
			t.Errorf("%s: PETE = %.2f%% (PET %v, AET %v)", target.Name, pete, res.PET, aet)
		}
		if res.SET >= aet {
			t.Errorf("%s: SET %v not below AET %v", target.Name, res.SET, aet)
		}
	}
}

func TestISAMismatchRefused(t *testing.T) {
	app := iterApp(8, 10)
	base := deployOn(t, machine.ClusterA(), 8)
	tb, _ := analyze(t, app, base)
	br, err := Build(app, tb, base, lightOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Cluster D is ia64; the x86_64 signature must be refused.
	_, err = br.Signature.Execute(deployOn(t, machine.ClusterD(), 8))
	var mismatch *ErrISAMismatch
	if !errors.As(err, &mismatch) {
		t.Fatalf("expected ErrISAMismatch, got %v", err)
	}
	// §7's remedy: rebuild the signature from the phase table on the
	// target machine, then execute there.
	baseD := deployOn(t, machine.ClusterD(), 8)
	brD, err := Build(app, tb, baseD, lightOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := brD.Signature.Execute(baseD); err != nil {
		t.Fatalf("rebuilt signature failed: %v", err)
	}
}

func TestExecuteValidation(t *testing.T) {
	app := iterApp(8, 10)
	base := deployOn(t, machine.ClusterA(), 8)
	tb, _ := analyze(t, app, base)
	br, err := Build(app, tb, base, lightOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := br.Signature.Execute(nil); err == nil {
		t.Error("nil target should fail")
	}
	if _, err := br.Signature.Execute(deployOn(t, machine.ClusterA(), 4)); err == nil {
		t.Error("rank mismatch should fail")
	}
}

func TestBuildValidation(t *testing.T) {
	app := iterApp(8, 10)
	base := deployOn(t, machine.ClusterA(), 8)
	tb, _ := analyze(t, app, base)

	bad := lightOptions()
	bad.ColdFactor = 0.5
	if _, err := Build(app, tb, base, bad); err == nil {
		t.Error("cold factor < 1 should fail")
	}
	bad = lightOptions()
	bad.WarmupEvents = -1
	if _, err := Build(app, tb, base, bad); err == nil {
		t.Error("negative warmup should fail")
	}
	if _, err := Build(app, tb, deployOn(t, machine.ClusterA(), 4), lightOptions()); err == nil {
		t.Error("deployment size mismatch should fail")
	}
	other := iterApp(4, 10)
	if _, err := Build(other, tb, deployOn(t, machine.ClusterA(), 4), lightOptions()); err == nil {
		t.Error("procs mismatch between app and table should fail")
	}
}

func TestSCTShorterThanFullRunWhenPhasesEarly(t *testing.T) {
	// Construction cuts the run after the last checkpoint; with the
	// designated occurrences early in the run, SCT (minus checkpoint
	// costs) should undercut the AET.
	app := iterApp(8, 120)
	base := deployOn(t, machine.ClusterA(), 8)
	tb, _ := analyze(t, app, base)
	br, err := Build(app, tb, base, lightOptions())
	if err != nil {
		t.Fatal(err)
	}
	aet := aetOn(t, app, base)
	if br.SCT >= aet {
		t.Errorf("SCT %v should undercut AET %v (early checkpoints cut the run)", br.SCT, aet)
	}
}

func TestAllPhasesReducesError(t *testing.T) {
	// §5: including non-relevant phases reduces the prediction error.
	app := iterApp(8, 40)
	base := deployOn(t, machine.ClusterA(), 8)
	tb, _ := analyze(t, app, base)
	aet := aetOn(t, app, base)

	optRel := lightOptions()
	optAll := lightOptions()
	optAll.AllPhases = true

	brRel, err := Build(app, tb, base, optRel)
	if err != nil {
		t.Fatal(err)
	}
	brAll, err := Build(app, tb, base, optAll)
	if err != nil {
		t.Fatal(err)
	}
	resRel, err := brRel.Signature.Execute(base)
	if err != nil {
		t.Fatal(err)
	}
	resAll, err := brAll.Signature.Execute(base)
	if err != nil {
		t.Fatal(err)
	}
	errRel := abs(float64(resRel.PET) - float64(aet))
	errAll := abs(float64(resAll.PET) - float64(aet))
	if errAll > errRel*1.05+float64(vtime.Millisecond) {
		t.Errorf("all-phase error %v should not exceed relevant-only error %v", errAll, errRel)
	}
	if len(resAll.Phases) < len(resRel.Phases) {
		t.Error("all-phase signature must measure at least as many phases")
	}
}

func TestDeterministicExecution(t *testing.T) {
	app := iterApp(8, 20)
	base := deployOn(t, machine.ClusterA(), 8)
	tb, _ := analyze(t, app, base)
	br, err := Build(app, tb, base, lightOptions())
	if err != nil {
		t.Fatal(err)
	}
	r1, err := br.Signature.Execute(base)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := br.Signature.Execute(base)
	if err != nil {
		t.Fatal(err)
	}
	if r1.SET != r2.SET || r1.PET != r2.PET {
		t.Errorf("signature execution not deterministic: %v/%v vs %v/%v", r1.SET, r1.PET, r2.SET, r2.PET)
	}
}

func TestMeasurementBreakdown(t *testing.T) {
	app := iterApp(8, 30)
	base := deployOn(t, machine.ClusterA(), 8)
	tb, _ := analyze(t, app, base)
	br, err := Build(app, tb, base, lightOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := br.Signature.Execute(base)
	if err != nil {
		t.Fatal(err)
	}
	var sum vtime.Duration
	for _, m := range res.Phases {
		if m.Restart <= 0 {
			t.Errorf("phase %d missing restart cost", m.PhaseID)
		}
		if m.Warmup < 0 {
			t.Errorf("phase %d negative warmup %v", m.PhaseID, m.Warmup)
		}
		sum += m.Contribution()
	}
	if sum != res.PET {
		t.Errorf("PET %v != sum of contributions %v", res.PET, sum)
	}
}

func TestOversubscribedTarget(t *testing.T) {
	// Table 7's scenario: signature built with 16 processes executes
	// on a machine with fewer cores (2 procs per core).
	app := iterApp(16, 30)
	base := deployOn(t, machine.ClusterC(), 16)
	tb, _ := analyze(t, app, base)
	br, err := Build(app, tb, base, lightOptions())
	if err != nil {
		t.Fatal(err)
	}
	tiny := machine.ClusterA()
	tiny.Nodes = 4 // 8 cores for 16 ranks
	td, err := machine.NewDeployment(tiny, 16, machine.MapBlock)
	if err != nil {
		t.Fatal(err)
	}
	aet := aetOn(t, app, td)
	res, err := br.Signature.Execute(td)
	if err != nil {
		t.Fatal(err)
	}
	pete := 100 * abs(float64(res.PET)-float64(aet)) / float64(aet)
	if pete > 15 {
		t.Errorf("oversubscribed PETE = %.2f%% (PET %v, AET %v)", pete, res.PET, aet)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
