package signature

import (
	"encoding/json"
	"fmt"
	"io"

	"pas2p/internal/checkpoint"
	"pas2p/internal/mpi"
	"pas2p/internal/phase"
)

// Saved is the on-disk form of a signature: everything except the
// application code itself, which is referenced by registry name (the
// paper's signature carries the real binaries; here the runnable code
// is reattached at load time).
type Saved struct {
	// AppName/Workload/Procs identify the application in the registry.
	AppName  string
	Workload string
	Procs    int
	// BaseISA is the instruction set the signature was built for.
	BaseISA string
	// BaseCluster names the machine the signature was built on
	// (informational).
	BaseCluster string
	Options     Options
	Table       *phase.Table
	Catalog     *checkpoint.Catalog
}

// Save writes the signature's persistent form. workload and
// baseCluster label the artefact for the reader.
func (s *Signature) Save(w io.Writer, workload, baseCluster string) error {
	saved := Saved{
		AppName:     s.App.Name,
		Workload:    workload,
		Procs:       s.App.Procs,
		BaseISA:     s.BaseISA,
		BaseCluster: baseCluster,
		Options:     s.Options,
		Table:       s.Table,
		Catalog:     s.Catalog,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(&saved)
}

// LoadSaved reads a persisted signature description.
func LoadSaved(r io.Reader) (*Saved, error) {
	var s Saved
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("signature: decoding: %w", err)
	}
	if s.Table == nil || s.Catalog == nil {
		return nil, fmt.Errorf("signature: persisted form missing table or catalog")
	}
	if err := s.Table.Validate(); err != nil {
		return nil, err
	}
	if err := s.Catalog.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Reassemble reattaches the application code to a persisted signature,
// rebuilding the executable segments without re-running construction
// (the checkpoints are already in the catalogue).
func (s *Saved) Reassemble(app mpi.App) (*Signature, error) {
	if app.Procs != s.Procs {
		return nil, fmt.Errorf("signature: app has %d procs, saved signature %d", app.Procs, s.Procs)
	}
	if app.Name != s.AppName {
		return nil, fmt.Errorf("signature: app %q does not match saved %q", app.Name, s.AppName)
	}
	if err := s.Options.validate(); err != nil {
		return nil, err
	}
	segs := selectSegments(s.Table, s.Options)
	if len(segs) == 0 {
		return nil, fmt.Errorf("signature: saved table has no phases to execute")
	}
	return &Signature{
		App:      app,
		Table:    s.Table,
		Catalog:  s.Catalog,
		BaseISA:  s.BaseISA,
		Options:  s.Options,
		segments: segs,
	}, nil
}
