package signature

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"

	"pas2p/internal/checkpoint"
	"pas2p/internal/mpi"
	"pas2p/internal/phase"
)

// Saved is the on-disk form of a signature: everything except the
// application code itself, which is referenced by registry name (the
// paper's signature carries the real binaries; here the runnable code
// is reattached at load time).
type Saved struct {
	// AppName/Workload/Procs identify the application in the registry.
	AppName  string
	Workload string
	Procs    int
	// BaseISA is the instruction set the signature was built for.
	BaseISA string
	// BaseCluster names the machine the signature was built on
	// (informational).
	BaseCluster string
	Options     Options
	Table       *phase.Table
	Catalog     *checkpoint.Catalog
}

// EnvelopeVersion is the current persisted-signature format: the
// Saved payload wrapped in an integrity envelope. Version 1 is the
// bare Saved JSON, still accepted by LoadSaved as the migration path.
const EnvelopeVersion = 2

// envelope is the on-disk wrapper of a persisted signature. The
// SHA-256 is computed over the compacted payload bytes, so pretty-
// printing or re-indenting the file does not invalidate it — only
// changing the payload's content does.
type envelope struct {
	FormatVersion int             `json:"formatVersion"`
	PayloadSHA256 string          `json:"payloadSHA256"`
	Payload       json.RawMessage `json:"payload"`
}

// Save writes the signature's persistent form: a version-2 envelope
// whose payload checksum lets readers detect bit-rot and torn writes.
// workload and baseCluster label the artefact for the reader.
func (s *Signature) Save(w io.Writer, workload, baseCluster string) error {
	saved := Saved{
		AppName:     s.App.Name,
		Workload:    workload,
		Procs:       s.App.Procs,
		BaseISA:     s.BaseISA,
		BaseCluster: baseCluster,
		Options:     s.Options,
		Table:       s.Table,
		Catalog:     s.Catalog,
	}
	payload, err := json.Marshal(&saved)
	if err != nil {
		return fmt.Errorf("signature: encoding payload: %w", err)
	}
	sum := sha256.Sum256(payload)
	env := envelope{
		FormatVersion: EnvelopeVersion,
		PayloadSHA256: hex.EncodeToString(sum[:]),
		Payload:       payload,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(&env)
}

// LoadSaved reads a persisted signature description: the current
// checksummed envelope, or the bare version-1 JSON via the migration
// path. Envelope checksum mismatches are reported as corruption, not
// decoded into a wrong signature.
func LoadSaved(r io.Reader) (*Saved, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("signature: reading: %w", err)
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("signature: decoding: %w", err)
	}
	if env.FormatVersion == 0 && env.PayloadSHA256 == "" && env.Payload == nil {
		// Bare v1 form: the whole document is the Saved payload.
		return loadPayload(data)
	}
	if env.FormatVersion != EnvelopeVersion {
		return nil, fmt.Errorf("signature: unsupported format version %d (want %d)",
			env.FormatVersion, EnvelopeVersion)
	}
	if len(env.Payload) == 0 {
		return nil, fmt.Errorf("signature: envelope missing payload")
	}
	var compact bytes.Buffer
	if err := json.Compact(&compact, env.Payload); err != nil {
		return nil, fmt.Errorf("signature: corrupt payload: %w", err)
	}
	sum := sha256.Sum256(compact.Bytes())
	if got := hex.EncodeToString(sum[:]); got != env.PayloadSHA256 {
		return nil, fmt.Errorf("signature: payload checksum mismatch (stored %.12s…, computed %.12s…)",
			env.PayloadSHA256, got)
	}
	return loadPayload(env.Payload)
}

// loadPayload decodes and validates the Saved payload itself.
func loadPayload(data []byte) (*Saved, error) {
	var s Saved
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("signature: decoding: %w", err)
	}
	if s.Table == nil || s.Catalog == nil {
		return nil, fmt.Errorf("signature: persisted form missing table or catalog")
	}
	if err := s.Table.Validate(); err != nil {
		return nil, err
	}
	if err := s.Catalog.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Reassemble reattaches the application code to a persisted signature,
// rebuilding the executable segments without re-running construction
// (the checkpoints are already in the catalogue).
func (s *Saved) Reassemble(app mpi.App) (*Signature, error) {
	if app.Procs != s.Procs {
		return nil, fmt.Errorf("signature: app has %d procs, saved signature %d", app.Procs, s.Procs)
	}
	if app.Name != s.AppName {
		return nil, fmt.Errorf("signature: app %q does not match saved %q", app.Name, s.AppName)
	}
	if err := s.Options.validate(); err != nil {
		return nil, err
	}
	segs := selectSegments(s.Table, s.Options)
	if len(segs) == 0 {
		return nil, fmt.Errorf("signature: saved table has no phases to execute")
	}
	return &Signature{
		App:      app,
		Table:    s.Table,
		Catalog:  s.Catalog,
		BaseISA:  s.BaseISA,
		Options:  s.Options,
		segments: segs,
	}, nil
}
