package signature

import (
	"reflect"
	"testing"

	"pas2p/internal/faults"
	"pas2p/internal/machine"
)

func buildIterSig(t *testing.T, opts Options) (*Signature, *machine.Deployment) {
	t.Helper()
	app := iterApp(8, 40)
	base := deployOn(t, machine.ClusterA(), 8)
	tb, _ := analyze(t, app, base)
	br, err := Build(app, tb, base, opts)
	if err != nil {
		t.Fatal(err)
	}
	return br.Signature, base
}

func injector(t *testing.T, cfg faults.Config) *faults.Injector {
	t.Helper()
	inj, err := faults.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

// TestWarmupPlacementBeforePhaseStart: every snapshot restores each
// rank at or before the phase's start boundary, so the executor's free
// warm-up region precedes measurement (§3.4's requirement that the
// machine is warm when the phase clock starts).
func TestWarmupPlacementBeforePhaseStart(t *testing.T) {
	sig, _ := buildIterSig(t, lightOptions())
	if len(sig.Catalog.Snapshots) == 0 {
		t.Fatal("signature has no checkpoints")
	}
	starts := map[int][]int64{}
	for _, r := range sig.Table.Rows {
		starts[r.PhaseID] = r.StartEvents
	}
	for _, s := range sig.Catalog.Snapshots {
		se, ok := starts[s.PhaseID]
		if !ok {
			t.Fatalf("snapshot for phase %d has no table row", s.PhaseID)
		}
		for p, pos := range s.Position {
			if pos > se[p] {
				t.Fatalf("phase %d rank %d: checkpoint at event %d is past the phase start %d — no warm-up region",
					s.PhaseID, p, pos, se[p])
			}
		}
	}
}

// TestExecuteRestartIdempotent: executing the same signature twice —
// with and without a crash schedule — must give identical results; the
// executor may not accumulate state across runs, or a re-executed
// (restarted) signature would drift.
func TestExecuteRestartIdempotent(t *testing.T) {
	opts := lightOptions()
	sig, base := buildIterSig(t, opts)

	r1, err := sig.Execute(base)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sig.Execute(base)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("fault-free execution not idempotent")
	}

	// Crash-laden executions: a fresh injector per run (as a restarted
	// executor would build from its recorded seed) reproduces the run.
	cfg := faults.Config{Seed: 17, CrashRate: 0.6, MaxRestartAttempts: 10}
	sig.Options.Faults = injector(t, cfg)
	f1, err := sig.Execute(base)
	if err != nil {
		t.Fatal(err)
	}
	sig.Options.Faults = injector(t, cfg)
	f2, err := sig.Execute(base)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f1, f2) {
		t.Fatal("crash-schedule execution not reproducible from the seed")
	}

	// And the injector must not have leaked into later fault-free runs.
	sig.Options.Faults = nil
	r3, err := sig.Execute(base)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r3) {
		t.Fatal("faulted execution leaked state into a fault-free re-execution")
	}
}

// TestRecoveredCrashesInflateSETNotPET: restart retries are paid in the
// free region before measurement, so SET grows but the prediction is
// untouched.
func TestRecoveredCrashesInflateSETNotPET(t *testing.T) {
	opts := lightOptions()
	sig, base := buildIterSig(t, opts)
	clean, err := sig.Execute(base)
	if err != nil {
		t.Fatal(err)
	}
	sig.Options.Faults = injector(t, faults.Config{Seed: 5, CrashRate: 0.7, MaxRestartAttempts: 12})
	faulted, err := sig.Execute(base)
	if err != nil {
		t.Fatal(err)
	}
	rep := sig.Options.Faults.Report()
	if rep.CrashFailures == 0 {
		t.Skip("schedule rolled no failures; nothing to price")
	}
	if rep.Unrecovered != 0 {
		t.Fatalf("12-attempt budget exhausted: %+v", rep)
	}
	if faulted.Degraded || len(faulted.LostPhases) != 0 {
		t.Fatalf("recovered schedule degraded the result: %+v", faulted.LostPhases)
	}
	if faulted.PET != clean.PET {
		t.Fatalf("recovered crashes changed PET: %v vs %v", faulted.PET, clean.PET)
	}
	if faulted.SET <= clean.SET {
		t.Fatalf("restart retries are free: SET %v <= clean %v", faulted.SET, clean.SET)
	}
}

// TestUnrecoveredCrashDegrades: with a certain crash and no retry
// budget every phase is lost, flagged, and excluded from Eq. 1.
func TestUnrecoveredCrashDegrades(t *testing.T) {
	opts := lightOptions()
	sig, base := buildIterSig(t, opts)
	sig.Options.Faults = injector(t, faults.Config{Seed: 2, CrashRate: 1, MaxRestartAttempts: 0})
	res, err := sig.Execute(base)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Fatal("certain unrecovered crashes must degrade the result")
	}
	if len(res.LostPhases) != len(sig.Table.RelevantRows()) {
		t.Fatalf("lost %d phases, want all %d relevant",
			len(res.LostPhases), len(sig.Table.RelevantRows()))
	}
	if res.PET != 0 {
		t.Fatalf("every phase lost, yet PET = %v", res.PET)
	}
	if len(res.Phases) != 0 {
		t.Fatalf("abandoned phases still measured: %d", len(res.Phases))
	}
	rep := sig.Options.Faults.Report()
	if rep.PhasesLost != int64(len(res.LostPhases)) {
		t.Fatalf("report says %d phases lost, result lists %d", rep.PhasesLost, len(res.LostPhases))
	}
}
