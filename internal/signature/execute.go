package signature

import (
	"fmt"
	"math"

	"pas2p/internal/machine"
	"pas2p/internal/mpi"
	"pas2p/internal/obs"
	"pas2p/internal/trace"
	"pas2p/internal/vtime"
)

// PhaseMeasurement is the timing of one phase measured by the
// signature on a target machine.
type PhaseMeasurement struct {
	PhaseID int
	Weight  int
	// ET is the measured phase execution time on the target.
	ET vtime.Duration
	// Restart and Warmup are the checkpoint-restore and warm-up costs
	// paid before the measurement.
	Restart vtime.Duration
	Warmup  vtime.Duration
}

// Contribution is the phase's term in Equation (1).
func (m PhaseMeasurement) Contribution() vtime.Duration {
	return m.ET * vtime.Duration(m.Weight)
}

// ExecResult is what one signature execution yields.
type ExecResult struct {
	// SET is the signature execution time: the virtual time the whole
	// signature run took (restarts + warm-ups + measured phases).
	SET vtime.Duration
	// PET is the predicted application execution time from Eq. (1).
	PET vtime.Duration
	// Phases lists per-phase measurements in execution order.
	Phases []PhaseMeasurement
	// LostPhases lists phases abandoned after an unrecovered injected
	// crash (restart retry budget exhausted on some rank); their terms
	// are missing from PET.
	LostPhases []int
	// Degraded flags a prediction computed from surviving phases only.
	Degraded bool
}

// ErrISAMismatch is returned when a signature is executed on a machine
// with a different instruction set than it was built on; per §7 the
// signature must be rebuilt from the phase table in that case.
type ErrISAMismatch struct {
	BaseISA, TargetISA string
}

func (e *ErrISAMismatch) Error() string {
	return fmt.Sprintf("signature: built for ISA %q, target runs %q: rebuild the signature from the phase table on the target machine",
		e.BaseISA, e.TargetISA)
}

// Execute runs the signature on a target machine: each checkpoint is
// restarted, the warm-up region runs cold, the phase is measured once,
// and Equation (1) predicts the full application execution time.
func (s *Signature) Execute(target *machine.Deployment) (*ExecResult, error) {
	if target == nil {
		return nil, fmt.Errorf("signature: nil target deployment")
	}
	if target.Cluster.ISA != s.BaseISA {
		return nil, &ErrISAMismatch{BaseISA: s.BaseISA, TargetISA: target.Cluster.ISA}
	}
	if target.Ranks != s.App.Procs {
		return nil, fmt.Errorf("signature: target deployment has %d ranks, signature has %d processes",
			target.Ranks, s.App.Procs)
	}
	restartCost := s.Options.Checkpoint.RestartTime(s.Options.StateBytesPerRank)

	// Crash plans are decided up front from the injector's pure hash
	// (phase, rank): every rank sees the same plan without coordination,
	// so the whole execution agrees on which restarts crash and which
	// phases are abandoned before any virtual time passes.
	inj := s.Options.Faults
	inj.SetObserver(s.Options.Observer)
	var lost []bool               // [segment]: some rank's retries exhausted
	var segFailures []int         // [segment]: coordinated failed attempts (max over ranks)
	var segRetry []vtime.Duration // [segment]: priced retry cost, identical on every rank
	if inj != nil && inj.Config().CrashRate > 0 {
		lost = make([]bool, len(s.segments))
		segFailures = make([]int, len(s.segments))
		segRetry = make([]vtime.Duration, len(s.segments))
		backoff := inj.Config().RestartBackoff
		for i, seg := range s.segments {
			for r := 0; r < s.App.Procs; r++ {
				p := inj.Restart(seg.row.PhaseID, r)
				if !p.Recovered {
					lost[i] = true
				}
				// The restore is coordinated: one rank crashing fails the
				// whole cluster's attempt, so the retry count — and the
				// uniformly paid cost — is the worst rank's.
				if p.Failures > segFailures[i] {
					segFailures[i] = p.Failures
				}
			}
			segRetry[i] = s.Options.Checkpoint.RestartRetryCost(
				s.Options.StateBytesPerRank, segFailures[i], backoff)
			if lost[i] {
				inj.NotePhaseLost(seg.row.PhaseID)
			}
		}
	}

	// Shared measurement state: the engine serialises all goroutines,
	// and each slot is written by exactly one rank.
	meas := make([][]cell, len(s.segments))
	for i := range meas {
		meas[i] = make([]cell, s.App.Procs)
	}

	sp := s.Options.Observer.StartSpan("signature.execute")
	res, err := mpi.Run(s.App, mpi.RunConfig{
		Deployment:             target,
		NICContention:          s.Options.NICContention,
		AlgorithmicCollectives: s.Options.AlgorithmicCollectives,
		Observer:               s.Options.Observer,
		Faults:                 inj,
		TimelineLabel:          fmt.Sprintf("sig:%s (%d ranks)", s.App.Name, s.App.Procs),
		NewInterceptor: func(rank int) mpi.Interceptor {
			x := &executorInterceptor{
				rank: rank, segs: s.segments, restart: restartCost,
				cold:   s.Options.ColdFactor,
				record: func(seg int, c cell) { meas[seg][rank] = c },
			}
			if rank == 0 {
				// One flight event per cluster-wide transition, not one
				// per rank: only rank 0 carries the observer.
				x.obs = s.Options.Observer
			}
			if lost != nil {
				x.lost = lost
				x.failures = segFailures
				x.retry = segRetry
			}
			return x
		},
	})
	if err != nil {
		sp.End()
		return nil, fmt.Errorf("signature: execution run: %w", err)
	}
	sp.SetCounter("restarts", int64(len(s.segments)))

	out := &ExecResult{SET: res.Elapsed}
	for i, seg := range s.segments {
		if lost != nil && lost[i] {
			// Graceful degradation: the phase's term is dropped from
			// Eq. (1) and reported instead of failing the execution.
			out.LostPhases = append(out.LostPhases, seg.row.PhaseID)
			continue
		}
		var lastStart, lastEnd, lastEnd2 vtime.Time
		var restart, warm vtime.Duration
		var spanSum vtime.Duration
		spanN := 0
		have, paired := false, false
		for r := 0; r < s.App.Procs; r++ {
			cl := meas[i][r]
			if !cl.started || !cl.ended || (cl.start == cl.end && cl.end2 <= cl.end) {
				// Ranks with no events inside the phase window carry
				// no timing information.
				continue
			}
			if cl.start > lastStart {
				lastStart = cl.start
			}
			if cl.end > lastEnd {
				lastEnd = cl.end
			}
			spanSum += cl.end.Sub(cl.start)
			spanN++
			if cl.paired {
				paired = true
				if cl.end2 > lastEnd2 {
					lastEnd2 = cl.end2
				}
			}
			if cl.restart > restart {
				restart = cl.restart
			}
			if cl.warm > warm {
				warm = cl.warm
			}
			have = true
		}
		if !have {
			sp.End()
			return nil, fmt.Errorf("signature: phase %d was never measured (no process entered it)", seg.row.PhaseID)
		}
		// Candidate estimators for the phase execution time; see
		// ETEstimator for the trade-offs.
		lastSpan := lastEnd.Sub(lastStart)
		pairDelta := lastSpan
		if paired && lastEnd2 > lastEnd {
			pairDelta = lastEnd2.Sub(lastEnd)
		}
		meanSpan := lastSpan
		if spanN > 0 {
			meanSpan = spanSum / vtime.Duration(spanN)
		}
		var et vtime.Duration
		switch s.Options.Estimator {
		case EstimatorLastSpan:
			et = lastSpan
		case EstimatorMeanSpan:
			et = meanSpan
		default: // EstimatorPairDelta
			et = pairDelta
			// Pair-bias correction (wavefront pipelining): the table
			// records how far the designated pair's delta sat from the
			// phase's mean occurrence duration on the base machine;
			// scale the target-side delta by the same ratio. Tables
			// persisted before the correction carry 0 here, meaning 1.
			if sc := seg.row.ETScale; paired && sc > 0 && sc != 1 {
				et = vtime.Duration(math.Round(float64(et) * sc))
			}
		}
		m := PhaseMeasurement{
			PhaseID: seg.row.PhaseID,
			Weight:  seg.row.Weight,
			ET:      et,
			Restart: restart,
			Warmup:  warm,
		}
		out.Phases = append(out.Phases, m)
		out.PET += m.Contribution()
	}
	out.Degraded = len(out.LostPhases) > 0
	sp.SetCounter("phases_measured", int64(len(out.Phases)))
	if out.Degraded {
		sp.SetCounter("phases_lost", int64(len(out.LostPhases)))
	}
	sp.End()
	inj.Publish(s.Options.Observer.Reg())
	return out, nil
}

// executorInterceptor drives one rank through skip / restart / warm-up
// / measure transitions at the replay positions of the phase table.
type executorInterceptor struct {
	rank    int
	segs    []segment
	restart vtime.Duration
	cold    float64
	record  func(seg int, c cell)

	// Injected crash plan, indexed by segment and shared by all ranks
	// (nil without crash faults): lost marks segments abandoned
	// cluster-wide, failures and retry carry the coordinated crashed
	// attempt count and the priced retry cost (failed restores plus
	// exponential backoff), identical on every rank so recovery shifts
	// all clocks uniformly and never skews the measurement.
	lost     []bool
	failures []int
	retry    []vtime.Duration

	// obs (rank 0 only) records checkpoint restarts and abandoned
	// phases on the flight recorder.
	obs *obs.Observer

	seg   int
	state execState
	cur   cell
}

// cell is one rank's measurement of one phase.
type cell struct {
	start, end, end2 vtime.Time
	restart, warm    vtime.Duration
	started, ended   bool
	paired           bool
}

type execState int8

const (
	stSkip execState = iota
	stWarmup
	stMeasure
	stMeasure2
	stDone
)

// Init puts the rank in skip mode before any application code runs:
// nothing before the first checkpoint costs time (it was never
// executed; the first restart recreates its state).
func (x *executorInterceptor) Init(c *mpi.Comm) {
	c.SetMode(0, true)
	x.at(c, 0)
}

func (x *executorInterceptor) retryAt() vtime.Duration {
	if x.retry == nil {
		return 0
	}
	return x.retry[x.seg]
}

func (x *executorInterceptor) failuresAt() int {
	if x.failures == nil {
		return 0
	}
	return x.failures[x.seg]
}

func (x *executorInterceptor) Before(c *mpi.Comm, kind trace.Kind, idx int64) {}

func (x *executorInterceptor) After(c *mpi.Comm, kind trace.Kind, idx int64) {
	x.at(c, idx+1)
}

func (x *executorInterceptor) at(c *mpi.Comm, pos int64) {
	for x.seg < len(x.segs) {
		seg := &x.segs[x.seg]
		switch x.state {
		case stSkip:
			if pos != seg.ckpt[x.rank] {
				return
			}
			if x.lost != nil && x.lost[x.seg] {
				// Some rank exhausted its restart retries: the phase is
				// abandoned cluster-wide. Pay this rank's attempted
				// restores, then fast-forward through the segment with
				// no measurement.
				c.SetMode(1, false)
				if c.TimelineOn() {
					c.Annotate(fmt.Sprintf("phase %d abandoned (%d crashed restarts)",
						seg.row.PhaseID, x.failures[x.seg]))
				}
				x.obs.Event("exec.phase_abandoned",
					fmt.Sprintf("phase %d dropped from Eq. (1) after %d crashed restarts",
						seg.row.PhaseID, x.failures[x.seg]),
					x.rank, int64(seg.row.PhaseID))
				c.Elapse(x.restart + x.retry[x.seg])
				c.SetMode(0, true)
				x.seg++
				continue
			}
			// Restart the checkpoint: pay the restore cost at full
			// price (leave free mode first) — plus any injected crash
			// retries — then run the warm-up region with a cold machine.
			x.cur = cell{restart: x.restart + x.retryAt()}
			if x.obs != nil {
				x.obs.Event("exec.restart",
					fmt.Sprintf("checkpoint restart, phase %d (%d crashed attempts)",
						seg.row.PhaseID, x.failuresAt()),
					x.rank, int64(seg.row.PhaseID))
			}
			c.SetMode(1, false)
			if c.TimelineOn() {
				if f := x.failuresAt(); f > 0 {
					c.Annotate(fmt.Sprintf("restart ckpt (phase %d, %d crashed attempts)",
						seg.row.PhaseID, f))
				} else {
					c.Annotate(fmt.Sprintf("restart ckpt (phase %d)", seg.row.PhaseID))
				}
			}
			c.Elapse(x.cur.restart)
			warmStart := c.Now()
			x.cur.warm = -vtime.Duration(warmStart) // finalised below
			x.state = stWarmup
			if seg.ckpt[x.rank] < seg.row.StartEvents[x.rank] {
				c.SetMode(x.cold, false)
				return
			}
			// No warm-up region for this rank; fall through to measure.
			continue
		case stWarmup:
			if pos < seg.row.StartEvents[x.rank] {
				return
			}
			x.cur.warm += vtime.Duration(c.Now()) // warm = now - warmStart
			c.SetMode(1, false)
			x.cur.start = c.Now()
			x.cur.started = true
			if c.TimelineOn() {
				c.Annotate(fmt.Sprintf("phase %d measure start", seg.row.PhaseID))
			}
			x.state = stMeasure
			continue
		case stMeasure:
			if pos < seg.row.EndEvents[x.rank] {
				return
			}
			x.cur.end = c.Now()
			x.cur.ended = true
			if c.TimelineOn() {
				c.Annotate(fmt.Sprintf("phase %d measure end", seg.row.PhaseID))
			}
			if seg.row.HasPair {
				// Keep running at full cost through the immediately
				// following occurrence; its completion cut gives the
				// marginal per-repetition time.
				x.cur.paired = true
				x.state = stMeasure2
				continue
			}
			c.SetMode(0, true)
			x.record(x.seg, x.cur)
			x.seg++
			x.state = stSkip
			continue
		case stMeasure2:
			if pos < seg.row.End2Events[x.rank] {
				return
			}
			x.cur.end2 = c.Now()
			c.SetMode(0, true)
			x.record(x.seg, x.cur)
			x.seg++
			x.state = stSkip
			continue
		default:
			return
		}
	}
	x.state = stDone
}
