package signature

import (
	"bytes"
	"encoding/json"
	"os"
	"reflect"
	"strings"
	"testing"

	"pas2p/internal/apps"
	"pas2p/internal/machine"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	app := iterApp(8, 30)
	base := deployOn(t, machine.ClusterA(), 8)
	tb, _ := analyze(t, app, base)
	br, err := Build(app, tb, base, lightOptions())
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := br.Signature.Save(&buf, "testwl", "Cluster A"); err != nil {
		t.Fatal(err)
	}
	saved, err := LoadSaved(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if saved.AppName != "iter" || saved.Procs != 8 || saved.BaseISA != "x86_64" {
		t.Errorf("saved header wrong: %+v", saved)
	}
	reassembled, err := saved.Reassemble(app)
	if err != nil {
		t.Fatal(err)
	}

	// The reassembled signature must predict identically to the
	// original (deterministic runtime, same segments).
	target := deployOn(t, machine.ClusterB(), 8)
	r1, err := br.Signature.Execute(target)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := reassembled.Execute(target)
	if err != nil {
		t.Fatal(err)
	}
	if r1.PET != r2.PET || r1.SET != r2.SET {
		t.Errorf("reassembled signature diverges: PET %v/%v SET %v/%v",
			r1.PET, r2.PET, r1.SET, r2.SET)
	}
}

// TestSaveWritesEnvelope pins the v2 on-disk shape: formatVersion,
// payloadSHA256, payload.
func TestSaveWritesEnvelope(t *testing.T) {
	app := iterApp(8, 20)
	base := deployOn(t, machine.ClusterA(), 8)
	tb, _ := analyze(t, app, base)
	br, err := Build(app, tb, base, lightOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := br.Signature.Save(&buf, "wl", "Cluster A"); err != nil {
		t.Fatal(err)
	}
	var probe struct {
		FormatVersion int             `json:"formatVersion"`
		PayloadSHA256 string          `json:"payloadSHA256"`
		Payload       json.RawMessage `json:"payload"`
	}
	if err := json.Unmarshal(buf.Bytes(), &probe); err != nil {
		t.Fatal(err)
	}
	if probe.FormatVersion != EnvelopeVersion || len(probe.PayloadSHA256) != 64 || len(probe.Payload) == 0 {
		t.Errorf("envelope shape wrong: version %d, sha %q", probe.FormatVersion, probe.PayloadSHA256)
	}
}

// TestLoadSavedMigratesBareV1 feeds LoadSaved the pre-envelope form (a
// bare Saved document) and expects the migration path to accept it.
func TestLoadSavedMigratesBareV1(t *testing.T) {
	app := iterApp(8, 20)
	base := deployOn(t, machine.ClusterA(), 8)
	tb, _ := analyze(t, app, base)
	br, err := Build(app, tb, base, lightOptions())
	if err != nil {
		t.Fatal(err)
	}
	var env bytes.Buffer
	if err := br.Signature.Save(&env, "wl", "Cluster A"); err != nil {
		t.Fatal(err)
	}
	fromEnv, err := LoadSaved(bytes.NewReader(env.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// The bare v1 writer was a plain JSON encoding of Saved.
	bare, err := json.Marshal(fromEnv)
	if err != nil {
		t.Fatal(err)
	}
	fromBare, err := LoadSaved(bytes.NewReader(bare))
	if err != nil {
		t.Fatalf("bare v1 migration: %v", err)
	}
	if !reflect.DeepEqual(fromEnv, fromBare) {
		t.Error("v1 and v2 load paths disagree")
	}
}

// TestGoldenV1SignatureMigration loads the committed pre-envelope
// signature file, predicts from it, and checks the v2 re-save
// predicts bit-identically: stored metadata migrates losslessly.
func TestGoldenV1SignatureMigration(t *testing.T) {
	raw, err := os.ReadFile("testdata/golden_v1.sig.json")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, []byte("payloadSHA256")) {
		t.Fatal("golden file is not bare v1; regenerate from the pre-envelope writer")
	}
	saved, err := LoadSaved(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("golden v1 migration: %v", err)
	}
	if saved.AppName != "cg" || saved.Procs != 8 || saved.Workload != "classA" {
		t.Fatalf("golden decoded to %s/p%d/%q", saved.AppName, saved.Procs, saved.Workload)
	}
	app, err := apps.Make(saved.AppName, saved.Procs, saved.Workload)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := saved.Reassemble(app)
	if err != nil {
		t.Fatal(err)
	}
	target := deployOn(t, machine.ClusterB(), 8)
	r1, err := sig.Execute(target)
	if err != nil {
		t.Fatal(err)
	}
	var v2 bytes.Buffer
	if err := sig.Save(&v2, saved.Workload, saved.BaseCluster); err != nil {
		t.Fatal(err)
	}
	saved2, err := LoadSaved(bytes.NewReader(v2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	sig2, err := saved2.Reassemble(app)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sig2.Execute(target)
	if err != nil {
		t.Fatal(err)
	}
	if r1.PET != r2.PET || r1.SET != r2.SET {
		t.Errorf("migrated signature diverges: PET %v/%v SET %v/%v", r1.PET, r2.PET, r1.SET, r2.SET)
	}
}

// TestEnvelopeDetectsEveryByteFlip flips each byte of a persisted
// envelope in turn; every flip must either be rejected (JSON syntax,
// version check, or payload checksum) or decode to the exact original
// signature (e.g. a case flip in a key name, which Go's JSON matches
// case-insensitively). What can never happen is a silently *wrong*
// signature.
func TestEnvelopeDetectsEveryByteFlip(t *testing.T) {
	app := iterApp(8, 10)
	base := deployOn(t, machine.ClusterA(), 8)
	tb, _ := analyze(t, app, base)
	br, err := Build(app, tb, base, lightOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := br.Signature.Save(&buf, "wl", "Cluster A"); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	want, err := LoadSaved(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < len(raw); pos++ {
		corrupted := append([]byte(nil), raw...)
		corrupted[pos] ^= 1 << (pos % 8)
		got, err := LoadSaved(bytes.NewReader(corrupted))
		if err == nil && !reflect.DeepEqual(got, want) {
			t.Fatalf("bit flip at byte %d loaded a different signature", pos)
		}
	}
	// Torn tails: anything cutting into the JSON itself must fail
	// (cutting only the trailing newline is a complete document).
	for _, cut := range []int{0, 1, len(raw) / 2, len(raw) - 2} {
		if _, err := LoadSaved(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation to %d bytes went undetected", cut)
		}
	}
}

func TestLoadSavedRejectsGarbage(t *testing.T) {
	if _, err := LoadSaved(strings.NewReader("not json")); err == nil {
		t.Error("garbage should fail")
	}
	if _, err := LoadSaved(strings.NewReader(`{"AppName":"x"}`)); err == nil {
		t.Error("missing table/catalog should fail")
	}
}

func TestReassembleMismatch(t *testing.T) {
	app := iterApp(8, 20)
	base := deployOn(t, machine.ClusterA(), 8)
	tb, _ := analyze(t, app, base)
	br, err := Build(app, tb, base, lightOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := br.Signature.Save(&buf, "", ""); err != nil {
		t.Fatal(err)
	}
	saved, err := LoadSaved(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	wrongProcs := iterApp(4, 20)
	if _, err := saved.Reassemble(wrongProcs); err == nil {
		t.Error("procs mismatch should fail")
	}
	wrongName := iterApp(8, 20)
	wrongName.Name = "other"
	if _, err := saved.Reassemble(wrongName); err == nil {
		t.Error("name mismatch should fail")
	}
}
