package signature

import (
	"bytes"
	"pas2p/internal/machine"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	app := iterApp(8, 30)
	base := deployOn(t, machine.ClusterA(), 8)
	tb, _ := analyze(t, app, base)
	br, err := Build(app, tb, base, lightOptions())
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := br.Signature.Save(&buf, "testwl", "Cluster A"); err != nil {
		t.Fatal(err)
	}
	saved, err := LoadSaved(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if saved.AppName != "iter" || saved.Procs != 8 || saved.BaseISA != "x86_64" {
		t.Errorf("saved header wrong: %+v", saved)
	}
	reassembled, err := saved.Reassemble(app)
	if err != nil {
		t.Fatal(err)
	}

	// The reassembled signature must predict identically to the
	// original (deterministic runtime, same segments).
	target := deployOn(t, machine.ClusterB(), 8)
	r1, err := br.Signature.Execute(target)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := reassembled.Execute(target)
	if err != nil {
		t.Fatal(err)
	}
	if r1.PET != r2.PET || r1.SET != r2.SET {
		t.Errorf("reassembled signature diverges: PET %v/%v SET %v/%v",
			r1.PET, r2.PET, r1.SET, r2.SET)
	}
}

func TestLoadSavedRejectsGarbage(t *testing.T) {
	if _, err := LoadSaved(strings.NewReader("not json")); err == nil {
		t.Error("garbage should fail")
	}
	if _, err := LoadSaved(strings.NewReader(`{"AppName":"x"}`)); err == nil {
		t.Error("missing table/catalog should fail")
	}
}

func TestReassembleMismatch(t *testing.T) {
	app := iterApp(8, 20)
	base := deployOn(t, machine.ClusterA(), 8)
	tb, _ := analyze(t, app, base)
	br, err := Build(app, tb, base, lightOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := br.Signature.Save(&buf, "", ""); err != nil {
		t.Fatal(err)
	}
	saved, err := LoadSaved(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	wrongProcs := iterApp(4, 20)
	if _, err := saved.Reassemble(wrongProcs); err == nil {
		t.Error("procs mismatch should fail")
	}
	wrongName := iterApp(8, 20)
	wrongName.Name = "other"
	if _, err := saved.Reassemble(wrongName); err == nil {
		t.Error("name mismatch should fail")
	}
}
