// Package signature implements PAS2P stage B: constructing the
// parallel application signature (§3.4) and executing it on target
// machines to predict the full application execution time (§4).
//
// A signature is the application's real code plus the phase table and
// a catalogue of coordinated checkpoints taken just before each
// relevant phase's start point. Executing the signature restarts each
// checkpoint, lets the machine warm up, measures the phase once, and
// applies Equation (1), PET = Σ PhaseETᵢ·Wᵢ. Because the simulation
// runtime is deterministic, checkpoints are replay positions: between
// phases the application's code still runs (state stays correct) but
// costs no virtual time, exactly the observable timing behaviour of a
// checkpoint restore.
package signature

import (
	"fmt"
	"sort"

	"pas2p/internal/checkpoint"
	"pas2p/internal/faults"
	"pas2p/internal/machine"
	"pas2p/internal/mpi"
	"pas2p/internal/obs"
	"pas2p/internal/phase"
	"pas2p/internal/trace"
	"pas2p/internal/vtime"
)

// Options tunes signature construction and execution.
type Options struct {
	// WarmupEvents places each checkpoint this many events before the
	// phase's start point, so caches and TLBs warm up before
	// measurement begins (§3.4 / [27]).
	WarmupEvents int64
	// ColdFactor is the compute slowdown right after a restart, decayed
	// across the warm-up region.
	ColdFactor float64
	// Checkpoint prices snapshot/restart operations.
	Checkpoint checkpoint.CostModel
	// StateBytesPerRank is the process footprint the checkpoint cost
	// model sees.
	StateBytesPerRank int64
	// AllPhases builds the signature from every phase instead of only
	// the relevant ones (the paper's discussion: doing so removes the
	// residual prediction error at the cost of a longer signature).
	AllPhases bool
	// Estimator selects how the per-phase execution time is derived
	// from the per-rank measurements (see ETEstimator).
	Estimator ETEstimator
	// NICContention runs the construction and execution under per-node
	// NIC serialisation, matching how the application itself is run.
	NICContention bool
	// AlgorithmicCollectives matches the application runs' collective
	// costing during construction and execution.
	AlgorithmicCollectives bool
	// Observer, when non-nil, records construction/execution spans,
	// checkpoint counters and — if it carries a timeline — rank tracks
	// with restart/measure annotations during Execute. A pointer keeps
	// Options comparable; the json tag keeps persisted signatures free
	// of runtime state.
	Observer *obs.Observer `json:"-"`
	// Faults, when non-nil, injects deterministic faults into signature
	// execution: message loss/duplication/delay inside each measured
	// phase and rank crashes at checkpoint restarts (bounded retries
	// with exponential backoff; an exhausted retry budget abandons the
	// phase and Execute degrades to the surviving ones). Like Observer,
	// a pointer keeps Options comparable and the json tag keeps
	// persisted signatures free of runtime state.
	Faults *faults.Injector `json:"-"`
}

// ETEstimator selects the phase-time estimator. The ablation
// benchmarks compare them; EstimatorPairDelta is the default.
type ETEstimator int

const (
	// EstimatorPairDelta (the default) uses the delta between two
	// back-to-back occurrences' completion cuts when the phase table
	// provides a pair — the marginal per-repetition cost, immune to
	// pipeline-fill effects — falling back to the last span.
	EstimatorPairDelta ETEstimator = iota
	// EstimatorLastSpan measures from the last rank entering the phase
	// to the last one leaving (the single-occurrence wall span).
	EstimatorLastSpan
	// EstimatorMeanSpan averages each rank's own busy span.
	EstimatorMeanSpan
)

// DefaultOptions mirrors the paper's setup.
func DefaultOptions() Options {
	return Options{
		WarmupEvents:      4,
		ColdFactor:        2.0,
		Checkpoint:        checkpoint.DefaultDMTCP(),
		StateBytesPerRank: 64 << 20,
	}
}

func (o Options) validate() error {
	if o.WarmupEvents < 0 {
		return fmt.Errorf("signature: negative warmup events")
	}
	if o.ColdFactor < 1 {
		return fmt.Errorf("signature: cold factor %v must be >= 1", o.ColdFactor)
	}
	if !o.Checkpoint.Valid() {
		return fmt.Errorf("signature: invalid checkpoint cost model")
	}
	if o.StateBytesPerRank < 0 {
		return fmt.Errorf("signature: negative state size")
	}
	return nil
}

// Signature is a constructed parallel application signature.
type Signature struct {
	// App is the application's real code; the signature executes
	// segments of it, never a mock-up.
	App mpi.App
	// Table is the phase table the signature was built from.
	Table *phase.Table
	// Catalog holds the simulated checkpoints.
	Catalog *checkpoint.Catalog
	// BaseISA is the instruction set of the machine the signature's
	// binaries were produced on.
	BaseISA string
	Options Options

	segments []segment
}

// segment is one relevant phase prepared for execution, in trace order.
type segment struct {
	row  phase.TableRow
	ckpt []int64 // per-process checkpoint position (before row start)
}

// BuildResult reports signature construction.
type BuildResult struct {
	Signature *Signature
	// SCT is the signature construction time: re-running the
	// application with checkpointing until the last relevant phase is
	// captured (Table 8's SCT column).
	SCT vtime.Duration
	// Checkpoints is the number of snapshots taken.
	Checkpoints int
}

// Build constructs the signature on the base machine: the application
// is re-run under the libpas2p-equivalent interceptor, coordinated
// checkpoints are taken at each selected phase's checkpoint position,
// and the run is cut short (fast-forwarded) once the last checkpoint
// is stored.
func Build(app mpi.App, tb *phase.Table, base *machine.Deployment, opts Options) (*BuildResult, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if err := tb.Validate(); err != nil {
		return nil, err
	}
	if app.Procs != tb.Procs {
		return nil, fmt.Errorf("signature: app has %d procs, table %d", app.Procs, tb.Procs)
	}
	if base.Ranks != app.Procs {
		return nil, fmt.Errorf("signature: base deployment has %d ranks, app %d", base.Ranks, app.Procs)
	}
	segs := selectSegments(tb, opts)
	if len(segs) == 0 {
		return nil, fmt.Errorf("signature: %s has no phases to capture", app.Name)
	}
	sig := &Signature{
		App: app, Table: tb, BaseISA: base.Cluster.ISA, Options: opts,
		segments: segs,
	}
	sig.Catalog = &checkpoint.Catalog{
		AppName: app.Name, Procs: tb.Procs, ISA: base.Cluster.ISA,
	}
	for _, s := range segs {
		sig.Catalog.Snapshots = append(sig.Catalog.Snapshots, checkpoint.Snapshot{
			PhaseID:    s.row.PhaseID,
			Position:   s.ckpt,
			StateBytes: opts.StateBytesPerRank,
		})
	}
	if err := sig.Catalog.Validate(); err != nil {
		return nil, err
	}

	// Construction run: execute normally, charging a snapshot at each
	// checkpoint position; after the last snapshot the remainder of
	// the run is cut off (free mode), as the signature "terminates the
	// execution because it is not necessary to continue".
	sp := opts.Observer.StartSpan("signature.build")
	snapCost := opts.Checkpoint.SnapshotTime(opts.StateBytesPerRank)
	res, err := mpi.Run(app, mpi.RunConfig{
		Deployment:             base,
		NICContention:          opts.NICContention,
		AlgorithmicCollectives: opts.AlgorithmicCollectives,
		// Metrics only: the construction run's per-event tracks would
		// bloat the timeline without aiding prediction analysis.
		Observer: opts.Observer.MetricsOnly(),
		Faults:   opts.Faults,
		NewInterceptor: func(rank int) mpi.Interceptor {
			return newBuilderInterceptor(rank, segs, snapCost)
		},
	})
	if err != nil {
		sp.End()
		return nil, fmt.Errorf("signature: construction run: %w", err)
	}
	sp.SetCounter("checkpoints", int64(len(segs)))
	sp.End()
	if reg := opts.Observer.Reg(); reg != nil {
		reg.Counter("signature.checkpoints").Add(int64(len(segs)))
	}
	return &BuildResult{Signature: sig, SCT: res.Elapsed, Checkpoints: len(segs)}, nil
}

// selectSegments orders the chosen phases by their occurrence position
// and computes per-process checkpoint positions.
func selectSegments(tb *phase.Table, opts Options) []segment {
	rows := tb.Rows
	var segs []segment
	for _, r := range rows {
		if !r.Relevant && !opts.AllPhases {
			continue
		}
		ck := make([]int64, len(r.StartEvents))
		for p := range ck {
			ck[p] = r.StartEvents[p] - opts.WarmupEvents
			if ck[p] < 0 {
				ck[p] = 0
			}
		}
		segs = append(segs, segment{row: r, ckpt: ck})
	}
	sort.Slice(segs, func(i, j int) bool {
		return segs[i].row.StartTick < segs[j].row.StartTick
	})
	// Checkpoint positions must not precede the previous segment's end
	// on any process (segments are disjoint occurrence windows; a
	// paired segment extends through its second occurrence).
	for i := 1; i < len(segs); i++ {
		prev := &segs[i-1].row
		for p := range segs[i].ckpt {
			end := prev.EndEvents[p]
			if prev.HasPair && prev.End2Events[p] > end {
				end = prev.End2Events[p]
			}
			if segs[i].ckpt[p] < end {
				segs[i].ckpt[p] = end
			}
		}
	}
	return segs
}

// builderInterceptor drives the construction run of one rank.
type builderInterceptor struct {
	rank     int
	segs     []segment
	snapCost vtime.Duration
	next     int
}

func newBuilderInterceptor(rank int, segs []segment, snapCost vtime.Duration) *builderInterceptor {
	return &builderInterceptor{rank: rank, segs: segs, snapCost: snapCost}
}

func (b *builderInterceptor) Init(c *mpi.Comm) { b.at(c, 0) }

func (b *builderInterceptor) Before(c *mpi.Comm, kind trace.Kind, idx int64) {}

func (b *builderInterceptor) After(c *mpi.Comm, kind trace.Kind, idx int64) {
	b.at(c, idx+1)
}

// at processes every transition scheduled at the given replay position.
func (b *builderInterceptor) at(c *mpi.Comm, pos int64) {
	for b.next < len(b.segs) && pos == b.segs[b.next].ckpt[b.rank] {
		// Coordinated checkpoint: this process writes its state out.
		c.Elapse(b.snapCost)
		b.next++
		if b.next == len(b.segs) {
			// Last snapshot stored: cut the rest of the run off.
			c.SetMode(0, true)
		}
	}
}
