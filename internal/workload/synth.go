// Synthetic trace generation for out-of-core scale testing. The
// simulator-backed apps materialise their whole event stream in
// memory, which is exactly what a 100M-event soak of the streaming
// pipeline must not do — so Synthesize writes a v2 tracefile directly
// through trace.BlockWriter in O(1) memory: an iterative ring exchange
// with a periodic allreduce, the canonical SPMD shape whose repeating
// windows the phase stage folds into a handful of phases.
//
// The generated trace is fully consistent under the PAS2P ordering:
// every receive references its matching send's (source, sequence)
// identity, every collective occurrence is joined by all ranks, and
// per-rank physical clocks are strictly monotone. Events are emitted
// grouped by rank in rank order — the layout trace.RankStreams random-
// accesses — and timing is a pure function of (Seed, iteration), so
// the same spec always produces byte-identical files.
package workload

import (
	"fmt"
	"io"

	"pas2p/internal/trace"
	"pas2p/internal/vtime"
)

// SynthSpec describes a synthetic ring+allreduce trace.
type SynthSpec struct {
	// AppName labels the tracefile header ("" selects "synth-ring").
	AppName string
	// Procs is the rank count (>= 2).
	Procs int
	// TargetEvents is the desired total event count across all ranks;
	// the generator emits the largest whole-iteration count not
	// exceeding it (at least one iteration).
	TargetEvents int64
	// CollEvery inserts an allreduce every this many iterations
	// (0 selects 10).
	CollEvery int
	// Seed perturbs the per-iteration compute times deterministically.
	Seed uint64
}

func (s SynthSpec) withDefaults() SynthSpec {
	if s.AppName == "" {
		s.AppName = "synth-ring"
	}
	if s.CollEvery <= 0 {
		s.CollEvery = 10
	}
	return s
}

// validate rejects specs the generator cannot honour.
func (s SynthSpec) validate() error {
	if s.Procs < 2 {
		return fmt.Errorf("workload: synth: need >= 2 procs, have %d", s.Procs)
	}
	if s.TargetEvents < int64(2*s.Procs) {
		return fmt.Errorf("workload: synth: target %d events cannot fit one iteration on %d procs",
			s.TargetEvents, s.Procs)
	}
	return nil
}

// iterations resolves the whole-iteration count for the target.
func (s SynthSpec) iterations() int64 {
	r := int64(s.CollEvery)
	perProc := s.TargetEvents / int64(s.Procs)
	// perProcCount(I) = 2I + I/r is monotone; start at the continuous
	// estimate and walk to the boundary.
	i := perProc * r / (2*r + 1)
	for ; synthPerProc(i+1, r)*int64(s.Procs) <= s.TargetEvents; i++ {
	}
	for ; i > 1 && synthPerProc(i, r)*int64(s.Procs) > s.TargetEvents; i-- {
	}
	if i < 1 {
		i = 1
	}
	return i
}

func synthPerProc(iters, collEvery int64) int64 {
	return 2*iters + iters/collEvery
}

// EventCount returns the exact total event count Synthesize will emit
// for the spec (callers size soak budgets from it).
func (s SynthSpec) EventCount() int64 {
	s = s.withDefaults()
	return synthPerProc(s.iterations(), int64(s.CollEvery)) * int64(s.Procs)
}

// Timing constants: one ring step computes ~50us and exchanges 64 KiB;
// a collective iteration adds a ~150us reduction step. The jitter keys
// on the iteration only (not the rank), so every rank shares one clock
// trajectory and the application execution time is computable from a
// single rank's walk.
const (
	synthMsgBytes = 64 << 10
	synthSendCost = 5 * vtime.Microsecond
	synthRecvCost = 8 * vtime.Microsecond
	synthCollCost = 30 * vtime.Microsecond
	synthRingWork = 50 * vtime.Microsecond
	synthRecvGap  = 2 * vtime.Microsecond
	synthCollWork = 150 * vtime.Microsecond
	synthCollCtx  = 1 // RelA context id for the allreduce chain
	synthRingTag  = 7
)

// jitter derives a small deterministic compute perturbation from the
// seed and iteration (SplitMix64 finaliser).
func jitter(seed uint64, i int64) vtime.Duration {
	x := seed + uint64(i)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return vtime.Duration(x%20) * vtime.Microsecond
}

// synthAET walks one rank's clock over all iterations to obtain the
// application execution time the header declares.
func synthAET(iters int64, collEvery int64, seed uint64) vtime.Duration {
	var clock vtime.Time
	for i := int64(0); i < iters; i++ {
		j := jitter(seed, i)
		clock += vtime.Time(synthRingWork + j + synthSendCost)
		clock += vtime.Time(synthRecvGap + synthRecvCost)
		if i%collEvery == collEvery-1 {
			clock += vtime.Time(synthCollWork + j + synthCollCost)
		}
	}
	return vtime.Duration(clock)
}

// Synthesize streams the spec's trace to w as a v2 tracefile, emitting
// events rank by rank through a reused block-sized buffer — resident
// memory is independent of the event count. It returns the header
// metadata (with the exact emitted event count).
func Synthesize(w io.Writer, spec SynthSpec) (trace.Meta, error) {
	spec = spec.withDefaults()
	if err := spec.validate(); err != nil {
		return trace.Meta{}, err
	}
	iters := spec.iterations()
	collEvery := int64(spec.CollEvery)
	perProc := synthPerProc(iters, collEvery)
	total := perProc * int64(spec.Procs)
	meta := trace.Meta{
		AppName: spec.AppName,
		Procs:   spec.Procs,
		Events:  uint64(total),
		AET:     synthAET(iters, collEvery, spec.Seed),
	}
	// Workers: 1 keeps the serial encode path, whose Append copies out
	// of the caller's slice before returning — that is what lets one
	// buffer be recycled for the entire run.
	bw, err := trace.NewBlockWriter(w, meta, trace.CodecOptions{Workers: 1})
	if err != nil {
		return trace.Meta{}, err
	}

	const chunk = 2048
	buf := make([]trace.Event, 0, chunk)
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		if err := bw.Append(buf); err != nil {
			return err
		}
		buf = buf[:0]
		return nil
	}

	var id int64
	for p := 0; p < spec.Procs; p++ {
		p32 := int32(p)
		prev := int32((p - 1 + spec.Procs) % spec.Procs)
		next := int32((p + 1) % spec.Procs)
		var clock vtime.Time
		var num int64
		emit := func(e trace.Event) error {
			e.ID = id
			e.Process = p32
			e.Number = num
			e.LT = trace.NoLT
			id++
			num++
			buf = append(buf, e)
			if len(buf) == chunk {
				return flush()
			}
			return nil
		}
		for i := int64(0); i < iters; i++ {
			j := jitter(spec.Seed, i)
			// Ring send to the successor; the per-rank send sequence is
			// exactly the iteration number.
			enter := clock + vtime.Time(synthRingWork+j)
			exit := enter + vtime.Time(synthSendCost)
			if err := emit(trace.Event{
				Kind: trace.Send, Involved: 2, CollOp: -1,
				Peer: next, Tag: synthRingTag, Size: synthMsgBytes,
				Enter: enter, Exit: exit,
				RelA: int64(p), RelB: i,
				ComputeBefore: synthRingWork + j,
			}); err != nil {
				return trace.Meta{}, err
			}
			clock = exit
			// Matching receive from the predecessor's iteration-i send.
			enter = clock + vtime.Time(synthRecvGap)
			exit = enter + vtime.Time(synthRecvCost)
			if err := emit(trace.Event{
				Kind: trace.Recv, Involved: 2, CollOp: -1,
				Peer: prev, Tag: synthRingTag, Size: synthMsgBytes,
				Enter: enter, Exit: exit,
				RelA: int64(prev), RelB: i,
				ComputeBefore: synthRecvGap,
			}); err != nil {
				return trace.Meta{}, err
			}
			clock = exit
			if i%collEvery == collEvery-1 {
				enter = clock + vtime.Time(synthCollWork+j)
				exit = enter + vtime.Time(synthCollCost)
				if err := emit(trace.Event{
					Kind: trace.Collective, Involved: int32(spec.Procs),
					CollOp: int8(3), // network.Allreduce
					Peer:   -1, Tag: 0, Size: 8 * int64(spec.Procs),
					Enter: enter, Exit: exit,
					RelA: synthCollCtx, RelB: i / collEvery,
					ComputeBefore: synthCollWork + j,
				}); err != nil {
					return trace.Meta{}, err
				}
				clock = exit
			}
		}
	}
	if err := flush(); err != nil {
		return trace.Meta{}, err
	}
	if err := bw.Close(); err != nil {
		return trace.Meta{}, err
	}
	return meta, nil
}
