package workload

import (
	"math"
	"testing"

	"pas2p/internal/apps"
	"pas2p/internal/logical"
	"pas2p/internal/machine"
	"pas2p/internal/mpi"
	"pas2p/internal/phase"
	"pas2p/internal/vtime"
)

// analyzeAt runs an app at one workload and returns its analysis plus
// the measured AET.
func analyzeAt(t testing.TB, name string, procs int, wl string) (*phase.Analysis, vtime.Duration) {
	t.Helper()
	app, err := apps.Make(name, procs, wl)
	if err != nil {
		t.Fatal(err)
	}
	d, err := machine.NewDeployment(machine.ClusterA(), procs, machine.MapBlock)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mpi.Run(app, mpi.RunConfig{Deployment: d, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	l, err := logical.Order(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	a, err := phase.Extract(l, phase.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return a, res.Elapsed
}

func TestFitValidation(t *testing.T) {
	a, _ := analyzeAt(t, "cg", 8, "classA")
	if _, err := Fit(nil); err == nil {
		t.Error("no points should fail")
	}
	if _, err := Fit([]Point{{Param: 1, Analysis: a}}); err == nil {
		t.Error("single point should fail")
	}
	if _, err := Fit([]Point{{Param: 0, Analysis: a}, {Param: 1, Analysis: a}}); err == nil {
		t.Error("non-positive parameter should fail")
	}
	if _, err := Fit([]Point{{Param: 1, Analysis: a}, {Param: 1, Analysis: a}}); err == nil {
		t.Error("duplicate parameter should fail")
	}
	if _, err := Fit([]Point{{Param: 1, Analysis: a}, {Param: 2, Analysis: nil}}); err == nil {
		t.Error("nil analysis should fail")
	}
}

// TestSyntheticPowerLaw validates the fit on an app whose per-phase
// compute scales exactly as a power of the workload parameter.
func TestSyntheticPowerLaw(t *testing.T) {
	mk := func(scale float64) mpi.App {
		return mpi.App{
			Name:  "synth",
			Procs: 8,
			Body: func(c *mpi.Comm) {
				n := c.Size()
				iters := int(10 * scale) // weight grows linearly
				for i := 0; i < iters; i++ {
					c.Compute(4e7 * scale * scale) // ET grows quadratically (compute-dominated)
					c.SendrecvN((c.Rank()+1)%n, 0, 1024, (c.Rank()+n-1)%n, 0)
					c.Allreduce([]float64{1}, mpi.Sum)
				}
			},
		}
	}
	analyze := func(scale float64) *phase.Analysis {
		d, _ := machine.NewDeployment(machine.ClusterA(), 8, machine.MapBlock)
		res, err := mpi.Run(mk(scale), mpi.RunConfig{Deployment: d, Trace: true})
		if err != nil {
			t.Fatal(err)
		}
		l, err := logical.Order(res.Trace)
		if err != nil {
			t.Fatal(err)
		}
		a, err := phase.Extract(l, phase.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	m, err := Fit([]Point{
		{Param: 1, Analysis: analyze(1)},
		{Param: 2, Analysis: analyze(2)},
		{Param: 3, Analysis: analyze(3)},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth at scale 5.
	d, _ := machine.NewDeployment(machine.ClusterA(), 8, machine.MapBlock)
	res, err := mpi.Run(mk(5), mpi.RunConfig{Deployment: d})
	if err != nil {
		t.Fatal(err)
	}
	got := m.Predict(5).Seconds()
	want := res.Elapsed.Seconds()
	if e := math.Abs(got-want) / want; e > 0.15 {
		t.Errorf("extrapolated %.3fs vs actual %.3fs (%.1f%% error)", got, want, 100*e)
	}
}

// TestCGClassExtrapolation fits CG at classes A and B (cheap) and
// extrapolates class C — the workload-effect use case: predict a big
// run from two small analyses.
func TestCGClassExtrapolation(t *testing.T) {
	// Parameter axis: the matrix nonzero count per class.
	nnz := map[string]float64{"classA": 1.85e6, "classB": 1.31e7, "classC": 3.67e7}
	aA, _ := analyzeAt(t, "cg", 8, "classA")
	aB, _ := analyzeAt(t, "cg", 8, "classB")
	_, aetC := analyzeAt(t, "cg", 8, "classC")

	m, err := Fit([]Point{
		{Param: nnz["classA"], Analysis: aA},
		{Param: nnz["classB"], Analysis: aB},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := m.Predict(nnz["classC"]).Seconds()
	want := aetC.Seconds()
	if e := math.Abs(got-want) / want; e > 0.40 {
		t.Errorf("classC extrapolation %.1fs vs actual %.1fs (%.1f%% error)", got, want, 100*e)
	}
}

func TestPhaseModelAccessors(t *testing.T) {
	pm := PhaseModel{ETCoef: 2, ETExp: 1, WCoef: 3, WExp: 0}
	if got := pm.ET(4).Seconds(); math.Abs(got-8) > 1e-9 {
		t.Errorf("ET(4) = %v, want 8", got)
	}
	if got := pm.Weight(100); got != 3 {
		t.Errorf("Weight(100) = %v, want 3", got)
	}
}

func TestFingerprintStability(t *testing.T) {
	// The same app analysed at two workloads must produce matching
	// fingerprints for its dominant phase.
	aA, _ := analyzeAt(t, "cg", 8, "classA")
	aB, _ := analyzeAt(t, "cg", 8, "classB")
	fpsA := map[uint64]bool{}
	for _, p := range aA.Phases {
		fpsA[fingerprint(p)] = true
	}
	domB := aB.SortedByTotalDur()[0]
	if !fpsA[fingerprint(domB)] {
		t.Error("dominant classB phase has no fingerprint match in classA")
	}
}

func TestUnmatchedPhaseKeptConstant(t *testing.T) {
	aA, _ := analyzeAt(t, "cg", 8, "classA")
	aB, _ := analyzeAt(t, "moldy", 8, "tip4p-short") // disjoint structure
	m, err := Fit([]Point{
		{Param: 1, Analysis: aA},
		{Param: 2, Analysis: aB},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Unmatched == 0 {
		t.Error("disjoint apps should produce unmatched phases")
	}
	for _, p := range m.Phases {
		if p.Points == 1 && (p.ETExp != 0 || p.WExp != 0) {
			t.Error("single-point phases must be constant")
		}
	}
}
