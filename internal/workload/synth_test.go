package workload

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"pas2p/internal/logical"
	"pas2p/internal/phase"
	"pas2p/internal/trace"
)

func TestSynthesizeDeterministicAndDecodable(t *testing.T) {
	spec := SynthSpec{Procs: 8, TargetEvents: 20_000, Seed: 42}
	var a, b bytes.Buffer
	metaA, err := Synthesize(&a, spec)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if _, err := Synthesize(&b, spec); err != nil {
		t.Fatalf("Synthesize again: %v", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same spec produced different bytes")
	}
	if got := spec.EventCount(); got != int64(metaA.Events) {
		t.Fatalf("EventCount = %d, meta declares %d", got, metaA.Events)
	}
	if int64(metaA.Events) > spec.TargetEvents {
		t.Fatalf("emitted %d events, over target %d", metaA.Events, spec.TargetEvents)
	}

	tr, err := trace.Decode(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(tr.Events) != int(metaA.Events) || tr.Procs != spec.Procs {
		t.Fatalf("decoded %d events / %d procs, want %d / %d",
			len(tr.Events), tr.Procs, metaA.Events, spec.Procs)
	}
	if tr.AET <= 0 {
		t.Fatal("non-positive AET in header")
	}
}

// TestSynthesizeAnalyzable proves the generated trace is consistent
// under the PAS2P ordering and yields the expected phase structure,
// and that the streaming pipeline produces the identical phase table.
func TestSynthesizeAnalyzable(t *testing.T) {
	spec := SynthSpec{Procs: 8, TargetEvents: 12_000, Seed: 7, CollEvery: 5}
	var buf bytes.Buffer
	if _, err := Synthesize(&buf, spec); err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	data := buf.Bytes()

	tr, err := trace.Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	l, err := logical.Order(tr)
	if err != nil {
		t.Fatalf("Order: %v", err)
	}
	if err := l.Validate(); err != nil {
		t.Fatalf("logical.Validate: %v", err)
	}
	an, err := phase.Extract(l, phase.DefaultConfig())
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if len(an.Phases) == 0 {
		t.Fatal("no phases found in synthetic trace")
	}
	// The ring body repeats heavily: the dominant phase must carry a
	// large weight relative to the distinct phase count.
	tb, err := an.BuildTable(1)
	if err != nil {
		t.Fatalf("BuildTable: %v", err)
	}
	maxW := 0
	for _, row := range tb.Rows {
		if row.Weight > maxW {
			maxW = row.Weight
		}
	}
	if maxW < 100 {
		t.Fatalf("dominant phase weight %d; synthetic trace did not fold into repeating phases", maxW)
	}

	// Streaming path, forced to spill, must match bit for bit.
	br, err := trace.NewBlockReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("NewBlockReader: %v", err)
	}
	rs, err := br.RankStreams()
	if err != nil {
		t.Fatalf("RankStreams: %v", err)
	}
	tick, err := logical.StreamOrder(rs)
	if err != nil {
		t.Fatalf("StreamOrder: %v", err)
	}
	res, err := phase.ExtractStreamTable(context.Background(), tick, tick.Meta(), 1, phase.StreamConfig{
		Config:         phase.DefaultConfig(),
		MemBudgetBytes: 1,
		SpillDir:       t.TempDir(),
	})
	if err != nil {
		t.Fatalf("ExtractStreamTable: %v", err)
	}
	defer res.Close()
	if !reflect.DeepEqual(res.Table.Rows, tb.Rows) {
		t.Fatalf("streamed table differs from in-core:\n stream: %+v\n incore: %+v", res.Table.Rows, tb.Rows)
	}
	if res.Stats.SpilledPhases == 0 && len(an.Phases) > 1 {
		t.Fatal("budget=1 never spilled")
	}
}

func TestSynthSpecValidation(t *testing.T) {
	if _, err := Synthesize(nil, SynthSpec{Procs: 1, TargetEvents: 100}); err == nil {
		t.Fatal("accepted 1 proc")
	}
	if _, err := Synthesize(nil, SynthSpec{Procs: 8, TargetEvents: 3}); err == nil {
		t.Fatal("accepted target below one iteration")
	}
}
