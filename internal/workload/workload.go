// Package workload implements the workload-effect extension of PAS2P
// (Canillas, Wong, Rexachs, Luque — "Predicting parallel applications
// performance using signatures: The workload effect", AICCSA 2011),
// which the paper's Stage A points to: a signature predicts only the
// data set it was built with, but the *phase structure* of an
// application is stable across workload sizes — only each phase's
// execution time and weight scale. Analysing the application at two or
// more (small) workload sizes therefore lets PAS2P fit per-phase
// scaling laws and extrapolate the execution time for a larger, never
// fully executed workload.
//
// Phases are matched across workloads by their communication-pattern
// fingerprint (the similarity comparison with volumes and compute
// ignored); each matched phase gets power-law fits ET(w)=a·w^b and
// W(w)=c·w^d over the analysed points, and the prediction applies
// Equation (1) with the extrapolated values.
package workload

import (
	"fmt"
	"math"
	"sort"

	"pas2p/internal/phase"
	"pas2p/internal/vtime"
)

// Point is one analysed workload size.
type Point struct {
	// Param is the scalar workload parameter (problem size, nonzeros,
	// grid volume — the caller chooses the axis).
	Param float64
	// Analysis is the phase analysis of the run at this size.
	Analysis *phase.Analysis
}

// PhaseModel is the fitted scaling of one matched phase.
type PhaseModel struct {
	// Fingerprint identifies the phase across workloads.
	Fingerprint uint64
	// ET(w) = ETCoef · w^ETExp (seconds); W(w) = WCoef · w^WExp.
	ETCoef, ETExp float64
	WCoef, WExp   float64
	// Points is how many analysed workloads contained the phase.
	Points int
}

// ET extrapolates the phase execution time at a workload size.
func (p *PhaseModel) ET(param float64) vtime.Duration {
	return vtime.FromSeconds(p.ETCoef * math.Pow(param, p.ETExp))
}

// Weight extrapolates the phase weight at a workload size.
func (p *PhaseModel) Weight(param float64) float64 {
	return p.WCoef * math.Pow(param, p.WExp)
}

// Model is a fitted workload-scaling model for one application.
type Model struct {
	Phases []PhaseModel
	// Unmatched counts phases that appeared in only one analysed
	// point and were extrapolated with the global trend instead.
	Unmatched int
}

// Predict applies Equation (1) with extrapolated phase times and
// weights.
func (m *Model) Predict(param float64) vtime.Duration {
	var pet vtime.Duration
	for i := range m.Phases {
		p := &m.Phases[i]
		pet += vtime.Duration(float64(p.ET(param)) * p.Weight(param))
	}
	return pet
}

// fingerprint hashes a phase's communication pattern, ignoring volumes
// and compute times (which the workload changes by design).
func fingerprint(p *phase.Phase) uint64 {
	var h uint64 = 1469598103934665603 // FNV offset
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(uint64(p.TickLen))
	for _, row := range p.Cells {
		for pr, c := range row {
			if !c.Present {
				continue
			}
			mix(uint64(pr)*2654435761 + c.Sig)
		}
		mix(0xabcdef)
	}
	return h
}

// Fit builds the scaling model from two or more analysed workload
// points with strictly increasing parameters.
func Fit(points []Point) (*Model, error) {
	if len(points) < 2 {
		return nil, fmt.Errorf("workload: need at least 2 analysed points, have %d", len(points))
	}
	sorted := append([]Point(nil), points...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Param < sorted[j].Param })
	for i, pt := range sorted {
		if pt.Param <= 0 {
			return nil, fmt.Errorf("workload: point %d has non-positive parameter %v", i, pt.Param)
		}
		if i > 0 && pt.Param == sorted[i-1].Param {
			return nil, fmt.Errorf("workload: duplicate parameter %v", pt.Param)
		}
		if pt.Analysis == nil || len(pt.Analysis.Phases) == 0 {
			return nil, fmt.Errorf("workload: point %d has no phases", i)
		}
	}

	// Collect per-fingerprint observations across points. Distinct
	// phases of one analysis can share a fingerprint (the extractor
	// keeps windows separate that the pattern view cannot tell apart);
	// they are one behaviour for scaling purposes, so aggregate them
	// per point: weights add, times combine duration-weighted.
	series := map[uint64][]obs{}
	for _, pt := range sorted {
		perFP := map[uint64]*obs{}
		var order []uint64
		for _, p := range pt.Analysis.Phases {
			fp := fingerprint(p)
			o := perFP[fp]
			if o == nil {
				o = &obs{param: pt.Param}
				perFP[fp] = o
				order = append(order, fp)
			}
			w := float64(p.Weight())
			et := p.MeanET().Seconds()
			if o.w+w > 0 {
				o.et = (o.et*o.w + et*w) / (o.w + w)
			}
			o.w += w
		}
		for _, fp := range order {
			series[fp] = append(series[fp], *perFP[fp])
		}
	}

	m := &Model{}
	var fps []uint64
	for fp := range series {
		fps = append(fps, fp)
	}
	sort.Slice(fps, func(i, j int) bool { return fps[i] < fps[j] })
	for _, fp := range fps {
		os := series[fp]
		if len(os) < 2 {
			m.Unmatched++
			// A phase seen at one size only (e.g. an initialisation
			// artifact): keep it constant.
			m.Phases = append(m.Phases, PhaseModel{
				Fingerprint: fp,
				ETCoef:      os[0].et, ETExp: 0,
				WCoef: os[0].w, WExp: 0,
				Points: 1,
			})
			continue
		}
		etc, ete := powerFit(os, func(o obs) float64 { return o.et })
		wc, we := powerFit(os, func(o obs) float64 { return o.w })
		m.Phases = append(m.Phases, PhaseModel{
			Fingerprint: fp,
			ETCoef:      etc, ETExp: ete,
			WCoef: wc, WExp: we,
			Points: len(os),
		})
	}
	return m, nil
}

// obs is one (workload parameter, phase time, weight) observation.
type obs struct {
	param, et, w float64
}

// powerFit least-squares fits y = a·x^b in log space; zero or negative
// values fall back to a constant fit at the mean.
func powerFit(os []obs, y func(obs) float64) (a, b float64) {
	n := 0
	var sx, sy, sxx, sxy float64
	var mean float64
	for _, o := range os {
		mean += y(o)
	}
	mean /= float64(len(os))
	for _, o := range os {
		v := y(o)
		if v <= 0 || o.param <= 0 {
			continue
		}
		lx, ly := math.Log(o.param), math.Log(v)
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
		n++
	}
	if n < 2 {
		return mean, 0
	}
	den := float64(n)*sxx - sx*sx
	if den == 0 {
		return mean, 0
	}
	b = (float64(n)*sxy - sx*sy) / den
	a = math.Exp((sy - b*sx) / float64(n))
	if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) {
		return mean, 0
	}
	return a, b
}
