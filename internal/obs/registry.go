// Package obs is the pipeline's observability layer: a zero-dependency
// metrics registry (atomic counters, gauges and fixed-bucket
// histograms, snapshot-able to JSON and Prometheus text format),
// lightweight stage spans that record wall time, allocations and
// stage-specific counters, and a Chrome trace-event timeline exporter
// that renders both the host-side pipeline stages (wall clock) and the
// simulated ranks (virtual clock) as tracks loadable in
// chrome://tracing or Perfetto.
//
// Everything is pull-based: stages write into atomic cells or
// mutex-guarded append-only slices, and exporters read a consistent
// snapshot on demand. There are no channels, no background goroutines
// and no sampling loops, so instrumentation cost is a handful of
// atomic operations on the instrumented path and exactly zero work —
// zero allocations included — when no Observer is configured (every
// entry point is nil-safe).
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic count.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomically settable float64 value.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram with Prometheus semantics: an
// observation lands in the first bucket whose upper bound is >= the
// value; values above every bound land in the implicit +Inf bucket.
// Buckets are fixed at creation, so Observe is wait-free except for
// the sum, which uses a CAS loop.
type Histogram struct {
	bounds []float64 // sorted upper bounds, exclusive of +Inf
	counts []atomic.Int64
	inf    atomic.Int64
	sumB   atomic.Uint64 // float64 bits
	count  atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.bounds) {
		h.counts[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumB.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumB.CompareAndSwap(old, next) {
			return
		}
	}
}

// Sum returns the running sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumB.Load()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Registry holds named metrics and completed spans. Metric lookup
// takes a mutex (get-or-create on a map); the returned cells are
// updated with atomics only, so hot paths should hold on to the cell
// rather than re-resolve the name per operation.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	bounds   map[string][]float64
	spans    []SpanRecord
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		bounds:   make(map[string][]float64),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// sorted upper bounds on first use (later calls ignore the bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		bs := append([]float64(nil), bounds...)
		sort.Float64s(bs)
		h = &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs))}
		r.hists[name] = h
		r.bounds[name] = bs
	}
	return h
}

func (r *Registry) addSpan(rec SpanRecord) {
	r.mu.Lock()
	r.spans = append(r.spans, rec)
	r.mu.Unlock()
}

// HistSnapshot is one histogram's frozen state.
type HistSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has one extra final
	// entry for the implicit +Inf bucket.
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  int64     `json:"count"`
}

// Snapshot is a consistent copy of a registry's state.
type Snapshot struct {
	TakenAt    time.Time               `json:"taken_at"`
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]float64      `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
	Spans      []SpanRecord            `json:"spans"`
}

// Snapshot freezes the registry's current state.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{
		TakenAt:    time.Now(),
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistSnapshot, len(r.hists)),
		Spans:      append([]SpanRecord(nil), r.spans...),
	}
	for n, c := range r.counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range r.gauges {
		s.Gauges[n] = g.Value()
	}
	for n, h := range r.hists {
		hs := HistSnapshot{
			Bounds: r.bounds[n],
			Counts: make([]int64, len(h.counts)+1),
			Sum:    h.Sum(),
			Count:  h.Count(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		hs.Counts[len(h.counts)] = h.inf.Load()
		s.Histograms[n] = hs
	}
	return s
}

// WriteJSON renders the snapshot as indented JSON. Map keys are
// emitted sorted (encoding/json semantics), so output is deterministic
// for a given state.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format. Metric names are sanitised to the Prometheus
// charset; spans are exported as pas2p_span_wall_seconds /
// pas2p_span_allocs gauges labelled by span name.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	for _, n := range sortedKeys(s.Counters) {
		pn := promName(n)
		p("# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[n])
	}
	for _, n := range sortedKeys(s.Gauges) {
		pn := promName(n)
		p("# TYPE %s gauge\n%s %s\n", pn, pn, promFloat(s.Gauges[n]))
	}
	for _, n := range sortedKeys(s.Histograms) {
		h := s.Histograms[n]
		pn := promName(n)
		p("# TYPE %s histogram\n", pn)
		cum := int64(0)
		for i, b := range h.Bounds {
			cum += h.Counts[i]
			p("%s_bucket{le=%q} %d\n", pn, promFloat(b), cum)
		}
		cum += h.Counts[len(h.Counts)-1]
		p("%s_bucket{le=\"+Inf\"} %d\n", pn, cum)
		p("%s_sum %s\n%s_count %d\n", pn, promFloat(h.Sum), pn, h.Count)
	}
	if len(s.Spans) > 0 {
		p("# TYPE pas2p_span_wall_seconds gauge\n")
		for _, sp := range s.Spans {
			p("pas2p_span_wall_seconds{span=%q} %s\n", sp.Name, promFloat(float64(sp.WallNS)/1e9))
		}
		p("# TYPE pas2p_span_allocs gauge\n")
		for _, sp := range s.Spans {
			p("pas2p_span_allocs{span=%q} %d\n", sp.Name, sp.Allocs)
		}
	}
	return err
}

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// promName maps a dotted metric name onto the Prometheus charset and
// prefixes it with the tool name.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("pas2p_")
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a float the way Prometheus expects (no exponent
// for integral values, "+Inf"/"-Inf"/"NaN" spelled out).
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%g", v)
	}
}
