// Package obs is the pipeline's observability layer: a zero-dependency
// metrics registry (atomic counters, gauges and fixed-bucket
// histograms, snapshot-able to JSON and Prometheus text format),
// lightweight stage spans that record wall time, allocations and
// stage-specific counters, and a Chrome trace-event timeline exporter
// that renders both the host-side pipeline stages (wall clock) and the
// simulated ranks (virtual clock) as tracks loadable in
// chrome://tracing or Perfetto.
//
// Everything is pull-based: stages write into atomic cells or
// mutex-guarded append-only slices, and exporters read a consistent
// snapshot on demand. There are no channels, no background goroutines
// and no sampling loops, so instrumentation cost is a handful of
// atomic operations on the instrumented path and exactly zero work —
// zero allocations included — when no Observer is configured (every
// entry point is nil-safe).
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic count.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomically settable float64 value.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram with Prometheus semantics: an
// observation lands in the first bucket whose upper bound is >= the
// value; values above every bound land in the implicit +Inf bucket.
// Buckets are fixed at creation, so Observe is wait-free except for
// the sum, which uses a CAS loop.
type Histogram struct {
	bounds []float64 // sorted upper bounds, exclusive of +Inf
	counts []atomic.Int64
	inf    atomic.Int64
	sumB   atomic.Uint64 // float64 bits
	count  atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.bounds) {
		h.counts[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumB.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumB.CompareAndSwap(old, next) {
			return
		}
	}
}

// Sum returns the running sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumB.Load()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// DefaultSpanRetention is the recent-span ring capacity a new
// registry starts with. Completed spans beyond it stay in the
// per-stage aggregates but their individual records are overwritten
// oldest-first, so a long-running server's registry memory is bounded
// no matter how many spans it records.
const DefaultSpanRetention = 256

// Registry holds named metrics and completed spans. Metric lookup
// takes a mutex (get-or-create on a map); the returned cells are
// updated with atomics only, so hot paths should hold on to the cell
// rather than re-resolve the name per operation.
//
// Spans are kept two ways: a bounded ring of the most recent records
// (for timelines and "what just ran" views) and per-stage aggregates
// (count, wall/alloc sums and histograms) that answer p50/p95/p99
// questions at O(stages) memory however long the process lives.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	bounds   map[string][]float64

	spanAgg    map[string]*spanAgg
	spanRing   []SpanRecord // ring; when full, oldest record sits at spanHead
	spanHead   int          // next overwrite slot once the ring is full
	spanTotal  int64
	spanRetain int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		hists:      make(map[string]*Histogram),
		bounds:     make(map[string][]float64),
		spanAgg:    make(map[string]*spanAgg),
		spanRetain: DefaultSpanRetention,
	}
}

// SetSpanRetention resizes the recent-span ring (n <= 0 keeps only
// aggregates). Existing records beyond the new capacity are dropped
// oldest-first; aggregates are unaffected.
func (r *Registry) SetSpanRetention(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n < 0 {
		n = 0
	}
	recent := r.recentSpansLocked()
	if len(recent) > n {
		recent = recent[len(recent)-n:]
	}
	r.spanRetain = n
	r.spanRing = make([]SpanRecord, 0, n)
	r.spanRing = append(r.spanRing, recent...)
	r.spanHead = 0
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// sorted upper bounds on first use (later calls ignore the bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		bs := append([]float64(nil), bounds...)
		sort.Float64s(bs)
		h = &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs))}
		r.hists[name] = h
		r.bounds[name] = bs
	}
	return h
}

// spanWallBounds and spanAllocBounds are the fixed histogram bucket
// upper bounds for span aggregation: 1-2-5 geometric series covering
// 1µs..500s of wall time and 256B..2GiB of allocation. Fixed buckets
// keep the per-stage footprint constant; quantiles are interpolated
// within a bucket and clamped to the observed [min, max], so a stage
// that ran once reports its exact value.
var (
	spanWallBounds  = geometricBounds(1e3, 1e12)  // ns
	spanAllocBounds = geometricBounds(256, 4e9+1) // bytes
)

// geometricBounds builds the 1-2-5 series from lo up to (excluding) hi.
func geometricBounds(lo, hi float64) []float64 {
	var bs []float64
	for d := lo; d < hi; d *= 10 {
		for _, m := range []float64{1, 2, 5} {
			if v := d * m; v < hi {
				bs = append(bs, v)
			}
		}
	}
	return bs
}

// spanAgg accumulates one stage's completed spans. All fields are
// guarded by the registry mutex.
type spanAgg struct {
	count        int64
	wallSum      int64
	wallMin      int64
	wallMax      int64
	allocs       uint64
	allocBytes   uint64
	allocMax     uint64
	wallBuckets  []int64 // len(spanWallBounds)+1, last is +Inf
	allocBuckets []int64 // len(spanAllocBounds)+1, last is +Inf
}

func bucketFor(bounds []float64, v float64) int {
	return sort.SearchFloat64s(bounds, v)
}

func (a *spanAgg) observe(rec *SpanRecord) {
	if a.count == 0 || rec.WallNS < a.wallMin {
		a.wallMin = rec.WallNS
	}
	if rec.WallNS > a.wallMax {
		a.wallMax = rec.WallNS
	}
	a.count++
	a.wallSum += rec.WallNS
	a.allocs += rec.Allocs
	a.allocBytes += rec.AllocBytes
	if rec.AllocBytes > a.allocMax {
		a.allocMax = rec.AllocBytes
	}
	a.wallBuckets[bucketFor(spanWallBounds, float64(rec.WallNS))]++
	a.allocBuckets[bucketFor(spanAllocBounds, float64(rec.AllocBytes))]++
}

// quantile interpolates the q-quantile (0..1) from bucket counts,
// clamped to the observed extremes.
func (a *spanAgg) quantile(bounds []float64, buckets []int64, q float64, min, max int64) int64 {
	if a.count == 0 {
		return 0
	}
	rank := q * float64(a.count)
	var cum float64
	for i, c := range buckets {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		hi := float64(max)
		if i < len(bounds) {
			hi = bounds[i]
		}
		v := lo
		if c > 0 {
			v = lo + (hi-lo)*(rank-prev)/float64(c)
		}
		switch {
		case v < float64(min):
			return min
		case v > float64(max):
			return max
		}
		return int64(v)
	}
	return max
}

func (r *Registry) addSpan(rec SpanRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	a := r.spanAgg[rec.Name]
	if a == nil {
		a = &spanAgg{
			wallBuckets:  make([]int64, len(spanWallBounds)+1),
			allocBuckets: make([]int64, len(spanAllocBounds)+1),
		}
		r.spanAgg[rec.Name] = a
	}
	a.observe(&rec)
	r.spanTotal++
	if r.spanRetain <= 0 {
		return
	}
	if len(r.spanRing) < r.spanRetain {
		r.spanRing = append(r.spanRing, rec)
	} else {
		r.spanRing[r.spanHead] = rec
		r.spanHead = (r.spanHead + 1) % r.spanRetain
	}
}

// recentSpansLocked returns the ring's records oldest-first.
func (r *Registry) recentSpansLocked() []SpanRecord {
	out := make([]SpanRecord, 0, len(r.spanRing))
	if len(r.spanRing) < r.spanRetain || r.spanHead == 0 {
		return append(out, r.spanRing...)
	}
	out = append(out, r.spanRing[r.spanHead:]...)
	return append(out, r.spanRing[:r.spanHead]...)
}

// HistSnapshot is one histogram's frozen state.
type HistSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has one extra final
	// entry for the implicit +Inf bucket.
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  int64     `json:"count"`
}

// SpanStatsSnapshot is one stage's frozen span aggregate: how many
// times it ran, total/min/max wall time, interpolated wall and
// allocation percentiles, and the allocation sums. Unlike the recent
// ring, aggregates cover every span ever recorded.
type SpanStatsSnapshot struct {
	Count      int64        `json:"count"`
	WallSumNS  int64        `json:"wall_sum_ns"`
	WallMinNS  int64        `json:"wall_min_ns"`
	WallMaxNS  int64        `json:"wall_max_ns"`
	WallP50NS  int64        `json:"wall_p50_ns"`
	WallP95NS  int64        `json:"wall_p95_ns"`
	WallP99NS  int64        `json:"wall_p99_ns"`
	Allocs     uint64       `json:"allocs"`
	AllocBytes uint64       `json:"alloc_bytes"`
	AllocP99   uint64       `json:"alloc_bytes_p99"`
	WallHist   HistSnapshot `json:"-"`
}

// Snapshot is a consistent copy of a registry's state. Spans holds the
// recent-span ring (oldest first, capacity Registry.SetSpanRetention);
// SpanStats holds the complete per-stage aggregates.
type Snapshot struct {
	TakenAt      time.Time                    `json:"taken_at"`
	Counters     map[string]int64             `json:"counters"`
	Gauges       map[string]float64           `json:"gauges"`
	Histograms   map[string]HistSnapshot      `json:"histograms"`
	Spans        []SpanRecord                 `json:"spans"`
	SpanStats    map[string]SpanStatsSnapshot `json:"span_stats,omitempty"`
	SpansTotal   int64                        `json:"spans_total,omitempty"`
	SpansDropped int64                        `json:"spans_dropped,omitempty"`
}

// Snapshot freezes the registry's current state.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{
		TakenAt:    time.Now(),
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistSnapshot, len(r.hists)),
		Spans:      r.recentSpansLocked(),
		SpansTotal: r.spanTotal,
	}
	s.SpansDropped = r.spanTotal - int64(len(s.Spans))
	if len(r.spanAgg) > 0 {
		s.SpanStats = make(map[string]SpanStatsSnapshot, len(r.spanAgg))
		for n, a := range r.spanAgg {
			st := SpanStatsSnapshot{
				Count:      a.count,
				WallSumNS:  a.wallSum,
				WallMinNS:  a.wallMin,
				WallMaxNS:  a.wallMax,
				WallP50NS:  a.quantile(spanWallBounds, a.wallBuckets, 0.50, a.wallMin, a.wallMax),
				WallP95NS:  a.quantile(spanWallBounds, a.wallBuckets, 0.95, a.wallMin, a.wallMax),
				WallP99NS:  a.quantile(spanWallBounds, a.wallBuckets, 0.99, a.wallMin, a.wallMax),
				Allocs:     a.allocs,
				AllocBytes: a.allocBytes,
			}
			st.AllocP99 = uint64(a.quantile(spanAllocBounds, a.allocBuckets, 0.99, 0, int64(a.allocMax)))
			st.WallHist = HistSnapshot{
				Bounds: spanWallBounds,
				Counts: append([]int64(nil), a.wallBuckets...),
				Sum:    float64(a.wallSum),
				Count:  a.count,
			}
			s.SpanStats[n] = st
		}
	}
	for n, c := range r.counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range r.gauges {
		s.Gauges[n] = g.Value()
	}
	for n, h := range r.hists {
		hs := HistSnapshot{
			Bounds: r.bounds[n],
			Counts: make([]int64, len(h.counts)+1),
			Sum:    h.Sum(),
			Count:  h.Count(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		hs.Counts[len(h.counts)] = h.inf.Load()
		s.Histograms[n] = hs
	}
	return s
}

// WriteJSON renders the snapshot as indented JSON. Map keys are
// emitted sorted (encoding/json semantics), so output is deterministic
// for a given state.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format. Metric names are sanitised to the Prometheus
// charset and every family carries # HELP and # TYPE lines; label
// values are escaped per the exposition spec (backslash, double quote
// and newline only — %q-style \u escapes are invalid there). Span
// aggregates are exported as a summary family labelled by span name
// (quantile series plus _sum and _count) and a per-span allocation
// counter.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	family := func(pn, kind, help string) {
		p("# HELP %s %s\n# TYPE %s %s\n", pn, promHelp(help), pn, kind)
	}
	for _, n := range sortedKeys(s.Counters) {
		pn := promName(n)
		family(pn, "counter", helpFor(n))
		p("%s %d\n", pn, s.Counters[n])
	}
	for _, n := range sortedKeys(s.Gauges) {
		pn := promName(n)
		family(pn, "gauge", helpFor(n))
		p("%s %s\n", pn, promFloat(s.Gauges[n]))
	}
	for _, n := range sortedKeys(s.Histograms) {
		h := s.Histograms[n]
		pn := promName(n)
		family(pn, "histogram", helpFor(n))
		cum := int64(0)
		for i, b := range h.Bounds {
			cum += h.Counts[i]
			p("%s_bucket{le=\"%s\"} %d\n", pn, promLabel(promFloat(b)), cum)
		}
		cum += h.Counts[len(h.Counts)-1]
		p("%s_bucket{le=\"+Inf\"} %d\n", pn, cum)
		p("%s_sum %s\n%s_count %d\n", pn, promFloat(h.Sum), pn, h.Count)
	}
	if len(s.SpanStats) > 0 {
		family("pas2p_span_wall_seconds", "summary",
			"wall-clock time of pipeline stage spans, aggregated per stage")
		for _, n := range sortedKeys(s.SpanStats) {
			st := s.SpanStats[n]
			lv := promLabel(n)
			for _, q := range []struct {
				q  string
				ns int64
			}{{"0.5", st.WallP50NS}, {"0.95", st.WallP95NS}, {"0.99", st.WallP99NS}} {
				p("pas2p_span_wall_seconds{span=\"%s\",quantile=\"%s\"} %s\n",
					lv, q.q, promFloat(float64(q.ns)/1e9))
			}
			p("pas2p_span_wall_seconds_sum{span=\"%s\"} %s\n", lv, promFloat(float64(st.WallSumNS)/1e9))
			p("pas2p_span_wall_seconds_count{span=\"%s\"} %d\n", lv, st.Count)
		}
		family("pas2p_span_allocs_total", "counter",
			"heap allocations attributed to pipeline stage spans")
		for _, n := range sortedKeys(s.SpanStats) {
			p("pas2p_span_allocs_total{span=\"%s\"} %d\n", promLabel(n), s.SpanStats[n].Allocs)
		}
	}
	return err
}

// promLabel escapes a label value per the exposition format: only
// backslash, double quote and newline are special; everything else
// (UTF-8 included) passes through verbatim. Go's %q is wrong here —
// it emits \uXXXX escapes the format does not define.
func promLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// promHelp escapes HELP text: the spec makes backslash and newline
// special there (quotes are fine).
func promHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// helpFor returns the HELP text for a dotted metric name: curated
// per-family descriptions, with a generic fallback so every exported
// family still carries a HELP line.
func helpFor(name string) string {
	prefixes := []struct{ prefix, help string }{
		{"faults.", "fault-injection accounting (deltas published per pipeline stage)"},
		{"repo.", "signature repository operations (adds, verifies, quarantines, retries)"},
		{"codec.", "tracefile codec work (blocks, bytes, worker utilisation)"},
		{"sim.", "discrete-event simulator traffic"},
		{"signature.", "signature construction and execution"},
		{"runtime.", "Go runtime state sampled at scrape time"},
		{"serve.", "telemetry HTTP server"},
	}
	for _, pf := range prefixes {
		if strings.HasPrefix(name, pf.prefix) {
			return fmt.Sprintf("%s — pas2p metric %s", pf.help, name)
		}
	}
	return "pas2p metric " + name
}

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// promName maps a dotted metric name onto the Prometheus charset and
// prefixes it with the tool name. The prefix means a digit can never
// end up leading the exported name, so digits pass through at any
// position.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("pas2p_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_',
			r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a float the way Prometheus expects (no exponent
// for integral values, "+Inf"/"-Inf"/"NaN" spelled out).
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%g", v)
	}
}
