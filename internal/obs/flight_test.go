package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

// TestFlightRecorderWraparound fills a small ring past its capacity
// and pins the retained window: the newest events, oldest first, with
// contiguous sequence numbers and an exact dropped count.
func TestFlightRecorderWraparound(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := 0; i < 11; i++ {
		f.Record("k", fmt.Sprintf("event %d", i), i, int64(i*10))
	}
	s := f.Snapshot()
	if s.Total != 11 || s.Dropped != 7 {
		t.Fatalf("total/dropped = %d/%d, want 11/7", s.Total, s.Dropped)
	}
	if len(s.Events) != 4 {
		t.Fatalf("retained %d events, want 4", len(s.Events))
	}
	for i, ev := range s.Events {
		wantSeq := uint64(7 + i)
		wantMsg := fmt.Sprintf("event %d", 7+i)
		if ev.Seq != wantSeq || ev.Msg != wantMsg || ev.Rank != 7+i || ev.V != int64((7+i)*10) {
			t.Errorf("event[%d] = %+v, want seq %d msg %q", i, ev, wantSeq, wantMsg)
		}
	}
}

// TestFlightRecorderPartialRing checks the pre-wrap state: everything
// retained, nothing dropped, recording order preserved.
func TestFlightRecorderPartialRing(t *testing.T) {
	f := NewFlightRecorder(8)
	f.Record("a", "first", -1, 0)
	f.Record("b", "second", 2, 5)
	s := f.Snapshot()
	if s.Total != 2 || s.Dropped != 0 || len(s.Events) != 2 {
		t.Fatalf("snapshot = %+v, want 2 events, 0 dropped", s)
	}
	if s.Events[0].Kind != "a" || s.Events[1].Kind != "b" {
		t.Fatalf("order = %q, %q, want a then b", s.Events[0].Kind, s.Events[1].Kind)
	}
	if s.Events[0].Seq != 0 || s.Events[1].Seq != 1 {
		t.Fatalf("seqs = %d, %d, want 0, 1", s.Events[0].Seq, s.Events[1].Seq)
	}
}

// TestFlightRecorderConcurrent hammers one recorder from many writers
// while a reader snapshots; run under -race by the CI matrix. Sequence
// numbers in any snapshot must be strictly increasing and the final
// total exact.
func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(128)
	const writers, per = 8, 500
	var wg sync.WaitGroup
	wg.Add(writers + 1)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				f.Record("fault.msg_lost", "lost", w, int64(i))
			}
		}(w)
	}
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			s := f.Snapshot()
			for j := 1; j < len(s.Events); j++ {
				if s.Events[j].Seq <= s.Events[j-1].Seq {
					t.Errorf("snapshot seqs not increasing: %d then %d",
						s.Events[j-1].Seq, s.Events[j].Seq)
					return
				}
			}
		}
	}()
	wg.Wait()
	if s := f.Snapshot(); s.Total != writers*per {
		t.Errorf("total = %d, want %d", s.Total, writers*per)
	}
}

// TestNilFlightZeroAlloc mirrors TestNilObserverZeroAlloc for the
// event path: with no observer (or no recorder) configured, Event and
// Record must be free.
func TestNilFlightZeroAlloc(t *testing.T) {
	var o *Observer
	var f *FlightRecorder
	justReg := New() // registry but no flight recorder
	allocs := testing.AllocsPerRun(200, func() {
		o.Event("fault.msg_lost", "message lost", 3, 42)
		f.Record("fault.crash", "restart crashed", 1, 2)
		justReg.Event("repo.quarantine", "entry quarantined", -1, 0)
	})
	if allocs != 0 {
		t.Errorf("nil-path event hooks allocated %.1f objects per run, want 0", allocs)
	}
}

// TestFlightRecorderSteadyStateAllocs pins the bounded-memory claim on
// the write path: once the ring has wrapped, Record allocates nothing.
func TestFlightRecorderSteadyStateAllocs(t *testing.T) {
	f := NewFlightRecorder(16)
	for i := 0; i < 16; i++ {
		f.Record("k", "warm", 0, 0)
	}
	allocs := testing.AllocsPerRun(500, func() {
		f.Record("fault.msg_lost", "lost", 1, 7)
	})
	if allocs != 0 {
		t.Errorf("post-wrap Record allocated %.1f objects per call, want 0", allocs)
	}
}

func TestFlightWriteJSON(t *testing.T) {
	f := NewFlightRecorder(4)
	f.Record("sim.deadlock", "2 of 4 ranks blocked", -1, 2)
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s FlightSnapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("dump is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(s.Events) != 1 || s.Events[0].Kind != "sim.deadlock" || s.Events[0].V != 2 {
		t.Errorf("round-tripped snapshot = %+v", s)
	}
	// A nil recorder still writes a valid, empty snapshot.
	var nilF *FlightRecorder
	buf.Reset()
	if err := nilF.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil || len(s.Events) != 0 {
		t.Errorf("nil dump = %s (err %v)", buf.String(), err)
	}
}

// TestObserverEventThroughMetricsOnly checks the flight recorder is
// shared across MetricsOnly derivations, like the registry is.
func TestObserverEventThroughMetricsOnly(t *testing.T) {
	o := NewWithTimeline()
	o.Flight = NewFlightRecorder(8)
	mo := o.MetricsOnly()
	if mo == o {
		t.Fatal("timeline observer must derive a new metrics-only observer")
	}
	mo.Event("fault.msg_dup", "duplicate discarded", 2, 1)
	if got := o.Flight.Len(); got != 1 {
		t.Errorf("flight has %d events, want 1 recorded through MetricsOnly", got)
	}
}
