package obs

import (
	"runtime"
	"time"
)

// Observer bundles the sinks a pipeline run reports into: a metrics
// registry (always, when observing at all) and an optional timeline.
// A nil *Observer is the universal "not observing" value — every
// method on it, and on the nil *Span it hands out, is a no-op that
// performs no allocation, so instrumented code threads an Observer
// unconditionally and pays nothing when none is configured.
type Observer struct {
	Registry *Registry
	Timeline *Timeline
	// Flight, when non-nil, receives structured events (fault
	// injections, repository quarantines, deadlock reports, ...) into
	// a bounded ring for live /flight scrapes and crash dumps.
	Flight *FlightRecorder
}

// New returns an Observer with a fresh registry and no timeline.
func New() *Observer { return &Observer{Registry: NewRegistry()} }

// NewWithTimeline returns an Observer with a fresh registry and
// timeline.
func NewWithTimeline() *Observer {
	return &Observer{Registry: NewRegistry(), Timeline: NewTimeline()}
}

// Reg returns the registry, nil when not observing.
func (o *Observer) Reg() *Registry {
	if o == nil {
		return nil
	}
	return o.Registry
}

// TL returns the timeline, nil when not observing or metrics-only.
func (o *Observer) TL() *Timeline {
	if o == nil {
		return nil
	}
	return o.Timeline
}

// FR returns the flight recorder, nil when not observing or when no
// recorder is configured.
func (o *Observer) FR() *FlightRecorder {
	if o == nil {
		return nil
	}
	return o.Flight
}

// Event records one structured event in the flight recorder. The
// nil path — nil Observer or no recorder — is allocation-free, so
// instrumented code (fault decisions on simulator rank goroutines
// included) calls it unconditionally. Rank is -1 for events that are
// not rank-scoped; v is a kind-specific scalar.
func (o *Observer) Event(kind, msg string, rank int, v int64) {
	if o == nil || o.Flight == nil {
		return
	}
	o.Flight.Record(kind, msg, rank, v)
}

// MetricsOnly returns an Observer sharing this one's registry and
// flight recorder but with no timeline — used for auxiliary runs whose
// counters matter but whose per-event tracks would only bloat the
// trace file. Returns nil when o is nil or has no registry.
func (o *Observer) MetricsOnly() *Observer {
	if o == nil || o.Registry == nil {
		return nil
	}
	if o.Timeline == nil {
		return o
	}
	return &Observer{Registry: o.Registry, Flight: o.Flight}
}

// SpanCounter is one stage-specific counter attached to a span.
type SpanCounter struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// SpanRecord is a completed span as stored in the registry and
// rendered into snapshots.
type SpanRecord struct {
	Name  string    `json:"name"`
	Start time.Time `json:"start"`
	// WallNS is the span's wall-clock duration in nanoseconds.
	WallNS int64 `json:"wall_ns"`
	// Allocs and AllocBytes are the heap allocation count and byte
	// deltas across the span, read from runtime.MemStats. They cover
	// the whole process, so concurrent work (worker pools, parallel
	// Analyze calls) is attributed to every span open at the time.
	Allocs     uint64        `json:"allocs"`
	AllocBytes uint64        `json:"alloc_bytes"`
	Counters   []SpanCounter `json:"counters,omitempty"`
}

// Span is one in-flight pipeline stage. Obtain with Observer.StartSpan
// and finish with End; a nil Span (from a nil Observer) swallows every
// call for free.
type Span struct {
	reg          *Registry
	rec          SpanRecord
	startMallocs uint64
	startBytes   uint64
}

// StartSpan opens a span. On a nil Observer (or one without a
// registry) it returns nil without allocating.
func (o *Observer) StartSpan(name string) *Span {
	if o == nil || o.Registry == nil {
		return nil
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return &Span{
		reg:          o.Registry,
		rec:          SpanRecord{Name: name, Start: time.Now()},
		startMallocs: ms.Mallocs,
		startBytes:   ms.TotalAlloc,
	}
}

// SetCounter attaches (or overwrites) a stage-specific counter.
func (s *Span) SetCounter(name string, v int64) {
	if s == nil {
		return
	}
	for i := range s.rec.Counters {
		if s.rec.Counters[i].Name == name {
			s.rec.Counters[i].Value = v
			return
		}
	}
	s.rec.Counters = append(s.rec.Counters, SpanCounter{Name: name, Value: v})
}

// End closes the span and records it in the registry.
func (s *Span) End() {
	if s == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.rec.WallNS = time.Since(s.rec.Start).Nanoseconds()
	s.rec.Allocs = ms.Mallocs - s.startMallocs
	s.rec.AllocBytes = ms.TotalAlloc - s.startBytes
	s.reg.addSpan(s.rec)
}
