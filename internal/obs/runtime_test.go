package obs

import "testing"

// TestCollectRuntime refreshes the runtime gauges twice and sanity
// checks the values: live process numbers must be positive, and a
// scrape between allocations must see totals move forward.
func TestCollectRuntime(t *testing.T) {
	CollectRuntime(nil) // nil registry is a no-op

	r := NewRegistry()
	CollectRuntime(r)
	s := r.Snapshot()
	for _, g := range []string{
		"runtime.heap_alloc_bytes", "runtime.heap_sys_bytes", "runtime.heap_objects",
		"runtime.total_alloc_bytes", "runtime.goroutines", "runtime.gomaxprocs", "runtime.cpus",
	} {
		if v, ok := s.Gauges[g]; !ok || v <= 0 {
			t.Errorf("gauge %s = %v (present %v), want > 0", g, v, ok)
		}
	}
	if _, ok := s.Gauges["runtime.gc_pause_total_seconds"]; !ok {
		t.Error("gc_pause_total_seconds gauge missing")
	}

	before := s.Gauges["runtime.total_alloc_bytes"]
	sink := make([][]byte, 64)
	for i := range sink {
		sink[i] = make([]byte, 4096)
	}
	CollectRuntime(r)
	after := r.Snapshot().Gauges["runtime.total_alloc_bytes"]
	if after <= before {
		t.Errorf("total_alloc_bytes did not advance across allocations: %v -> %v", before, after)
	}
	_ = sink
}
