package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// TraceEvent is one entry of the Chrome trace-event format
// (chrome://tracing, Perfetto, catapult). Ts and Dur are microseconds;
// the pipeline writes wall-clock tracks and virtual-time tracks as
// separate pids so their unrelated clock bases never share an axis.
type TraceEvent struct {
	Name string `json:"name"`
	Cat  string `json:"cat,omitempty"`
	// Ph is the phase: "X" complete slice, "i" instant, "M" metadata.
	Ph  string  `json:"ph"`
	Ts  float64 `json:"ts"`
	Dur float64 `json:"dur,omitempty"`
	Pid int     `json:"pid"`
	Tid int     `json:"tid"`
	// S scopes instant events ("t" thread) so viewers draw a tick on
	// the owning track instead of a page-wide line.
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

// Timeline accumulates trace events. All methods are safe for
// concurrent use and nil-safe: a nil *Timeline swallows every call, so
// callers can thread one unconditionally.
type Timeline struct {
	mu      sync.Mutex
	nextPID int
	events  []TraceEvent
}

// NewTimeline returns an empty timeline.
func NewTimeline() *Timeline { return &Timeline{} }

// NewProcess allocates a fresh pid (a top-level track group in the
// viewer) and names it. Returns 0 on a nil timeline.
func (t *Timeline) NewProcess(name string) int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextPID++
	pid := t.nextPID
	t.events = append(t.events, TraceEvent{
		Name: "process_name", Ph: "M", Pid: pid,
		Args: map[string]string{"name": name},
	})
	return pid
}

// SetThreadName names one track (tid) within a process group.
func (t *Timeline) SetThreadName(pid, tid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, TraceEvent{
		Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
		Args: map[string]string{"name": name},
	})
	t.mu.Unlock()
}

// Slice records a complete slice ("X" event) on a track. ts and dur
// are microseconds.
func (t *Timeline) Slice(pid, tid int, name, cat string, ts, dur float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, TraceEvent{
		Name: name, Cat: cat, Ph: "X", Ts: ts, Dur: dur, Pid: pid, Tid: tid,
	})
	t.mu.Unlock()
}

// Instant records a thread-scoped instant event on a track, at ts
// microseconds.
func (t *Timeline) Instant(pid, tid int, name string, ts float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, TraceEvent{
		Name: name, Ph: "i", Ts: ts, Pid: pid, Tid: tid, S: "t",
	})
	t.mu.Unlock()
}

// Len returns the number of recorded events (metadata included).
func (t *Timeline) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// traceFile is the JSON object format of the trace-event spec.
type traceFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteJSON renders the timeline in the trace-event JSON object
// format. Events are emitted metadata-first, then sorted by
// (pid, tid, ts, -dur) so each track's timestamps are monotonic and
// nested slices follow their parents — deterministic output for a
// given set of recordings.
func (t *Timeline) WriteJSON(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`)
		return err
	}
	t.mu.Lock()
	evs := append([]TraceEvent(nil), t.events...)
	t.mu.Unlock()
	sort.SliceStable(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if (a.Ph == "M") != (b.Ph == "M") {
			return a.Ph == "M"
		}
		if a.Pid != b.Pid {
			return a.Pid < b.Pid
		}
		if a.Tid != b.Tid {
			return a.Tid < b.Tid
		}
		if a.Ts != b.Ts {
			return a.Ts < b.Ts
		}
		// Longer slice first at equal start: the parent of a nest.
		return a.Dur > b.Dur
	})
	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: evs, DisplayTimeUnit: "ms"})
}

// AddPipelineTrack renders a snapshot's spans as wall-clock slices on
// a fresh process track, so the host-side pipeline stages appear in
// the same trace file as the simulated ranks. Timestamps are
// microseconds since the earliest span start.
func (s *Snapshot) AddPipelineTrack(t *Timeline, name string) {
	if t == nil || len(s.Spans) == 0 {
		return
	}
	t0 := s.Spans[0].Start
	for _, sp := range s.Spans {
		if sp.Start.Before(t0) {
			t0 = sp.Start
		}
	}
	pid := t.NewProcess(name)
	t.SetThreadName(pid, 0, "stages")
	for _, sp := range s.Spans {
		t.Slice(pid, 0, sp.Name, "pipeline",
			float64(sp.Start.Sub(t0).Nanoseconds())/1e3,
			float64(sp.WallNS)/1e3)
	}
}
