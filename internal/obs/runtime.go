package obs

import "runtime"

// CollectRuntime refreshes the runtime.* gauges on the registry from
// the Go runtime: heap size and object counts, GC cycle and pause
// accounting, goroutine count and the CPU shape. It is called by the
// telemetry server on every scrape (pull-based, like everything else
// in this package), so the gauges are as fresh as the scrape that
// reads them and cost nothing between scrapes. Safe on a nil registry.
func CollectRuntime(reg *Registry) {
	if reg == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	reg.Gauge("runtime.heap_alloc_bytes").Set(float64(ms.HeapAlloc))
	reg.Gauge("runtime.heap_sys_bytes").Set(float64(ms.HeapSys))
	reg.Gauge("runtime.heap_objects").Set(float64(ms.HeapObjects))
	reg.Gauge("runtime.total_alloc_bytes").Set(float64(ms.TotalAlloc))
	reg.Gauge("runtime.mallocs_total").Set(float64(ms.Mallocs))
	reg.Gauge("runtime.gc_cycles_total").Set(float64(ms.NumGC))
	reg.Gauge("runtime.gc_pause_total_seconds").Set(float64(ms.PauseTotalNs) / 1e9)
	if ms.NumGC > 0 {
		reg.Gauge("runtime.gc_pause_last_seconds").Set(
			float64(ms.PauseNs[(ms.NumGC+255)%256]) / 1e9)
	}
	reg.Gauge("runtime.next_gc_bytes").Set(float64(ms.NextGC))
	reg.Gauge("runtime.goroutines").Set(float64(runtime.NumGoroutine()))
	reg.Gauge("runtime.gomaxprocs").Set(float64(runtime.GOMAXPROCS(0)))
	reg.Gauge("runtime.cpus").Set(float64(runtime.NumCPU()))
}
