package obshttp

import (
	"context"
	"encoding/json"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"pas2p/internal/obs"
)

func startTestServer(t *testing.T, o *obs.Observer) *Server {
	t.Helper()
	s, err := Serve("127.0.0.1:0", o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		s.Shutdown(ctx) //nolint:errcheck
	})
	return s
}

// promNameRe and promLabelValueRe follow the text exposition format:
// metric names, then label pairs with only \\, \" and \n escapes
// allowed inside quoted values.
var (
	promNameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// parsePrometheus validates body against the exposition grammar and
// returns sample name -> value for label-free samples. It fails the
// test on any malformed line, unescaped label value, or sample whose
// family lacks HELP/TYPE lines.
func parsePrometheus(t *testing.T, body string) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	help := map[string]bool{}
	typ := map[string]bool{}
	for ln, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, _, found := strings.Cut(rest, " ")
			if !found || !promNameRe.MatchString(name) {
				t.Fatalf("line %d: malformed HELP: %q", ln+1, line)
			}
			help[name] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			fields := strings.Fields(rest)
			if len(fields) != 2 || !promNameRe.MatchString(fields[0]) {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			switch fields[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: unknown TYPE %q", ln+1, fields[1])
			}
			typ[fields[0]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unknown comment form: %q", ln+1, line)
		}
		name, labels, value := parseSample(t, ln+1, line)
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if fam, ok := strings.CutSuffix(name, suf); ok && typ[fam] {
				base = fam
			}
		}
		if !typ[base] || !help[base] {
			t.Fatalf("line %d: sample %s has no TYPE/HELP for family %s", ln+1, name, base)
		}
		if labels == "" {
			samples[name] = value
		}
	}
	return samples
}

// parseSample splits `name{labels} value` and validates the label
// syntax including escapes.
func parseSample(t *testing.T, ln int, line string) (name, labels string, value float64) {
	t.Helper()
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		name = line[:i]
		j := strings.LastIndexByte(line, '}')
		if j < i {
			t.Fatalf("line %d: unbalanced braces: %q", ln, line)
		}
		labels = line[i+1 : j]
		rest = strings.TrimSpace(line[j+1:])
		validateLabels(t, ln, labels)
	} else {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("line %d: want 'name value': %q", ln, line)
		}
		name, rest = fields[0], fields[1]
	}
	if !promNameRe.MatchString(name) {
		t.Fatalf("line %d: bad metric name %q", ln, name)
	}
	v := strings.Fields(rest)
	if len(v) < 1 {
		t.Fatalf("line %d: missing value: %q", ln, line)
	}
	val, err := parsePromValue(v[0])
	if err != nil {
		t.Fatalf("line %d: bad value %q: %v", ln, v[0], err)
	}
	return name, labels, val
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return 0, nil
	case "-Inf", "NaN":
		return 0, nil
	}
	return strconv.ParseFloat(s, 64)
}

// validateLabels walks `k="v",k="v"` checking names and that values
// contain only the three legal escapes (\\, \", \n) — a \uXXXX escape
// or a raw quote fails.
func validateLabels(t *testing.T, ln int, labels string) {
	t.Helper()
	i := 0
	for i < len(labels) {
		eq := strings.IndexByte(labels[i:], '=')
		if eq < 0 {
			t.Fatalf("line %d: label without '=': %q", ln, labels[i:])
		}
		name := labels[i : i+eq]
		if !promLabelRe.MatchString(name) {
			t.Fatalf("line %d: bad label name %q", ln, name)
		}
		i += eq + 1
		if i >= len(labels) || labels[i] != '"' {
			t.Fatalf("line %d: label value not quoted at %q", ln, labels[i:])
		}
		i++
		for i < len(labels) {
			switch labels[i] {
			case '\\':
				if i+1 >= len(labels) || !strings.ContainsRune(`\"n`, rune(labels[i+1])) {
					t.Fatalf("line %d: illegal escape %q", ln, labels[i:])
				}
				i += 2
			case '"':
				i++
				goto closed
			case '\n':
				t.Fatalf("line %d: raw newline in label value", ln)
			default:
				i++
			}
		}
		t.Fatalf("line %d: unterminated label value", ln)
	closed:
		if i < len(labels) {
			if labels[i] != ',' {
				t.Fatalf("line %d: expected ',' after label, got %q", ln, labels[i:])
			}
			i++
		}
	}
}

// TestEndpointsAgainstLiveObserver drives every endpoint against an
// observer carrying metrics, spans (with an escaping-hostile name),
// flight events and a timeline.
func TestEndpointsAgainstLiveObserver(t *testing.T) {
	o := obs.NewWithTimeline()
	o.Flight = obs.NewFlightRecorder(16)
	o.Registry.Counter("sim.messages").Add(7)
	o.Registry.Gauge("codec.worker_util").Set(0.5)
	o.Registry.Histogram("sim.msg_bytes", []float64{1024, 65536}).Observe(2048)
	sp := o.StartSpan(`weird"span\name`)
	sp.End()
	o.Event("fault.msg_lost", "message lost, retransmitted", 3, 1)
	o.Event("fault.crash", "restart crashed", 0, 2)
	o.Timeline.Slice(o.Timeline.NewProcess("p"), 0, "compute", "compute", 0, 10)

	s := startTestServer(t, o)

	t.Run("metrics", func(t *testing.T) {
		body, err := s.Fetch("/metrics")
		if err != nil {
			t.Fatal(err)
		}
		samples := parsePrometheus(t, string(body))
		if samples["pas2p_sim_messages"] != 7 {
			t.Errorf("pas2p_sim_messages = %v, want 7", samples["pas2p_sim_messages"])
		}
		// The runtime collector must refresh on scrape.
		if samples["pas2p_runtime_goroutines"] <= 0 {
			t.Errorf("runtime goroutines gauge = %v, want > 0", samples["pas2p_runtime_goroutines"])
		}
		if !strings.Contains(string(body), `span="weird\"span\\name"`) {
			t.Errorf("span label not escaped: %s", body)
		}
	})

	t.Run("metrics.json", func(t *testing.T) {
		body, err := s.Fetch("/metrics.json")
		if err != nil {
			t.Fatal(err)
		}
		var snap obs.Snapshot
		if err := json.Unmarshal(body, &snap); err != nil {
			t.Fatal(err)
		}
		if snap.Counters["sim.messages"] != 7 {
			t.Errorf("counters = %v", snap.Counters)
		}
		if snap.Gauges["runtime.heap_alloc_bytes"] <= 0 {
			t.Error("runtime gauges missing from JSON scrape")
		}
	})

	t.Run("spans", func(t *testing.T) {
		body, err := s.Fetch("/spans")
		if err != nil {
			t.Fatal(err)
		}
		var doc spansDoc
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Fatal(err)
		}
		st, ok := doc.Stats[`weird"span\name`]
		if !ok || st.Count != 1 {
			t.Errorf("span stats = %+v", doc.Stats)
		}
		if len(doc.Recent) != 1 || doc.SpansTotal != 1 {
			t.Errorf("recent/total = %d/%d, want 1/1", len(doc.Recent), doc.SpansTotal)
		}
	})

	t.Run("flight", func(t *testing.T) {
		body, err := s.Fetch("/flight")
		if err != nil {
			t.Fatal(err)
		}
		var fs obs.FlightSnapshot
		if err := json.Unmarshal(body, &fs); err != nil {
			t.Fatal(err)
		}
		if len(fs.Events) != 2 || fs.Events[0].Kind != "fault.msg_lost" || fs.Events[1].Kind != "fault.crash" {
			t.Errorf("flight events = %+v", fs.Events)
		}
		if fs.Events[0].Seq >= fs.Events[1].Seq {
			t.Errorf("flight events out of order: %+v", fs.Events)
		}
	})

	t.Run("timeline", func(t *testing.T) {
		body, err := s.Fetch("/timeline")
		if err != nil {
			t.Fatal(err)
		}
		var tl struct {
			TraceEvents []obs.TraceEvent `json:"traceEvents"`
		}
		if err := json.Unmarshal(body, &tl); err != nil {
			t.Fatal(err)
		}
		if len(tl.TraceEvents) == 0 {
			t.Error("timeline scrape returned no events")
		}
	})

	t.Run("pprof", func(t *testing.T) {
		body, err := s.Fetch("/debug/pprof/")
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(body), "goroutine") {
			t.Errorf("pprof index does not list profiles: %.100s", body)
		}
	})

	t.Run("index", func(t *testing.T) {
		body, err := s.Fetch("/")
		if err != nil {
			t.Fatal(err)
		}
		for _, ep := range []string{"/metrics", "/spans", "/flight", "/healthz", "/debug/pprof/"} {
			if !strings.Contains(string(body), ep) {
				t.Errorf("index does not mention %s", ep)
			}
		}
		if _, err := s.Fetch("/no-such-endpoint"); err == nil {
			t.Error("unknown path should 404")
		}
	})
}

// TestHealthzFlipsReadyToDone pins the lifecycle the CLI drives: ready
// while the run is live, done after SetDone, scrapes still served, and
// Shutdown returns the final flushed snapshot.
func TestHealthzFlipsReadyToDone(t *testing.T) {
	o := obs.New()
	o.Registry.Counter("sim.messages").Add(3)
	s, err := Serve("127.0.0.1:0", o)
	if err != nil {
		t.Fatal(err)
	}
	health := func() string {
		body, err := s.Fetch("/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var h struct {
			Status string `json:"status"`
		}
		if err := json.Unmarshal(body, &h); err != nil {
			t.Fatal(err)
		}
		return h.Status
	}
	if got := health(); got != "ready" {
		t.Fatalf("before SetDone: status = %q, want ready", got)
	}
	s.SetDone()
	if got := health(); got != "done" {
		t.Fatalf("after SetDone: status = %q, want done", got)
	}
	// Metrics must still scrape after done (linger window).
	if _, err := s.Fetch("/metrics"); err != nil {
		t.Fatalf("scrape after done: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	snap, err := s.Shutdown(ctx)
	if err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if snap.Counters["sim.messages"] != 3 {
		t.Errorf("final snapshot counters = %v", snap.Counters)
	}
	if snap.Gauges["runtime.goroutines"] <= 0 {
		t.Error("final snapshot missing refreshed runtime gauges")
	}
	if _, err := s.Fetch("/healthz"); err == nil {
		t.Error("server still serving after Shutdown")
	}
}

// TestConcurrentScrapes hammers the scrape endpoints while spans and
// flight events are recorded — the -race CI matrix covers this
// package, so any unsynchronised state fails there.
func TestConcurrentScrapes(t *testing.T) {
	o := obs.New()
	o.Flight = obs.NewFlightRecorder(64)
	s := startTestServer(t, o)
	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			sp := o.StartSpan("stage")
			sp.End()
			o.Event("fault.msg_lost", "lost", i%8, int64(i))
		}
	}()
	var wg sync.WaitGroup
	for _, ep := range []string{"/metrics", "/metrics.json", "/spans", "/flight", "/healthz"} {
		wg.Add(1)
		go func(ep string) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := s.Fetch(ep); err != nil {
					t.Errorf("GET %s: %v", ep, err)
					return
				}
			}
		}(ep)
	}
	wg.Wait()
	close(stop)
	<-writerDone
	if got := o.Registry.Counter("serve.scrapes").Value(); got < 100 {
		t.Errorf("serve.scrapes = %d, want >= 100", got)
	}
}

// TestServeBadAddr checks the error path and the port-0 contract.
func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("256.0.0.1:bad", obs.New()); err == nil {
		t.Error("want error for unparseable address")
	}
	var nilObs *obs.Observer
	if _, err := Serve("127.0.0.1:0", nilObs); err == nil {
		t.Error("want error for observer without registry")
	}
	s := startTestServer(t, obs.New())
	if !strings.Contains(s.Addr(), ":") || strings.HasSuffix(s.Addr(), ":0") {
		t.Errorf("Addr() = %q, want a resolved port", s.Addr())
	}
	if want := "http://" + s.Addr(); s.URL() != want {
		t.Errorf("URL() = %q, want %q", s.URL(), want)
	}
}
