// Package obshttp is the live telemetry surface over a running
// pipeline's obs.Observer: a zero-dependency, embeddable HTTP server
// exposing the metrics registry, span aggregates, flight recorder,
// timeline and Go runtime profiling while the process works. The
// pas2pd daemon mounts the same handlers on its service mux
// (Handlers.Mount), so a served pipeline and a CLI run expose one
// telemetry dialect.
//
// Endpoints:
//
//	/metrics       Prometheus text exposition (runtime gauges
//	               refreshed on each scrape)
//	/metrics.json  the same snapshot as indented JSON
//	/spans         per-stage span aggregates (count, p50/p95/p99)
//	               plus the recent-span ring
//	/timeline      Chrome trace-event JSON (Perfetto-loadable)
//	/flight        the flight recorder's retained events
//	/healthz       {"status":"ready"} while the run is live, "done"
//	               after it completes (a custom Health hook may add
//	               states such as the daemon's "draining")
//	/debug/pprof/  stdlib net/http/pprof profiles
//
// Everything is pull-based: a scrape snapshots the registry; between
// scrapes the server costs nothing on the instrumented path.
package obshttp

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"

	"pas2p/internal/obs"
)

// Handlers is the mountable form of the telemetry endpoints: anything
// with an *http.ServeMux — the standalone Server below, or the pas2pd
// service mux — registers the same scrape surface through it.
type Handlers struct {
	o     *obs.Observer
	start time.Time

	// Health reports the /healthz status string. The default reports
	// "ready"; the Server wires its done flag in, and the pas2pd
	// daemon reports ready/draining/done from its lifecycle.
	Health func() string

	scrapes *obs.Counter // serve.scrapes on the observed registry
}

// NewHandlers builds the telemetry handlers over an observer, which
// must carry a registry (scrapes are counted on it under
// serve.scrapes).
func NewHandlers(o *obs.Observer) (*Handlers, error) {
	if o.Reg() == nil {
		return nil, fmt.Errorf("obshttp: observer has no registry")
	}
	return &Handlers{
		o:       o,
		start:   time.Now(),
		Health:  func() string { return "ready" },
		scrapes: o.Reg().Counter("serve.scrapes"),
	}, nil
}

// Mount registers every telemetry endpoint on mux. The root index is
// not registered — the embedding server owns "/".
func (h *Handlers) Mount(mux *http.ServeMux) {
	mux.HandleFunc("/healthz", h.handleHealthz)
	mux.HandleFunc("/metrics", h.handleMetrics)
	mux.HandleFunc("/metrics.json", h.handleMetricsJSON)
	mux.HandleFunc("/spans", h.handleSpans)
	mux.HandleFunc("/timeline", h.handleTimeline)
	mux.HandleFunc("/flight", h.handleFlight)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Server serves one Observer's telemetry. Create with Serve; stop with
// Shutdown.
type Server struct {
	o    *obs.Observer
	h    *Handlers
	ln   net.Listener
	hs   *http.Server
	done atomic.Bool
}

// Serve starts a telemetry server for o on addr (host:port; port 0
// picks a free port — read the result from Addr). The observer must
// have a registry; scrapes are counted on it under serve.scrapes.
func Serve(addr string, o *obs.Observer) (*Server, error) {
	h, err := NewHandlers(o)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obshttp: %w", err)
	}
	s := &Server{o: o, h: h, ln: ln}
	h.Health = func() string {
		if s.done.Load() {
			return "done"
		}
		return "ready"
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	h.Mount(mux)
	s.hs = &http.Server{Handler: mux}
	go s.hs.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Shutdown
	return s, nil
}

// Addr returns the actual listen address (resolves port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the server's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// SetDone flips /healthz from "ready" to "done" — the run the server
// observes has completed, but scrapes still work until Shutdown.
func (s *Server) SetDone() { s.done.Store(true) }

// Done reports whether SetDone was called.
func (s *Server) Done() bool { return s.done.Load() }

// Shutdown marks the server done, waits for in-flight scrapes
// (bounded by ctx), stops the listener, and flushes a final snapshot:
// the runtime gauges are refreshed one last time and the frozen
// registry state is returned so the caller can persist or summarise
// it. The returned snapshot is valid even when the HTTP shutdown
// errs.
func (s *Server) Shutdown(ctx context.Context) (*obs.Snapshot, error) {
	s.SetDone()
	err := s.hs.Shutdown(ctx)
	obs.CollectRuntime(s.o.Reg())
	return s.o.Reg().Snapshot(), err
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, `pas2p live telemetry

/metrics       Prometheus text exposition
/metrics.json  metrics snapshot as JSON
/spans         per-stage span aggregates (p50/p95/p99) + recent spans
/timeline      Chrome trace-event JSON (open in Perfetto)
/flight        flight recorder: recent structured events
/healthz       readiness (ready while running, done after)
/debug/pprof/  Go runtime profiles
`)
}

func (h *Handlers) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h.scrapes.Inc()
	writeJSON(w, map[string]any{
		"status":         h.Health(),
		"uptime_seconds": time.Since(h.start).Seconds(),
	})
}

func (h *Handlers) handleMetrics(w http.ResponseWriter, r *http.Request) {
	h.scrapes.Inc()
	obs.CollectRuntime(h.o.Reg())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := h.o.Reg().Snapshot().WritePrometheus(w); err != nil {
		// Headers are gone; all we can do is drop the connection.
		return
	}
}

func (h *Handlers) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	h.scrapes.Inc()
	obs.CollectRuntime(h.o.Reg())
	w.Header().Set("Content-Type", "application/json")
	h.o.Reg().Snapshot().WriteJSON(w) //nolint:errcheck // client gone
}

// spansDoc is the /spans payload: the aggregates that bound registry
// memory plus the recent ring for span-by-span inspection.
type spansDoc struct {
	TakenAt      time.Time                        `json:"taken_at"`
	Stats        map[string]obs.SpanStatsSnapshot `json:"stats"`
	Recent       []obs.SpanRecord                 `json:"recent"`
	SpansTotal   int64                            `json:"spans_total"`
	SpansDropped int64                            `json:"spans_dropped"`
}

func (h *Handlers) handleSpans(w http.ResponseWriter, r *http.Request) {
	h.scrapes.Inc()
	snap := h.o.Reg().Snapshot()
	writeJSON(w, spansDoc{
		TakenAt:      snap.TakenAt,
		Stats:        snap.SpanStats,
		Recent:       snap.Spans,
		SpansTotal:   snap.SpansTotal,
		SpansDropped: snap.SpansDropped,
	})
}

func (h *Handlers) handleTimeline(w http.ResponseWriter, r *http.Request) {
	h.scrapes.Inc()
	w.Header().Set("Content-Type", "application/json")
	// A nil timeline writes an empty trace — scrapers need not care
	// whether the run was started with timeline recording.
	h.o.TL().WriteJSON(w) //nolint:errcheck // client gone
}

func (h *Handlers) handleFlight(w http.ResponseWriter, r *http.Request) {
	h.scrapes.Inc()
	w.Header().Set("Content-Type", "application/json")
	h.o.FR().WriteJSON(w) //nolint:errcheck // client gone
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone
}

// Fetch is a tiny scrape helper for in-process checks and tests: GET
// path from the server and return the body.
func (s *Server) Fetch(path string) ([]byte, error) {
	resp, err := http.Get(s.URL() + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return b, fmt.Errorf("obshttp: GET %s: %s", path, resp.Status)
	}
	return b, nil
}
