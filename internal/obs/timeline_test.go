package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// buildTimeline records events out of order across two rank tracks to
// exercise WriteJSON's sorting.
func buildTimeline() *Timeline {
	tl := NewTimeline()
	pid := tl.NewProcess("sim:cg.16")
	tl.SetThreadName(pid, 1, "rank 1")
	tl.SetThreadName(pid, 0, "rank 0")
	tl.Slice(pid, 1, "compute", "compute", 50, 25)
	tl.Slice(pid, 0, "recv", "comm", 30, 10)
	tl.Slice(pid, 0, "compute", "compute", 0, 20)
	// Nested: an outer wait slice containing a compute slice at the
	// same start time — the longer one must sort first.
	tl.Slice(pid, 1, "compute", "compute", 100, 5)
	tl.Slice(pid, 1, "recv-wait", "comm", 100, 40)
	tl.Instant(pid, 0, "phase 3 start", 20)
	return tl
}

func TestTimelineWriteJSONValid(t *testing.T) {
	var buf bytes.Buffer
	if err := buildTimeline().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents     []TraceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if f.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", f.DisplayTimeUnit)
	}
	if len(f.TraceEvents) != 9 {
		t.Fatalf("got %d events, want 9", len(f.TraceEvents))
	}

	// Metadata events come first so viewers can name tracks before any
	// slice references them.
	seenSlice := false
	for _, ev := range f.TraceEvents {
		if ev.Ph == "M" {
			if seenSlice {
				t.Errorf("metadata event %q after a slice event", ev.Name)
			}
			continue
		}
		seenSlice = true
	}

	// Per-track timestamps must be monotonic non-decreasing, and at
	// equal ts the longer (enclosing) slice must come first.
	type key struct{ pid, tid int }
	last := map[key]TraceEvent{}
	for _, ev := range f.TraceEvents {
		if ev.Ph == "M" {
			continue
		}
		k := key{ev.Pid, ev.Tid}
		if prev, ok := last[k]; ok {
			if ev.Ts < prev.Ts {
				t.Errorf("track %v: ts went backwards (%v after %v)", k, ev.Ts, prev.Ts)
			}
			if ev.Ts == prev.Ts && ev.Dur > prev.Dur {
				t.Errorf("track %v: nested slice %q precedes its parent", k, prev.Name)
			}
		}
		last[k] = ev
	}
}

func TestTimelineInstantScopedToThread(t *testing.T) {
	var buf bytes.Buffer
	if err := buildTimeline().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var f traceFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range f.TraceEvents {
		if ev.Ph == "i" {
			found = true
			if ev.S != "t" {
				t.Errorf("instant event scope = %q, want t", ev.S)
			}
		}
	}
	if !found {
		t.Error("no instant event in output")
	}
}

func TestNilTimelineWriteJSON(t *testing.T) {
	var tl *Timeline
	var buf bytes.Buffer
	if err := tl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var f traceFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("nil-timeline output is not valid JSON: %v", err)
	}
	if len(f.TraceEvents) != 0 {
		t.Errorf("nil timeline produced %d events", len(f.TraceEvents))
	}
}

func TestTimelineProcessIDsDistinct(t *testing.T) {
	tl := NewTimeline()
	a := tl.NewProcess("a")
	b := tl.NewProcess("b")
	if a == b || a == 0 || b == 0 {
		t.Errorf("pids = %d, %d; want distinct non-zero", a, b)
	}
}

func TestAddPipelineTrack(t *testing.T) {
	base := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	s := &Snapshot{Spans: []SpanRecord{
		{Name: "predict.order", Start: base.Add(5 * time.Millisecond), WallNS: 1e6},
		{Name: "phase.extract", Start: base, WallNS: 4e6},
	}}
	tl := NewTimeline()
	s.AddPipelineTrack(tl, "pipeline")
	var buf bytes.Buffer
	if err := tl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var f traceFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	var slices []TraceEvent
	for _, ev := range f.TraceEvents {
		if ev.Ph == "X" {
			slices = append(slices, ev)
		}
	}
	if len(slices) != 2 {
		t.Fatalf("got %d slices, want 2", len(slices))
	}
	// Earliest span start anchors ts=0.
	if slices[0].Name != "phase.extract" || slices[0].Ts != 0 || slices[0].Dur != 4000 {
		t.Errorf("first slice = %+v, want phase.extract at ts 0 dur 4000", slices[0])
	}
	if slices[1].Name != "predict.order" || slices[1].Ts != 5000 || slices[1].Dur != 1000 {
		t.Errorf("second slice = %+v, want predict.order at ts 5000 dur 1000", slices[1])
	}
}
