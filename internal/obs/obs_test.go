package obs

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrency hammers one counter, one gauge and one
// histogram from many goroutines; totals must be exact. The CI race
// run covers this test, so any unsynchronised access also fails -race.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				// Name resolution races the map get-or-create on
				// purpose; real call sites may do either.
				r.Counter("c").Inc()
				r.Histogram("h", []float64{10, 100}).Observe(float64(i % 200))
				r.Gauge("g").Set(float64(w))
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	h := r.Histogram("h", nil)
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	// Each worker observes 0..199 five times: sum per worker = 5 * (199*200/2).
	want := float64(workers) * 5 * 199 * 200 / 2
	if h.Sum() != want {
		t.Errorf("histogram sum = %v, want %v", h.Sum(), want)
	}
	if g := r.Gauge("g").Value(); g < 0 || g >= workers {
		t.Errorf("gauge = %v, want a worker id", g)
	}
}

// TestRegistrySpanConcurrency appends spans from many goroutines, as
// AnalyzeAll's worker pool does.
func TestRegistrySpanConcurrency(t *testing.T) {
	o := New()
	const n = 64
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			sp := o.StartSpan("stage")
			sp.SetCounter("k", 1)
			sp.End()
		}()
	}
	wg.Wait()
	if got := len(o.Registry.Snapshot().Spans); got != n {
		t.Errorf("recorded %d spans, want %d", got, n)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 5} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["lat"]
	// Prometheus semantics: v <= bound. le=1: {0.5, 1}; le=2: {1.5, 2};
	// le=4: {3, 4}; +Inf: {5}.
	wantCounts := []int64{2, 2, 2, 1}
	for i, w := range wantCounts {
		if s.Counts[i] != w {
			t.Errorf("bucket %d count = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 7 || s.Sum != 17 {
		t.Errorf("count/sum = %d/%v, want 7/17", s.Count, s.Sum)
	}
}

// fixedSnapshot builds a snapshot with deterministic content for the
// golden-output tests.
func fixedSnapshot() *Snapshot {
	r := NewRegistry()
	r.Counter("sim.messages").Add(42)
	r.Counter("sim.bytes").Add(1 << 20)
	r.Gauge("profile.wall_seconds").Set(1.5)
	h := r.Histogram("sim.msg_bytes", []float64{1024, 65536})
	h.Observe(512)
	h.Observe(2048)
	h.Observe(1 << 20)
	s := r.Snapshot()
	s.TakenAt = time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	s.Spans = []SpanRecord{{
		Name:   "phase.extract",
		Start:  time.Date(2026, 8, 5, 11, 59, 0, 0, time.UTC),
		WallNS: 2_500_000, Allocs: 10, AllocBytes: 4096,
		Counters: []SpanCounter{{Name: "phases_found", Value: 7}},
	}}
	s.SpanStats = map[string]SpanStatsSnapshot{
		"phase.extract": {
			Count: 1, WallSumNS: 2_500_000,
			WallMinNS: 2_500_000, WallMaxNS: 2_500_000,
			WallP50NS: 2_500_000, WallP95NS: 2_500_000, WallP99NS: 2_500_000,
			Allocs: 10, AllocBytes: 4096, AllocP99: 4096,
		},
	}
	s.SpansTotal = 1
	return s
}

func TestSnapshotJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := fixedSnapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{
  "taken_at": "2026-08-05T12:00:00Z",
  "counters": {
    "sim.bytes": 1048576,
    "sim.messages": 42
  },
  "gauges": {
    "profile.wall_seconds": 1.5
  },
  "histograms": {
    "sim.msg_bytes": {
      "bounds": [
        1024,
        65536
      ],
      "counts": [
        1,
        1,
        1
      ],
      "sum": 1051136,
      "count": 3
    }
  },
  "spans": [
    {
      "name": "phase.extract",
      "start": "2026-08-05T11:59:00Z",
      "wall_ns": 2500000,
      "allocs": 10,
      "alloc_bytes": 4096,
      "counters": [
        {
          "name": "phases_found",
          "value": 7
        }
      ]
    }
  ],
  "span_stats": {
    "phase.extract": {
      "count": 1,
      "wall_sum_ns": 2500000,
      "wall_min_ns": 2500000,
      "wall_max_ns": 2500000,
      "wall_p50_ns": 2500000,
      "wall_p95_ns": 2500000,
      "wall_p99_ns": 2500000,
      "allocs": 10,
      "alloc_bytes": 4096,
      "alloc_bytes_p99": 4096
    }
  },
  "spans_total": 1
}
`
	if got := buf.String(); got != want {
		t.Errorf("JSON snapshot mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestSnapshotPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := fixedSnapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# HELP pas2p_sim_bytes discrete-event simulator traffic — pas2p metric sim.bytes",
		"# TYPE pas2p_sim_bytes counter",
		"pas2p_sim_bytes 1048576",
		"# HELP pas2p_sim_messages discrete-event simulator traffic — pas2p metric sim.messages",
		"# TYPE pas2p_sim_messages counter",
		"pas2p_sim_messages 42",
		"# HELP pas2p_profile_wall_seconds pas2p metric profile.wall_seconds",
		"# TYPE pas2p_profile_wall_seconds gauge",
		"pas2p_profile_wall_seconds 1.5",
		"# HELP pas2p_sim_msg_bytes discrete-event simulator traffic — pas2p metric sim.msg_bytes",
		"# TYPE pas2p_sim_msg_bytes histogram",
		`pas2p_sim_msg_bytes_bucket{le="1024"} 1`,
		`pas2p_sim_msg_bytes_bucket{le="65536"} 2`,
		`pas2p_sim_msg_bytes_bucket{le="+Inf"} 3`,
		"pas2p_sim_msg_bytes_sum 1051136",
		"pas2p_sim_msg_bytes_count 3",
		"# HELP pas2p_span_wall_seconds wall-clock time of pipeline stage spans, aggregated per stage",
		"# TYPE pas2p_span_wall_seconds summary",
		`pas2p_span_wall_seconds{span="phase.extract",quantile="0.5"} 0.0025`,
		`pas2p_span_wall_seconds{span="phase.extract",quantile="0.95"} 0.0025`,
		`pas2p_span_wall_seconds{span="phase.extract",quantile="0.99"} 0.0025`,
		`pas2p_span_wall_seconds_sum{span="phase.extract"} 0.0025`,
		`pas2p_span_wall_seconds_count{span="phase.extract"} 1`,
		"# HELP pas2p_span_allocs_total heap allocations attributed to pipeline stage spans",
		"# TYPE pas2p_span_allocs_total counter",
		`pas2p_span_allocs_total{span="phase.extract"} 10`,
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Errorf("Prometheus snapshot mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestPromFloatEdgeCases(t *testing.T) {
	for _, tc := range []struct {
		in   float64
		want string
	}{
		{1, "1"}, {1.5, "1.5"}, {0, "0"},
		{math.Inf(1), "+Inf"}, {math.Inf(-1), "-Inf"}, {math.NaN(), "NaN"},
	} {
		if got := promFloat(tc.in); got != tc.want {
			t.Errorf("promFloat(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestNilObserverZeroAlloc enforces the Observer seam's core contract:
// every hook an instrumented stage calls — StartSpan, SetCounter, End,
// timeline recording — is allocation-free when no observer is
// configured. The pipeline's nil-observer path is exactly these hooks,
// so zero here means Analyze and the sim run bit-identical work to the
// pre-instrumentation code.
func TestNilObserverZeroAlloc(t *testing.T) {
	var o *Observer
	var tl *Timeline
	allocs := testing.AllocsPerRun(200, func() {
		sp := o.StartSpan("stage")
		sp.SetCounter("events", 123)
		sp.End()
		if r := o.Reg(); r != nil {
			t.Fatal("nil observer returned a registry")
		}
		if got := o.TL(); got != nil {
			t.Fatal("nil observer returned a timeline")
		}
		tl.Slice(1, 0, "compute", "compute", 0, 10)
		tl.Instant(1, 0, "ckpt", 5)
		o.Event("fault.msg_lost", "message lost", 3, 1)
		if o.FR() != nil {
			t.Fatal("nil observer returned a flight recorder")
		}
		if o.MetricsOnly() != nil {
			t.Fatal("nil observer produced a metrics-only observer")
		}
	})
	if allocs != 0 {
		t.Errorf("nil-observer hooks allocated %.1f objects per run, want 0", allocs)
	}
}

// TestPromNameSanitisation pins the metric-name mapping: dots become
// underscores, unicode and punctuation are replaced, and digits pass
// through at every position (the pas2p_ prefix makes a leading digit
// in the exported name impossible).
func TestPromNameSanitisation(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"sim.messages", "pas2p_sim_messages"},
		{"repo.lock_takeovers", "pas2p_repo_lock_takeovers"},
		{"9to5", "pas2p_9to5"},
		{"codec.v2.blocks", "pas2p_codec_v2_blocks"},
		{"latência.ms", "pas2p_lat_ncia_ms"},
		{"a-b/c d", "pas2p_a_b_c_d"},
		{"", "pas2p_"},
		{"UPPER.Case7", "pas2p_UPPER_Case7"},
	} {
		if got := promName(tc.in); got != tc.want {
			t.Errorf("promName(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestPromLabelEscaping pins the exposition-format label escaping:
// only backslash, quote and newline are special; UTF-8 passes through
// verbatim (Go's %q would emit invalid \u escapes).
func TestPromLabelEscaping(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"plain", "plain"},
		{`back\slash`, `back\\slash`},
		{`qu"ote`, `qu\"ote`},
		{"new\nline", `new\nline`},
		{"unicodé ✓", "unicodé ✓"},
		{"\\\"\n", `\\\"\n`},
	} {
		if got := promLabel(tc.in); got != tc.want {
			t.Errorf("promLabel(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestPrometheusOutputHasHelpAndValidEscapes renders a snapshot whose
// span names carry every special character and checks the output
// against the exposition grammar line by line.
func TestPrometheusOutputHasHelpAndValidEscapes(t *testing.T) {
	o := New()
	o.Registry.Counter("sim.messages").Add(1)
	sp := o.StartSpan("weird\"span\\name\nnewline")
	sp.End()
	var buf bytes.Buffer
	if err := o.Registry.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `span="weird\"span\\name\nnewline"`) {
		t.Errorf("span label not escaped per the exposition format:\n%s", out)
	}
	if strings.Contains(out, `\u`) {
		t.Errorf("output contains %%q-style \\u escapes, invalid in the exposition format:\n%s", out)
	}
	seenType := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			seenType[strings.Fields(rest)[0]] = true
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if fam, ok := strings.CutSuffix(name, suf); ok && seenType[fam] {
				base = fam
			}
		}
		if !seenType[base] {
			t.Errorf("sample %q has no preceding # TYPE", line)
		}
	}
	// Every TYPE line must be paired with a HELP line.
	for fam := range seenType {
		if !strings.Contains(out, "# HELP "+fam+" ") {
			t.Errorf("family %s has no # HELP line", fam)
		}
	}
}

// TestSpanRetentionBoundsMemory is the 10k-span soak: the registry
// must retain only the configured ring, keep exact aggregates over
// everything, and reach a zero-allocation steady state on addSpan, so
// a long-running server cannot leak span records.
func TestSpanRetentionBoundsMemory(t *testing.T) {
	r := NewRegistry()
	r.SetSpanRetention(64)
	for i := 0; i < 10_000; i++ {
		r.addSpan(SpanRecord{Name: "stage", WallNS: int64(i + 1), AllocBytes: 128})
	}
	s := r.Snapshot()
	if len(s.Spans) != 64 {
		t.Errorf("retained %d spans, want 64", len(s.Spans))
	}
	if s.SpansTotal != 10_000 || s.SpansDropped != 10_000-64 {
		t.Errorf("total/dropped = %d/%d, want 10000/%d", s.SpansTotal, s.SpansDropped, 10_000-64)
	}
	// Ring holds the most recent records, oldest first.
	if s.Spans[0].WallNS != 10_000-63 || s.Spans[63].WallNS != 10_000 {
		t.Errorf("ring window = [%d, %d], want [9937, 10000]", s.Spans[0].WallNS, s.Spans[63].WallNS)
	}
	st := s.SpanStats["stage"]
	if st.Count != 10_000 || st.WallMinNS != 1 || st.WallMaxNS != 10_000 {
		t.Errorf("aggregate = %+v, want count 10000, min 1, max 10000", st)
	}
	if st.AllocBytes != 10_000*128 {
		t.Errorf("alloc bytes = %d, want %d", st.AllocBytes, 10_000*128)
	}
	// Steady state: recording an existing stage into a full ring must
	// not allocate (no unbounded growth of any kind).
	allocs := testing.AllocsPerRun(1000, func() {
		r.addSpan(SpanRecord{Name: "stage", WallNS: 5, AllocBytes: 64})
	})
	if allocs != 0 {
		t.Errorf("steady-state addSpan allocated %.1f objects per call, want 0", allocs)
	}
}

// TestSpanQuantiles checks the histogram-backed percentiles: exact for
// a single observation (clamped to min==max), and within the 1-2-5
// bucket resolution for a spread of observations.
func TestSpanQuantiles(t *testing.T) {
	r := NewRegistry()
	r.addSpan(SpanRecord{Name: "once", WallNS: 3_141_592})
	st := r.Snapshot().SpanStats["once"]
	if st.WallP50NS != 3_141_592 || st.WallP99NS != 3_141_592 {
		t.Errorf("single-span quantiles = p50 %d p99 %d, want exact 3141592", st.WallP50NS, st.WallP99NS)
	}

	// 1000 spans at 1ms, 10 at 100ms: p50 must sit near 1ms, p99 within
	// a bucket of 1ms (990th of 1010), and max is exact.
	for i := 0; i < 1000; i++ {
		r.addSpan(SpanRecord{Name: "spread", WallNS: 1_000_000})
	}
	for i := 0; i < 10; i++ {
		r.addSpan(SpanRecord{Name: "spread", WallNS: 100_000_000})
	}
	st = r.Snapshot().SpanStats["spread"]
	if st.WallP50NS < 500_000 || st.WallP50NS > 2_000_000 {
		t.Errorf("p50 = %d, want ~1ms", st.WallP50NS)
	}
	if st.WallP99NS < 500_000 || st.WallP99NS > 2_000_000 {
		t.Errorf("p99 = %d, want within the 1ms bucket", st.WallP99NS)
	}
	if st.WallMaxNS != 100_000_000 {
		t.Errorf("max = %d, want 100ms", st.WallMaxNS)
	}
}

// TestSetSpanRetentionRebuild shrinks and regrows the ring and checks
// the retained window stays the newest records in order.
func TestSetSpanRetentionRebuild(t *testing.T) {
	r := NewRegistry()
	for i := 1; i <= 10; i++ {
		r.addSpan(SpanRecord{Name: "s", WallNS: int64(i)})
	}
	r.SetSpanRetention(4)
	s := r.Snapshot()
	if len(s.Spans) != 4 || s.Spans[0].WallNS != 7 || s.Spans[3].WallNS != 10 {
		t.Fatalf("after shrink: %v", wallsOf(s.Spans))
	}
	r.addSpan(SpanRecord{Name: "s", WallNS: 11})
	s = r.Snapshot()
	if len(s.Spans) != 4 || s.Spans[0].WallNS != 8 || s.Spans[3].WallNS != 11 {
		t.Fatalf("after shrink+add: %v", wallsOf(s.Spans))
	}
	r.SetSpanRetention(8)
	r.addSpan(SpanRecord{Name: "s", WallNS: 12})
	s = r.Snapshot()
	if len(s.Spans) != 5 || s.Spans[0].WallNS != 8 || s.Spans[4].WallNS != 12 {
		t.Fatalf("after grow+add: %v", wallsOf(s.Spans))
	}
	if s.SpanStats["s"].Count != 12 {
		t.Fatalf("aggregate count = %d, want 12 (retention must not touch aggregates)", s.SpanStats["s"].Count)
	}
}

func wallsOf(spans []SpanRecord) []int64 {
	ws := make([]int64, len(spans))
	for i, sp := range spans {
		ws[i] = sp.WallNS
	}
	return ws
}

func TestSpanRecordsWallAndCounters(t *testing.T) {
	o := New()
	sp := o.StartSpan("stage")
	sp.SetCounter("a", 1)
	sp.SetCounter("a", 2) // overwrite
	sp.SetCounter("b", 3)
	time.Sleep(2 * time.Millisecond)
	sp.End()
	spans := o.Registry.Snapshot().Spans
	if len(spans) != 1 {
		t.Fatalf("got %d spans", len(spans))
	}
	rec := spans[0]
	if rec.Name != "stage" || rec.WallNS < int64(time.Millisecond) {
		t.Errorf("span = %+v, want name 'stage' and >=1ms wall", rec)
	}
	want := []SpanCounter{{Name: "a", Value: 2}, {Name: "b", Value: 3}}
	if len(rec.Counters) != 2 || rec.Counters[0] != want[0] || rec.Counters[1] != want[1] {
		t.Errorf("counters = %v, want %v", rec.Counters, want)
	}
}

// TestRegistryScrapeVsWriteRace pins the scrape path against live
// publishes: goroutines register *new* metric families (the map-write
// half of the race), bump existing ones, and record spans, while
// scrapers continuously take snapshots and render both exposition
// formats. Run under -race; the assertions check the scrape output is
// internally consistent, not merely that nothing crashed.
func TestRegistryScrapeVsWriteRace(t *testing.T) {
	reg := NewRegistry()
	o := &Observer{Registry: reg}
	stop := make(chan struct{})
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Fresh families force registration during scrapes.
				reg.Counter(fmt.Sprintf("race.w%d.c%d", w, i%17)).Inc()
				reg.Gauge(fmt.Sprintf("race.w%d.g%d", w, i%13)).Set(float64(i))
				reg.Histogram(fmt.Sprintf("race.w%d.h%d", w, i%7), []float64{1, 10, 100}).Observe(float64(i % 150))
				sp := o.StartSpan("race.stage")
				sp.End()
			}
		}(w)
	}

	var scrapers sync.WaitGroup
	for s := 0; s < 3; s++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for i := 0; i < 40; i++ {
				snap := reg.Snapshot()
				var prom, js bytes.Buffer
				if err := snap.WritePrometheus(&prom); err != nil {
					t.Errorf("WritePrometheus: %v", err)
					return
				}
				if err := snap.WriteJSON(&js); err != nil {
					t.Errorf("WriteJSON: %v", err)
					return
				}
				// Internal consistency: every counter the snapshot holds
				// must appear in the rendering with a sane value.
				for name, v := range snap.Counters {
					if v < 0 {
						t.Errorf("counter %s went negative: %d", name, v)
					}
				}
				if len(snap.Counters) > 0 && !strings.Contains(prom.String(), "# TYPE") {
					t.Error("prometheus rendering lost its TYPE lines")
				}
			}
		}()
	}
	scrapers.Wait()
	close(stop)
	writers.Wait()

	// A final quiesced snapshot balances: every histogram's bucket sum
	// equals its count.
	snap := reg.Snapshot()
	for name, h := range snap.Histograms {
		var sum int64
		for _, b := range h.Counts {
			sum += b
		}
		if sum != h.Count {
			t.Errorf("histogram %s buckets sum to %d, count %d", name, sum, h.Count)
		}
	}
}
