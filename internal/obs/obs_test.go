package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrency hammers one counter, one gauge and one
// histogram from many goroutines; totals must be exact. The CI race
// run covers this test, so any unsynchronised access also fails -race.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				// Name resolution races the map get-or-create on
				// purpose; real call sites may do either.
				r.Counter("c").Inc()
				r.Histogram("h", []float64{10, 100}).Observe(float64(i % 200))
				r.Gauge("g").Set(float64(w))
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	h := r.Histogram("h", nil)
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	// Each worker observes 0..199 five times: sum per worker = 5 * (199*200/2).
	want := float64(workers) * 5 * 199 * 200 / 2
	if h.Sum() != want {
		t.Errorf("histogram sum = %v, want %v", h.Sum(), want)
	}
	if g := r.Gauge("g").Value(); g < 0 || g >= workers {
		t.Errorf("gauge = %v, want a worker id", g)
	}
}

// TestRegistrySpanConcurrency appends spans from many goroutines, as
// AnalyzeAll's worker pool does.
func TestRegistrySpanConcurrency(t *testing.T) {
	o := New()
	const n = 64
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			sp := o.StartSpan("stage")
			sp.SetCounter("k", 1)
			sp.End()
		}()
	}
	wg.Wait()
	if got := len(o.Registry.Snapshot().Spans); got != n {
		t.Errorf("recorded %d spans, want %d", got, n)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 5} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["lat"]
	// Prometheus semantics: v <= bound. le=1: {0.5, 1}; le=2: {1.5, 2};
	// le=4: {3, 4}; +Inf: {5}.
	wantCounts := []int64{2, 2, 2, 1}
	for i, w := range wantCounts {
		if s.Counts[i] != w {
			t.Errorf("bucket %d count = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 7 || s.Sum != 17 {
		t.Errorf("count/sum = %d/%v, want 7/17", s.Count, s.Sum)
	}
}

// fixedSnapshot builds a snapshot with deterministic content for the
// golden-output tests.
func fixedSnapshot() *Snapshot {
	r := NewRegistry()
	r.Counter("sim.messages").Add(42)
	r.Counter("sim.bytes").Add(1 << 20)
	r.Gauge("profile.wall_seconds").Set(1.5)
	h := r.Histogram("sim.msg_bytes", []float64{1024, 65536})
	h.Observe(512)
	h.Observe(2048)
	h.Observe(1 << 20)
	s := r.Snapshot()
	s.TakenAt = time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	s.Spans = []SpanRecord{{
		Name:   "phase.extract",
		Start:  time.Date(2026, 8, 5, 11, 59, 0, 0, time.UTC),
		WallNS: 2_500_000, Allocs: 10, AllocBytes: 4096,
		Counters: []SpanCounter{{Name: "phases_found", Value: 7}},
	}}
	return s
}

func TestSnapshotJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := fixedSnapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{
  "taken_at": "2026-08-05T12:00:00Z",
  "counters": {
    "sim.bytes": 1048576,
    "sim.messages": 42
  },
  "gauges": {
    "profile.wall_seconds": 1.5
  },
  "histograms": {
    "sim.msg_bytes": {
      "bounds": [
        1024,
        65536
      ],
      "counts": [
        1,
        1,
        1
      ],
      "sum": 1051136,
      "count": 3
    }
  },
  "spans": [
    {
      "name": "phase.extract",
      "start": "2026-08-05T11:59:00Z",
      "wall_ns": 2500000,
      "allocs": 10,
      "alloc_bytes": 4096,
      "counters": [
        {
          "name": "phases_found",
          "value": 7
        }
      ]
    }
  ]
}
`
	if got := buf.String(); got != want {
		t.Errorf("JSON snapshot mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestSnapshotPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := fixedSnapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# TYPE pas2p_sim_bytes counter",
		"pas2p_sim_bytes 1048576",
		"# TYPE pas2p_sim_messages counter",
		"pas2p_sim_messages 42",
		"# TYPE pas2p_profile_wall_seconds gauge",
		"pas2p_profile_wall_seconds 1.5",
		"# TYPE pas2p_sim_msg_bytes histogram",
		`pas2p_sim_msg_bytes_bucket{le="1024"} 1`,
		`pas2p_sim_msg_bytes_bucket{le="65536"} 2`,
		`pas2p_sim_msg_bytes_bucket{le="+Inf"} 3`,
		"pas2p_sim_msg_bytes_sum 1051136",
		"pas2p_sim_msg_bytes_count 3",
		"# TYPE pas2p_span_wall_seconds gauge",
		`pas2p_span_wall_seconds{span="phase.extract"} 0.0025`,
		"# TYPE pas2p_span_allocs gauge",
		`pas2p_span_allocs{span="phase.extract"} 10`,
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Errorf("Prometheus snapshot mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestPromFloatEdgeCases(t *testing.T) {
	for _, tc := range []struct {
		in   float64
		want string
	}{
		{1, "1"}, {1.5, "1.5"}, {0, "0"},
		{math.Inf(1), "+Inf"}, {math.Inf(-1), "-Inf"}, {math.NaN(), "NaN"},
	} {
		if got := promFloat(tc.in); got != tc.want {
			t.Errorf("promFloat(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestNilObserverZeroAlloc enforces the Observer seam's core contract:
// every hook an instrumented stage calls — StartSpan, SetCounter, End,
// timeline recording — is allocation-free when no observer is
// configured. The pipeline's nil-observer path is exactly these hooks,
// so zero here means Analyze and the sim run bit-identical work to the
// pre-instrumentation code.
func TestNilObserverZeroAlloc(t *testing.T) {
	var o *Observer
	var tl *Timeline
	allocs := testing.AllocsPerRun(200, func() {
		sp := o.StartSpan("stage")
		sp.SetCounter("events", 123)
		sp.End()
		if r := o.Reg(); r != nil {
			t.Fatal("nil observer returned a registry")
		}
		if got := o.TL(); got != nil {
			t.Fatal("nil observer returned a timeline")
		}
		tl.Slice(1, 0, "compute", "compute", 0, 10)
		tl.Instant(1, 0, "ckpt", 5)
		if o.MetricsOnly() != nil {
			t.Fatal("nil observer produced a metrics-only observer")
		}
	})
	if allocs != 0 {
		t.Errorf("nil-observer hooks allocated %.1f objects per run, want 0", allocs)
	}
}

func TestSpanRecordsWallAndCounters(t *testing.T) {
	o := New()
	sp := o.StartSpan("stage")
	sp.SetCounter("a", 1)
	sp.SetCounter("a", 2) // overwrite
	sp.SetCounter("b", 3)
	time.Sleep(2 * time.Millisecond)
	sp.End()
	spans := o.Registry.Snapshot().Spans
	if len(spans) != 1 {
		t.Fatalf("got %d spans", len(spans))
	}
	rec := spans[0]
	if rec.Name != "stage" || rec.WallNS < int64(time.Millisecond) {
		t.Errorf("span = %+v, want name 'stage' and >=1ms wall", rec)
	}
	want := []SpanCounter{{Name: "a", Value: 2}, {Name: "b", Value: 3}}
	if len(rec.Counters) != 2 || rec.Counters[0] != want[0] || rec.Counters[1] != want[1] {
		t.Errorf("counters = %v, want %v", rec.Counters, want)
	}
}
