package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// DefaultFlightCapacity is the ring size NewFlightRecorder uses when
// given a non-positive capacity.
const DefaultFlightCapacity = 1024

// FlightEvent is one structured entry of the flight recorder: a
// monotonically increasing sequence number, the wall-clock instant it
// was recorded, a dotted kind ("fault.msg_lost", "repo.quarantine",
// "sim.deadlock", ...), a short message, and two kind-specific scalars
// (Rank is -1 when the event is not rank-scoped).
type FlightEvent struct {
	Seq  uint64    `json:"seq"`
	Wall time.Time `json:"wall"`
	Kind string    `json:"kind"`
	Msg  string    `json:"msg,omitempty"`
	Rank int       `json:"rank"`
	V    int64     `json:"v"`
}

// FlightRecorder is a fixed-capacity ring buffer of recent structured
// events — the "what just happened" view a live telemetry scrape or a
// post-mortem dump needs, at a bounded, known memory cost. Recording
// takes one short mutex hold and performs no allocation after the ring
// is first filled in (callers pass static kind strings and scalars),
// so it is cheap enough to call from simulator rank goroutines. When
// the ring wraps, the oldest events are overwritten and counted as
// dropped.
type FlightRecorder struct {
	mu   sync.Mutex
	ring []FlightEvent
	next uint64 // total events ever recorded; slot = next % cap
}

// NewFlightRecorder returns a recorder retaining the last capacity
// events (DefaultFlightCapacity when capacity <= 0).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightCapacity
	}
	return &FlightRecorder{ring: make([]FlightEvent, 0, capacity)}
}

// Record appends one event. Safe on a nil recorder and for concurrent
// use.
func (f *FlightRecorder) Record(kind, msg string, rank int, v int64) {
	if f == nil {
		return
	}
	f.mu.Lock()
	ev := FlightEvent{Seq: f.next, Wall: time.Now(), Kind: kind, Msg: msg, Rank: rank, V: v}
	if len(f.ring) < cap(f.ring) {
		f.ring = append(f.ring, ev)
	} else {
		f.ring[f.next%uint64(cap(f.ring))] = ev
	}
	f.next++
	f.mu.Unlock()
}

// FlightSnapshot is a consistent copy of the recorder's state: the
// retained events oldest-first, the total ever recorded, and how many
// were overwritten by ring wraparound.
type FlightSnapshot struct {
	TakenAt time.Time     `json:"taken_at"`
	Total   uint64        `json:"total"`
	Dropped uint64        `json:"dropped"`
	Events  []FlightEvent `json:"events"`
}

// Snapshot copies the retained events in recording order (oldest
// first). Safe on a nil recorder (empty snapshot).
func (f *FlightRecorder) Snapshot() FlightSnapshot {
	s := FlightSnapshot{TakenAt: time.Now(), Events: []FlightEvent{}}
	if f == nil {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	s.Total = f.next
	n := uint64(len(f.ring))
	s.Dropped = f.next - n
	s.Events = make([]FlightEvent, 0, n)
	for i := uint64(0); i < n; i++ {
		// Oldest retained event sits at next-n; slots wrap modulo cap.
		s.Events = append(s.Events, f.ring[(f.next-n+i)%uint64(cap(f.ring))])
	}
	return s
}

// Len returns the number of retained events; zero on nil.
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.ring)
}

// WriteJSON dumps the snapshot as indented JSON — the on-demand and
// on-error dump format.
func (f *FlightRecorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f.Snapshot())
}
