package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"

	"pas2p/internal/vtime"
)

// Binary tracefile layout. The format exists so tracefile sizes
// (Table 8's TFSize column) and analysis input costs are realistic,
// and so traces can be moved between the analyze/signature stages of
// the CLI.
//
// Version 2 (PAS2PTR2) is the crash-safe, corruption-detecting
// format: the stored artefacts are the system of record once a site
// serves predictions from a repository, so every region of the file
// is covered by a CRC32C (Castagnoli):
//
//	magic[8] "PAS2PTR2"
//	header[24]  nameLen u16 | reserved u16 | procs u32 | count u64 | aet u64
//	appName[nameLen]
//	headerCRC u32           over magic+header+appName
//	blocks: per <=blockEvents records, the raw records then a u32 CRC
//	trailer[8] "PAS2PEND"
//	fileCRC u32             over every preceding byte of the file
//
// Decode still reads version 1 (PAS2PTR1: header and records with no
// checksums) as the migration path, never trusts header-declared
// sizes for allocation, and reports corruption with the byte offset
// at which it was detected.

var (
	magic   = [8]byte{'P', 'A', 'S', '2', 'P', 'T', 'R', '1'}
	magicV2 = [8]byte{'P', 'A', 'S', '2', 'P', 'T', 'R', '2'}
	trailer = [8]byte{'P', 'A', 'S', '2', 'P', 'E', 'N', 'D'}
)

// crcTable is the Castagnoli polynomial table shared by encode and
// decode (hardware-accelerated on amd64/arm64).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

const recordSize = 8 + // ID
	4 + 8 + // Process, Number
	1 + 4 + 1 + // Kind, Involved, CollOp
	4 + 4 + 8 + // Peer, Tag, Size
	8 + 8 + // Enter, Exit
	8 + // LT
	8 + 8 + // RelA, RelB
	8 // ComputeBefore

// blockEvents is the number of event records per checksummed block;
// a corruption is localised to one block-sized byte range.
const blockEvents = 512

// maxEventCount caps the header-declared event count; anything larger
// is rejected as implausible before any reading happens.
const maxEventCount = 1 << 36

// eventChunk bounds slice growth while decoding: the events slice is
// grown at most this many entries at a time, so a malicious count
// cannot force a huge up-front allocation.
const eventChunk = 1 << 16

// FileCRC extracts the whole-file CRC32-C a v2 tracefile declares in
// its trailer without reading the body. It is the stable identity of
// an encoded tracefile (every preceding byte feeds it), which the
// signature service uses as its cache and dedup key. The second
// return is false when data is not a plausible v2 tracefile (wrong
// magic, missing trailer); the CRC itself is NOT verified here —
// only a full Decode or VerifyStream proves the bytes match it.
func FileCRC(data []byte) (uint32, bool) {
	// magic + trailer magic + fileCRC is the absolute minimum length.
	if len(data) < len(magicV2)+len(trailer)+4 {
		return 0, false
	}
	if string(data[:len(magicV2)]) != string(magicV2[:]) {
		return 0, false
	}
	tm := data[len(data)-12 : len(data)-4]
	if string(tm) != string(trailer[:]) {
		return 0, false
	}
	return binary.LittleEndian.Uint32(data[len(data)-4:]), true
}

// FileCRCAt is FileCRC for a random-access source of known size (a
// spooled upload, an mmap'd artefact): it reads the 8-byte magic and
// the 12-byte trailer without touching the body, so the identity of an
// arbitrarily large tracefile costs two tiny reads.
func FileCRCAt(ra io.ReaderAt, size int64) (uint32, bool) {
	if size < int64(len(magicV2)+len(trailer)+4) {
		return 0, false
	}
	var head [8]byte
	if _, err := ra.ReadAt(head[:], 0); err != nil || head != magicV2 {
		return 0, false
	}
	var tail [12]byte
	if _, err := ra.ReadAt(tail[:], size-12); err != nil {
		return 0, false
	}
	if [8]byte(tail[:8]) != trailer {
		return 0, false
	}
	return binary.LittleEndian.Uint32(tail[8:]), true
}

// EncodedSize returns the exact tracefile size in bytes for a trace
// in the current (v2) format.
func EncodedSize(t *Trace) int64 {
	n := int64(len(t.Events))
	blocks := (n + blockEvents - 1) / blockEvents
	return 8 + 24 + int64(len(t.AppName)) + 4 + // magic, header, name, headerCRC
		n*recordSize + blocks*4 + // records + per-block CRCs
		8 + 4 // trailer magic + fileCRC
}

// putRecord serialises one event into b (recordSize bytes).
func putRecord(b []byte, e *Event) {
	le := binary.LittleEndian
	le.PutUint64(b[0:], uint64(e.ID))
	le.PutUint32(b[8:], uint32(e.Process))
	le.PutUint64(b[12:], uint64(e.Number))
	b[20] = byte(e.Kind)
	le.PutUint32(b[21:], uint32(e.Involved))
	b[25] = byte(e.CollOp)
	le.PutUint32(b[26:], uint32(e.Peer))
	le.PutUint32(b[30:], uint32(e.Tag))
	le.PutUint64(b[34:], uint64(e.Size))
	le.PutUint64(b[42:], uint64(e.Enter))
	le.PutUint64(b[50:], uint64(e.Exit))
	le.PutUint64(b[58:], uint64(e.LT))
	le.PutUint64(b[66:], uint64(e.RelA))
	le.PutUint64(b[74:], uint64(e.RelB))
	le.PutUint64(b[82:], uint64(e.ComputeBefore))
}

// getRecord deserialises one event from b (recordSize bytes).
func getRecord(b []byte, e *Event) {
	le := binary.LittleEndian
	e.ID = int64(le.Uint64(b[0:]))
	e.Process = int32(le.Uint32(b[8:]))
	e.Number = int64(le.Uint64(b[12:]))
	e.Kind = Kind(b[20])
	e.Involved = int32(le.Uint32(b[21:]))
	e.CollOp = int8(b[25])
	e.Peer = int32(le.Uint32(b[26:]))
	e.Tag = int32(le.Uint32(b[30:]))
	e.Size = int64(le.Uint64(b[34:]))
	e.Enter = vtime.Time(le.Uint64(b[42:]))
	e.Exit = vtime.Time(le.Uint64(b[50:]))
	e.LT = int64(le.Uint64(b[58:]))
	e.RelA = int64(le.Uint64(b[66:]))
	e.RelB = int64(le.Uint64(b[74:]))
	e.ComputeBefore = vtime.Duration(le.Uint64(b[82:]))
}

// crcWriter accumulates the whole-file CRC as bytes stream out.
type crcWriter struct {
	w   *bufio.Writer
	crc uint32
}

func (cw *crcWriter) write(p []byte) error {
	cw.crc = crc32.Update(cw.crc, crcTable, p)
	_, err := cw.w.Write(p)
	return err
}

// Encode writes the current (v2, checksummed) binary tracefile
// format. Blocks are serialised and checksummed on the worker-pool
// block engine (blockio.go); use EncodeWith to pin the worker count or
// attach metrics.
func Encode(w io.Writer, t *Trace) error {
	return EncodeWith(w, t, CodecOptions{})
}

// crcReader tracks the byte offset and whole-file CRC of everything
// read, so corruption errors can locate themselves.
type crcReader struct {
	br  *bufio.Reader
	off int64
	crc uint32
}

func (cr *crcReader) readFull(p []byte) error {
	n, err := io.ReadFull(cr.br, p)
	cr.crc = crc32.Update(cr.crc, crcTable, p[:n])
	cr.off += int64(n)
	return err
}

// corruptf builds a corruption error carrying the detection offset.
func corruptf(off int64, format string, args ...any) error {
	return fmt.Errorf("trace: %s (at byte offset %d)", fmt.Sprintf(format, args...), off)
}

// Decode reads the binary tracefile format, either the current v2
// (verifying every checksum) or the legacy v1 migration path. All
// corruption and truncation errors include the byte offset at which
// the problem was detected. Block verification and deserialisation run
// on the worker-pool block engine (blockio.go); use DecodeWith to pin
// the worker count or attach metrics.
func Decode(r io.Reader) (*Trace, error) {
	return DecodeWith(r, CodecOptions{})
}

// readHeader reads and validates the common 24-byte header.
func readHeader(cr *crcReader) (nameLen int, procs int, count uint64, aet vtime.Duration, hdr [24]byte, err error) {
	if err = cr.readFull(hdr[:]); err != nil {
		err = corruptf(cr.off, "reading header: %v", err)
		return
	}
	nameLen = int(binary.LittleEndian.Uint16(hdr[0:]))
	procs = int(binary.LittleEndian.Uint32(hdr[4:]))
	count = binary.LittleEndian.Uint64(hdr[8:])
	aet = vtime.Duration(binary.LittleEndian.Uint64(hdr[16:]))
	if procs <= 0 || procs > 1<<20 {
		err = corruptf(cr.off, "implausible process count %d", procs)
		return
	}
	if count > maxEventCount {
		err = corruptf(cr.off, "implausible event count %d", count)
		return
	}
	return
}

// growEvents extends evs towards total. Until trusted, growth is
// bounded to eventChunk-sized steps: the header count is never trusted
// for a single large allocation, so a 32-byte malicious header cannot
// demand terabytes. Once the caller has verified real data against a
// checksum (trusted=true), capacity doubles toward total so a large
// decode performs O(log n) copies instead of O(n/chunk).
func growEvents(evs []Event, total uint64, trusted bool) []Event {
	want := cap(evs) + eventChunk
	if trusted {
		want = cap(evs) * 2
		if want < eventChunk {
			want = eventChunk
		}
	}
	if uint64(want) > total {
		want = int(total)
	}
	grown := make([]Event, len(evs), want)
	copy(grown, evs)
	return grown
}

// decodeV1 reads the legacy unchecksummed body (magic already
// consumed). It survives as the migration path for pre-v2 archives.
func decodeV1(cr *crcReader) (*Trace, error) {
	nameLen, procs, count, aet, _, err := readHeader(cr)
	if err != nil {
		return nil, err
	}
	name := make([]byte, nameLen)
	if err := cr.readFull(name); err != nil {
		return nil, corruptf(cr.off, "reading app name: %v", err)
	}
	t := &Trace{AppName: string(name), Procs: procs, AET: aet, Events: make([]Event, 0)}
	var rec [recordSize]byte
	for i := uint64(0); i < count; i++ {
		if uint64(cap(t.Events)) <= i {
			t.Events = growEvents(t.Events, count, false)
		}
		if err := cr.readFull(rec[:]); err != nil {
			return nil, corruptf(cr.off, "reading event %d of %d: %v", i, count, err)
		}
		t.Events = t.Events[:i+1]
		getRecord(rec[:], &t.Events[i])
	}
	return t, nil
}

// encodeV1 writes the legacy v1 format. It exists so tests can prove
// the migration path against freshly produced v1 bytes (the committed
// golden file pins the historical layout).
func encodeV1(w io.Writer, t *Trace) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	if len(t.AppName) > 0xffff {
		return fmt.Errorf("trace: app name too long")
	}
	var hdr [24]byte
	binary.LittleEndian.PutUint16(hdr[0:], uint16(len(t.AppName)))
	binary.LittleEndian.PutUint16(hdr[2:], 0)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(t.Procs))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(t.Events)))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(t.AET))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := bw.WriteString(t.AppName); err != nil {
		return err
	}
	var rec [recordSize]byte
	for i := range t.Events {
		putRecord(rec[:], &t.Events[i])
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// EncodeJSON writes a human-readable trace, mainly for debugging and
// the examples.
func EncodeJSON(w io.Writer, t *Trace) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(t)
}

// DecodeJSON reads a trace written by EncodeJSON.
func DecodeJSON(r io.Reader) (*Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: decoding JSON: %w", err)
	}
	return &t, nil
}
