package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"pas2p/internal/vtime"
)

// Binary tracefile layout: a fixed header followed by one fixed-size
// little-endian record per event. The format exists so tracefile sizes
// (Table 8's TFSize column) and analysis input costs are realistic,
// and so traces can be moved between the analyze/signature stages of
// the CLI.

var magic = [8]byte{'P', 'A', 'S', '2', 'P', 'T', 'R', '1'}

const recordSize = 8 + // ID
	4 + 8 + // Process, Number
	1 + 4 + 1 + // Kind, Involved, CollOp
	4 + 4 + 8 + // Peer, Tag, Size
	8 + 8 + // Enter, Exit
	8 + // LT
	8 + 8 + // RelA, RelB
	8 // ComputeBefore

// EncodedSize returns the exact tracefile size in bytes for a trace.
func EncodedSize(t *Trace) int64 {
	return int64(8+2+2+4+8+8+len(t.AppName)) + int64(len(t.Events))*recordSize
}

// Encode writes the binary tracefile format.
func Encode(w io.Writer, t *Trace) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	if len(t.AppName) > 0xffff {
		return fmt.Errorf("trace: app name too long")
	}
	var hdr [24]byte
	binary.LittleEndian.PutUint16(hdr[0:], uint16(len(t.AppName)))
	binary.LittleEndian.PutUint16(hdr[2:], 0) // reserved
	binary.LittleEndian.PutUint32(hdr[4:], uint32(t.Procs))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(t.Events)))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(t.AET))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := bw.WriteString(t.AppName); err != nil {
		return err
	}
	var rec [recordSize]byte
	for i := range t.Events {
		e := &t.Events[i]
		b := rec[:]
		le := binary.LittleEndian
		le.PutUint64(b[0:], uint64(e.ID))
		le.PutUint32(b[8:], uint32(e.Process))
		le.PutUint64(b[12:], uint64(e.Number))
		b[20] = byte(e.Kind)
		le.PutUint32(b[21:], uint32(e.Involved))
		b[25] = byte(e.CollOp)
		le.PutUint32(b[26:], uint32(e.Peer))
		le.PutUint32(b[30:], uint32(e.Tag))
		le.PutUint64(b[34:], uint64(e.Size))
		le.PutUint64(b[42:], uint64(e.Enter))
		le.PutUint64(b[50:], uint64(e.Exit))
		le.PutUint64(b[58:], uint64(e.LT))
		le.PutUint64(b[66:], uint64(e.RelA))
		le.PutUint64(b[74:], uint64(e.RelB))
		le.PutUint64(b[82:], uint64(e.ComputeBefore))
		if _, err := bw.Write(b); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode reads the binary tracefile format.
func Decode(r io.Reader) (*Trace, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("trace: bad magic %q", m[:])
	}
	var hdr [24]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	nameLen := int(binary.LittleEndian.Uint16(hdr[0:]))
	procs := int(binary.LittleEndian.Uint32(hdr[4:]))
	count := binary.LittleEndian.Uint64(hdr[8:])
	aet := vtime.Duration(binary.LittleEndian.Uint64(hdr[16:]))
	if procs <= 0 || procs > 1<<20 {
		return nil, fmt.Errorf("trace: implausible process count %d", procs)
	}
	if count > 1<<36 {
		return nil, fmt.Errorf("trace: implausible event count %d", count)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: reading app name: %w", err)
	}
	t := &Trace{AppName: string(name), Procs: procs, AET: aet,
		Events: make([]Event, count)}
	var rec [recordSize]byte
	for i := range t.Events {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("trace: reading event %d: %w", i, err)
		}
		b := rec[:]
		le := binary.LittleEndian
		e := &t.Events[i]
		e.ID = int64(le.Uint64(b[0:]))
		e.Process = int32(le.Uint32(b[8:]))
		e.Number = int64(le.Uint64(b[12:]))
		e.Kind = Kind(b[20])
		e.Involved = int32(le.Uint32(b[21:]))
		e.CollOp = int8(b[25])
		e.Peer = int32(le.Uint32(b[26:]))
		e.Tag = int32(le.Uint32(b[30:]))
		e.Size = int64(le.Uint64(b[34:]))
		e.Enter = vtime.Time(le.Uint64(b[42:]))
		e.Exit = vtime.Time(le.Uint64(b[50:]))
		e.LT = int64(le.Uint64(b[58:]))
		e.RelA = int64(le.Uint64(b[66:]))
		e.RelB = int64(le.Uint64(b[74:]))
		e.ComputeBefore = vtime.Duration(le.Uint64(b[82:]))
	}
	return t, nil
}

// EncodeJSON writes a human-readable trace, mainly for debugging and
// the examples.
func EncodeJSON(w io.Writer, t *Trace) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(t)
}

// DecodeJSON reads a trace written by EncodeJSON.
func DecodeJSON(r io.Reader) (*Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: decoding JSON: %w", err)
	}
	return &t, nil
}
