package trace

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"pas2p/internal/vtime"
)

// fuzzTrace deterministically expands (seed, procs, events) into a
// structurally valid trace: random per-rank streams whose receive
// relations are fixed up to point at existing sends, exactly as
// NewTrace requires. The fuzzer explores shapes through the scalar
// parameters instead of raw bytes, so every input exercises the real
// encoder instead of dying in validation.
func fuzzTrace(t *testing.T, seed int64, procs, events int) *Trace {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	streams := make([][]Event, procs)
	for p := 0; p < procs; p++ {
		rec := NewRecorder(p)
		var tphys vtime.Time
		for i := 0; i < events; i++ {
			tphys += vtime.Time(rng.Intn(5000) + 1)
			kind := Kind(rng.Intn(3))
			peer := int32(rng.Intn(procs))
			if kind == Collective {
				peer = -1
			}
			rec.Record(Event{
				Kind: kind, Involved: int32(rng.Intn(8) + 2),
				CollOp: int8(rng.Intn(8)) - 1, Peer: peer,
				Tag: int32(rng.Intn(16)), Size: int64(rng.Intn(1 << 16)),
				Enter: tphys, Exit: tphys + vtime.Time(rng.Intn(500)),
				RelA: int64(rng.Intn(procs)), RelB: int64(rng.Intn(100)),
			})
		}
		streams[p] = rec.Events()
	}
	type key struct{ a, b int64 }
	sends := map[key]bool{}
	for p := range streams {
		for i := range streams[p] {
			if streams[p][i].Kind == Send {
				sends[key{streams[p][i].RelA, streams[p][i].RelB}] = true
			}
		}
	}
	for p := range streams {
		for i := range streams[p] {
			e := &streams[p][i]
			if e.Kind == Recv && !sends[key{e.RelA, e.RelB}] {
				e.Kind = Collective
				e.Peer = -1
			}
		}
	}
	tr, err := NewTrace("fuzz", procs, streams, vtime.Duration(rng.Intn(1e9)))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// FuzzCompressRoundTrip asserts Compress∘Decompress is the identity on
// any generated trace, and that Decompress never panics on a corrupted
// archive (it must fail cleanly or produce some trace — silently
// "repairing" bytes into the original is fine, crashing is not).
func FuzzCompressRoundTrip(f *testing.F) {
	// Seeds cover the shapes the property test explored: single rank,
	// several ranks, empty streams, LT-carrying events, and a byte to
	// corrupt at a seed-chosen offset.
	f.Add(int64(7), 3, 40, false, byte(0))
	f.Add(int64(1), 1, 1, false, byte(0xff))
	f.Add(int64(2), 4, 0, false, byte(1))
	f.Add(int64(3), 2, 25, true, byte(0x80))
	f.Add(int64(99), 6, 10, true, byte(7))
	f.Fuzz(func(t *testing.T, seed int64, procs, events int, withLT bool, flip byte) {
		if procs < 1 || procs > 8 || events < 0 || events > 200 {
			t.Skip("out of modelled range")
		}
		tr := fuzzTrace(t, seed, procs, events)
		if withLT {
			for i := range tr.Events {
				tr.Events[i].LT = int64(i)
			}
		}
		var buf bytes.Buffer
		if err := Compress(&buf, tr); err != nil {
			t.Fatalf("compress: %v", err)
		}
		got, err := Decompress(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("decompress: %v", err)
		}
		if !reflect.DeepEqual(got, tr) {
			t.Fatal("round trip mismatch")
		}

		// Corruption must never panic the decoder.
		if buf.Len() > 0 {
			raw := append([]byte(nil), buf.Bytes()...)
			pos := int(uint64(seed)%uint64(len(raw))+uint64(flip)) % len(raw)
			raw[pos] ^= flip | 1
			_, _ = Decompress(bytes.NewReader(raw)) // errors allowed, panics not
			_, _ = DecodeAny(bytes.NewReader(raw))
		}
	})
}

// FuzzDecodeTracefile drives the v2 checksummed codec: any generated
// trace must round-trip exactly, and any single corrupted byte or
// torn tail must produce an error that names a byte offset — never a
// panic, never a silently wrong trace.
func FuzzDecodeTracefile(f *testing.F) {
	f.Add(int64(7), 3, 40, uint32(100), byte(0x41), uint16(0))
	f.Add(int64(1), 1, 1, uint32(0), byte(0xff), uint16(3))
	f.Add(int64(2), 4, 0, uint32(9), byte(1), uint16(1))
	f.Add(int64(3), 2, 600, uint32(55555), byte(0x80), uint16(9000))
	f.Add(int64(99), 6, 513, uint32(31), byte(7), uint16(40))
	f.Fuzz(func(t *testing.T, seed int64, procs, events int, pos uint32, flip byte, cut uint16) {
		if procs < 1 || procs > 8 || events < 0 || events > 1200 {
			t.Skip("out of modelled range")
		}
		tr := fuzzTrace(t, seed, procs, events)
		var buf bytes.Buffer
		if err := Encode(&buf, tr); err != nil {
			t.Fatalf("encode: %v", err)
		}
		got, err := Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(got, tr) {
			t.Fatal("round trip mismatch")
		}

		raw := buf.Bytes()
		// One corrupted byte anywhere: CRC32C catches every burst
		// error shorter than 32 bits, so this must always be detected
		// and located.
		corrupted := append([]byte(nil), raw...)
		p := int(pos) % len(corrupted)
		corrupted[p] ^= flip | 1
		if _, err := Decode(bytes.NewReader(corrupted)); err == nil {
			t.Fatalf("flip at %d went undetected", p)
		} else if !strings.Contains(err.Error(), "offset") {
			t.Fatalf("flip at %d: error lacks offset: %v", p, err)
		}

		// A torn tail (1..len bytes lost) must be detected and located.
		drop := 1 + int(cut)%len(raw)
		if _, err := Decode(bytes.NewReader(raw[:len(raw)-drop])); err == nil {
			t.Fatalf("truncation by %d bytes went undetected", drop)
		} else if !strings.Contains(err.Error(), "offset") {
			t.Fatalf("truncation by %d: error lacks offset: %v", drop, err)
		}
	})
}

// streamEvents folds a BlockReader to completion, returning the
// concatenated events or the first error.
func streamEvents(r *bytes.Reader) ([]Event, error) {
	br, err := NewBlockReader(r)
	if err != nil {
		return nil, err
	}
	var evs []Event
	for {
		blk, err := br.Next()
		if err == io.EOF {
			return evs, nil
		}
		if err != nil {
			return nil, err
		}
		evs = append(evs, blk...)
	}
}

// FuzzBlockReader drives the streaming reader over mutated block
// boundaries: on a clean file it must yield exactly what Decode
// materialises; with a byte flipped or the tail torn near a
// seed-chosen block edge it must fail with an offset-carrying error —
// never panic, never hand back silently wrong events. VerifyStream
// (the repo-fsck path) must agree with Decode on validity.
func FuzzBlockReader(f *testing.F) {
	f.Add(int64(7), 3, 40, uint16(0), int8(0), byte(0x41))
	f.Add(int64(1), 1, 1, uint16(1), int8(-1), byte(0xff))
	f.Add(int64(2), 4, 0, uint16(0), int8(1), byte(1))
	f.Add(int64(3), 2, 600, uint16(2), int8(3), byte(0x80)) // several blocks
	f.Add(int64(99), 6, 513, uint16(6), int8(-4), byte(7))  // boundary-straddling count
	f.Fuzz(func(t *testing.T, seed int64, procs, events int, blockIdx uint16, delta int8, flip byte) {
		if procs < 1 || procs > 8 || events < 0 || events > 1200 {
			t.Skip("out of modelled range")
		}
		tr := fuzzTrace(t, seed, procs, events)
		var buf bytes.Buffer
		if err := Encode(&buf, tr); err != nil {
			t.Fatalf("encode: %v", err)
		}
		raw := buf.Bytes()

		got, err := streamEvents(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("stream clean file: %v", err)
		}
		want := tr.Events
		if len(want) == 0 {
			want = nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatal("streamed events diverge from the encoded trace")
		}
		if _, err := VerifyStream(bytes.NewReader(raw)); err != nil {
			t.Fatalf("verify clean file: %v", err)
		}

		// Mutate at (or near) a block boundary: the byte at offset
		// headerEnd + blockIdx*(blockBytes+4) + delta, clamped into the
		// file. delta walks across the CRC/record seam.
		headerEnd := 8 + 24 + len(tr.AppName) + 4
		pos := headerEnd + int(blockIdx)*(blockBytes+4) + int(delta)
		if pos < 0 {
			pos = 0
		}
		if pos >= len(raw) {
			pos %= len(raw)
		}
		corrupted := append([]byte(nil), raw...)
		corrupted[pos] ^= flip | 1
		sgot, serr := streamEvents(bytes.NewReader(corrupted))
		if serr == nil {
			// CRC32C guarantees single-byte flips are caught inside
			// checksummed extents; the only silent region would be a bug.
			t.Fatalf("flip at %d streamed cleanly (%d events)", pos, len(sgot))
		} else if !strings.Contains(serr.Error(), "offset") {
			t.Fatalf("flip at %d: error lacks offset: %v", pos, serr)
		}
		if _, err := VerifyStream(bytes.NewReader(corrupted)); err == nil {
			t.Fatalf("flip at %d passed VerifyStream", pos)
		}

		// Torn tail ending inside the seed-chosen block.
		cut := pos
		if cut < headerEnd {
			cut = headerEnd
		}
		if _, err := streamEvents(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d streamed cleanly", cut)
		} else if !strings.Contains(err.Error(), "offset") {
			t.Fatalf("truncation at %d: error lacks offset: %v", cut, err)
		}
	})
}
