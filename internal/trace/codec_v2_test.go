package trace

import (
	"bytes"
	"encoding/binary"
	"os"
	"reflect"
	"strings"
	"testing"
)

// TestGoldenV1Migration proves pre-v2 archives keep loading: the
// committed golden file was written by the v1 encoder before the
// checksummed format existed, and must decode, validate, and survive
// a v2 re-encode round trip bit-identically.
func TestGoldenV1Migration(t *testing.T) {
	raw, err := os.ReadFile("testdata/golden_v1.pas2p")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(raw, magic[:]) {
		t.Fatal("golden file is not v1 format; regenerate it with encodeV1")
	}
	tr, err := Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("v1 migration decode: %v", err)
	}
	if tr.AppName != "cg" || tr.Procs != 8 || len(tr.Events) == 0 {
		t.Fatalf("golden decoded to %s/%d procs/%d events", tr.AppName, tr.Procs, len(tr.Events))
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("golden trace invalid: %v", err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), magicV2[:]) {
		t.Error("Encode no longer writes v2")
	}
	again, err := DecodeAny(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, tr) {
		t.Error("v1 → v2 migration round trip mismatch")
	}
}

// TestV1EncoderRoundTrip checks fresh v1 bytes also take the
// migration path (not only the committed golden).
func TestV1EncoderRoundTrip(t *testing.T) {
	tr := fuzzTrace(t, 11, 4, 300)
	var buf bytes.Buffer
	if err := encodeV1(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Error("v1 round trip mismatch")
	}
}

// TestDecodeV2DetectsCorruptionWithOffset flips one byte at every
// position of a small v2 file and requires each flip to be rejected
// with an error that locates itself by byte offset.
func TestDecodeV2DetectsCorruptionWithOffset(t *testing.T) {
	tr := fuzzTrace(t, 3, 2, 20)
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for pos := 0; pos < len(raw); pos++ {
		corrupted := append([]byte(nil), raw...)
		corrupted[pos] ^= 0x41
		_, err := Decode(bytes.NewReader(corrupted))
		if err == nil {
			t.Fatalf("flip at byte %d of %d went undetected", pos, len(raw))
		}
		if !strings.Contains(err.Error(), "offset") {
			t.Fatalf("flip at byte %d: error lacks offset: %v", pos, err)
		}
	}
}

// TestDecodeV2DetectsTruncation cuts the tail at every length and
// requires a located error — torn writes must never yield a silently
// shorter trace.
func TestDecodeV2DetectsTruncation(t *testing.T) {
	tr := fuzzTrace(t, 5, 2, 8)
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for cut := 0; cut < len(raw); cut++ {
		_, err := Decode(bytes.NewReader(raw[:cut]))
		if err == nil {
			t.Fatalf("truncation to %d of %d bytes went undetected", cut, len(raw))
		}
		if !strings.Contains(err.Error(), "offset") {
			t.Fatalf("truncation to %d: error lacks offset: %v", cut, err)
		}
	}
}

// TestDecodeBoundsMaliciousHeader crafts a 32-byte v1 header claiming
// 2^35 events: Decode must fail on the missing body without first
// attempting a multi-terabyte allocation (chunked growth bounds the
// damage to one eventChunk).
func TestDecodeBoundsMaliciousHeader(t *testing.T) {
	var b bytes.Buffer
	b.Write(magic[:])
	var hdr [24]byte
	binary.LittleEndian.PutUint16(hdr[0:], 0)            // nameLen
	binary.LittleEndian.PutUint32(hdr[4:], 1)            // procs
	binary.LittleEndian.PutUint64(hdr[8:], 1<<35)        // count: ~3 TiB of records
	binary.LittleEndian.PutUint64(hdr[16:], 1_000_000_0) // aet
	b.Write(hdr[:])
	_, err := Decode(bytes.NewReader(b.Bytes()))
	if err == nil {
		t.Fatal("malicious header should fail")
	}
	if !strings.Contains(err.Error(), "offset") {
		t.Errorf("error lacks offset: %v", err)
	}

	// Above the plausibility cap the header itself is rejected.
	binary.LittleEndian.PutUint64(hdr[8:], 1<<40)
	var b2 bytes.Buffer
	b2.Write(magic[:])
	b2.Write(hdr[:])
	if _, err := Decode(bytes.NewReader(b2.Bytes())); err == nil ||
		!strings.Contains(err.Error(), "implausible event count") {
		t.Errorf("count cap not enforced: %v", err)
	}
}

// TestEncodedSizeMatchesV2 pins the size formula against real output
// across block-boundary event counts.
func TestEncodedSizeMatchesV2(t *testing.T) {
	for _, events := range []int{0, 1, blockEvents - 1, blockEvents, blockEvents + 1, 3 * blockEvents} {
		tr := fuzzTrace(t, int64(events)+1, 1, events)
		var buf bytes.Buffer
		if err := Encode(&buf, tr); err != nil {
			t.Fatal(err)
		}
		if int64(buf.Len()) != EncodedSize(tr) {
			t.Errorf("%d events: EncodedSize = %d, actual %d", events, EncodedSize(tr), buf.Len())
		}
	}
}
