// Package trace defines the event records produced by instrumenting a
// message-passing application (the paper's §3.1 "data collection"
// stage, played by libpas2p in the original tool) and the trace
// container consumed by the logical-ordering and phase-extraction
// stages. It also provides binary and JSON codecs so tracefile sizes
// and analysis times can be reported as in Table 8.
package trace

import (
	"fmt"
	"sort"

	"pas2p/internal/vtime"
)

// Kind distinguishes the event classes of the application model.
type Kind int8

const (
	// Send and Recv are the two point-to-point event types; the paper
	// encodes them as +K / -K with K the number of involved processes.
	Send Kind = iota
	Recv
	// Collective covers MPI_Bcast, MPI_Allreduce, MPI_Barrier, etc.;
	// the paper treats them as events involving all member processes.
	Collective
)

func (k Kind) String() string {
	switch k {
	case Send:
		return "Send"
	case Recv:
		return "Recv"
	case Collective:
		return "Coll"
	default:
		return "Kind(?)"
	}
}

// NoLT marks an event whose logical time has not been assigned yet.
const NoLT = int64(-1)

// Event is one communication action observed on one process. It
// carries the fields of the paper's event structure: identifier,
// physical time, logical time, process, type (+K/-K), size, per-process
// number, and the relation linking a receive to its send (or a
// collective occurrence to its peers).
type Event struct {
	// ID is the event identifier, assigned in global occurrence order
	// when per-process traces are merged.
	ID int64
	// Process is the rank the event occurred on.
	Process int32
	// Number is the event's index within its process (0-based).
	Number int64
	// Kind is the event class; Involved is the K of the paper's +K/-K
	// encoding (2 for point-to-point, the member count for
	// collectives).
	Kind     Kind
	Involved int32
	// CollOp identifies the collective operation (network.CollectiveOp
	// values); -1 for point-to-point events.
	CollOp int8
	// Peer is the other process of a point-to-point event (destination
	// for sends, source for receives); -1 for collectives.
	Peer int32
	// Tag is the message tag; collectives use the communicator context.
	Tag int32
	// Size is the communication volume in bytes.
	Size int64
	// Enter and Exit are the physical times at which the operation
	// started and completed on this process.
	Enter, Exit vtime.Time
	// LT is the logical time assigned by the PAS2P ordering (NoLT
	// until the model stage runs).
	LT int64
	// RelA/RelB encode the relation field: for point-to-point events
	// they are (source process, per-source send sequence), so a Recv
	// carries exactly its matching Send's identity; for collectives
	// they are (context, per-context sequence).
	RelA, RelB int64
	// ComputeBefore is the computational time observed on this process
	// between the previous event's exit and this event's enter: the
	// payload of the parallel basic block ending at this event.
	ComputeBefore vtime.Duration
}

// TypeCode returns the paper's signed type encoding: +K for sends and
// collectives, -K for receives.
func (e *Event) TypeCode() int32 {
	if e.Kind == Recv {
		return -e.Involved
	}
	return e.Involved
}

// CommSignature returns a compact value identifying the "type of
// communication" used by the phase-similarity test: kind, collective
// op, peer offset and tag. Two events communicate "the same way" when
// their signatures match.
func (e *Event) CommSignature() uint64 {
	k := uint64(e.Kind) & 0x3
	op := uint64(uint8(e.CollOp)) & 0xff
	// Use the peer's distance from the owning process so the same
	// pattern shifted across ranks compares equal (e.g. every rank
	// sending to rank+1).
	var rel uint64
	if e.Peer >= 0 {
		rel = uint64(uint32(e.Peer-e.Process)) & 0xffffff
	} else {
		rel = 0xffffff
	}
	tag := uint64(uint32(e.Tag)) & 0xffff
	return k | op<<2 | rel<<10 | tag<<34
}

// Trace is the result of instrumenting one application run: all events
// of all processes, plus run-level metadata.
type Trace struct {
	// AppName labels the traced application.
	AppName string
	// Procs is the number of processes in the run.
	Procs int
	// Events holds every process's events. After NewTrace/Normalize
	// they are sorted by (Process, Number) and IDs are assigned in
	// global physical-time order.
	Events []Event
	// AET is the uninstrumented-equivalent application execution time
	// observed during tracing (the run's virtual finish time).
	AET vtime.Duration
}

// NewTrace assembles per-process event streams into a normalised
// trace: events sorted by (Process, Number), global IDs assigned by
// (Enter, Process, Number) order.
func NewTrace(app string, procs int, perProc [][]Event, aet vtime.Duration) (*Trace, error) {
	if procs <= 0 || len(perProc) != procs {
		return nil, fmt.Errorf("trace %q: have %d process streams, want %d", app, len(perProc), procs)
	}
	total := 0
	for p, evs := range perProc {
		for i := range evs {
			if int(evs[i].Process) != p {
				return nil, fmt.Errorf("trace %q: stream %d contains event of process %d", app, p, evs[i].Process)
			}
			if evs[i].Number != int64(i) {
				return nil, fmt.Errorf("trace %q: process %d event %d numbered %d", app, p, i, evs[i].Number)
			}
		}
		total += len(evs)
	}
	t := &Trace{AppName: app, Procs: procs, Events: make([]Event, 0, total), AET: aet}
	for _, evs := range perProc {
		t.Events = append(t.Events, evs...)
	}
	t.assignIDs()
	return t, nil
}

// assignIDs numbers events in global occurrence order (physical enter
// time, ties broken by process then per-process number), matching the
// paper's "Id: given in order of occurrence".
//
// Events arrive grouped per process in per-process order, and each
// stream produced by Recorder is Enter-monotone (Record clamps Enter
// to the previous exit), so a P-way merge of the stream heads keyed
// (Enter, Process) yields exactly the order of the stable sort by
// (Enter, Process, Number) in O(E log P) instead of O(E log E): ties
// within a stream follow stream order (ascending Number), ties across
// streams are broken by Process. Hand-built streams that are not
// Enter-monotone fall back to the sort.
func (t *Trace) assignIDs() {
	type stream struct{ next, end int }
	streams := make([]stream, 0, t.Procs)
	start := 0
	for start < len(t.Events) {
		p := t.Events[start].Process
		end := start
		last := t.Events[start].Enter
		for end < len(t.Events) && t.Events[end].Process == p {
			if t.Events[end].Enter < last {
				t.assignIDsSort()
				return
			}
			last = t.Events[end].Enter
			end++
		}
		streams = append(streams, stream{next: start, end: end})
		start = end
	}
	less := func(a, b stream) bool {
		x, y := &t.Events[a.next], &t.Events[b.next]
		if x.Enter != y.Enter {
			return x.Enter < y.Enter
		}
		return x.Process < y.Process
	}
	// Binary min-heap of the stream heads.
	h := streams
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			if l >= len(h) {
				return
			}
			c := l
			if r < len(h) && less(h[r], h[l]) {
				c = r
			}
			if !less(h[c], h[i]) {
				return
			}
			h[i], h[c] = h[c], h[i]
			i = c
		}
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(i)
	}
	var id int64
	for len(h) > 0 {
		t.Events[h[0].next].ID = id
		id++
		h[0].next++
		if h[0].next >= h[0].end {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
		}
		siftDown(0)
	}
}

// assignIDsSort is the reference O(E log E) ID assignment, used when a
// process stream is not Enter-monotone (never the case for recorded
// traces) and by tests as the merge oracle.
func (t *Trace) assignIDsSort() {
	order := make([]int, len(t.Events))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		x, y := &t.Events[order[a]], &t.Events[order[b]]
		if x.Enter != y.Enter {
			return x.Enter < y.Enter
		}
		if x.Process != y.Process {
			return x.Process < y.Process
		}
		return x.Number < y.Number
	})
	for id, idx := range order {
		t.Events[idx].ID = int64(id)
	}
}

// PerProcess returns the trace's events grouped by process, in
// per-process order. The returned slices alias the trace.
func (t *Trace) PerProcess() [][]Event {
	// Events are stored grouped by process already (NewTrace appends
	// stream by stream), so slice the runs out.
	out := make([][]Event, t.Procs)
	start := 0
	for p := 0; p < t.Procs; p++ {
		end := start
		for end < len(t.Events) && int(t.Events[end].Process) == p {
			end++
		}
		out[p] = t.Events[start:end:end]
		start = end
	}
	return out
}

// Validate checks structural invariants: grouping, numbering,
// monotone physical times per process, and send/recv relation pairing.
func (t *Trace) Validate() error {
	per := t.PerProcess()
	n := 0
	for _, evs := range per {
		n += len(evs)
	}
	if n != len(t.Events) {
		return fmt.Errorf("trace %q: events not grouped by process", t.AppName)
	}
	type msgKey struct{ src, seq int64 }
	sends := make(map[msgKey]bool, n/2)
	for p, evs := range per {
		var last vtime.Time
		for i := range evs {
			e := &evs[i]
			if e.Number != int64(i) {
				return fmt.Errorf("trace %q: proc %d event %d numbered %d", t.AppName, p, i, e.Number)
			}
			if e.Enter < last {
				return fmt.Errorf("trace %q: proc %d event %d enters at %v before previous exit-enter %v",
					t.AppName, p, i, e.Enter, last)
			}
			if e.Exit < e.Enter {
				return fmt.Errorf("trace %q: proc %d event %d exits before entering", t.AppName, p, i)
			}
			last = e.Enter
			if e.Kind == Send {
				sends[msgKey{e.RelA, e.RelB}] = true
			}
		}
	}
	for p, evs := range per {
		for i := range evs {
			e := &evs[i]
			if e.Kind == Recv && !sends[msgKey{e.RelA, e.RelB}] {
				return fmt.Errorf("trace %q: proc %d recv %d references unknown send (%d,%d)",
					t.AppName, p, i, e.RelA, e.RelB)
			}
		}
	}
	return nil
}

// Stats summarises a trace for reports.
type Stats struct {
	Events      int
	Sends       int
	Recvs       int
	Collectives int
	Bytes       int64
}

// Stats computes event-class counts and total volume.
func (t *Trace) Stats() Stats {
	var s Stats
	s.Events = len(t.Events)
	for i := range t.Events {
		e := &t.Events[i]
		switch e.Kind {
		case Send:
			s.Sends++
			s.Bytes += e.Size
		case Recv:
			s.Recvs++
		case Collective:
			s.Collectives++
			s.Bytes += e.Size
		}
	}
	return s
}
