package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"runtime"
	"sync"

	"pas2p/internal/vtime"
)

// Compressed tracefile format. The paper cites tracefile size as the
// scalability problem of trace-based analysis (§2, Noeth et al. [20],
// ScalaTrace); this codec exploits exactly the property PAS2P itself
// relies on — repetitive communication structure — to shrink
// tracefiles losslessly:
//
//   - each event's structural fields (kind, collective op, peer offset,
//     tag, size, involved count) collapse into a dictionary of
//     templates; iterative applications have very few distinct ones;
//   - the per-rank template-id sequence is run-length encoded over
//     tandem block repeats (loops compress to one block + a count);
//   - times are stored as varint deltas (inter-event gap and service
//     time), which are small and repetitive;
//   - relations are stored as varint deltas against their expected
//     progression (per-channel send counters).
//
// Two container layouts exist. Z1 (legacy) concatenates the per-process
// sections with no index, so a reader can only find section p by
// decoding sections 0..p-1 — decompression is inherently serial. Z2
// (current) writes every section's byte length between the template
// dictionary and the section bodies, giving readers random access:
// sections load as independent byte ranges and decode on a worker
// pool. The section payloads are identical in both layouts, and
// sections are process-independent, so the decoded trace is the same
// whichever layout or worker count is used. New files are always
// written as Z2; Z1 remains readable.
//
// Decompression reproduces the trace bit-for-bit (including global
// IDs, which are reassigned by the same deterministic rule).

var (
	magicZ  = [8]byte{'P', 'A', 'S', '2', 'P', 'T', 'Z', '1'}
	magicZ2 = [8]byte{'P', 'A', 'S', '2', 'P', 'T', 'Z', '2'}
)

// template is the structural part of an event.
type template struct {
	kind     Kind
	involved int32
	collOp   int8
	peerOff  int32 // peer - process; peerNone for collectives
	tag      int32
	size     int64
}

const peerNone = int32(-1 << 20)

// maxSectionBytes bounds a single per-process section in the Z2 index;
// anything larger than the flat encoding of the whole-file event cap
// is corruption, not data.
const maxSectionBytes = uint64(1) << 43

func templateOf(e *Event) template {
	off := peerNone
	if e.Peer >= 0 {
		off = e.Peer - e.Process
	}
	return template{kind: e.Kind, involved: e.Involved, collOp: e.CollOp,
		peerOff: off, tag: e.Tag, size: e.Size}
}

// CompressOptions tunes the loop detector and the worker pool.
type CompressOptions struct {
	// MaxBlock is the largest tandem-repeat block length searched.
	MaxBlock int
	// Workers is the per-process worker count: 0 (or negative) selects
	// GOMAXPROCS, 1 forces the serial path. Template detection and
	// section encoding are process-independent, so the output is
	// byte-identical at every setting. DecompressWith has the matching
	// knob on the read side: the Z2 section index lets it fan sections
	// out the same way (legacy Z1 inputs decode serially).
	Workers int
}

// Compress writes the compressed tracefile format (Z2, indexed).
func Compress(w io.Writer, t *Trace) error {
	return CompressWith(w, t, CompressOptions{MaxBlock: 64})
}

// CompressWith writes the compressed format with explicit options.
// Per-process work (template scans, loop detection, varint encoding)
// fans out across opts.Workers; sections are concatenated in process
// order, so the bytes match the serial encoder's exactly.
func CompressWith(w io.Writer, t *Trace, opts CompressOptions) error {
	return compressTo(w, t, opts, false)
}

// compressLegacy writes the index-less Z1 layout. The write path
// always emits Z2 now; this exists so the legacy read path keeps a
// producer for its regression tests.
func compressLegacy(w io.Writer, t *Trace, opts CompressOptions) error {
	return compressTo(w, t, opts, true)
}

func compressTo(w io.Writer, t *Trace, opts CompressOptions, legacy bool) error {
	if opts.MaxBlock <= 0 {
		opts.MaxBlock = 64
	}
	per := t.PerProcess()
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(per) {
		workers = len(per)
	}
	if len(t.Events) < 4*blockEvents {
		workers = 1
	}

	bw := bufio.NewWriterSize(w, 1<<16)
	m := magicZ2
	if legacy {
		m = magicZ
	}
	if _, err := bw.Write(m[:]); err != nil {
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	putUv := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	putV := func(v int64) error {
		n := binary.PutVarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}

	if err := putUv(uint64(len(t.AppName))); err != nil {
		return err
	}
	if _, err := bw.WriteString(t.AppName); err != nil {
		return err
	}
	if err := putUv(uint64(t.Procs)); err != nil {
		return err
	}
	if err := putUv(uint64(t.AET)); err != nil {
		return err
	}

	// Global template dictionary in first-seen order. The serial scan
	// walks process 0 to completion before process 1, so per-process
	// first-seen lists merged in process order reproduce the global
	// order exactly — which makes the scan embarrassingly parallel.
	dict := map[template]uint64{}
	var order []template
	if workers > 1 {
		localOrders := make([][]template, len(per))
		runProcs(len(per), workers, func(p int) {
			evs := per[p]
			local := map[template]struct{}{}
			for i := range evs {
				tp := templateOf(&evs[i])
				if _, ok := local[tp]; !ok {
					local[tp] = struct{}{}
					localOrders[p] = append(localOrders[p], tp)
				}
			}
		})
		for _, lo := range localOrders {
			for _, tp := range lo {
				if _, ok := dict[tp]; !ok {
					dict[tp] = uint64(len(order))
					order = append(order, tp)
				}
			}
		}
	} else {
		for _, evs := range per {
			for i := range evs {
				tp := templateOf(&evs[i])
				if _, ok := dict[tp]; !ok {
					dict[tp] = uint64(len(order))
					order = append(order, tp)
				}
			}
		}
	}
	if err := putUv(uint64(len(order))); err != nil {
		return err
	}
	for _, tp := range order {
		if err := putUv(uint64(tp.kind)); err != nil {
			return err
		}
		if err := putV(int64(tp.involved)); err != nil {
			return err
		}
		if err := putV(int64(tp.collOp)); err != nil {
			return err
		}
		if err := putV(int64(tp.peerOff)); err != nil {
			return err
		}
		if err := putV(int64(tp.tag)); err != nil {
			return err
		}
		if err := putUv(uint64(tp.size)); err != nil {
			return err
		}
	}

	// Per-process streams: each section depends only on its own
	// process's events and the (now frozen) dictionary, so sections
	// are encoded into per-process buffers concurrently and written
	// out in process order. The Z2 layout needs every section's byte
	// length before the first body, so sections are always fully
	// buffered; only the legacy serial path can recycle one buffer.
	if legacy && workers == 1 {
		var buf bytes.Buffer
		for p, evs := range per {
			buf.Reset()
			compressSection(&buf, p, evs, dict, opts.MaxBlock)
			if _, err := bw.Write(buf.Bytes()); err != nil {
				return err
			}
		}
		return bw.Flush()
	}
	bufs := make([]bytes.Buffer, len(per))
	if workers > 1 {
		runProcs(len(per), workers, func(p int) {
			compressSection(&bufs[p], p, per[p], dict, opts.MaxBlock)
		})
	} else {
		for p := range per {
			compressSection(&bufs[p], p, per[p], dict, opts.MaxBlock)
		}
	}
	if !legacy {
		for p := range bufs {
			if err := putUv(uint64(bufs[p].Len())); err != nil {
				return err
			}
		}
	}
	for p := range bufs {
		if _, err := bw.Write(bufs[p].Bytes()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// runProcs runs fn(p) for p in [0, n) on a pool of workers goroutines.
func runProcs(n, workers int, fn func(p int)) {
	var wg sync.WaitGroup
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range ch {
				fn(p)
			}
		}()
	}
	for p := 0; p < n; p++ {
		ch <- p
	}
	close(ch)
	wg.Wait()
}

// compressSection encodes one process's event stream into buf. Writes
// to a bytes.Buffer cannot fail, so the section body is error-free by
// construction; I/O errors surface when the buffer is copied out.
func compressSection(buf *bytes.Buffer, p int, evs []Event, dict map[template]uint64, maxBlock int) {
	var scratch [binary.MaxVarintLen64]byte
	putUv := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		buf.Write(scratch[:n])
		return nil
	}
	putV := func(v int64) {
		n := binary.PutVarint(scratch[:], v)
		buf.Write(scratch[:n])
	}

	putUv(uint64(len(evs)))
	// Template ids with tandem-repeat RLE.
	ids := make([]uint64, len(evs))
	for i := range evs {
		ids[i] = dict[templateOf(&evs[i])]
	}
	rleEncode(ids, maxBlock, putUv)
	// Times: gap since previous exit, service time, plus the
	// compute-before correction when it differs from the gap.
	var prevExit vtime.Time
	for i := range evs {
		e := &evs[i]
		gap := int64(e.Enter - prevExit)
		putV(gap)
		putUv(uint64(e.Exit - e.Enter))
		putV(int64(e.ComputeBefore) - gap)
		prevExit = e.Exit
	}
	// Relations: delta against expectation. For sends the expected
	// RelA is the process itself and RelB counts up; receives and
	// collectives store raw varints (they are small counters).
	var sendSeq int64
	for i := range evs {
		e := &evs[i]
		if e.Kind == Send {
			putV(e.RelA - int64(p))
			putV(e.RelB - sendSeq)
			sendSeq++
		} else {
			putV(e.RelA)
			putV(e.RelB)
		}
	}
	// Logical times (usually all NoLT in fresh traces).
	allNo := true
	for i := range evs {
		if evs[i].LT != NoLT {
			allNo = false
			break
		}
	}
	flag := uint64(0)
	if allNo {
		flag = 1
	}
	putUv(flag)
	if !allNo {
		for i := range evs {
			putV(evs[i].LT)
		}
	}
}

// rleEncode emits the id sequence as tokens: either (0, id) for a
// literal or (blockLen, count) pairs for a tandem repeat of the
// preceding blockLen ids.
func rleEncode(ids []uint64, maxBlock int, putUv func(uint64) error) error {
	i := 0
	for i < len(ids) {
		// Find the best tandem repeat of a block ending at i.
		bestLen, bestCount := 0, 0
		for bl := 1; bl <= maxBlock && bl <= i; bl++ {
			count := 0
			for i+(count+1)*bl <= len(ids) && equalBlocks(ids, i-bl, i+count*bl, bl) {
				count++
			}
			if count > 0 && count*bl > bestCount*bestLen {
				bestLen, bestCount = bl, count
			}
		}
		if bestCount*bestLen >= 3 { // worth a token
			if err := putUv(uint64(bestLen)); err != nil {
				return err
			}
			if err := putUv(uint64(bestCount)); err != nil {
				return err
			}
			i += bestLen * bestCount
			continue
		}
		if err := putUv(0); err != nil {
			return err
		}
		if err := putUv(ids[i]); err != nil {
			return err
		}
		i++
	}
	return nil
}

func equalBlocks(ids []uint64, a, b, n int) bool {
	for k := 0; k < n; k++ {
		if ids[a+k] != ids[b+k] {
			return false
		}
	}
	return true
}

// Decompress reads the compressed tracefile format, either layout.
func Decompress(r io.Reader) (*Trace, error) {
	return DecompressWith(r, CodecOptions{})
}

// DecompressWith reads the compressed format with explicit codec
// options. For the indexed Z2 layout, opts.Workers sections decode
// concurrently (0 or negative selects GOMAXPROCS); the decoded trace
// is identical at every worker count because sections are process-
// independent and assembled in process order. Legacy Z1 inputs carry
// no section index and always decode serially.
func DecompressWith(r io.Reader, opts CodecOptions) (*Trace, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	indexed := false
	switch m {
	case magicZ:
	case magicZ2:
		indexed = true
	default:
		return nil, fmt.Errorf("trace: bad compressed magic %q", m[:])
	}
	getUv := func() (uint64, error) { return binary.ReadUvarint(br) }
	getV := func() (int64, error) { return binary.ReadVarint(br) }

	nameLen, err := getUv()
	if err != nil {
		return nil, err
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("trace: implausible name length")
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	procsU, err := getUv()
	if err != nil {
		return nil, err
	}
	procs := int(procsU)
	if procs <= 0 || procs > 1<<20 {
		return nil, fmt.Errorf("trace: implausible process count %d", procs)
	}
	aetU, err := getUv()
	if err != nil {
		return nil, err
	}

	nTemplates, err := getUv()
	if err != nil {
		return nil, err
	}
	if nTemplates > 1<<24 {
		return nil, fmt.Errorf("trace: implausible template count")
	}
	templates := make([]template, nTemplates)
	for i := range templates {
		k, err := getUv()
		if err != nil {
			return nil, err
		}
		inv, err := getV()
		if err != nil {
			return nil, err
		}
		co, err := getV()
		if err != nil {
			return nil, err
		}
		po, err := getV()
		if err != nil {
			return nil, err
		}
		tg, err := getV()
		if err != nil {
			return nil, err
		}
		sz, err := getUv()
		if err != nil {
			return nil, err
		}
		templates[i] = template{kind: Kind(k), involved: int32(inv), collOp: int8(co),
			peerOff: int32(po), tag: int32(tg), size: int64(sz)}
	}

	streams := make([][]Event, procs)
	if indexed {
		// Z2: the index gives every section's byte range up front, so
		// sections load as opaque buffers and decode on a worker pool.
		lens := make([]uint64, procs)
		for p := range lens {
			sl, err := getUv()
			if err != nil {
				return nil, fmt.Errorf("trace: reading section index: %w", err)
			}
			if sl > maxSectionBytes {
				return nil, fmt.Errorf("trace: implausible section length %d (proc %d)", sl, p)
			}
			lens[p] = sl
		}
		secs := make([][]byte, procs)
		for p := range secs {
			secs[p] = make([]byte, lens[p])
			if _, err := io.ReadFull(br, secs[p]); err != nil {
				return nil, fmt.Errorf("trace: reading section %d: %w", p, err)
			}
		}
		workers := opts.Workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if workers > procs {
			workers = procs
		}
		errs := make([]error, procs)
		runProcs(procs, workers, func(p int) {
			sr := bytes.NewReader(secs[p])
			evs, err := decompressSection(sr, p, templates)
			if err == nil && sr.Len() != 0 {
				err = fmt.Errorf("trace: %d trailing bytes in section %d", sr.Len(), p)
			}
			streams[p], errs[p] = evs, err
		})
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	} else {
		for p := 0; p < procs; p++ {
			evs, err := decompressSection(br, p, templates)
			if err != nil {
				return nil, err
			}
			streams[p] = evs
		}
	}
	return NewTrace(string(name), procs, streams, vtime.Duration(aetU))
}

// decompressSection decodes one process's section body. The byte
// source is either the shared sequential reader (Z1) or an isolated
// per-section buffer (Z2); the payload is identical either way.
func decompressSection(br io.ByteReader, p int, templates []template) ([]Event, error) {
	getUv := func() (uint64, error) { return binary.ReadUvarint(br) }
	getV := func() (int64, error) { return binary.ReadVarint(br) }

	count, err := getUv()
	if err != nil {
		return nil, err
	}
	if count > 1<<32 {
		return nil, fmt.Errorf("trace: implausible event count")
	}
	ids, err := rleDecode(int(count), getUv)
	if err != nil {
		return nil, err
	}
	evs := make([]Event, count)
	for i := range evs {
		if ids[i] >= uint64(len(templates)) {
			return nil, fmt.Errorf("trace: template id out of range")
		}
		tp := templates[ids[i]]
		peer := int32(-1)
		if tp.peerOff != peerNone {
			peer = int32(p) + tp.peerOff
		}
		evs[i] = Event{
			Process: int32(p), Number: int64(i),
			Kind: tp.kind, Involved: tp.involved, CollOp: tp.collOp,
			Peer: peer, Tag: tp.tag, Size: tp.size, LT: NoLT,
		}
	}
	var prevExit vtime.Time
	for i := range evs {
		gap, err := getV()
		if err != nil {
			return nil, err
		}
		service, err := getUv()
		if err != nil {
			return nil, err
		}
		corr, err := getV()
		if err != nil {
			return nil, err
		}
		evs[i].Enter = prevExit.Add(vtime.Duration(gap))
		evs[i].Exit = evs[i].Enter.Add(vtime.Duration(service))
		evs[i].ComputeBefore = vtime.Duration(gap + corr)
		prevExit = evs[i].Exit
	}
	var sendSeq int64
	for i := range evs {
		ra, err := getV()
		if err != nil {
			return nil, err
		}
		rb, err := getV()
		if err != nil {
			return nil, err
		}
		if evs[i].Kind == Send {
			evs[i].RelA = ra + int64(p)
			evs[i].RelB = rb + sendSeq
			sendSeq++
		} else {
			evs[i].RelA = ra
			evs[i].RelB = rb
		}
	}
	flag, err := getUv()
	if err != nil {
		return nil, err
	}
	if flag == 0 {
		for i := range evs {
			lt, err := getV()
			if err != nil {
				return nil, err
			}
			evs[i].LT = lt
		}
	}
	return evs, nil
}

// rleDecode expands the token stream back into count ids.
func rleDecode(count int, getUv func() (uint64, error)) ([]uint64, error) {
	ids := make([]uint64, 0, count)
	for len(ids) < count {
		tok, err := getUv()
		if err != nil {
			return nil, err
		}
		if tok == 0 {
			id, err := getUv()
			if err != nil {
				return nil, err
			}
			ids = append(ids, id)
			continue
		}
		bl := int(tok)
		repU, err := getUv()
		if err != nil {
			return nil, err
		}
		rep := int(repU)
		if bl > len(ids) || rep <= 0 || len(ids)+bl*rep > count {
			return nil, fmt.Errorf("trace: corrupt repeat token (block %d x %d at %d/%d)", bl, rep, len(ids), count)
		}
		start := len(ids) - bl
		for r := 0; r < rep; r++ {
			ids = append(ids, ids[start:start+bl]...)
		}
	}
	return ids, nil
}

// DecodeAny sniffs the tracefile format (flat binary, compressed, or
// JSON) and decodes accordingly.
func DecodeAny(r io.Reader) (*Trace, error) {
	return DecodeAnyWith(r, CodecOptions{})
}

// DecodeAnyWith is DecodeAny with codec options; the options apply to
// the flat binary path and the indexed (Z2) compressed path (the
// legacy Z1 and JSON decoders are inherently sequential).
func DecodeAnyWith(r io.Reader, opts CodecOptions) (*Trace, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head, err := br.Peek(8)
	if err != nil {
		return nil, fmt.Errorf("trace: sniffing format: %w", err)
	}
	switch {
	case bytes.Equal(head, magic[:]), bytes.Equal(head, magicV2[:]):
		return DecodeWith(br, opts)
	case bytes.Equal(head, magicZ[:]), bytes.Equal(head, magicZ2[:]):
		return DecompressWith(br, opts)
	case head[0] == '{':
		return DecodeJSON(br)
	default:
		return nil, fmt.Errorf("trace: unrecognised tracefile format (magic %q)", head)
	}
}
