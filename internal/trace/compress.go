package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"pas2p/internal/vtime"
)

// Compressed tracefile format. The paper cites tracefile size as the
// scalability problem of trace-based analysis (§2, Noeth et al. [20],
// ScalaTrace); this codec exploits exactly the property PAS2P itself
// relies on — repetitive communication structure — to shrink
// tracefiles losslessly:
//
//   - each event's structural fields (kind, collective op, peer offset,
//     tag, size, involved count) collapse into a dictionary of
//     templates; iterative applications have very few distinct ones;
//   - the per-rank template-id sequence is run-length encoded over
//     tandem block repeats (loops compress to one block + a count);
//   - times are stored as varint deltas (inter-event gap and service
//     time), which are small and repetitive;
//   - relations are stored as varint deltas against their expected
//     progression (per-channel send counters).
//
// Decompression reproduces the trace bit-for-bit (including global
// IDs, which are reassigned by the same deterministic rule).

var magicZ = [8]byte{'P', 'A', 'S', '2', 'P', 'T', 'Z', '1'}

// template is the structural part of an event.
type template struct {
	kind     Kind
	involved int32
	collOp   int8
	peerOff  int32 // peer - process; peerNone for collectives
	tag      int32
	size     int64
}

const peerNone = int32(-1 << 20)

func templateOf(e *Event) template {
	off := peerNone
	if e.Peer >= 0 {
		off = e.Peer - e.Process
	}
	return template{kind: e.Kind, involved: e.Involved, collOp: e.CollOp,
		peerOff: off, tag: e.Tag, size: e.Size}
}

// CompressOptions tunes the loop detector.
type CompressOptions struct {
	// MaxBlock is the largest tandem-repeat block length searched.
	MaxBlock int
}

// Compress writes the compressed tracefile format.
func Compress(w io.Writer, t *Trace) error {
	return CompressWith(w, t, CompressOptions{MaxBlock: 64})
}

// CompressWith writes the compressed format with explicit options.
func CompressWith(w io.Writer, t *Trace, opts CompressOptions) error {
	if opts.MaxBlock <= 0 {
		opts.MaxBlock = 64
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(magicZ[:]); err != nil {
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	putUv := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	putV := func(v int64) error {
		n := binary.PutVarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}

	if err := putUv(uint64(len(t.AppName))); err != nil {
		return err
	}
	if _, err := bw.WriteString(t.AppName); err != nil {
		return err
	}
	if err := putUv(uint64(t.Procs)); err != nil {
		return err
	}
	if err := putUv(uint64(t.AET)); err != nil {
		return err
	}

	per := t.PerProcess()

	// Global template dictionary.
	dict := map[template]uint64{}
	var order []template
	for _, evs := range per {
		for i := range evs {
			tp := templateOf(&evs[i])
			if _, ok := dict[tp]; !ok {
				dict[tp] = uint64(len(order))
				order = append(order, tp)
			}
		}
	}
	if err := putUv(uint64(len(order))); err != nil {
		return err
	}
	for _, tp := range order {
		if err := putUv(uint64(tp.kind)); err != nil {
			return err
		}
		if err := putV(int64(tp.involved)); err != nil {
			return err
		}
		if err := putV(int64(tp.collOp)); err != nil {
			return err
		}
		if err := putV(int64(tp.peerOff)); err != nil {
			return err
		}
		if err := putV(int64(tp.tag)); err != nil {
			return err
		}
		if err := putUv(uint64(tp.size)); err != nil {
			return err
		}
	}

	// Per-process streams.
	for p, evs := range per {
		if err := putUv(uint64(len(evs))); err != nil {
			return err
		}
		// Template ids with tandem-repeat RLE.
		ids := make([]uint64, len(evs))
		for i := range evs {
			ids[i] = dict[templateOf(&evs[i])]
		}
		if err := rleEncode(ids, opts.MaxBlock, putUv); err != nil {
			return err
		}
		// Times: gap since previous exit, service time, plus the
		// compute-before correction when it differs from the gap.
		var prevExit vtime.Time
		for i := range evs {
			e := &evs[i]
			gap := int64(e.Enter - prevExit)
			if err := putV(gap); err != nil {
				return err
			}
			if err := putUv(uint64(e.Exit - e.Enter)); err != nil {
				return err
			}
			corr := int64(e.ComputeBefore) - gap
			if err := putV(corr); err != nil {
				return err
			}
			prevExit = e.Exit
		}
		// Relations: delta against expectation. For sends the expected
		// RelA is the process itself and RelB counts up; receives and
		// collectives store raw varints (they are small counters).
		var sendSeq int64
		for i := range evs {
			e := &evs[i]
			if e.Kind == Send {
				if err := putV(e.RelA - int64(p)); err != nil {
					return err
				}
				if err := putV(e.RelB - sendSeq); err != nil {
					return err
				}
				sendSeq++
			} else {
				if err := putV(e.RelA); err != nil {
					return err
				}
				if err := putV(e.RelB); err != nil {
					return err
				}
			}
		}
		// Logical times (usually all NoLT in fresh traces).
		allNo := true
		for i := range evs {
			if evs[i].LT != NoLT {
				allNo = false
				break
			}
		}
		flag := uint64(0)
		if allNo {
			flag = 1
		}
		if err := putUv(flag); err != nil {
			return err
		}
		if !allNo {
			for i := range evs {
				if err := putV(evs[i].LT); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// rleEncode emits the id sequence as tokens: either (0, id) for a
// literal or (blockLen, count) pairs for a tandem repeat of the
// preceding blockLen ids.
func rleEncode(ids []uint64, maxBlock int, putUv func(uint64) error) error {
	i := 0
	for i < len(ids) {
		// Find the best tandem repeat of a block ending at i.
		bestLen, bestCount := 0, 0
		for bl := 1; bl <= maxBlock && bl <= i; bl++ {
			count := 0
			for i+(count+1)*bl <= len(ids) && equalBlocks(ids, i-bl, i+count*bl, bl) {
				count++
			}
			if count > 0 && count*bl > bestCount*bestLen {
				bestLen, bestCount = bl, count
			}
		}
		if bestCount*bestLen >= 3 { // worth a token
			if err := putUv(uint64(bestLen)); err != nil {
				return err
			}
			if err := putUv(uint64(bestCount)); err != nil {
				return err
			}
			i += bestLen * bestCount
			continue
		}
		if err := putUv(0); err != nil {
			return err
		}
		if err := putUv(ids[i]); err != nil {
			return err
		}
		i++
	}
	return nil
}

func equalBlocks(ids []uint64, a, b, n int) bool {
	for k := 0; k < n; k++ {
		if ids[a+k] != ids[b+k] {
			return false
		}
	}
	return true
}

// Decompress reads the compressed tracefile format.
func Decompress(r io.Reader) (*Trace, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magicZ {
		return nil, fmt.Errorf("trace: bad compressed magic %q", m[:])
	}
	getUv := func() (uint64, error) { return binary.ReadUvarint(br) }
	getV := func() (int64, error) { return binary.ReadVarint(br) }

	nameLen, err := getUv()
	if err != nil {
		return nil, err
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("trace: implausible name length")
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	procsU, err := getUv()
	if err != nil {
		return nil, err
	}
	procs := int(procsU)
	if procs <= 0 || procs > 1<<20 {
		return nil, fmt.Errorf("trace: implausible process count %d", procs)
	}
	aetU, err := getUv()
	if err != nil {
		return nil, err
	}

	nTemplates, err := getUv()
	if err != nil {
		return nil, err
	}
	if nTemplates > 1<<24 {
		return nil, fmt.Errorf("trace: implausible template count")
	}
	templates := make([]template, nTemplates)
	for i := range templates {
		k, err := getUv()
		if err != nil {
			return nil, err
		}
		inv, err := getV()
		if err != nil {
			return nil, err
		}
		co, err := getV()
		if err != nil {
			return nil, err
		}
		po, err := getV()
		if err != nil {
			return nil, err
		}
		tg, err := getV()
		if err != nil {
			return nil, err
		}
		sz, err := getUv()
		if err != nil {
			return nil, err
		}
		templates[i] = template{kind: Kind(k), involved: int32(inv), collOp: int8(co),
			peerOff: int32(po), tag: int32(tg), size: int64(sz)}
	}

	streams := make([][]Event, procs)
	for p := 0; p < procs; p++ {
		count, err := getUv()
		if err != nil {
			return nil, err
		}
		if count > 1<<32 {
			return nil, fmt.Errorf("trace: implausible event count")
		}
		ids, err := rleDecode(int(count), getUv)
		if err != nil {
			return nil, err
		}
		evs := make([]Event, count)
		for i := range evs {
			if ids[i] >= uint64(len(templates)) {
				return nil, fmt.Errorf("trace: template id out of range")
			}
			tp := templates[ids[i]]
			peer := int32(-1)
			if tp.peerOff != peerNone {
				peer = int32(p) + tp.peerOff
			}
			evs[i] = Event{
				Process: int32(p), Number: int64(i),
				Kind: tp.kind, Involved: tp.involved, CollOp: tp.collOp,
				Peer: peer, Tag: tp.tag, Size: tp.size, LT: NoLT,
			}
		}
		var prevExit vtime.Time
		for i := range evs {
			gap, err := getV()
			if err != nil {
				return nil, err
			}
			service, err := getUv()
			if err != nil {
				return nil, err
			}
			corr, err := getV()
			if err != nil {
				return nil, err
			}
			evs[i].Enter = prevExit.Add(vtime.Duration(gap))
			evs[i].Exit = evs[i].Enter.Add(vtime.Duration(service))
			evs[i].ComputeBefore = vtime.Duration(gap + corr)
			prevExit = evs[i].Exit
		}
		var sendSeq int64
		for i := range evs {
			ra, err := getV()
			if err != nil {
				return nil, err
			}
			rb, err := getV()
			if err != nil {
				return nil, err
			}
			if evs[i].Kind == Send {
				evs[i].RelA = ra + int64(p)
				evs[i].RelB = rb + sendSeq
				sendSeq++
			} else {
				evs[i].RelA = ra
				evs[i].RelB = rb
			}
		}
		flag, err := getUv()
		if err != nil {
			return nil, err
		}
		if flag == 0 {
			for i := range evs {
				lt, err := getV()
				if err != nil {
					return nil, err
				}
				evs[i].LT = lt
			}
		}
		streams[p] = evs
	}
	return NewTrace(string(name), procs, streams, vtime.Duration(aetU))
}

// rleDecode expands the token stream back into count ids.
func rleDecode(count int, getUv func() (uint64, error)) ([]uint64, error) {
	ids := make([]uint64, 0, count)
	for len(ids) < count {
		tok, err := getUv()
		if err != nil {
			return nil, err
		}
		if tok == 0 {
			id, err := getUv()
			if err != nil {
				return nil, err
			}
			ids = append(ids, id)
			continue
		}
		bl := int(tok)
		repU, err := getUv()
		if err != nil {
			return nil, err
		}
		rep := int(repU)
		if bl > len(ids) || rep <= 0 || len(ids)+bl*rep > count {
			return nil, fmt.Errorf("trace: corrupt repeat token (block %d x %d at %d/%d)", bl, rep, len(ids), count)
		}
		start := len(ids) - bl
		for r := 0; r < rep; r++ {
			ids = append(ids, ids[start:start+bl]...)
		}
	}
	return ids, nil
}

// DecodeAny sniffs the tracefile format (flat binary, compressed, or
// JSON) and decodes accordingly.
func DecodeAny(r io.Reader) (*Trace, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head, err := br.Peek(8)
	if err != nil {
		return nil, fmt.Errorf("trace: sniffing format: %w", err)
	}
	switch {
	case bytes.Equal(head, magic[:]), bytes.Equal(head, magicV2[:]):
		return Decode(br)
	case bytes.Equal(head, magicZ[:]):
		return Decompress(br)
	case head[0] == '{':
		return DecodeJSON(br)
	default:
		return nil, fmt.Errorf("trace: unrecognised tracefile format (magic %q)", head)
	}
}
