package trace

// The parallel block engine behind the v2 tracefile codec, plus the
// streaming block API.
//
// The v2 layout (see codec.go) already splits the event stream into
// independent fixed-size record blocks, each carrying its own CRC32C:
// records are exactly recordSize bytes, so every block's byte extent
// is computable up front and blocks can be serialised, checksummed and
// deserialised on a worker pool with bit-identical output — the same
// move the fingerprint-indexed phase matcher made for extraction. Only
// two things stay serial: the byte stream itself (blocks are written
// and read in file order) and the whole-file CRC, which is a single
// hardware-accelerated crc32.Update per ~45 KiB block and nowhere near
// the bottleneck (per-record serialisation is).
//
// Three entry layers share the machinery:
//
//   - Encode/Decode (codec.go) delegate here with CodecOptions{}, so
//     every existing caller gets the parallel engine and its pooled
//     scratch buffers without signature changes;
//   - EncodeWith/DecodeWith expose the Workers knob and an optional
//     obs.Registry for the codec.* counters;
//   - BlockWriter/BlockReader/VerifyStream stream traces block by
//     block, so consumers (analyze, repo fsck) can verify or fold over
//     a tracefile without materialising the whole []Event twice.
//
// Corruption reporting is bit-compatible with the serial codec: the
// engine reads block bytes in file order and resolves errors to the
// lowest-offset failure, so a corrupted or truncated file produces the
// exact error string at every parallelism level (the determinism
// property tests pin this).

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pas2p/internal/obs"
	"pas2p/internal/vtime"
)

// blockBytes is the byte extent of a full block's records (the block's
// on-disk size is blockBytes+4 for the trailing CRC).
const blockBytes = blockEvents * recordSize

// maxBatchBlocks bounds how many blocks a parallel Decode reads ahead
// of the deserialising workers, capping in-flight scratch memory at
// maxBatchBlocks * (blockBytes+4) ≈ 5.6 MiB.
const maxBatchBlocks = 128

// Meta is a tracefile's header: everything about the trace except the
// events themselves. The streaming readers surface it before any event
// is materialised.
type Meta struct {
	AppName string
	Procs   int
	Events  uint64
	AET     vtime.Duration
}

// CodecOptions tunes the block engine. The zero value is what Encode
// and Decode use: automatic worker count, no metrics.
type CodecOptions struct {
	// Workers is the block worker count: 0 (or negative) selects
	// GOMAXPROCS, 1 forces the serial path. Output bytes, decoded
	// traces and corruption errors are identical at every setting.
	Workers int
	// Reg, when non-nil, receives codec.* counters (blocks, bytes,
	// wall ns, CRC ns) and worker-utilization gauges.
	Reg *obs.Registry
}

// workerCount resolves the Workers knob against the host.
func (o CodecOptions) workerCount() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// codecMetrics accumulates one operation's counters locally (atomics,
// touched by workers) and publishes them on completion. A nil
// *codecMetrics is the "not measuring" value and costs nothing.
type codecMetrics struct {
	reg     *obs.Registry
	op      string // "encode" or "decode"
	workers int
	start   time.Time
	blocks  atomic.Int64
	bytes   atomic.Int64
	crcNS   atomic.Int64
	busyNS  atomic.Int64
}

func newCodecMetrics(reg *obs.Registry, op string, workers int) *codecMetrics {
	if reg == nil {
		return nil
	}
	return &codecMetrics{reg: reg, op: op, workers: workers, start: time.Now()}
}

// block records one processed block's size, and the CRC time when t0
// was taken (callers skip the clock entirely on the nil path).
func (m *codecMetrics) block(n int, crcStart time.Time) {
	if m == nil {
		return
	}
	m.blocks.Add(1)
	m.bytes.Add(int64(n))
	m.crcNS.Add(time.Since(crcStart).Nanoseconds())
}

// publish flushes the counters into the registry.
func (m *codecMetrics) publish() {
	if m == nil {
		return
	}
	wall := time.Since(m.start).Nanoseconds()
	p := "codec." + m.op
	m.reg.Counter(p + ".blocks").Add(m.blocks.Load())
	m.reg.Counter(p + ".bytes").Add(m.bytes.Load())
	m.reg.Counter(p + ".crc_ns").Add(m.crcNS.Load())
	m.reg.Counter(p + ".wall_ns").Add(wall)
	m.reg.Gauge(p + ".workers").Set(float64(m.workers))
	if m.workers > 1 && wall > 0 {
		m.reg.Gauge(p + ".worker_util").Set(float64(m.busyNS.Load()) / float64(wall*int64(m.workers)))
	}
}

// encodeBlock serialises events into b (records followed by the block
// CRC) and returns the filled prefix. b must have cap >=
// len(events)*recordSize+4.
func encodeBlock(b []byte, events []Event, m *codecMetrics) []byte {
	n := len(events) * recordSize
	b = b[:n+4]
	for i := range events {
		putRecord(b[i*recordSize:], &events[i])
	}
	var t0 time.Time
	if m != nil {
		t0 = time.Now()
	}
	crc := crc32.Update(0, crcTable, b[:n])
	binary.LittleEndian.PutUint32(b[n:], crc)
	m.block(n+4, t0)
	return b
}

// encJob carries one block through the encode pool. The job owns its
// scratch buffer for life, so a recycled job allocates nothing.
type encJob struct {
	events []Event
	buf    []byte
	ready  chan struct{} // signalled (cap 1) when buf is filled
}

var encJobPool = sync.Pool{New: func() any {
	return &encJob{buf: make([]byte, 0, blockBytes+4), ready: make(chan struct{}, 1)}
}}

// encEngine is the ordered worker pool behind a parallel BlockWriter:
// blocks enter in file order, workers serialise and CRC them
// concurrently, and a single writer goroutine drains them back in file
// order so the byte stream (and the serially accumulated whole-file
// CRC) is identical to the serial path's.
type encEngine struct {
	jobs    chan *encJob // workers consume
	order   chan *encJob // writer drains, in submission order
	done    chan struct{}
	writeMu sync.Mutex // guards err across writer goroutine and finish
	err     error
	cw      *crcWriter
	m       *codecMetrics
}

func newEncEngine(cw *crcWriter, workers int, m *codecMetrics) *encEngine {
	inflight := workers * 4
	e := &encEngine{
		jobs:  make(chan *encJob, inflight),
		order: make(chan *encJob, inflight),
		done:  make(chan struct{}),
		cw:    cw,
		m:     m,
	}
	for w := 0; w < workers; w++ {
		go e.worker()
	}
	go e.writer()
	return e
}

func (e *encEngine) worker() {
	var busy time.Duration
	for j := range e.jobs {
		var t0 time.Time
		if e.m != nil {
			t0 = time.Now()
		}
		j.buf = encodeBlock(j.buf[:0], j.events, e.m)
		if e.m != nil {
			busy += time.Since(t0)
		}
		j.ready <- struct{}{}
	}
	if e.m != nil {
		e.m.busyNS.Add(busy.Nanoseconds())
	}
}

func (e *encEngine) writer() {
	for j := range e.order {
		<-j.ready
		if e.err == nil {
			if err := e.cw.write(j.buf); err != nil {
				e.writeMu.Lock()
				e.err = err
				e.writeMu.Unlock()
			}
		}
		j.events = nil
		encJobPool.Put(j)
	}
	close(e.done)
}

// submit enqueues one block. The events slice is retained until the
// block is written, so callers must not mutate it before finish.
func (e *encEngine) submit(events []Event) {
	j := encJobPool.Get().(*encJob)
	j.events = events
	e.order <- j // before jobs: the order channel's backpressure bounds in-flight memory
	e.jobs <- j
}

// finish closes the pool, waits for the writer to drain, and returns
// the first write error.
func (e *encEngine) finish() error {
	close(e.jobs)
	close(e.order)
	<-e.done
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	return e.err
}

// BlockWriter streams a tracefile out block by block in the exact v2
// byte format. The header (including the event count) is written up
// front, so the total event count must be declared in Meta; Close
// fails if the appended events do not match it. With Workers > 1 the
// blocks are serialised and checksummed on a worker pool.
type BlockWriter struct {
	cw      *crcWriter
	meta    Meta
	m       *codecMetrics
	eng     *encEngine // nil on the serial path
	scratch []byte     // serial path's block buffer
	pend    []Event    // partial trailing block
	written uint64
	closed  bool
}

// NewBlockWriter writes the v2 prefix (magic, header, app name, header
// CRC) and returns a writer for the event blocks.
func NewBlockWriter(w io.Writer, meta Meta, opts CodecOptions) (*BlockWriter, error) {
	if len(meta.AppName) > 0xffff {
		return nil, fmt.Errorf("trace: app name too long")
	}
	workers := opts.workerCount()
	if meta.Events < 4*blockEvents {
		workers = 1 // pool spin-up costs more than a few blocks
	}
	m := newCodecMetrics(opts.Reg, "encode", workers)
	cw := &crcWriter{w: bufio.NewWriterSize(w, 1<<16)}
	if err := cw.write(magicV2[:]); err != nil {
		return nil, err
	}
	var hdr [24]byte
	binary.LittleEndian.PutUint16(hdr[0:], uint16(len(meta.AppName)))
	binary.LittleEndian.PutUint16(hdr[2:], 0) // reserved
	binary.LittleEndian.PutUint32(hdr[4:], uint32(meta.Procs))
	binary.LittleEndian.PutUint64(hdr[8:], meta.Events)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(meta.AET))
	if err := cw.write(hdr[:]); err != nil {
		return nil, err
	}
	if err := cw.write([]byte(meta.AppName)); err != nil {
		return nil, err
	}
	hcrc := crc32.Update(0, crcTable, magicV2[:])
	hcrc = crc32.Update(hcrc, crcTable, hdr[:])
	hcrc = crc32.Update(hcrc, crcTable, []byte(meta.AppName))
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], hcrc)
	if err := cw.write(u32[:]); err != nil {
		return nil, err
	}
	bw := &BlockWriter{cw: cw, meta: meta, m: m}
	if workers > 1 {
		bw.eng = newEncEngine(cw, workers, m)
	} else {
		bw.scratch = make([]byte, 0, blockBytes+4)
	}
	return bw, nil
}

// emit writes one complete block (the trace's final block may be
// short). With a pool engine the slice is retained until Close.
func (bw *BlockWriter) emit(events []Event) error {
	if bw.eng != nil {
		bw.eng.submit(events)
		return nil
	}
	bw.scratch = encodeBlock(bw.scratch[:0], events, bw.m)
	return bw.cw.write(bw.scratch)
}

// Append adds events to the stream. Full blocks are emitted (and, in
// parallel mode, may alias the argument until Close returns); the
// remainder is buffered for the next Append or Close.
func (bw *BlockWriter) Append(events []Event) error {
	bw.written += uint64(len(events))
	if bw.written > bw.meta.Events {
		return fmt.Errorf("trace: block writer: %d events appended, header declared %d", bw.written, bw.meta.Events)
	}
	if len(bw.pend) > 0 {
		take := blockEvents - len(bw.pend)
		if take > len(events) {
			take = len(events)
		}
		bw.pend = append(bw.pend, events[:take]...)
		events = events[take:]
		if len(bw.pend) < blockEvents {
			return nil
		}
		if err := bw.emit(bw.pend); err != nil {
			return err
		}
		bw.pend = make([]Event, 0, blockEvents) // previous block may still be in flight
	}
	for len(events) >= blockEvents {
		if err := bw.emit(events[:blockEvents]); err != nil {
			return err
		}
		events = events[blockEvents:]
	}
	if len(events) > 0 {
		if bw.pend == nil {
			bw.pend = make([]Event, 0, blockEvents)
		}
		bw.pend = append(bw.pend, events...)
	}
	return nil
}

// Close flushes the trailing partial block, the trailer and the
// whole-file CRC. It fails if fewer events were appended than the
// header declared.
func (bw *BlockWriter) Close() error {
	if bw.closed {
		return nil
	}
	bw.closed = true
	var err error
	if bw.written != bw.meta.Events {
		err = fmt.Errorf("trace: block writer: %d events appended, header declared %d", bw.written, bw.meta.Events)
	}
	if err == nil && len(bw.pend) > 0 {
		err = bw.emit(bw.pend)
		bw.pend = nil
	}
	if bw.eng != nil {
		if ferr := bw.eng.finish(); err == nil {
			err = ferr
		}
		bw.eng = nil
	}
	if err != nil {
		return err
	}
	if err := bw.cw.write(trailer[:]); err != nil {
		return err
	}
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], bw.cw.crc)
	if err := bw.cw.write(u32[:]); err != nil {
		return err
	}
	if err := bw.cw.w.Flush(); err != nil {
		return err
	}
	bw.m.publish()
	return nil
}

// EncodeWith writes the current (v2, checksummed) binary tracefile
// format through the block engine with explicit options. The output is
// byte-identical at every worker count.
func EncodeWith(w io.Writer, t *Trace, opts CodecOptions) error {
	bw, err := NewBlockWriter(w, Meta{
		AppName: t.AppName, Procs: t.Procs,
		Events: uint64(len(t.Events)), AET: t.AET,
	}, opts)
	if err != nil {
		return err
	}
	if err := bw.Append(t.Events); err != nil {
		return err
	}
	return bw.Close()
}

// ---------------------------------------------------------------------
// Decode side.

// blockExtent describes one block's position in the file and the event
// index range it covers.
type blockExtent struct {
	start, end uint64 // event indices [start, end)
	off        int64  // byte offset of the block's first record
}

// readBlock reads one block's bytes (records + CRC) into buf through
// the offset/CRC-tracking reader, reproducing the serial codec's
// truncation errors: the failing unit (a specific record, or the block
// checksum) and the byte offset are recovered from the partial length.
func readBlock(cr *crcReader, buf []byte, ext blockExtent, total uint64) error {
	err := cr.readFull(buf)
	if err == nil {
		return nil
	}
	n := cr.off - ext.off // bytes of this block actually consumed
	recBytes := int64(ext.end-ext.start) * recordSize
	unitPartial := n % recordSize
	failing := ext.start + uint64(n)/uint64(recordSize)
	if n >= recBytes {
		unitPartial = n - recBytes
	}
	// io.ReadFull reported on the whole chunk; re-map EOF flavours to
	// the failing unit the serial record-at-a-time reader would have
	// seen. Non-EOF reader errors pass through untouched.
	if err == io.ErrUnexpectedEOF || err == io.EOF {
		if unitPartial == 0 {
			err = io.EOF
		} else {
			err = io.ErrUnexpectedEOF
		}
	}
	if n >= recBytes {
		return corruptf(cr.off, "reading block checksum: %v", err)
	}
	return corruptf(cr.off, "reading event %d of %d: %v", failing, total, err)
}

// verifyAndDecodeBlock checks the block CRC and, unless verifyOnly,
// deserialises the records into dst (dst[i] receives record i).
func verifyAndDecodeBlock(buf []byte, ext blockExtent, dst []Event, verifyOnly bool, m *codecMetrics) error {
	recBytes := int(ext.end-ext.start) * recordSize
	var t0 time.Time
	if m != nil {
		t0 = time.Now()
	}
	bcrc := crc32.Update(0, crcTable, buf[:recBytes])
	m.block(recBytes+4, t0)
	if got := binary.LittleEndian.Uint32(buf[recBytes:]); got != bcrc {
		return corruptf(ext.off,
			"event block %d-%d checksum mismatch (stored %08x, computed %08x)",
			ext.start, ext.end-1, got, bcrc)
	}
	if !verifyOnly {
		for i := 0; i < int(ext.end-ext.start); i++ {
			getRecord(buf[i*recordSize:], &dst[i])
		}
	}
	return nil
}

// decJob carries one read block to the deserialising workers. Like
// encJob, the job owns its buffer.
type decJob struct {
	buf []byte
	ext blockExtent
	dst []Event
	wg  *sync.WaitGroup
}

var decJobPool = sync.Pool{New: func() any {
	return &decJob{buf: make([]byte, 0, blockBytes+4)}
}}

// decEngine fans block verification + deserialisation out. Destination
// regions are disjoint slices of the final events array, so workers
// never contend; errors are resolved to the lowest block start, which
// is exactly the error the serial path reports first.
type decEngine struct {
	jobs chan *decJob
	m    *codecMetrics

	errMu    sync.Mutex
	errStart uint64
	err      error
}

func newDecEngine(workers int, m *codecMetrics) *decEngine {
	e := &decEngine{jobs: make(chan *decJob, maxBatchBlocks), m: m}
	for w := 0; w < workers; w++ {
		go e.worker()
	}
	return e
}

func (e *decEngine) worker() {
	var busy time.Duration
	for j := range e.jobs {
		var t0 time.Time
		if e.m != nil {
			t0 = time.Now()
		}
		if err := verifyAndDecodeBlock(j.buf, j.ext, j.dst, false, e.m); err != nil {
			e.record(j.ext.start, err)
		}
		if e.m != nil {
			busy += time.Since(t0)
		}
		j.wg.Done()
		j.dst = nil
		decJobPool.Put(j)
	}
	if e.m != nil {
		e.m.busyNS.Add(busy.Nanoseconds())
	}
}

// record keeps the error of the lowest-starting failed block.
func (e *decEngine) record(start uint64, err error) {
	e.errMu.Lock()
	if e.err == nil || start < e.errStart {
		e.err, e.errStart = err, start
	}
	e.errMu.Unlock()
}

// firstError returns the winning error and its block-start index.
func (e *decEngine) firstError() (uint64, error) {
	e.errMu.Lock()
	defer e.errMu.Unlock()
	return e.errStart, e.err
}

// decodeV2With reads the checksummed body (magic already consumed and
// folded into cr.crc) through the block engine.
func decodeV2With(cr *crcReader, opts CodecOptions) (*Trace, error) {
	nameLen, procs, count, aet, hdr, err := readHeader(cr)
	if err != nil {
		return nil, err
	}
	name := make([]byte, nameLen)
	if err := cr.readFull(name); err != nil {
		return nil, corruptf(cr.off, "reading app name: %v", err)
	}
	wantH := crc32.Update(0, crcTable, magicV2[:])
	wantH = crc32.Update(wantH, crcTable, hdr[:])
	wantH = crc32.Update(wantH, crcTable, name)
	var u32 [4]byte
	if err := cr.readFull(u32[:]); err != nil {
		return nil, corruptf(cr.off, "reading header checksum: %v", err)
	}
	if got := binary.LittleEndian.Uint32(u32[:]); got != wantH {
		return nil, corruptf(cr.off, "header checksum mismatch (stored %08x, computed %08x)", got, wantH)
	}

	workers := opts.workerCount()
	if count < 4*blockEvents {
		workers = 1
	}
	m := newCodecMetrics(opts.Reg, "decode", workers)
	t := &Trace{AppName: string(name), Procs: procs, AET: aet, Events: make([]Event, 0)}

	var eng *decEngine
	if workers > 1 {
		eng = newDecEngine(workers, m)
		defer close(eng.jobs)
	}
	serialBuf := []byte(nil)
	if eng == nil && count > 0 {
		serialBuf = make([]byte, 0, blockBytes+4)
	}

	// Blocks are consumed in batches: bytes are read serially in file
	// order (accumulating the whole-file CRC and error offsets), then
	// verified and deserialised concurrently into disjoint regions of
	// the events slice. The first batch is a single block, so the
	// header-declared count starts funding larger reservations only
	// after one checksum has actually verified; before that, growth is
	// bounded exactly as for a malicious header.
	trusted := false
	var wg sync.WaitGroup
	for next := uint64(0); next < count; {
		batch := count - next
		if !trusted && batch > blockEvents {
			batch = blockEvents
		}
		if batch > maxBatchBlocks*blockEvents {
			batch = maxBatchBlocks * blockEvents
		}
		for uint64(cap(t.Events)) < next+batch {
			t.Events = growEvents(t.Events, count, trusted)
		}
		t.Events = t.Events[:next+batch]

		var readErr error
		readErrStart := uint64(0)
		for bs := next; bs < next+batch; bs += blockEvents {
			be := bs + blockEvents
			if be > next+batch {
				be = next + batch
			}
			ext := blockExtent{start: bs, end: be, off: cr.off}
			n := int(be-bs)*recordSize + 4
			if eng != nil {
				j := decJobPool.Get().(*decJob)
				if cap(j.buf) < n {
					j.buf = make([]byte, 0, blockBytes+4)
				}
				j.buf = j.buf[:n]
				if err := readBlock(cr, j.buf, ext, count); err != nil {
					decJobPool.Put(j)
					readErr, readErrStart = err, bs
					break
				}
				j.ext, j.dst, j.wg = ext, t.Events[bs:be], &wg
				wg.Add(1)
				eng.jobs <- j
				continue
			}
			serialBuf = serialBuf[:n]
			if err := readBlock(cr, serialBuf, ext, count); err != nil {
				readErr, readErrStart = err, bs
				break
			}
			if err := verifyAndDecodeBlock(serialBuf, ext, t.Events[bs:be], false, m); err != nil {
				readErr, readErrStart = err, bs
				break
			}
		}
		if eng != nil {
			wg.Wait()
			if start, err := eng.firstError(); err != nil && (readErr == nil || start < readErrStart) {
				return nil, err
			}
		}
		if readErr != nil {
			return nil, readErr
		}
		trusted = true
		next += batch
	}

	var tm [8]byte
	if err := cr.readFull(tm[:]); err != nil {
		return nil, corruptf(cr.off, "reading trailer: %v", err)
	}
	if tm != trailer {
		return nil, corruptf(cr.off-8, "bad trailer %q", tm[:])
	}
	wantF := cr.crc
	if err := cr.readFull(u32[:]); err != nil {
		return nil, corruptf(cr.off, "reading file checksum: %v", err)
	}
	if got := binary.LittleEndian.Uint32(u32[:]); got != wantF {
		return nil, corruptf(cr.off, "file checksum mismatch (stored %08x, computed %08x)", got, wantF)
	}
	m.publish()
	return t, nil
}

// DecodeWith reads the binary tracefile format (v2 or the legacy v1
// migration path) with explicit options. Results — including every
// corruption error's text and offset — are identical at every worker
// count.
func DecodeWith(r io.Reader, opts CodecOptions) (*Trace, error) {
	cr := &crcReader{br: bufio.NewReaderSize(r, 1<<16)}
	var m [8]byte
	if err := cr.readFull(m[:]); err != nil {
		return nil, corruptf(cr.off, "reading magic: %v", err)
	}
	switch m {
	case magicV2:
		return decodeV2With(cr, opts)
	case magic:
		return decodeV1(cr)
	default:
		return nil, corruptf(0, "bad magic %q", m[:])
	}
}

// ---------------------------------------------------------------------
// Streaming reader.

// BlockReader streams a binary tracefile (v2, or the legacy v1) one
// block at a time: the header is surfaced through Meta before any
// event is materialised, Next yields up to blockEvents events per call
// into a reused scratch slice, and the trailer and whole-file CRC are
// verified before the final io.EOF. Corruption errors carry the same
// text and byte offsets as Decode.
type BlockReader struct {
	cr         *crcReader
	meta       Meta
	v1         bool
	verifyOnly bool
	next       uint64
	buf        []byte
	scratch    []Event
	sc         *brScratch // pooled backing for buf/scratch; nil after Close
	m          *codecMetrics
	finished   bool
	// ra and bodyOff enable RankStreams: the source, when it supports
	// random access, and the byte offset of the first event block.
	ra      io.ReaderAt
	bodyOff int64
}

// brScratch is a BlockReader's pooled working set: the block byte
// buffer and the decoded-event scratch slice. Readers that are Closed
// return it for reuse; readers that are simply dropped leave it to the
// GC (Get without Put is safe).
type brScratch struct {
	buf []byte
	evs []Event
}

var brScratchPool = sync.Pool{New: func() any {
	return &brScratch{buf: make([]byte, 0, blockBytes+4)}
}}

// NewBlockReader reads the tracefile prefix (magic, header, name and,
// for v2, the header checksum) and positions the stream at the first
// block.
func NewBlockReader(r io.Reader) (*BlockReader, error) {
	return NewBlockReaderWith(r, CodecOptions{})
}

// NewBlockReaderWith is NewBlockReader with codec options (only Reg is
// consulted: streaming reads are sequential by nature, so the Workers
// knob does not apply).
func NewBlockReaderWith(r io.Reader, opts CodecOptions) (*BlockReader, error) {
	cr := &crcReader{br: bufio.NewReaderSize(r, 1<<16)}
	var mg [8]byte
	if err := cr.readFull(mg[:]); err != nil {
		return nil, corruptf(cr.off, "reading magic: %v", err)
	}
	v1 := false
	switch mg {
	case magicV2:
	case magic:
		v1 = true
	default:
		return nil, corruptf(0, "bad magic %q", mg[:])
	}
	nameLen, procs, count, aet, hdr, err := readHeader(cr)
	if err != nil {
		return nil, err
	}
	name := make([]byte, nameLen)
	if err := cr.readFull(name); err != nil {
		return nil, corruptf(cr.off, "reading app name: %v", err)
	}
	if !v1 {
		wantH := crc32.Update(0, crcTable, magicV2[:])
		wantH = crc32.Update(wantH, crcTable, hdr[:])
		wantH = crc32.Update(wantH, crcTable, name)
		var u32 [4]byte
		if err := cr.readFull(u32[:]); err != nil {
			return nil, corruptf(cr.off, "reading header checksum: %v", err)
		}
		if got := binary.LittleEndian.Uint32(u32[:]); got != wantH {
			return nil, corruptf(cr.off, "header checksum mismatch (stored %08x, computed %08x)", got, wantH)
		}
	}
	sc := brScratchPool.Get().(*brScratch)
	ra, _ := r.(io.ReaderAt)
	return &BlockReader{
		cr:      cr,
		meta:    Meta{AppName: string(name), Procs: procs, Events: count, AET: aet},
		v1:      v1,
		sc:      sc,
		buf:     sc.buf[:0],
		scratch: sc.evs,
		m:       newCodecMetrics(opts.Reg, "decode", 1),
		ra:      ra,
		bodyOff: cr.off,
	}, nil
}

// Close releases the reader's pooled buffers and marks the stream
// finished: subsequent Next calls return io.EOF without reading.
// Event slices previously returned by Next must not be used after
// Close. Close is idempotent, never fails, and does not close the
// underlying reader (the caller owns it). Readers that are read to
// io.EOF and then dropped without Close are also fine — their buffers
// simply fall to the GC instead of the pool.
func (br *BlockReader) Close() error {
	if br.sc != nil {
		br.sc.buf = br.buf[:0]
		br.sc.evs = br.scratch
		brScratchPool.Put(br.sc)
		br.sc = nil
	}
	br.buf = nil
	br.scratch = nil
	br.finished = true
	return nil
}

// Meta returns the tracefile's header.
func (br *BlockReader) Meta() Meta { return br.meta }

// Next returns the next block of events (up to blockEvents of them),
// verifying the block checksum on the way. The returned slice is
// scratch reused by the following Next call. After the last block the
// trailer and whole-file checksum are verified and io.EOF is returned.
func (br *BlockReader) Next() ([]Event, error) {
	if br.finished {
		return nil, io.EOF
	}
	if br.next >= br.meta.Events {
		br.finished = true
		if !br.v1 {
			if err := br.finishV2(); err != nil {
				return nil, err
			}
		}
		br.m.publish()
		return nil, io.EOF
	}
	start := br.next
	end := start + blockEvents
	if end > br.meta.Events {
		end = br.meta.Events
	}
	ext := blockExtent{start: start, end: end, off: br.cr.off}
	n := int(end-start) * recordSize
	if !br.v1 {
		n += 4
	}
	br.buf = br.buf[:n]
	if !br.v1 {
		if err := readBlock(br.cr, br.buf, ext, br.meta.Events); err != nil {
			br.finished = true
			return nil, err
		}
	} else if err := br.cr.readFull(br.buf); err != nil {
		// v1 has no block checksum; report the failing record exactly
		// as decodeV1 does.
		br.finished = true
		consumed := br.cr.off - ext.off
		failing := start + uint64(consumed)/uint64(recordSize)
		if consumed%recordSize == 0 && (err == io.ErrUnexpectedEOF || err == io.EOF) {
			err = io.EOF
		} else if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, corruptf(br.cr.off, "reading event %d of %d: %v", failing, br.meta.Events, err)
	}
	var dst []Event
	if !br.verifyOnly {
		if br.scratch == nil {
			br.scratch = make([]Event, blockEvents)
		}
		dst = br.scratch[:end-start]
	}
	if br.v1 {
		if !br.verifyOnly {
			for i := range dst {
				getRecord(br.buf[i*recordSize:], &dst[i])
			}
		}
	} else if err := verifyAndDecodeBlock(br.buf, ext, dst, br.verifyOnly, br.m); err != nil {
		br.finished = true
		return nil, err
	}
	br.next = end
	return dst, nil
}

// finishV2 consumes and verifies the trailer and whole-file CRC.
func (br *BlockReader) finishV2() error {
	var tm [8]byte
	if err := br.cr.readFull(tm[:]); err != nil {
		return corruptf(br.cr.off, "reading trailer: %v", err)
	}
	if tm != trailer {
		return corruptf(br.cr.off-8, "bad trailer %q", tm[:])
	}
	wantF := br.cr.crc
	var u32 [4]byte
	if err := br.cr.readFull(u32[:]); err != nil {
		return corruptf(br.cr.off, "reading file checksum: %v", err)
	}
	if got := binary.LittleEndian.Uint32(u32[:]); got != wantF {
		return corruptf(br.cr.off, "file checksum mismatch (stored %08x, computed %08x)", got, wantF)
	}
	return nil
}

// VerifyStream reads a binary tracefile to the end, verifying every
// checksum (header, per-block, whole-file) without materialising a
// single event, and returns the header metadata. This is what `repo
// fsck` runs over stored tracefiles: detection strength of a full
// Decode at a fraction of the memory and time.
func VerifyStream(r io.Reader) (Meta, error) {
	return VerifyStreamWith(r, CodecOptions{})
}

// VerifyStreamWith is VerifyStream with codec options (Reg only).
func VerifyStreamWith(r io.Reader, opts CodecOptions) (Meta, error) {
	br, err := NewBlockReaderWith(r, opts)
	if err != nil {
		return Meta{}, err
	}
	br.verifyOnly = true
	for {
		if _, err := br.Next(); err == io.EOF {
			return br.meta, nil
		} else if err != nil {
			return br.meta, err
		}
	}
}
