//go:build race

package trace

// raceEnabled reports whether the race detector instruments this test
// binary; allocation-count pins skip under it.
const raceEnabled = true
