package trace

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"testing"

	"pas2p/internal/vtime"
)

func syntheticTrace(events int) *Trace {
	evs := make([]Event, events)
	var tphys vtime.Time
	for i := range evs {
		tphys += 1000
		kind := Send
		if i%2 == 1 {
			kind = Recv
		}
		evs[i] = Event{
			Process: 0, Number: int64(i), Kind: kind, Involved: 2,
			CollOp: -1, Peer: 1, Tag: int32(i % 4), Size: 4096,
			Enter: tphys, Exit: tphys + 500,
			RelA: 0, RelB: int64(i / 2), ComputeBefore: 500,
		}
	}
	tr, err := NewTrace("bench", 1, [][]Event{evs}, vtime.Duration(tphys))
	if err != nil {
		panic(err)
	}
	return tr
}

// BenchmarkEncode measures binary tracefile writing throughput.
func BenchmarkEncode(b *testing.B) {
	tr := syntheticTrace(10000)
	var buf bytes.Buffer
	b.ReportAllocs()
	b.SetBytes(EncodedSize(tr))
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := Encode(&buf, tr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecode measures binary tracefile reading throughput.
func BenchmarkDecode(b *testing.B) {
	tr := syntheticTrace(10000)
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		if _, err := Decode(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompress measures the ScalaTrace-style codec's throughput
// and reports the achieved ratio on a repetitive stream.
func BenchmarkCompress(b *testing.B) {
	streams := make([][]Event, 4)
	for p := 0; p < 4; p++ {
		streams[p] = iterativeStream(p, 2500)
		for i := range streams[p] {
			if streams[p][i].Kind == Recv {
				streams[p][i].RelA = int64(p)
			}
		}
	}
	tr, err := NewTrace("zbench", 4, streams, 1e9)
	if err != nil {
		b.Fatal(err)
	}
	var flat bytes.Buffer
	if err := Encode(&flat, tr); err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	b.ReportAllocs()
	b.SetBytes(int64(flat.Len()))
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := Compress(&buf, tr); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(flat.Len())/float64(buf.Len()), "ratio")
}

// largeBenchTrace lazily builds the shared 1M-event trace (and its
// encoding) the parallel benchmarks measure against. Building it once
// keeps `go test -bench` setup time flat across sub-benchmarks.
var largeBench struct {
	once sync.Once
	tr   *Trace
	enc  []byte
}

func largeBenchTrace(b *testing.B) (*Trace, []byte) {
	b.Helper()
	largeBench.once.Do(func() {
		largeBench.tr = syntheticTrace(1_000_000)
		var buf bytes.Buffer
		if err := Encode(&buf, largeBench.tr); err != nil {
			panic(err)
		}
		largeBench.enc = buf.Bytes()
	})
	return largeBench.tr, largeBench.enc
}

// benchWorkerCounts are the parallelism levels the codec benchmarks
// sweep; the acceptance target is workers=8 >= 2x workers=1 on an
// 8-core host for the 1M-event trace.
var benchWorkerCounts = []int{1, 2, 4, 8}

// BenchmarkEncodeParallel measures block-engine serialisation
// throughput on a 1M-event trace across worker counts. Output bytes
// are identical at every setting, so MB/s is directly comparable.
func BenchmarkEncodeParallel(b *testing.B) {
	tr, _ := largeBenchTrace(b)
	for _, w := range benchWorkerCounts {
		b.Run(fmt.Sprintf("events=1M/workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(EncodedSize(tr))
			for i := 0; i < b.N; i++ {
				if err := EncodeWith(io.Discard, tr, CodecOptions{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDecodeParallel measures block verification +
// deserialisation throughput on the same 1M-event tracefile.
func BenchmarkDecodeParallel(b *testing.B) {
	_, enc := largeBenchTrace(b)
	for _, w := range benchWorkerCounts {
		b.Run(fmt.Sprintf("events=1M/workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(enc)))
			for i := 0; i < b.N; i++ {
				if _, err := DecodeWith(bytes.NewReader(enc), CodecOptions{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkVerifyStream measures the streaming checksum pass `repo
// fsck` runs: full detection strength without materialising events.
func BenchmarkVerifyStream(b *testing.B) {
	_, enc := largeBenchTrace(b)
	b.ReportAllocs()
	b.SetBytes(int64(len(enc)))
	for i := 0; i < b.N; i++ {
		if _, err := VerifyStream(bytes.NewReader(enc)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompressParallel measures the ScalaTrace-style codec across
// worker counts on a wide repetitive trace (per-process sections are
// the parallel unit, so procs bounds the useful worker count).
func BenchmarkCompressParallel(b *testing.B) {
	tr := repetitiveTrace(b, 8, 500)
	var flat bytes.Buffer
	if err := Encode(&flat, tr); err != nil {
		b.Fatal(err)
	}
	for _, w := range benchWorkerCounts {
		b.Run(fmt.Sprintf("procs=8/workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(flat.Len()))
			for i := 0; i < b.N; i++ {
				if err := CompressWith(io.Discard, tr, CompressOptions{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCompressionRatio reports the achieved ratio on the
// 8-process, 500-iteration repetitive trace the compression tests
// assert on, as a benchmark metric rather than a log line — so the
// ratio shows up in `go test -bench` output and can be tracked.
func BenchmarkCompressionRatio(b *testing.B) {
	tr := repetitiveTrace(b, 8, 500)
	var flat bytes.Buffer
	if err := Encode(&flat, tr); err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	b.ReportAllocs()
	b.SetBytes(int64(flat.Len()))
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := Compress(&buf, tr); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(flat.Len())/float64(buf.Len()), "ratio")
	b.ReportMetric(float64(buf.Len()), "compressed_bytes")
}
