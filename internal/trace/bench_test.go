package trace

import (
	"bytes"
	"testing"

	"pas2p/internal/vtime"
)

func syntheticTrace(events int) *Trace {
	evs := make([]Event, events)
	var tphys vtime.Time
	for i := range evs {
		tphys += 1000
		kind := Send
		if i%2 == 1 {
			kind = Recv
		}
		evs[i] = Event{
			Process: 0, Number: int64(i), Kind: kind, Involved: 2,
			CollOp: -1, Peer: 1, Tag: int32(i % 4), Size: 4096,
			Enter: tphys, Exit: tphys + 500,
			RelA: 0, RelB: int64(i / 2), ComputeBefore: 500,
		}
	}
	tr, err := NewTrace("bench", 1, [][]Event{evs}, vtime.Duration(tphys))
	if err != nil {
		panic(err)
	}
	return tr
}

// BenchmarkEncode measures binary tracefile writing throughput.
func BenchmarkEncode(b *testing.B) {
	tr := syntheticTrace(10000)
	var buf bytes.Buffer
	b.ReportAllocs()
	b.SetBytes(EncodedSize(tr))
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := Encode(&buf, tr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecode measures binary tracefile reading throughput.
func BenchmarkDecode(b *testing.B) {
	tr := syntheticTrace(10000)
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		if _, err := Decode(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompress measures the ScalaTrace-style codec's throughput
// and reports the achieved ratio on a repetitive stream.
func BenchmarkCompress(b *testing.B) {
	streams := make([][]Event, 4)
	for p := 0; p < 4; p++ {
		streams[p] = iterativeStream(p, 2500)
		for i := range streams[p] {
			if streams[p][i].Kind == Recv {
				streams[p][i].RelA = int64(p)
			}
		}
	}
	tr, err := NewTrace("zbench", 4, streams, 1e9)
	if err != nil {
		b.Fatal(err)
	}
	var flat bytes.Buffer
	if err := Encode(&flat, tr); err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	b.ReportAllocs()
	b.SetBytes(int64(flat.Len()))
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := Compress(&buf, tr); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(flat.Len())/float64(buf.Len()), "ratio")
}

// BenchmarkCompressionRatio reports the achieved ratio on the
// 8-process, 500-iteration repetitive trace the compression tests
// assert on, as a benchmark metric rather than a log line — so the
// ratio shows up in `go test -bench` output and can be tracked.
func BenchmarkCompressionRatio(b *testing.B) {
	tr := repetitiveTrace(b, 8, 500)
	var flat bytes.Buffer
	if err := Encode(&flat, tr); err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	b.ReportAllocs()
	b.SetBytes(int64(flat.Len()))
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := Compress(&buf, tr); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(flat.Len())/float64(buf.Len()), "ratio")
	b.ReportMetric(float64(buf.Len()), "compressed_bytes")
}
