package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"pas2p/internal/vtime"
)

// buildTestTrace makes a small 2-process trace: p0 sends twice, p1
// receives twice, with interleaved physical times.
func buildTestTrace(t *testing.T) *Trace {
	t.Helper()
	p0 := []Event{
		{Process: 0, Number: 0, Kind: Send, Involved: 2, CollOp: -1, Peer: 1, Tag: 7,
			Size: 100, Enter: 10, Exit: 12, RelA: 0, RelB: 0},
		{Process: 0, Number: 1, Kind: Send, Involved: 2, CollOp: -1, Peer: 1, Tag: 7,
			Size: 200, Enter: 30, Exit: 33, RelA: 0, RelB: 1},
	}
	p1 := []Event{
		{Process: 1, Number: 0, Kind: Recv, Involved: 2, CollOp: -1, Peer: 0, Tag: 7,
			Size: 100, Enter: 5, Exit: 20, RelA: 0, RelB: 0},
		{Process: 1, Number: 1, Kind: Recv, Involved: 2, CollOp: -1, Peer: 0, Tag: 7,
			Size: 200, Enter: 25, Exit: 40, RelA: 0, RelB: 1},
	}
	tr, err := NewTrace("test", 2, [][]Event{p0, p1}, 50)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewTraceAssignsGlobalIDs(t *testing.T) {
	tr := buildTestTrace(t)
	// Global occurrence order by enter time: p1#0 (5), p0#0 (10),
	// p1#1 (25), p0#1 (30).
	per := tr.PerProcess()
	if per[1][0].ID != 0 || per[0][0].ID != 1 || per[1][1].ID != 2 || per[0][1].ID != 3 {
		t.Errorf("IDs: p0=%d,%d p1=%d,%d", per[0][0].ID, per[0][1].ID, per[1][0].ID, per[1][1].ID)
	}
}

func TestNewTraceRejectsBadStreams(t *testing.T) {
	if _, err := NewTrace("x", 2, [][]Event{{}}, 0); err == nil {
		t.Error("stream count mismatch should fail")
	}
	bad := []Event{{Process: 9, Number: 0}}
	if _, err := NewTrace("x", 1, [][]Event{bad}, 0); err == nil {
		t.Error("wrong process id should fail")
	}
	bad2 := []Event{{Process: 0, Number: 5}}
	if _, err := NewTrace("x", 1, [][]Event{bad2}, 0); err == nil {
		t.Error("wrong numbering should fail")
	}
}

func TestValidateCatchesOrphanRecv(t *testing.T) {
	tr := buildTestTrace(t)
	if err := tr.Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	// Point a recv at a send that does not exist.
	for i := range tr.Events {
		if tr.Events[i].Kind == Recv {
			tr.Events[i].RelB = 99
			break
		}
	}
	if err := tr.Validate(); err == nil {
		t.Error("orphan recv should fail validation")
	}
}

func TestTypeCode(t *testing.T) {
	s := Event{Kind: Send, Involved: 2}
	r := Event{Kind: Recv, Involved: 2}
	c := Event{Kind: Collective, Involved: 64}
	if s.TypeCode() != 2 || r.TypeCode() != -2 || c.TypeCode() != 64 {
		t.Errorf("type codes: %d %d %d", s.TypeCode(), r.TypeCode(), c.TypeCode())
	}
}

func TestCommSignature(t *testing.T) {
	// Same pattern shifted across ranks compares equal.
	a := Event{Process: 0, Kind: Send, Peer: 1, Tag: 3, CollOp: -1}
	b := Event{Process: 5, Kind: Send, Peer: 6, Tag: 3, CollOp: -1}
	if a.CommSignature() != b.CommSignature() {
		t.Error("shifted identical pattern should share a signature")
	}
	c := Event{Process: 0, Kind: Recv, Peer: 1, Tag: 3, CollOp: -1}
	if a.CommSignature() == c.CommSignature() {
		t.Error("send and recv must differ")
	}
	d := Event{Process: 0, Kind: Send, Peer: 1, Tag: 4, CollOp: -1}
	if a.CommSignature() == d.CommSignature() {
		t.Error("different tags must differ")
	}
	e := Event{Process: 0, Kind: Collective, Peer: -1, Tag: 0, CollOp: 3}
	f := Event{Process: 1, Kind: Collective, Peer: -1, Tag: 0, CollOp: 4}
	if e.CommSignature() == f.CommSignature() {
		t.Error("different collectives must differ")
	}
}

func TestRecorderDerivesFields(t *testing.T) {
	r := NewRecorder(3)
	r.Record(Event{Kind: Send, Enter: 100, Exit: 120})
	r.Record(Event{Kind: Recv, Enter: 150, Exit: 160})
	evs := r.Events()
	if len(evs) != 2 {
		t.Fatalf("len = %d", len(evs))
	}
	if evs[0].Process != 3 || evs[0].Number != 0 || evs[1].Number != 1 {
		t.Error("process/number not derived")
	}
	if evs[0].ComputeBefore != 100 {
		t.Errorf("first ComputeBefore = %v, want 100", evs[0].ComputeBefore)
	}
	if evs[1].ComputeBefore != 30 {
		t.Errorf("second ComputeBefore = %v, want 30 (150-120)", evs[1].ComputeBefore)
	}
	if evs[0].LT != NoLT {
		t.Error("fresh events must have no logical time")
	}
}

func TestRecorderDisable(t *testing.T) {
	r := NewRecorder(0)
	r.Record(Event{Enter: 10, Exit: 20})
	r.SetEnabled(false)
	r.Record(Event{Enter: 30, Exit: 40})
	r.SetEnabled(true)
	r.Record(Event{Enter: 50, Exit: 60})
	if r.Len() != 2 {
		t.Fatalf("len = %d, want 2", r.Len())
	}
	// Compute baseline must account for the dropped event's exit.
	if got := r.Events()[1].ComputeBefore; got != 10 {
		t.Errorf("ComputeBefore after disabled span = %v, want 10 (50-40)", got)
	}
}

func TestStats(t *testing.T) {
	tr := buildTestTrace(t)
	s := tr.Stats()
	if s.Events != 4 || s.Sends != 2 || s.Recvs != 2 || s.Collectives != 0 {
		t.Errorf("stats = %+v", s)
	}
	if s.Bytes != 300 {
		t.Errorf("bytes = %d, want 300 (send volumes only)", s.Bytes)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := buildTestTrace(t)
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if int64(buf.Len()) != EncodedSize(tr) {
		t.Errorf("EncodedSize = %d, actual %d", EncodedSize(tr), buf.Len())
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, tr)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := buildTestTrace(t)
	var buf bytes.Buffer
	if err := EncodeJSON(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Error("JSON round trip mismatch")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("not a trace at all......."))); err == nil {
		t.Error("garbage should fail to decode")
	}
	if _, err := Decode(bytes.NewReader(nil)); err == nil {
		t.Error("empty input should fail to decode")
	}
	// Truncated: valid header claiming events but no bodies.
	tr := buildTestTrace(t)
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-10]
	if _, err := Decode(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated trace should fail to decode")
	}
}

// Property: binary round trip preserves randomly generated traces.
func TestQuickBinaryRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25}
	err := quick.Check(func(seed int64, nEv uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nEv)%64 + 1
		evs := make([]Event, n)
		var tphys vtime.Time
		for i := range evs {
			tphys += vtime.Time(rng.Intn(1000) + 1)
			evs[i] = Event{
				Process: 0, Number: int64(i),
				Kind:     Kind(rng.Intn(3)),
				Involved: int32(rng.Intn(64) + 2),
				CollOp:   int8(rng.Intn(8)) - 1,
				Peer:     int32(rng.Intn(8)) - 1,
				Tag:      int32(rng.Intn(100)),
				Size:     int64(rng.Intn(1 << 20)),
				Enter:    tphys, Exit: tphys + vtime.Time(rng.Intn(100)),
				LT:   int64(rng.Intn(1000)) - 1,
				RelA: int64(rng.Intn(4)), RelB: int64(rng.Intn(1000)),
				ComputeBefore: vtime.Duration(rng.Intn(10000)),
			}
		}
		tr, err := NewTrace("fuzz", 1, [][]Event{evs}, vtime.Duration(rng.Intn(1e9)))
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := Encode(&buf, tr); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, tr)
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestPerProcessGrouping(t *testing.T) {
	tr := buildTestTrace(t)
	per := tr.PerProcess()
	if len(per) != 2 || len(per[0]) != 2 || len(per[1]) != 2 {
		t.Fatalf("grouping wrong: %d/%d/%d", len(per), len(per[0]), len(per[1]))
	}
	for p, evs := range per {
		for i := range evs {
			if int(evs[i].Process) != p || evs[i].Number != int64(i) {
				t.Errorf("proc %d idx %d holds (%d,%d)", p, i, evs[i].Process, evs[i].Number)
			}
		}
	}
}

func TestKindString(t *testing.T) {
	if Send.String() != "Send" || Recv.String() != "Recv" || Collective.String() != "Coll" {
		t.Error("kind names wrong")
	}
	if Kind(9).String() != "Kind(?)" {
		t.Error("unknown kind should stringify safely")
	}
}
