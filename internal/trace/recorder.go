package trace

import (
	"pas2p/internal/vtime"
)

// Recorder accumulates the event stream of a single process during an
// instrumented run. One Recorder belongs to one rank goroutine, so no
// locking is needed; recorders are combined with NewTrace afterwards.
type Recorder struct {
	proc     int32
	events   []Event
	lastExit vtime.Time
	enabled  bool
}

// NewRecorder creates a recorder for one process.
func NewRecorder(proc int) *Recorder {
	return &Recorder{proc: int32(proc), enabled: true}
}

// SetEnabled toggles recording; a disabled recorder drops events but
// keeps tracking the compute baseline so re-enabling stays coherent.
func (r *Recorder) SetEnabled(on bool) { r.enabled = on }

// Record appends one event, deriving Number and ComputeBefore. The
// caller fills the communication fields and physical times.
func (r *Recorder) Record(e Event) {
	if !r.enabled {
		r.lastExit = e.Exit
		return
	}
	e.Process = r.proc
	e.Number = int64(len(r.events))
	e.LT = NoLT
	e.ComputeBefore = e.Enter.Sub(r.lastExit)
	if e.ComputeBefore < 0 {
		// Overlapping nonblocking operations: project them onto a
		// sequential event stream by clamping to the previous exit.
		e.ComputeBefore = 0
		e.Enter = r.lastExit
		if e.Exit < e.Enter {
			e.Exit = e.Enter
		}
	}
	r.lastExit = e.Exit
	r.events = append(r.events, e)
}

// Events returns the recorded stream (aliased, not copied).
func (r *Recorder) Events() []Event { return r.events }

// Len returns the number of recorded events.
func (r *Recorder) Len() int { return len(r.events) }
