package trace

// Random-access per-rank streams over a v2 tracefile: the entry point
// of the out-of-core analysis pipeline.
//
// The v2 layout stores events grouped by process (NewTrace appends
// stream after stream and BlockWriter preserves append order), records
// are fixed-size, and every block carries its own CRC32C — so the byte
// offset of record i is computable and the per-process section
// boundaries can be recovered with a binary search over the Process
// field, without decoding a single record. RankStreams exploits that
// to expose one independent, lazily decoded cursor per process: the
// bounded-memory k-way merge in internal/logical pulls one event at a
// time from each cursor and never materialises the full event slice.
//
// Integrity model: rank-stream mode verifies the header checksum (done
// by NewBlockReader before RankStreams is reachable), every block's
// CRC32C as the block is first touched by a cursor, and the trailer
// magic at its computed offset. The whole-file CRC is NOT verified —
// it is an accumulation over the serial byte order, which a random-
// access reader by construction does not follow. Callers needing the
// full serial guarantee run VerifyStream first (repo fsck does).
// Bound-probe reads are positioning only; every record a cursor yields
// comes out of a CRC-verified block, and each record's Process field
// is checked against its section, so a file that is not proc-grouped
// is detected rather than silently misread.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
)

// procFieldOff is the byte offset of the Process field inside a record
// (see putRecord/getRecord in codec.go).
const procFieldOff = 8

// RankStreams is a per-process random-access view over a v2 tracefile.
// Obtain one from BlockReader.RankStreams. It implements the event-
// source contract the streaming logical order consumes: Meta, Count
// and NextEvent.
type RankStreams struct {
	ra      io.ReaderAt
	meta    Meta
	bodyOff int64
	// bounds[p]..bounds[p+1] is process p's record index range.
	bounds []uint64
	// cursors backs NextEvent; created lazily per process.
	cursors []*RankCursor
}

// RankStreams returns a per-process random-access view of the reader's
// tracefile. It requires the v2 format and a source that implements
// io.ReaderAt (an *os.File or *bytes.Reader does; a pipe does not).
// The view is independent of the reader's sequential position and
// stays valid after Close.
func (br *BlockReader) RankStreams() (*RankStreams, error) {
	if br.v1 {
		return nil, fmt.Errorf("trace: rank streams require the v2 tracefile format")
	}
	if br.ra == nil {
		return nil, fmt.Errorf("trace: rank streams need a random-access source (io.ReaderAt)")
	}
	return newRankStreams(br.ra, br.meta, br.bodyOff)
}

func newRankStreams(ra io.ReaderAt, meta Meta, bodyOff int64) (*RankStreams, error) {
	rs := &RankStreams{ra: ra, meta: meta, bodyOff: bodyOff,
		bounds:  make([]uint64, meta.Procs+1),
		cursors: make([]*RankCursor, meta.Procs),
	}
	// The trailer magic sits at a computable offset; checking it up
	// front catches a truncated file before any cursor runs.
	nblocks := (meta.Events + blockEvents - 1) / blockEvents
	trailerOff := bodyOff + int64(meta.Events)*recordSize + int64(nblocks)*4
	var tm [8]byte
	if _, err := ra.ReadAt(tm[:], trailerOff); err != nil {
		return nil, corruptf(trailerOff, "reading trailer: %v", err)
	}
	if tm != trailer {
		return nil, corruptf(trailerOff, "bad trailer %q", tm[:])
	}
	if err := rs.findBounds(); err != nil {
		return nil, err
	}
	return rs, nil
}

// recordOff returns the byte offset of record i: records are
// recordSize bytes and every full block before it contributed a 4-byte
// CRC.
func (rs *RankStreams) recordOff(i uint64) int64 {
	return rs.bodyOff + int64(i)*recordSize + int64(i/blockEvents)*4
}

// findBounds recovers the per-process section boundaries with one
// binary search per process over the Process field. Probes skip the
// block CRCs (they are positioning only); correctness does not depend
// on them, because every record a cursor later yields is re-read
// through a CRC-verified block and checked against its section.
func (rs *RankStreams) findBounds() error {
	count := rs.meta.Events
	var probeErr error
	procAt := func(i uint64) int32 {
		var b [4]byte
		off := rs.recordOff(i) + procFieldOff
		if _, err := rs.ra.ReadAt(b[:], off); err != nil && probeErr == nil {
			probeErr = corruptf(off, "probing process of event %d: %v", i, err)
		}
		return int32(binary.LittleEndian.Uint32(b[:]))
	}
	lo := uint64(0)
	for p := 1; p < rs.meta.Procs; p++ {
		n := int(count - lo)
		k := sort.Search(n, func(k int) bool {
			if probeErr != nil {
				return true
			}
			return procAt(lo+uint64(k)) >= int32(p)
		})
		if probeErr != nil {
			return probeErr
		}
		lo += uint64(k)
		rs.bounds[p] = lo
	}
	rs.bounds[rs.meta.Procs] = count
	return nil
}

// Meta returns the tracefile's header.
func (rs *RankStreams) Meta() Meta { return rs.meta }

// Count returns how many events process p owns.
func (rs *RankStreams) Count(p int) uint64 { return rs.bounds[p+1] - rs.bounds[p] }

// NextEvent copies process p's next event into dst and advances its
// cursor; it returns false with a nil error when the stream is done.
func (rs *RankStreams) NextEvent(p int, dst *Event) (bool, error) {
	c := rs.cursors[p]
	if c == nil {
		c = rs.Cursor(p)
		rs.cursors[p] = c
	}
	return c.Next(dst)
}

// Cursor returns a fresh independent cursor over process p's events.
// Each cursor owns one block-sized buffer (~46 KiB), so memory is
// O(procs), not O(events).
func (rs *RankStreams) Cursor(p int) *RankCursor {
	return &RankCursor{
		rs:       rs,
		proc:     int32(p),
		next:     rs.bounds[p],
		end:      rs.bounds[p+1],
		buf:      make([]byte, blockBytes+4),
		bufBlock: -1,
	}
}

// RankCursor iterates one process's events in per-process order,
// decoding lazily out of whole CRC-verified blocks.
type RankCursor struct {
	rs        *RankStreams
	proc      int32
	next, end uint64
	buf       []byte
	bufBlock  int64
	bufStart  uint64
}

// Remaining returns how many events the cursor has not yielded yet.
func (c *RankCursor) Remaining() uint64 { return c.end - c.next }

// Next copies the cursor's next event into dst; false with a nil error
// means the process's section is exhausted.
func (c *RankCursor) Next(dst *Event) (bool, error) {
	if c.next >= c.end {
		return false, nil
	}
	b := int64(c.next / blockEvents)
	if b != c.bufBlock {
		if err := c.loadBlock(b); err != nil {
			return false, err
		}
	}
	rel := c.next - c.bufStart
	getRecord(c.buf[rel*recordSize:], dst)
	if dst.Process != c.proc {
		return false, corruptf(c.rs.recordOff(c.next)+procFieldOff,
			"rank stream: event %d in process %d's section belongs to process %d (tracefile not grouped by process)",
			c.next, c.proc, dst.Process)
	}
	c.next++
	return true, nil
}

// loadBlock reads block b whole and verifies its CRC. Blocks that
// straddle a section boundary are verified by both adjacent cursors —
// a negligible double cost that keeps every yielded record covered by
// a checksum.
func (c *RankCursor) loadBlock(b int64) error {
	start := uint64(b) * blockEvents
	end := start + blockEvents
	if end > c.rs.meta.Events {
		end = c.rs.meta.Events
	}
	recBytes := int(end-start) * recordSize
	off := c.rs.bodyOff + int64(start)*recordSize + b*4
	if _, err := c.rs.ra.ReadAt(c.buf[:recBytes+4], off); err != nil {
		return corruptf(off, "rank stream: reading event block %d-%d: %v", start, end-1, err)
	}
	crc := crc32.Update(0, crcTable, c.buf[:recBytes])
	if got := binary.LittleEndian.Uint32(c.buf[recBytes : recBytes+4]); got != crc {
		return corruptf(off,
			"event block %d-%d checksum mismatch (stored %08x, computed %08x)",
			start, end-1, got, crc)
	}
	c.bufBlock, c.bufStart = b, start
	return nil
}
