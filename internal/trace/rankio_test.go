package trace

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"

	"pas2p/internal/vtime"
)

// unevenTrace builds a valid proc-grouped trace where process p owns
// counts[p] events, exercising section boundaries that do not align
// with block boundaries (including empty sections).
func unevenTrace(t *testing.T, counts []int) *Trace {
	t.Helper()
	streams := make([][]Event, len(counts))
	for p, n := range counts {
		rec := NewRecorder(p)
		var tphys vtime.Time
		for i := 0; i < n; i++ {
			tphys += vtime.Time(100 + i%37)
			rec.Record(Event{
				Kind: Collective, Involved: int32(len(counts)), CollOp: 1,
				Peer: -1, Tag: 0, Size: int64(64 + i%128),
				Enter: tphys, Exit: tphys + 50,
				RelA: 0, RelB: int64(i),
			})
		}
		streams[p] = rec.Events()
	}
	tr, err := NewTrace("uneven", len(counts), streams, 12345)
	if err != nil {
		t.Fatalf("building uneven trace: %v", err)
	}
	return tr
}

func rankStreamsFor(t *testing.T, tr *Trace) (*RankStreams, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	br, err := NewBlockReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := br.RankStreams()
	if err != nil {
		t.Fatalf("rank streams: %v", err)
	}
	return rs, buf.Bytes()
}

// TestRankStreamsMatchPerProcess is the core property: for every
// process, the rank cursor yields exactly the events PerProcess slices
// out of a full decode, across section shapes that cover empty
// sections, sub-block sections, exact block multiples, and sections
// straddling many blocks.
func TestRankStreamsMatchPerProcess(t *testing.T) {
	shapes := [][]int{
		{1},
		{0, 5, 0},
		{3, 700, 3},                       // middle section spans blocks
		{blockEvents, blockEvents},        // sections on exact block boundaries
		{blockEvents - 1, 1, blockEvents}, // off-by-one around the boundary
		{100, 0, 2000, 1, 0, 731},
	}
	for _, counts := range shapes {
		tr := unevenTrace(t, counts)
		rs, _ := rankStreamsFor(t, tr)
		per := tr.PerProcess()
		for p := 0; p < tr.Procs; p++ {
			if got := rs.Count(p); got != uint64(len(per[p])) {
				t.Fatalf("counts %v: Count(%d) = %d, want %d", counts, p, got, len(per[p]))
			}
			var got []Event
			var e Event
			for {
				ok, err := rs.NextEvent(p, &e)
				if err != nil {
					t.Fatalf("counts %v proc %d: %v", counts, p, err)
				}
				if !ok {
					break
				}
				got = append(got, e)
			}
			if !reflect.DeepEqual(got, append([]Event(nil), per[p]...)) {
				t.Fatalf("counts %v: proc %d stream diverges from PerProcess", counts, p)
			}
			// Exhausted cursors stay exhausted.
			if ok, err := rs.NextEvent(p, &e); ok || err != nil {
				t.Fatalf("counts %v proc %d: NextEvent after end = %v, %v", counts, p, ok, err)
			}
		}
	}
}

// TestRankStreamsFuzzTraces runs the same property over the seeded
// random traces the codec tests use (all three event kinds, multiple
// blocks per section).
func TestRankStreamsFuzzTraces(t *testing.T) {
	for _, s := range []struct {
		seed   int64
		procs  int
		events int
	}{
		{101, 2, 600},
		{102, 5, 1111},
		{103, 8, 64},
	} {
		tr := fuzzTrace(t, s.seed, s.procs, s.events)
		rs, _ := rankStreamsFor(t, tr)
		per := tr.PerProcess()
		for p := 0; p < tr.Procs; p++ {
			c := rs.Cursor(p)
			if c.Remaining() != uint64(len(per[p])) {
				t.Fatalf("shape %+v: proc %d Remaining = %d, want %d", s, p, c.Remaining(), len(per[p]))
			}
			for i := range per[p] {
				var e Event
				ok, err := c.Next(&e)
				if err != nil || !ok {
					t.Fatalf("shape %+v proc %d event %d: ok=%v err=%v", s, p, i, ok, err)
				}
				if e != per[p][i] {
					t.Fatalf("shape %+v proc %d event %d diverges", s, p, i)
				}
			}
		}
	}
}

// TestRankStreamsDetectCorruption: a bit flip inside a block must be
// caught by the cursor that touches the block, with the standard
// checksum-mismatch error, even though the bound probes that located
// the sections did not verify it.
func TestRankStreamsDetectCorruption(t *testing.T) {
	tr := unevenTrace(t, []int{600, 600})
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	raw := append([]byte(nil), buf.Bytes()...)
	headerEnd := 8 + 24 + len(tr.AppName) + 4
	raw[headerEnd+10] ^= 0x40 // first block, proc 0's section

	br, err := NewBlockReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := br.RankStreams()
	if err != nil {
		t.Fatalf("rank streams over corrupt block: construction should defer detection, got %v", err)
	}
	var e Event
	_, err = rs.NextEvent(0, &e)
	if err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("corrupt block read error = %v, want checksum mismatch", err)
	}
	// The undamaged section still reads cleanly.
	if ok, err := rs.NextEvent(1, &e); !ok || err != nil {
		t.Fatalf("clean section after corruption elsewhere: ok=%v err=%v", ok, err)
	}
}

// TestRankStreamsTruncatedFile: a file cut before the trailer is
// rejected at construction (the trailer magic lives at a computable
// offset).
func TestRankStreamsTruncatedFile(t *testing.T) {
	tr := unevenTrace(t, []int{100, 100})
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-15]
	br, err := NewBlockReader(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := br.RankStreams(); err == nil || !strings.Contains(err.Error(), "trailer") {
		t.Fatalf("truncated file: RankStreams err = %v, want trailer error", err)
	}
}

// TestRankStreamsRequirements: v1 files and non-random-access sources
// are refused with explicit errors.
func TestRankStreamsRequirements(t *testing.T) {
	tr := unevenTrace(t, []int{10})
	var v1buf bytes.Buffer
	if err := encodeV1(&v1buf, tr); err != nil {
		t.Fatal(err)
	}
	br, err := NewBlockReader(bytes.NewReader(v1buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := br.RankStreams(); err == nil || !strings.Contains(err.Error(), "v2") {
		t.Fatalf("v1 RankStreams err = %v, want v2 requirement", err)
	}

	var v2buf bytes.Buffer
	if err := Encode(&v2buf, tr); err != nil {
		t.Fatal(err)
	}
	// A bare io.Reader (no ReadAt) cannot back rank streams.
	br2, err := NewBlockReader(struct{ io.Reader }{bytes.NewReader(v2buf.Bytes())})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := br2.RankStreams(); err == nil || !strings.Contains(err.Error(), "random-access") {
		t.Fatalf("sequential-source RankStreams err = %v, want random-access requirement", err)
	}
}

// TestRankStreamsUngroupedFile: BlockWriter does not validate process
// grouping, so a file with interleaved processes can exist on disk;
// the per-record section check must refuse it rather than hand back
// another process's events.
func TestRankStreamsUngroupedFile(t *testing.T) {
	const n = 40
	evs := make([]Event, n)
	var tphys vtime.Time
	for i := range evs {
		tphys += 100
		evs[i] = Event{
			Process: int32(i % 2), Number: int64(i / 2),
			Kind: Collective, Involved: 2, CollOp: 1, Peer: -1,
			Enter: tphys, Exit: tphys + 10, RelA: 0, RelB: int64(i / 2),
		}
	}
	var buf bytes.Buffer
	bw, err := NewBlockWriter(&buf, Meta{AppName: "interleaved", Procs: 2, Events: n}, CodecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := bw.Append(evs); err != nil {
		t.Fatal(err)
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	br, err := NewBlockReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := br.RankStreams()
	if err != nil {
		// Acceptable: detected already at bound recovery.
		return
	}
	var e Event
	for p := 0; p < 2; p++ {
		for {
			ok, err := rs.NextEvent(p, &e)
			if err != nil {
				if !strings.Contains(err.Error(), "not grouped") {
					t.Fatalf("ungrouped file error = %v, want grouping complaint", err)
				}
				return
			}
			if !ok {
				break
			}
		}
	}
	t.Fatal("ungrouped file streamed without complaint")
}

// TestBlockReaderClose: Close mid-stream releases the reader and
// subsequent Next calls return io.EOF; Close is idempotent and also
// fine after natural EOF.
func TestBlockReaderClose(t *testing.T) {
	tr := unevenTrace(t, []int{900, 900}) // several blocks
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}

	br, err := NewBlockReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := br.Next(); err != nil {
		t.Fatalf("first block: %v", err)
	}
	if err := br.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := br.Next(); err != io.EOF {
		t.Fatalf("Next after Close = %v, want io.EOF", err)
	}
	if err := br.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}

	// Close after reading to EOF.
	br2, err := NewBlockReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := br2.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if err := br2.Close(); err != nil {
		t.Fatalf("close after EOF: %v", err)
	}

	// A closed-then-reopened reader still decodes correctly (pool reuse
	// must not leak state between readers).
	br3, err := NewBlockReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var total int
	for {
		blk, err := br3.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		total += len(blk)
	}
	if total != len(tr.Events) {
		t.Fatalf("reopened reader yielded %d events, want %d", total, len(tr.Events))
	}
	br3.Close()
}
