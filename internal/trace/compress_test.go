package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"pas2p/internal/vtime"
)

// iterativeStream builds a per-rank stream with heavy repetition, like
// real SPMD traces.
func iterativeStream(proc, iters int) []Event {
	rec := NewRecorder(proc)
	var tphys vtime.Time
	for i := 0; i < iters; i++ {
		tphys += 1000
		rec.Record(Event{Kind: Send, Involved: 2, CollOp: -1, Peer: int32(proc) + 1,
			Tag: 0, Size: 2048, Enter: tphys, Exit: tphys + 200,
			RelA: int64(proc), RelB: int64(i)})
		tphys += 500
		rec.Record(Event{Kind: Recv, Involved: 2, CollOp: -1, Peer: int32(proc) + 1,
			Tag: 0, Size: 2048, Enter: tphys, Exit: tphys + 300,
			RelA: int64(proc) + 1, RelB: int64(i)})
		tphys += 800
		rec.Record(Event{Kind: Collective, Involved: 4, CollOp: 3, Peer: -1,
			Tag: 0, Size: 8, Enter: tphys, Exit: tphys + 100,
			RelA: 0, RelB: int64(i)})
	}
	return rec.Events()
}

func repetitiveTrace(t testing.TB, procs, iters int) *Trace {
	t.Helper()
	streams := make([][]Event, procs)
	for p := 0; p < procs; p++ {
		streams[p] = iterativeStream(p, iters)
		// The senders in this synthetic trace reference themselves, so
		// receives resolve; patch receives to point at proc p's sends.
		for i := range streams[p] {
			if streams[p][i].Kind == Recv {
				streams[p][i].RelA = int64(p)
			}
		}
	}
	tr, err := NewTrace("ztest", procs, streams, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestCompressRoundTrip(t *testing.T) {
	tr := repetitiveTrace(t, 4, 50)
	var buf bytes.Buffer
	if err := Compress(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatal("compressed round trip mismatch")
	}
}

func TestCompressionRatioOnRepetitiveTrace(t *testing.T) {
	tr := repetitiveTrace(t, 8, 500)
	var flat, comp bytes.Buffer
	if err := Encode(&flat, tr); err != nil {
		t.Fatal(err)
	}
	if err := Compress(&comp, tr); err != nil {
		t.Fatal(err)
	}
	ratio := float64(flat.Len()) / float64(comp.Len())
	if ratio < 5 {
		t.Errorf("compression ratio %.1fx too low for a repetitive trace (%d -> %d bytes)",
			ratio, flat.Len(), comp.Len())
	}
	// The achieved ratio itself is reported by BenchmarkCompressionRatio
	// (same trace shape) via b.ReportMetric, where tooling can track it.
}

func TestCompressRoundTripWithLTs(t *testing.T) {
	tr := repetitiveTrace(t, 2, 10)
	for i := range tr.Events {
		tr.Events[i].LT = int64(i)
	}
	var buf bytes.Buffer
	if err := Compress(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatal("LT-carrying round trip mismatch")
	}
}

func TestDecompressRejectsGarbage(t *testing.T) {
	if _, err := Decompress(bytes.NewReader([]byte("garbage data here......"))); err == nil {
		t.Error("garbage should fail")
	}
	tr := repetitiveTrace(t, 2, 10)
	var buf bytes.Buffer
	if err := Compress(&buf, tr); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Decompress(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated input should fail")
	}
}

// Fuzz-ish: random irregular streams survive the round trip (no
// repetition to exploit, but correctness must hold).
func TestCompressRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		procs := rng.Intn(3) + 1
		streams := make([][]Event, procs)
		for p := 0; p < procs; p++ {
			rec := NewRecorder(p)
			var tphys vtime.Time
			n := rng.Intn(40) + 1
			for i := 0; i < n; i++ {
				tphys += vtime.Time(rng.Intn(5000) + 1)
				kind := Kind(rng.Intn(3))
				peer := int32(rng.Intn(procs))
				if kind == Collective {
					peer = -1
				}
				rec.Record(Event{
					Kind: kind, Involved: int32(rng.Intn(8) + 2),
					CollOp: int8(rng.Intn(8)) - 1, Peer: peer,
					Tag: int32(rng.Intn(16)), Size: int64(rng.Intn(1 << 16)),
					Enter: tphys, Exit: tphys + vtime.Time(rng.Intn(500)),
					RelA: int64(rng.Intn(procs)), RelB: int64(rng.Intn(100)),
				})
			}
			streams[p] = rec.Events()
		}
		// Make receive relations resolvable: point them at existing
		// sends or flip them to sends.
		type key struct{ a, b int64 }
		sends := map[key]bool{}
		for p := range streams {
			for i := range streams[p] {
				if streams[p][i].Kind == Send {
					sends[key{streams[p][i].RelA, streams[p][i].RelB}] = true
				}
			}
		}
		for p := range streams {
			for i := range streams[p] {
				e := &streams[p][i]
				if e.Kind == Recv && !sends[key{e.RelA, e.RelB}] {
					e.Kind = Collective
					e.Peer = -1
				}
			}
		}
		tr, err := NewTrace("fuzz", procs, streams, vtime.Duration(rng.Intn(1e9)))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Compress(&buf, tr); err != nil {
			t.Fatal(err)
		}
		got, err := Decompress(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !reflect.DeepEqual(got, tr) {
			t.Fatalf("trial %d: round trip mismatch", trial)
		}
	}
}

// TestCompressIndexedLayout pins the Z2 container: new files lead with
// the indexed magic, and the section index makes decompression fan out
// — the decoded trace must be identical at every worker count, and
// identical to the serial decode.
func TestCompressIndexedLayout(t *testing.T) {
	tr := repetitiveTrace(t, 8, 500) // 12k events: above the parallel floor
	var buf bytes.Buffer
	if err := Compress(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), magicZ2[:]) {
		t.Fatalf("compressed file leads with %q, want %q", buf.Bytes()[:8], magicZ2[:])
	}
	// Compression is byte-identical at every worker count.
	for _, w := range []int{1, 2, 4, 8} {
		var again bytes.Buffer
		if err := CompressWith(&again, tr, CompressOptions{MaxBlock: 64, Workers: w}); err != nil {
			t.Fatalf("CompressWith(workers=%d): %v", w, err)
		}
		if !bytes.Equal(again.Bytes(), buf.Bytes()) {
			t.Fatalf("CompressWith(workers=%d) bytes differ from default", w)
		}
	}
	// Decompression yields the identical trace at every worker count.
	for _, w := range []int{0, 1, 2, 4, 8, 16} {
		got, err := DecompressWith(bytes.NewReader(buf.Bytes()), CodecOptions{Workers: w})
		if err != nil {
			t.Fatalf("DecompressWith(workers=%d): %v", w, err)
		}
		if !reflect.DeepEqual(got, tr) {
			t.Fatalf("DecompressWith(workers=%d) mismatch", w)
		}
	}
}

// TestLegacyZ1ReadPath proves index-less Z1 files written by older
// builds still decode, both directly and through the sniffer.
func TestLegacyZ1ReadPath(t *testing.T) {
	tr := repetitiveTrace(t, 4, 100)
	var buf bytes.Buffer
	if err := compressLegacy(&buf, tr, CompressOptions{MaxBlock: 64}); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), magicZ[:]) {
		t.Fatalf("legacy writer emitted magic %q, want %q", buf.Bytes()[:8], magicZ[:])
	}
	got, err := Decompress(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Decompress(Z1): %v", err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatal("legacy Z1 round trip mismatch")
	}
	got, err = DecodeAny(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("DecodeAny(Z1): %v", err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatal("DecodeAny legacy Z1 mismatch")
	}
	// The legacy parallel encoder matches the legacy serial encoder.
	big := repetitiveTrace(t, 8, 500)
	var serial, par bytes.Buffer
	if err := compressLegacy(&serial, big, CompressOptions{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if err := compressLegacy(&par, big, CompressOptions{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.Bytes(), par.Bytes()) {
		t.Fatal("legacy serial and parallel encoders disagree")
	}
}

// TestDecompressIndexedCorruption: truncated Z2 files and index/body
// length mismatches must fail loudly, not decode to garbage.
func TestDecompressIndexedCorruption(t *testing.T) {
	tr := repetitiveTrace(t, 4, 100)
	var buf bytes.Buffer
	if err := Compress(&buf, tr); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{len(data) / 2, len(data) - 3} {
		if _, err := Decompress(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("truncation at %d/%d decoded successfully", cut, len(data))
		}
	}
	// Appending bytes shifts nothing (sections are length-delimited),
	// but shrinking a section's byte range must trip the exact-consume
	// check: chop the final section body short by rewriting its length.
	// Simpler equivalent: drop the last byte of the last section.
	if _, err := Decompress(bytes.NewReader(data[:len(data)-1])); err == nil {
		t.Error("short final section decoded successfully")
	}
}

func TestDecodeAnySniffsFormats(t *testing.T) {
	tr := repetitiveTrace(t, 2, 20)
	var flat, comp, js bytes.Buffer
	if err := Encode(&flat, tr); err != nil {
		t.Fatal(err)
	}
	if err := Compress(&comp, tr); err != nil {
		t.Fatal(err)
	}
	if err := EncodeJSON(&js, tr); err != nil {
		t.Fatal(err)
	}
	for name, buf := range map[string]*bytes.Buffer{"flat": &flat, "compressed": &comp, "json": &js} {
		got, err := DecodeAny(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(got, tr) {
			t.Errorf("%s: DecodeAny mismatch", name)
		}
	}
	if _, err := DecodeAny(bytes.NewReader([]byte("???????????"))); err == nil {
		t.Error("unknown format should fail")
	}
}
