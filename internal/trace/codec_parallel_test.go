package trace

import (
	"bytes"
	"fmt"
	"io"
	"reflect"
	"strings"
	"testing"

	"pas2p/internal/obs"
)

// TestEncodeDeterministicAcrossWorkers is the PR's core property: the
// block engine's output is byte-identical at every worker count, on
// traces small enough to take the serial fallback and large enough to
// actually fan out.
func TestEncodeDeterministicAcrossWorkers(t *testing.T) {
	shapes := []struct {
		seed   int64
		procs  int
		events int // per process
	}{
		{1, 1, 0},     // empty: header + trailer only
		{2, 1, 1},     // single event
		{3, 2, 255},   // sub-block total
		{4, 3, 171},   // exactly one block (513 -> no; 3*171=513) — off-by-one around blockEvents
		{5, 2, 256},   // exactly blockEvents
		{6, 4, 1500},  // 6000 events: parallel path, partial final block
		{7, 3, 2048},  // 6144 events: whole number of blocks
		{8, 1, 40000}, // single stream, many blocks
	}
	for _, s := range shapes {
		tr := fuzzTrace(t, s.seed, s.procs, s.events)
		var serial bytes.Buffer
		if err := EncodeWith(&serial, tr, CodecOptions{Workers: 1}); err != nil {
			t.Fatalf("shape %+v: serial encode: %v", s, err)
		}
		for _, workers := range []int{2, 8} {
			var par bytes.Buffer
			if err := EncodeWith(&par, tr, CodecOptions{Workers: workers}); err != nil {
				t.Fatalf("shape %+v workers=%d: encode: %v", s, workers, err)
			}
			if !bytes.Equal(par.Bytes(), serial.Bytes()) {
				t.Fatalf("shape %+v workers=%d: output diverges from serial (%d vs %d bytes)",
					s, workers, par.Len(), serial.Len())
			}
		}
		// And every worker count decodes it back to the same trace.
		for _, workers := range []int{1, 2, 8} {
			got, err := DecodeWith(bytes.NewReader(serial.Bytes()), CodecOptions{Workers: workers})
			if err != nil {
				t.Fatalf("shape %+v workers=%d: decode: %v", s, workers, err)
			}
			if !reflect.DeepEqual(got, tr) {
				t.Fatalf("shape %+v workers=%d: decode round trip mismatch", s, workers)
			}
		}
	}
}

// TestDecodeCorruptionDeterministicAcrossWorkers pins the second half
// of the property: a damaged file produces the exact same error string
// (same failing unit, same byte offset) at every parallelism level,
// because block bytes are read serially in file order and worker errors
// resolve to the lowest block start.
func TestDecodeCorruptionDeterministicAcrossWorkers(t *testing.T) {
	tr := fuzzTrace(t, 11, 4, 1500) // 6000 events: 12 blocks, parallel path
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	headerEnd := 8 + 24 + len(tr.AppName) + 4

	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"flip-first-block", func(b []byte) []byte { b[headerEnd+10] ^= 0x40; return b }},
		{"flip-mid-block", func(b []byte) []byte { b[headerEnd+5*(blockBytes+4)+137] ^= 0x01; return b }},
		{"flip-last-block", func(b []byte) []byte { b[len(b)-20] ^= 0x80; return b }},
		// Stored block CRC itself damaged.
		{"flip-block-crc", func(b []byte) []byte { b[headerEnd+3*(blockBytes+4)-2] ^= 0xff; return b }},
		{"truncate-mid-record", func(b []byte) []byte { return b[:headerEnd+2*(blockBytes+4)+recordSize+17] }},
		{"truncate-record-boundary", func(b []byte) []byte { return b[:headerEnd+7*(blockBytes+4)+3*recordSize] }},
		{"truncate-trailer", func(b []byte) []byte { return b[:len(b)-9] }},
	}
	for _, c := range cases {
		data := c.mutate(append([]byte(nil), raw...))
		_, serialErr := DecodeWith(bytes.NewReader(data), CodecOptions{Workers: 1})
		if serialErr == nil {
			t.Fatalf("%s: corruption went undetected", c.name)
		}
		if !strings.Contains(serialErr.Error(), "offset") {
			t.Fatalf("%s: error lacks offset: %v", c.name, serialErr)
		}
		for _, workers := range []int{2, 8} {
			_, err := DecodeWith(bytes.NewReader(data), CodecOptions{Workers: workers})
			if err == nil {
				t.Fatalf("%s workers=%d: corruption went undetected", c.name, workers)
			}
			if err.Error() != serialErr.Error() {
				t.Fatalf("%s workers=%d: error diverges from serial:\n  serial:   %v\n  parallel: %v",
					c.name, workers, serialErr, err)
			}
		}
		// The streaming reader reports the identical error too.
		if _, err := VerifyStream(bytes.NewReader(data)); err == nil || err.Error() != serialErr.Error() {
			t.Fatalf("%s: VerifyStream error diverges from Decode:\n  decode: %v\n  stream: %v",
				c.name, serialErr, err)
		}
	}
}

// TestCompressDeterministicAcrossWorkers: the parallel template scan
// and per-process section encoding must reproduce the serial archive
// bit for bit (the template dictionary merge preserves first-seen
// order), and the archive must still decompress to the original.
func TestCompressDeterministicAcrossWorkers(t *testing.T) {
	for _, shape := range []struct {
		seed   int64
		procs  int
		events int
	}{
		{21, 4, 800}, // 3200 events: parallel path
		{22, 8, 400}, // wider than workers
		{23, 2, 100}, // small: serial fallback
	} {
		tr := fuzzTrace(t, shape.seed, shape.procs, shape.events)
		var serial bytes.Buffer
		if err := CompressWith(&serial, tr, CompressOptions{Workers: 1}); err != nil {
			t.Fatalf("shape %+v: serial compress: %v", shape, err)
		}
		for _, workers := range []int{2, 8} {
			var par bytes.Buffer
			if err := CompressWith(&par, tr, CompressOptions{Workers: workers}); err != nil {
				t.Fatalf("shape %+v workers=%d: compress: %v", shape, workers, err)
			}
			if !bytes.Equal(par.Bytes(), serial.Bytes()) {
				t.Fatalf("shape %+v workers=%d: archive diverges from serial", shape, workers)
			}
		}
		got, err := Decompress(bytes.NewReader(serial.Bytes()))
		if err != nil {
			t.Fatalf("shape %+v: decompress: %v", shape, err)
		}
		if !reflect.DeepEqual(got, tr) {
			t.Fatalf("shape %+v: compress round trip mismatch", shape)
		}
	}
}

// TestGrowEventsPolicy pins the reservation policy directly: untrusted
// counts grow by fixed eventChunk steps (a malicious header can never
// make one allocation bigger than ~6 MiB of events), while a trusted
// count doubles, reaching N events in O(log N) allocations.
func TestGrowEventsPolicy(t *testing.T) {
	grows := func(total uint64, trusted bool) int {
		evs := make([]Event, 0)
		n := 0
		for uint64(cap(evs)) < total {
			before := cap(evs)
			evs = growEvents(evs, total, trusted)
			if cap(evs) <= before {
				t.Fatalf("growEvents(total=%d, trusted=%v) did not grow past cap %d", total, trusted, before)
			}
			if uint64(cap(evs)) > total {
				t.Fatalf("growEvents(total=%d, trusted=%v) over-reserved cap %d", total, trusted, cap(evs))
			}
			n++
		}
		return n
	}
	const million = 1_000_000
	if got := grows(million, false); got != (million+eventChunk-1)/eventChunk {
		t.Fatalf("untrusted growth to 1M: %d allocations, want %d", got, (million+eventChunk-1)/eventChunk)
	}
	// Doubling from eventChunk: 65536, 131072, 262144, 524288, 1000000.
	if got := grows(million, true); got != 5 {
		t.Fatalf("trusted growth to 1M: %d allocations, want 5", got)
	}
	if got := grows(100, true); got != 1 {
		t.Fatalf("trusted growth to 100: %d allocations, want 1", got)
	}
}

// TestTrustedDecodeAllocs pins the end-to-end allocation count of a
// large serial decode: once the first block's checksum verifies, the
// header-declared count funds doubling reservations, so the whole
// decode stays within a small constant number of allocations rather
// than one per 64Ki-event chunk.
func TestTrustedDecodeAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under the race detector")
	}
	tr := syntheticTrace(600_000)
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	allocs := testing.AllocsPerRun(2, func() {
		got, err := DecodeWith(bytes.NewReader(data), CodecOptions{Workers: 1})
		if err != nil || len(got.Events) != 600_000 {
			t.Fatalf("decode: %v", err)
		}
	})
	// Measured ~11: reader plumbing + name + trace + scratch block buffer
	// + 5 doubling grows (64Ki..600k). The old chunked growth alone took
	// 10 grows; anything past 20 means the trusted path regressed.
	if allocs > 20 {
		t.Fatalf("trusted 600k-event decode did %.0f allocations, want <= 20", allocs)
	}
}

// TestBlockWriterReaderRoundTrip drives the streaming API directly:
// arbitrary Append chunkings must produce the byte-identical file that
// EncodeWith produces, and BlockReader must hand back the same events
// block by block with the trailer verified before EOF.
func TestBlockWriterReaderRoundTrip(t *testing.T) {
	tr := fuzzTrace(t, 31, 3, 1200) // 3600 events
	var want bytes.Buffer
	if err := Encode(&want, tr); err != nil {
		t.Fatal(err)
	}
	meta := Meta{AppName: tr.AppName, Procs: tr.Procs, Events: uint64(len(tr.Events)), AET: tr.AET}

	for _, workers := range []int{1, 8} {
		for _, chunk := range []int{1, 100, blockEvents, blockEvents + 1, 997, len(tr.Events)} {
			var got bytes.Buffer
			bw, err := NewBlockWriter(&got, meta, CodecOptions{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			for off := 0; off < len(tr.Events); off += chunk {
				end := off + chunk
				if end > len(tr.Events) {
					end = len(tr.Events)
				}
				if err := bw.Append(tr.Events[off:end]); err != nil {
					t.Fatalf("workers=%d chunk=%d: append: %v", workers, chunk, err)
				}
			}
			if err := bw.Close(); err != nil {
				t.Fatalf("workers=%d chunk=%d: close: %v", workers, chunk, err)
			}
			if !bytes.Equal(got.Bytes(), want.Bytes()) {
				t.Fatalf("workers=%d chunk=%d: streamed bytes diverge from Encode", workers, chunk)
			}
		}
	}

	// Read it back block by block.
	br, err := NewBlockReader(bytes.NewReader(want.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if br.Meta() != meta {
		t.Fatalf("streamed meta %+v, want %+v", br.Meta(), meta)
	}
	var events []Event
	for {
		blk, err := br.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("next: %v", err)
		}
		if len(blk) == 0 || len(blk) > blockEvents {
			t.Fatalf("block of %d events", len(blk))
		}
		events = append(events, blk...) // blk is scratch: copy before the next call
	}
	if !reflect.DeepEqual(events, tr.Events) {
		t.Fatal("streamed events diverge from the original")
	}
	// Next after EOF keeps returning EOF.
	if _, err := br.Next(); err != io.EOF {
		t.Fatalf("Next after EOF: %v", err)
	}

	meta2, err := VerifyStream(bytes.NewReader(want.Bytes()))
	if err != nil {
		t.Fatalf("verify stream: %v", err)
	}
	if meta2 != meta {
		t.Fatalf("VerifyStream meta %+v, want %+v", meta2, meta)
	}
}

// TestBlockReaderV1 checks the streaming reader on the legacy
// unchecksummed format, including truncation errors matching decodeV1.
func TestBlockReaderV1(t *testing.T) {
	tr := fuzzTrace(t, 41, 2, 700) // 1400 events, multiple blocks
	var buf bytes.Buffer
	if err := encodeV1(&buf, tr); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	br, err := NewBlockReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	for {
		blk, err := br.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("next: %v", err)
		}
		events = append(events, blk...)
	}
	if !reflect.DeepEqual(events, tr.Events) {
		t.Fatal("v1 streamed events diverge from the original")
	}

	// Truncation mid-file: Decode and the streaming reader must agree.
	cut := raw[:len(raw)-recordSize*3-7]
	_, decErr := Decode(bytes.NewReader(cut))
	if decErr == nil {
		t.Fatal("truncated v1 decoded cleanly")
	}
	br2, err := NewBlockReader(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	var streamErr error
	for {
		_, err := br2.Next()
		if err != nil {
			if err != io.EOF {
				streamErr = err
			}
			break
		}
	}
	if streamErr == nil || streamErr.Error() != decErr.Error() {
		t.Fatalf("v1 truncation errors diverge:\n  decode: %v\n  stream: %v", decErr, streamErr)
	}
}

// TestBlockWriterCountMismatch: the writer must refuse both overrun
// (more events than the header declared) and underrun at Close.
func TestBlockWriterCountMismatch(t *testing.T) {
	tr := fuzzTrace(t, 51, 1, 10)
	meta := Meta{AppName: tr.AppName, Procs: tr.Procs, Events: 5, AET: tr.AET}
	var buf bytes.Buffer
	bw, err := NewBlockWriter(&buf, meta, CodecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := bw.Append(tr.Events); err == nil {
		t.Fatal("overrun Append succeeded")
	}

	buf.Reset()
	bw, err = NewBlockWriter(&buf, Meta{AppName: "x", Procs: 1, Events: 100}, CodecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := bw.Append(tr.Events[:5]); err != nil {
		t.Fatal(err)
	}
	if err := bw.Close(); err == nil {
		t.Fatal("underrun Close succeeded")
	}
}

// TestCodecMetricsPublished: an encode/decode pair with a registry
// attached must publish block and byte counters that tally with the
// file, at both parallelism settings.
func TestCodecMetricsPublished(t *testing.T) {
	tr := fuzzTrace(t, 61, 3, 1024) // 3072 events -> 6 blocks
	wantBlocks := int64((len(tr.Events) + blockEvents - 1) / blockEvents)
	for _, workers := range []int{1, 4} {
		reg := obs.NewRegistry()
		var buf bytes.Buffer
		if err := EncodeWith(&buf, tr, CodecOptions{Workers: workers, Reg: reg}); err != nil {
			t.Fatal(err)
		}
		if _, err := DecodeWith(bytes.NewReader(buf.Bytes()), CodecOptions{Workers: workers, Reg: reg}); err != nil {
			t.Fatal(err)
		}
		snap := reg.Snapshot()
		for _, c := range []string{"codec.encode.blocks", "codec.decode.blocks"} {
			if got := snap.Counters[c]; got != wantBlocks {
				t.Fatalf("workers=%d: %s = %d, want %d", workers, c, got, wantBlocks)
			}
		}
		for _, c := range []string{"codec.encode.bytes", "codec.decode.bytes"} {
			if got := snap.Counters[c]; got != wantBlocks*4+int64(len(tr.Events))*recordSize {
				t.Fatalf("workers=%d: %s = %d, want %d", workers, c, got,
					wantBlocks*4+int64(len(tr.Events))*recordSize)
			}
		}
		if got := snap.Gauges["codec.encode.workers"]; got != float64(workers) {
			t.Fatalf("workers=%d: codec.encode.workers gauge = %v", workers, got)
		}
	}
}

// TestEncodeWriteErrorPropagates: a sink that fails mid-stream must
// surface the write error (not hang the pool, not succeed).
func TestEncodeWriteErrorPropagates(t *testing.T) {
	tr := fuzzTrace(t, 71, 4, 1500)
	for _, workers := range []int{1, 8} {
		w := &failAfterWriter{limit: 100_000}
		err := EncodeWith(w, tr, CodecOptions{Workers: workers})
		if err == nil {
			t.Fatalf("workers=%d: encode to failing sink succeeded", workers)
		}
		if !strings.Contains(err.Error(), "sink full") {
			t.Fatalf("workers=%d: wrong error: %v", workers, err)
		}
	}
}

type failAfterWriter struct {
	n     int
	limit int
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.n+len(p) > w.limit {
		return 0, fmt.Errorf("sink full after %d bytes", w.n)
	}
	w.n += len(p)
	return len(p), nil
}
