package checkpoint

import (
	"testing"

	"pas2p/internal/vtime"
)

// TestRestartRetryCostZeroFailures: a restart that succeeds first try
// costs nothing extra.
func TestRestartRetryCostZeroFailures(t *testing.T) {
	m := DefaultDMTCP()
	if got := m.RestartRetryCost(1<<20, 0, 50*vtime.Millisecond); got != 0 {
		t.Fatalf("0 failures cost %v, want 0", got)
	}
	if got := m.RestartRetryCost(1<<20, -3, 50*vtime.Millisecond); got != 0 {
		t.Fatalf("negative failures cost %v, want 0", got)
	}
}

// TestRestartRetryCostFormula pins the exact price: each failed attempt
// pays a full RestartTime, plus backoff·2^k before the k-th retry.
func TestRestartRetryCostFormula(t *testing.T) {
	m := DefaultDMTCP()
	const state = int64(4 << 20)
	backoff := 50 * vtime.Millisecond
	rt := m.RestartTime(state)
	for failures := 1; failures <= 5; failures++ {
		want := vtime.Duration(failures) * rt
		for k := 0; k < failures; k++ {
			want += backoff << uint(k)
		}
		if got := m.RestartRetryCost(state, failures, backoff); got != want {
			t.Fatalf("%d failures: cost %v, want %v", failures, got, want)
		}
	}
}

// TestRestartRetryCostGrowth: the cost is strictly increasing in the
// failure count and grows faster than linearly (the backoff doubles).
func TestRestartRetryCostGrowth(t *testing.T) {
	m := DefaultDMTCP()
	backoff := 10 * vtime.Millisecond
	prev := vtime.Duration(0)
	var deltas []vtime.Duration
	for f := 1; f <= 8; f++ {
		c := m.RestartRetryCost(1<<20, f, backoff)
		if c <= prev {
			t.Fatalf("cost not strictly increasing at %d failures: %v <= %v", f, c, prev)
		}
		deltas = append(deltas, c-prev)
		prev = c
	}
	for i := 1; i < len(deltas); i++ {
		if deltas[i] <= deltas[i-1] {
			t.Fatalf("marginal cost of failure %d (%v) not above failure %d (%v): backoff must compound",
				i+1, deltas[i], i, deltas[i-1])
		}
	}
}

// TestRestartRetryCostZeroBackoff degrades to pure restart repetition.
func TestRestartRetryCostZeroBackoff(t *testing.T) {
	m := DefaultDMTCP()
	const state = int64(1 << 20)
	for f := 1; f <= 4; f++ {
		want := vtime.Duration(f) * m.RestartTime(state)
		if got := m.RestartRetryCost(state, f, 0); got != want {
			t.Fatalf("%d failures, no backoff: %v, want %v", f, got, want)
		}
	}
}

// TestRestartRetryCostIdempotent: CostModel is a value type; pricing
// the same restart twice must give the same answer with no state
// carried between calls.
func TestRestartRetryCostIdempotent(t *testing.T) {
	m := DefaultDMTCP()
	a := m.RestartRetryCost(8<<20, 3, 25*vtime.Millisecond)
	b := m.RestartRetryCost(8<<20, 3, 25*vtime.Millisecond)
	if a != b {
		t.Fatalf("retry pricing not idempotent: %v vs %v", a, b)
	}
}
