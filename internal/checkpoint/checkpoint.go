// Package checkpoint simulates the coordinated checkpoint/restart
// substrate PAS2P builds signatures with (the paper uses DMTCP, a
// transparent user-level checkpointing library; earlier PAS2P versions
// used BLCR). Because the simulation engine is deterministic, a
// snapshot does not need to capture memory: it is a replay position —
// the per-process event counts at which the checkpoint was taken —
// plus a cost model for what snapshotting and restarting that much
// state would take. The timing semantics of checkpoint/restart (pay a
// restore cost, skip the wall time of unexecuted regions, warm the
// machine back up) are reproduced exactly by the signature executor.
package checkpoint

import (
	"fmt"
	"math"

	"pas2p/internal/vtime"
)

// CostModel prices snapshot and restart operations.
type CostModel struct {
	// SnapshotBase/RestartBase are fixed per-process costs
	// (coordination, process tree reconstruction).
	SnapshotBase vtime.Duration
	RestartBase  vtime.Duration
	// SnapshotRate/RestoreRate are the bytes/second at which state is
	// written out or read back.
	SnapshotRate float64
	RestoreRate  float64
}

// DefaultDMTCP returns a cost model in the ballpark of user-level
// checkpointing on the paper's clusters: tens of milliseconds of fixed
// cost plus disk-speed state movement.
func DefaultDMTCP() CostModel {
	return CostModel{
		SnapshotBase: 50 * vtime.Millisecond,
		RestartBase:  80 * vtime.Millisecond,
		SnapshotRate: 400e6,
		RestoreRate:  600e6,
	}
}

// Valid reports whether the model is usable.
func (m CostModel) Valid() bool {
	return m.SnapshotBase >= 0 && m.RestartBase >= 0 &&
		m.SnapshotRate > 0 && m.RestoreRate > 0
}

// SnapshotTime is the per-process cost of taking a coordinated
// checkpoint of stateBytes of process state.
func (m CostModel) SnapshotTime(stateBytes int64) vtime.Duration {
	return m.SnapshotBase + rate(stateBytes, m.SnapshotRate)
}

// RestartTime is the per-process cost of restoring a checkpoint.
func (m CostModel) RestartTime(stateBytes int64) vtime.Duration {
	return m.RestartBase + rate(stateBytes, m.RestoreRate)
}

// RestartRetryCost is the extra virtual-clock cost of failures crashed
// restart attempts before a successful one: each failed attempt pays a
// full RestartTime plus exponential backoff (backoff·2^k before the
// k-th retry). Zero when no attempt failed.
func (m CostModel) RestartRetryCost(stateBytes int64, failures int, backoff vtime.Duration) vtime.Duration {
	if failures <= 0 {
		return 0
	}
	total := vtime.Duration(failures) * m.RestartTime(stateBytes)
	for k := 0; k < failures; k++ {
		total += backoff << uint(k)
	}
	return total
}

func rate(bytes int64, bps float64) vtime.Duration {
	if bytes <= 0 {
		return 0
	}
	return vtime.Duration(math.Round(float64(bytes) / bps * 1e9))
}

// Snapshot is one stored checkpoint: the replay position of every
// process a little before a phase's start point (the offset guarantees
// the machine components are warm when measurement begins, as §3.4
// prescribes).
type Snapshot struct {
	// PhaseID is the phase this checkpoint serves.
	PhaseID int
	// Position[p] is the number of events process p had completed when
	// the checkpoint was taken.
	Position []int64
	// StateBytes is the per-process state size the cost model prices.
	StateBytes int64
}

// Catalog is the set of snapshots shipped with a signature.
type Catalog struct {
	AppName string
	Procs   int
	// ISA records the base machine's instruction set; a signature's
	// binaries cannot run on a different ISA (§7), so executing the
	// catalogue elsewhere must be refused.
	ISA       string
	Snapshots []Snapshot
}

// Validate checks structural sanity.
func (c *Catalog) Validate() error {
	if c.Procs <= 0 {
		return fmt.Errorf("checkpoint catalog: no processes")
	}
	if c.ISA == "" {
		return fmt.Errorf("checkpoint catalog: missing ISA")
	}
	seen := map[int]bool{}
	for _, s := range c.Snapshots {
		if len(s.Position) != c.Procs {
			return fmt.Errorf("checkpoint catalog: snapshot for phase %d has %d positions, want %d",
				s.PhaseID, len(s.Position), c.Procs)
		}
		if seen[s.PhaseID] {
			return fmt.Errorf("checkpoint catalog: duplicate snapshot for phase %d", s.PhaseID)
		}
		seen[s.PhaseID] = true
		for p, pos := range s.Position {
			if pos < 0 {
				return fmt.Errorf("checkpoint catalog: phase %d proc %d position %d", s.PhaseID, p, pos)
			}
		}
		if s.StateBytes < 0 {
			return fmt.Errorf("checkpoint catalog: phase %d negative state size", s.PhaseID)
		}
	}
	return nil
}
