package checkpoint

import (
	"testing"
	"testing/quick"

	"pas2p/internal/vtime"
)

func TestDefaultDMTCPValid(t *testing.T) {
	if !DefaultDMTCP().Valid() {
		t.Error("default model must be valid")
	}
	bad := DefaultDMTCP()
	bad.SnapshotRate = 0
	if bad.Valid() {
		t.Error("zero snapshot rate should be invalid")
	}
	bad = DefaultDMTCP()
	bad.RestartBase = -1
	if bad.Valid() {
		t.Error("negative base should be invalid")
	}
}

func TestCostsScaleWithState(t *testing.T) {
	m := DefaultDMTCP()
	small := m.SnapshotTime(1 << 20)
	big := m.SnapshotTime(1 << 30)
	if big <= small {
		t.Error("snapshotting more state must cost more")
	}
	if m.SnapshotTime(0) != m.SnapshotBase {
		t.Error("zero state should cost exactly the base")
	}
	if m.RestartTime(0) != m.RestartBase {
		t.Error("zero state restart should cost exactly the base")
	}
	// 600 MB at 600 MB/s = 1 s + base.
	want := m.RestartBase + vtime.Second
	if got := m.RestartTime(600e6); got != want {
		t.Errorf("RestartTime(600MB) = %v, want %v", got, want)
	}
}

func TestCatalogValidate(t *testing.T) {
	good := &Catalog{
		AppName: "cg", Procs: 2, ISA: "x86_64",
		Snapshots: []Snapshot{
			{PhaseID: 1, Position: []int64{10, 12}, StateBytes: 1 << 20},
			{PhaseID: 2, Position: []int64{30, 31}, StateBytes: 1 << 20},
		},
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(c *Catalog){
		func(c *Catalog) { c.Procs = 0 },
		func(c *Catalog) { c.ISA = "" },
		func(c *Catalog) { c.Snapshots[0].Position = []int64{1} },
		func(c *Catalog) { c.Snapshots[1].PhaseID = 1 },
		func(c *Catalog) { c.Snapshots[0].Position[0] = -5 },
		func(c *Catalog) { c.Snapshots[0].StateBytes = -1 },
	}
	for i, mutate := range cases {
		c := &Catalog{
			AppName: "cg", Procs: 2, ISA: "x86_64",
			Snapshots: []Snapshot{
				{PhaseID: 1, Position: []int64{10, 12}, StateBytes: 1 << 20},
				{PhaseID: 2, Position: []int64{30, 31}, StateBytes: 1 << 20},
			},
		}
		mutate(c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

// Property: costs are monotone and non-negative for any state size.
func TestQuickCostMonotone(t *testing.T) {
	m := DefaultDMTCP()
	err := quick.Check(func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return m.SnapshotTime(x) <= m.SnapshotTime(y) &&
			m.RestartTime(x) <= m.RestartTime(y) &&
			m.SnapshotTime(x) >= 0
	}, nil)
	if err != nil {
		t.Error(err)
	}
}
