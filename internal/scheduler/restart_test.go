package scheduler

import (
	"math/rand"
	"reflect"
	"testing"

	"pas2p/internal/vtime"
)

func randomJobs(seed int64, n, totalCores int) []Job {
	rng := rand.New(rand.NewSource(seed))
	jobs := make([]Job, n)
	var at vtime.Time
	for i := range jobs {
		at = at.Add(vtime.Duration(rng.Intn(30)) * vtime.Second)
		jobs[i] = Job{
			ID:      i,
			Arrival: at,
			Cores:   1 + rng.Intn(totalCores),
			Runtime: vtime.Duration(1+rng.Intn(600)) * vtime.Second,
		}
		jobs[i].Estimate = jobs[i].Runtime * vtime.Duration(1+rng.Intn(4))
	}
	return jobs
}

// TestScheduleRestartIdempotent: feeding the same queue into a fresh
// Schedule call — as a scheduler restarting from its job log would —
// must reproduce the identical schedule, for both backfill policies.
func TestScheduleRestartIdempotent(t *testing.T) {
	for _, policy := range []BackfillPolicy{BackfillFCFS, BackfillShortest} {
		for seed := int64(1); seed <= 6; seed++ {
			jobs := randomJobs(seed, 40, 32)
			r1, err := Schedule(jobs, 32, policy)
			if err != nil {
				t.Fatal(err)
			}
			r2, err := Schedule(jobs, 32, policy)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(r1, r2) {
				t.Fatalf("policy %v seed %d: restarted schedule differs", policy, seed)
			}
		}
	}
}

// TestScheduleDoesNotMutateInput: the job slice is the caller's record;
// a scheduler that reorders or rewrites it cannot be re-run.
func TestScheduleDoesNotMutateInput(t *testing.T) {
	jobs := randomJobs(3, 30, 16)
	snapshot := append([]Job(nil), jobs...)
	if _, err := Schedule(jobs, 16, BackfillShortest); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(jobs, snapshot) {
		t.Fatal("Schedule mutated its input job slice")
	}
}

// TestScheduleOutcomeOrderStable: outcomes come back keyed by job ID
// regardless of the execution order backfilling chose, so a restarted
// consumer can join them against its own records.
func TestScheduleOutcomeOrderStable(t *testing.T) {
	jobs := randomJobs(9, 25, 8)
	res, err := Schedule(jobs, 8, BackfillShortest)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != len(jobs) {
		t.Fatalf("%d outcomes for %d jobs", len(res.Jobs), len(jobs))
	}
	seen := map[int]bool{}
	for _, o := range res.Jobs {
		if seen[o.Job.ID] {
			t.Fatalf("job %d scheduled twice", o.Job.ID)
		}
		seen[o.Job.ID] = true
		if o.Start.Sub(vtime.Time(0)) < o.Job.Arrival.Sub(vtime.Time(0)) {
			t.Fatalf("job %d starts before it arrives", o.Job.ID)
		}
		if o.Finish.Sub(o.Start) != o.Job.Runtime {
			t.Fatalf("job %d ran %v, want %v", o.Job.ID, o.Finish.Sub(o.Start), o.Job.Runtime)
		}
	}
}

// TestBackfillShortestPrefersShortEstimates: with a hole the head
// cannot use, SJBF must pick the shortest-estimated filler first.
func TestBackfillShortestPrefersShortEstimates(t *testing.T) {
	// Head occupies all cores; three 1-core candidates with distinct
	// estimates arrive while it runs; one core frees mid-run.
	jobs := []Job{
		{ID: 0, Arrival: 0, Cores: 3, Runtime: sec(100), Estimate: sec(100)},
		{ID: 1, Arrival: 0, Cores: 4, Runtime: sec(100), Estimate: sec(100)}, // blocked head
		{ID: 2, Arrival: 0, Cores: 1, Runtime: sec(30), Estimate: sec(90)},
		{ID: 3, Arrival: 0, Cores: 1, Runtime: sec(30), Estimate: sec(40)},
	}
	res, err := Schedule(jobs, 4, BackfillShortest)
	if err != nil {
		t.Fatal(err)
	}
	var start2, start3 vtime.Time
	for _, o := range res.Jobs {
		switch o.Job.ID {
		case 2:
			start2 = o.Start
		case 3:
			start3 = o.Start
		}
	}
	if !(start3.Sub(vtime.Time(0)) < start2.Sub(vtime.Time(0))) {
		t.Fatalf("SJBF ran the longer-estimated candidate first (job2 at %v, job3 at %v)",
			start2, start3)
	}
}
