// Package scheduler demonstrates the paper's motivating use case for
// signatures (§1): "accurate performance estimations are instrumental
// in helping a system resource scheduler efficiently schedule user
// jobs ... a job schedule can maximize the system throughput". It
// implements FCFS with EASY backfilling over a homogeneous core pool
// and measures how schedule quality changes with the accuracy of the
// runtime estimates — the classic comparison between inflated user
// estimates and PAS2P's ~97-percent-accurate predictions.
package scheduler

import (
	"fmt"
	"sort"

	"pas2p/internal/vtime"
)

// Job is one queued batch job.
type Job struct {
	ID      int
	Arrival vtime.Time
	// Cores the job occupies while running.
	Cores int
	// Runtime is the job's true execution time.
	Runtime vtime.Duration
	// Estimate is the runtime the scheduler believes (user guess or a
	// PAS2P prediction); it only guides backfilling decisions.
	Estimate vtime.Duration
}

// JobOutcome reports one job's schedule.
type JobOutcome struct {
	Job    Job
	Start  vtime.Time
	Finish vtime.Time
}

// Wait is the time the job sat in the queue.
func (o JobOutcome) Wait() vtime.Duration { return o.Start.Sub(o.Job.Arrival) }

// Result summarises one simulated schedule.
type Result struct {
	Jobs     []JobOutcome
	Makespan vtime.Duration
	// AvgWaitSeconds and AvgBoundedSlowdown are the standard queueing
	// metrics (slowdown bounded at a 10 s runtime floor).
	AvgWaitSeconds     float64
	AvgBoundedSlowdown float64
	// Utilization is core-seconds used over core-seconds available
	// until the makespan.
	Utilization float64
	// AvgPromiseErrorSeconds is the mean absolute gap between each
	// job's believed completion (start + estimate, what queue plans
	// and reservations are built on) and its true completion — the
	// quantity the paper's §1 argues signatures fix for schedulers.
	AvgPromiseErrorSeconds float64
}

// running is one executing job from the scheduler's viewpoint.
type running struct {
	finish    vtime.Time // true completion
	estFinish vtime.Time // believed completion
	cores     int
}

// BackfillPolicy selects the order backfill candidates are tried in.
type BackfillPolicy int

const (
	// BackfillFCFS tries candidates in arrival order (classic EASY).
	BackfillFCFS BackfillPolicy = iota
	// BackfillShortest tries the shortest estimated candidate first
	// (SJBF); this is where estimate accuracy pays off — inflated,
	// inconsistent user estimates scramble the order.
	BackfillShortest
)

// EASY schedules jobs FCFS with EASY backfilling on totalCores cores:
// the queue head reserves the earliest instant enough cores free up
// (judged by running jobs' estimated finishes), and later jobs may
// jump ahead only if, again judged by estimates, they cannot delay
// that reservation. Jobs are not killed at their estimate, so a
// too-short estimate delays the head — exactly the damage inaccurate
// predictions cause in real schedulers.
func EASY(jobs []Job, totalCores int) (*Result, error) {
	return Schedule(jobs, totalCores, BackfillFCFS)
}

// Schedule runs EASY backfilling with the given candidate policy.
func Schedule(jobs []Job, totalCores int, policy BackfillPolicy) (*Result, error) {
	if totalCores <= 0 {
		return nil, fmt.Errorf("scheduler: no cores")
	}
	for _, j := range jobs {
		if j.Cores <= 0 || j.Cores > totalCores {
			return nil, fmt.Errorf("scheduler: job %d needs %d of %d cores", j.ID, j.Cores, totalCores)
		}
		if j.Runtime <= 0 || j.Estimate <= 0 {
			return nil, fmt.Errorf("scheduler: job %d has non-positive times", j.ID)
		}
	}
	if len(jobs) == 0 {
		return &Result{}, nil
	}
	pending := append([]Job(nil), jobs...)
	sort.SliceStable(pending, func(i, j int) bool {
		if pending[i].Arrival != pending[j].Arrival {
			return pending[i].Arrival < pending[j].Arrival
		}
		return pending[i].ID < pending[j].ID
	})

	var active []running
	free := totalCores
	now := vtime.Time(0)
	out := &Result{}

	retire := func(t vtime.Time) {
		if t > now {
			now = t
		}
		kept := active[:0]
		for _, r := range active {
			if r.finish <= now {
				free += r.cores
			} else {
				kept = append(kept, r)
			}
		}
		active = kept
	}
	start := func(j Job) {
		active = append(active, running{
			finish:    now.Add(j.Runtime),
			estFinish: now.Add(j.Estimate),
			cores:     j.Cores,
		})
		free -= j.Cores
		out.Jobs = append(out.Jobs, JobOutcome{Job: j, Start: now, Finish: now.Add(j.Runtime)})
	}

	for len(pending) > 0 {
		head := pending[0]
		if now < head.Arrival {
			retire(head.Arrival)
		} else {
			retire(now)
		}

		if head.Cores <= free {
			start(head)
			pending = pending[1:]
			continue
		}

		// Reservation: earliest estimated instant with enough cores
		// for the head.
		reservation := reservationTime(active, free, head.Cores)
		// Shadow cores: what will be free at the reservation beyond
		// the head's own need — backfill jobs running past the
		// reservation must fit inside them.
		shadow := freeAt(active, free, reservation) - head.Cores

		order := make([]int, 0, len(pending)-1)
		for i := 1; i < len(pending); i++ {
			order = append(order, i)
		}
		if policy == BackfillShortest {
			sort.SliceStable(order, func(a, b int) bool {
				return pending[order[a]].Estimate < pending[order[b]].Estimate
			})
		}
		backfilled := false
		for _, i := range order {
			cand := pending[i]
			if cand.Arrival > now || cand.Cores > free {
				continue
			}
			if now.Add(cand.Estimate) > reservation && cand.Cores > shadow {
				continue
			}
			start(cand)
			pending = append(pending[:i], pending[i+1:]...)
			backfilled = true
			break
		}
		if backfilled {
			continue
		}

		// Nothing runnable: advance to the next true finish or the
		// next arrival, whichever comes first.
		next := vtime.Infinity
		for _, r := range active {
			if r.finish < next {
				next = r.finish
			}
		}
		for _, p := range pending {
			if p.Arrival > now {
				if p.Arrival < next {
					next = p.Arrival
				}
				break // pending is arrival-sorted
			}
		}
		if next == vtime.Infinity {
			return nil, fmt.Errorf("scheduler: stalled with %d jobs pending", len(pending))
		}
		retire(next)
	}

	var makespan vtime.Time
	var waitSum, slowSum, coreSeconds, promiseSum float64
	for _, o := range out.Jobs {
		if o.Finish > makespan {
			makespan = o.Finish
		}
		waitSum += o.Wait().Seconds()
		rt := o.Job.Runtime.Seconds()
		if rt < 10 {
			rt = 10
		}
		slowSum += (o.Wait().Seconds() + o.Job.Runtime.Seconds()) / rt
		coreSeconds += float64(o.Job.Cores) * o.Job.Runtime.Seconds()
		promise := o.Job.Estimate.Seconds() - o.Job.Runtime.Seconds()
		if promise < 0 {
			promise = -promise
		}
		promiseSum += promise
	}
	n := float64(len(out.Jobs))
	out.Makespan = vtime.Duration(makespan)
	out.AvgWaitSeconds = waitSum / n
	out.AvgBoundedSlowdown = slowSum / n
	out.AvgPromiseErrorSeconds = promiseSum / n
	if makespan > 0 {
		out.Utilization = coreSeconds / (float64(totalCores) * makespan.Seconds())
	}
	return out, nil
}

// reservationTime is the earliest estimated instant at which need
// cores are free.
func reservationTime(active []running, free, need int) vtime.Time {
	ends := append([]running(nil), active...)
	sort.Slice(ends, func(i, j int) bool { return ends[i].estFinish < ends[j].estFinish })
	f := free
	for _, r := range ends {
		f += r.cores
		if f >= need {
			return r.estFinish
		}
	}
	return vtime.Infinity
}

// freeAt counts the cores believed free at instant t.
func freeAt(active []running, free int, t vtime.Time) int {
	f := free
	for _, r := range active {
		if r.estFinish <= t {
			f += r.cores
		}
	}
	return f
}
