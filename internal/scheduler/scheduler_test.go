package scheduler

import (
	"testing"
	"testing/quick"

	"pas2p/internal/vtime"
)

func sec(s float64) vtime.Duration { return vtime.FromSeconds(s) }

func TestValidation(t *testing.T) {
	if _, err := EASY(nil, 0); err == nil {
		t.Error("no cores should fail")
	}
	bad := []Job{{ID: 1, Cores: 9, Runtime: sec(1), Estimate: sec(1)}}
	if _, err := EASY(bad, 8); err == nil {
		t.Error("oversized job should fail")
	}
	bad = []Job{{ID: 1, Cores: 1, Runtime: 0, Estimate: sec(1)}}
	if _, err := EASY(bad, 8); err == nil {
		t.Error("zero runtime should fail")
	}
	res, err := EASY(nil, 8)
	if err != nil || len(res.Jobs) != 0 {
		t.Error("empty job list should schedule trivially")
	}
}

func TestSingleJob(t *testing.T) {
	res, err := EASY([]Job{{ID: 1, Cores: 4, Runtime: sec(100), Estimate: sec(100)}}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != sec(100) {
		t.Errorf("makespan = %v", res.Makespan)
	}
	if res.Jobs[0].Wait() != 0 {
		t.Error("lone job should start immediately")
	}
	if res.Utilization <= 0.49 || res.Utilization > 0.51 {
		t.Errorf("utilization = %.2f, want 0.5", res.Utilization)
	}
}

func TestFCFSOrder(t *testing.T) {
	jobs := []Job{
		{ID: 1, Cores: 8, Runtime: sec(100), Estimate: sec(100)},
		{ID: 2, Cores: 8, Runtime: sec(50), Estimate: sec(50)},
	}
	res, err := EASY(jobs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[0].Job.ID != 1 || res.Jobs[1].Job.ID != 2 {
		t.Error("jobs must run FCFS")
	}
	if res.Jobs[1].Start != vtime.Time(sec(100)) {
		t.Errorf("second job started at %v", res.Jobs[1].Start)
	}
}

func TestBackfillFillsHole(t *testing.T) {
	// Job 1 occupies 6 of 8 cores for 100 s. Job 2 (head of queue,
	// needs 8) must wait. Job 3 needs 2 cores for 50 s: it fits in the
	// hole and, by its estimate, ends before job 1 frees the cores —
	// classic EASY backfill.
	jobs := []Job{
		{ID: 1, Cores: 6, Runtime: sec(100), Estimate: sec(100)},
		{ID: 2, Arrival: 1, Cores: 8, Runtime: sec(30), Estimate: sec(30)},
		{ID: 3, Arrival: 2, Cores: 2, Runtime: sec(50), Estimate: sec(50)},
	}
	res, err := EASY(jobs, 8)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[int]JobOutcome{}
	for _, o := range res.Jobs {
		byID[o.Job.ID] = o
	}
	if byID[3].Start >= byID[2].Start {
		t.Errorf("job 3 should backfill ahead of job 2 (starts %v vs %v)", byID[3].Start, byID[2].Start)
	}
	// The backfill must not delay the head: job 2 starts when job 1
	// ends.
	if byID[2].Start != vtime.Time(sec(100)) {
		t.Errorf("head delayed to %v", byID[2].Start)
	}
}

func TestBackfillBlockedByEstimate(t *testing.T) {
	// Same scenario, but job 3's estimate says it would overrun the
	// reservation — it must NOT backfill even though its true runtime
	// would fit.
	jobs := []Job{
		{ID: 1, Cores: 6, Runtime: sec(100), Estimate: sec(100)},
		{ID: 2, Arrival: 1, Cores: 8, Runtime: sec(30), Estimate: sec(30)},
		{ID: 3, Arrival: 2, Cores: 4, Runtime: sec(50), Estimate: sec(500)},
	}
	res, err := EASY(jobs, 8)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[int]JobOutcome{}
	for _, o := range res.Jobs {
		byID[o.Job.ID] = o
	}
	if byID[3].Start < byID[2].Start {
		t.Error("overestimated job must not backfill ahead of the head")
	}
}

// TestAccurateEstimatesImproveSchedule is the paper's §1 claim: a
// stream of jobs scheduled with PAS2P-grade estimates (±3%) waits less
// than the same stream with classic inflated user estimates.
func TestAccurateEstimatesImproveSchedule(t *testing.T) {
	const cores = 64
	mkJobs := func(estimate func(i int, rt float64) float64) []Job {
		var jobs []Job
		for i := 0; i < 80; i++ {
			rt := float64(60 + (i*137)%600)
			jobs = append(jobs, Job{
				ID:       i,
				Arrival:  vtime.Time(sec(float64(i * 20))),
				Cores:    1 << uint(i%6), // 1..32
				Runtime:  sec(rt),
				Estimate: sec(estimate(i, rt)),
			})
		}
		return jobs
	}
	// Shortest-job backfilling is where estimate quality matters: the
	// policy sorts candidates by estimate, and inconsistent user
	// inflation (2x..8x) scrambles that order. (Under plain
	// arrival-order EASY, inflation is nearly free — the well-known
	// runtime-estimate paradox, Tsafrir et al. — so FCFS backfill is
	// not asserted on.)
	user, err := Schedule(mkJobs(func(i int, rt float64) float64 {
		return rt * float64(2+(i*31)%7)
	}), cores, BackfillShortest)
	if err != nil {
		t.Fatal(err)
	}
	pas2p, err := Schedule(mkJobs(func(i int, rt float64) float64 {
		// PAS2P: ±3% error.
		return rt * (1 + 0.03*float64(i%3-1))
	}), cores, BackfillShortest)
	if err != nil {
		t.Fatal(err)
	}
	// The robust, paper-supported claim (§1): the scheduler's beliefs
	// about when resources free up — the basis of queue plans and
	// reservations — are an order of magnitude more accurate with
	// PAS2P-grade estimates.
	if pas2p.AvgPromiseErrorSeconds*5 >= user.AvgPromiseErrorSeconds {
		t.Errorf("promise error should drop >5x: pas2p %.1fs vs user %.1fs",
			pas2p.AvgPromiseErrorSeconds, user.AvgPromiseErrorSeconds)
	}
	// Queueing metrics are logged, not asserted: under EASY, inflated
	// estimates widen the backfill window at no cost in a no-kill
	// model (the runtime-estimate paradox, Tsafrir et al.), so wait
	// and slowdown comparisons are workload-dependent.
	t.Logf("avg wait: pas2p %.1fs vs user %.1fs; slowdown: %.2f vs %.2f; promise err: %.1fs vs %.1fs",
		pas2p.AvgWaitSeconds, user.AvgWaitSeconds,
		pas2p.AvgBoundedSlowdown, user.AvgBoundedSlowdown,
		pas2p.AvgPromiseErrorSeconds, user.AvgPromiseErrorSeconds)
}

// Property: schedules never overlap more cores than exist, jobs never
// start before arrival, and every job runs exactly once.
func TestQuickScheduleInvariants(t *testing.T) {
	err := quick.Check(func(seed uint32) bool {
		n := int(seed%20) + 1
		var jobs []Job
		s := seed
		rnd := func(m uint32) uint32 { s = s*1664525 + 1013904223; return s % m }
		for i := 0; i < n; i++ {
			rt := float64(rnd(500) + 1)
			jobs = append(jobs, Job{
				ID:       i,
				Arrival:  vtime.Time(sec(float64(rnd(1000)))),
				Cores:    int(rnd(16)) + 1,
				Runtime:  sec(rt),
				Estimate: sec(rt * float64(rnd(4)+1)),
			})
		}
		res, err := EASY(jobs, 16)
		if err != nil {
			return false
		}
		if len(res.Jobs) != n {
			return false
		}
		// No overstep of capacity at any start instant.
		for _, o := range res.Jobs {
			if o.Start < o.Job.Arrival {
				return false
			}
			used := 0
			for _, p := range res.Jobs {
				if p.Start <= o.Start && o.Start < p.Finish {
					used += p.Job.Cores
				}
			}
			if used > 16 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Error(err)
	}
}
