// Package viz renders traces and signature executions as standalone
// SVG timelines (one lane per process, boxes for computation and
// communication, links for messages). The paper positions PAS2P as an
// alternative to heavyweight visualisation tools (§2: users should be
// able to analyse applications "without requiring visualization
// tools"); this package covers the small remaining need — looking at a
// trace — with a dependency-free renderer wired into the CLI.
package viz

import (
	"fmt"
	"io"

	"pas2p/internal/trace"
	"pas2p/internal/vtime"
)

// Options controls the rendering.
type Options struct {
	// Width is the drawing width in pixels (default 1200).
	Width int
	// LaneHeight is the per-process lane height (default 28).
	LaneHeight int
	// MaxEvents caps the number of events drawn (earliest first) so
	// huge traces stay viewable; 0 means 5000.
	MaxEvents int
	// From/To restrict the rendered physical-time window; zero values
	// mean the full span.
	From, To vtime.Time
	// ShowMessages draws send->receive links.
	ShowMessages bool
}

// DefaultOptions returns the standard rendering setup.
func DefaultOptions() Options {
	return Options{Width: 1200, LaneHeight: 28, MaxEvents: 5000, ShowMessages: true}
}

const (
	colorSend = "#2c7fb8"
	colorRecv = "#7fcdbb"
	colorColl = "#d95f0e"
	colorComp = "#eeeeee"
	colorLink = "#999999"
	colorText = "#333333"
)

// RenderTrace writes an SVG timeline of the trace.
func RenderTrace(w io.Writer, tr *trace.Trace, opts Options) error {
	if tr == nil || len(tr.Events) == 0 {
		return fmt.Errorf("viz: empty trace")
	}
	if opts.Width <= 0 {
		opts.Width = 1200
	}
	if opts.LaneHeight <= 0 {
		opts.LaneHeight = 28
	}
	if opts.MaxEvents <= 0 {
		opts.MaxEvents = 5000
	}

	// Establish the time window.
	var tMin, tMax vtime.Time
	first := true
	for i := range tr.Events {
		e := &tr.Events[i]
		if first || e.Enter < tMin {
			tMin = e.Enter
		}
		if first || e.Exit > tMax {
			tMax = e.Exit
		}
		first = false
	}
	if opts.From != 0 || opts.To != 0 {
		if opts.From > tMin {
			tMin = opts.From
		}
		if opts.To != 0 && opts.To < tMax {
			tMax = opts.To
		}
	}
	if tMax <= tMin {
		return fmt.Errorf("viz: empty time window")
	}
	span := float64(tMax - tMin)

	marginL, marginT := 70, 30
	plotW := opts.Width - marginL - 20
	height := marginT + tr.Procs*opts.LaneHeight + 40
	xOf := func(t vtime.Time) float64 {
		return float64(marginL) + float64(t-tMin)/span*float64(plotW)
	}
	yOf := func(p int32) int { return marginT + int(p)*opts.LaneHeight }

	fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="11">`+"\n",
		opts.Width, height)
	fmt.Fprintf(w, `<text x="%d" y="18" fill="%s">%s — %d processes, %d events, span %v</text>`+"\n",
		marginL, colorText, xmlEscape(tr.AppName), tr.Procs, len(tr.Events), vtime.Duration(tMax-tMin))

	// Lanes.
	for p := 0; p < tr.Procs; p++ {
		y := yOf(int32(p))
		fmt.Fprintf(w, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#dddddd"/>`+"\n",
			marginL, y+opts.LaneHeight/2, marginL+plotW, y+opts.LaneHeight/2)
		fmt.Fprintf(w, `<text x="8" y="%d" fill="%s">P%d</text>`+"\n", y+opts.LaneHeight/2+4, colorText, p)
	}

	// Events (and compute gaps) in global order, capped.
	drawn := 0
	type sendPos struct {
		x float64
		y int
	}
	sendAt := map[[2]int64]sendPos{}
	boxH := opts.LaneHeight * 2 / 3
	for i := range tr.Events {
		if drawn >= opts.MaxEvents {
			break
		}
		e := &tr.Events[i]
		if e.Exit < tMin || e.Enter > tMax {
			continue
		}
		drawn++
		y := yOf(e.Process) + (opts.LaneHeight-boxH)/2
		// Compute block before the event.
		if e.ComputeBefore > 0 {
			cx0 := xOf(e.Enter.Add(-e.ComputeBefore))
			cx1 := xOf(e.Enter)
			if cx1 > cx0 {
				fmt.Fprintf(w, `<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s"/>`+"\n",
					cx0, y, cx1-cx0, boxH, colorComp)
			}
		}
		x0, x1 := xOf(e.Enter), xOf(e.Exit)
		if x1-x0 < 1 {
			x1 = x0 + 1
		}
		color := colorColl
		switch e.Kind {
		case trace.Send:
			color = colorSend
			sendAt[[2]int64{e.RelA, e.RelB}] = sendPos{x: x0, y: y + boxH/2}
		case trace.Recv:
			color = colorRecv
		}
		fmt.Fprintf(w, `<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s"><title>%s P%d #%d peer=%d tag=%d %dB [%v..%v]</title></rect>`+"\n",
			x0, y, x1-x0, boxH, color,
			e.Kind, e.Process, e.Number, e.Peer, e.Tag, e.Size, e.Enter, e.Exit)
		if opts.ShowMessages && e.Kind == trace.Recv {
			if sp, ok := sendAt[[2]int64{e.RelA, e.RelB}]; ok {
				fmt.Fprintf(w, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="%s" stroke-width="0.6"/>`+"\n",
					sp.x, sp.y, x1, y+boxH/2, colorLink)
			}
		}
	}

	// Legend and axis.
	ly := marginT + tr.Procs*opts.LaneHeight + 16
	legend := []struct {
		color, label string
	}{{colorSend, "send"}, {colorRecv, "recv"}, {colorColl, "collective"}, {colorComp, "compute"}}
	lx := marginL
	for _, l := range legend {
		fmt.Fprintf(w, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`+"\n", lx, ly, l.color)
		fmt.Fprintf(w, `<text x="%d" y="%d" fill="%s">%s</text>`+"\n", lx+14, ly+9, colorText, l.label)
		lx += 14 + 9*len(l.label) + 18
	}
	fmt.Fprintf(w, `<text x="%d" y="%d" fill="%s">t0=%v  t1=%v</text>`+"\n",
		lx+10, ly+9, colorText, tMin, tMax)
	fmt.Fprintln(w, `</svg>`)
	if drawn == 0 {
		return fmt.Errorf("viz: no events inside the window")
	}
	return nil
}

func xmlEscape(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '&':
			out = append(out, "&amp;"...)
		case '<':
			out = append(out, "&lt;"...)
		case '>':
			out = append(out, "&gt;"...)
		case '"':
			out = append(out, "&quot;"...)
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}
