package viz

import (
	"bytes"
	"strings"
	"testing"

	"pas2p/internal/machine"
	"pas2p/internal/mpi"
	"pas2p/internal/trace"
	"pas2p/internal/vtime"
)

func sampleTrace(t testing.TB) *trace.Trace {
	t.Helper()
	d, err := machine.NewDeployment(machine.ClusterA(), 4, machine.MapBlock)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mpi.Run(mpi.App{Name: "viz<app>", Procs: 4, Body: func(c *mpi.Comm) {
		n := c.Size()
		for i := 0; i < 5; i++ {
			c.Compute(1e5)
			c.SendrecvN((c.Rank()+1)%n, 0, 2048, (c.Rank()+n-1)%n, 0)
			c.Allreduce([]float64{1}, mpi.Sum)
		}
	}}, mpi.RunConfig{Deployment: d, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	return res.Trace
}

func TestRenderTraceProducesSVG(t *testing.T) {
	tr := sampleTrace(t)
	var buf bytes.Buffer
	if err := RenderTrace(&buf, tr, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	for _, want := range []string{"<svg", "</svg>", "send", "recv", "collective", "P0", "P3"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// The app name contains XML metacharacters; they must be escaped.
	if strings.Contains(svg, "viz<app>") {
		t.Error("app name not XML-escaped")
	}
	if !strings.Contains(svg, "viz&lt;app&gt;") {
		t.Error("escaped app name missing")
	}
	// Boxes for all three event kinds plus message links.
	if strings.Count(svg, "<rect") < 20 {
		t.Errorf("suspiciously few rects: %d", strings.Count(svg, "<rect"))
	}
	if strings.Count(svg, "<line") < 10 {
		t.Error("expected message links and lanes")
	}
}

func TestRenderTraceValidation(t *testing.T) {
	if err := RenderTrace(&bytes.Buffer{}, nil, DefaultOptions()); err == nil {
		t.Error("nil trace should fail")
	}
	tr := sampleTrace(t)
	opts := DefaultOptions()
	opts.From = vtime.Time(1e18)
	opts.To = vtime.Time(2e18)
	if err := RenderTrace(&bytes.Buffer{}, tr, opts); err == nil {
		t.Error("empty window should fail")
	}
}

func TestRenderTraceWindow(t *testing.T) {
	tr := sampleTrace(t)
	var full, half bytes.Buffer
	if err := RenderTrace(&full, tr, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.To = vtime.Time(tr.AET / 2)
	if err := RenderTrace(&half, tr, opts); err != nil {
		t.Fatal(err)
	}
	if half.Len() >= full.Len() {
		t.Error("windowed render should draw fewer elements")
	}
}

func TestRenderTraceMaxEvents(t *testing.T) {
	tr := sampleTrace(t)
	opts := DefaultOptions()
	opts.MaxEvents = 3
	var buf bytes.Buffer
	if err := RenderTrace(&buf, tr, opts); err != nil {
		t.Fatal(err)
	}
	// 3 event boxes + compute blocks + legend rects only.
	if strings.Count(buf.String(), "<title>") != 3 {
		t.Errorf("cap not applied: %d boxes", strings.Count(buf.String(), "<title>"))
	}
}

func TestXMLEscape(t *testing.T) {
	if got := xmlEscape(`a<b>&"c`); got != "a&lt;b&gt;&amp;&quot;c" {
		t.Errorf("xmlEscape = %q", got)
	}
}
