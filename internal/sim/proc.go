package sim

import (
	"pas2p/internal/network"
	"pas2p/internal/vtime"
)

// errAborted is the panic value used to unwind rank goroutines when
// the engine aborts a run.
var errAborted = &struct{ s string }{"sim: run aborted"}

// Proc is a rank's handle onto the simulation. All methods must be
// called from the rank's own goroutine (the Body function); they block
// in virtual time as the corresponding MPI operations would.
type Proc struct {
	eng *Engine
	st  *procState
}

// Rank returns this process's rank id.
func (p *Proc) Rank() int { return p.st.rank }

// Size returns the number of ranks in the run.
func (p *Proc) Size() int { return p.eng.n }

// Now returns the rank's current virtual clock.
func (p *Proc) Now() vtime.Time { return p.st.clock }

// await parks the goroutine until the scheduler resumes it; the
// result payload travels in the rank's pending slot, written strictly
// before the resume signal.
func (p *Proc) await() result {
	<-p.st.resume
	res := p.st.pending
	p.st.pending = result{}
	if res.aborted {
		panic(errAborted)
	}
	return res
}

// call applies one operation directly on the rank's own goroutine —
// legal because exactly one goroutine runs at a time, so the rank has
// exclusive access to the engine while scheduled. Only when the
// operation blocks does the rank hand control back to the scheduler
// and park; non-blocking operations cost no channel handoff at all.
func (p *Proc) call(req request) result {
	res, blocked := p.eng.handle(p.st, req)
	if !blocked {
		return res
	}
	p.eng.yieldCh <- struct{}{}
	return p.await()
}

// Advance consumes virtual compute time (already converted by the
// caller via the deployment's ComputeTime, or a raw duration for
// overheads). The rank's mode may scale or nullify it.
func (p *Proc) Advance(d vtime.Duration) {
	if d <= 0 {
		return
	}
	p.call(request{kind: opAdvance, dur: d})
}

// SetMode changes how this rank's subsequent operations are costed.
func (p *Proc) SetMode(m Mode) {
	p.call(request{kind: opSetMode, mode: m})
}

// Mode returns the rank's current costing mode.
func (p *Proc) Mode() Mode { return p.st.mode }

// Send transmits size bytes (with an optional payload of real data) to
// dst and blocks until the send completes locally (eager) or the
// transfer finishes (rendezvous). It reports the operation's timing.
func (p *Proc) Send(dst, tag, size int, payload any) PtPInfo {
	res := p.call(request{kind: opSend, peer: dst, tag: tag, size: size, payload: payload})
	return res.ptp
}

// Recv blocks until a matching message (src/tag may be AnySource /
// AnyTag) is delivered, returning its metadata and payload.
func (p *Proc) Recv(src, tag int) PtPInfo {
	res := p.call(request{kind: opRecv, peer: src, tag: tag})
	return res.ptp
}

// Isend starts a send and returns a request id to pass to Wait.
func (p *Proc) Isend(dst, tag, size int, payload any) int {
	res := p.call(request{kind: opIsend, peer: dst, tag: tag, size: size, payload: payload})
	return res.reqID
}

// Irecv posts a receive and returns a request id to pass to Wait.
func (p *Proc) Irecv(src, tag int) int {
	res := p.call(request{kind: opIrecv, peer: src, tag: tag})
	return res.reqID
}

// Wait blocks until all given requests complete and returns their
// timings in argument order.
func (p *Proc) Wait(ids ...int) []PtPInfo {
	if len(ids) == 0 {
		return nil
	}
	res := p.call(request{kind: opWait, waitIDs: ids})
	if res.ptps == nil {
		// Singleton waits travel in res.ptp so the engine's hot path
		// never allocates; materialise the slice client-side.
		return []PtPInfo{res.ptp}
	}
	return res.ptps
}

// TimelineOn reports whether this run records a timeline, so callers
// can skip building annotation strings that would be dropped.
func (p *Proc) TimelineOn() bool { return p.eng.tl != nil }

// Annotate emits an instant event on this rank's timeline track at the
// current virtual time; a no-op when no timeline is recording. Safe to
// call from the rank's own goroutine: the timeline is internally
// locked and only one goroutine runs at a time anyway.
func (p *Proc) Annotate(name string) {
	p.eng.instant(p.st.rank, name, p.st.clock)
}

// Collective executes one synchronising collective operation over the
// given members (which must include the caller). ctx distinguishes
// communicators; every member must call collectives on a ctx in the
// same order. The returned CollInfo carries all members' payload
// contributions so the caller can apply the operation's data
// semantics.
func (p *Proc) Collective(op network.CollectiveOp, ctx int, members []int, root, size int, payload any) CollInfo {
	res := p.call(request{
		kind: opCollective, collOp: op, collCtx: ctx,
		collMembers: members, collRoot: root, size: size, payload: payload,
	})
	return res.coll
}
