package sim

import (
	"fmt"

	"pas2p/internal/network"
	"pas2p/internal/vtime"
)

// handleCollective implements synchronising collectives. Every member
// of the communicator must call the same operation in the same program
// order; the operation completes for all members at
// max(arrival clocks) + algorithmic cost.
func (e *Engine) handleCollective(ps *procState, req request) (result, bool) {
	members := req.collMembers
	idx := -1
	for i, m := range members {
		if m == ps.rank {
			idx = i
		}
		if m < 0 || m >= e.n {
			e.err = fmt.Errorf("rank %d: collective with invalid member %d", ps.rank, m)
			return result{}, true
		}
	}
	if idx < 0 {
		e.err = fmt.Errorf("rank %d: called a collective it is not a member of", ps.rank)
		return result{}, true
	}

	seq := ps.collSeq[req.collCtx]
	ps.collSeq[req.collCtx] = seq + 1
	key := collKey{ctx: req.collCtx, seq: seq}

	cs := e.colls[key]
	if cs == nil {
		cs = &collState{
			op:       int(req.collOp),
			members:  members,
			root:     req.collRoot,
			size:     req.size,
			arrivals: make([]vtime.Time, len(members)),
			payloads: make([]any, len(members)),
			freeAll:  true,
		}
		e.colls[key] = cs
	} else {
		if cs.op != int(req.collOp) || cs.root != req.collRoot ||
			len(cs.members) != len(members) {
			e.err = fmt.Errorf("rank %d: collective mismatch at ctx %d seq %d: %v vs %v",
				ps.rank, req.collCtx, seq, network.CollectiveOp(cs.op), req.collOp)
			return result{}, true
		}
		if req.size > cs.size {
			cs.size = req.size
		}
	}

	cs.arrived++
	cs.arrivals[idx] = ps.clock
	cs.payloads[idx] = req.payload
	if ps.clock > cs.tmax {
		cs.tmax = ps.clock
	}
	if !ps.mode.CommFree {
		cs.freeAll = false
	}

	if cs.arrived < len(members) {
		ps.status = stStuck
		ps.block = blockInfo{kind: bkColl, collOp: req.collOp, collCtx: req.collCtx, collSeq: seq}
		return result{}, true
	}

	// Last arrival: cost the operation and release everyone.
	delete(e.colls, key)
	e.stats.Collectives++
	ends := make([]vtime.Time, len(members))
	if cs.freeAll {
		for i := range ends {
			ends[i] = cs.tmax
		}
	} else if e.cfg.AlgorithmicCollectives {
		rootIdx := 0
		for i, m := range members {
			if m == cs.root {
				rootIdx = i
			}
		}
		offsets := network.CollectiveSchedule(req.collOp, members, rootIdx, cs.size,
			func(a, b int) network.Params { return e.cfg.Deployment.Path(a, b) })
		for i := range ends {
			ends[i] = cs.tmax.Add(offsets[i])
		}
	} else {
		path := e.cfg.Deployment.CollectivePath(members)
		end := cs.tmax.Add(path.CollectiveCost(req.collOp, len(members), cs.size))
		for i := range ends {
			ends[i] = end
		}
	}

	if e.tl != nil && !cs.freeAll {
		opName := req.collOp.String()
		for i, m := range members {
			e.slice(m, opName, "collective", cs.arrivals[i], ends[i])
		}
	}

	var mine CollInfo
	for i, m := range members {
		info := CollInfo{
			Op: req.collOp, Ctx: req.collCtx, Seq: seq,
			Start: cs.arrivals[i], End: ends[i],
			Root: cs.root, Size: cs.size,
			Members: members, Payloads: cs.payloads,
		}
		mp := e.procs[m]
		if m == ps.rank {
			ps.clock = ends[i]
			mine = info
			continue
		}
		mp.pending = result{now: ends[i], coll: info}
		mp.clock = ends[i]
		mp.wake = ends[i]
		mp.status = stReady
		mp.block = blockInfo{}
		e.pushReady(mp)
	}
	return result{now: ps.clock, coll: mine}, false
}
