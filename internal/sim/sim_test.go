package sim

import (
	"fmt"
	"strings"
	"testing"

	"pas2p/internal/machine"
	"pas2p/internal/network"
	"pas2p/internal/vtime"
)

// testDeployment returns a small deployment on the cluster A model.
func testDeployment(t testing.TB, ranks int) *machine.Deployment {
	t.Helper()
	d, err := machine.NewDeployment(machine.ClusterA(), ranks, machine.MapBlock)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func run(t testing.TB, ranks int, body func(p *Proc)) Result {
	t.Helper()
	res, err := Run(Config{Deployment: testDeployment(t, ranks), Body: body, Name: "test"})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSingleRankCompute(t *testing.T) {
	res := run(t, 1, func(p *Proc) {
		p.Advance(vtime.Millisecond)
		p.Advance(2 * vtime.Millisecond)
	})
	if res.Finish != vtime.Time(3*vtime.Millisecond) {
		t.Errorf("finish = %v, want 3ms", res.Finish)
	}
}

func TestPingPong(t *testing.T) {
	var recvInfo PtPInfo
	res := run(t, 2, func(p *Proc) {
		switch p.Rank() {
		case 0:
			p.Send(1, 7, 1024, "hello")
			info := p.Recv(1, 8)
			if info.Payload.(string) != "world" {
				t.Errorf("payload = %v", info.Payload)
			}
		case 1:
			info := p.Recv(0, 7)
			recvInfo = info
			if info.Payload.(string) != "hello" {
				t.Errorf("payload = %v", info.Payload)
			}
			p.Send(0, 8, 1024, "world")
		}
	})
	if recvInfo.Src != 0 || recvInfo.Tag != 7 || recvInfo.Size != 1024 {
		t.Errorf("recv info = %+v", recvInfo)
	}
	if recvInfo.End <= recvInfo.Start {
		t.Error("recv must take positive time")
	}
	if res.Messages != 2 || res.Bytes != 2048 {
		t.Errorf("stats = %d msgs %d bytes", res.Messages, res.Bytes)
	}
	if res.Finish <= 0 {
		t.Error("finish must be positive")
	}
}

func TestMessageLatencyIntraVsInter(t *testing.T) {
	// Ranks 0,1 share a node on cluster A (2 cores/node); ranks 0,2 do
	// not. The same exchange must take longer across the interconnect.
	timing := func(dst int) vtime.Time {
		var end vtime.Time
		run(t, 4, func(p *Proc) {
			switch p.Rank() {
			case 0:
				p.Send(dst, 0, 4096, nil)
			case dst:
				end = p.Recv(0, 0).End
			}
		})
		return end
	}
	if intra, inter := timing(1), timing(2); intra >= inter {
		t.Errorf("intra-node %v should beat inter-node %v", intra, inter)
	}
}

func TestNonOvertakingSameTag(t *testing.T) {
	// Messages with the same (src, tag) must be received in send order.
	run(t, 2, func(p *Proc) {
		if p.Rank() == 0 {
			for i := 0; i < 5; i++ {
				p.Send(1, 3, 64, i)
			}
		} else {
			for i := 0; i < 5; i++ {
				got := p.Recv(0, 3).Payload.(int)
				if got != i {
					t.Errorf("message %d arrived out of order: %d", i, got)
				}
			}
		}
	})
}

func TestTagSelectivity(t *testing.T) {
	// A receive for tag 2 must skip the earlier tag-1 message.
	run(t, 2, func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 1, 64, "one")
			p.Send(1, 2, 64, "two")
		} else {
			if got := p.Recv(0, 2).Payload.(string); got != "two" {
				t.Errorf("tag 2 recv got %q", got)
			}
			if got := p.Recv(0, 1).Payload.(string); got != "one" {
				t.Errorf("tag 1 recv got %q", got)
			}
		}
	})
}

func TestAnyTagReceivesInOrder(t *testing.T) {
	run(t, 2, func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 5, 64, "a")
			p.Send(1, 9, 64, "b")
		} else {
			first := p.Recv(0, AnyTag)
			second := p.Recv(0, AnyTag)
			if first.Tag != 5 || second.Tag != 9 {
				t.Errorf("tags %d,%d; want 5,9", first.Tag, second.Tag)
			}
		}
	})
}

func TestAnySourceMasterWorker(t *testing.T) {
	// A master consumes results from workers via wildcard receives.
	const workers = 7
	counts := make([]int, workers+1)
	run(t, workers+1, func(p *Proc) {
		if p.Rank() == 0 {
			for i := 0; i < workers; i++ {
				info := p.Recv(AnySource, 1)
				counts[info.Src]++
			}
		} else {
			p.Advance(vtime.Duration(p.Rank()) * vtime.Microsecond)
			p.Send(0, 1, 128, p.Rank())
		}
	})
	for w := 1; w <= workers; w++ {
		if counts[w] != 1 {
			t.Errorf("worker %d delivered %d messages", w, counts[w])
		}
	}
}

func TestAnySourcePrefersEarliestArrival(t *testing.T) {
	// Worker 2 computes less and therefore sends earlier; the wildcard
	// receive must pick it first.
	var first int
	run(t, 3, func(p *Proc) {
		switch p.Rank() {
		case 0:
			first = p.Recv(AnySource, 0).Src
			p.Recv(AnySource, 0)
		case 1:
			p.Advance(10 * vtime.Millisecond)
			p.Send(0, 0, 64, nil)
		case 2:
			p.Advance(1 * vtime.Millisecond)
			p.Send(0, 0, 64, nil)
		}
	})
	if first != 2 {
		t.Errorf("first wildcard match = rank %d, want 2", first)
	}
}

func TestRendezvousBlocksUntilRecv(t *testing.T) {
	// A message above the eager limit cannot complete before the
	// receiver posts; the sender's completion must reflect the delay.
	big := machine.ClusterA().Interconnect.EagerLimit + 1
	var senderEnd vtime.Time
	run(t, 4, func(p *Proc) {
		switch p.Rank() {
		case 0:
			info := p.Send(2, 0, big, nil)
			senderEnd = info.End
		case 2:
			p.Advance(50 * vtime.Millisecond)
			p.Recv(0, 0)
		}
	})
	if senderEnd < vtime.Time(50*vtime.Millisecond) {
		t.Errorf("rendezvous sender finished at %v, before the receive was posted", senderEnd)
	}
}

func TestEagerSenderDoesNotBlock(t *testing.T) {
	var senderEnd vtime.Time
	run(t, 4, func(p *Proc) {
		switch p.Rank() {
		case 0:
			senderEnd = p.Send(2, 0, 1024, nil).End
		case 2:
			p.Advance(time50())
			p.Recv(0, 0)
		}
	})
	if senderEnd >= vtime.Time(time50()) {
		t.Errorf("eager sender finished at %v, should not wait for receiver", senderEnd)
	}
}

func time50() vtime.Duration { return 50 * vtime.Millisecond }

func TestIsendIrecvWaitall(t *testing.T) {
	// Symmetric neighbour exchange that would deadlock with blocking
	// rendezvous sends.
	big := machine.ClusterA().Interconnect.EagerLimit * 2
	run(t, 4, func(p *Proc) {
		peer := p.Rank() ^ 2 // 0<->2, 1<->3: cross-node pairs
		r := p.Irecv(peer, 0)
		s := p.Isend(peer, 0, big, p.Rank())
		infos := p.Wait(r, s)
		if got := infos[0].Payload.(int); got != peer {
			t.Errorf("rank %d received %d, want %d", p.Rank(), got, peer)
		}
	})
}

func TestWaitEmptyAndUnknown(t *testing.T) {
	run(t, 1, func(p *Proc) {
		if got := p.Wait(); got != nil {
			t.Errorf("empty wait returned %v", got)
		}
	})
	_, err := Run(Config{Deployment: testDeployment(t, 1), Name: "bad-wait",
		Body: func(p *Proc) { p.Wait(42) }})
	if err == nil || !strings.Contains(err.Error(), "unknown request") {
		t.Errorf("wait on unknown request: err = %v", err)
	}
}

func TestCollectiveBarrierSynchronises(t *testing.T) {
	ends := make([]vtime.Time, 4)
	run(t, 4, func(p *Proc) {
		members := []int{0, 1, 2, 3}
		p.Advance(vtime.Duration(p.Rank()+1) * vtime.Millisecond)
		info := p.Collective(network.Barrier, 0, members, 0, 0, nil)
		ends[p.Rank()] = info.End
	})
	for r := 1; r < 4; r++ {
		if ends[r] != ends[0] {
			t.Errorf("barrier end differs: rank %d at %v vs %v", r, ends[r], ends[0])
		}
	}
	if ends[0] < vtime.Time(4*vtime.Millisecond) {
		t.Errorf("barrier completed at %v, before slowest arrival", ends[0])
	}
}

func TestCollectivePayloadGather(t *testing.T) {
	run(t, 4, func(p *Proc) {
		members := []int{0, 1, 2, 3}
		info := p.Collective(network.Allgather, 0, members, 0, 8, p.Rank()*10)
		for i, pl := range info.Payloads {
			if pl.(int) != i*10 {
				t.Errorf("payload[%d] = %v, want %d", i, pl, i*10)
			}
		}
	})
}

func TestCollectiveSubsetMembers(t *testing.T) {
	// Only even ranks join; odd ranks keep working independently.
	run(t, 4, func(p *Proc) {
		if p.Rank()%2 == 0 {
			p.Collective(network.Allreduce, 3, []int{0, 2}, 0, 64, nil)
		} else {
			p.Advance(vtime.Microsecond)
		}
	})
}

func TestCollectiveMismatchFails(t *testing.T) {
	_, err := Run(Config{Deployment: testDeployment(t, 2), Name: "mismatch",
		Body: func(p *Proc) {
			members := []int{0, 1}
			if p.Rank() == 0 {
				p.Collective(network.Bcast, 0, members, 0, 8, nil)
			} else {
				p.Collective(network.Allreduce, 0, members, 0, 8, nil)
			}
		}})
	if err == nil || !strings.Contains(err.Error(), "collective mismatch") {
		t.Errorf("err = %v, want collective mismatch", err)
	}
}

func TestCollectiveNonMemberFails(t *testing.T) {
	_, err := Run(Config{Deployment: testDeployment(t, 2), Name: "nonmember",
		Body: func(p *Proc) {
			if p.Rank() == 0 {
				p.Collective(network.Bcast, 0, []int{1}, 1, 8, nil)
			}
		}})
	if err == nil {
		t.Error("expected error for non-member collective call")
	}
}

func TestDeadlockDetection(t *testing.T) {
	_, err := Run(Config{Deployment: testDeployment(t, 2), Name: "dl",
		Body: func(p *Proc) {
			p.Recv(1-p.Rank(), 0) // both wait, nobody sends
		}})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v, want deadlock", err)
	}
	if !strings.Contains(err.Error(), "rank 0") || !strings.Contains(err.Error(), "rank 1") {
		t.Errorf("deadlock report should list both ranks: %v", err)
	}
}

func TestRendezvousMutualSendDeadlocks(t *testing.T) {
	big := machine.ClusterA().Interconnect.EagerLimit + 1
	_, err := Run(Config{Deployment: testDeployment(t, 4), Name: "rdvdl",
		Body: func(p *Proc) {
			if p.Rank() >= 2 {
				return
			}
			peer := 1 - p.Rank()
			_ = peer
			// Cross-node pair 0<->2 would be needed for rendezvous;
			// use ranks 0 and 1 via interconnect? They share a node,
			// so force a big intra-node message too.
			bigIntra := machine.ClusterA().IntraNode.EagerLimit + 1
			if bigIntra < big {
				bigIntra = big
			}
			p.Send(1-p.Rank(), 0, bigIntra, nil)
			p.Recv(1-p.Rank(), 0)
		}})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("mutual rendezvous sends should deadlock, got %v", err)
	}
}

func TestPanicPropagates(t *testing.T) {
	_, err := Run(Config{Deployment: testDeployment(t, 2), Name: "boom",
		Body: func(p *Proc) {
			if p.Rank() == 1 {
				panic("kaboom")
			}
			p.Recv(1, 0)
		}})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Errorf("err = %v, want panic propagation", err)
	}
}

func TestInvalidPeerFails(t *testing.T) {
	for _, body := range []func(p *Proc){
		func(p *Proc) { p.Send(99, 0, 0, nil) },
		func(p *Proc) { p.Recv(99, 0) },
		func(p *Proc) { p.Send(0, 0, -1, nil) },
	} {
		if _, err := Run(Config{Deployment: testDeployment(t, 1), Name: "bad", Body: body}); err == nil {
			t.Error("expected validation error")
		}
	}
}

func TestNilConfig(t *testing.T) {
	if _, err := Run(Config{Name: "nil"}); err == nil {
		t.Error("nil deployment should fail")
	}
	if _, err := Run(Config{Deployment: testDeployment(t, 1), Name: "nil"}); err == nil {
		t.Error("nil body should fail")
	}
}

func TestDeterminism(t *testing.T) {
	// An irregular program must produce bit-identical results on
	// repeated runs.
	body := func(p *Proc) {
		n := p.Size()
		me := p.Rank()
		for iter := 0; iter < 20; iter++ {
			p.Advance(vtime.Duration((me*7+iter*13)%50+1) * vtime.Microsecond)
			if me == 0 {
				for i := 1; i < n; i++ {
					p.Recv(AnySource, 0)
				}
				for i := 1; i < n; i++ {
					p.Send(i, 1, 256, iter)
				}
			} else {
				p.Send(0, 0, 256, me)
				p.Recv(0, 1)
			}
			p.Collective(network.Barrier, 0, members(n), 0, 0, nil)
		}
	}
	var first Result
	for i := 0; i < 3; i++ {
		res := run(t, 6, body)
		if i == 0 {
			first = res
			continue
		}
		if res.Finish != first.Finish || res.Messages != first.Messages || res.Bytes != first.Bytes {
			t.Fatalf("run %d differs: %+v vs %+v", i, res, first)
		}
		for r := range res.RankFinish {
			if res.RankFinish[r] != first.RankFinish[r] {
				t.Fatalf("rank %d finish differs", r)
			}
		}
	}
}

func members(n int) []int {
	m := make([]int, n)
	for i := range m {
		m[i] = i
	}
	return m
}

func TestClocksMonotone(t *testing.T) {
	run(t, 3, func(p *Proc) {
		last := p.Now()
		check := func() {
			if now := p.Now(); now < last {
				t.Errorf("rank %d clock went backwards: %v -> %v", p.Rank(), last, now)
			} else {
				last = now
			}
		}
		for i := 0; i < 10; i++ {
			p.Advance(vtime.Microsecond)
			check()
			if p.Rank() == 0 {
				p.Send(1, 0, 64, nil)
			} else if p.Rank() == 1 {
				p.Recv(0, 0)
			}
			check()
			p.Collective(network.Barrier, 0, []int{0, 1, 2}, 0, 0, nil)
			check()
		}
	})
}

func TestFreeModeCostsNothing(t *testing.T) {
	baseline := run(t, 2, exchangeBody(Mode{ComputeScale: 1}))
	free := run(t, 2, exchangeBody(Mode{ComputeScale: 0, CommFree: true}))
	if free.Finish != 0 {
		t.Errorf("free-mode run took %v, want 0", free.Finish)
	}
	if baseline.Finish == 0 {
		t.Error("baseline must take time")
	}
	if free.Messages != baseline.Messages {
		t.Error("free mode must still deliver every message")
	}
}

func exchangeBody(m Mode) func(p *Proc) {
	return func(p *Proc) {
		p.SetMode(m)
		for i := 0; i < 5; i++ {
			p.Advance(vtime.Millisecond)
			if p.Rank() == 0 {
				p.Send(1, 0, 1024, i)
				p.Recv(1, 1)
			} else {
				if got := p.Recv(0, 0).Payload.(int); got != i {
					panic(fmt.Sprintf("free mode corrupted data: %d != %d", got, i))
				}
				p.Send(0, 1, 1024, i)
			}
			p.Collective(network.Barrier, 0, []int{0, 1}, 0, 0, nil)
		}
	}
}

func TestColdModeSlowsCompute(t *testing.T) {
	norm := run(t, 1, func(p *Proc) { p.Advance(vtime.Millisecond) })
	cold := run(t, 1, func(p *Proc) {
		p.SetMode(Mode{ComputeScale: 2.5})
		p.Advance(vtime.Millisecond)
	})
	if cold.Finish != vtime.Time(2500*vtime.Microsecond) {
		t.Errorf("cold finish = %v, want 2.5ms", cold.Finish)
	}
	if norm.Finish != vtime.Time(vtime.Millisecond) {
		t.Errorf("normal finish = %v", norm.Finish)
	}
}

func TestModeTransitionMidRun(t *testing.T) {
	// Skip a prefix in free mode, then measure a phase normally: the
	// finish time must reflect only the measured part.
	res := run(t, 2, func(p *Proc) {
		p.SetMode(Mode{ComputeScale: 0, CommFree: true})
		for i := 0; i < 10; i++ {
			p.Advance(vtime.Millisecond)
			if p.Rank() == 0 {
				p.Send(1, 0, 128, nil)
			} else {
				p.Recv(0, 0)
			}
		}
		p.SetMode(NormalMode)
		p.Advance(vtime.Millisecond)
	})
	if res.Finish < vtime.Time(vtime.Millisecond) ||
		res.Finish > vtime.Time(2*vtime.Millisecond) {
		t.Errorf("finish = %v, want ~1ms (only the measured tail)", res.Finish)
	}
}

func TestSendSeqIdentifiesMessages(t *testing.T) {
	// The receiver sees per-sender sequence numbers 0,1,2,... which the
	// trace layer uses as the send<->recv relation.
	run(t, 2, func(p *Proc) {
		if p.Rank() == 0 {
			for i := 0; i < 3; i++ {
				info := p.Send(1, 0, 64, nil)
				if info.SendSeq != int64(i) {
					t.Errorf("send %d has seq %d", i, info.SendSeq)
				}
			}
		} else {
			for i := 0; i < 3; i++ {
				info := p.Recv(0, 0)
				if info.SendSeq != int64(i) {
					t.Errorf("recv %d has seq %d", i, info.SendSeq)
				}
			}
		}
	})
}

func TestOversubscriptionSlowsFinish(t *testing.T) {
	body := func(p *Proc) {
		p.Advance(10 * vtime.Millisecond)
	}
	d128, _ := machine.NewDeployment(machine.ClusterA(), 128, machine.MapBlock)
	d256, _ := machine.NewDeployment(machine.ClusterA(), 256, machine.MapBlock)
	r128, err := Run(Config{Deployment: d128, Body: func(p *Proc) {
		p.Advance(machine.ClusterA().IntraNode.Latency) // noop warm
		body(p)
	}, Name: "128"})
	if err != nil {
		t.Fatal(err)
	}
	r256, err := Run(Config{Deployment: d256, Body: body, Name: "256"})
	if err != nil {
		t.Fatal(err)
	}
	// Advance passes raw durations, so identical finishes here; the
	// compute scaling happens in the mpi layer via ComputeTime. This
	// test documents that Advance is unscaled by deployment.
	if r256.Finish != vtime.Time(10*vtime.Millisecond) {
		t.Errorf("advance should be raw: %v", r256.Finish)
	}
	_ = r128
}

func TestSelfSendEager(t *testing.T) {
	run(t, 1, func(p *Proc) {
		p.Send(0, 0, 64, "self")
		if got := p.Recv(0, 0).Payload.(string); got != "self" {
			t.Errorf("self message = %q", got)
		}
	})
}

func TestManyRanksStress(t *testing.T) {
	// A ring exchange over 64 ranks, several iterations.
	const n = 64
	res := run(t, n, func(p *Proc) {
		me := p.Rank()
		right := (me + 1) % n
		left := (me + n - 1) % n
		for i := 0; i < 10; i++ {
			p.Advance(10 * vtime.Microsecond)
			r := p.Irecv(left, 0)
			s := p.Isend(right, 0, 512, me)
			p.Wait(r, s)
			p.Collective(network.Allreduce, 0, members(n), 0, 8, float64(me))
		}
	})
	if res.Messages != n*10 {
		t.Errorf("messages = %d, want %d", res.Messages, n*10)
	}
	if res.Collectives != 10 {
		t.Errorf("collectives = %d, want 10", res.Collectives)
	}
}

func TestNICContentionSerialisesFanIn(t *testing.T) {
	// 8 senders on distinct nodes blast one receiver simultaneously;
	// with NIC contention the landings must serialise, stretching the
	// receiver's completion well past the uncontended case.
	const n = 9
	const size = 32 << 10 // eager, 32 KB
	body := func(p *Proc) {
		if p.Rank() == 0 {
			for i := 1; i < n; i++ {
				p.Recv(i, 0)
			}
		} else {
			p.Send(0, 0, size, nil)
		}
	}
	// Cluster A has 2 cores/node: place senders on distinct nodes by
	// using ranks 2,4,6,... — simpler: cyclic mapping spreads them.
	dep := func(contend bool) Result {
		d, err := machine.NewDeployment(machine.ClusterA(), n, machine.MapCyclic)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Config{Deployment: d, Body: body, Name: "nic", NICContention: contend})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	free := dep(false)
	contended := dep(true)
	if contended.Finish <= free.Finish {
		t.Errorf("contended fan-in %v should exceed uncontended %v", contended.Finish, free.Finish)
	}
	// The stretch should be roughly the serialised transfer tail:
	// at least 4 extra transfer times of 32KB at 118MB/s (~271us each).
	extra := contended.Finish - free.Finish
	if extra < vtime.Time(1*vtime.Millisecond) {
		t.Errorf("contention only added %v; landings not serialised", extra)
	}
}

func TestNICContentionDeterministic(t *testing.T) {
	d, err := machine.NewDeployment(machine.ClusterA(), 8, machine.MapCyclic)
	if err != nil {
		t.Fatal(err)
	}
	body := func(p *Proc) {
		n := p.Size()
		for i := 0; i < 5; i++ {
			r := p.Irecv((p.Rank()+n-1)%n, 0)
			s := p.Isend((p.Rank()+1)%n, 0, 16<<10, nil)
			p.Wait(r, s)
		}
	}
	r1, err := Run(Config{Deployment: d, Body: body, Name: "nicdet", NICContention: true})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(Config{Deployment: d, Body: body, Name: "nicdet", NICContention: true})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Finish != r2.Finish {
		t.Error("NIC contention broke determinism")
	}
}

func TestNICContentionIgnoresIntraNode(t *testing.T) {
	// Ranks 0,1 share a node on cluster A: contention must not change
	// their exchange at all.
	body := func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 0, 16<<10, nil)
		} else if p.Rank() == 1 {
			p.Recv(0, 0)
		}
	}
	run := func(contend bool) Result {
		d, _ := machine.NewDeployment(machine.ClusterA(), 2, machine.MapBlock)
		res, err := Run(Config{Deployment: d, Body: body, Name: "intra", NICContention: contend})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if run(true).Finish != run(false).Finish {
		t.Error("intra-node traffic must be unaffected by NIC contention")
	}
}

func TestAlgorithmicCollectivesSkew(t *testing.T) {
	// With algorithmic collectives, a bcast over cross-node members
	// finishes at different instants per member; the uniform model
	// gives everyone the same end.
	const n = 8
	ends := make([]vtime.Time, n)
	body := func(p *Proc) {
		info := p.Collective(network.Bcast, 0, members(n), 0, 4096, nil)
		ends[p.Rank()] = info.End
	}
	d, err := machine.NewDeployment(machine.ClusterA(), n, machine.MapCyclic)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(Config{Deployment: d, Body: body, Name: "algo", AlgorithmicCollectives: true}); err != nil {
		t.Fatal(err)
	}
	if ends[0] != 0 {
		t.Errorf("bcast root should finish at its arrival, got %v", ends[0])
	}
	distinct := map[vtime.Time]bool{}
	for _, e := range ends {
		distinct[e] = true
	}
	if len(distinct) < 3 {
		t.Errorf("algorithmic bcast should skew completions, got %v", ends)
	}
}

func TestAlgorithmicCollectivesDeterministic(t *testing.T) {
	d, err := machine.NewDeployment(machine.ClusterB(), 12, machine.MapBlock)
	if err != nil {
		t.Fatal(err)
	}
	body := func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Advance(vtime.Duration(p.Rank()+1) * vtime.Microsecond)
			p.Collective(network.Allreduce, 0, members(12), 0, 256, nil)
			p.Collective(network.Alltoall, 0, members(12), 0, 1024, nil)
		}
	}
	r1, err := Run(Config{Deployment: d, Body: body, Name: "algodet", AlgorithmicCollectives: true})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(Config{Deployment: d, Body: body, Name: "algodet", AlgorithmicCollectives: true})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Finish != r2.Finish {
		t.Error("algorithmic collectives broke determinism")
	}
	if r1.Finish <= 0 {
		t.Error("run must take time")
	}
}
