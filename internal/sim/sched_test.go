package sim

import (
	"fmt"
	"reflect"
	"testing"

	"pas2p/internal/machine"
	"pas2p/internal/network"
	"pas2p/internal/vtime"
)

// runLogged executes cfg on a fresh engine with the scheduling hooks
// set: scan=true uses the reference linear-scan scheduler, scan=false
// the ready heap. It returns the exact rank schedule alongside the
// result.
func runLogged(t testing.TB, cfg Config, scan bool) ([]int, Result) {
	t.Helper()
	e, err := newEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sched []int
	e.schedLog = &sched
	e.useScan = scan
	res, err := e.run()
	if err != nil {
		t.Fatal(err)
	}
	return sched, res
}

// schedBodies are the program shapes the heap-vs-scan equivalence
// property runs: they cover every way a rank can become ready (initial
// start, point-to-point wake for eager and rendezvous traffic,
// wildcard resolution, collective release) and both blocking and
// nonblocking operations.
var schedBodies = []struct {
	name  string
	ranks int
	body  func(p *Proc)
}{
	{"ring-isend", 8, func(p *Proc) {
		n, r := p.Size(), p.Rank()
		for round := 0; round < 6; round++ {
			p.Advance(vtime.Duration(1+(r+round)%5) * vtime.Microsecond)
			size := 64
			if (r+round)%3 == 0 {
				size = 1 << 20 // rendezvous
			}
			id := p.Isend((r+1)%n, round, size, nil)
			p.Recv((r+n-1)%n, round)
			p.Wait(id)
		}
	}},
	{"wavefront", 6, func(p *Proc) {
		n, r := p.Size(), p.Rank()
		for sweep := 0; sweep < 5; sweep++ {
			if r > 0 {
				p.Recv(r-1, sweep)
			}
			p.Advance(vtime.Duration(3+r%2) * vtime.Microsecond)
			if r < n-1 {
				p.Send(r+1, sweep, 128, nil)
			}
		}
	}},
	{"master-worker-wildcard", 8, func(p *Proc) {
		n, r := p.Size(), p.Rank()
		if r == 0 {
			for i := 0; i < 4*(n-1); i++ {
				p.Recv(AnySource, AnyTag)
			}
			return
		}
		for i := 0; i < 4; i++ {
			p.Advance(vtime.Duration(r*7+i) * vtime.Microsecond)
			p.Send(0, i, 256, nil)
		}
	}},
	{"collective-mix", 8, func(p *Proc) {
		n, r := p.Size(), p.Rank()
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		evens := []int{0, 2, 4, 6}
		for round := 0; round < 4; round++ {
			p.Advance(vtime.Duration(1+r) * vtime.Microsecond)
			p.Collective(network.Allreduce, 0, all, 0, 1024, nil)
			if r%2 == 0 {
				p.Collective(network.Barrier, 1, evens, 0, 0, nil)
			}
			p.Collective(network.Barrier, 0, all, 0, 0, nil)
		}
	}},
	{"pairwise-waitall", 8, func(p *Proc) {
		n, r := p.Size(), p.Rank()
		peer := r ^ 1
		if peer >= n {
			return
		}
		for round := 0; round < 5; round++ {
			size := 512
			if round%2 == 1 {
				size = 2 << 20 // rendezvous
			}
			rid := p.Irecv(peer, round)
			sid := p.Isend(peer, round, size, nil)
			p.Advance(vtime.Duration(2+r%3) * vtime.Microsecond)
			p.Wait(rid, sid)
		}
	}},
}

// TestHeapSchedulerMatchesScan is the equivalence property the ready
// heap must satisfy: for every program shape, the heap-based scheduler
// produces the exact rank schedule of the reference O(P) linear scan
// — and therefore bit-identical virtual timings.
func TestHeapSchedulerMatchesScan(t *testing.T) {
	for _, tc := range schedBodies {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{Deployment: testDeployment(t, tc.ranks), Name: tc.name, Body: tc.body}
			schedHeap, resHeap := runLogged(t, cfg, false)
			schedScan, resScan := runLogged(t, cfg, true)
			if !reflect.DeepEqual(schedHeap, schedScan) {
				t.Fatalf("rank schedules diverge:\nheap: %v\nscan: %v", schedHeap, schedScan)
			}
			if resHeap.Finish != resScan.Finish {
				t.Fatalf("finish diverges: heap %v scan %v", resHeap.Finish, resScan.Finish)
			}
			if !reflect.DeepEqual(resHeap.RankFinish, resScan.RankFinish) {
				t.Fatalf("per-rank finish diverges:\nheap: %v\nscan: %v",
					resHeap.RankFinish, resScan.RankFinish)
			}
		})
	}
}

// TestWildcardTieBreakDeterminism pins the wildcard-receive tie-break:
// when two candidate messages arrive at the identical virtual instant,
// the lowest source rank wins, on every run.
func TestWildcardTieBreakDeterminism(t *testing.T) {
	// Ranks 1 and 2 share rank 0's node-distance profile on cluster A
	// (block mapping puts 0 and 1 on one node); use ranks 2 and 3 as
	// the senders so both cross the interconnect identically and their
	// messages arrive at exactly the same time.
	d, err := machine.NewDeployment(machine.ClusterA(), 6, machine.MapBlock)
	if err != nil {
		t.Fatal(err)
	}
	var first []int
	for trial := 0; trial < 10; trial++ {
		var got []int
		_, err := Run(Config{Deployment: d, Name: "tie", Body: func(p *Proc) {
			switch p.Rank() {
			case 0:
				for i := 0; i < 2; i++ {
					info := p.Recv(AnySource, 0)
					got = append(got, info.Src)
				}
			case 2, 3:
				p.Advance(5 * vtime.Microsecond)
				p.Send(0, 0, 64, nil)
			}
		}})
		if err != nil {
			t.Fatal(err)
		}
		if got[0] > got[1] {
			t.Fatalf("trial %d: sources out of tie-break order: %v", trial, got)
		}
		if trial == 0 {
			first = got
			continue
		}
		if !reflect.DeepEqual(got, first) {
			t.Fatalf("trial %d: wildcard match order changed: %v vs %v", trial, got, first)
		}
	}
}

// TestDeadlockMessageGoldens pins the exact deadlock report text for
// every blocked-operation kind. The engine builds these descriptions
// lazily (the hot path records only a compact blockInfo), so this is
// the regression net proving laziness never changed the rendered text.
func TestDeadlockMessageGoldens(t *testing.T) {
	big := machine.ClusterA().Interconnect.EagerLimit + 1
	if intra := machine.ClusterA().IntraNode.EagerLimit + 1; intra > big {
		big = intra
	}
	cases := []struct {
		name  string
		ranks int
		body  func(p *Proc)
		want  string
	}{
		{"recv-recv", 2, func(p *Proc) {
			p.Recv(1-p.Rank(), 5+p.Rank())
		}, "sim \"golden\": deadlock: 2 of 2 ranks blocked\n" +
			"  rank 0 @ 0ns: Recv(src=1 tag=5)\n" +
			"  rank 1 @ 0ns: Recv(src=0 tag=6)"},
		{"rendezvous-send", 2, func(p *Proc) {
			if p.Rank() == 0 {
				p.Send(1, 3, big, nil)
			} else {
				p.Recv(0, 4) // wrong tag: the send never matches
			}
		}, fmt.Sprintf("sim \"golden\": deadlock: 2 of 2 ranks blocked\n"+
			"  rank 0 @ 0ns: Send(dst=1 tag=3 size=%d, rendezvous)\n"+
			"  rank 1 @ 0ns: Recv(src=0 tag=4)", big)},
		{"wait", 2, func(p *Proc) {
			if p.Rank() == 0 {
				id := p.Irecv(1, 0)
				p.Wait(id)
			}
		}, "sim \"golden\": deadlock: 1 of 2 ranks blocked\n" +
			"  rank 0 @ 0ns: Wait([1])"},
		{"collective", 3, func(p *Proc) {
			if p.Rank() < 2 {
				p.Collective(network.Barrier, 0, []int{0, 1, 2}, 0, 0, nil)
			} else {
				p.Recv(0, 9)
			}
		}, "sim \"golden\": deadlock: 3 of 3 ranks blocked\n" +
			"  rank 0 @ 0ns: Barrier(ctx=0 seq=0, 2/3 arrived)\n" +
			"  rank 1 @ 0ns: Barrier(ctx=0 seq=0, 2/3 arrived)\n" +
			"  rank 2 @ 0ns: Recv(src=0 tag=9)"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			_, err := Run(Config{Deployment: testDeployment(t, tc.ranks), Name: "golden", Body: tc.body})
			if err == nil {
				t.Fatal("expected deadlock")
			}
			if err.Error() != tc.want {
				t.Fatalf("deadlock text changed:\ngot:  %q\nwant: %q", err.Error(), tc.want)
			}
		})
	}
}

// TestIsendInlineMatchChargesSender pins a timing rule the executor
// replay depends on: a rendezvous Isend whose matching receive is
// already posted resolves inline, and — exactly like the eager path —
// charges the sender-side rendezvous span to the Isend call itself.
// Only an Isend whose match is still pending returns with the caller's
// clock untouched. Regressing this shifts every subsequent post time
// on the sending rank and breaks bit-reproducibility of predictions.
func TestIsendInlineMatchChargesSender(t *testing.T) {
	const big = 1 << 20 // rendezvous on every cluster A path

	// Receiver posted first: the Isend must advance the sender clock.
	// Rank 0 blocks on an eager receive first so rank 1 gets scheduled
	// and parks its rendezvous receive before the Isend happens.
	var postClock, isendClock, waitEnd vtime.Time
	_, err := Run(Config{Deployment: testDeployment(t, 2), Name: "inline", Body: func(p *Proc) {
		switch p.Rank() {
		case 0:
			p.Recv(1, 9)
			postClock = p.Now()
			id := p.Isend(1, 7, big, nil)
			isendClock = p.Now()
			waitEnd = p.Wait(id)[0].End
		case 1:
			p.Send(0, 9, 64, nil)
			p.Recv(0, 7)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if isendClock <= postClock {
		t.Errorf("inline-matched rendezvous Isend left clock at %v (posted %v); want sender span charged", isendClock, postClock)
	}
	if isendClock != waitEnd {
		t.Errorf("inline-matched Isend clock %v != sender completion %v", isendClock, waitEnd)
	}

	// Receiver posts later: the Isend returns immediately and only the
	// Wait observes the completion.
	_, err = Run(Config{Deployment: testDeployment(t, 2), Name: "deferred", Body: func(p *Proc) {
		switch p.Rank() {
		case 0:
			postClock = p.Now()
			id := p.Isend(1, 7, big, nil)
			isendClock = p.Now()
			waitEnd = p.Wait(id)[0].End
		case 1:
			p.Advance(50 * vtime.Microsecond)
			p.Recv(0, 7)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if isendClock != postClock {
		t.Errorf("unmatched rendezvous Isend moved clock %v -> %v; want unchanged", postClock, isendClock)
	}
	if waitEnd <= isendClock {
		t.Errorf("Wait end %v not after Isend post %v", waitEnd, isendClock)
	}
}
