package sim

import (
	"fmt"
	"math"
	"strings"

	"pas2p/internal/faults"
	"pas2p/internal/network"
	"pas2p/internal/vtime"
)

type opKind int8

const (
	opAdvance opKind = iota
	opSend
	opIsend
	opRecv
	opIrecv
	opWait
	opCollective
	opSetMode
)

type request struct {
	kind opKind

	dur vtime.Duration // advance

	peer, tag, size int // send/recv
	payload         any

	waitIDs []int // wait

	collOp      network.CollectiveOp
	collCtx     int
	collMembers []int
	collRoot    int

	mode Mode
}

// PtPInfo reports the resolved timing of one point-to-point operation.
type PtPInfo struct {
	Start, End vtime.Time
	Src, Dst   int
	Tag, Size  int
	// SendSeq is the per-sender message index: (Src, SendSeq)
	// identifies the message globally, giving the trace layer the
	// paper's "Relation" between a receive and its send.
	SendSeq int64
	Payload any // receives only
	IsSend  bool
}

// CollInfo reports the resolved timing of one collective operation.
type CollInfo struct {
	Op         network.CollectiveOp
	Ctx, Seq   int
	Start, End vtime.Time
	Root, Size int
	Members    []int
	// Payloads holds every member's contribution, indexed like
	// Members; the caller computes the operation's data semantics.
	Payloads []any
}

// result is what a parked rank receives when resumed (and what an
// inline operation returns directly).
type result struct {
	aborted bool
	now     vtime.Time
	ptp     PtPInfo
	ptps    []PtPInfo // wait on several requests; nil for singletons
	coll    CollInfo
	reqID   int // isend/irecv
}

// handle applies one operation for the running rank ps, inline on the
// rank's own goroutine. It returns the result and blocked=false when
// the rank may continue, or blocked=true when the rank is now stuck
// (or the engine failed) and must yield to the scheduler.
func (e *Engine) handle(ps *procState, req request) (result, bool) {
	switch req.kind {
	case opAdvance:
		d := req.dur
		if ps.mode.ComputeScale != 1 {
			d = vtime.Duration(math.Round(float64(d) * ps.mode.ComputeScale))
		}
		if e.cfg.Faults != nil && d > 0 {
			if fac := e.cfg.Faults.Jitter(ps.rank, ps.advSeq); fac != 1 {
				d = vtime.Duration(math.Round(float64(d) * fac))
			}
			ps.advSeq++
		}
		start := ps.clock
		ps.clock = ps.clock.Add(d)
		e.slice(ps.rank, "compute", "compute", start, ps.clock)
		return result{now: ps.clock}, false

	case opSetMode:
		ps.mode = req.mode
		if ps.mode.ComputeScale < 0 {
			ps.mode.ComputeScale = 0
		}
		return result{now: ps.clock}, false

	case opSend, opIsend:
		return e.handleSend(ps, req)

	case opRecv, opIrecv:
		return e.handleRecv(ps, req)

	case opWait:
		return e.handleWait(ps, req)

	case opCollective:
		return e.handleCollective(ps, req)

	default:
		e.err = fmt.Errorf("rank %d: unknown op %d", ps.rank, req.kind)
		return result{}, true
	}
}

func (e *Engine) handleSend(ps *procState, req request) (result, bool) {
	if req.peer < 0 || req.peer >= e.n {
		e.err = fmt.Errorf("rank %d: send to invalid rank %d", ps.rank, req.peer)
		return result{}, true
	}
	if req.size < 0 {
		e.err = fmt.Errorf("rank %d: send with negative size %d", ps.rank, req.size)
		return result{}, true
	}
	path := e.cfg.Deployment.Path(ps.rank, req.peer)
	m := e.newMessage()
	m.src, m.dst, m.tag, m.size = ps.rank, req.peer, req.tag, req.size
	m.uid = ps.sendIndex
	m.payload = req.payload
	m.sendPost = ps.clock
	m.senderFree = ps.mode.CommFree
	ps.sendIndex++
	e.stats.Messages++
	e.stats.Bytes += int64(req.size)
	if e.msgBytes != nil {
		e.msgBytes.Observe(float64(req.size))
	}

	// Decide injected faults before timing is resolved: lost
	// transmissions (each paying one RTO before retransmission),
	// duplicates (discarded on match, so only counted), and delay
	// faults all fold into one extra arrival latency. Free-mode sends
	// model signature skip regions and stay untouched.
	if e.cfg.Faults != nil && !m.senderFree {
		if f, ok := e.cfg.Faults.Message(m.src, m.dst, m.uid, m.size); ok {
			m.faultDelay = f.Delay
			if e.tl != nil {
				e.instant(ps.rank, faultLabel(f), ps.clock)
			}
		}
	}

	info := PtPInfo{Start: ps.clock, Src: ps.rank, Dst: req.peer,
		Tag: req.tag, Size: req.size, SendSeq: m.uid, IsSend: true}

	switch {
	case m.senderFree:
		m.arrival = ps.clock
		m.senderDone = ps.clock
		m.timingKnown = true
	case req.size <= path.EagerLimit:
		start := e.nicClaimTx(ps.rank, req.peer, ps.clock, req.size)
		r := path.Eager(start, req.size)
		m.senderDone = r.SenderDone
		m.arrival = e.nicClaimRx(ps.rank, req.peer, r.Arrival, req.size).Add(m.faultDelay)
		m.timingKnown = true
	default:
		m.rdv = true
	}

	if m.timingKnown {
		// Eager (or free): the sender proceeds immediately. Matching
		// may recycle m, so capture its timing first and never touch
		// it again.
		senderDone := m.senderDone
		e.chanFor(ps.rank, req.peer).push(m)
		e.tryMatchArrival(m)
		info.End = senderDone
		e.slice(ps.rank, "send", "comm", info.Start, senderDone)
		if req.kind == opSend {
			ps.clock = senderDone
			return result{now: ps.clock, ptp: info}, false
		}
		rs := e.newReq(ps, reqSend)
		rs.done = true
		rs.complete = senderDone
		rs.info = info
		// Isend still charges the local injection overhead.
		ps.clock = senderDone
		return result{now: ps.clock, reqID: rs.id}, false
	}

	// Rendezvous: completion awaits the matching receive. The sender
	// request is attached before matching so a match completes it (and
	// may recycle m) inside bind.
	rs := e.newReq(ps, reqSend)
	rs.info = info
	m.senderReq = rs
	e.chanFor(ps.rank, req.peer).push(m)
	e.tryMatchArrival(m)
	// Matching may have recycled m: consult rs from here on.
	if req.kind == opIsend {
		if rs.done {
			// Matched inline (the receive was already posted): the
			// isend charges the sender-side rendezvous span to the
			// call itself, exactly like the eager path.
			ps.clock = rs.complete
		}
		return result{now: ps.clock, reqID: rs.id}, false
	}
	// Blocking rendezvous send = isend + wait.
	return e.blockOnReq1(ps, rs.id, bkSend, req.peer, req.tag, req.size)
}

func (e *Engine) handleRecv(ps *procState, req request) (result, bool) {
	if req.peer != AnySource && (req.peer < 0 || req.peer >= e.n) {
		e.err = fmt.Errorf("rank %d: recv from invalid rank %d", ps.rank, req.peer)
		return result{}, true
	}
	rs := e.newReq(ps, reqRecv)
	e.pruneMatched(ps) // safe here: never called mid-iteration
	pr := e.newPostedRecv()
	pr.owner = ps
	pr.src = req.peer
	pr.tag = req.tag
	pr.post = ps.clock
	pr.req = rs
	ps.postedRecvs = append(ps.postedRecvs, pr)
	e.tryMatchPosted(pr, req.peer == AnySource)

	if req.kind == opIrecv {
		return result{now: ps.clock, reqID: rs.id}, false
	}
	return e.blockOnReq1(ps, rs.id, bkRecv, req.peer, req.tag, 0)
}

func (e *Engine) handleWait(ps *procState, req request) (result, bool) {
	for _, id := range req.waitIDs {
		if ps.findReq(id) == nil {
			e.err = fmt.Errorf("rank %d: wait on unknown request %d", ps.rank, id)
			return result{}, true
		}
	}
	return e.blockOnWait(ps, req.waitIDs)
}

// blockOnReq1 parks the rank on a single request (the blocking
// Send/Recv path) unless it already resolved. The singleton wait set
// lives in the rank's inline buffer, so no per-call slice is
// allocated.
func (e *Engine) blockOnReq1(ps *procState, id int, kind blockKind, peer, tag, size int) (result, bool) {
	ps.wait1[0] = id
	ps.waitSet = ps.wait1[:1]
	ps.waitPost = ps.clock
	if res, ok := e.completeWait(ps); ok {
		return res, false
	}
	ps.status = stStuck
	ps.block = blockInfo{kind: kind, peer: peer, tag: tag, size: size}
	return result{}, true
}

// blockOnWait parks the rank on an explicit wait set (Proc.Wait)
// unless every request already resolved.
func (e *Engine) blockOnWait(ps *procState, ids []int) (result, bool) {
	ps.waitSet = ids
	ps.waitPost = ps.clock
	if res, ok := e.completeWait(ps); ok {
		return res, false
	}
	ps.status = stStuck
	ps.block = blockInfo{kind: bkWait}
	return result{}, true
}

// completeWait checks a rank's wait set; when every request is done it
// builds the wait result, advances the clock, clears the set and
// recycles the consumed requests. Singleton waits return their info in
// res.ptp with res.ptps nil, so the hot blocking path allocates
// nothing.
func (e *Engine) completeWait(ps *procState) (result, bool) {
	if ps.waitSet == nil {
		return result{}, false
	}
	end := ps.waitPost
	for _, id := range ps.waitSet {
		rs := ps.findReq(id)
		if !rs.done {
			return result{}, false
		}
		if rs.complete > end {
			end = rs.complete
		}
	}
	var res result
	if len(ps.waitSet) == 1 {
		rs := ps.takeReq(ps.waitSet[0])
		res.ptp = rs.info
		e.freeReq(rs)
	} else {
		res.ptps = make([]PtPInfo, len(ps.waitSet))
		for i, id := range ps.waitSet {
			rs := ps.takeReq(id)
			res.ptps[i] = rs.info
			e.freeReq(rs)
		}
	}
	ps.clock = end
	res.now = end
	ps.waitSet = nil
	return res, true
}

// findReq returns the live request with the given id, or nil.
// Outstanding request sets are tiny, so a linear scan over the slice
// beats map hashing on the hot path.
func (ps *procState) findReq(id int) *reqState {
	for _, rs := range ps.reqs {
		if rs.id == id {
			return rs
		}
	}
	return nil
}

// takeReq removes and returns the live request with the given id
// (swap-delete: nothing depends on the slice's order).
func (ps *procState) takeReq(id int) *reqState {
	for i, rs := range ps.reqs {
		if rs.id == id {
			last := len(ps.reqs) - 1
			ps.reqs[i] = ps.reqs[last]
			ps.reqs[last] = nil
			ps.reqs = ps.reqs[:last]
			return rs
		}
	}
	return nil
}

func (e *Engine) newReq(ps *procState, kind reqKind) *reqState {
	ps.nextReqID++
	var rs *reqState
	if n := len(e.reqFree); n > 0 {
		rs = e.reqFree[n-1]
		e.reqFree = e.reqFree[:n-1]
	} else {
		rs = &reqState{}
	}
	rs.id = ps.nextReqID
	rs.kind = kind
	ps.reqs = append(ps.reqs, rs)
	return rs
}

// freeReq recycles a consumed request. Callers guarantee nothing
// references it any more: send requests are detached from their
// message by finishRendezvous, receive requests from their posted
// receive by bind.
func (e *Engine) freeReq(rs *reqState) {
	*rs = reqState{}
	e.reqFree = append(e.reqFree, rs)
}

// nicClaimTx applies transmit-side NIC serialisation for inter-node
// messages: injection cannot begin before the sender node's NIC is
// free. Returns the effective send start and books the NIC through the
// injection. Intra-node traffic and disabled contention pass through.
func (e *Engine) nicClaimTx(src, dst int, start vtime.Time, size int) vtime.Time {
	if e.nicTx == nil || e.cfg.Deployment.SameNode(src, dst) {
		return start
	}
	node := e.cfg.Deployment.Place(src).Node
	if e.nicTx[node] > start {
		start = e.nicTx[node]
	}
	path := e.cfg.Deployment.Path(src, dst)
	e.nicTx[node] = start.Add(path.SendOverhead + path.InjectTime(size))
	return start
}

// nicClaimRx applies receive-side NIC serialisation: a message's
// landing (its transfer-time-long tail) cannot start before the
// receiver node's NIC drained the previous one. Returns the effective
// arrival and books the NIC until then.
func (e *Engine) nicClaimRx(src, dst int, arrival vtime.Time, size int) vtime.Time {
	if e.nicRx == nil || e.cfg.Deployment.SameNode(src, dst) {
		return arrival
	}
	node := e.cfg.Deployment.Place(dst).Node
	path := e.cfg.Deployment.Path(src, dst)
	transfer := path.TransferTime(size)
	landStart := arrival.Add(-transfer)
	if e.nicRx[node] > landStart {
		landStart = e.nicRx[node]
	}
	arrival = landStart.Add(transfer)
	e.nicRx[node] = arrival
	return arrival
}

// tryMatchArrival matches a newly sent message against the
// destination's posted receives (earliest compatible post wins).
func (e *Engine) tryMatchArrival(m *message) {
	dst := e.procs[m.dst]
	for _, pr := range dst.postedRecvs {
		if pr.matched {
			continue
		}
		if pr.src != AnySource && pr.src != m.src {
			continue
		}
		if pr.tag != AnyTag && pr.tag != m.tag {
			continue
		}
		if pr.src == AnySource {
			// Wildcard receives are matched only under the
			// conservative rule; re-examined via anyStuck.
			e.noteAnyStuck(dst)
			return
		}
		// Non-overtaking: this message must be the first compatible
		// one in its channel for this receive.
		q := e.chanFor(m.src, m.dst)
		if q.firstCompatible(pr.tag) != m {
			return
		}
		e.bind(pr, m)
		return
	}
}

// tryMatchPosted matches a newly posted receive against queued
// messages. Wildcard-source receives go through the conservative rule.
func (e *Engine) tryMatchPosted(pr *postedRecv, wildcard bool) {
	if wildcard {
		if !e.resolveAny(pr, false) {
			e.noteAnyStuck(pr.owner)
		}
		return
	}
	q := e.chanFor(pr.src, pr.owner.rank)
	if m := q.firstCompatible(pr.tag); m != nil {
		e.bind(pr, m)
	}
}

func (e *Engine) noteAnyStuck(ps *procState) {
	for _, s := range e.anyStuck {
		if s == ps {
			return
		}
	}
	e.anyStuck = append(e.anyStuck, ps)
}

// candidate returns the best matchable message for a wildcard receive
// and the earliest time a not-yet-seen message could arrive.
func (e *Engine) candidate(pr *postedRecv) (best *message, bestArr vtime.Time, bound vtime.Time) {
	bound = vtime.Infinity
	bestArr = vtime.Infinity
	minLat := e.cfg.Deployment.MinLatency()
	for src := 0; src < e.n; src++ {
		m := e.chanFor(src, pr.owner.rank).firstCompatible(pr.tag)
		if m != nil {
			arr := e.hypotheticalArrival(m, pr)
			if arr < bestArr || (arr == bestArr && best != nil && m.src < best.src) {
				best, bestArr = m, arr
			}
			continue
		}
		// No pending candidate from src: it could still send one.
		sp := e.procs[src]
		if src == pr.owner.rank || sp.status == stDone {
			continue
		}
		lb := e.effTime(sp).Add(minLat)
		if lb < bound {
			bound = lb
		}
	}
	return best, bestArr, bound
}

// hypotheticalArrival is the arrival time a message would have if
// matched with the given receive now.
func (e *Engine) hypotheticalArrival(m *message, pr *postedRecv) vtime.Time {
	if m.timingKnown {
		return m.arrival
	}
	path := e.cfg.Deployment.Path(m.src, m.dst)
	return path.Rendezvous(m.sendPost, pr.post, m.size).Arrival.Add(m.faultDelay)
}

// faultLabel renders the timeline instant for an injected message
// fault; only called when a timeline is attached.
func faultLabel(f faults.MsgFault) string {
	var b strings.Builder
	b.WriteString("fault:")
	if f.Retransmits > 0 {
		fmt.Fprintf(&b, " loss x%d", f.Retransmits)
	}
	if f.Duplicated {
		b.WriteString(" dup")
	}
	if f.Delay > 0 {
		fmt.Fprintf(&b, " +%v", f.Delay)
	}
	return b.String()
}

// resolveAny attempts to finalise a wildcard receive. With force set
// (used when the whole system is otherwise blocked) the best candidate
// is accepted unconditionally.
func (e *Engine) resolveAny(pr *postedRecv, force bool) bool {
	best, arr, bound := e.candidate(pr)
	if best == nil {
		return false
	}
	if !force && arr > bound {
		return false
	}
	e.bind(pr, best)
	return true
}

// retryAnyStuck re-examines wildcard receives. With force set it
// accepts the globally earliest candidate across all stuck wildcard
// receives, which is safe because no clock can otherwise advance.
func (e *Engine) retryAnyStuck(force bool) bool {
	if len(e.anyStuck) == 0 {
		return false
	}
	progressed := false
	if !force {
		kept := e.anyStuck[:0]
		for _, ps := range e.anyStuck {
			if e.retryRankAny(ps, false) {
				progressed = true
			} else if e.hasOpenAny(ps) {
				kept = append(kept, ps)
			}
		}
		e.anyStuck = kept
		return progressed
	}
	// Forced: pick the globally earliest candidate.
	var bestPR *postedRecv
	var bestMsg *message
	bestArr := vtime.Infinity
	for _, ps := range e.anyStuck {
		for _, pr := range ps.postedRecvs {
			if pr.matched || pr.src != AnySource {
				continue
			}
			m, arr, _ := e.candidate(pr)
			if m == nil {
				continue
			}
			if arr < bestArr ||
				(arr == bestArr && bestPR != nil && pr.owner.rank < bestPR.owner.rank) {
				bestPR, bestMsg, bestArr = pr, m, arr
			}
		}
	}
	if bestPR == nil {
		return false
	}
	e.bind(bestPR, bestMsg)
	e.pruneAnyStuck()
	return true
}

func (e *Engine) retryRankAny(ps *procState, force bool) bool {
	progressed := false
	for _, pr := range ps.postedRecvs {
		if pr.matched || pr.src != AnySource {
			continue
		}
		if e.resolveAny(pr, force) {
			progressed = true
		}
	}
	return progressed
}

func (e *Engine) hasOpenAny(ps *procState) bool {
	for _, pr := range ps.postedRecvs {
		if !pr.matched && pr.src == AnySource {
			return true
		}
	}
	return false
}

func (e *Engine) pruneAnyStuck() {
	kept := e.anyStuck[:0]
	for _, ps := range e.anyStuck {
		if e.hasOpenAny(ps) {
			kept = append(kept, ps)
		}
	}
	e.anyStuck = kept
}

// bind commits a (receive, message) match, computes all timings, and
// wakes whichever ranks the resolution unblocks. On return m may have
// been recycled: callers must not touch it again.
func (e *Engine) bind(pr *postedRecv, m *message) {
	pr.matched = true
	m.matched = true
	ps := pr.owner

	if m.rdv && !m.timingKnown {
		path := e.cfg.Deployment.Path(m.src, m.dst)
		start := e.nicClaimTx(m.src, m.dst, m.sendPost, m.size)
		r := path.Rendezvous(start, pr.post, m.size)
		// A rendezvous sender synchronises with the receive, so the
		// injected latency holds both sides back.
		m.senderDone = r.SenderDone.Add(m.faultDelay)
		m.arrival = e.nicClaimRx(m.src, m.dst, r.Arrival, m.size).Add(m.faultDelay)
		m.timingKnown = true
	}

	complete := vtime.Max(pr.post, m.arrival)
	if !ps.mode.CommFree {
		path := e.cfg.Deployment.Path(m.src, m.dst)
		complete = complete.Add(path.RecvOverhead)
	}
	rs := pr.req
	pr.req = nil
	rs.done = true
	rs.complete = complete
	rs.info = PtPInfo{
		Start: pr.post, End: complete,
		Src: m.src, Dst: m.dst, Tag: m.tag, Size: m.size,
		SendSeq: m.uid, Payload: m.payload,
	}
	e.slice(ps.rank, "recv", "comm", pr.post, complete)

	src := m.src
	if m.senderReq != nil {
		e.finishRendezvous(m)
	}
	// Compacting recycles the matched prefix, possibly including m.
	e.compactChan(e.chanFor(src, ps.rank))
	e.maybeWake(ps)
}

// finishRendezvous completes the sender side of a matched rendezvous
// message and detaches the request so the message can be recycled.
func (e *Engine) finishRendezvous(m *message) {
	rs := m.senderReq
	if rs == nil || rs.done {
		return
	}
	rs.done = true
	rs.complete = m.senderDone
	rs.info.End = m.senderDone
	m.senderReq = nil
	e.slice(m.src, "send", "comm", rs.info.Start, m.senderDone)
	e.maybeWake(e.procs[m.src])
}

// maybeWake promotes a stuck rank to ready if its wait set resolved.
// The running rank is left alone; its own handler completes the wait.
func (e *Engine) maybeWake(ps *procState) {
	if ps.status != stStuck || ps.waitSet == nil {
		return
	}
	for _, id := range ps.waitSet {
		if rs := ps.findReq(id); rs == nil || !rs.done {
			return
		}
	}
	res, ok := e.completeWait(ps)
	if !ok {
		return
	}
	ps.pending = res
	ps.wake = res.now
	ps.status = stReady
	ps.block = blockInfo{}
	e.pushReady(ps)
}

// pruneMatched drops a rank's matched posted receives and recycles
// them; nothing references a matched posted receive once bind has
// detached its request.
func (e *Engine) pruneMatched(ps *procState) {
	kept := ps.postedRecvs[:0]
	for _, pr := range ps.postedRecvs {
		if !pr.matched {
			kept = append(kept, pr)
			continue
		}
		*pr = postedRecv{}
		e.prFree = append(e.prFree, pr)
	}
	tail := ps.postedRecvs[len(kept):]
	for i := range tail {
		tail[i] = nil
	}
	ps.postedRecvs = kept
}
