package sim

import (
	"fmt"
	"math"
	"strings"

	"pas2p/internal/faults"
	"pas2p/internal/network"
	"pas2p/internal/vtime"
)

type opKind int8

const (
	opAdvance opKind = iota
	opSend
	opIsend
	opRecv
	opIrecv
	opWait
	opCollective
	opSetMode
	opDone
	opPanic
)

type request struct {
	rank int
	kind opKind

	dur vtime.Duration // advance

	peer, tag, size int // send/recv
	payload         any

	waitIDs []int // wait

	collOp      network.CollectiveOp
	collCtx     int
	collMembers []int
	collRoot    int

	mode Mode

	panicVal string
}

// PtPInfo reports the resolved timing of one point-to-point operation.
type PtPInfo struct {
	Start, End vtime.Time
	Src, Dst   int
	Tag, Size  int
	// SendSeq is the per-sender message index: (Src, SendSeq)
	// identifies the message globally, giving the trace layer the
	// paper's "Relation" between a receive and its send.
	SendSeq int64
	Payload any // receives only
	IsSend  bool
}

// CollInfo reports the resolved timing of one collective operation.
type CollInfo struct {
	Op         network.CollectiveOp
	Ctx, Seq   int
	Start, End vtime.Time
	Root, Size int
	Members    []int
	// Payloads holds every member's contribution, indexed like
	// Members; the caller computes the operation's data semantics.
	Payloads []any
}

// result is what a resumed rank receives.
type result struct {
	aborted bool
	now     vtime.Time
	ptp     PtPInfo
	ptps    []PtPInfo // wait
	coll    CollInfo
	reqID   int // isend/irecv
}

// handle services one request from the running rank ps. It returns the
// inline result and blocked=false when the rank may continue, or
// blocked=true when the rank is now stuck or done.
func (e *Engine) handle(ps *procState, req request) (result, bool) {
	switch req.kind {
	case opAdvance:
		d := req.dur
		if ps.mode.ComputeScale != 1 {
			d = vtime.Duration(math.Round(float64(d) * ps.mode.ComputeScale))
		}
		if e.cfg.Faults != nil && d > 0 {
			if fac := e.cfg.Faults.Jitter(ps.rank, ps.advSeq); fac != 1 {
				d = vtime.Duration(math.Round(float64(d) * fac))
			}
			ps.advSeq++
		}
		start := ps.clock
		ps.clock = ps.clock.Add(d)
		e.slice(ps.rank, "compute", "compute", start, ps.clock)
		return result{now: ps.clock}, false

	case opSetMode:
		ps.mode = req.mode
		if ps.mode.ComputeScale < 0 {
			ps.mode.ComputeScale = 0
		}
		return result{now: ps.clock}, false

	case opSend, opIsend:
		return e.handleSend(ps, req)

	case opRecv, opIrecv:
		return e.handleRecv(ps, req)

	case opWait:
		return e.handleWait(ps, req)

	case opCollective:
		return e.handleCollective(ps, req)

	case opDone:
		ps.status = stDone
		e.doneCount++
		return result{}, true

	case opPanic:
		// The goroutine has already exited; mark the rank done so
		// abort does not try to poison it.
		ps.status = stDone
		e.err = fmt.Errorf("rank %d panicked: %s", ps.rank, req.panicVal)
		return result{}, true

	default:
		e.err = fmt.Errorf("rank %d: unknown op %d", ps.rank, req.kind)
		return result{}, true
	}
}

func (e *Engine) handleSend(ps *procState, req request) (result, bool) {
	if req.peer < 0 || req.peer >= e.n {
		e.err = fmt.Errorf("rank %d: send to invalid rank %d", ps.rank, req.peer)
		return result{}, true
	}
	if req.size < 0 {
		e.err = fmt.Errorf("rank %d: send with negative size %d", ps.rank, req.size)
		return result{}, true
	}
	path := e.cfg.Deployment.Path(ps.rank, req.peer)
	m := &message{
		src: ps.rank, dst: req.peer, tag: req.tag, size: req.size,
		uid: ps.sendIndex, payload: req.payload,
		sendPost:   ps.clock,
		senderFree: ps.mode.CommFree,
	}
	ps.sendIndex++
	e.stats.Messages++
	e.stats.Bytes += int64(req.size)
	if e.msgBytes != nil {
		e.msgBytes.Observe(float64(req.size))
	}

	// Decide injected faults before timing is resolved: lost
	// transmissions (each paying one RTO before retransmission),
	// duplicates (discarded on match, so only counted), and delay
	// faults all fold into one extra arrival latency. Free-mode sends
	// model signature skip regions and stay untouched.
	if e.cfg.Faults != nil && !m.senderFree {
		if f, ok := e.cfg.Faults.Message(m.src, m.dst, m.uid, m.size); ok {
			m.faultDelay = f.Delay
			if e.tl != nil {
				e.instant(ps.rank, faultLabel(f), ps.clock)
			}
		}
	}

	info := PtPInfo{Start: ps.clock, Src: ps.rank, Dst: req.peer,
		Tag: req.tag, Size: req.size, SendSeq: m.uid, IsSend: true}

	switch {
	case m.senderFree:
		m.arrival = ps.clock
		m.senderDone = ps.clock
		m.timingKnown = true
	case req.size <= path.EagerLimit:
		start := e.nicClaimTx(ps.rank, req.peer, ps.clock, req.size)
		r := path.Eager(start, req.size)
		m.senderDone = r.SenderDone
		m.arrival = e.nicClaimRx(ps.rank, req.peer, r.Arrival, req.size).Add(m.faultDelay)
		m.timingKnown = true
	default:
		m.rdv = true
	}

	e.chanFor(ps.rank, req.peer).push(m)
	e.tryMatchArrival(m)

	if m.timingKnown {
		// Eager (or free): the sender proceeds immediately.
		info.End = m.senderDone
		e.slice(ps.rank, "send", "comm", info.Start, m.senderDone)
		if req.kind == opSend {
			ps.clock = m.senderDone
			return result{now: ps.clock, ptp: info}, false
		}
		rs := e.newReq(ps, reqSend)
		rs.done = true
		rs.complete = m.senderDone
		rs.info = info
		// Isend still charges the local injection overhead.
		ps.clock = m.senderDone
		return result{now: ps.clock, reqID: rs.id}, false
	}

	// Rendezvous: completion awaits the matching receive.
	rs := e.newReq(ps, reqSend)
	rs.info = info
	m.senderReq = rs
	if m.matched {
		// tryMatchArrival may already have bound it.
		e.finishRendezvous(m)
	}
	if req.kind == opIsend {
		return result{now: ps.clock, reqID: rs.id}, false
	}
	// Blocking rendezvous send = isend + wait.
	return e.blockOnReqs(ps, []int{rs.id},
		fmt.Sprintf("Send(dst=%d tag=%d size=%d, rendezvous)", req.peer, req.tag, req.size))
}

func (e *Engine) handleRecv(ps *procState, req request) (result, bool) {
	if req.peer != AnySource && (req.peer < 0 || req.peer >= e.n) {
		e.err = fmt.Errorf("rank %d: recv from invalid rank %d", ps.rank, req.peer)
		return result{}, true
	}
	rs := e.newReq(ps, reqRecv)
	pr := &postedRecv{owner: ps, src: req.peer, tag: req.tag, post: ps.clock, req: rs}
	rs.pr = pr
	e.pruneMatched(ps) // safe here: never called mid-iteration
	ps.postedRecvs = append(ps.postedRecvs, pr)
	e.tryMatchPosted(pr, req.peer == AnySource)

	if req.kind == opIrecv {
		return result{now: ps.clock, reqID: rs.id}, false
	}
	return e.blockOnReqs(ps, []int{rs.id},
		fmt.Sprintf("Recv(src=%d tag=%d)", req.peer, req.tag))
}

func (e *Engine) handleWait(ps *procState, req request) (result, bool) {
	for _, id := range req.waitIDs {
		if _, ok := ps.reqs[id]; !ok {
			e.err = fmt.Errorf("rank %d: wait on unknown request %d", ps.rank, id)
			return result{}, true
		}
	}
	return e.blockOnReqs(ps, req.waitIDs, fmt.Sprintf("Wait(%v)", req.waitIDs))
}

// blockOnReqs either completes immediately (all requests resolved) or
// parks the rank until the last request completes.
func (e *Engine) blockOnReqs(ps *procState, ids []int, desc string) (result, bool) {
	ps.waitSet = ids
	ps.waitPost = ps.clock
	if res, ok := e.completeWait(ps); ok {
		return res, false
	}
	ps.status = stStuck
	ps.blockedOn = desc
	return result{}, true
}

// completeWait checks a rank's wait set; when every request is done it
// builds the wait result, advances the clock and clears the set.
func (e *Engine) completeWait(ps *procState) (result, bool) {
	if ps.waitSet == nil {
		return result{}, false
	}
	end := ps.waitPost
	for _, id := range ps.waitSet {
		rs := ps.reqs[id]
		if !rs.done {
			return result{}, false
		}
		if rs.complete > end {
			end = rs.complete
		}
	}
	res := result{ptps: make([]PtPInfo, len(ps.waitSet))}
	for i, id := range ps.waitSet {
		rs := ps.reqs[id]
		res.ptps[i] = rs.info
		delete(ps.reqs, id)
	}
	ps.clock = end
	res.now = end
	if len(res.ptps) == 1 {
		res.ptp = res.ptps[0]
	}
	ps.waitSet = nil
	return res, true
}

func (e *Engine) newReq(ps *procState, kind reqKind) *reqState {
	ps.nextReqID++
	rs := &reqState{id: ps.nextReqID, kind: kind}
	ps.reqs[rs.id] = rs
	return rs
}

// nicClaimTx applies transmit-side NIC serialisation for inter-node
// messages: injection cannot begin before the sender node's NIC is
// free. Returns the effective send start and books the NIC through the
// injection. Intra-node traffic and disabled contention pass through.
func (e *Engine) nicClaimTx(src, dst int, start vtime.Time, size int) vtime.Time {
	if e.nicTx == nil || e.cfg.Deployment.SameNode(src, dst) {
		return start
	}
	node := e.cfg.Deployment.Place(src).Node
	if e.nicTx[node] > start {
		start = e.nicTx[node]
	}
	path := e.cfg.Deployment.Path(src, dst)
	e.nicTx[node] = start.Add(path.SendOverhead + path.InjectTime(size))
	return start
}

// nicClaimRx applies receive-side NIC serialisation: a message's
// landing (its transfer-time-long tail) cannot start before the
// receiver node's NIC drained the previous one. Returns the effective
// arrival and books the NIC until then.
func (e *Engine) nicClaimRx(src, dst int, arrival vtime.Time, size int) vtime.Time {
	if e.nicRx == nil || e.cfg.Deployment.SameNode(src, dst) {
		return arrival
	}
	node := e.cfg.Deployment.Place(dst).Node
	path := e.cfg.Deployment.Path(src, dst)
	transfer := path.TransferTime(size)
	landStart := arrival.Add(-transfer)
	if e.nicRx[node] > landStart {
		landStart = e.nicRx[node]
	}
	arrival = landStart.Add(transfer)
	e.nicRx[node] = arrival
	return arrival
}

// tryMatchArrival matches a newly sent message against the
// destination's posted receives (earliest compatible post wins).
func (e *Engine) tryMatchArrival(m *message) {
	dst := e.procs[m.dst]
	for _, pr := range dst.postedRecvs {
		if pr.matched {
			continue
		}
		if pr.src != AnySource && pr.src != m.src {
			continue
		}
		if pr.tag != AnyTag && pr.tag != m.tag {
			continue
		}
		if pr.src == AnySource {
			// Wildcard receives are matched only under the
			// conservative rule; re-examined via anyStuck.
			e.noteAnyStuck(dst)
			return
		}
		// Non-overtaking: this message must be the first compatible
		// one in its channel for this receive.
		q := e.chanFor(m.src, m.dst)
		if q.firstCompatible(pr.tag) != m {
			return
		}
		e.bind(pr, m)
		return
	}
}

// tryMatchPosted matches a newly posted receive against queued
// messages. Wildcard-source receives go through the conservative rule.
func (e *Engine) tryMatchPosted(pr *postedRecv, wildcard bool) {
	if wildcard {
		if !e.resolveAny(pr, false) {
			e.noteAnyStuck(pr.owner)
		}
		return
	}
	q := e.chanFor(pr.src, pr.owner.rank)
	if m := q.firstCompatible(pr.tag); m != nil {
		e.bind(pr, m)
	}
}

func (e *Engine) noteAnyStuck(ps *procState) {
	for _, s := range e.anyStuck {
		if s == ps {
			return
		}
	}
	e.anyStuck = append(e.anyStuck, ps)
}

// candidate returns the best matchable message for a wildcard receive
// and the earliest time a not-yet-seen message could arrive.
func (e *Engine) candidate(pr *postedRecv) (best *message, bestArr vtime.Time, bound vtime.Time) {
	bound = vtime.Infinity
	bestArr = vtime.Infinity
	minLat := e.cfg.Deployment.MinLatency()
	for src := 0; src < e.n; src++ {
		q, ok := e.channels[chanKey{src, pr.owner.rank}]
		var m *message
		if ok {
			m = q.firstCompatible(pr.tag)
		}
		if m != nil {
			arr := e.hypotheticalArrival(m, pr)
			if arr < bestArr || (arr == bestArr && best != nil && m.src < best.src) {
				best, bestArr = m, arr
			}
			continue
		}
		// No pending candidate from src: it could still send one.
		sp := e.procs[src]
		if src == pr.owner.rank || sp.status == stDone {
			continue
		}
		lb := e.effTime(sp).Add(minLat)
		if lb < bound {
			bound = lb
		}
	}
	return best, bestArr, bound
}

// hypotheticalArrival is the arrival time a message would have if
// matched with the given receive now.
func (e *Engine) hypotheticalArrival(m *message, pr *postedRecv) vtime.Time {
	if m.timingKnown {
		return m.arrival
	}
	path := e.cfg.Deployment.Path(m.src, m.dst)
	return path.Rendezvous(m.sendPost, pr.post, m.size).Arrival.Add(m.faultDelay)
}

// faultLabel renders the timeline instant for an injected message
// fault; only called when a timeline is attached.
func faultLabel(f faults.MsgFault) string {
	var b strings.Builder
	b.WriteString("fault:")
	if f.Retransmits > 0 {
		fmt.Fprintf(&b, " loss x%d", f.Retransmits)
	}
	if f.Duplicated {
		b.WriteString(" dup")
	}
	if f.Delay > 0 {
		fmt.Fprintf(&b, " +%v", f.Delay)
	}
	return b.String()
}

// resolveAny attempts to finalise a wildcard receive. With force set
// (used when the whole system is otherwise blocked) the best candidate
// is accepted unconditionally.
func (e *Engine) resolveAny(pr *postedRecv, force bool) bool {
	best, arr, bound := e.candidate(pr)
	if best == nil {
		return false
	}
	if !force && arr > bound {
		return false
	}
	e.bind(pr, best)
	return true
}

// retryAnyStuck re-examines wildcard receives. With force set it
// accepts the globally earliest candidate across all stuck wildcard
// receives, which is safe because no clock can otherwise advance.
func (e *Engine) retryAnyStuck(force bool) bool {
	if len(e.anyStuck) == 0 {
		return false
	}
	progressed := false
	if !force {
		kept := e.anyStuck[:0]
		for _, ps := range e.anyStuck {
			if e.retryRankAny(ps, false) {
				progressed = true
			} else if e.hasOpenAny(ps) {
				kept = append(kept, ps)
			}
		}
		e.anyStuck = kept
		return progressed
	}
	// Forced: pick the globally earliest candidate.
	var bestPR *postedRecv
	var bestMsg *message
	bestArr := vtime.Infinity
	for _, ps := range e.anyStuck {
		for _, pr := range ps.postedRecvs {
			if pr.matched || pr.src != AnySource {
				continue
			}
			m, arr, _ := e.candidate(pr)
			if m == nil {
				continue
			}
			if arr < bestArr ||
				(arr == bestArr && bestPR != nil && pr.owner.rank < bestPR.owner.rank) {
				bestPR, bestMsg, bestArr = pr, m, arr
			}
		}
	}
	if bestPR == nil {
		return false
	}
	e.bind(bestPR, bestMsg)
	e.pruneAnyStuck()
	return true
}

func (e *Engine) retryRankAny(ps *procState, force bool) bool {
	progressed := false
	for _, pr := range ps.postedRecvs {
		if pr.matched || pr.src != AnySource {
			continue
		}
		if e.resolveAny(pr, force) {
			progressed = true
		}
	}
	return progressed
}

func (e *Engine) hasOpenAny(ps *procState) bool {
	for _, pr := range ps.postedRecvs {
		if !pr.matched && pr.src == AnySource {
			return true
		}
	}
	return false
}

func (e *Engine) pruneAnyStuck() {
	kept := e.anyStuck[:0]
	for _, ps := range e.anyStuck {
		if e.hasOpenAny(ps) {
			kept = append(kept, ps)
		}
	}
	e.anyStuck = kept
}

// bind commits a (receive, message) match, computes all timings, and
// wakes whichever ranks the resolution unblocks.
func (e *Engine) bind(pr *postedRecv, m *message) {
	pr.matched = true
	m.matched = true
	ps := pr.owner

	if m.rdv && !m.timingKnown {
		path := e.cfg.Deployment.Path(m.src, m.dst)
		start := e.nicClaimTx(m.src, m.dst, m.sendPost, m.size)
		r := path.Rendezvous(start, pr.post, m.size)
		// A rendezvous sender synchronises with the receive, so the
		// injected latency holds both sides back.
		m.senderDone = r.SenderDone.Add(m.faultDelay)
		m.arrival = e.nicClaimRx(m.src, m.dst, r.Arrival, m.size).Add(m.faultDelay)
		m.timingKnown = true
	}

	complete := vtime.Max(pr.post, m.arrival)
	if !ps.mode.CommFree {
		path := e.cfg.Deployment.Path(m.src, m.dst)
		complete = complete.Add(path.RecvOverhead)
	}
	rs := pr.req
	rs.done = true
	rs.complete = complete
	rs.info = PtPInfo{
		Start: pr.post, End: complete,
		Src: m.src, Dst: m.dst, Tag: m.tag, Size: m.size,
		SendSeq: m.uid, Payload: m.payload,
	}
	e.slice(ps.rank, "recv", "comm", pr.post, complete)

	e.chanFor(m.src, m.dst).compact()

	if m.senderReq != nil {
		e.finishRendezvous(m)
	}
	e.maybeWake(ps)
}

// finishRendezvous completes the sender side of a matched rendezvous
// message.
func (e *Engine) finishRendezvous(m *message) {
	rs := m.senderReq
	if rs == nil || rs.done {
		return
	}
	rs.done = true
	rs.complete = m.senderDone
	rs.info.End = m.senderDone
	m.senderReq = nil
	e.slice(m.src, "send", "comm", rs.info.Start, m.senderDone)
	e.maybeWake(e.procs[m.src])
}

// maybeWake promotes a stuck rank to ready if its wait set resolved.
// The running rank is left alone; its own handler completes the wait.
func (e *Engine) maybeWake(ps *procState) {
	if ps.status != stStuck || ps.waitSet == nil {
		return
	}
	for _, id := range ps.waitSet {
		if rs := ps.reqs[id]; rs == nil || !rs.done {
			return
		}
	}
	res, ok := e.completeWait(ps)
	if !ok {
		return
	}
	ps.pending = res
	ps.wake = res.now
	ps.status = stReady
	ps.blockedOn = ""
}

func (e *Engine) pruneMatched(ps *procState) {
	kept := ps.postedRecvs[:0]
	for _, pr := range ps.postedRecvs {
		if !pr.matched {
			kept = append(kept, pr)
		}
	}
	ps.postedRecvs = kept
}
