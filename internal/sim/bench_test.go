package sim

import (
	"testing"

	"pas2p/internal/machine"
	"pas2p/internal/network"
	"pas2p/internal/vtime"
)

// BenchmarkPingPong measures the engine's per-operation cost on the
// tightest possible loop: two ranks exchanging eager messages.
func BenchmarkPingPong(b *testing.B) {
	d, err := machine.NewDeployment(machine.ClusterA(), 2, machine.MapBlock)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	iters := b.N
	_, err = Run(Config{Deployment: d, Name: "bench", Body: func(p *Proc) {
		if p.Rank() == 0 {
			for i := 0; i < iters; i++ {
				p.Send(1, 0, 64, nil)
				p.Recv(1, 1)
			}
		} else {
			for i := 0; i < iters; i++ {
				p.Recv(0, 0)
				p.Send(0, 1, 64, nil)
			}
		}
	}})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAllreduce64 measures collective synchronisation cost across
// 64 ranks.
func BenchmarkAllreduce64(b *testing.B) {
	d, err := machine.NewDeployment(machine.ClusterC(), 64, machine.MapBlock)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	iters := b.N
	m := members(64)
	_, err = Run(Config{Deployment: d, Name: "bench", Body: func(p *Proc) {
		for i := 0; i < iters; i++ {
			p.Collective(network.Allreduce, 0, m, 0, 8, nil)
		}
	}})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkWildcardRecv measures the conservative wildcard-matching
// path: a master draining messages from 15 workers.
func BenchmarkWildcardRecv(b *testing.B) {
	d, err := machine.NewDeployment(machine.ClusterA(), 16, machine.MapBlock)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	iters := b.N
	_, err = Run(Config{Deployment: d, Name: "bench", Body: func(p *Proc) {
		if p.Rank() == 0 {
			for i := 0; i < iters; i++ {
				for w := 1; w < 16; w++ {
					p.Recv(AnySource, 0)
				}
			}
		} else {
			for i := 0; i < iters; i++ {
				p.Advance(vtime.Duration(p.Rank()) * vtime.Microsecond)
				p.Send(0, 0, 64, nil)
			}
		}
	}})
	if err != nil {
		b.Fatal(err)
	}
}
