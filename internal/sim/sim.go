// Package sim is a deterministic discrete-event simulator for
// message-passing programs. Each rank of a parallel application runs
// as a goroutine executing real Go code; whenever it performs a
// communication or declares computation, control passes to a
// sequential scheduler that advances virtual clocks using the machine
// and network models of packages machine and network.
//
// Exactly one goroutine (either the scheduler or a single rank) runs
// at any instant, and every scheduling decision uses deterministic
// tie-breaking, so a given program on a given deployment always
// produces bit-identical virtual timings. This property is what lets
// the PAS2P checkpoint substrate replace state capture with replay.
//
// The blocking rules implement standard MPI point-to-point semantics:
// eager messages complete locally, rendezvous messages wait for the
// matching receive, matching is non-overtaking per (source, tag), and
// wildcard-source receives are resolved with a conservative rule that
// only commits to a match when no other rank could still produce an
// earlier-arriving message.
package sim

import (
	"fmt"
	"sort"
	"strings"

	"pas2p/internal/faults"
	"pas2p/internal/machine"
	"pas2p/internal/obs"
	"pas2p/internal/vtime"
)

// AnySource and AnyTag are wildcard values for Recv/Irecv.
const (
	AnySource = -1
	AnyTag    = -1
)

// Config describes one simulated run.
type Config struct {
	// Deployment maps ranks onto a modelled cluster.
	Deployment *machine.Deployment
	// Body is the program executed by every rank.
	Body func(p *Proc)
	// Name labels the run in error messages.
	Name string
	// NICContention serialises inter-node messages on each node's
	// network interface: a message cannot begin injection before the
	// sender node's NIC finished the previous one, and cannot start
	// landing before the receiver node's NIC is free. Off by default
	// (infinite link capacity, the classic LogGP assumption).
	NICContention bool
	// AlgorithmicCollectives costs collectives by walking the standard
	// algorithms' rounds over the actual member paths (binomial trees,
	// recursive doubling, rings), so members complete at individually
	// skewed instants instead of one analytic completion time.
	AlgorithmicCollectives bool
	// Observer, when non-nil, receives run counters (messages, bytes,
	// collectives, a message-size histogram) and — if it carries a
	// timeline — one track per rank with compute/send/recv/collective
	// slices over virtual time. Nil skips all instrumentation.
	Observer *obs.Observer
	// Faults, when non-nil, injects deterministic message faults (loss
	// with virtual-clock retransmission, duplication, delay) and
	// compute-clock jitter into the run. Decisions are pure functions of
	// the injector's seed and each event's identity, so the simulator's
	// bit-identical-timing guarantee holds for faulted runs too. Nil
	// keeps the exact fault-free fast path.
	Faults *faults.Injector
	// TimelinePID reuses an already-allocated timeline process for the
	// rank tracks instead of allocating a fresh one; callers that need
	// to add events to the same tracks after the run (e.g. phase
	// boundaries discovered later) pre-allocate the pid. Zero allocates
	// a process named TimelineName (or "sim:"+Name).
	TimelinePID  int
	TimelineName string
}

// Result summarises a completed run.
type Result struct {
	// Finish is the virtual time at which the last rank finished: the
	// application execution time.
	Finish vtime.Time
	// RankFinish holds each rank's individual finish time.
	RankFinish []vtime.Time
	// Messages and Bytes count point-to-point traffic; Collectives
	// counts collective operations (one per operation, not per rank).
	Messages    int64
	Bytes       int64
	Collectives int64
}

type procStatus int8

const (
	stReady   procStatus = iota // has a known wake time, waiting to run
	stRunning                   // currently executing Go code
	stStuck                     // blocked on an unresolved operation
	stDone
)

// procState is the scheduler's view of one rank.
type procState struct {
	rank   int
	clock  vtime.Time
	wake   vtime.Time
	status procStatus

	resume chan result

	// pending holds the result to deliver at the next resume.
	pending result

	mode Mode

	// nonblocking request bookkeeping
	nextReqID int
	reqs      map[int]*reqState
	// waitSet is the set of request ids a stuck rank is waiting on
	// (blocking ops use a singleton set).
	waitSet  []int
	waitPost vtime.Time

	// postedRecvs in post order, matched entries pruned lazily.
	postedRecvs []*postedRecv

	// per-context collective sequence counters
	collSeq map[int]int

	blockedOn string
	sendIndex int64 // per-sender message counter (message uids)
	advSeq    int64 // per-rank compute-block counter (jitter keys)
}

// Mode adjusts how a rank's operations are costed; the signature
// executor uses it to fast-forward between phases (free mode, as if
// restored from a checkpoint) and to model cold-cache warm-up.
type Mode struct {
	// ComputeScale multiplies declared computation time. 1 is normal,
	// 0 skips compute cost entirely, >1 models a cold machine.
	ComputeScale float64
	// CommFree makes this rank's sends and receives instantaneous.
	CommFree bool
}

// NormalMode is the default costing.
var NormalMode = Mode{ComputeScale: 1}

type message struct {
	src, dst, tag, size int
	uid                 int64
	payload             any
	sendPost            vtime.Time
	arrival             vtime.Time
	senderDone          vtime.Time
	rdv                 bool
	timingKnown         bool
	matched             bool
	senderFree          bool
	// faultDelay is the injected extra latency (retransmissions plus
	// delay faults) added to this message's arrival.
	faultDelay vtime.Duration
	// senderReq, when non-nil, is a rendezvous send request whose
	// completion is pending on the match.
	senderReq *reqState
}

type postedRecv struct {
	owner    *procState
	src, tag int
	post     vtime.Time
	req      *reqState
	matched  bool
}

type reqKind int8

const (
	reqSend reqKind = iota
	reqRecv
)

type reqState struct {
	id       int
	kind     reqKind
	done     bool
	complete vtime.Time
	info     PtPInfo
	pr       *postedRecv
}

type chanKey struct{ src, dst int }

type collKey struct {
	ctx, seq int
}

type collState struct {
	op      int // network.CollectiveOp
	members []int
	root    int
	size    int
	arrived int
	tmax    vtime.Time
	// arrivals and payloads are indexed by position in members.
	arrivals []vtime.Time
	payloads []any
	freeAll  bool
}

// Engine drives one run. It lives on the scheduler goroutine; rank
// goroutines interact with it only through channels.
type Engine struct {
	cfg   Config
	n     int
	procs []*procState
	reqCh chan request

	channels map[chanKey]*msgQueue
	colls    map[collKey]*collState

	// Per-node NIC availability (transmit / receive sides), used when
	// Config.NICContention is set.
	nicTx, nicRx []vtime.Time

	// anyStuck lists ranks stuck on a wildcard-source receive; they
	// are re-examined whenever clocks advance.
	anyStuck []*procState

	doneCount int
	err       error

	stats Result

	// Timeline sink (nil when not observing) and the pid of the rank
	// tracks; msgBytes is the pre-resolved message-size histogram so
	// the send path never takes the registry lock.
	tl       *obs.Timeline
	tlPid    int
	msgBytes *obs.Histogram
}

type msgQueue struct{ q []*message }

// Run executes the configured program to completion and returns the
// timing result. It returns an error on deadlock, on inconsistent
// collective calls, or if any rank panics.
func Run(cfg Config) (Result, error) {
	if cfg.Deployment == nil {
		return Result{}, fmt.Errorf("sim %q: nil deployment", cfg.Name)
	}
	if cfg.Body == nil {
		return Result{}, fmt.Errorf("sim %q: nil body", cfg.Name)
	}
	e := &Engine{
		cfg:      cfg,
		n:        cfg.Deployment.Ranks,
		reqCh:    make(chan request),
		channels: make(map[chanKey]*msgQueue),
		colls:    make(map[collKey]*collState),
	}
	if cfg.NICContention {
		nodes := cfg.Deployment.Cluster.Nodes
		e.nicTx = make([]vtime.Time, nodes)
		e.nicRx = make([]vtime.Time, nodes)
	}
	if reg := cfg.Observer.Reg(); reg != nil {
		e.msgBytes = reg.Histogram("sim.msg_bytes",
			[]float64{64, 1024, 8192, 65536, 1 << 20})
	}
	if e.tl = cfg.Observer.TL(); e.tl != nil {
		e.tlPid = cfg.TimelinePID
		if e.tlPid == 0 {
			name := cfg.TimelineName
			if name == "" {
				name = "sim:" + cfg.Name
			}
			e.tlPid = e.tl.NewProcess(name)
		}
		for i := 0; i < e.n; i++ {
			e.tl.SetThreadName(e.tlPid, i, fmt.Sprintf("rank %d", i))
		}
	}
	e.procs = make([]*procState, e.n)
	for i := 0; i < e.n; i++ {
		ps := &procState{
			rank:    i,
			status:  stReady,
			resume:  make(chan result),
			reqs:    make(map[int]*reqState),
			collSeq: make(map[int]int),
			mode:    NormalMode,
			pending: result{},
		}
		e.procs[i] = ps
		p := &Proc{eng: e, st: ps}
		go rankMain(p, cfg.Body)
	}
	e.loop()
	if e.err != nil {
		e.abort()
		return Result{}, fmt.Errorf("sim %q: %w", cfg.Name, e.err)
	}
	e.stats.RankFinish = make([]vtime.Time, e.n)
	for i, ps := range e.procs {
		e.stats.RankFinish[i] = ps.clock
		if ps.clock > e.stats.Finish {
			e.stats.Finish = ps.clock
		}
	}
	if reg := cfg.Observer.Reg(); reg != nil {
		reg.Counter("sim.runs").Inc()
		reg.Counter("sim.messages").Add(e.stats.Messages)
		reg.Counter("sim.bytes").Add(e.stats.Bytes)
		reg.Counter("sim.collectives").Add(e.stats.Collectives)
		reg.Gauge("sim.last_finish_seconds").Set(e.stats.Finish.Seconds())
	}
	return e.stats, nil
}

// usec converts virtual nanoseconds to trace-event microseconds.
func usec(t vtime.Time) float64 { return float64(t) / 1e3 }

// slice emits one complete slice on a rank's timeline track; a no-op
// without a timeline or for empty intervals.
func (e *Engine) slice(rank int, name, cat string, start, end vtime.Time) {
	if e.tl == nil || end <= start {
		return
	}
	e.tl.Slice(e.tlPid, rank, name, cat, usec(start), float64(end.Sub(start))/1e3)
}

// instant emits an instant event on a rank's timeline track.
func (e *Engine) instant(rank int, name string, t vtime.Time) {
	if e.tl == nil {
		return
	}
	e.tl.Instant(e.tlPid, rank, name, usec(t))
}

// rankMain is the goroutine wrapper for one rank.
func rankMain(p *Proc, body func(*Proc)) {
	defer func() {
		if r := recover(); r != nil {
			if r == errAborted {
				return // engine is shutting down
			}
			p.eng.reqCh <- request{rank: p.st.rank, kind: opPanic,
				panicVal: fmt.Sprintf("%v", r)}
		}
	}()
	p.await() // wait for the first schedule
	body(p)
	p.eng.reqCh <- request{rank: p.st.rank, kind: opDone}
}

// loop is the scheduler: repeatedly run the earliest ready rank; when
// none is ready, resolve a conservative wildcard receive; otherwise
// report deadlock.
func (e *Engine) loop() {
	for e.doneCount < e.n && e.err == nil {
		e.retryAnyStuck(false)
		r := e.pickReady()
		if r == nil {
			if e.retryAnyStuck(true) {
				continue
			}
			e.err = e.deadlockError()
			return
		}
		e.runRank(r)
	}
}

func (e *Engine) pickReady() *procState {
	var best *procState
	for _, ps := range e.procs {
		if ps.status != stReady {
			continue
		}
		if best == nil || ps.wake < best.wake {
			best = ps
		}
	}
	return best
}

// runRank resumes one rank and services its requests until it blocks,
// finishes, or fails.
func (e *Engine) runRank(ps *procState) {
	ps.status = stRunning
	if ps.wake > ps.clock {
		ps.clock = ps.wake
	}
	ps.resume <- ps.pending
	for e.err == nil {
		req := <-e.reqCh
		if req.rank != ps.rank {
			// Can only happen if a rank goroutine escaped the
			// protocol; treat as fatal.
			e.err = fmt.Errorf("protocol violation: request from rank %d while %d runs", req.rank, ps.rank)
			return
		}
		res, blocked := e.handle(ps, req)
		if e.err != nil || blocked {
			return
		}
		if ps.status == stDone {
			return
		}
		ps.resume <- res
	}
}

// abort unblocks every live rank goroutine with a poison result so the
// process does not leak goroutines after a failed run.
func (e *Engine) abort() {
	for _, ps := range e.procs {
		if ps.status == stDone {
			continue
		}
		// Running rank is already back in the scheduler (handle
		// returned with err set) waiting on resume; stuck and ready
		// ranks also wait on resume.
		select {
		case ps.resume <- result{aborted: true}:
		default:
			// The rank is mid-request send; drain it first.
			go func(c chan result) { c <- result{aborted: true} }(ps.resume)
		}
	}
}

func (e *Engine) deadlockError() error {
	var b strings.Builder
	fmt.Fprintf(&b, "deadlock: %d of %d ranks blocked", e.n-e.doneCount, e.n)
	var ranks []int
	for _, ps := range e.procs {
		if ps.status != stDone {
			ranks = append(ranks, ps.rank)
		}
	}
	sort.Ints(ranks)
	for _, r := range ranks {
		ps := e.procs[r]
		fmt.Fprintf(&b, "\n  rank %d @ %v: %s", r, ps.clock, ps.blockedOn)
	}
	return fmt.Errorf("%s", b.String())
}

// effTime is a lower bound on the virtual time at which a rank could
// next initiate a send.
func (e *Engine) effTime(ps *procState) vtime.Time {
	if ps.status == stReady && ps.wake > ps.clock {
		return ps.wake
	}
	return ps.clock
}

func (e *Engine) chanFor(src, dst int) *msgQueue {
	k := chanKey{src, dst}
	q := e.channels[k]
	if q == nil {
		q = &msgQueue{}
		e.channels[k] = q
	}
	return q
}

// firstCompatible returns the earliest-sequence unmatched message in q
// matching the tag filter.
func (q *msgQueue) firstCompatible(tag int) *message {
	for _, m := range q.q {
		if m.matched {
			continue
		}
		if tag == AnyTag || m.tag == tag {
			return m
		}
	}
	return nil
}

func (q *msgQueue) push(m *message) {
	q.q = append(q.q, m)
}

// compact drops the matched prefix so queues stay short.
func (q *msgQueue) compact() {
	i := 0
	for i < len(q.q) && q.q[i].matched {
		i++
	}
	if i > 0 {
		q.q = append(q.q[:0], q.q[i:]...)
	}
}
