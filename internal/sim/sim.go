// Package sim is a deterministic discrete-event simulator for
// message-passing programs. Each rank of a parallel application runs
// as a goroutine executing real Go code; whenever it performs a
// communication or declares computation, the rank goroutine applies
// the operation to the engine directly, using the machine and network
// models of packages machine and network; it hands control to the
// sequential scheduler only when the operation blocks.
//
// Exactly one goroutine (either the scheduler or a single rank) runs
// at any instant, and every scheduling decision uses deterministic
// tie-breaking, so a given program on a given deployment always
// produces bit-identical virtual timings. This property is what lets
// the PAS2P checkpoint substrate replace state capture with replay.
//
// The blocking rules implement standard MPI point-to-point semantics:
// eager messages complete locally, rendezvous messages wait for the
// matching receive, matching is non-overtaking per (source, tag), and
// wildcard-source receives are resolved with a conservative rule that
// only commits to a match when no other rank could still produce an
// earlier-arriving message.
package sim

import (
	"fmt"
	"sort"
	"strings"

	"pas2p/internal/faults"
	"pas2p/internal/machine"
	"pas2p/internal/network"
	"pas2p/internal/obs"
	"pas2p/internal/vtime"
)

// AnySource and AnyTag are wildcard values for Recv/Irecv.
const (
	AnySource = -1
	AnyTag    = -1
)

// Config describes one simulated run.
type Config struct {
	// Deployment maps ranks onto a modelled cluster.
	Deployment *machine.Deployment
	// Body is the program executed by every rank.
	Body func(p *Proc)
	// Name labels the run in error messages.
	Name string
	// NICContention serialises inter-node messages on each node's
	// network interface: a message cannot begin injection before the
	// sender node's NIC finished the previous one, and cannot start
	// landing before the receiver node's NIC is free. Off by default
	// (infinite link capacity, the classic LogGP assumption).
	NICContention bool
	// AlgorithmicCollectives costs collectives by walking the standard
	// algorithms' rounds over the actual member paths (binomial trees,
	// recursive doubling, rings), so members complete at individually
	// skewed instants instead of one analytic completion time.
	AlgorithmicCollectives bool
	// Observer, when non-nil, receives run counters (messages, bytes,
	// collectives, a message-size histogram) and — if it carries a
	// timeline — one track per rank with compute/send/recv/collective
	// slices over virtual time. Nil skips all instrumentation.
	Observer *obs.Observer
	// Faults, when non-nil, injects deterministic message faults (loss
	// with virtual-clock retransmission, duplication, delay) and
	// compute-clock jitter into the run. Decisions are pure functions of
	// the injector's seed and each event's identity, so the simulator's
	// bit-identical-timing guarantee holds for faulted runs too. Nil
	// keeps the exact fault-free fast path.
	Faults *faults.Injector
	// TimelinePID reuses an already-allocated timeline process for the
	// rank tracks instead of allocating a fresh one; callers that need
	// to add events to the same tracks after the run (e.g. phase
	// boundaries discovered later) pre-allocate the pid. Zero allocates
	// a process named TimelineName (or "sim:"+Name).
	TimelinePID  int
	TimelineName string
}

// Result summarises a completed run.
type Result struct {
	// Finish is the virtual time at which the last rank finished: the
	// application execution time.
	Finish vtime.Time
	// RankFinish holds each rank's individual finish time.
	RankFinish []vtime.Time
	// Messages and Bytes count point-to-point traffic; Collectives
	// counts collective operations (one per operation, not per rank).
	Messages    int64
	Bytes       int64
	Collectives int64
}

type procStatus int8

const (
	stReady   procStatus = iota // has a known wake time, waiting to run
	stRunning                   // currently executing Go code
	stStuck                     // blocked on an unresolved operation
	stDone
)

// blockKind says which operation a stuck rank is parked on; together
// with blockInfo it lets deadlock reports render the same descriptions
// the engine used to build eagerly per blocking call, without paying
// fmt.Sprintf on the hot path.
type blockKind int8

const (
	bkNone blockKind = iota
	bkSend
	bkRecv
	bkWait
	bkColl
)

// blockInfo is the lazily-rendered "what is this rank blocked on"
// record; only deadlockError ever formats it.
type blockInfo struct {
	kind             blockKind
	peer, tag, size  int
	collOp           network.CollectiveOp
	collCtx, collSeq int
}

// procState is the scheduler's view of one rank.
type procState struct {
	rank   int
	clock  vtime.Time
	wake   vtime.Time
	status procStatus

	// resume wakes the rank goroutine; the payload travels in pending,
	// written strictly before the signal.
	resume  chan struct{}
	pending result

	mode Mode

	// nonblocking request bookkeeping: the live requests of this rank.
	// Outstanding sets are small, so a linear slice beats a map.
	nextReqID int
	reqs      []*reqState
	// waitSet is the set of request ids a stuck rank is waiting on;
	// blocking ops use wait1 as the backing store to avoid allocating
	// a singleton per call.
	waitSet  []int
	wait1    [1]int
	waitPost vtime.Time

	// postedRecvs in post order, matched entries pruned lazily.
	postedRecvs []*postedRecv

	// per-context collective sequence counters
	collSeq map[int]int

	block     blockInfo
	sendIndex int64 // per-sender message counter (message uids)
	advSeq    int64 // per-rank compute-block counter (jitter keys)
}

// Mode adjusts how a rank's operations are costed; the signature
// executor uses it to fast-forward between phases (free mode, as if
// restored from a checkpoint) and to model cold-cache warm-up.
type Mode struct {
	// ComputeScale multiplies declared computation time. 1 is normal,
	// 0 skips compute cost entirely, >1 models a cold machine.
	ComputeScale float64
	// CommFree makes this rank's sends and receives instantaneous.
	CommFree bool
}

// NormalMode is the default costing.
var NormalMode = Mode{ComputeScale: 1}

type message struct {
	src, dst, tag, size int
	uid                 int64
	payload             any
	sendPost            vtime.Time
	arrival             vtime.Time
	senderDone          vtime.Time
	rdv                 bool
	timingKnown         bool
	matched             bool
	senderFree          bool
	// faultDelay is the injected extra latency (retransmissions plus
	// delay faults) added to this message's arrival.
	faultDelay vtime.Duration
	// senderReq, when non-nil, is a rendezvous send request whose
	// completion is pending on the match.
	senderReq *reqState
}

type postedRecv struct {
	owner    *procState
	src, tag int
	post     vtime.Time
	req      *reqState
	matched  bool
}

type reqKind int8

const (
	reqSend reqKind = iota
	reqRecv
)

type reqState struct {
	id       int
	kind     reqKind
	done     bool
	complete vtime.Time
	info     PtPInfo
}

type collKey struct {
	ctx, seq int
}

type collState struct {
	op      int // network.CollectiveOp
	members []int
	root    int
	size    int
	arrived int
	tmax    vtime.Time
	// arrivals and payloads are indexed by position in members.
	arrivals []vtime.Time
	payloads []any
	freeAll  bool
}

// Engine drives one run. Engine state is mutated by exactly one
// goroutine at a time: the scheduler while picking, or the single
// running rank while applying an operation.
type Engine struct {
	cfg Config
	n   int

	procs []*procState
	// yieldCh is how the running rank returns control to the scheduler
	// when it parks, finishes or fails.
	yieldCh chan struct{}

	// ready is a binary min-heap of runnable ranks keyed on
	// (wake time, rank) — the indexed replacement for the former
	// O(P)-per-step linear scan. A rank is pushed exactly when it turns
	// stReady and popped exactly when scheduled, so no decrease-key is
	// ever needed.
	ready []*procState

	// channels is the flat [src*n+dst] point-to-point queue table;
	// a direct index replaces per-message map hashing.
	channels []msgQueue
	colls    map[collKey]*collState

	// Freelists recycle the per-operation records across the run:
	// messages (recycled when their queue compacts), posted receives
	// (recycled when matched entries are pruned) and requests
	// (recycled when a wait consumes them).
	msgFree []*message
	prFree  []*postedRecv
	reqFree []*reqState

	// Per-node NIC availability (transmit / receive sides), used when
	// Config.NICContention is set.
	nicTx, nicRx []vtime.Time

	// anyStuck lists ranks stuck on a wildcard-source receive; they
	// are re-examined whenever clocks advance.
	anyStuck []*procState

	doneCount int
	err       error

	stats Result

	// Timeline sink (nil when not observing) and the pid of the rank
	// tracks; msgBytes is the pre-resolved message-size histogram so
	// the send path never takes the registry lock.
	tl       *obs.Timeline
	tlPid    int
	msgBytes *obs.Histogram

	// Test hooks: useScan swaps the ready heap for the reference
	// linear scan (equivalence property tests), schedLog records the
	// rank schedule when non-nil.
	useScan  bool
	schedLog *[]int
}

// msgQueue is one (src, dst) point-to-point channel: messages in send
// order, consumed from head. Matched messages are skipped during scans
// and reclaimed by compactChan; head indexing keeps reclamation O(1)
// amortised where slicing the prefix off would cost O(queue) per match
// (quadratic for a flooding sender).
type msgQueue struct {
	q    []*message
	head int
}

// Run executes the configured program to completion and returns the
// timing result. It returns an error on deadlock, on inconsistent
// collective calls, or if any rank panics.
func Run(cfg Config) (Result, error) {
	e, err := newEngine(cfg)
	if err != nil {
		return Result{}, err
	}
	return e.run()
}

// newEngine validates the configuration and builds the run state; rank
// goroutines start in run.
func newEngine(cfg Config) (*Engine, error) {
	if cfg.Deployment == nil {
		return nil, fmt.Errorf("sim %q: nil deployment", cfg.Name)
	}
	if cfg.Body == nil {
		return nil, fmt.Errorf("sim %q: nil body", cfg.Name)
	}
	e := &Engine{
		cfg:     cfg,
		n:       cfg.Deployment.Ranks,
		yieldCh: make(chan struct{}),
		colls:   make(map[collKey]*collState),
	}
	e.channels = make([]msgQueue, e.n*e.n)
	if cfg.NICContention {
		nodes := cfg.Deployment.Cluster.Nodes
		e.nicTx = make([]vtime.Time, nodes)
		e.nicRx = make([]vtime.Time, nodes)
	}
	if reg := cfg.Observer.Reg(); reg != nil {
		e.msgBytes = reg.Histogram("sim.msg_bytes",
			[]float64{64, 1024, 8192, 65536, 1 << 20})
	}
	if e.tl = cfg.Observer.TL(); e.tl != nil {
		e.tlPid = cfg.TimelinePID
		if e.tlPid == 0 {
			name := cfg.TimelineName
			if name == "" {
				name = "sim:" + cfg.Name
			}
			e.tlPid = e.tl.NewProcess(name)
		}
		for i := 0; i < e.n; i++ {
			e.tl.SetThreadName(e.tlPid, i, fmt.Sprintf("rank %d", i))
		}
	}
	e.procs = make([]*procState, e.n)
	for i := 0; i < e.n; i++ {
		e.procs[i] = &procState{
			rank:    i,
			status:  stReady,
			resume:  make(chan struct{}),
			collSeq: map[int]int{},
			mode:    NormalMode,
		}
	}
	return e, nil
}

// run starts the rank goroutines, drives the scheduler loop, and
// collects the result.
func (e *Engine) run() (Result, error) {
	for _, ps := range e.procs {
		p := &Proc{eng: e, st: ps}
		go rankMain(p, e.cfg.Body)
		e.pushReady(ps)
	}
	e.loop()
	if e.err != nil {
		e.abort()
		return Result{}, fmt.Errorf("sim %q: %w", e.cfg.Name, e.err)
	}
	e.stats.RankFinish = make([]vtime.Time, e.n)
	for i, ps := range e.procs {
		e.stats.RankFinish[i] = ps.clock
		if ps.clock > e.stats.Finish {
			e.stats.Finish = ps.clock
		}
	}
	if reg := e.cfg.Observer.Reg(); reg != nil {
		reg.Counter("sim.runs").Inc()
		reg.Counter("sim.messages").Add(e.stats.Messages)
		reg.Counter("sim.bytes").Add(e.stats.Bytes)
		reg.Counter("sim.collectives").Add(e.stats.Collectives)
		reg.Gauge("sim.last_finish_seconds").Set(e.stats.Finish.Seconds())
	}
	return e.stats, nil
}

// usec converts virtual nanoseconds to trace-event microseconds.
func usec(t vtime.Time) float64 { return float64(t) / 1e3 }

// slice emits one complete slice on a rank's timeline track; a no-op
// without a timeline or for empty intervals.
func (e *Engine) slice(rank int, name, cat string, start, end vtime.Time) {
	if e.tl == nil || end <= start {
		return
	}
	e.tl.Slice(e.tlPid, rank, name, cat, usec(start), float64(end.Sub(start))/1e3)
}

// instant emits an instant event on a rank's timeline track.
func (e *Engine) instant(rank int, name string, t vtime.Time) {
	if e.tl == nil {
		return
	}
	e.tl.Instant(e.tlPid, rank, name, usec(t))
}

// rankMain is the goroutine wrapper for one rank. Completion and
// panics mutate engine state directly — safe because the rank is the
// single running goroutine — and then yield to the scheduler.
func rankMain(p *Proc, body func(*Proc)) {
	e := p.eng
	defer func() {
		if r := recover(); r != nil {
			if r == errAborted {
				return // engine is shutting down
			}
			p.st.status = stDone
			e.err = fmt.Errorf("rank %d panicked: %v", p.st.rank, r)
			e.yieldCh <- struct{}{}
		}
	}()
	p.await() // wait for the first schedule
	body(p)
	p.st.status = stDone
	e.doneCount++
	e.yieldCh <- struct{}{}
}

// loop is the scheduler: repeatedly run the earliest ready rank; when
// none is ready, resolve a conservative wildcard receive; otherwise
// report deadlock.
func (e *Engine) loop() {
	for e.doneCount < e.n && e.err == nil {
		e.retryAnyStuck(false)
		ps := e.popReady()
		if ps == nil {
			if e.retryAnyStuck(true) {
				continue
			}
			e.err = e.deadlockError()
			e.cfg.Observer.Event("sim.deadlock", e.err.Error(), -1, int64(e.n-e.doneCount))
			return
		}
		if e.schedLog != nil {
			*e.schedLog = append(*e.schedLog, ps.rank)
		}
		ps.status = stRunning
		if ps.wake > ps.clock {
			ps.clock = ps.wake
		}
		ps.resume <- struct{}{}
		// The rank now runs alone, applying its operations inline; it
		// signals back when it parks, finishes or fails.
		<-e.yieldCh
	}
}

// readyLess orders the ready heap: earliest wake first, ties broken by
// lowest rank — the exact order of the former first-wins linear scan.
func readyLess(a, b *procState) bool {
	if a.wake != b.wake {
		return a.wake < b.wake
	}
	return a.rank < b.rank
}

// pushReady inserts a newly-runnable rank into the ready heap.
func (e *Engine) pushReady(ps *procState) {
	if e.useScan {
		return
	}
	h := append(e.ready, ps)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !readyLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	e.ready = h
}

// popReady removes and returns the runnable rank with the earliest
// (wake, rank) key, or nil when none is ready.
func (e *Engine) popReady() *procState {
	if e.useScan {
		return e.pickReadyScan()
	}
	h := e.ready
	if len(h) == 0 {
		return nil
	}
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = nil
	h = h[:last]
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		if l >= len(h) {
			break
		}
		c := l
		if r < len(h) && readyLess(h[r], h[l]) {
			c = r
		}
		if !readyLess(h[c], h[i]) {
			break
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
	e.ready = h
	return top
}

// pickReadyScan is the pre-heap reference scheduler: scan every rank,
// keep the first with the strictly smallest wake. Kept as the oracle
// for the heap-equivalence property test.
func (e *Engine) pickReadyScan() *procState {
	var best *procState
	for _, ps := range e.procs {
		if ps.status != stReady {
			continue
		}
		if best == nil || ps.wake < best.wake {
			best = ps
		}
	}
	return best
}

// abort unblocks every live rank goroutine with a poison result so the
// process does not leak goroutines after a failed run.
func (e *Engine) abort() {
	for _, ps := range e.procs {
		if ps.status == stDone {
			continue
		}
		ps.pending = result{aborted: true}
		// Stuck and ready ranks wait in await; the formerly-running
		// rank is parked there too by the time loop exits.
		select {
		case ps.resume <- struct{}{}:
		default:
			// The rank has not reached its receive yet; deliver the
			// poison from the side.
			go func(c chan struct{}) { c <- struct{}{} }(ps.resume)
		}
	}
}

// blockedDesc renders what a stuck rank is parked on; called only from
// deadlockError, so the hot path never formats strings.
func (e *Engine) blockedDesc(ps *procState) string {
	switch ps.block.kind {
	case bkSend:
		return fmt.Sprintf("Send(dst=%d tag=%d size=%d, rendezvous)", ps.block.peer, ps.block.tag, ps.block.size)
	case bkRecv:
		return fmt.Sprintf("Recv(src=%d tag=%d)", ps.block.peer, ps.block.tag)
	case bkWait:
		return fmt.Sprintf("Wait(%v)", ps.waitSet)
	case bkColl:
		arrived, total := 0, 0
		if cs := e.colls[collKey{ctx: ps.block.collCtx, seq: ps.block.collSeq}]; cs != nil {
			arrived, total = cs.arrived, len(cs.members)
		}
		return fmt.Sprintf("%v(ctx=%d seq=%d, %d/%d arrived)",
			ps.block.collOp, ps.block.collCtx, ps.block.collSeq, arrived, total)
	default:
		return ""
	}
}

func (e *Engine) deadlockError() error {
	var b strings.Builder
	fmt.Fprintf(&b, "deadlock: %d of %d ranks blocked", e.n-e.doneCount, e.n)
	var ranks []int
	for _, ps := range e.procs {
		if ps.status != stDone {
			ranks = append(ranks, ps.rank)
		}
	}
	sort.Ints(ranks)
	for _, r := range ranks {
		ps := e.procs[r]
		fmt.Fprintf(&b, "\n  rank %d @ %v: %s", r, ps.clock, e.blockedDesc(ps))
	}
	return fmt.Errorf("%s", b.String())
}

// effTime is a lower bound on the virtual time at which a rank could
// next initiate a send.
func (e *Engine) effTime(ps *procState) vtime.Time {
	if ps.status == stReady && ps.wake > ps.clock {
		return ps.wake
	}
	return ps.clock
}

func (e *Engine) chanFor(src, dst int) *msgQueue {
	return &e.channels[src*e.n+dst]
}

// newMessage takes a message record from the freelist, or allocates.
func (e *Engine) newMessage() *message {
	if n := len(e.msgFree); n > 0 {
		m := e.msgFree[n-1]
		e.msgFree = e.msgFree[:n-1]
		return m
	}
	return &message{}
}

// newPostedRecv takes a posted-receive record from the freelist, or
// allocates.
func (e *Engine) newPostedRecv() *postedRecv {
	if n := len(e.prFree); n > 0 {
		pr := e.prFree[n-1]
		e.prFree = e.prFree[:n-1]
		return pr
	}
	return &postedRecv{}
}

// firstCompatible returns the earliest-sequence unmatched message in q
// matching the tag filter.
func (q *msgQueue) firstCompatible(tag int) *message {
	for _, m := range q.q[q.head:] {
		if m.matched {
			continue
		}
		if tag == AnyTag || m.tag == tag {
			return m
		}
	}
	return nil
}

func (q *msgQueue) push(m *message) {
	q.q = append(q.q, m)
}

// compactChan advances a queue past its matched prefix and recycles
// the dropped messages (nothing references a matched message once its
// rendezvous sender — if any — has been completed). The live window
// slides down only when the dead prefix dominates, keeping compaction
// O(1) amortised.
func (e *Engine) compactChan(q *msgQueue) {
	for q.head < len(q.q) && q.q[q.head].matched {
		if m := q.q[q.head]; m.senderReq == nil {
			*m = message{}
			e.msgFree = append(e.msgFree, m)
		}
		q.q[q.head] = nil
		q.head++
	}
	switch {
	case q.head == len(q.q):
		q.q = q.q[:0]
		q.head = 0
	case q.head > 64 && q.head*2 >= len(q.q):
		n := copy(q.q, q.q[q.head:])
		for i := n; i < len(q.q); i++ {
			q.q[i] = nil
		}
		q.q = q.q[:n]
		q.head = 0
	}
}
