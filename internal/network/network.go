// Package network models the communication costs of a cluster
// interconnect. It provides parameterised point-to-point timing (a
// LogGP-style latency/bandwidth/overhead model with eager and
// rendezvous protocols) and analytic cost formulas for the collective
// algorithms used by common MPI implementations. All results are
// virtual-time durations consumed by the simulation engine; the
// constants for concrete fabrics (Gigabit Ethernet, InfiniBand,
// intra-node shared memory) live in package machine.
package network

import (
	"math"

	"pas2p/internal/vtime"
)

// Params describes one communication path class (e.g. inter-node
// Gigabit Ethernet, or intra-node shared memory).
type Params struct {
	// Latency is the end-to-end zero-byte message latency (the "L"
	// of LogGP).
	Latency vtime.Duration
	// Bandwidth is the sustained network bandwidth in bytes/second
	// (1/G per byte).
	Bandwidth float64
	// SendOverhead / RecvOverhead are the CPU times a process is busy
	// initiating or completing a transfer (the "o" of LogGP).
	SendOverhead vtime.Duration
	RecvOverhead vtime.Duration
	// InjectionBandwidth is the rate (bytes/second) at which the
	// sending CPU serialises a message into the fabric; the sender is
	// busy for size/InjectionBandwidth after SendOverhead. It is
	// usually several times Bandwidth (memory-copy speed).
	InjectionBandwidth float64
	// EagerLimit is the message size (bytes) up to which the eager
	// protocol applies; larger messages use rendezvous and cannot
	// complete before the receive is posted.
	EagerLimit int
}

// Valid reports whether the parameters are physically meaningful.
func (p Params) Valid() bool {
	return p.Bandwidth > 0 && p.InjectionBandwidth > 0 &&
		p.Latency >= 0 && p.SendOverhead >= 0 && p.RecvOverhead >= 0 &&
		p.EagerLimit >= 0
}

// TransferTime is the wire serialisation time of size bytes.
func (p Params) TransferTime(size int) vtime.Duration {
	return rate(size, p.Bandwidth)
}

// InjectTime is the sender-side CPU serialisation time of size bytes.
func (p Params) InjectTime(size int) vtime.Duration {
	return rate(size, p.InjectionBandwidth)
}

func rate(size int, bytesPerSec float64) vtime.Duration {
	if size <= 0 {
		return 0
	}
	return vtime.Duration(math.Round(float64(size) / bytesPerSec * 1e9))
}

// P2PResult carries the timing of one point-to-point message.
type P2PResult struct {
	// SenderDone is when the sending process may proceed.
	SenderDone vtime.Time
	// Arrival is when the full message is available at the receiver;
	// a receive posted at tr completes at max(tr, Arrival)+RecvOverhead.
	Arrival vtime.Time
}

// Eager returns the timing of an eager-protocol message injected at
// sendStart. The sender is busy for SendOverhead + InjectTime and then
// proceeds; the message lands Latency + TransferTime after injection
// begins.
func (p Params) Eager(sendStart vtime.Time, size int) P2PResult {
	inject := p.SendOverhead + p.InjectTime(size)
	return P2PResult{
		SenderDone: sendStart.Add(inject),
		Arrival:    sendStart.Add(p.SendOverhead + p.Latency + p.TransferTime(size)),
	}
}

// Rendezvous returns the timing of a rendezvous-protocol message whose
// send was posted at sendStart and whose matching receive was posted
// at recvPost. The ready-to-send / clear-to-send handshake costs two
// latencies; data then moves at wire bandwidth.
func (p Params) Rendezvous(sendStart, recvPost vtime.Time, size int) P2PResult {
	// RTS arrives at sendStart+o+L; CTS leaves once the receive is
	// posted and arrives one latency later.
	rts := sendStart.Add(p.SendOverhead + p.Latency)
	cts := vtime.Max(rts, recvPost).Add(p.Latency)
	return P2PResult{
		SenderDone: cts.Add(p.SendOverhead + p.InjectTime(size)),
		Arrival:    cts.Add(p.SendOverhead + p.Latency + p.TransferTime(size)),
	}
}

// CollectiveOp enumerates the modelled collective operations.
type CollectiveOp int

const (
	Barrier CollectiveOp = iota
	Bcast
	Reduce
	Allreduce
	Gather
	Scatter
	Allgather
	Alltoall
)

var collectiveNames = [...]string{
	"Barrier", "Bcast", "Reduce", "Allreduce",
	"Gather", "Scatter", "Allgather", "Alltoall",
}

func (op CollectiveOp) String() string {
	if op < 0 || int(op) >= len(collectiveNames) {
		return "Collective(?)"
	}
	return collectiveNames[op]
}

// log2ceil returns ceil(log2(p)) for p >= 1.
func log2ceil(p int) int {
	n, v := 0, 1
	for v < p {
		v <<= 1
		n++
	}
	return n
}

// CollectiveCost returns the duration of a collective over procs
// participants exchanging size bytes per process, measured from the
// instant the last participant arrives. The formulas follow the
// standard algorithms (binomial trees for rooted ops,
// recursive-doubling/Rabenseifner for allreduce, ring allgather,
// pairwise exchange alltoall, dissemination barrier).
func (p Params) CollectiveCost(op CollectiveOp, procs, size int) vtime.Duration {
	if procs <= 1 {
		if op == Barrier {
			return 0
		}
		return p.SendOverhead + p.RecvOverhead
	}
	lg := vtime.Duration(log2ceil(procs))
	step := p.Latency + p.SendOverhead + p.RecvOverhead
	n := float64(size)
	pf := float64(procs)
	switch op {
	case Barrier:
		// Dissemination barrier: ceil(log2 P) zero-byte rounds.
		return lg * step
	case Bcast:
		// Binomial tree: ceil(log2 P) rounds of the full payload.
		return lg * (step + p.TransferTime(size))
	case Reduce:
		// Binomial tree plus a per-byte combine cost folded into the
		// receive path (modelled as one extra transfer of the payload).
		return lg*(step+p.TransferTime(size)) + p.TransferTime(size)/2
	case Allreduce:
		// Rabenseifner: reduce-scatter + allgather,
		// 2·log2(P)·step + 2·(P-1)/P·n/B.
		return 2*lg*step + rate(int(2*(pf-1)/pf*n), p.Bandwidth)
	case Gather, Scatter:
		// Binomial tree; total data crossing the root link is
		// (P-1)/P of the aggregate payload.
		return lg*step + rate(int((pf-1)*n), p.Bandwidth)
	case Allgather:
		// Ring: (P-1) steps of each process's block.
		return vtime.Duration(procs-1)*step + rate(int((pf-1)*n), p.Bandwidth)
	case Alltoall:
		// Pairwise exchange: (P-1) steps of one block each.
		return vtime.Duration(procs-1) * (step + p.TransferTime(size))
	default:
		return step
	}
}
