package network

import (
	"testing"
	"testing/quick"

	"pas2p/internal/vtime"
)

// uniformPath treats all pairs alike.
func uniformPath(p Params) func(a, b int) Params {
	return func(a, b int) Params { return p }
}

func TestScheduleSinglePair(t *testing.T) {
	p := testParams()
	members := []int{0, 1}
	off := CollectiveSchedule(Bcast, members, 0, 1024, uniformPath(p))
	if off[0] != 0 {
		t.Errorf("bcast root offset = %v, want 0", off[0])
	}
	want := p.Latency + p.SendOverhead + p.RecvOverhead + p.TransferTime(1024)
	if off[1] != want {
		t.Errorf("bcast leaf offset = %v, want %v", off[1], want)
	}
}

func TestScheduleSingleMember(t *testing.T) {
	off := CollectiveSchedule(Allreduce, []int{3}, 0, 64, uniformPath(testParams()))
	if len(off) != 1 || off[0] != 0 {
		t.Errorf("single member should be free: %v", off)
	}
}

func TestScheduleBcastTreeDepth(t *testing.T) {
	// Binomial broadcast over 8 uniform members: max depth = 3 rounds.
	p := testParams()
	off := CollectiveSchedule(Bcast, members8(), 0, 4096, uniformPath(p))
	stepCost := p.Latency + p.SendOverhead + p.RecvOverhead + p.TransferTime(4096)
	var max vtime.Duration
	for _, o := range off {
		if o > max {
			max = o
		}
	}
	if max != 3*stepCost {
		t.Errorf("bcast depth = %v, want 3 steps (%v)", max, 3*stepCost)
	}
	if off[0] != 0 {
		t.Error("root must finish immediately")
	}
}

func members8() []int { return []int{0, 1, 2, 3, 4, 5, 6, 7} }

func TestScheduleAllreduceSymmetric(t *testing.T) {
	// Recursive doubling over a power of two: every member ends equal.
	off := CollectiveSchedule(Allreduce, members8(), 0, 512, uniformPath(testParams()))
	for i := 1; i < len(off); i++ {
		if off[i] != off[0] {
			t.Fatalf("allreduce offsets uneven: %v", off)
		}
	}
	if off[0] <= 0 {
		t.Error("allreduce must cost time")
	}
}

func TestScheduleAllreduceNonPow2(t *testing.T) {
	off := CollectiveSchedule(Allreduce, []int{0, 1, 2, 3, 4, 5}, 0, 512, uniformPath(testParams()))
	for _, o := range off {
		if o <= 0 {
			t.Fatalf("non-pow2 allreduce left a free member: %v", off)
		}
	}
}

func TestScheduleReduceRootLast(t *testing.T) {
	// In a reduction the root finishes no earlier than any leaf sender.
	off := CollectiveSchedule(Reduce, members8(), 2, 1024, uniformPath(testParams()))
	root := off[2]
	for i, o := range off {
		if i != 2 && o > root {
			t.Errorf("member %d (%v) finishes after the reduce root (%v)", i, o, root)
		}
	}
	if root <= 0 {
		t.Error("reduce root must pay the tree")
	}
}

func TestScheduleMixedPathsSkew(t *testing.T) {
	// Members 0,1 connected by a fast path, the rest by a slow one:
	// the bcast leaves on the slow path must finish later than the
	// fast-path leaf.
	fast := testParams()
	fast.Latency = 1 * vtime.Microsecond
	slow := testParams()
	slow.Latency = 100 * vtime.Microsecond
	path := func(a, b int) Params {
		if a < 2 && b < 2 {
			return fast
		}
		return slow
	}
	off := CollectiveSchedule(Bcast, []int{0, 1, 2, 3}, 0, 0, path)
	if off[1] >= off[2] && off[1] >= off[3] {
		t.Errorf("fast-path leaf should beat slow leaves: %v", off)
	}
}

func TestScheduleAlltoallHeavier(t *testing.T) {
	p := testParams()
	a2a := CollectiveSchedule(Alltoall, members8(), 0, 4096, uniformPath(p))
	bc := CollectiveSchedule(Bcast, members8(), 0, 4096, uniformPath(p))
	var maxA, maxB vtime.Duration
	for i := range a2a {
		if a2a[i] > maxA {
			maxA = a2a[i]
		}
		if bc[i] > maxB {
			maxB = bc[i]
		}
	}
	if maxA <= maxB {
		t.Errorf("alltoall (%v) should cost more than bcast (%v)", maxA, maxB)
	}
}

// Property: schedules are deterministic and non-negative for any op,
// member count and size.
func TestQuickScheduleSane(t *testing.T) {
	p := testParams()
	err := quick.Check(func(opRaw, nRaw uint8, size uint16) bool {
		op := CollectiveOp(int(opRaw) % 8)
		n := int(nRaw)%16 + 1
		members := make([]int, n)
		for i := range members {
			members[i] = i
		}
		o1 := CollectiveSchedule(op, members, 0, int(size), uniformPath(p))
		o2 := CollectiveSchedule(op, members, 0, int(size), uniformPath(p))
		for i := range o1 {
			if o1[i] < 0 || o1[i] != o2[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}
