package network

import (
	"pas2p/internal/vtime"
)

// CollectiveSchedule computes per-member completion offsets for a
// collective by walking the rounds of the standard algorithm (binomial
// trees for rooted operations, recursive doubling for barriers and
// allreduce, a ring for allgather, pairwise exchange for alltoall),
// with each pairwise step costed by the actual path between the two
// members. Offsets are relative to the instant the last member arrives;
// the engine's algorithmic-collectives mode wakes each member at its
// own offset instead of a uniform analytic cost, which produces the
// per-rank skew real collectives exhibit on mixed intra-/inter-node
// member sets.
//
// members carries world ranks; rootIdx indexes into members. path maps
// two world ranks to their connecting parameters.
func CollectiveSchedule(op CollectiveOp, members []int, rootIdx, size int,
	path func(a, b int) Params) []vtime.Duration {
	n := len(members)
	done := make([]vtime.Duration, n)
	if n <= 1 {
		return done
	}
	step := func(a, b int, bytes int) vtime.Duration {
		p := path(members[a], members[b])
		return p.Latency + p.SendOverhead + p.RecvOverhead + p.TransferTime(bytes)
	}
	sync2 := func(a, b int, bytes int) {
		t := done[a]
		if done[b] > t {
			t = done[b]
		}
		t += step(a, b, bytes)
		done[a], done[b] = t, t
	}

	switch op {
	case Barrier:
		recursiveDoubling(done, n, func(a, b int) { sync2(a, b, 0) })
	case Allreduce:
		// Recursive doubling with the payload in both directions.
		recursiveDoubling(done, n, func(a, b int) { sync2(a, b, size) })
	case Bcast:
		binomialDown(done, n, rootIdx, func(parent, child int) {
			t := done[parent] + step(parent, child, size)
			if t > done[child] {
				done[child] = t
			}
		})
	case Reduce:
		binomialUp(done, n, rootIdx, func(child, parent int) {
			t := done[child] + step(child, parent, size)
			if t > done[parent] {
				done[parent] = t
			}
		})
	case Scatter:
		// Binomial tree; a parent forwards the blocks of its whole
		// subtree, so early rounds carry more data.
		binomialDownSized(done, n, rootIdx, size, step)
	case Gather:
		binomialUpSized(done, n, rootIdx, size, step)
	case Allgather:
		// Ring: n-1 rounds, each member exchanges one block with its
		// ring neighbours.
		for r := 0; r < n-1; r++ {
			next := make([]vtime.Duration, n)
			for i := 0; i < n; i++ {
				from := (i + n - 1) % n
				t := done[i]
				if done[from] > t {
					t = done[from]
				}
				next[i] = t + step(from, i, size)
			}
			copy(done, next)
		}
	case Alltoall:
		// Pairwise exchange: n-1 rounds, partner (i+r) mod n.
		for r := 1; r < n; r++ {
			next := make([]vtime.Duration, n)
			for i := 0; i < n; i++ {
				j := (i + r) % n
				t := done[i]
				if done[j] > t {
					t = done[j]
				}
				next[i] = t + step(i, j, size)
			}
			copy(done, next)
		}
	default:
		for i := range done {
			done[i] = step(0, i%n, size)
		}
	}
	return done
}

// recursiveDoubling runs ceil(log2 n) rounds of pairwise
// synchronisation; non-power-of-two tails fold into the main group
// before the rounds and unfold after.
func recursiveDoubling(done []vtime.Duration, n int, sync func(a, b int)) {
	pow2 := 1
	for pow2*2 <= n {
		pow2 *= 2
	}
	rem := n - pow2
	// Fold: extras send into their partner in the power-of-two group.
	for i := 0; i < rem; i++ {
		sync(pow2+i, i)
	}
	for k := 1; k < pow2; k *= 2 {
		for i := 0; i < pow2; i++ {
			j := i ^ k
			if i < j {
				sync(i, j)
			}
		}
	}
	// Unfold: partners release the extras.
	for i := 0; i < rem; i++ {
		sync(i, pow2+i)
	}
}

// binomialDown walks a binomial broadcast tree from rootIdx.
func binomialDown(done []vtime.Duration, n, rootIdx int, edge func(parent, child int)) {
	// Relabel so the root is virtual index 0.
	rel := func(v int) int { return (v + rootIdx) % n }
	for k := 1; k < n; k *= 2 {
		for v := 0; v < k && v+k < n; v++ {
			edge(rel(v), rel(v+k))
		}
	}
}

// binomialUp walks the reduction tree toward rootIdx.
func binomialUp(done []vtime.Duration, n, rootIdx int, edge func(child, parent int)) {
	rel := func(v int) int { return (v + rootIdx) % n }
	// Highest power of two below n.
	top := 1
	for top*2 < n {
		top *= 2
	}
	for k := top; k >= 1; k /= 2 {
		for v := 0; v < k && v+k < n; v++ {
			edge(rel(v+k), rel(v))
		}
	}
}

// binomialDownSized is Scatter: each edge carries the child subtree's
// aggregate block volume.
func binomialDownSized(done []vtime.Duration, n, rootIdx, blockSize int,
	step func(a, b, bytes int) vtime.Duration) {
	rel := func(v int) int { return (v + rootIdx) % n }
	for k := 1; k < n; k *= 2 {
		for v := 0; v < k && v+k < n; v++ {
			subtree := k
			if v+2*k > n {
				subtree = n - (v + k)
			}
			p, c := rel(v), rel(v+k)
			t := done[p] + step(p, c, blockSize*subtree)
			if t > done[c] {
				done[c] = t
			}
		}
	}
}

// binomialUpSized is Gather: mirrored volumes toward the root.
func binomialUpSized(done []vtime.Duration, n, rootIdx, blockSize int,
	step func(a, b, bytes int) vtime.Duration) {
	rel := func(v int) int { return (v + rootIdx) % n }
	top := 1
	for top*2 < n {
		top *= 2
	}
	for k := top; k >= 1; k /= 2 {
		for v := 0; v < k && v+k < n; v++ {
			subtree := k
			if v+2*k > n {
				subtree = n - (v + k)
			}
			c, p := rel(v+k), rel(v)
			t := done[c] + step(c, p, blockSize*subtree)
			if t > done[p] {
				done[p] = t
			}
		}
	}
}
