package network

import (
	"testing"
	"testing/quick"

	"pas2p/internal/vtime"
)

func testParams() Params {
	return Params{
		Latency:            50 * vtime.Microsecond,
		Bandwidth:          118e6,
		SendOverhead:       2 * vtime.Microsecond,
		RecvOverhead:       2 * vtime.Microsecond,
		InjectionBandwidth: 500e6,
		EagerLimit:         64 << 10,
	}
}

func TestParamsValid(t *testing.T) {
	if !testParams().Valid() {
		t.Error("testParams should be valid")
	}
	bad := testParams()
	bad.Bandwidth = 0
	if bad.Valid() {
		t.Error("zero bandwidth should be invalid")
	}
	bad = testParams()
	bad.Latency = -1
	if bad.Valid() {
		t.Error("negative latency should be invalid")
	}
}

func TestTransferTime(t *testing.T) {
	p := testParams()
	if p.TransferTime(0) != 0 {
		t.Error("zero bytes should cost nothing on the wire")
	}
	// 118 MB at 118 MB/s = 1 s.
	if got := p.TransferTime(118e6); got != vtime.Second {
		t.Errorf("TransferTime(118MB) = %v, want 1s", got)
	}
	if p.TransferTime(-5) != 0 {
		t.Error("negative size should clamp to zero")
	}
}

func TestEagerTiming(t *testing.T) {
	p := testParams()
	r := p.Eager(0, 1000)
	if r.SenderDone != vtime.Time(p.SendOverhead+p.InjectTime(1000)) {
		t.Errorf("SenderDone = %v", r.SenderDone)
	}
	wantArrival := vtime.Time(p.SendOverhead + p.Latency + p.TransferTime(1000))
	if r.Arrival != wantArrival {
		t.Errorf("Arrival = %v, want %v", r.Arrival, wantArrival)
	}
	if r.SenderDone >= r.Arrival {
		t.Error("eager sender should finish before the message lands")
	}
}

func TestRendezvousWaitsForReceiver(t *testing.T) {
	p := testParams()
	early := p.Rendezvous(0, 0, 1<<20)
	late := p.Rendezvous(0, vtime.Time(10*vtime.Millisecond), 1<<20)
	if late.Arrival <= early.Arrival {
		t.Error("rendezvous arrival must be delayed by a late receive post")
	}
	if late.SenderDone <= early.SenderDone {
		t.Error("rendezvous sender must be delayed by a late receive post")
	}
}

func TestRendezvousVsEagerOrdering(t *testing.T) {
	p := testParams()
	// With the receive already posted, rendezvous still pays the
	// handshake, so it must be slower than eager for the same size.
	e := p.Eager(0, 4096)
	r := p.Rendezvous(0, 0, 4096)
	if r.Arrival <= e.Arrival {
		t.Error("rendezvous handshake should add latency over eager")
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 64: 6, 65: 7, 1024: 10}
	for in, want := range cases {
		if got := log2ceil(in); got != want {
			t.Errorf("log2ceil(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestCollectiveCostMonotoneInProcs(t *testing.T) {
	p := testParams()
	ops := []CollectiveOp{Barrier, Bcast, Reduce, Allreduce, Gather, Scatter, Allgather, Alltoall}
	for _, op := range ops {
		prev := vtime.Duration(-1)
		for _, procs := range []int{2, 4, 16, 64, 256} {
			c := p.CollectiveCost(op, procs, 8192)
			if c <= 0 {
				t.Errorf("%v cost with %d procs should be positive", op, procs)
			}
			if c < prev {
				t.Errorf("%v cost decreased from %v to %v going to %d procs", op, prev, c, procs)
			}
			prev = c
		}
	}
}

func TestCollectiveCostSingleProc(t *testing.T) {
	p := testParams()
	if p.CollectiveCost(Barrier, 1, 0) != 0 {
		t.Error("single-proc barrier should be free")
	}
	if p.CollectiveCost(Bcast, 1, 100) <= 0 {
		t.Error("single-proc bcast should still cost local overhead")
	}
}

func TestCollectiveNames(t *testing.T) {
	if Allreduce.String() != "Allreduce" || Barrier.String() != "Barrier" {
		t.Error("collective names wrong")
	}
	if CollectiveOp(99).String() != "Collective(?)" {
		t.Error("out-of-range collective should stringify safely")
	}
}

// Property: point-to-point timings are monotone in message size and in
// start time, and never place arrival before the send started.
func TestQuickP2PMonotone(t *testing.T) {
	p := testParams()
	err := quick.Check(func(start int64, sz1, sz2 uint16) bool {
		ts := vtime.Time(start % 1e12)
		if ts < 0 {
			ts = -ts
		}
		a, b := int(sz1), int(sz2)
		if a > b {
			a, b = b, a
		}
		ra, rb := p.Eager(ts, a), p.Eager(ts, b)
		if rb.Arrival < ra.Arrival || rb.SenderDone < ra.SenderDone {
			return false
		}
		return ra.Arrival >= ts && ra.SenderDone >= ts
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

// Property: Alltoall over P procs costs at least as much as Bcast of
// one block for any size (it moves strictly more data).
func TestQuickAlltoallDominatesBcast(t *testing.T) {
	p := testParams()
	err := quick.Check(func(procs uint8, size uint16) bool {
		pr := int(procs)%255 + 2
		return p.CollectiveCost(Alltoall, pr, int(size)) >=
			p.CollectiveCost(Bcast, pr, int(size))/vtime.Duration(log2ceil(pr)+1)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}
