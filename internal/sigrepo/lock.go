package sigrepo

import (
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// acquireLock serializes repository writers through a lock file
// created with O_CREATE|O_EXCL. A competing writer retries with
// jittered exponential backoff for lockWait — jitter breaks the
// retry lockstep of writers that collided on the same attempt, which
// a fixed interval would repeat on every round — and publishes the
// total time spent waiting under repo.lock_wait_ns. A lock file older
// than staleLockAge is presumed abandoned by a crashed writer and
// taken over. The returned release func removes the lock.
func (r *Repo) acquireLock() (func(), error) {
	path := filepath.Join(r.dir, lockName)
	start := time.Now()
	deadline := start.Add(r.lockWait)
	backoff := r.retryBackoff
	// The wait counter covers every exit path: contended acquisitions
	// show up in the metric whether they eventually won or timed out.
	defer func() {
		if waited := time.Since(start); waited > time.Millisecond {
			r.bump("repo.lock_wait_ns", waited.Nanoseconds())
		}
	}()
	for {
		f, err := r.fs.CreateExclusive(path)
		if err == nil {
			fmt.Fprintf(f, "pid %d\nacquired %s\n", os.Getpid(), time.Now().Format(time.RFC3339Nano))
			f.Sync()
			f.Close()
			return func() { r.fs.Remove(path) }, nil
		}
		// Somebody holds it. Stale-lock takeover: a crashed writer
		// cannot release, so an old enough lock is broken.
		if fi, serr := r.fs.Stat(path); serr == nil {
			if age := time.Since(fi.ModTime()); age > r.staleLockAge {
				r.fs.Remove(path)
				r.bump("repo.lock_takeovers", 1)
				r.event("repo.lock_takeover",
					fmt.Sprintf("stale lock (age %v) broken and taken over", age.Round(time.Millisecond)))
				continue
			}
		} else if os.IsNotExist(serr) {
			continue // released between attempts; try again immediately
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("sigrepo: repository %s is locked (lock file %s; stale after %v)",
				r.dir, path, r.staleLockAge)
		}
		time.Sleep(jittered(backoff))
		if backoff < 100*time.Millisecond {
			backoff *= 2
		}
	}
}
