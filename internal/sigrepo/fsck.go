package sigrepo

import (
	"fmt"
	"path/filepath"
	"strings"
)

// FsckReport summarises one repair pass over the repository.
type FsckReport struct {
	// Scanned is the number of entry files examined.
	Scanned int
	// Verified is how many passed full verification.
	Verified int
	// Corrupt is how many failed their checksum (all are quarantined).
	Corrupt int
	// Quarantined lists the destination paths of quarantined files.
	Quarantined []string
	// TempsRemoved counts orphaned temp files from crashed writers.
	TempsRemoved int
	// ManifestAdopted counts valid entries that were missing from the
	// journal and are now journalled.
	ManifestAdopted int
	// ManifestDropped counts journal entries whose file is gone.
	ManifestDropped int
	// ManifestRebuilt is true when the journal itself was unreadable
	// and had to be rebuilt from the surviving entries.
	ManifestRebuilt bool
	// TracesScanned/TracesVerified/TracesCorrupt mirror the signature
	// counters for stored tracefiles, which are verified by streaming
	// every checksum (header, per-block, whole-file) without
	// materialising events. Corrupt tracefiles are quarantined too.
	TracesScanned  int
	TracesVerified int
	TracesCorrupt  int
	// Problems itemises everything found.
	Problems []Problem
}

func (rep *FsckReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fsck: %d scanned, %d verified, %d corrupt (%d quarantined)",
		rep.Scanned, rep.Verified, rep.Corrupt, len(rep.Quarantined))
	if rep.TracesScanned > 0 {
		fmt.Fprintf(&b, "\n  traces   : %d scanned, %d verified, %d corrupt",
			rep.TracesScanned, rep.TracesVerified, rep.TracesCorrupt)
	}
	fmt.Fprintf(&b, "\n  manifest : %d adopted, %d dropped, rebuilt=%v",
		rep.ManifestAdopted, rep.ManifestDropped, rep.ManifestRebuilt)
	if rep.TempsRemoved > 0 {
		fmt.Fprintf(&b, "\n  cleaned  : %d stray temp files", rep.TempsRemoved)
	}
	for _, p := range rep.Problems {
		fmt.Fprintf(&b, "\n  - %s", p)
	}
	return b.String()
}

// Fsck scans the repository, verifies every entry against its
// embedded checksum and the manifest, quarantines corrupt files under
// quarantine/, removes temp files left by crashed writers, and
// rebuilds the manifest to journal exactly the verified survivors.
// It takes the repo lock, so it is safe alongside concurrent Adds.
func (r *Repo) Fsck() (*FsckReport, error) {
	unlock, err := r.acquireLock()
	if err != nil {
		return nil, err
	}
	defer unlock()

	rep := &FsckReport{}
	names, traces, temps, err := r.scanNames()
	if err != nil {
		return nil, err
	}
	m, mProblem := r.loadManifestChecked()
	if mProblem != nil {
		rep.ManifestRebuilt = true
		rep.Problems = append(rep.Problems, *mProblem)
	}

	// Orphaned temp files are debris from crashed writers: the
	// rename never happened, so they hold no published data.
	for _, t := range temps {
		path := filepath.Join(r.dir, t)
		rep.Problems = append(rep.Problems, Problem{Path: path, Kind: "stray-temp"})
		if err := r.fs.Remove(path); err == nil {
			rep.TempsRemoved++
		}
	}

	rebuilt := newManifest()
	for _, name := range names {
		rep.Scanned++
		e, p := r.verifyEntry(name, m)
		if p != nil {
			rep.Problems = append(rep.Problems, *p)
		}
		if e == nil {
			rep.Corrupt++
			r.bump("repo.corrupt", 1)
			qpath, qerr := r.quarantine(name)
			if qerr != nil {
				return nil, qerr
			}
			rep.Quarantined = append(rep.Quarantined, qpath)
			r.bump("repo.quarantined", 1)
			r.event("repo.quarantine", "corrupt signature quarantined: "+qpath)
			continue
		}
		rep.Verified++
		r.bump("repo.verified", 1)
		// Re-journal from the file itself: the entry's bytes are the
		// authority for the rebuilt manifest.
		data, err := r.fs.ReadFile(filepath.Join(r.dir, name))
		if err != nil {
			return nil, fmt.Errorf("sigrepo: rereading %s: %w", name, err)
		}
		rebuilt.Entries[name] = manifestEntry{
			App:      e.Saved.AppName,
			Procs:    e.Saved.Procs,
			Workload: e.Saved.Workload,
			SHA256:   contentSHA256(data),
			Size:     int64(len(data)),
		}
		if m != nil {
			if _, ok := m.Entries[name]; !ok {
				rep.ManifestAdopted++
				rep.Problems = append(rep.Problems, Problem{
					Path: filepath.Join(r.dir, name), Kind: "unmanifested"})
			}
		} else if mProblem == nil {
			// Legacy repository without a journal: everything valid
			// is adopted silently.
			rep.ManifestAdopted++
		}
	}
	// Stored tracefiles: the same verify-or-quarantine pass, with
	// verification streamed through every checksum instead of loading
	// the events. The hash and size observed during the stream are the
	// authority for the rebuilt journal.
	for _, name := range traces {
		rep.TracesScanned++
		te, sha, size, p := r.verifyTrace(name, m)
		if p != nil {
			rep.Problems = append(rep.Problems, *p)
		}
		if te == nil {
			rep.TracesCorrupt++
			r.bump("repo.trace_corrupt", 1)
			qpath, qerr := r.quarantine(name)
			if qerr != nil {
				return nil, qerr
			}
			rep.Quarantined = append(rep.Quarantined, qpath)
			r.bump("repo.quarantined", 1)
			r.event("repo.quarantine", "corrupt tracefile quarantined: "+qpath)
			continue
		}
		rep.TracesVerified++
		r.bump("repo.trace_verified", 1)
		rebuilt.Entries[name] = manifestEntry{
			App:      te.Meta.AppName,
			Procs:    te.Meta.Procs,
			Workload: te.Workload,
			SHA256:   sha,
			Size:     size,
			Kind:     "trace",
		}
		if m != nil {
			if _, ok := m.Entries[name]; !ok {
				rep.ManifestAdopted++
				rep.Problems = append(rep.Problems, Problem{
					Path: filepath.Join(r.dir, name), Kind: "unmanifested"})
			}
		} else if mProblem == nil {
			rep.ManifestAdopted++
		}
	}

	if m != nil {
		have := make(map[string]bool, len(names)+len(traces))
		for _, n := range names {
			have[n] = true
		}
		for _, n := range traces {
			have[n] = true
		}
		for _, n := range sortedKeys(m.Entries) {
			if !have[n] {
				rep.ManifestDropped++
				rep.Problems = append(rep.Problems, Problem{
					Path: filepath.Join(r.dir, n), Kind: "manifest-orphan"})
			}
		}
	}
	if err := r.storeManifest(rebuilt); err != nil {
		return nil, err
	}
	if rep.ManifestRebuilt {
		r.event("repo.manifest_rebuilt",
			fmt.Sprintf("manifest rebuilt from %d verified entries", len(rebuilt.Entries)))
	}
	return rep, nil
}

// quarantine moves a corrupt entry into QuarantineDir, never
// overwriting earlier quarantined generations of the same name.
func (r *Repo) quarantine(name string) (string, error) {
	qdir := filepath.Join(r.dir, QuarantineDir)
	if err := r.fs.MkdirAll(qdir, 0o755); err != nil {
		return "", fmt.Errorf("sigrepo: creating quarantine: %w", err)
	}
	dst := filepath.Join(qdir, name)
	for gen := 1; ; gen++ {
		if _, err := r.fs.Stat(dst); err != nil {
			break
		}
		dst = filepath.Join(qdir, fmt.Sprintf("%s.%d", name, gen))
	}
	if err := r.fs.Rename(filepath.Join(r.dir, name), dst); err != nil {
		return "", fmt.Errorf("sigrepo: quarantining %s: %w", name, err)
	}
	if err := r.fs.SyncDir(r.dir); err != nil {
		return "", err
	}
	return dst, nil
}
