package sigrepo

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"path/filepath"

	"pas2p/internal/fsx"
)

// manifestVersion is the journal format; bump on layout changes.
const manifestVersion = 1

// manifestEntry journals one stored signature: its identity, the
// SHA-256 of the file's bytes, and its size. Size is a cheap first
// filter; the hash is the cross-check against swapped or rotted
// files whose embedded checksum still holds.
type manifestEntry struct {
	App      string `json:"app"`
	Procs    int    `json:"procs"`
	Workload string `json:"workload"`
	SHA256   string `json:"sha256"`
	Size     int64  `json:"size"`
	// Kind distinguishes artefact types: empty for signatures (the
	// original journal format, kept for compatibility) and "trace" for
	// stored tracefiles.
	Kind string `json:"kind,omitempty"`
}

// manifest is the repository journal: filename → entry metadata. It
// is rewritten atomically after every Add and rebuilt by Fsck; the
// per-file embedded checksums remain the authority, so a lost or
// corrupt manifest degrades verification, never data.
type manifest struct {
	FormatVersion int                      `json:"formatVersion"`
	Entries       map[string]manifestEntry `json:"entries"`
}

func newManifest() *manifest {
	return &manifest{FormatVersion: manifestVersion, Entries: map[string]manifestEntry{}}
}

// contentSHA256 hashes a file's bytes for the journal.
func contentSHA256(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// loadManifestChecked reads the journal; a missing manifest returns
// (nil, nil) — legacy repositories have none — and an unreadable or
// corrupt one returns (nil, problem) so callers can report it.
func (r *Repo) loadManifestChecked() (*manifest, *Problem) {
	path := filepath.Join(r.dir, manifestName)
	if _, err := r.fs.Stat(path); err != nil {
		return nil, nil
	}
	data, err := r.fs.ReadFile(path)
	if err != nil {
		return nil, &Problem{Path: path, Kind: "manifest-corrupt", Err: err}
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, &Problem{Path: path, Kind: "manifest-corrupt", Err: err}
	}
	if m.FormatVersion != manifestVersion {
		return nil, &Problem{Path: path, Kind: "manifest-corrupt",
			Err: fmt.Errorf("unsupported manifest version %d", m.FormatVersion)}
	}
	if m.Entries == nil {
		m.Entries = map[string]manifestEntry{}
	}
	return &m, nil
}

// loadManifestTolerant reads the journal for updating: anything
// missing or unreadable starts a fresh one (Fsck and the next Add
// re-journal what the directory actually holds).
func (r *Repo) loadManifestTolerant() *manifest {
	if m, _ := r.loadManifestChecked(); m != nil {
		return m
	}
	return newManifest()
}

// storeManifest writes the journal atomically, with bounded retry.
func (r *Repo) storeManifest(m *manifest) error {
	data, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		return fmt.Errorf("sigrepo: encoding manifest: %w", err)
	}
	path := filepath.Join(r.dir, manifestName)
	if err := r.withRetry(func() error {
		return fsx.WriteBytesAtomic(r.fs, path, append(data, '\n'))
	}); err != nil {
		return fmt.Errorf("sigrepo: writing manifest: %w", err)
	}
	return nil
}
