package sigrepo

// Stored tracefiles. A site that keeps signatures usually wants the
// traced run they came from — to re-extract phases with different
// knobs, or to audit a prediction — so the repository can journal
// binary tracefiles next to the signatures under the same identity
// scheme, with the same durability contract: atomic locked writes,
// manifest journalling, checksum-verified lookups, and Fsck
// quarantine.
//
// Tracefiles are orders of magnitude larger than signatures, so the
// verification path never slurps them: reads go through the fsx Open
// seam into trace.VerifyStream, which checks the header, every block
// CRC and the whole-file CRC block-by-block without materialising a
// single event.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"path/filepath"
	"strconv"
	"strings"

	"pas2p/internal/fsx"
	"pas2p/internal/trace"
)

const traceSuffix = ".trace.pas2p"

// traceKey builds the canonical filename for a stored tracefile; the
// scheme mirrors key() and is injective for the same reason.
func traceKey(appName string, procs int, workload string) string {
	return fmt.Sprintf("%s_p%d_%s%s", escapeComponent(appName), procs, escapeComponent(workload), traceSuffix)
}

// unescapeComponent inverts escapeComponent.
func unescapeComponent(s string) (string, error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '_' {
			b.WriteByte(s[i])
			continue
		}
		if i+2 >= len(s) {
			return "", fmt.Errorf("sigrepo: truncated escape in %q", s)
		}
		v, err := strconv.ParseUint(s[i+1:i+3], 16, 8)
		if err != nil {
			return "", fmt.Errorf("sigrepo: bad escape in %q: %w", s, err)
		}
		b.WriteByte(byte(v))
		i += 2
	}
	return b.String(), nil
}

// parseTraceKey recovers (app, procs, workload) from a trace filename.
// The first "_p" is unambiguous: escaped components contain '_' only
// as an _xx hex escape, and 'p' is not a hex digit.
func parseTraceKey(name string) (app string, procs int, workload string, err error) {
	s := strings.TrimSuffix(name, traceSuffix)
	i := strings.Index(s, "_p")
	if i < 0 {
		return "", 0, "", fmt.Errorf("sigrepo: unparseable trace name %q", name)
	}
	appEsc, rest := s[:i], s[i+2:]
	j := strings.IndexByte(rest, '_')
	if j < 0 {
		return "", 0, "", fmt.Errorf("sigrepo: unparseable trace name %q", name)
	}
	procs, err = strconv.Atoi(rest[:j])
	if err != nil {
		return "", 0, "", fmt.Errorf("sigrepo: unparseable trace name %q: %w", name, err)
	}
	if app, err = unescapeComponent(appEsc); err != nil {
		return "", 0, "", err
	}
	if workload, err = unescapeComponent(rest[j+1:]); err != nil {
		return "", 0, "", err
	}
	return app, procs, workload, nil
}

// TraceEntry describes one stored tracefile after verification.
type TraceEntry struct {
	Path     string
	Workload string
	// Meta is the verified tracefile header (app, procs, event count,
	// AET); the events themselves were not materialised.
	Meta trace.Meta
}

// AddTrace stores a tracefile under its application identity. The
// trace is encoded straight into the atomic temp file through the
// parallel block codec — it is never serialised to memory first — and
// journalled in the manifest with the SHA-256 of the streamed bytes.
func (r *Repo) AddTrace(t *trace.Trace, workload string) (string, error) {
	unlock, err := r.acquireLock()
	if err != nil {
		return "", err
	}
	defer unlock()

	name := traceKey(t.AppName, t.Procs, workload)
	path := filepath.Join(r.dir, name)
	h := sha256.New()
	var size int64
	if err := r.withRetry(func() error {
		h.Reset()
		size = 0
		return fsx.WriteFileAtomic(r.fs, path, func(w io.Writer) error {
			cw := &countWriter{w: io.MultiWriter(w, h), n: &size}
			return trace.EncodeWith(cw, t, trace.CodecOptions{Reg: r.reg})
		})
	}); err != nil {
		return "", fmt.Errorf("sigrepo: writing %s: %w", path, err)
	}
	r.bump("repo.trace_writes", 1)

	m := r.loadManifestTolerant()
	m.Entries[name] = manifestEntry{
		App:      t.AppName,
		Procs:    t.Procs,
		Workload: workload,
		SHA256:   hex.EncodeToString(h.Sum(nil)),
		Size:     size,
		Kind:     "trace",
	}
	if err := r.storeManifest(m); err != nil {
		return "", err
	}
	return path, nil
}

type countWriter struct {
	w io.Writer
	n *int64
}

func (cw *countWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	*cw.n += int64(n)
	return n, err
}

// verifyTrace streams one stored tracefile through every checksum and
// cross-checks the manifest, returning the verified entry plus the
// streamed hash and size for re-journalling. The shape mirrors
// verifyEntry: a non-nil entry may still carry a manifest-mismatch
// problem.
func (r *Repo) verifyTrace(name string, m *manifest) (*TraceEntry, string, int64, *Problem) {
	path := filepath.Join(r.dir, name)
	f, err := r.fs.Open(path)
	if err != nil {
		return nil, "", 0, &Problem{Path: path, Kind: "corrupt", Err: err}
	}
	defer f.Close()
	h := sha256.New()
	var size int64
	tee := io.TeeReader(&countReader{r: f, n: &size}, h)
	meta, err := trace.VerifyStream(tee)
	if err != nil {
		return nil, "", 0, &Problem{Path: path, Kind: "corrupt", Err: err}
	}
	// Drain past the trailer so the hash and size cover the whole
	// file, trailing junk included, as the manifest journalled it.
	if _, err := io.Copy(io.Discard, tee); err != nil {
		return nil, "", 0, &Problem{Path: path, Kind: "corrupt", Err: err}
	}
	sha := hex.EncodeToString(h.Sum(nil))

	workload := ""
	if _, _, wl, err := parseTraceKey(name); err == nil {
		workload = wl
	}
	te := &TraceEntry{Path: path, Workload: workload, Meta: meta}
	if m != nil {
		if me, ok := m.Entries[name]; ok {
			te.Workload = me.Workload
			if me.Size != size || me.SHA256 != sha {
				return te, sha, size, &Problem{Path: path, Kind: "manifest-mismatch"}
			}
		}
	}
	return te, sha, size, nil
}

type countReader struct {
	r io.Reader
	n *int64
}

func (cr *countReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	*cr.n += int64(n)
	return n, err
}

// LookupTrace finds and fully verifies the stored tracefile for an
// application identity without materialising its events.
func (r *Repo) LookupTrace(appName string, procs int, workload string) (*TraceEntry, error) {
	name := traceKey(appName, procs, workload)
	if _, err := r.fs.Stat(filepath.Join(r.dir, name)); err != nil {
		return nil, fmt.Errorf("sigrepo: no trace for %s/p%d/%q: %w", appName, procs, workload, err)
	}
	m, _ := r.loadManifestChecked()
	te, _, _, p := r.verifyTrace(name, m)
	if te == nil {
		r.bump("repo.trace_corrupt", 1)
		return nil, fmt.Errorf("sigrepo: trace for %s/p%d/%q is corrupt (%v); run fsck to quarantine it",
			appName, procs, workload, p.Err)
	}
	r.bump("repo.trace_verified", 1)
	return te, nil
}

// ReadTrace decodes a stored tracefile in full (checksum-verified,
// parallel decode). Use LookupTrace when only the metadata is needed.
func (r *Repo) ReadTrace(appName string, procs int, workload string) (*trace.Trace, error) {
	if _, err := r.LookupTrace(appName, procs, workload); err != nil {
		return nil, err
	}
	name := traceKey(appName, procs, workload)
	f, err := r.fs.Open(filepath.Join(r.dir, name))
	if err != nil {
		return nil, fmt.Errorf("sigrepo: opening trace: %w", err)
	}
	defer f.Close()
	return trace.DecodeWith(f, trace.CodecOptions{Reg: r.reg})
}

// ListTraces returns every verifiable stored tracefile, sorted by
// filename, plus the problems found; like List, corrupt entries are
// reported and skipped, never fatal.
func (r *Repo) ListTraces() ([]TraceEntry, []Problem, error) {
	_, traces, _, err := r.scanNames()
	if err != nil {
		return nil, nil, err
	}
	m, mProblem := r.loadManifestChecked()
	var out []TraceEntry
	var problems []Problem
	if mProblem != nil {
		problems = append(problems, *mProblem)
	}
	for _, name := range traces {
		te, _, _, p := r.verifyTrace(name, m)
		if p != nil {
			problems = append(problems, *p)
		}
		if te != nil {
			out = append(out, *te)
			r.bump("repo.trace_verified", 1)
		} else {
			r.bump("repo.trace_corrupt", 1)
		}
	}
	return out, problems, nil
}
