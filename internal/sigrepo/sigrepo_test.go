package sigrepo

import (
	"testing"

	"pas2p/internal/apps"
	"pas2p/internal/logical"
	"pas2p/internal/machine"
	"pas2p/internal/mpi"
	"pas2p/internal/phase"
	"pas2p/internal/signature"
)

func buildSig(t testing.TB, name string, procs int, workload string) *signature.Signature {
	t.Helper()
	app, err := apps.Make(name, procs, workload)
	if err != nil {
		t.Fatal(err)
	}
	base, err := machine.NewDeployment(machine.ClusterA(), procs, machine.MapBlock)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mpi.Run(app, mpi.RunConfig{Deployment: base, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	l, err := logical.Order(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	an, err := phase.Extract(l, phase.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tb, err := an.BuildTable(1)
	if err != nil {
		t.Fatal(err)
	}
	br, err := signature.Build(app, tb, base, signature.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return br.Signature
}

func TestRepoAddListLookupPredict(t *testing.T) {
	repo, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sig := buildSig(t, "cg", 8, "classA")
	path, err := repo.Add(sig, "classA", "Cluster A")
	if err != nil {
		t.Fatal(err)
	}
	if path == "" {
		t.Fatal("empty path")
	}
	sig2 := buildSig(t, "moldy", 8, "tip4p-short")
	if _, err := repo.Add(sig2, "tip4p-short", "Cluster A"); err != nil {
		t.Fatal(err)
	}

	entries, err := repo.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("list has %d entries, want 2", len(entries))
	}

	e, err := repo.Lookup("cg", 8, "classA")
	if err != nil {
		t.Fatal(err)
	}
	if e.Saved.AppName != "cg" || e.Saved.Procs != 8 {
		t.Errorf("lookup returned %+v", e.Saved)
	}

	target, err := machine.NewDeployment(machine.ClusterB(), 8, machine.MapBlock)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Predict(target, apps.Make)
	if err != nil {
		t.Fatal(err)
	}
	if res.PET <= 0 || res.SET <= 0 {
		t.Error("degenerate prediction from stored signature")
	}
}

func TestRepoLookupMissing(t *testing.T) {
	repo, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repo.Lookup("cg", 64, "classC"); err == nil {
		t.Error("missing entry should fail")
	}
}

func TestRepoOpenValidation(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Error("empty dir should fail")
	}
}

func TestRepoKeySanitisation(t *testing.T) {
	k := key("smg2000", 64, "-n 200 solver 3")
	if k != "smg2000_p64_-n_200_solver_3.sig.json" {
		t.Errorf("key = %q", k)
	}
}
