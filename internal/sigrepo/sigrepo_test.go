package sigrepo

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pas2p/internal/apps"
	"pas2p/internal/fsx"
	"pas2p/internal/logical"
	"pas2p/internal/machine"
	"pas2p/internal/mpi"
	"pas2p/internal/obs"
	"pas2p/internal/phase"
	"pas2p/internal/signature"
)

func buildSig(t testing.TB, name string, procs int, workload string) *signature.Signature {
	t.Helper()
	app, err := apps.Make(name, procs, workload)
	if err != nil {
		t.Fatal(err)
	}
	base, err := machine.NewDeployment(machine.ClusterA(), procs, machine.MapBlock)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mpi.Run(app, mpi.RunConfig{Deployment: base, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	l, err := logical.Order(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	an, err := phase.Extract(l, phase.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tb, err := an.BuildTable(1)
	if err != nil {
		t.Fatal(err)
	}
	br, err := signature.Build(app, tb, base, signature.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return br.Signature
}

// fastKnobs shrinks the lock/retry timings so failure-path tests don't
// spend wall-clock sleeping.
func fastKnobs(r *Repo) *Repo {
	r.retryBackoff = time.Millisecond
	r.lockWait = 50 * time.Millisecond
	// Wide margin above lockWait so a slow machine can't age a fresh
	// lock into takeover range while a test is still waiting on it.
	r.staleLockAge = time.Minute
	return r
}

func TestRepoAddListLookupPredict(t *testing.T) {
	reg := obs.NewRegistry()
	repo, err := OpenFS(t.TempDir(), nil, reg)
	if err != nil {
		t.Fatal(err)
	}
	sig := buildSig(t, "cg", 8, "classA")
	path, err := repo.Add(sig, "classA", "Cluster A")
	if err != nil {
		t.Fatal(err)
	}
	if path == "" {
		t.Fatal("empty path")
	}
	sig2 := buildSig(t, "moldy", 8, "tip4p-short")
	if _, err := repo.Add(sig2, "tip4p-short", "Cluster A"); err != nil {
		t.Fatal(err)
	}

	entries, problems, err := repo.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("list has %d entries, want 2", len(entries))
	}
	if len(problems) != 0 {
		t.Fatalf("healthy repo reported problems: %v", problems)
	}
	if got := reg.Counter("repo.verified").Value(); got != 2 {
		t.Errorf("repo.verified = %d, want 2", got)
	}

	e, err := repo.Lookup("cg", 8, "classA")
	if err != nil {
		t.Fatal(err)
	}
	if e.Saved.AppName != "cg" || e.Saved.Procs != 8 {
		t.Errorf("lookup returned %+v", e.Saved)
	}

	target, err := machine.NewDeployment(machine.ClusterB(), 8, machine.MapBlock)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Predict(target, apps.Make)
	if err != nil {
		t.Fatal(err)
	}
	if res.PET <= 0 || res.SET <= 0 {
		t.Error("degenerate prediction from stored signature")
	}
}

func TestRepoLookupMissing(t *testing.T) {
	repo, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repo.Lookup("cg", 64, "classC"); err == nil {
		t.Error("missing entry should fail")
	}
}

func TestRepoOpenValidation(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Error("empty dir should fail")
	}
}

func TestRepoKeyEscaping(t *testing.T) {
	k := key("smg2000", 64, "-n 200 solver 3")
	if k != "smg2000_p64_-n_20200_20solver_203.sig.json" {
		t.Errorf("key = %q", k)
	}
	// Safe characters pass through untouched.
	if got := key("cg.v2", 8, "classA"); got != "cg.v2_p8_classA.sig.json" {
		t.Errorf("key = %q", got)
	}
}

// TestRepoKeyCollisionRegression pins the fix for the old lossy
// sanitisation, which mapped every unsafe byte to '_' so "a/b" and
// "a_b" (and "a b") collided onto one file and silently overwrote
// each other's signatures.
func TestRepoKeyCollisionRegression(t *testing.T) {
	workloads := []string{"a/b", "a_b", "a b", "a_2fb", "a__b"}
	seen := map[string]string{}
	for _, wl := range workloads {
		k := key("app", 8, wl)
		if prev, dup := seen[k]; dup {
			t.Errorf("workloads %q and %q collide on key %q", prev, wl, k)
		}
		seen[k] = wl
	}
	// Same property across the app-name/workload boundary: the
	// separator must not be forgeable from inside a component.
	if key("app_p8_x", 8, "y") == key("app", 8, "x_p8_y") {
		t.Error("separator forgery collides keys")
	}
}

// errCreateFS fails every Create call, simulating a full or failing
// disk at publish time.
type errCreateFS struct {
	fsx.FS
}

func (f errCreateFS) Create(name string) (fsx.File, error) {
	return nil, errors.New("injected create failure")
}

// TestFailedAddLeavesNoPartialEntry is the crash-consistency
// regression: when the write fails, no *.sig.json (and no temp
// debris) may appear in the repository, and the lock must be
// released.
func TestFailedAddLeavesNoPartialEntry(t *testing.T) {
	dir := t.TempDir()
	repo, err := OpenFS(dir, errCreateFS{fsx.OS{}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	fastKnobs(repo)
	sig := buildSig(t, "cg", 8, "classA")
	if _, err := repo.Add(sig, "classA", "Cluster A"); err == nil {
		t.Fatal("Add over a failing filesystem should error")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), sigSuffix) {
			t.Errorf("failed Add left partial entry %s", e.Name())
		}
		if strings.HasPrefix(e.Name(), tmpPrefix) {
			t.Errorf("failed Add left temp file %s", e.Name())
		}
		if e.Name() == lockName {
			t.Errorf("failed Add left the lock held")
		}
	}
	// The repo stays usable: a later Add over a healthy filesystem
	// succeeds in the same directory.
	repo2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repo2.Add(sig, "classA", "Cluster A"); err != nil {
		t.Fatalf("recovery Add failed: %v", err)
	}
}

func TestListSkipsAndReportsCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	repo, err := OpenFS(dir, nil, reg)
	if err != nil {
		t.Fatal(err)
	}
	good := buildSig(t, "cg", 8, "classA")
	if _, err := repo.Add(good, "classA", "Cluster A"); err != nil {
		t.Fatal(err)
	}
	bad := buildSig(t, "moldy", 8, "tip4p-short")
	badPath, err := repo.Add(bad, "tip4p-short", "Cluster A")
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte behind the repository's back.
	data, err := os.ReadFile(badPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x42
	if err := os.WriteFile(badPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	entries, problems, err := repo.List()
	if err != nil {
		t.Fatalf("List must not fail on corrupt entries: %v", err)
	}
	if len(entries) != 1 || entries[0].Saved.AppName != "cg" {
		t.Fatalf("List = %d entries, want only the intact one", len(entries))
	}
	found := false
	for _, p := range problems {
		if p.Kind == "corrupt" && p.Path == badPath {
			found = true
		}
	}
	if !found {
		t.Fatalf("corrupt entry not reported; problems = %v", problems)
	}
	if got := reg.Counter("repo.corrupt").Value(); got != 1 {
		t.Errorf("repo.corrupt = %d, want 1", got)
	}

	// Lookup of the corrupt identity fails loudly, naming fsck.
	if _, err := repo.Lookup("moldy", 8, "tip4p-short"); err == nil || !strings.Contains(err.Error(), "fsck") {
		t.Errorf("corrupt lookup error = %v", err)
	}
	// The intact identity still serves.
	if _, err := repo.Lookup("cg", 8, "classA"); err != nil {
		t.Errorf("intact lookup failed: %v", err)
	}
}

func TestFsckQuarantinesAndRebuilds(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	repo, err := OpenFS(dir, nil, reg)
	if err != nil {
		t.Fatal(err)
	}
	good := buildSig(t, "cg", 8, "classA")
	if _, err := repo.Add(good, "classA", "Cluster A"); err != nil {
		t.Fatal(err)
	}
	bad := buildSig(t, "moldy", 8, "tip4p-short")
	badPath, err := repo.Add(bad, "tip4p-short", "Cluster A")
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one entry, strand a temp file, and orphan a manifest row.
	if err := os.WriteFile(badPath, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	stray := filepath.Join(dir, tmpPrefix+"crashed.sig.json")
	if err := os.WriteFile(stray, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	m := repo.loadManifestTolerant()
	m.Entries["ghost_p4_gone.sig.json"] = manifestEntry{App: "ghost", Procs: 4}
	if err := repo.storeManifest(m); err != nil {
		t.Fatal(err)
	}

	rep, err := repo.Fsck()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scanned != 2 || rep.Verified != 1 || rep.Corrupt != 1 {
		t.Fatalf("fsck counts wrong: %+v", rep)
	}
	if len(rep.Quarantined) != 1 || !strings.Contains(rep.Quarantined[0], QuarantineDir) {
		t.Fatalf("quarantine paths = %v", rep.Quarantined)
	}
	if rep.TempsRemoved != 1 || rep.ManifestDropped != 1 {
		t.Fatalf("fsck cleanup wrong: %+v", rep)
	}
	if _, err := os.Stat(rep.Quarantined[0]); err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}
	if _, err := os.Stat(badPath); !os.IsNotExist(err) {
		t.Fatalf("corrupt file still in repo: %v", err)
	}
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Fatalf("stray temp survived fsck: %v", err)
	}
	if got := reg.Counter("repo.quarantined").Value(); got != 1 {
		t.Errorf("repo.quarantined = %d, want 1", got)
	}

	// After repair the repo lists clean.
	entries, problems, err := repo.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || len(problems) != 0 {
		t.Fatalf("post-fsck list: %d entries, problems %v", len(entries), problems)
	}
	// Repeated quarantines of the same name don't clobber: corrupt the
	// survivor twice through re-add.
	if rep2, err := repo.Fsck(); err != nil || rep2.Corrupt != 0 {
		t.Fatalf("second fsck on clean repo: %+v, %v", rep2, err)
	}
}

func TestFsckRebuildsCorruptManifest(t *testing.T) {
	dir := t.TempDir()
	repo, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sig := buildSig(t, "cg", 8, "classA")
	if _, err := repo.Add(sig, "classA", "Cluster A"); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	// List degrades (reports the journal, serves the data)...
	entries, problems, err := repo.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("corrupt manifest must not hide entries: %d", len(entries))
	}
	hasManifestProblem := false
	for _, p := range problems {
		if p.Kind == "manifest-corrupt" {
			hasManifestProblem = true
		}
	}
	if !hasManifestProblem {
		t.Fatalf("corrupt manifest unreported: %v", problems)
	}
	// ...and Fsck rebuilds it.
	rep, err := repo.Fsck()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ManifestRebuilt || rep.Verified != 1 {
		t.Fatalf("fsck report: %+v", rep)
	}
	if _, problems, _ := repo.List(); len(problems) != 0 {
		t.Fatalf("problems after manifest rebuild: %v", problems)
	}
}

func TestFsckAdoptsUnmanifestedEntries(t *testing.T) {
	dir := t.TempDir()
	repo, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sig := buildSig(t, "cg", 8, "classA")
	if _, err := repo.Add(sig, "classA", "Cluster A"); err != nil {
		t.Fatal(err)
	}
	// Simulate a legacy repo: drop the journal entirely.
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal(err)
	}
	rep, err := repo.Fsck()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verified != 1 || rep.ManifestAdopted != 1 {
		t.Fatalf("fsck of legacy repo: %+v", rep)
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err != nil {
		t.Fatalf("manifest not recreated: %v", err)
	}
}

func TestLockContentionAndStaleTakeover(t *testing.T) {
	dir := t.TempDir()
	repo, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	fastKnobs(repo)
	lockPath := filepath.Join(dir, lockName)
	if err := os.WriteFile(lockPath, []byte("pid 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Fresh foreign lock: acquisition times out.
	now := time.Now()
	if err := os.Chtimes(lockPath, now, now); err != nil {
		t.Fatal(err)
	}
	if _, err := repo.acquireLock(); err == nil || !strings.Contains(err.Error(), "locked") {
		t.Fatalf("fresh lock should block: %v", err)
	}

	// Stale lock: taken over.
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(lockPath, old, old); err != nil {
		t.Fatal(err)
	}
	unlock, err := repo.acquireLock()
	if err != nil {
		t.Fatalf("stale lock not taken over: %v", err)
	}
	unlock()
	if _, err := os.Stat(lockPath); !os.IsNotExist(err) {
		t.Error("release did not remove the lock file")
	}
}

// TestConcurrentAddsSerialize races several writers against one
// repository: the lock file must serialize them so every entry and a
// consistent manifest survive.
func TestConcurrentAddsSerialize(t *testing.T) {
	repo, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ids := []chaosIdentity{{"cg", 8, "classA"}, {"ep", 8, "classA"}, {"moldy", 8, "tip4p-short"}}
	sigs := make([]*signature.Signature, len(ids))
	for i, id := range ids {
		sigs[i] = buildSig(t, id.app, id.procs, id.workload)
	}
	var wg sync.WaitGroup
	errs := make([]error, len(ids))
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = repo.Add(sigs[i], ids[i].workload, "Cluster A")
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent add %s: %v", ids[i].app, err)
		}
	}
	entries, problems, err := repo.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(ids) || len(problems) != 0 {
		t.Fatalf("after concurrent adds: %d entries, problems %v", len(entries), problems)
	}
}

// flakyFS fails the first n Create calls then recovers, exercising the
// bounded-retry path.
type flakyFS struct {
	fsx.FS
	failures int
}

func (f *flakyFS) Create(name string) (fsx.File, error) {
	if f.failures > 0 {
		f.failures--
		return nil, errors.New("transient failure")
	}
	return f.FS.Create(name)
}

func TestAddRetriesTransientFailures(t *testing.T) {
	reg := obs.NewRegistry()
	repo, err := OpenFS(t.TempDir(), &flakyFS{FS: fsx.OS{}, failures: 2}, reg)
	if err != nil {
		t.Fatal(err)
	}
	fastKnobs(repo)
	sig := buildSig(t, "cg", 8, "classA")
	if _, err := repo.Add(sig, "classA", "Cluster A"); err != nil {
		t.Fatalf("Add should survive 2 transient failures: %v", err)
	}
	if got := reg.Counter("repo.retries").Value(); got < 2 {
		t.Errorf("repo.retries = %d, want >= 2", got)
	}
	if _, err := repo.Lookup("cg", 8, "classA"); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentLookupAddFsckRace hammers one repository with readers
// (Lookup), writers (Add, re-adding the same identities so the lock
// stays hot), and a concurrent Fsck loop. Run under -race this pins
// the writer-lock discipline: no torn reads, no lost entries, no
// spurious quarantines — and contended acquisitions surface in the
// repo.lock_wait_ns counter instead of vanishing.
func TestConcurrentLookupAddFsckRace(t *testing.T) {
	reg := obs.NewRegistry()
	repo, err := OpenFS(t.TempDir(), fsx.OS{}, reg)
	if err != nil {
		t.Fatal(err)
	}
	ids := []chaosIdentity{{"cg", 4, "classA"}, {"ep", 4, "classA"}}
	sigs := make([]*signature.Signature, len(ids))
	for i, id := range ids {
		sigs[i] = buildSig(t, id.app, id.procs, id.workload)
		if _, err := repo.Add(sigs[i], id.workload, "Cluster A"); err != nil {
			t.Fatal(err)
		}
	}

	// Deterministic contention first: hold the lock, start a writer,
	// release — the writer's wait must land on the counter.
	release, err := repo.acquireLock()
	if err != nil {
		t.Fatal(err)
	}
	blocked := make(chan error, 1)
	go func() {
		_, aerr := repo.Add(sigs[0], ids[0].workload, "Cluster A")
		blocked <- aerr
	}()
	time.Sleep(20 * time.Millisecond)
	release()
	if aerr := <-blocked; aerr != nil {
		t.Fatalf("add after lock release: %v", aerr)
	}
	if got := reg.Counter("repo.lock_wait_ns").Value(); got <= 0 {
		t.Fatalf("repo.lock_wait_ns = %d after a contended add, want > 0", got)
	}

	// The storm: 4 re-adders, 4 lookupers, 1 fsck loop, all concurrent.
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				id := ids[(w+i)%len(ids)]
				if _, err := repo.Add(sigs[(w+i)%len(ids)], id.workload, "Cluster A"); err != nil {
					errCh <- fmt.Errorf("add %s: %w", id.app, err)
				}
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				id := ids[(w+i)%len(ids)]
				e, err := repo.Lookup(id.app, id.procs, id.workload)
				if err != nil {
					errCh <- fmt.Errorf("lookup %s: %w", id.app, err)
					continue
				}
				if e.Saved.AppName != id.app || e.Saved.Procs != id.procs {
					errCh <- fmt.Errorf("lookup %s returned %s/p%d", id.app, e.Saved.AppName, e.Saved.Procs)
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			rep, err := repo.Fsck()
			if err != nil {
				errCh <- fmt.Errorf("fsck: %w", err)
				continue
			}
			if len(rep.Quarantined) != 0 {
				errCh <- fmt.Errorf("fsck quarantined %v on a healthy repo", rep.Quarantined)
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	entries, problems, err := repo.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(ids) || len(problems) != 0 {
		t.Fatalf("after the storm: %d entries (want %d), problems %v", len(entries), len(ids), problems)
	}
}
