package sigrepo

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"pas2p/internal/faults"
	"pas2p/internal/fsx"
	"pas2p/internal/obs"
	"pas2p/internal/trace"
	"pas2p/internal/vtime"
)

// synthTrace builds a small deterministic trace: compute-separated
// collectives only, so it validates without send/recv relation
// plumbing.
func synthTrace(t *testing.T, app string, procs, events int) *trace.Trace {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(procs)*1e6 + int64(events)))
	streams := make([][]trace.Event, procs)
	for p := 0; p < procs; p++ {
		rec := trace.NewRecorder(p)
		var tp vtime.Time
		for i := 0; i < events; i++ {
			tp += vtime.Time(rng.Intn(900) + 1)
			rec.Record(trace.Event{
				Kind: trace.Collective, Involved: int32(procs), CollOp: 1, Peer: -1,
				Size: int64(rng.Intn(4096)), Enter: tp, Exit: tp + vtime.Time(rng.Intn(90)),
			})
		}
		streams[p] = rec.Events()
	}
	tr, err := trace.NewTrace(app, procs, streams, vtime.Duration(rng.Intn(1e9)))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestTraceAddLookupReadList(t *testing.T) {
	repo, err := OpenFS(t.TempDir(), nil, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	tr := synthTrace(t, "cg/dev_run", 4, 700) // name needs escaping
	path, err := repo.AddTrace(tr, "class A")
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != traceKey("cg/dev_run", 4, "class A") {
		t.Fatalf("unexpected path %s", path)
	}

	te, err := repo.LookupTrace("cg/dev_run", 4, "class A")
	if err != nil {
		t.Fatal(err)
	}
	if te.Meta.AppName != "cg/dev_run" || te.Meta.Procs != 4 ||
		te.Meta.Events != uint64(len(tr.Events)) || te.Workload != "class A" {
		t.Fatalf("lookup meta mismatch: %+v", te)
	}

	got, err := repo.ReadTrace("cg/dev_run", 4, "class A")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatal("stored trace does not round-trip")
	}

	entries, problems, err := repo.ListTraces()
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 || len(entries) != 1 {
		t.Fatalf("ListTraces: %d entries, problems %v", len(entries), problems)
	}

	// The trace entry must not confuse the signature listing or fsck.
	if _, problems, err = repo.List(); err != nil || len(problems) != 0 {
		t.Fatalf("List with trace present: problems %v, err %v", problems, err)
	}
	rep, err := repo.Fsck()
	if err != nil {
		t.Fatal(err)
	}
	if rep.TracesScanned != 1 || rep.TracesVerified != 1 || rep.TracesCorrupt != 0 {
		t.Fatalf("fsck trace counters: %+v", rep)
	}
	if rep.Scanned != 0 || rep.Corrupt != 0 {
		t.Fatalf("trace entry leaked into signature counters: %+v", rep)
	}
}

func TestTraceCorruptionQuarantined(t *testing.T) {
	dir := t.TempDir()
	repo, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	tr := synthTrace(t, "ep", 2, 1200)
	path, err := repo.AddTrace(tr, "classB")
	if err != nil {
		t.Fatal(err)
	}

	// Flip one byte in an event block.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := repo.LookupTrace("ep", 2, "classB"); err == nil {
		t.Fatal("corrupt trace served by LookupTrace")
	} else if !strings.Contains(err.Error(), "offset") {
		t.Fatalf("corruption error lacks offset: %v", err)
	}

	rep, err := repo.Fsck()
	if err != nil {
		t.Fatal(err)
	}
	if rep.TracesCorrupt != 1 || len(rep.Quarantined) != 1 {
		t.Fatalf("fsck did not quarantine corrupt trace: %+v", rep)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt trace still in place: %v", err)
	}
	if _, err := os.Stat(rep.Quarantined[0]); err != nil {
		t.Fatalf("quarantined copy missing: %v", err)
	}

	// After repair: clean repository, second fsck is a no-op.
	rep2, err := repo.Fsck()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.TracesScanned != 0 || rep2.TracesCorrupt != 0 || len(rep2.Problems) != 0 {
		t.Fatalf("second fsck found new damage: %+v", rep2)
	}
}

func TestParseTraceKeyRoundTrip(t *testing.T) {
	cases := []struct {
		app      string
		procs    int
		workload string
	}{
		{"cg", 8, "classA"},
		{"a/b_p", 16, "wl_p2_x"}, // separators inside components
		{"app name", 4, "päper"}, // spaces and UTF-8
		{"_p", 1, "_p"},          // pure separator lookalikes
		{"x", 1048576, "y.z-0"},  // max procs, safe punctuation
	}
	for _, c := range cases {
		name := traceKey(c.app, c.procs, c.workload)
		app, procs, wl, err := parseTraceKey(name)
		if err != nil {
			t.Fatalf("parse %q: %v", name, err)
		}
		if app != c.app || procs != c.procs || wl != c.workload {
			t.Fatalf("parse %q = (%q,%d,%q), want (%q,%d,%q)",
				name, app, procs, wl, c.app, c.procs, c.workload)
		}
	}
}

// TestTraceChaosFsck extends the durability property to stored
// tracefiles: every corruption the injector bakes into a trace write
// must be quarantined by Fsck or provably harmless (the entry still
// round-trips bit-identically).
func TestTraceChaosFsck(t *testing.T) {
	tr := synthTrace(t, "lu", 4, 2500)
	injected := int64(0)
	for _, seed := range []int64{3, 11, 77} {
		dir := t.TempDir()
		ffs, err := faults.NewFaultFS(fsx.OS{}, faults.FSConfig{
			Seed: seed, TornRate: 0.4, TruncRate: 0.4, FlipRate: 0.4,
		})
		if err != nil {
			t.Fatal(err)
		}
		dirty, err := OpenFS(dir, ffs, nil)
		if err != nil {
			t.Fatal(err)
		}
		fastKnobs(dirty)
		if _, err := dirty.AddTrace(tr, "classC"); err != nil {
			t.Fatalf("seed %d: AddTrace: %v", seed, err)
		}
		rpt := ffs.FSReport()
		injected += rpt.TornWrites + rpt.Truncations + rpt.Flips

		repo, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := repo.Fsck()
		if err != nil {
			t.Fatalf("seed %d: fsck: %v", seed, err)
		}
		corrupted := map[string]bool{}
		for _, p := range ffs.CorruptedPaths() {
			if strings.HasSuffix(p, traceSuffix) {
				corrupted[filepath.Base(p)] = true
			}
		}
		quarantined := map[string]bool{}
		for _, q := range rep.Quarantined {
			quarantined[filepath.Base(q)] = true
		}
		for base := range corrupted {
			if quarantined[base] {
				continue
			}
			got, err := repo.ReadTrace("lu", 4, "classC")
			if err != nil {
				t.Fatalf("seed %d: %s neither quarantined nor readable: %v", seed, base, err)
			}
			if !reflect.DeepEqual(got, tr) {
				t.Fatalf("seed %d: corrupt trace %s survived fsck and reads wrong", seed, base)
			}
		}
	}
	if injected == 0 {
		t.Fatal("fault schedule injected nothing; rates too low to prove anything")
	}
}
