// Package sigrepo manages a directory of persisted signatures — the
// "performance metadata of an application" the paper's introduction
// proposes: the site keeps one signature per (application, process
// count, workload), and schedulers or users look execution-time
// predictions up by executing the stored signature on the machine at
// hand instead of re-running applications.
//
// Because the stored artefacts, not live runs, are the system of
// record, the repository is built for crash safety and corruption
// detection:
//
//   - every write goes temp-file → fsync → rename → directory fsync
//     through the fsx seam, so a crash never leaves a half-written
//     entry visible;
//   - a MANIFEST.json journal records each entry's key, checksum and
//     size; readers verify entries lazily against their embedded
//     payload checksum and the manifest, skip corrupt files instead
//     of failing wholesale, and Fsck quarantines them and rebuilds
//     the manifest;
//   - concurrent writers serialize on a lock file with stale-lock
//     takeover, and transient I/O errors are retried with bounded
//     backoff.
//
// Operational counters are published to an optional obs.Registry
// under repo.* names (verified, corrupt, quarantined, retries, …).
package sigrepo

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"pas2p/internal/fsx"
	"pas2p/internal/machine"
	"pas2p/internal/mpi"
	"pas2p/internal/obs"
	"pas2p/internal/signature"
)

// Sentinel errors callers branch on (errors.Is). The service layer
// maps ErrNotFound to 404 and ErrCorrupt to a retryable 503: a
// corrupt entry heals after Fsck quarantines it and the signature is
// re-added, so "try again later" is the truthful answer.
var (
	// ErrNotFound marks a lookup of an identity with no stored entry.
	ErrNotFound = errors.New("signature not found")
	// ErrCorrupt marks an entry that exists but fails verification.
	ErrCorrupt = errors.New("signature corrupt")
)

const (
	manifestName = "MANIFEST.json"
	lockName     = "LOCK"
	// QuarantineDir is the subdirectory corrupt entries are moved to.
	QuarantineDir = "quarantine"
	sigSuffix     = ".sig.json"
	tmpPrefix     = ".tmp."
)

// Repo is a signature store rooted at a directory; each signature is
// one checksummed JSON file produced by signature.Save, journalled in
// the manifest.
type Repo struct {
	dir string
	fs  fsx.FS
	reg *obs.Registry
	obs *obs.Observer // flight-recorder events for durability incidents

	// Operational knobs, defaulted by open; tests shrink them.
	retryAttempts int           // bounded retry of transient write errors
	retryBackoff  time.Duration // base backoff between retries (doubled each)
	lockWait      time.Duration // how long Add/Fsck waits for the lock
	staleLockAge  time.Duration // locks older than this are taken over
}

// Open binds a repository to a directory on the real filesystem,
// creating it if needed.
func Open(dir string) (*Repo, error) {
	return OpenFS(dir, fsx.OS{}, nil)
}

// OpenFS binds a repository to a directory through an explicit
// filesystem seam (tests inject fault-injecting filesystems here) and
// an optional metrics registry for the repo.* counters.
func OpenFS(dir string, fs fsx.FS, reg *obs.Registry) (*Repo, error) {
	if dir == "" {
		return nil, fmt.Errorf("sigrepo: empty directory")
	}
	if fs == nil {
		fs = fsx.OS{}
	}
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sigrepo: %w", err)
	}
	return &Repo{
		dir:           dir,
		fs:            fs,
		reg:           reg,
		retryAttempts: 3,
		retryBackoff:  5 * time.Millisecond,
		lockWait:      2 * time.Second,
		staleLockAge:  5 * time.Minute,
	}, nil
}

// SetObserver attaches an observer whose flight recorder receives one
// structured event per durability incident (quarantine, manifest
// rebuild, lock takeover, retried write). Call before sharing the repo
// across goroutines; a nil observer detaches.
func (r *Repo) SetObserver(o *obs.Observer) {
	r.obs = o
	if o != nil && o.Reg() != nil {
		r.reg = o.Reg()
	}
}

// bump adds to a repo.* counter when a registry is attached.
func (r *Repo) bump(name string, n int64) {
	if r.reg != nil && n != 0 {
		r.reg.Counter(name).Add(n)
	}
}

// event records a durability incident on the attached flight recorder.
func (r *Repo) event(kind, msg string) {
	r.obs.Event(kind, msg, -1, 0)
}

// jittered spreads a backoff interval over [d/2, d): equal jitter, so
// writers that collided once (lock contention, shared transient
// fault) do not retry in lockstep and collide again. The randomness
// is operational only — it moves wall-clock sleep times, never any
// fault decision or stored byte.
func jittered(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)))
}

// withRetry runs op, retrying transient failures with jittered
// exponential backoff up to the configured attempt bound.
func (r *Repo) withRetry(op func() error) error {
	var err error
	backoff := r.retryBackoff
	for attempt := 0; ; attempt++ {
		if err = op(); err == nil {
			return nil
		}
		if attempt >= r.retryAttempts {
			return err
		}
		r.bump("repo.retries", 1)
		r.event("repo.retry", fmt.Sprintf("transient write error, retrying: %v", err))
		time.Sleep(jittered(backoff))
		backoff *= 2
	}
}

// escapeComponent maps an arbitrary string to a filesystem-safe,
// injective encoding: bytes outside [a-zA-Z0-9.-] become _xx (two
// lowercase hex digits). '_' itself is escaped, so distinct inputs
// can never collide (the old lossy sanitisation mapped "a/b" and
// "a_b" to the same file).
func escapeComponent(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '.':
			b.WriteByte(c)
		default:
			fmt.Fprintf(&b, "_%02x", c)
		}
	}
	return b.String()
}

// key builds the canonical filename for an entry. The escaped
// components contain '_' only as an escape prefix, so the _p<procs>_
// separators stay unambiguous and the mapping is injective.
func key(appName string, procs int, workload string) string {
	return fmt.Sprintf("%s_p%d_%s%s", escapeComponent(appName), procs, escapeComponent(workload), sigSuffix)
}

// Add stores a signature under its application identity: the entry is
// serialised in memory, written atomically (temp → fsync → rename →
// dir fsync), and journalled in the manifest, all under the repo
// lock. A failed Add never leaves a partial entry visible.
func (r *Repo) Add(sig *signature.Signature, workload, baseCluster string) (string, error) {
	var buf strings.Builder
	if err := sig.Save(&buf, workload, baseCluster); err != nil {
		return "", err
	}
	data := []byte(buf.String())

	unlock, err := r.acquireLock()
	if err != nil {
		return "", err
	}
	defer unlock()

	name := key(sig.App.Name, sig.App.Procs, workload)
	path := filepath.Join(r.dir, name)
	if err := r.withRetry(func() error {
		return fsx.WriteBytesAtomic(r.fs, path, data)
	}); err != nil {
		return "", fmt.Errorf("sigrepo: writing %s: %w", path, err)
	}
	r.bump("repo.writes", 1)

	m := r.loadManifestTolerant()
	m.Entries[name] = manifestEntry{
		App:      sig.App.Name,
		Procs:    sig.App.Procs,
		Workload: workload,
		SHA256:   contentSHA256(data),
		Size:     int64(len(data)),
	}
	if err := r.storeManifest(m); err != nil {
		return "", err
	}
	return path, nil
}

// Entry describes one stored signature.
type Entry struct {
	Path  string
	Saved *signature.Saved
}

// Problem describes one entry the repository could not serve, or a
// journal inconsistency found while scanning. Corrupt entries are
// reported here instead of failing List wholesale.
type Problem struct {
	// Path is the offending file (or manifest entry).
	Path string
	// Kind classifies the problem: "corrupt" (entry fails its
	// checksum), "manifest-mismatch" (valid entry disagreeing with
	// the journal), "manifest-orphan" (journal entry with no file),
	// "manifest-corrupt" (unreadable journal), or "stray-temp".
	Kind string
	// Err is the underlying error, when there is one.
	Err error
}

func (p Problem) String() string {
	if p.Err != nil {
		return fmt.Sprintf("%s: %s: %v", p.Kind, p.Path, p.Err)
	}
	return fmt.Sprintf("%s: %s", p.Kind, p.Path)
}

// scanNames lists the repository's signature, tracefile and stray
// temp filenames, each sorted.
func (r *Repo) scanNames() ([]string, []string, []string, error) {
	ents, err := r.fs.ReadDir(r.dir)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("sigrepo: scanning %s: %w", r.dir, err)
	}
	var names, traces, temps []string
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		n := e.Name()
		switch {
		case strings.HasPrefix(n, tmpPrefix):
			temps = append(temps, n)
		case strings.HasSuffix(n, sigSuffix):
			names = append(names, n)
		case strings.HasSuffix(n, traceSuffix):
			traces = append(traces, n)
		}
	}
	sort.Strings(names)
	sort.Strings(traces)
	sort.Strings(temps)
	return names, traces, temps, nil
}

// verifyEntry reads and fully verifies one entry: the embedded
// payload checksum must hold, and, when the manifest journals the
// entry, the file's size and content hash must match the journal.
func (r *Repo) verifyEntry(name string, m *manifest) (*Entry, *Problem) {
	path := filepath.Join(r.dir, name)
	data, err := r.fs.ReadFile(path)
	if err != nil {
		return nil, &Problem{Path: path, Kind: "corrupt", Err: err}
	}
	saved, err := signature.LoadSaved(strings.NewReader(string(data)))
	if err != nil {
		return nil, &Problem{Path: path, Kind: "corrupt", Err: err}
	}
	if m != nil {
		if me, ok := m.Entries[name]; ok {
			if me.Size != int64(len(data)) || me.SHA256 != contentSHA256(data) {
				// The file is internally consistent but disagrees
				// with the journal (stale manifest or swapped file):
				// surface it, but serve the file — its own checksum
				// is the authority.
				return &Entry{Path: path, Saved: saved},
					&Problem{Path: path, Kind: "manifest-mismatch"}
			}
		}
	}
	return &Entry{Path: path, Saved: saved}, nil
}

// List returns every verifiable stored signature, sorted by filename,
// plus a report of entries it had to skip or flag. Corrupt entries
// degrade gracefully: they are reported, never returned, and never
// fail the listing.
func (r *Repo) List() ([]Entry, []Problem, error) {
	names, traces, temps, err := r.scanNames()
	if err != nil {
		return nil, nil, err
	}
	m, mProblem := r.loadManifestChecked()
	var out []Entry
	var problems []Problem
	if mProblem != nil {
		problems = append(problems, *mProblem)
	}
	for _, t := range temps {
		problems = append(problems, Problem{Path: filepath.Join(r.dir, t), Kind: "stray-temp"})
	}
	for _, name := range names {
		e, p := r.verifyEntry(name, m)
		if p != nil {
			problems = append(problems, *p)
		}
		if e != nil {
			out = append(out, *e)
			r.bump("repo.verified", 1)
		} else {
			r.bump("repo.corrupt", 1)
		}
	}
	if m != nil {
		have := make(map[string]bool, len(names)+len(traces))
		for _, n := range names {
			have[n] = true
		}
		// Trace entries share the journal; their files are verified by
		// ListTraces, but their presence matters for orphan detection.
		for _, n := range traces {
			have[n] = true
		}
		for _, n := range sortedKeys(m.Entries) {
			if !have[n] {
				problems = append(problems, Problem{Path: filepath.Join(r.dir, n), Kind: "manifest-orphan"})
			}
		}
	}
	return out, problems, nil
}

// Lookup finds the stored signature for an application identity. A
// corrupt entry fails the lookup with a description of the corruption
// rather than decoding into a wrong signature.
func (r *Repo) Lookup(appName string, procs int, workload string) (*Entry, error) {
	name := key(appName, procs, workload)
	if _, err := r.fs.Stat(filepath.Join(r.dir, name)); err != nil {
		return nil, fmt.Errorf("sigrepo: no signature for %s/p%d/%q (%v): %w", appName, procs, workload, err, ErrNotFound)
	}
	m, _ := r.loadManifestChecked()
	e, p := r.verifyEntry(name, m)
	if e == nil {
		r.bump("repo.corrupt", 1)
		return nil, fmt.Errorf("sigrepo: signature for %s/p%d/%q is corrupt (%v); run fsck to quarantine it: %w",
			appName, procs, workload, p.Err, ErrCorrupt)
	}
	r.bump("repo.verified", 1)
	return e, nil
}

// Predict reattaches the application code (via makeApp) to a stored
// signature and executes it on the target.
func (e *Entry) Predict(target *machine.Deployment,
	makeApp func(name string, procs int, workload string) (mpi.App, error)) (*signature.ExecResult, error) {
	app, err := makeApp(e.Saved.AppName, e.Saved.Procs, e.Saved.Workload)
	if err != nil {
		return nil, err
	}
	sig, err := e.Saved.Reassemble(app)
	if err != nil {
		return nil, err
	}
	return sig.Execute(target)
}

func sortedKeys(m map[string]manifestEntry) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
