// Package sigrepo manages a directory of persisted signatures — the
// "performance metadata of an application" the paper's introduction
// proposes: the site keeps one signature per (application, process
// count, workload), and schedulers or users look execution-time
// predictions up by executing the stored signature on the machine at
// hand instead of re-running applications.
package sigrepo

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"pas2p/internal/machine"
	"pas2p/internal/mpi"
	"pas2p/internal/signature"
)

// Repo is a signature store rooted at a directory; each signature is
// one JSON file produced by signature.Save.
type Repo struct {
	dir string
}

// Open binds a repository to a directory, creating it if needed.
func Open(dir string) (*Repo, error) {
	if dir == "" {
		return nil, fmt.Errorf("sigrepo: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sigrepo: %w", err)
	}
	return &Repo{dir: dir}, nil
}

// key builds the canonical filename for an entry.
func key(appName string, procs int, workload string) string {
	sanitized := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.':
			return r
		default:
			return '_'
		}
	}, workload)
	return fmt.Sprintf("%s_p%d_%s.sig.json", appName, procs, sanitized)
}

// Add stores a signature under its application identity.
func (r *Repo) Add(sig *signature.Signature, workload, baseCluster string) (string, error) {
	path := filepath.Join(r.dir, key(sig.App.Name, sig.App.Procs, workload))
	f, err := os.Create(path)
	if err != nil {
		return "", fmt.Errorf("sigrepo: %w", err)
	}
	defer f.Close()
	if err := sig.Save(f, workload, baseCluster); err != nil {
		return "", err
	}
	return path, nil
}

// Entry describes one stored signature.
type Entry struct {
	Path  string
	Saved *signature.Saved
}

// List returns every stored signature, sorted by filename.
func (r *Repo) List() ([]Entry, error) {
	matches, err := filepath.Glob(filepath.Join(r.dir, "*.sig.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(matches)
	var out []Entry
	for _, path := range matches {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		saved, err := signature.LoadSaved(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("sigrepo: %s: %w", path, err)
		}
		out = append(out, Entry{Path: path, Saved: saved})
	}
	return out, nil
}

// Lookup finds the stored signature for an application identity.
func (r *Repo) Lookup(appName string, procs int, workload string) (*Entry, error) {
	path := filepath.Join(r.dir, key(appName, procs, workload))
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("sigrepo: no signature for %s/p%d/%q: %w", appName, procs, workload, err)
	}
	defer f.Close()
	saved, err := signature.LoadSaved(f)
	if err != nil {
		return nil, err
	}
	return &Entry{Path: path, Saved: saved}, nil
}

// Predict reattaches the application code (via makeApp) to a stored
// signature and executes it on the target.
func (e *Entry) Predict(target *machine.Deployment,
	makeApp func(name string, procs int, workload string) (mpi.App, error)) (*signature.ExecResult, error) {
	app, err := makeApp(e.Saved.AppName, e.Saved.Procs, e.Saved.Workload)
	if err != nil {
		return nil, err
	}
	sig, err := e.Saved.Reassemble(app)
	if err != nil {
		return nil, err
	}
	return sig.Execute(target)
}
