package sigrepo

import (
	"path/filepath"
	"strings"
	"testing"

	"pas2p/internal/apps"
	"pas2p/internal/faults"
	"pas2p/internal/fsx"
	"pas2p/internal/machine"
	"pas2p/internal/obs"
	"pas2p/internal/signature"
)

type chaosIdentity struct {
	app      string
	procs    int
	workload string
}

var chaosIdentities = []chaosIdentity{
	{"cg", 8, "classA"},
	{"ep", 8, "classA"},
	{"moldy", 8, "tip4p-short"},
}

func predictStored(t *testing.T, repo *Repo, id chaosIdentity, target *machine.Deployment) *signature.ExecResult {
	t.Helper()
	e, err := repo.Lookup(id.app, id.procs, id.workload)
	if err != nil {
		t.Fatalf("lookup %s/p%d/%q: %v", id.app, id.procs, id.workload, err)
	}
	res, err := e.Predict(target, apps.Make)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestChaosFsckRepairsSeededCorruption is the end-to-end durability
// property: signatures stored through a fault-injecting filesystem
// (seeded torn writes, tail truncations, bit-flips) must never be
// served wrong. For every path the injector reports corrupted, Fsck
// either quarantines the file or the damage is provably harmless (the
// entry still predicts bit-identically to a baseline stored on a
// healthy disk). List never fails outright, and after repair the
// repository is clean.
func TestChaosFsckRepairsSeededCorruption(t *testing.T) {
	target, err := machine.NewDeployment(machine.ClusterB(), 8, machine.MapBlock)
	if err != nil {
		t.Fatal(err)
	}

	// Baseline: the same signatures stored and served with no faults.
	sigs := make(map[chaosIdentity]*signature.Signature)
	baseRepo, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	baseline := make(map[chaosIdentity]*signature.ExecResult)
	for _, id := range chaosIdentities {
		sigs[id] = buildSig(t, id.app, id.procs, id.workload)
		if _, err := baseRepo.Add(sigs[id], id.workload, "Cluster A"); err != nil {
			t.Fatal(err)
		}
		baseline[id] = predictStored(t, baseRepo, id, target)
	}

	totalInjected := int64(0)
	for _, seed := range []int64{1, 7, 42, 1337} {
		dir := t.TempDir()
		ffs, err := faults.NewFaultFS(fsx.OS{}, faults.FSConfig{
			Seed: seed, TornRate: 0.30, TruncRate: 0.30, FlipRate: 0.30,
		})
		if err != nil {
			t.Fatal(err)
		}
		dirty, err := OpenFS(dir, ffs, nil)
		if err != nil {
			t.Fatal(err)
		}
		fastKnobs(dirty)
		for _, id := range chaosIdentities {
			// The disk lies silently, so Add itself succeeds; the
			// corruption is what Fsck must find afterwards.
			if _, err := dirty.Add(sigs[id], id.workload, "Cluster A"); err != nil {
				t.Fatalf("seed %d: add %s: %v", seed, id.app, err)
			}
		}
		corrupted := ffs.CorruptedPaths()
		rpt := ffs.FSReport()
		totalInjected += rpt.TornWrites + rpt.Truncations + rpt.Flips

		// Reopen on the healthy filesystem: the faults are now history
		// baked into the files, exactly what a real fsck faces.
		repo, err := OpenFS(dir, nil, obs.NewRegistry())
		if err != nil {
			t.Fatal(err)
		}

		// Graceful degradation: a corrupted repository still lists.
		if _, _, err := repo.List(); err != nil {
			t.Fatalf("seed %d: List failed on corrupted repo: %v", seed, err)
		}

		rep, err := repo.Fsck()
		if err != nil {
			t.Fatalf("seed %d: fsck: %v", seed, err)
		}
		quarantined := make(map[string]bool)
		for _, q := range rep.Quarantined {
			quarantined[strings.TrimSuffix(filepath.Base(q), filepath.Ext(filepath.Base(q)))] = true
			quarantined[filepath.Base(q)] = true
		}

		// Detection completeness over the injector's ground truth.
		for _, p := range corrupted {
			base := filepath.Base(p)
			if !strings.HasSuffix(base, sigSuffix) {
				// Manifest (or lock) damage: the journal is rebuilt
				// wholesale by Fsck, and the post-repair checks below
				// prove the rebuild healed it.
				continue
			}
			if quarantined[base] {
				continue
			}
			// Not quarantined: only acceptable if the damage was
			// harmless (e.g. a lost trailing newline) — the entry must
			// still verify AND predict bit-identically to baseline.
			var id *chaosIdentity
			for i := range chaosIdentities {
				c := chaosIdentities[i]
				if filepath.Base(key(c.app, c.procs, c.workload)) == base {
					id = &c
				}
			}
			if id == nil {
				t.Fatalf("seed %d: corrupted path %s neither quarantined nor identifiable", seed, p)
			}
			got := predictStored(t, repo, *id, target)
			want := baseline[*id]
			if got.PET != want.PET || got.SET != want.SET {
				t.Fatalf("seed %d: corrupted entry %s survived fsck and predicts wrong: PET %v/%v SET %v/%v",
					seed, base, got.PET, want.PET, got.SET, want.SET)
			}
		}

		// After repair, the repository is internally consistent...
		entries, problems, err := repo.List()
		if err != nil {
			t.Fatalf("seed %d: post-fsck List: %v", seed, err)
		}
		if len(problems) != 0 {
			t.Fatalf("seed %d: problems survived fsck: %v", seed, problems)
		}
		if len(entries)+rep.Corrupt != len(chaosIdentities) {
			t.Fatalf("seed %d: %d entries + %d quarantined != %d stored",
				seed, len(entries), rep.Corrupt, len(chaosIdentities))
		}
		// ...and every surviving entry predicts exactly like baseline.
		for _, e := range entries {
			id := chaosIdentity{e.Saved.AppName, e.Saved.Procs, e.Saved.Workload}
			got := predictStored(t, repo, id, target)
			want, ok := baseline[id]
			if !ok {
				t.Fatalf("seed %d: unexpected surviving entry %+v", seed, id)
			}
			if got.PET != want.PET || got.SET != want.SET {
				t.Fatalf("seed %d: survivor %s diverges from baseline: PET %v/%v SET %v/%v",
					seed, e.Path, got.PET, want.PET, got.SET, want.SET)
			}
		}
		// A second fsck on the repaired repository is a no-op.
		rep2, err := repo.Fsck()
		if err != nil {
			t.Fatal(err)
		}
		if rep2.Corrupt != 0 || len(rep2.Problems) != 0 {
			t.Fatalf("seed %d: second fsck found new damage: %+v", seed, rep2)
		}
	}
	if totalInjected == 0 {
		t.Fatal("fault schedule injected nothing across all seeds; rates too low to prove anything")
	}
}
