package scenario

import (
	"strings"
	"testing"
)

// FuzzScenarioParse: arbitrary mutated scenario documents must never
// panic the parser or decoder, and every rejection must be a
// positioned *ParseError (file and 1-based line) so campaign authors
// always get a jump target. Accepted documents must satisfy the
// invariants the runner depends on.
func FuzzScenarioParse(f *testing.F) {
	f.Add([]byte(validDoc))
	f.Add([]byte(violatedScenario))
	f.Add([]byte(`name: fuzzy
app:
  name: lu
  ranks: 16
  workload: classA
base:
  cluster: C
  cores: 8
  mapping: cyclic
targets: [A, B]
faults:
  spec: loss=0.05,crash=0.2
  seeds: [1, 2]
timeout: 90s
assert:
  pete_bound: 6.5
  recovery_invariant: true
  max_alloc: 2GiB
`))
	f.Add([]byte("---\n# comment\nname: 'quo''ted'\n"))
	f.Add([]byte("a: [1, 2, 3]\nb: \"x\\ny\"\n"))
	f.Add([]byte("\t"))
	f.Add([]byte("a:\n  - 1\n  - 2\n"))
	f.Add([]byte("pete_boundd: 1\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse("fuzz.yaml", data)
		if err != nil {
			pe, ok := AsParseError(err)
			if !ok {
				t.Fatalf("rejection is not positioned: %v", err)
			}
			if pe.File != "fuzz.yaml" || pe.Line < 1 {
				t.Fatalf("bad position %q:%d in %v", pe.File, pe.Line, err)
			}
			if strings.TrimSpace(pe.Msg) == "" {
				t.Fatalf("empty error message: %+v", pe)
			}
			return
		}
		// Accepted scenarios must be runnable: a name, a validated app
		// within the rank bounds, at least one target, at least one
		// assertion, and a non-empty case expansion.
		if s.Name == "" || len(s.Targets) == 0 || s.Assert.count() == 0 {
			t.Fatalf("decoder accepted an unrunnable scenario: %+v", s)
		}
		if s.App.Ranks < 2 || s.App.Ranks > maxRanks {
			t.Fatalf("ranks %d escaped validation", s.App.Ranks)
		}
		if len(s.Cases()) == 0 {
			t.Fatalf("valid scenario expands to zero cases: %+v", s)
		}
	})
}
