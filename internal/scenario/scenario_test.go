package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// validDoc is a minimal well-formed scenario used as the mutation base.
const validDoc = `name: demo
app:
  name: cg
  ranks: 8
base: A
target: B
assert:
  phases_min: 1
`

func TestParseValidScenario(t *testing.T) {
	doc := `# full-feature scenario
name: full.demo-1
description: everything at once
app:
  name: lu
  ranks: 16
  workload: classA
base:
  cluster: C
  cores: 8
  mapping: cyclic
targets: [A, B]
faults:
  spec: loss=0.05,crash=0.2,attempts=10
  seeds: [1, 2, 3]
timeout: 90s
assert:
  pete_bound: 6.5
  phases_min: 2
  phases_max: 12
  relevant_min: 1
  coverage_min: 0.8
  recovery_invariant: true
  determinism: true
  max_wall: 30s
  max_alloc: 2GiB
`
	s, err := Parse("full.yaml", []byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "full.demo-1" || s.App.Name != "lu" || s.App.Ranks != 16 || s.App.Workload != "classA" {
		t.Errorf("app decoded wrong: %+v", s)
	}
	if s.Base.Cluster != "C" || s.Base.Cores != 8 || s.Base.Mapping != "cyclic" {
		t.Errorf("base decoded wrong: %+v", s.Base)
	}
	if len(s.Targets) != 2 || s.Targets[0].Label() != "A" || s.Targets[1].Label() != "B" {
		t.Errorf("targets decoded wrong: %+v", s.Targets)
	}
	if s.Faults == nil || s.Faults.Spec != "loss=0.05,crash=0.2,attempts=10" ||
		len(s.Faults.Seeds) != 3 {
		t.Errorf("faults decoded wrong: %+v", s.Faults)
	}
	if s.Timeout != 90*time.Second {
		t.Errorf("timeout = %v", s.Timeout)
	}
	a := s.Assert
	if !a.HasPETEBound || a.PETEBound != 6.5 || !a.HasPhasesMin || a.PhasesMin != 2 ||
		!a.HasPhasesMax || a.PhasesMax != 12 || !a.HasRelevantMin || a.RelevantMin != 1 ||
		!a.HasCoverageMin || a.CoverageMin != 0.8 || !a.RecoveryInvariant || !a.Determinism ||
		a.MaxWall != 30*time.Second || a.MaxAllocBytes != 2<<30 {
		t.Errorf("assertions decoded wrong: %+v", a)
	}
	if n := a.count(); n != 9 {
		t.Errorf("assertion count = %d, want 9", n)
	}
	// The matrix: 2 targets x 3 seeds.
	cases := s.Cases()
	if len(cases) != 6 {
		t.Fatalf("expanded %d cases, want 6", len(cases))
	}
	if got := cases[0].ID(); got != "full.demo-1/target=A/seed=1" {
		t.Errorf("case ID = %q", got)
	}
	if got := cases[5].ID(); got != "full.demo-1/target=B/seed=3" {
		t.Errorf("case ID = %q", got)
	}
}

// TestScenarioRejects pins the satellite requirement: unknown keys and
// unknown assertion names fail validation loudly — the typo
// `pete_boundd:` must never silently weaken a campaign — and every
// semantic error is positioned.
func TestScenarioRejects(t *testing.T) {
	// mutate swaps one line of validDoc (1-based index) for repl.
	mutate := func(line int, repl ...string) string {
		lines := strings.Split(strings.TrimRight(validDoc, "\n"), "\n")
		out := append(append(append([]string{}, lines[:line-1]...), repl...), lines[line:]...)
		return strings.Join(out, "\n") + "\n"
	}
	cases := []struct {
		name string
		doc  string
		msg  string
	}{
		{"unknown top-level key", validDoc + "bogus: 1\n", `unknown scenario key "bogus"`},
		{"assertion typo pete_boundd", mutate(8, "  pete_boundd: 3"), `unknown assertion key "pete_boundd"`},
		{"unknown app key", mutate(4, "  ranks: 8", "  size: big"), `unknown app key "size"`},
		{"unknown machine key", mutate(6, "target:", "  cluster: B", "  speed: 9"), `unknown machine key "speed"`},
		{"unknown faults key", validDoc + "faults:\n  spec: loss=0.1\n  sedes: [1]\n", `unknown faults key "sedes"`},
		{"missing name", strings.Replace(validDoc, "name: demo\n", "", 1), "needs a name"},
		{"bad name", mutate(1, "name: De mo"), "must match"},
		{"missing app", strings.Replace(validDoc, "app:\n  name: cg\n  ranks: 8\n", "", 1), "needs an app"},
		{"missing ranks", mutate(4, ""), "needs a ranks count"},
		{"ranks too small", mutate(4, "  ranks: 1"), "outside [2, 4096]"},
		{"ranks too large", mutate(4, "  ranks: 9999"), "outside [2, 4096]"},
		{"ranks not integer", mutate(4, "  ranks: many"), "not an integer"},
		{"unknown app", mutate(3, "  name: hpl"), "hpl"},
		{"unknown workload", mutate(4, "  ranks: 8", "  workload: classZ"), "classZ"},
		{"missing base", mutate(5), "needs a base"},
		{"missing target", mutate(6), "needs a target"},
		{"target and targets", mutate(6, "target: B", "targets: [C]"), "not both"},
		{"unknown cluster", mutate(6, "target: Z"), `unknown cluster "Z"`},
		{"targets not a list", mutate(6, "targets: B"), "must be a list"},
		{"targets with overrides", mutate(6, "targets:", "  cluster: B"), "must be a list"},
		{"duplicate target", mutate(6, "targets: [B, B]"), `duplicate target "B"`},
		{"bad mapping", mutate(6, "target:", "  cluster: B", "  mapping: diagonal"), "must be block or cyclic"},
		{"bad interconnect", mutate(6, "target:", "  cluster: B", "  interconnect: carrier-pigeon"), "unknown interconnect"},
		{"negative nodes", mutate(6, "target:", "  cluster: B", "  nodes: -1"), "must be positive"},
		{"bad gflops", mutate(6, "target:", "  cluster: B", "  gflops: zero"), "not a number"},
		{"no assert block", strings.Replace(validDoc, "assert:\n  phases_min: 1\n", "", 1), "needs an assert block"},
		{"empty assertions", mutate(8, "  recovery_invariant: false"), "configures no assertion"},
		{"pete bound out of range", mutate(8, "  pete_bound: 150"), "outside [0, 100]"},
		{"coverage out of range", mutate(8, "  coverage_min: 1.5"), "outside (0, 1]"},
		{"phases_min zero", mutate(8, "  phases_min: 0"), "at least 1"},
		{"phases_min over max", mutate(8, "  phases_min: 5", "  phases_max: 2"), "exceeds phases_max"},
		{"bad boolean", mutate(8, "  determinism: maybe"), "not a boolean"},
		{"bad max_wall", mutate(8, "  max_wall: fast"), "not a positive duration"},
		{"bad max_alloc", mutate(8, "  max_alloc: -5"), "not a positive byte size"},
		{"recovery without faults", mutate(8, "  recovery_invariant: true"), "requires a faults block"},
		{"bad fault spec key", validDoc + "faults:\n  spec: explosions=0.5\n", "unknown key"},
		{"empty fault spec", validDoc + "faults:\n  spec: \"\"\n", "enables no fault class"},
		{"no-op fault spec", validDoc + "faults:\n  spec: loss=0\n", "enables no fault class"},
		{"faults without spec", validDoc + "faults:\n  seeds: [1]\n", "needs a spec"},
		{"empty seeds", validDoc + "faults:\n  spec: loss=0.1\n  seeds: []\n", "must not be empty"},
		{"duplicate seeds", validDoc + "faults:\n  spec: loss=0.1\n  seeds: [1, 1]\n", "duplicate seed"},
		{"seed not integer", validDoc + "faults:\n  spec: loss=0.1\n  seeds: [one]\n", "not an integer"},
		{"bad timeout", validDoc + "timeout: 0s\n", "not a positive duration"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse("mut.yaml", []byte(tc.doc))
			if err == nil {
				t.Fatalf("validation accepted:\n%s", tc.doc)
			}
			pe, ok := AsParseError(err)
			if !ok {
				t.Fatalf("error is not positioned: %v", err)
			}
			if pe.Line < 1 || pe.File != "mut.yaml" {
				t.Errorf("bad position %s:%d", pe.File, pe.Line)
			}
			if !strings.Contains(err.Error(), tc.msg) {
				t.Errorf("error %q does not mention %q", err, tc.msg)
			}
		})
	}
}

// TestFaultFreeCaseExpansion: without faults there is exactly one case
// per target and the ID marks the seed as absent.
func TestFaultFreeCaseExpansion(t *testing.T) {
	s, err := Parse("v.yaml", []byte(validDoc))
	if err != nil {
		t.Fatal(err)
	}
	cases := s.Cases()
	if len(cases) != 1 {
		t.Fatalf("%d cases, want 1", len(cases))
	}
	if got := cases[0].ID(); got != "demo/target=B/seed=-" {
		t.Errorf("ID = %q", got)
	}
	inj, err := cases[0].Injector()
	if err != nil || inj != nil {
		t.Errorf("fault-free case built injector %v (err %v)", inj, err)
	}
}

// TestMachineOverrides: inline overrides change the materialised
// cluster, and the deployment respects ranks and mapping.
func TestMachineOverrides(t *testing.T) {
	m := MachineSpec{Cluster: "B", Nodes: 4, CoresPerNode: 4,
		GFLOPS: 1.5, MemContention: 0.5, Interconnect: "infiniband"}
	cl, err := m.cluster()
	if err != nil {
		t.Fatal(err)
	}
	if cl.Nodes != 4 || cl.CoresPerNode != 4 || cl.CoreGFLOPS != 1.5 || cl.MemContention != 0.5 {
		t.Errorf("overrides not applied: %+v", cl)
	}
	d, err := m.Deployment(8)
	if err != nil {
		t.Fatal(err)
	}
	if d.Ranks != 8 {
		t.Errorf("deployment ranks = %d", d.Ranks)
	}
	// cores restricts the node count like the CLI's -cores flag.
	mc := NewMachineSpec("A")
	mc.Cores = 8
	cl, err = mc.cluster()
	if err != nil {
		t.Fatal(err)
	}
	if cl.Nodes != 4 { // 8 cores / 2 per node
		t.Errorf("cores restriction: %d nodes, want 4", cl.Nodes)
	}
}

func TestLoadDir(t *testing.T) {
	dir := t.TempDir()
	write := func(name, doc string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("b.yaml", strings.Replace(validDoc, "demo", "bbb", 1))
	write("a.yaml", strings.Replace(validDoc, "demo", "aaa", 1))
	write("ignored.txt", "not yaml")
	ss, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ss) != 2 || ss[0].Name != "aaa" || ss[1].Name != "bbb" {
		t.Fatalf("LoadDir order wrong: %+v", ss)
	}
	// Duplicate scenario names across files are ambiguous.
	write("c.yaml", strings.Replace(validDoc, "demo", "aaa", 1))
	if _, err := LoadDir(dir); err == nil || !strings.Contains(err.Error(), "duplicate scenario name") {
		t.Fatalf("duplicate names accepted: %v", err)
	}
	if _, err := LoadDir(t.TempDir()); err == nil {
		t.Fatal("empty dir accepted")
	}
}

// TestExampleSuiteValid: the shipped starter suite must always parse,
// cover every registered app, at least two machine models and at least
// two fault seeds — the acceptance envelope of the campaign CI runs.
func TestExampleSuiteValid(t *testing.T) {
	ss, err := LoadDir("../../examples/scenarios")
	if err != nil {
		t.Fatal(err)
	}
	if len(ss) < 10 {
		t.Fatalf("starter suite has %d scenarios, want >= 10", len(ss))
	}
	apps := map[string]bool{}
	models := map[string]bool{}
	seeds := map[int64]bool{}
	cases := 0
	for _, s := range ss {
		apps[s.App.Name] = true
		models[s.Base.Label()] = true
		for _, tg := range s.Targets {
			models[tg.Label()] = true
		}
		if s.Faults != nil {
			for _, sd := range s.Faults.Seeds {
				seeds[sd] = true
			}
		}
		cases += len(s.Cases())
	}
	if len(apps) < 13 {
		t.Errorf("suite covers %d apps, want all 13: %v", len(apps), apps)
	}
	if len(models) < 2 {
		t.Errorf("suite covers %d machine models, want >= 2", len(models))
	}
	if len(seeds) < 2 {
		t.Errorf("suite sweeps %d fault seeds, want >= 2", len(seeds))
	}
	if cases < 10 {
		t.Errorf("suite expands to %d cases, want >= 10", cases)
	}
}
